package lixto_test

import (
	"context"
	"sync"
	"testing"

	"repro/internal/elog"
	"repro/internal/web"
	"repro/pkg/lixto"
)

// TestWithBatching checks the SDK batching option end to end: a fleet
// of independently compiled wrappers extracting the same page through
// one shared match cache produces instance bases byte-identical to
// unbatched extraction, while all but the first wrapper answer their
// pattern matches from the cache. Concurrent extractions exercise the
// cache under -race.
func TestWithBatching(t *testing.T) {
	const fleet = 8
	newSim := func() *web.Web {
		sim := web.New()
		web.NewBookSite(7, 5).Register(sim, "books.example.com")
		return sim
	}

	plain := lixto.MustCompile(cacheProg, lixto.WithFetcher(newSim()), lixto.WithAuxiliary("page"))
	res, err := plain.Extract(context.Background(), lixto.Origin())
	if err != nil {
		t.Fatal(err)
	}
	want := res.Base.Dump()

	mc := elog.NewMatchCache()
	sim := newSim()
	var wg sync.WaitGroup
	outs := make([]string, fleet)
	for i := 0; i < fleet; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := lixto.MustCompile(cacheProg, lixto.WithFetcher(sim),
				lixto.WithBatching(mc), lixto.WithAuxiliary("page"))
			res, err := w.Extract(context.Background(), lixto.Origin())
			if err != nil {
				t.Error(err)
				return
			}
			outs[i] = res.Base.Dump()
		}(i)
	}
	wg.Wait()
	for i, got := range outs {
		if got != want {
			t.Fatalf("wrapper %d batched base differs:\n--- got ---\n%s--- want ---\n%s", i, got, want)
		}
	}
	if hits, misses := mc.Stats(); hits == 0 {
		t.Fatalf("shared match cache never hit (hits=%d misses=%d)", hits, misses)
	}
}
