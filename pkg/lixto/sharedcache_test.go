package lixto_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/fetchcache"
	"repro/internal/web"
	"repro/internal/xmlenc"
	"repro/pkg/lixto"
)

const cacheProg = `page(S, X)  <- document("books.example.com/bestsellers.html", S), subelem(S, .body, X)
title(S, X) <- page(_, S), subelem(S, (?.td, [(class, title, exact)]), X)`

// TestWithSharedCache checks the SDK option end to end: concurrent
// Origin extractions of two wrappers sharing one cache fetch+parse the
// page once, and the result is byte-identical to uncached extraction.
func TestWithSharedCache(t *testing.T) {
	newSim := func() *web.Web {
		sim := web.New()
		web.NewBookSite(7, 5).Register(sim, "books.example.com")
		return sim
	}

	plainSim := newSim()
	plain := lixto.MustCompile(cacheProg, lixto.WithFetcher(plainSim), lixto.WithAuxiliary("page"))
	res, err := plain.Extract(context.Background(), lixto.Origin())
	if err != nil {
		t.Fatal(err)
	}
	want := xmlenc.MarshalIndent(res.XML())

	cachedSim := newSim()
	cache := fetchcache.New(64, time.Hour)
	w1 := lixto.MustCompile(cacheProg, lixto.WithFetcher(cachedSim),
		lixto.WithSharedCache(cache), lixto.WithAuxiliary("page"))
	w2 := w1.Rebind() // second wrapper, same fetcher and cache

	var wg sync.WaitGroup
	outs := make([]string, 8)
	for i := 0; i < len(outs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := w1
			if i%2 == 1 {
				w = w2
			}
			res, err := w.Extract(context.Background(), lixto.Origin())
			if err != nil {
				t.Error(err)
				return
			}
			outs[i] = xmlenc.MarshalIndent(res.XML())
		}(i)
	}
	wg.Wait()
	for i, got := range outs {
		if got != want {
			t.Fatalf("extraction %d differs under WithSharedCache:\n%s\nwant:\n%s", i, got, want)
		}
	}
	if got := cachedSim.FetchCount("books.example.com/bestsellers.html"); got != 1 {
		t.Fatalf("page fetched %d times by 8 concurrent extractions, want 1", got)
	}
	if st := cache.Stats(); st.Misses != 1 || st.Hits+st.Shared != 7 {
		t.Errorf("cache stats = %+v, want 1 miss and 7 hits+shared", st)
	}

	// Inline HTML sources stay private: they must not populate the
	// shared cache.
	before := cache.Len()
	if _, err := w1.Extract(context.Background(),
		lixto.HTML(`<html><body><table><tr><td class="title">X</td></tr></table></body></html>`)); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != before {
		t.Fatalf("inline extraction leaked into the shared cache (%d -> %d entries)", before, cache.Len())
	}
}
