package lixto

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/dom"
	"repro/internal/elog"
	"repro/internal/htmlparse"
)

// Source selects the input of one extraction run. Construct one with
// HTML (an inline page), Tree (a pre-parsed document), URL (a page
// fetched through the wrapper's fetcher), or Origin (the program's own
// document URLs, resolved through the wrapper's fetcher).
type Source interface {
	// fetcher builds the elog.Fetcher serving this source for the given
	// program, with next as the continuation for crawled URLs (may be
	// nil).
	fetcher(ctx context.Context, p *elog.Program, next elog.Fetcher) (elog.Fetcher, error)
}

type htmlSource struct{ html string }

type treeSource struct{ tree *dom.Tree }

type urlSource struct{ url string }

type originSource struct{}

// HTML wraps an inline HTML document: every document URL the program
// mentions is served this page. Crawled links beyond the inline page
// fall through to the wrapper's fetcher, when one is configured.
func HTML(html string) Source { return htmlSource{html: html} }

// Tree wraps a pre-parsed document tree, with the same URL overlay
// semantics as HTML.
func Tree(t *dom.Tree) Source { return treeSource{tree: t} }

// URL fetches the given page through the wrapper's fetcher and serves
// it for every document URL the program mentions; crawling continues
// through the fetcher.
func URL(url string) Source { return urlSource{url: url} }

// Origin runs the program against its own document URLs, resolved
// through the wrapper's fetcher — continuous wrapping of the live
// source sites.
func Origin() Source { return originSource{} }

// overlayFetcher serves the overlay pages first and falls through to
// next for everything else (crawled links). With no continuation, a
// miss is an ordinary missing-document error, which the evaluator
// treats as a dangling link on crawl steps.
type overlayFetcher struct {
	pages map[string]*dom.Tree
	next  elog.Fetcher
}

func (o *overlayFetcher) Fetch(url string) (*dom.Tree, error) {
	if t, ok := o.pages[url]; ok {
		return t, nil
	}
	if o.next != nil {
		return o.next.Fetch(url)
	}
	return nil, fmt.Errorf("lixto: no document at %q", url)
}

// entryOverlay maps every document entry URL of the program to t.
func entryOverlay(p *elog.Program, t *dom.Tree, next elog.Fetcher) (elog.Fetcher, error) {
	pages := map[string]*dom.Tree{}
	for _, r := range p.Rules {
		if r.DocURL != "" {
			pages[r.DocURL] = t
		}
	}
	if len(pages) == 0 {
		return nil, &Error{Kind: KindEval, Msg: "program has no document entry points"}
	}
	return &overlayFetcher{pages: pages, next: next}, nil
}

func (s htmlSource) fetcher(_ context.Context, p *elog.Program, next elog.Fetcher) (elog.Fetcher, error) {
	return entryOverlay(p, htmlparse.Parse(s.html), next)
}

// InlineFetcher returns a fetcher serving the inline page at every
// document entry URL of the wrapper's program, falling through to next
// (may be nil) for crawled links — the HTML(...) source semantics as a
// reusable fetcher, e.g. for scheduled re-extraction of a fixed page.
func (w *Wrapper) InlineFetcher(html string, next elog.Fetcher) (elog.Fetcher, error) {
	return entryOverlay(w.program, htmlparse.Parse(html), next)
}

func (s treeSource) fetcher(_ context.Context, p *elog.Program, next elog.Fetcher) (elog.Fetcher, error) {
	if s.tree == nil {
		return nil, &Error{Kind: KindEval, Msg: "nil document tree"}
	}
	return entryOverlay(p, s.tree, next)
}

func (s urlSource) fetcher(ctx context.Context, p *elog.Program, next elog.Fetcher) (elog.Fetcher, error) {
	if next == nil {
		return nil, &Error{Kind: KindEval, Msg: "URL source requires a fetcher (WithFetcher)"}
	}
	if err := ctx.Err(); err != nil {
		return nil, &Error{Kind: KindFetch, Msg: err.Error(), Err: err}
	}
	t, err := next.Fetch(s.url)
	if err != nil {
		return nil, &Error{Kind: KindFetch, Msg: fmt.Sprintf("fetch %s: %v", s.url, err), Err: err}
	}
	f, ferr := entryOverlay(p, t, next)
	if ferr != nil {
		return nil, ferr
	}
	// The page is also reachable under its own URL (crawl loops).
	f.(*overlayFetcher).pages[s.url] = t
	return f, nil
}

func (s originSource) fetcher(_ context.Context, _ *elog.Program, next elog.Fetcher) (elog.Fetcher, error) {
	if next == nil {
		return nil, &Error{Kind: KindEval, Msg: "Origin source requires a fetcher (WithFetcher)"}
	}
	return next, nil
}

// fetchError tags a fetch-boundary failure for classification without
// adding a message prefix (the evaluator wraps it with rule context;
// newError turns the whole chain into one KindFetch *Error).
type fetchError struct{ err error }

func (f fetchError) Error() string { return f.err.Error() }
func (f fetchError) Unwrap() error { return f.err }

// ctxFetcher makes extraction context-aware at fetch boundaries: every
// fetch first observes cancellation, and fetch failures are tagged as
// fetchError so they classify as KindFetch after the evaluator wraps
// them.
type ctxFetcher struct {
	ctx   context.Context
	inner elog.Fetcher
}

func (f *ctxFetcher) Fetch(url string) (*dom.Tree, error) {
	if err := f.ctx.Err(); err != nil {
		return nil, fetchError{err: err}
	}
	t, err := f.inner.Fetch(url)
	if err != nil {
		var fe fetchError
		if errors.As(err, &fe) {
			return nil, err
		}
		return nil, fetchError{err: err}
	}
	return t, nil
}
