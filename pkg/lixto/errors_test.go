package lixto

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/elog"
)

// A fetch failure surfacing through the evaluator keeps one "lixto:"
// prefix and the rule context, not a nested prefix per wrap.
func TestNoDoubledPrefix(t *testing.T) {
	w := MustCompile(bookWrapper)
	failing := elog.FetcherFunc(func(url string) (*dom.Tree, error) { return nil, errors.New("boom") })
	_, err := w.Extract(context.Background(), Origin(), WithFetcher(failing))
	if err == nil {
		t.Fatal("want error")
	}
	if n := strings.Count(err.Error(), "lixto:"); n != 1 {
		t.Fatalf("prefix count %d: %q", n, err.Error())
	}
	t.Log(err.Error())
}
