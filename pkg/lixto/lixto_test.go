package lixto

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/dom"
	"repro/internal/elog"
	"repro/internal/htmlparse"
	"repro/internal/web"
	"repro/internal/xmlenc"
)

const bookPage = `
<html><body>
  <table class="books">
    <tr class="book"><td class="title">Foundations of Databases</td><td class="price">$ 54.00</td></tr>
    <tr class="book"><td class="title">The Complexity of XPath</td><td class="price">$ 9.50</td></tr>
  </table>
</body></html>`

const bookWrapper = `
page(S, X)  <- document("shop", S), subelem(S, .body, X)
book(S, X)  <- page(_, S), subelem(S, (?.tr, [(class, book, exact)]), X)
title(S, X) <- book(_, S), subelem(S, (?.td, [(class, title, exact)]), X)
price(S, X) <- book(_, S), subelem(S, (?.td, [(class, price, exact)]), X)
`

func TestCompileExtractHTML(t *testing.T) {
	w, err := Compile(bookWrapper, WithAuxiliary("page"), WithRoot("books"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := w.Extract(context.Background(), HTML(bookPage))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Instances("book")); got != 2 {
		t.Fatalf("books: got %d, want 2", got)
	}
	xml := res.XML()
	if xml.Name != "books" {
		t.Fatalf("root: %q", xml.Name)
	}
	if got := len(xml.Find("title")); got != 2 {
		t.Fatalf("titles in XML: %d", got)
	}
}

func TestExtractTreeSource(t *testing.T) {
	w := MustCompile(bookWrapper)
	res, err := w.Extract(context.Background(), Tree(htmlparse.Parse(bookPage)))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Instances("title")); got != 2 {
		t.Fatalf("titles: %d", got)
	}
}

func TestParseErrorPositioned(t *testing.T) {
	_, err := Compile("a(S, X) <- document(\"u\", S), subelem(S, .body, X)\n\nbroken(")
	if err == nil {
		t.Fatal("expected error")
	}
	le := AsError(err)
	if le.Kind != KindParse {
		t.Fatalf("kind: %s", le.Kind)
	}
	if le.Pos == nil || le.Pos.Rule != 2 || le.Pos.Line != 3 {
		t.Fatalf("pos: %+v", le.Pos)
	}
}

func TestUndefinedPatternPositioned(t *testing.T) {
	_, err := Compile(`a(S, X) <- document("u", S), subelem(S, .body, X)
b(S, X) <- nosuch(_, S), subelem(S, .td, X)`)
	if err == nil {
		t.Fatal("expected error")
	}
	le := AsError(err)
	if le.Kind != KindParse || le.Pos == nil || le.Pos.Rule != 2 {
		t.Fatalf("got %s %+v", le.Kind, le.Pos)
	}
}

func TestStratifyErrorKind(t *testing.T) {
	// a and b negate each other through pattern references: no
	// stratified semantics.
	src := `a(S, X) <- document("u", S), subelem(S, .body, X), not b(_, X)
b(S, X) <- document("u", S), subelem(S, .body, X), not a(_, X)`
	_, err := Compile(src)
	if err == nil {
		t.Fatal("expected stratification error")
	}
	if le := AsError(err); le.Kind != KindStratify {
		t.Fatalf("kind: %s (%v)", le.Kind, err)
	}
}

func TestFetchErrorKind(t *testing.T) {
	w := MustCompile(bookWrapper)
	// Origin without a fetcher is an eval error (misuse).
	if _, err := w.Extract(context.Background(), Origin()); AsError(err).Kind != KindEval {
		t.Fatalf("origin without fetcher: %v", err)
	}
	// A fetcher that cannot serve the entry page is a fetch error.
	failing := elog.FetcherFunc(func(url string) (*dom.Tree, error) { return nil, errors.New("boom") })
	_, err := w.Extract(context.Background(), Origin(), WithFetcher(failing))
	if err == nil {
		t.Fatal("expected fetch error")
	}
	if le := AsError(err); le.Kind != KindFetch {
		t.Fatalf("kind: %s (%v)", le.Kind, err)
	}
}

func TestContextCancellation(t *testing.T) {
	w := MustCompile(bookWrapper, WithFetcher(elog.MapFetcher{"shop": htmlparse.Parse(bookPage)}))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := w.Extract(ctx, Origin())
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(Canceled) false: %v", err)
	}
	if le := AsError(err); le.Kind != KindFetch {
		t.Fatalf("kind: %s", le.Kind)
	}
}

func TestURLSource(t *testing.T) {
	sim := web.New()
	web.NewBookSite(7, 5).Register(sim, "books.example.com")
	w := MustCompile(bookWrapper, WithFetcher(sim))
	res, err := w.Extract(context.Background(), URL("books.example.com/bestsellers.html"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances("book")) == 0 {
		t.Fatal("no books from URL source")
	}
	// A URL the fetcher cannot resolve is a fetch error.
	_, err = w.Extract(context.Background(), URL("books.example.com/nope.html"))
	if le := AsError(err); err == nil || le.Kind != KindFetch {
		t.Fatalf("bad URL: %v", err)
	}
}

func TestWithCacheOffMatchesCompiled(t *testing.T) {
	w := MustCompile(bookWrapper)
	a, err := w.Extract(context.Background(), HTML(bookPage))
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Extract(context.Background(), HTML(bookPage), WithCache(false))
	if err != nil {
		t.Fatal(err)
	}
	ax, bx := xmlenc.MarshalIndent(a.XML()), xmlenc.MarshalIndent(b.XML())
	if ax != bx {
		t.Fatalf("compiled and interpreted outputs differ:\n%s\n----\n%s", ax, bx)
	}
}

func TestPerCallDesignDoesNotLeak(t *testing.T) {
	w := MustCompile(bookWrapper)
	if _, err := w.Extract(context.Background(), HTML(bookPage), WithRoot("other"), WithAuxiliary("book")); err != nil {
		t.Fatal(err)
	}
	if w.Design().RootName != "" || w.Design().Auxiliary["book"] {
		t.Fatalf("per-call design options leaked into the wrapper: %+v", w.Design())
	}
}

func TestExtractAll(t *testing.T) {
	w := MustCompile(bookWrapper, WithConcurrency(4))
	pages := []Source{HTML(bookPage), HTML(bookPage), HTML("<html><body></body></html>"), nil}
	results, err := w.ExtractAll(context.Background(), pages)
	if err == nil {
		t.Fatal("expected joined error for the nil source")
	}
	if results[0] == nil || results[1] == nil || results[2] == nil {
		t.Fatalf("missing results: %v", results)
	}
	if results[3] != nil {
		t.Fatal("nil source should have no result")
	}
	if got := len(results[0].Instances("book")); got != 2 {
		t.Fatalf("fan-out result: %d books", got)
	}
	if got := len(results[2].Instances("book")); got != 0 {
		t.Fatalf("empty page: %d books", got)
	}
}

func TestConcurrentExtractSharedWrapper(t *testing.T) {
	w := MustCompile(bookWrapper)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := w.Extract(context.Background(), HTML(bookPage))
			if err == nil && len(res.Instances("book")) != 2 {
				err = errors.New("wrong book count")
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestCrawlLimitIsEvalError(t *testing.T) {
	// A wrapper that crawls from page to page forever.
	src := `page(S, X) <- document("a", S), subelem(S, .body, X)
link(S, X) <- page(_, S), subelem(S, ?.a, X)
href(S, X) <- link(_, S), subatt(S, href, X)
next(S, X) <- href(_, S), getDocument(S, X)
page2(S, X) <- next(_, S), subelem(S, .body, X)
link2(S, X) <- page2(_, S), subelem(S, ?.a, X)
href2(S, X) <- link2(_, S), subatt(S, href, X)
next2(S, X) <- href2(_, S), getDocument(S, X)`
	pages := elog.MapFetcher{}
	for _, u := range []string{"a", "b", "c", "d", "e"} {
		next := string(rune(u[0] + 1))
		pages[u] = htmlparse.Parse(`<html><body><a href="` + next + `">next</a></body></html>`)
	}
	w := MustCompile(src, WithFetcher(pages), WithMaxDocuments(2))
	_, err := w.Extract(context.Background(), Origin())
	if err == nil {
		t.Fatal("expected crawl limit error")
	}
	if le := AsError(err); le.Kind != KindEval {
		t.Fatalf("kind: %s (%v)", le.Kind, err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	w := MustCompile(bookWrapper)
	if _, err := Compile(w.String()); err != nil {
		t.Fatalf("program did not round-trip: %v\n%s", err, w.String())
	}
}

func TestSDKMatchesCoreOnEbay(t *testing.T) {
	const figure5 = `
tableseq(S, X) <- document("www.ebay.com/", S),
    subsq(S, (.body, []), (.table, []), (.table, []), X),
    before(S, X, (.table, [(elementtext, item, substr)]), 0, 0, _, _),
    after(S, X, .hr, 0, 0, _, _)
record(S, X) <- tableseq(_, S), subelem(S, .table, X)
itemdes(S, X) <- record(_, S), subelem(S, (?.td.?.a, []), X)
`
	sim := web.New()
	web.NewAuctionSite(2004, 25).Register(sim, "www.ebay.com")
	w := MustCompile(figure5, WithFetcher(sim), WithAuxiliary("tableseq"))
	res, err := w.Extract(context.Background(), Origin())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Instances("record")); got != 25 {
		t.Fatalf("records: %d, want 25", got)
	}
	if got := len(res.XML().Find("itemdes")); got != 25 {
		t.Fatalf("itemdes in XML: %d, want 25", got)
	}
}
