package lixto

import (
	"context"
	"errors"
	"fmt"
)

// Kind classifies SDK errors by the lifecycle stage that failed.
type Kind string

const (
	// KindParse: the Elog source did not parse (or referenced undefined
	// patterns). The error carries a source position.
	KindParse Kind = "parse"
	// KindStratify: the program parsed but has no stratified semantics
	// (a cycle through a negated pattern reference).
	KindStratify Kind = "stratify"
	// KindFetch: a document could not be retrieved — the configured
	// Fetcher failed on an entry page, a URL source did not resolve, or
	// the extraction context was cancelled mid-fetch.
	KindFetch Kind = "fetch"
	// KindEval: extraction itself failed (crawl/instance limits,
	// condition errors, missing fetcher for the requested source).
	KindEval Kind = "eval"
)

// Pos is a position in an Elog program: the 1-based rule number and the
// 1-based source line the rule starts on. The zero value means unknown.
type Pos struct {
	Rule int `json:"rule,omitempty"`
	Line int `json:"line,omitempty"`
}

// Error is the SDK's error type: every error returned by Compile,
// Extract and ExtractAll is an *Error. Kind says which stage failed,
// Pos (when non-nil) points into the wrapper source, and Unwrap exposes
// the underlying cause — context cancellation is observable with
// errors.Is(err, context.Canceled).
type Error struct {
	Kind Kind
	Msg  string
	Pos  *Pos
	Err  error
}

func (e *Error) Error() string {
	switch {
	case e.Pos != nil && e.Pos.Line > 0:
		return fmt.Sprintf("lixto: %s error at rule %d (line %d): %s", e.Kind, e.Pos.Rule, e.Pos.Line, e.Msg)
	case e.Pos != nil:
		return fmt.Sprintf("lixto: %s error at rule %d: %s", e.Kind, e.Pos.Rule, e.Msg)
	}
	return fmt.Sprintf("lixto: %s error: %s", e.Kind, e.Msg)
}

// Unwrap returns the underlying cause.
func (e *Error) Unwrap() error { return e.Err }

// AsError extracts the SDK error from an error chain, or wraps a
// foreign error as an eval error so callers can always inspect a Kind.
func AsError(err error) *Error {
	if err == nil {
		return nil
	}
	var le *Error
	if errors.As(err, &le) {
		return le
	}
	return &Error{Kind: KindEval, Msg: err.Error(), Err: err}
}

// newError wraps err with a kind, preserving the kind of an inner
// fetch-boundary tag or *Error if one is already present (so a fetch
// error surfacing through the evaluator classifies as KindFetch). The
// message is the outermost error text: the tags add no prefix of their
// own, so rule context from the evaluator survives without nesting
// "lixto: ... error:" prefixes.
func newError(kind Kind, err error) *Error {
	var fe fetchError
	if errors.As(err, &fe) {
		return &Error{Kind: KindFetch, Msg: err.Error(), Err: err}
	}
	var le *Error
	if errors.As(err, &le) {
		return &Error{Kind: le.Kind, Msg: le.Msg, Pos: le.Pos, Err: err}
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		kind = KindFetch
	}
	return &Error{Kind: kind, Msg: err.Error(), Err: err}
}
