package lixto

import (
	"repro/internal/concepts"
	"repro/internal/elog"
	"repro/internal/fetchcache"
	"repro/internal/pib"
)

// config carries the wrapper's tunables. A Wrapper holds the config it
// was compiled with; Extract/ExtractAll clone it and apply per-call
// options, so per-call overrides never leak into the shared wrapper.
type config struct {
	concurrency       int
	cache             bool
	incremental       bool
	incrementalOutput bool
	maxDocuments      int
	maxInstances      int
	fetcher           elog.Fetcher
	shared            *fetchcache.Cache
	batch             *elog.MatchCache
	concepts          *concepts.Base
	design            *pib.Design
	// designOwned is true once this config's design is a private copy
	// (per-call design edits copy-on-write the wrapper's design).
	designOwned bool
}

func defaultConfig() config {
	return config{
		cache:       true,
		incremental: true,
		design:      &pib.Design{Auxiliary: map[string]bool{"document": true}},
		designOwned: true,
	}
}

func (c config) clone() config {
	out := c
	out.designOwned = false
	return out
}

// editDesign returns a design this config may mutate, copying the
// wrapper's design on first per-call edit.
func (c *config) editDesign() *pib.Design {
	if c.designOwned {
		return c.design
	}
	d := *c.design
	d.Auxiliary = cloneSet(c.design.Auxiliary)
	d.Rename = cloneMap(c.design.Rename)
	d.SuppressText = cloneSet(c.design.SuppressText)
	d.AlwaysText = cloneSet(c.design.AlwaysText)
	c.design = &d
	c.designOwned = true
	return c.design
}

func cloneSet(m map[string]bool) map[string]bool {
	if m == nil {
		return nil
	}
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func cloneMap(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Option tunes compilation and extraction. Options passed to Compile
// become the wrapper's defaults; options passed to Extract/ExtractAll
// override them for that call only.
type Option func(*config)

// WithConcurrency bounds how many documents the crawl frontier fetches
// and parses in parallel during one extraction (0 = GOMAXPROCS). It is
// also the fan-out bound of ExtractAll.
func WithConcurrency(n int) Option {
	return func(c *config) { c.concurrency = n }
}

// WithCache toggles the compiled execution path and its
// fingerprint-keyed match caches (default on). With caching off,
// extraction runs on the seed interpreter: slower, but sharing no
// mutable state across calls — the reference semantics.
func WithCache(enabled bool) Option {
	return func(c *config) { c.cache = enabled }
}

// WithIncremental toggles subtree-fingerprint match reuse across
// extractions (default on). With it on, the compiled wrapper's
// content-addressed subtree caches persist across Extract calls, so
// re-extracting a changed version of a document resolves the matches
// of its unchanged regions from cache and runs the pattern matcher
// only over the dirty regions. The instance base is bit-identical
// either way; turn it off only to measure or to pin the full
// re-evaluation behaviour. WithCache(false) disables the compiled path
// and with it incremental reuse.
func WithIncremental(enabled bool) Option {
	return func(c *config) { c.incremental = enabled }
}

// WithIncrementalOutput toggles cross-extraction output reuse (default
// off). With it on, the wrapper retains the previous extraction's
// instance base and emitted XML subtrees: Result.XML splices frozen,
// already-built subtrees for every instance whose content-addressed
// output hash is unchanged and rebuilds only the dirty ones — the
// output-side counterpart of WithIncremental, and the same machinery
// the transformation server runs per tick. The rendered document is
// byte-identical to a full rebuild, but its subtrees are shared across
// successive Results and MUST be treated as read-only (amend via
// xmlenc's Mutable copy-on-write if needed). Extractions whose per-call
// options replace or edit the XML design fall back to a full rebuild;
// the cache follows the wrapper's compile-time design.
func WithIncrementalOutput(enabled bool) Option {
	return func(c *config) { c.incrementalOutput = enabled }
}

// WithMaxDocuments bounds how many documents one extraction may fetch
// while crawling (0 = the evaluator default, 64).
func WithMaxDocuments(n int) Option {
	return func(c *config) { c.maxDocuments = n }
}

// WithMaxInstances bounds the pattern instance base, guarding against
// runaway recursive wrappers (0 = the evaluator default, 100000).
func WithMaxInstances(n int) Option {
	return func(c *config) { c.maxInstances = n }
}

// WithFetcher sets the fetcher resolving document URLs: the source of
// Origin() and URL(...) extractions, and the continuation fetcher for
// crawling beyond an inline page.
func WithFetcher(f elog.Fetcher) Option {
	return func(c *config) { c.fetcher = f }
}

// WithSharedCache routes the wrapper's fetcher through a shared
// fetch/document cache (fetchcache.New): concurrent extractions — of
// this wrapper and of every other wrapper sharing the cache — that
// resolve the same URL share one fetch+parse, deduplicated in flight
// and retained in a size-bounded LRU for the cache's freshness window.
// Only the configured fetcher (WithFetcher) is cached; inline
// HTML/Tree source overlays stay private to their extraction. All
// wrappers sharing one cache must resolve URLs identically. Nil
// removes a previously set cache.
func WithSharedCache(c *fetchcache.Cache) Option {
	return func(cfg *config) { cfg.shared = c }
}

// WithBatching attaches extractions to a fleet-shared match cache
// (elog.NewMatchCache): every wrapper extracting through the same
// cache reuses the others' compiled pattern matches on identical
// extraction paths and unchanged pages, so a fleet of wrappers stamped
// from one template costs about one parse plus one warmed match cache
// per shared page. The extracted output is unchanged — only the
// matching work is shared. Pair with WithSharedCache to also share the
// fetches. Nil removes a previously set cache; WithCache(false)
// disables the compiled path and with it the batching.
func WithBatching(mc *elog.MatchCache) Option {
	return func(cfg *config) { cfg.batch = mc }
}

// WithConcepts replaces the semantic/syntactic concept base consulted
// by concept conditions (default: the built-in base).
func WithConcepts(b *concepts.Base) Option {
	return func(c *config) { c.concepts = b }
}

// WithAuxiliary marks patterns as auxiliary: they structure the wrapper
// but are omitted from the XML output, their children promoted
// tree-minor style. "document" is auxiliary by default.
func WithAuxiliary(patterns ...string) Option {
	return func(c *config) {
		d := c.editDesign()
		if d.Auxiliary == nil {
			d.Auxiliary = map[string]bool{}
		}
		for _, p := range patterns {
			d.Auxiliary[p] = true
		}
	}
}

// WithRoot sets the output document element name (default "lixto").
func WithRoot(name string) Option {
	return func(c *config) { c.editDesign().RootName = name }
}

// WithRename maps a pattern to a different XML element name.
func WithRename(pattern, element string) Option {
	return func(c *config) {
		d := c.editDesign()
		if d.Rename == nil {
			d.Rename = map[string]string{}
		}
		d.Rename[pattern] = element
	}
}

// WithDesign replaces the whole XML design (advanced; the design must
// not be mutated concurrently with extraction).
func WithDesign(d *pib.Design) Option {
	return func(c *config) {
		c.design = d
		c.designOwned = true
	}
}
