// Package lixto is the public SDK of the Lixto reproduction — the one
// supported entry point for embedding wrappers in Go programs. It
// covers the full wrapper lifecycle: compile an Elog program once, then
// extract from inline HTML, pre-parsed trees, fetched URLs, or the
// program's own source sites, concurrently and under a context.
//
//	w, err := lixto.Compile(src, lixto.WithAuxiliary("page"))
//	res, err := w.Extract(ctx, lixto.HTML(page))
//	fmt.Print(xmlenc.MarshalIndent(res.XML()))
//
// Every error is a typed *lixto.Error carrying the failed stage
// (Parse/Stratify/Fetch/Eval) and, for program errors, the source
// position. A compiled Wrapper is immutable and safe for concurrent
// use: its bitset-compiled form and fingerprint-keyed match caches are
// shared across goroutines, so repeated extraction of unchanged pages
// skips the pattern-matching tree walks.
//
// The HTTP face of the same lifecycle is the /v1 API of
// internal/server; internal/core and cmd/elogc are thin shims over
// this package.
package lixto

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"

	"repro/internal/elog"
	"repro/internal/pib"
	"repro/internal/xmlenc"
)

// Wrapper is a compiled Elog wrapper: the parsed program, its
// bitset-compiled form, the XML design, and the option defaults it was
// compiled with. Compile is the only constructor. A Wrapper is safe for
// concurrent use.
type Wrapper struct {
	program  *elog.Program
	compiled *elog.CompiledProgram
	cfg      config

	// outMu guards outCache, the cross-extraction emitted-subtree cache
	// used when WithIncrementalOutput is on. One transform runs at a
	// time; concurrent Extracts serialize only their (cheap, dirty-
	// region-proportional) XML rendering, never the evaluation.
	outMu    sync.Mutex
	outCache *pib.OutputCache
}

// Compile parses, stratifies, and compiles an Elog program. Options
// become the wrapper's defaults; Extract accepts per-call overrides.
func Compile(src string, opts ...Option) (*Wrapper, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	p, err := elog.Parse(src)
	if err != nil {
		return nil, parseError(err)
	}
	cp, err := elog.Compile(p)
	if err != nil {
		return nil, stratifyError(p, err)
	}
	return &Wrapper{program: p, compiled: cp, cfg: cfg}, nil
}

// MustCompile panics on error; for examples and tests.
func MustCompile(src string, opts ...Option) *Wrapper {
	w, err := Compile(src, opts...)
	if err != nil {
		panic(err)
	}
	return w
}

// OutputStats reports the wrapper's incremental-output cache counters
// — output nodes reused and built across extractions, plus the
// instance delta of the latest one. All zero unless the wrapper was
// compiled with WithIncrementalOutput(true) and has extracted at
// least twice. Safe to call concurrently with Extract.
func (w *Wrapper) OutputStats() pib.OutputStats {
	w.outMu.Lock()
	defer w.outMu.Unlock()
	if w.outCache == nil {
		return pib.OutputStats{}
	}
	return w.outCache.Stats()
}

// Rebind returns a wrapper sharing this wrapper's program, compiled
// form and match caches, with additional default options applied — a
// cheap way to hand the same compiled program different fetchers or
// designs.
func (w *Wrapper) Rebind(opts ...Option) *Wrapper {
	cfg := w.cfg.clone()
	for _, o := range opts {
		o(&cfg)
	}
	return &Wrapper{program: w.program, compiled: w.compiled, cfg: cfg}
}

// parseError converts an elog parse failure into a positioned *Error.
func parseError(err error) *Error {
	var se *elog.SyntaxError
	if errors.As(err, &se) {
		return &Error{Kind: KindParse, Msg: se.Err.Error(), Pos: &Pos{Rule: se.Rule, Line: se.Line}, Err: err}
	}
	return &Error{Kind: KindParse, Msg: err.Error(), Err: err}
}

// stratifyError attributes a stratification failure to the first rule
// with a negated pattern reference, the best position available.
func stratifyError(p *elog.Program, err error) *Error {
	pos := (*Pos)(nil)
	for i, r := range p.Rules {
		for _, c := range r.Conds {
			if ref, ok := c.(elog.PatternRefCond); ok && ref.Negated {
				pos = &Pos{Rule: i + 1}
				break
			}
		}
		if pos != nil {
			break
		}
	}
	return &Error{Kind: KindStratify, Msg: err.Error(), Pos: pos, Err: err}
}

// Program returns the parsed Elog program. It must not be mutated.
func (w *Wrapper) Program() *elog.Program { return w.program }

// Compiled returns the bitset-compiled form (elog.Compile); its match
// caches persist across Extract calls.
func (w *Wrapper) Compiled() *elog.CompiledProgram { return w.compiled }

// Design returns the wrapper's XML design (the Compile-time default;
// per-call design options never mutate it).
func (w *Wrapper) Design() *pib.Design { return w.cfg.design }

// Patterns returns the pattern names the program defines, in
// first-definition order.
func (w *Wrapper) Patterns() []string { return w.program.Patterns() }

// String renders the program back in Elog concrete syntax.
func (w *Wrapper) String() string { return strings.TrimRight(w.program.String(), "\n") }

// Result is one extraction's output: the pattern instance base plus
// the XML rendering under the wrapper's design.
type Result struct {
	// Base is the pattern instance base (Section 3.1).
	Base *pib.Base

	design *pib.Design
	// w is set when this result may render through the wrapper's
	// incremental output cache (WithIncrementalOutput, and the call used
	// the wrapper's own design).
	w    *Wrapper
	once sync.Once
	doc  *xmlenc.Node
}

// XML returns the instance base transformed to XML (computed once).
// Under WithIncrementalOutput the document shares frozen subtrees with
// previous extractions' documents and must be treated as read-only.
func (r *Result) XML() *xmlenc.Node {
	r.once.Do(func() {
		if r.w == nil {
			r.doc = r.design.Transform(r.Base)
			return
		}
		r.w.outMu.Lock()
		if r.w.outCache == nil {
			r.w.outCache = pib.NewOutputCache()
		}
		r.doc = r.design.TransformIncremental(r.Base, r.w.outCache)
		r.w.outMu.Unlock()
	})
	return r.doc
}

// Instances returns the instances of one pattern, in extraction order.
func (r *Result) Instances(pattern string) []*pib.Instance { return r.Base.Instances(pattern) }

// Extract runs the wrapper against one source. The context is observed
// at every fetch boundary: cancellation aborts the crawl and surfaces
// as a KindFetch error with errors.Is(err, context.Canceled) true.
// Per-call options override the wrapper's defaults for this call only.
func (w *Wrapper) Extract(ctx context.Context, src Source, opts ...Option) (*Result, error) {
	cfg := w.cfg.clone()
	for _, o := range opts {
		o(&cfg)
	}
	if src == nil {
		return nil, &Error{Kind: KindEval, Msg: "nil source"}
	}
	if err := ctx.Err(); err != nil {
		return nil, &Error{Kind: KindFetch, Msg: err.Error(), Err: err}
	}
	fetch := cfg.fetcher
	if cfg.shared != nil && fetch != nil {
		// The shared fetch layer caches only the configured fetcher;
		// inline source overlays built below stay extraction-private.
		fetch = cfg.shared.Wrap(fetch)
	}
	f, err := src.fetcher(ctx, w.program, fetch)
	if err != nil {
		return nil, AsError(err)
	}
	ev := elog.NewEvaluator(&ctxFetcher{ctx: ctx, inner: f})
	if cfg.concepts != nil {
		ev.Concepts = cfg.concepts
	}
	if cfg.maxDocuments > 0 {
		ev.MaxDocuments = cfg.maxDocuments
	}
	if cfg.maxInstances > 0 {
		ev.MaxInstances = cfg.maxInstances
	}
	ev.MaxConcurrency = cfg.concurrency
	ev.Shared = cfg.batch
	ev.Incremental = cfg.incremental
	var base *pib.Base
	if cfg.cache {
		base, err = ev.RunCompiled(w.compiled)
	} else {
		base, err = ev.Run(w.program)
	}
	if err != nil {
		return nil, newError(KindEval, err)
	}
	res := &Result{Base: base, design: cfg.design}
	if cfg.incrementalOutput && cfg.design == w.cfg.design {
		// Per-call design edits copy-on-write cfg.design, so pointer
		// equality means the render the cache was built for.
		res.w = w
	}
	return res, nil
}

// ExtractAll extracts every source concurrently, fanning out over at
// most WithConcurrency workers (default GOMAXPROCS); each worker's
// crawl then overlaps fetches through the evaluator's frontier. The
// returned slice is aligned with srcs; a failed source leaves a nil
// Result and its error joined into the returned error.
func (w *Wrapper) ExtractAll(ctx context.Context, srcs []Source, opts ...Option) ([]*Result, error) {
	cfg := w.cfg.clone()
	for _, o := range opts {
		o(&cfg)
	}
	workers := cfg.concurrency
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(srcs) {
		workers = len(srcs)
	}
	results := make([]*Result, len(srcs))
	errs := make([]error, len(srcs))
	next := make(chan int)
	var wg sync.WaitGroup
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = w.Extract(ctx, srcs[i], opts...)
			}
		}()
	}
	for i := range srcs {
		next <- i
	}
	close(next)
	wg.Wait()
	return results, errors.Join(errs...)
}
