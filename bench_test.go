// Package repro's root benchmark suite: one benchmark per experiment of
// EXPERIMENTS.md (E1–E17), each regenerating the measurement behind one
// figure or theorem of the paper. Finer-grained parameter sweeps live
// next to their packages (internal/*/..._test.go); these root benches
// are the one-stop `go test -bench=.` entry point.
package repro_test

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"time"

	"repro/internal/apps"
	"repro/internal/automata"
	"repro/internal/cq"
	"repro/internal/datalog"
	"repro/internal/dom"
	"repro/internal/elog"
	"repro/internal/fetchcache"
	"repro/internal/htmlparse"
	"repro/internal/mdatalog"
	"repro/internal/pib"
	"repro/internal/resultlog"
	"repro/internal/server"
	"repro/internal/transform"
	"repro/internal/visual"
	"repro/internal/web"
	"repro/internal/xmlenc"
	"repro/internal/xpath"
)

// BenchmarkE01_Figure1_TreeEncoding: unranked tree <-> binary
// firstchild/nextsibling encoding round trip (Figure 1).
func BenchmarkE01_Figure1_TreeEncoding(b *testing.B) {
	tr := dom.RandomTree(rand.New(rand.NewSource(1)), 20000, []string{"a", "b", "c"}, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes, edges := tr.EncodeBinary()
		back := dom.DecodeBinary(nodes, edges)
		if back.Size() != tr.Size() {
			b.Fatal("round trip lost nodes")
		}
	}
}

// BenchmarkE02_Theorem24_LinearEvaluation: monadic datalog over trees in
// O(|P|·|dom|) — one representative point of the sweep in
// internal/mdatalog.
func BenchmarkE02_Theorem24_LinearEvaluation(b *testing.B) {
	p := mdatalog.ItalicProgram()
	for _, size := range []int{2000, 8000, 32000} {
		tr := dom.RandomTree(rand.New(rand.NewSource(2)), size, []string{"a", "i", "b"}, 6)
		b.Run(fmt.Sprintf("dom-%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mdatalog.Eval(p, tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE03_Prop23_GenericVsTree: the generic semi-naive engine vs
// the tree-specialized engine on the same monadic program.
func BenchmarkE03_Prop23_GenericVsTree(b *testing.B) {
	p := mdatalog.ItalicProgram()
	tr := dom.RandomTree(rand.New(rand.NewSource(3)), 2000, []string{"a", "i"}, 5)
	b.Run("tree-engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mdatalog.Eval(p, tr); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("generic-engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mdatalog.EvalGeneric(p, tr); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE04_Theorem27_TMNF: the normal-form translation is linear
// time.
func BenchmarkE04_Theorem27_TMNF(b *testing.B) {
	for _, n := range []int{20, 80, 320} {
		p := mdatalog.RandomProgram(rand.New(rand.NewSource(4)), 6, n, []string{"a", "b", "c"})
		b.Run(fmt.Sprintf("rules-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mdatalog.ToTMNF(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE05_Theorem25_MSOCompilation: automaton-defined MSO query
// compiled to monadic datalog vs evaluated directly.
func BenchmarkE05_Theorem25_MSOCompilation(b *testing.B) {
	tr := dom.RandomTree(rand.New(rand.NewSource(5)), 4000, []string{"a", "b", "c"}, 5)
	a := automata.HasAncestorLabel("a").CompleteAlphabetFor(tr)
	prog := a.CompileToDatalog("selected")
	b.Run("compiled-datalog", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mdatalog.Query(prog, tr, "selected"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct-automaton", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a.Select(tr)
		}
	})
}

// BenchmarkE06_Example21_Italic: the paper's first program on a real
// HTML parse tree.
func BenchmarkE06_Example21_Italic(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<html><body>")
	for i := 0; i < 500; i++ {
		sb.WriteString("<p>plain <i>it<b>alic</b></i> more</p>")
	}
	sb.WriteString("</body></html>")
	tr := htmlparse.Parse(sb.String())
	p := mdatalog.ItalicProgram()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mdatalog.Query(p, tr, "italic")
		if err != nil || len(res) == 0 {
			b.Fatalf("italic failed: %v", err)
		}
	}
}

// BenchmarkE07_VisualWrapper: full visual construction session plus
// evaluation (Figures 3/4).
func BenchmarkE07_VisualWrapper(b *testing.B) {
	sim := web.New()
	site := web.NewBookSite(7, 20)
	site.Register(sim, "books.example.com")
	doc, err := sim.Fetch("books.example.com/bestsellers.html")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := visual.NewSession(doc, "books.example.com/bestsellers.html")
		if err := s.AddDocumentPattern("page"); err != nil {
			b.Fatal(err)
		}
		r, _ := s.FindText(site.Books[0].Title)
		if _, err := s.AddPattern("title", "page", r); err != nil {
			b.Fatal(err)
		}
		if err := s.GeneralizePath("title", 2); err != nil {
			b.Fatal(err)
		}
		if err := s.RequireAttribute("title", "class", "title", "exact"); err != nil {
			b.Fatal(err)
		}
		counts, err := s.Test()
		if err != nil || counts["title"] != 20 {
			b.Fatalf("titles = %d, err %v", counts["title"], err)
		}
	}
}

// ebayFigure5 is the wrapper of Figure 5 (see internal/elog for the
// syntax notes).
const ebayFigure5 = `
tableseq(S, X) <- document("www.ebay.com/", S),
    subsq(S, (.body, []), (.table, []), (.table, []), X),
    before(S, X, (.table, [(elementtext, item, substr)]), 0, 0, _, _),
    after(S, X, .hr, 0, 0, _, _)
record(S, X) <- tableseq(_, S), subelem(S, .table, X)
itemdes(S, X) <- record(_, S), subelem(S, (?.td.?.a, []), X)
price(S, X) <- record(_, S), subelem(S, (?.td, [(elementtext, \var[Y].*, regvar)]), X), isCurrency(Y)
bids(S, X) <- record(_, S), subelem(S, ?.td, X), before(S, X, ?.td, 0, 30, Y, _), price(_, Y)
currency(S, X) <- price(_, S), subtext(S, \var[Y], X), isCurrency(Y)
`

// BenchmarkE08_Figure5_EbayWrapper: the complete Figure 5 program on a
// generated listing — the seed interpreter against the compiled bitset
// execution (elog.Compile), cold and with a warm fingerprint-keyed
// match cache (the continuous-wrapping server path).
func BenchmarkE08_Figure5_EbayWrapper(b *testing.B) {
	sim := web.New()
	site := web.NewAuctionSite(8, 100)
	site.PageSize = 100
	site.Register(sim, "www.ebay.com")
	page, err := sim.Fetch("www.ebay.com/")
	if err != nil {
		b.Fatal(err)
	}
	fetch := elog.MapFetcher{"www.ebay.com/": page}
	prog := elog.MustParse(ebayFigure5)
	checkRun := func(b *testing.B, base *pib.Base, err error) {
		b.Helper()
		if err != nil {
			b.Fatal(err)
		}
		if len(base.Instances("record")) != 100 {
			b.Fatalf("records = %d", len(base.Instances("record")))
		}
	}
	b.Run("interpreted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			base, err := elog.NewEvaluator(fetch).Run(prog)
			checkRun(b, base, err)
		}
	})
	b.Run("compiled-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			base, err := elog.NewEvaluator(fetch).RunCompiled(elog.MustCompile(prog))
			checkRun(b, base, err)
		}
	})
	b.Run("compiled-cached", func(b *testing.B) {
		cp := elog.MustCompile(prog)
		base, err := elog.NewEvaluator(fetch).RunCompiled(cp) // warm the match cache
		checkRun(b, base, err)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			base, err := elog.NewEvaluator(fetch).RunCompiled(cp)
			checkRun(b, base, err)
		}
	})
}

// BenchmarkE09_CoreXPathLinear: Core XPath combined complexity (one
// representative point; sweeps in internal/xpath).
func BenchmarkE09_CoreXPathLinear(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<html><body>")
	for i := 0; i < 300; i++ {
		sb.WriteString("<div><span>x</span><div><span>y</span></div></div>")
	}
	sb.WriteString("</body></html>")
	tr := htmlparse.Parse(sb.String())
	q := xpath.MustParse("//div[span and not(b)]//span")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xpath.EvalCore(q, tr, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10_Theorem41_NaiveVsPolynomial: the exponential naive
// evaluator vs the linear one on the pathological //div chains.
func BenchmarkE10_Theorem41_NaiveVsPolynomial(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<html><body>")
	depth := 12
	for i := 0; i < depth; i++ {
		sb.WriteString("<div><span>x</span>")
	}
	for i := 0; i < depth; i++ {
		sb.WriteString("</div>")
	}
	sb.WriteString("</body></html>")
	tr := htmlparse.Parse(sb.String())
	q := xpath.MustParse("//div//div//div//div")
	b.Run("naive-exponential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := xpath.EvalNaive(q, tr, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := xpath.EvalCore(q, tr, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE11_CQDichotomy: tractable vs NP-hard axis sets (Section 4,
// [18]); sweeps in internal/cq.
func BenchmarkE11_CQDichotomy(b *testing.B) {
	tr := dom.RandomTree(rand.New(rand.NewSource(11)), 250, []string{"a"}, 2)
	hard := &cq.Query{NumVars: 7, Free: -1}
	for i := 0; i < 6; i++ {
		ax := cq.Child
		if i%2 == 1 {
			ax = cq.ChildPlus
		}
		hard.Edges = append(hard.Edges, cq.EdgeAtom{Axis: ax, X: cq.Var(i), Y: cq.Var(i + 1)})
		hard.Labels = append(hard.Labels, cq.LabelAtom{X: cq.Var(i), Label: "a"})
	}
	hard.Labels = append(hard.Labels, cq.LabelAtom{X: 6, Label: "zz"}) // unsatisfiable: full search
	easy := &cq.Query{NumVars: 7, Free: 0}
	for i := 0; i < 6; i++ {
		ax := cq.Child
		if i%2 == 1 {
			ax = cq.NextSiblingStar
		}
		easy.Edges = append(easy.Edges, cq.EdgeAtom{Axis: ax, X: cq.Var(i), Y: cq.Var(i + 1)})
	}
	b.Run("nphard-side", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cq.EvalGeneric(hard, tr); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("poly-side", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cq.EvalAcyclic(easy, tr); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE12_Theorem46_XPathToTMNF: translate Core XPath to TMNF and
// evaluate.
func BenchmarkE12_Theorem46_XPathToTMNF(b *testing.B) {
	q := xpath.MustParse("//div[span and not(b)]//span")
	tr := htmlparse.Parse(strings.Repeat("<div><span>x</span></div>", 200))
	prog, qpred, err := xpath.TranslateCore(q)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("translate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := xpath.TranslateCore(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("evaluate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mdatalog.Query(prog, tr, qpred); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE13_Figure7_Pipeline: end-to-end transformation-server round
// (two wrappers, integrator, delivery).
func BenchmarkE13_Figure7_Pipeline(b *testing.B) {
	app, err := apps.NewPressClipping(13)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app.Engine.Tick()
	}
	if app.Out.Len() == 0 {
		b.Fatal("no deliveries")
	}
}

// BenchmarkE14_NowPlaying: a full 14-source integration step.
func BenchmarkE14_NowPlaying(b *testing.B) {
	app, err := apps.NewNowPlaying(14)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app.Step()
	}
	if app.Portal.Len() == 0 {
		b.Fatal("no portal updates")
	}
}

// BenchmarkE15_FlightMonitoring: poll + change-detection round.
func BenchmarkE15_FlightMonitoring(b *testing.B) {
	app, err := apps.NewFlightInfo(15, []apps.Subscription{{Number: "OS103"}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app.Step(i%3 == 0)
	}
}

// BenchmarkE16_PressToNITF: wrapping + NITF transformation.
func BenchmarkE16_PressToNITF(b *testing.B) {
	app, err := apps.NewPressClipping(16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app.Step(false, 0)
	}
}

// BenchmarkE17_PowerTrading: spot-price integration round.
func BenchmarkE17_PowerTrading(b *testing.B) {
	app, err := apps.NewPowerTrading(17)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app.Step()
	}
}

// BenchmarkE20_SharedFetchLayer: a fleet of 1000 wrapper sources
// monitoring 50 shared pages, polled one full round per iteration —
// per-wrapper fetching (every source fetches and parses its page
// privately, the pre-PR-5 behaviour) vs the shared fetch/document
// layer (one fetch+parse per page per freshness window, all sources
// sharing the parsed tree).
func BenchmarkE20_SharedFetchLayer(b *testing.B) {
	const nWrappers, nPages = 1000, 50
	newSim := func() *web.Web {
		sim := web.New()
		for p := 0; p < nPages; p++ {
			sim.SetStatic(fmt.Sprintf("fleet.example.com/p%d", p),
				fmt.Sprintf(`<html><body><table><tr><td class="t">item %d</td></tr><tr><td class="t">more %d</td></tr></table></body></html>`, p, p))
		}
		return sim
	}
	run := func(b *testing.B, cache *fetchcache.Cache) {
		sim := newSim()
		srcs := make([]*transform.WrapperSource, nWrappers)
		for i := range srcs {
			srcs[i] = &transform.WrapperSource{
				CompName: fmt.Sprintf("w%d", i),
				Fetcher:  sim,
				Program: elog.MustParse(fmt.Sprintf(
					`it(S, X) <- document("fleet.example.com/p%d", S), subelem(S, (?.td, [(class, t, exact)]), X)`, i%nPages)),
				Design: &pib.Design{Auxiliary: map[string]bool{"document": true}},
				Shared: cache,
			}
		}
		// Warm round: compile every program, populate the caches.
		for _, s := range srcs {
			if _, err := s.Poll(); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, s := range srcs {
				if _, err := s.Poll(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("private", func(b *testing.B) { run(b, nil) })
	b.Run("shared", func(b *testing.B) { run(b, fetchcache.New(nPages*2, time.Hour)) })
}

// BenchmarkE21_BatchedFleetExtraction: 100 wrappers stamped from one
// template, all monitoring the same page, whose content churns every
// round (so no fingerprint cache can short-circuit whole polls). The
// per-wrapper configuration fetches, parses and pattern-matches
// privately — 100 parses and 100 match computations per round. The
// batched configuration shares one fetch/document cache and one
// fleet-shared match cache, so a round costs about one parse plus one
// warmed match cache, with the other 99 wrappers answering their
// matches from the shared table.
func BenchmarkE21_BatchedFleetExtraction(b *testing.B) {
	const nWrappers = 100
	const url = "fleet.example.com/board"
	page := func(round int) string {
		var sb strings.Builder
		sb.WriteString("<html><body><table>")
		for r := 0; r < 400; r++ {
			tag := ""
			if r%50 == 0 {
				tag = "DEAL "
			}
			fmt.Fprintf(&sb, `<tr class="row"><td class="name">%sitem %d (round %d)</td><td class="price">$ %d</td></tr>`, tag, r, round, r*3+round)
		}
		sb.WriteString("</table></body></html>")
		return sb.String()
	}
	// Match-heavy, output-light: the regexp condition scans the text of
	// every row, but only a handful of rows are extracted — the shape of
	// a monitoring wrapper, and the work the shared match cache elides.
	prog := fmt.Sprintf(`
page(S, X) <- document(%q, S), subelem(S, .body, X)
row(S, X) <- page(_, S), subelem(S, (?.tr, [(elementtext, .*DEAL.*, regexp)]), X)
name(S, X) <- row(_, S), subelem(S, (?.td, [(class, name, exact)]), X)
price(S, X) <- row(_, S), subelem(S, (?.td, [(class, price, exact)]), X)
`, url)
	design := &pib.Design{Auxiliary: map[string]bool{"document": true, "page": true}}
	run := func(b *testing.B, batched bool) {
		round := 0
		sim := web.New()
		sim.SetPage(url, func() string { return page(round) })
		var mc *elog.MatchCache
		var cache *fetchcache.Cache
		if batched {
			mc = elog.NewMatchCache()
			cache = fetchcache.New(4, time.Hour)
		}
		srcs := make([]*transform.WrapperSource, nWrappers)
		for i := range srcs {
			srcs[i] = &transform.WrapperSource{
				CompName: fmt.Sprintf("w%d", i),
				Fetcher:  sim,
				Program:  elog.MustParse(prog),
				Design:   design,
				NoCache:  true, // content churns every round anyway
				Shared:   cache,
				Batch:    mc,
			}
		}
		pollRound := func() {
			// One freshness window per round: the batched fleet shares
			// one fetch+parse of the churned page.
			if cache != nil {
				cache.Flush()
			}
			for _, s := range srcs {
				if _, err := s.Poll(); err != nil {
					b.Fatal(err)
				}
			}
		}
		pollRound() // warm round: compile every program
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			round++
			pollRound()
		}
	}
	b.Run("per-wrapper", func(b *testing.B) { run(b, false) })
	b.Run("batched", func(b *testing.B) { run(b, true) })
}

// BenchmarkWrapperToXML measures the full extract+transform path used by
// every application, on a large page.
func BenchmarkWrapperToXML(b *testing.B) {
	sim := web.New()
	web.NewBookSite(18, 500).Register(sim, "books.example.com")
	prog := elog.MustParse(`
page(S, X) <- document("books.example.com/bestsellers.html", S), subelem(S, .body, X)
book(S, X) <- page(_, S), subelem(S, (?.tr, [(class, book, exact)]), X)
title(S, X) <- book(_, S), subelem(S, (?.td, [(class, title, exact)]), X)
price(S, X) <- book(_, S), subelem(S, (?.td, [(class, price, exact)]), X)
`)
	design := &pib.Design{Auxiliary: map[string]bool{"document": true, "page": true}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base, err := elog.NewEvaluator(sim).Run(prog)
		if err != nil {
			b.Fatal(err)
		}
		if out := design.Transform(base); len(out.Children) == 0 {
			b.Fatal("empty output")
		}
	}
}

// Differential guard: the root suite also re-checks one instance of the
// central equivalences so that `go test .` exercises the cross-engine
// contracts without descending into the internal packages.
func TestRootCrossEngineSanity(t *testing.T) {
	tr := htmlparse.Parse(`<body><table><tr><td>a</td></tr><tr><td><i>b</i></td></tr></table></body>`)
	// XPath three ways.
	q := xpath.MustParse("//tr[td[i]]")
	lin, err := xpath.EvalCore(q, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := xpath.EvalNaive(q, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	naive = tr.SortDocOrder(naive)
	prog, qpred, err := xpath.TranslateCore(q)
	if err != nil {
		t.Fatal(err)
	}
	viaTMNF, err := mdatalog.Query(prog, tr, qpred)
	if err != nil {
		t.Fatal(err)
	}
	if len(lin) != 1 || len(naive) != 1 || len(viaTMNF) != 1 || lin[0] != naive[0] || lin[0] != viaTMNF[0] {
		t.Fatalf("engines disagree: core=%v naive=%v tmnf=%v", lin, naive, viaTMNF)
	}
	// Monadic datalog two ways.
	p := datalog.MustParse(`q(X) :- label_td(X).`)
	fast, err := mdatalog.Eval(p, tr)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := mdatalog.EvalGeneric(p, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast["q"]) != 2 || len(slow["q"]) != 2 {
		t.Fatalf("datalog engines disagree: %v vs %v", fast["q"], slow["q"])
	}
}

// BenchmarkE22_WatchFanout: the encode-once delivery plane under a
// subscriber fleet. A wrapper whose document changes every tick is
// watched by 100 SSE subscribers; each iteration is one changed tick
// delivered end to end — encode once, fan the shared bytes out, and
// every subscriber holds the event. Compare with "poll": the same tick
// consumed by 100 conditional-GET pollers, i.e. 100 independent reads
// against the same snapshot.
func BenchmarkE22_WatchFanout(b *testing.B) {
	const nReaders = 100
	tick := 0
	out := &transform.Collector{CompName: "hot"}
	pipe := &churnBenchPipe{name: "hot", out: out, tick: &tick}
	deliver := func(h http.Handler) {
		tick++
		doc := xmlenc.NewElement("doc")
		doc.SetAttr("n", strconv.Itoa(tick))
		for i := 0; i < 50; i++ {
			doc.AppendTextElement("row", fmt.Sprintf("item %d of tick %d", i, tick))
		}
		if _, err := out.Process("", doc); err != nil {
			b.Fatal(err)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/hot", nil))
		if rec.Code != 200 {
			b.Fatalf("GET /hot = %d", rec.Code)
		}
	}

	b.Run("watch", func(b *testing.B) {
		s := server.New(server.Config{WatchQueue: 16})
		if err := s.Register(pipe, time.Hour); err != nil {
			b.Fatal(err)
		}
		h := s.Handler()
		deliver(h)
		ts := httptest.NewServer(h)
		defer ts.Close()

		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var received atomic.Int64
		var wg, ready sync.WaitGroup
		client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: nReaders}}
		for i := 0; i < nReaders; i++ {
			ready.Add(1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				first := true
				done := func() {
					if first {
						first = false
						ready.Done()
					}
				}
				defer done()
				req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/wrappers/hot/watch", nil)
				resp, err := client.Do(req)
				if err != nil {
					return
				}
				defer resp.Body.Close()
				br := bufio.NewReader(resp.Body)
				for {
					line, err := br.ReadString('\n')
					if err != nil {
						return
					}
					if strings.HasPrefix(line, "event: result") {
						if first {
							done()
							continue
						}
						received.Add(1)
					}
				}
			}()
		}
		ready.Wait()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			base := received.Load()
			deliver(h)
			for received.Load() < base+nReaders {
				time.Sleep(100 * time.Microsecond)
			}
		}
		b.StopTimer()
		cancel()
		wg.Wait()
	})

	b.Run("poll", func(b *testing.B) {
		s := server.New(server.Config{})
		if err := s.Register(pipe, time.Hour); err != nil {
			b.Fatal(err)
		}
		h := s.Handler()
		deliver(h)
		for i := 0; i < b.N; i++ {
			deliver(h)
			var wg sync.WaitGroup
			for r := 0; r < nReaders; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, httptest.NewRequest("GET", "/hot", nil))
					if rec.Code != 200 {
						b.Error(rec.Code)
					}
				}()
			}
			wg.Wait()
		}
	})
}

// churnBenchPipe adapts the shared churning collector to the server's
// Pipeline interface for E22.
type churnBenchPipe struct {
	name string
	out  *transform.Collector
	tick *int
}

func (p *churnBenchPipe) PipeName() string             { return p.name }
func (p *churnBenchPipe) Output() *transform.Collector { return p.out }
func (p *churnBenchPipe) Tick() error                  { return nil }

// BenchmarkE24_ChurnIncremental: incremental extraction across document
// versions. A catalogue page churns a contiguous ~5% window of its
// sections per round while the rest stays byte-identical; one compiled
// wrapper is held across rounds. "full" re-matches every pattern from
// scratch each round, "incremental" reuses the content-addressed
// subtree matches of the clean sections and runs the matcher only over
// the dirty window. Both produce bit-identical instance bases (pinned
// by the differential tests); only the evaluation cost differs.
func BenchmarkE24_ChurnIncremental(b *testing.B) {
	const sections, rowsPer, window = 40, 20, 2
	const url = "churn.example.com/catalogue"
	progText := fmt.Sprintf(`
page(S, X)    <- document(%q, S), subelem(S, .body, X)
section(S, X) <- page(_, S), subelem(S, (.div, [(class, section, exact)]), X)
row(S, X)     <- section(_, S), subelem(S, (?.tr, [(elementtext, .*SALE.*, regexp)]), X)
name(S, X)    <- row(_, S), subelem(S, (?.td, [(class, name, exact)]), X)
`, url)
	run := func(b *testing.B, incremental bool) {
		version := make([]int, sections)
		round := 0
		page := func() string {
			var sb strings.Builder
			sb.WriteString("<html><body>")
			for s := 0; s < sections; s++ {
				v := version[s]
				sb.WriteString(`<div class="section"><table>`)
				for r := 0; r < rowsPer; r++ {
					tag := ""
					if r == v%rowsPer {
						tag = "SALE "
					}
					fmt.Fprintf(&sb, `<tr><td class="name">%sitem %d.%d v%d</td></tr>`, tag, s, r, v)
				}
				sb.WriteString("</table></div>")
			}
			sb.WriteString("</body></html>")
			return sb.String()
		}
		bump := func() {
			start := (round * window) % sections
			for i := 0; i < window; i++ {
				version[(start+i)%sections]++
			}
			round++
		}
		// A fresh compiled program per mode: the two modes must not share
		// fingerprint-keyed caches, or the second would answer its early
		// rounds (byte-identical to the first mode's) from the cache.
		prog := elog.MustCompile(elog.MustParse(progText))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			bump()
			tr := htmlparse.Parse(page())
			tr.Warm()
			fetch := elog.MapFetcher{url: tr}
			b.StartTimer()
			ev := elog.NewEvaluator(fetch)
			ev.Incremental = incremental
			if _, err := ev.RunCompiled(prog); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("full", func(b *testing.B) { run(b, false) })
	b.Run("incremental", func(b *testing.B) { run(b, true) })
}

// BenchmarkE26_ChurnEndToEnd: the whole tick — evaluate, transform,
// encode — for one long-lived wrapper over a churning catalogue, with
// the page bump and parse off the clock. "full" rebuilds everything
// from scratch; "incremental" carries reuse through every layer:
// subtree-fingerprint match reuse in the evaluator, content-hash
// output-subtree splicing in the transformer, and frozen-subtree byte
// splicing in the encoder.
func BenchmarkE26_ChurnEndToEnd(b *testing.B) {
	const sections, rowsPer, window = 40, 20, 2
	const url = "churn.example.com/catalogue"
	progText := fmt.Sprintf(`
page(S, X)    <- document(%q, S), subelem(S, .body, X)
section(S, X) <- page(_, S), subelem(S, (.div, [(class, section, exact)]), X)
row(S, X)     <- section(_, S), subelem(S, (?.tr, [(elementtext, .*SALE.*, regexp)]), X)
name(S, X)    <- row(_, S), subelem(S, (?.td, [(class, name, exact)]), X)
`, url)
	run := func(b *testing.B, incremental bool) {
		version := make([]int, sections)
		round := 0
		page := func() string {
			var sb strings.Builder
			sb.WriteString("<html><body>")
			for s := 0; s < sections; s++ {
				v := version[s]
				sb.WriteString(`<div class="section"><table>`)
				for r := 0; r < rowsPer; r++ {
					tag := ""
					if r == v%rowsPer {
						tag = "SALE "
					}
					fmt.Fprintf(&sb, `<tr><td class="name">%sitem %d.%d v%d</td></tr>`, tag, s, r, v)
				}
				sb.WriteString("</table></div>")
			}
			sb.WriteString("</body></html>")
			return sb.String()
		}
		bump := func() {
			start := (round * window) % sections
			for i := 0; i < window; i++ {
				version[(start+i)%sections]++
			}
			round++
		}
		src := &transform.WrapperSource{
			CompName:            "e26",
			Program:             elog.MustParse(progText),
			Design:              &pib.Design{Auxiliary: map[string]bool{"document": true, "page": true, "section": true}},
			NoCache:             true,
			NoIncremental:       !incremental,
			NoIncrementalOutput: !incremental,
		}
		enc := xmlenc.NewEncoder()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			bump()
			tr := htmlparse.Parse(page())
			tr.Warm()
			src.Fetcher = elog.MapFetcher{url: tr}
			b.StartTimer()
			docs, err := src.Poll()
			if err != nil {
				b.Fatal(err)
			}
			if incremental {
				enc.MarshalIndentBytes(docs[0])
			} else {
				xmlenc.MarshalIndentBytes(docs[0])
			}
		}
	}
	b.Run("full", func(b *testing.B) { run(b, false) })
	b.Run("incremental", func(b *testing.B) { run(b, true) })
}

// BenchmarkE25_DurableDelivery: the durable publish path. Each
// iteration is one changed tick plus the read that publishes it; with a
// result log attached the snapshot is not served until the delivery is
// appended to the WAL (durable before acknowledged). "mem" is the
// in-memory delivery plane, "wal-batch" appends with the background
// fsync batcher (the default), "wal-always" fsyncs inside every append.
func BenchmarkE25_DurableDelivery(b *testing.B) {
	run := func(b *testing.B, durable bool, mode resultlog.FsyncMode) {
		tick := 0
		out := &transform.Collector{CompName: "hot25"}
		pipe := &churnBenchPipe{name: "hot25", out: out, tick: &tick}
		cfg := server.Config{}
		if durable {
			store, err := resultlog.Open(b.TempDir(), resultlog.Options{Fsync: mode})
			if err != nil {
				b.Fatal(err)
			}
			defer store.Close()
			cfg.ResultStore = store
		}
		s := server.New(cfg)
		if err := s.Register(pipe, time.Hour); err != nil {
			b.Fatal(err)
		}
		h := s.Handler()
		deliver := func() {
			tick++
			doc := xmlenc.NewElement("doc")
			doc.SetAttr("n", strconv.Itoa(tick))
			for i := 0; i < 50; i++ {
				doc.AppendTextElement("row", fmt.Sprintf("item %d of tick %d", i, tick))
			}
			if _, err := out.Process("", doc); err != nil {
				b.Fatal(err)
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/hot25", nil))
			if rec.Code != 200 {
				b.Fatalf("GET /hot25 = %d", rec.Code)
			}
		}
		deliver() // warm
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			deliver()
		}
	}
	b.Run("mem", func(b *testing.B) { run(b, false, 0) })
	b.Run("wal-batch", func(b *testing.B) { run(b, true, resultlog.FsyncBatch) })
	b.Run("wal-always", func(b *testing.B) { run(b, true, resultlog.FsyncAlways) })
}
