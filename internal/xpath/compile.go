package xpath

import (
	"sync"

	"repro/internal/dom"
)

// Compiled is a parsed and analyzed query: a reusable value that picks
// the right evaluator once (the linear Core algorithm when the path is
// in Core XPath, the context-value-table algorithm otherwise) and
// memoizes whole-document results keyed by the tree's content
// fingerprint. Compiling once and evaluating many times is the server
// usage pattern: repeated evaluations over unchanged documents cost one
// fingerprint check.
type Compiled struct {
	// Path is the parsed query (read-only after Compile).
	Path *Path
	core bool

	mu    sync.Mutex
	cache map[uint64][]dom.NodeID
}

// compiledCacheMax bounds the per-query fingerprint cache; when full
// the cache is reset (documents seen by one query rarely exceed this).
const compiledCacheMax = 64

// Compile parses and analyzes a query.
func Compile(src string) (*Compiled, error) {
	p, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return CompilePath(p), nil
}

// MustCompile is Compile that panics on error, for tests and
// package-level query values.
func MustCompile(src string) *Compiled {
	c, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return c
}

// CompilePath analyzes an already-parsed path.
func CompilePath(p *Path) *Compiled {
	return &Compiled{Path: p, core: p.IsCore()}
}

// IsCore reports whether the query is evaluated by the linear-time Core
// XPath algorithm.
func (c *Compiled) IsCore() bool { return c.core }

func (c *Compiled) String() string { return c.Path.String() }

// Eval evaluates the query on t from the given context (nil = root),
// dispatching to EvalCore or EvalFull. Results are in document order.
func (c *Compiled) Eval(t *dom.Tree, context []dom.NodeID) ([]dom.NodeID, error) {
	if c.core {
		return EvalCore(c.Path, t, context)
	}
	return EvalFull(c.Path, t, context)
}

// EvalCached evaluates the query from the root context, memoizing the
// result per tree fingerprint: re-evaluating over a document whose
// content has not changed is a hash lookup plus a copy of the result
// slice.
//
// Concurrent EvalCached calls on the same Compiled are serialized by
// its lock (fingerprinting and evaluation both run under it). Note
// that dom.Tree's lazy indexes (Reindex, Fingerprint, label bitsets)
// are themselves unsynchronized, so evaluating *different* Compiled
// queries over the same tree from multiple goroutines requires either
// external synchronization or warming the tree first (one prior
// single-threaded evaluation, or Reindex+Fingerprint).
func (c *Compiled) EvalCached(t *dom.Tree) ([]dom.NodeID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fp := t.Fingerprint()
	if nodes, ok := c.cache[fp]; ok {
		return append([]dom.NodeID(nil), nodes...), nil
	}
	nodes, err := c.Eval(t, nil)
	if err != nil {
		return nil, err
	}
	if c.cache == nil || len(c.cache) >= compiledCacheMax {
		c.cache = make(map[uint64][]dom.NodeID, 8)
	}
	c.cache[fp] = nodes
	return append([]dom.NodeID(nil), nodes...), nil
}
