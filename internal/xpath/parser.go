package xpath

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses an XPath expression in the fragment described in the
// package comment. Supported syntax:
//
//	/html/body/table            absolute paths
//	//table[tr]/td              '//' abbreviation, existence predicates
//	child::a, descendant::b     explicit axes
//	.. . @href text() node()    abbreviations and node tests
//	[not(b) and (c or d)]       boolean predicates
//	[3] [position()=2] [last()] positional predicates (extended)
//	[@class='x'] [text()!='y']  value comparisons (extended)
//	[count(tr)>2] [contains(@href,'x')]
func Parse(src string) (*Path, error) {
	p := &parser{lex: newLexer(src)}
	path, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	if p.lex.peek().kind != tokEOF {
		return nil, fmt.Errorf("xpath: trailing input %q", p.lex.peek().text)
	}
	return path, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) *Path {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokSlash
	tokDblSlash
	tokName   // identifier
	tokAt     // @
	tokLBrack // [
	tokRBrack // ]
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokDotDot
	tokStar
	tokString
	tokNumber
	tokOp     // = != < <= > >=
	tokAxis   // name:: (the name is in text)
	tokDollar // unused, reserved
)

type token struct {
	kind tokKind
	text string
	num  float64
}

type lexer struct {
	src  string
	pos  int
	cur  token
	have bool
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) peek() token {
	if !l.have {
		l.cur = l.scan()
		l.have = true
	}
	return l.cur
}

func (l *lexer) next() token {
	t := l.peek()
	l.have = false
	return t
}

func (l *lexer) scan() token {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF}
	}
	c := l.src[l.pos]
	switch c {
	case '/':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
			l.pos += 2
			return token{kind: tokDblSlash, text: "//"}
		}
		l.pos++
		return token{kind: tokSlash, text: "/"}
	case '@':
		l.pos++
		return token{kind: tokAt, text: "@"}
	case '[':
		l.pos++
		return token{kind: tokLBrack, text: "["}
	case ']':
		l.pos++
		return token{kind: tokRBrack, text: "]"}
	case '(':
		l.pos++
		return token{kind: tokLParen, text: "("}
	case ')':
		l.pos++
		return token{kind: tokRParen, text: ")"}
	case ',':
		l.pos++
		return token{kind: tokComma, text: ","}
	case '*':
		l.pos++
		return token{kind: tokStar, text: "*"}
	case '.':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '.' {
			l.pos += 2
			return token{kind: tokDotDot, text: ".."}
		}
		l.pos++
		return token{kind: tokDot, text: "."}
	case '=':
		l.pos++
		return token{kind: tokOp, text: "="}
	case '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokOp, text: "!="}
		}
		l.pos++
		return token{kind: tokOp, text: "!"}
	case '<', '>':
		op := string(c)
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			op += "="
			l.pos++
		}
		return token{kind: tokOp, text: op}
	case '\'', '"':
		q := c
		l.pos++
		start := l.pos
		for l.pos < len(l.src) && l.src[l.pos] != q {
			l.pos++
		}
		s := l.src[start:l.pos]
		if l.pos < len(l.src) {
			l.pos++
		}
		return token{kind: tokString, text: s}
	}
	if c >= '0' && c <= '9' {
		start := l.pos
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
			l.pos++
		}
		f, err := strconv.ParseFloat(l.src[start:l.pos], 64)
		if err != nil {
			return token{kind: tokEOF, text: "bad number"}
		}
		return token{kind: tokNumber, num: f, text: l.src[start:l.pos]}
	}
	if isNameStart(c) {
		start := l.pos
		for l.pos < len(l.src) && isNameChar(l.src[l.pos]) {
			l.pos++
		}
		name := l.src[start:l.pos]
		// Axis specifier?
		if strings.HasPrefix(l.src[l.pos:], "::") {
			l.pos += 2
			return token{kind: tokAxis, text: name}
		}
		return token{kind: tokName, text: name}
	}
	// Unknown byte: skip to avoid loops; report as EOF with message.
	l.pos++
	return token{kind: tokEOF, text: fmt.Sprintf("unexpected byte %q", c)}
}

func isNameStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9' || c == '-'
}

type parser struct {
	lex *lexer
}

func (p *parser) parsePath() (*Path, error) {
	path := &Path{}
	tk := p.lex.peek()
	switch tk.kind {
	case tokSlash:
		p.lex.next()
		path.Absolute = true
		if p.lex.peek().kind == tokEOF {
			// "/" alone selects the root: encode as absolute self::node().
			path.Steps = append(path.Steps, Step{Axis: AxisSelf, Test: NodeTest{Kind: TestNode}})
			return path, nil
		}
	case tokDblSlash:
		p.lex.next()
		path.Absolute = true
		path.Steps = append(path.Steps, Step{Axis: AxisDescendantOrSelf, Test: NodeTest{Kind: TestNode}})
	}
	for {
		step, err := p.parseStep()
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, step)
		switch p.lex.peek().kind {
		case tokSlash:
			p.lex.next()
		case tokDblSlash:
			p.lex.next()
			path.Steps = append(path.Steps, Step{Axis: AxisDescendantOrSelf, Test: NodeTest{Kind: TestNode}})
		default:
			return path, nil
		}
	}
}

func (p *parser) parseStep() (Step, error) {
	tk := p.lex.peek()
	step := Step{Axis: AxisChild}
	switch tk.kind {
	case tokDot:
		p.lex.next()
		step.Axis = AxisSelf
		step.Test = NodeTest{Kind: TestNode}
		return p.parsePreds(step)
	case tokDotDot:
		p.lex.next()
		step.Axis = AxisParent
		step.Test = NodeTest{Kind: TestNode}
		return p.parsePreds(step)
	case tokAxis:
		p.lex.next()
		ax, ok := axisByName[tk.text]
		if !ok {
			return step, fmt.Errorf("xpath: unknown axis %q", tk.text)
		}
		step.Axis = ax
	case tokAt:
		return step, fmt.Errorf("xpath: the attribute axis is not a location step in this fragment; use @name inside predicates")
	}
	test, err := p.parseNodeTest()
	if err != nil {
		return step, err
	}
	step.Test = test
	return p.parsePreds(step)
}

func (p *parser) parseNodeTest() (NodeTest, error) {
	tk := p.lex.next()
	switch tk.kind {
	case tokStar:
		return NodeTest{Kind: TestAny}, nil
	case tokName:
		// text(), node(), comment()?
		if p.lex.peek().kind == tokLParen {
			switch tk.text {
			case "text", "node", "comment":
				p.lex.next()
				if p.lex.next().kind != tokRParen {
					return NodeTest{}, fmt.Errorf("xpath: expected ')' after %s(", tk.text)
				}
				switch tk.text {
				case "text":
					return NodeTest{Kind: TestText}, nil
				case "node":
					return NodeTest{Kind: TestNode}, nil
				default:
					return NodeTest{Kind: TestComment}, nil
				}
			default:
				return NodeTest{}, fmt.Errorf("xpath: unknown node test %s()", tk.text)
			}
		}
		return NodeTest{Kind: TestName, Name: tk.text}, nil
	}
	return NodeTest{}, fmt.Errorf("xpath: expected node test, got %q", tk.text)
}

func (p *parser) parsePreds(step Step) (Step, error) {
	for p.lex.peek().kind == tokLBrack {
		p.lex.next()
		e, err := p.parseExpr()
		if err != nil {
			return step, err
		}
		if p.lex.next().kind != tokRBrack {
			return step, fmt.Errorf("xpath: expected ']' after predicate %s", e)
		}
		step.Preds = append(step.Preds, e)
	}
	return step, nil
}

// parseExpr parses or-expressions (lowest precedence).
func (p *parser) parseExpr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.lex.peek().kind == tokName && p.lex.peek().text == "or" {
		p.lex.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for p.lex.peek().kind == tokName && p.lex.peek().text == "and" {
		p.lex.next()
		r, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		l = And{L: l, R: r}
	}
	return l, nil
}

// parseComparison parses a primary, optionally followed by a comparison
// operator and another primary.
func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if p.lex.peek().kind == tokOp {
		op := p.lex.next().text
		if op == "!" {
			return nil, fmt.Errorf("xpath: '!' is not an operator (use !=)")
		}
		rv, err := p.parseValue()
		if err != nil {
			return nil, err
		}
		lv, err := exprToValue(l)
		if err != nil {
			return nil, err
		}
		return Compare{Op: op, L: lv, R: rv}, nil
	}
	return l, nil
}

// exprToValue reinterprets an expression parsed as a primary when it
// turns out to be the left side of a comparison.
func exprToValue(e Expr) (ValueExpr, error) {
	switch x := e.(type) {
	case ExistsPath:
		// A path compared to a value: its string-value (existential
		// comparison is handled by the evaluator).
		return StringFn{Path: x.Path}, nil
	case Compare:
		return nil, fmt.Errorf("xpath: chained comparisons are not supported")
	case NumberPred:
		return Number{N: x.N}, nil
	case valueWrapper:
		return x.v, nil
	}
	return nil, fmt.Errorf("xpath: %s cannot be compared", e)
}

// valueWrapper lets parsePrimary return naked value expressions
// (position(), @attr, literals) that may stand alone or in comparisons.
type valueWrapper struct{ v ValueExpr }

func (valueWrapper) isExpr() {}
func (w valueWrapper) String() string {
	return w.v.String()
}

func (p *parser) parsePrimary() (Expr, error) {
	tk := p.lex.peek()
	switch tk.kind {
	case tokLParen:
		p.lex.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.lex.next().kind != tokRParen {
			return nil, fmt.Errorf("xpath: expected ')'")
		}
		return e, nil
	case tokNumber:
		p.lex.next()
		return NumberPred{N: tk.num}, nil
	case tokString:
		p.lex.next()
		return valueWrapper{Literal{S: tk.text}}, nil
	case tokAt:
		p.lex.next()
		name := p.lex.next()
		if name.kind != tokName {
			return nil, fmt.Errorf("xpath: expected attribute name after @")
		}
		return valueWrapper{AttrRef{Name: name.text}}, nil
	case tokName:
		switch tk.text {
		case "not":
			p.lex.next()
			if p.lex.next().kind != tokLParen {
				return nil, fmt.Errorf("xpath: expected '(' after not")
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.lex.next().kind != tokRParen {
				return nil, fmt.Errorf("xpath: expected ')' after not(...)")
			}
			return Not{E: e}, nil
		case "position", "last", "count", "string", "contains":
			// Function call?
			save := *p.lex
			p.lex.next()
			if p.lex.peek().kind == tokLParen {
				return p.parseFunction(tk.text)
			}
			*p.lex = save
		}
		// A relative path predicate.
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		return ExistsPath{Path: path}, nil
	case tokSlash, tokDblSlash, tokDot, tokDotDot, tokAxis, tokStar:
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		return ExistsPath{Path: path}, nil
	}
	return nil, fmt.Errorf("xpath: unexpected token %q in predicate", tk.text)
}

func (p *parser) parseFunction(name string) (Expr, error) {
	if p.lex.next().kind != tokLParen {
		return nil, fmt.Errorf("xpath: expected '(' after %s", name)
	}
	switch name {
	case "position":
		if p.lex.next().kind != tokRParen {
			return nil, fmt.Errorf("xpath: position() takes no arguments")
		}
		return valueWrapper{PositionFn{}}, nil
	case "last":
		if p.lex.next().kind != tokRParen {
			return nil, fmt.Errorf("xpath: last() takes no arguments")
		}
		return valueWrapper{LastFn{}}, nil
	case "count":
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		if p.lex.next().kind != tokRParen {
			return nil, fmt.Errorf("xpath: expected ')' after count path")
		}
		return valueWrapper{CountFn{Path: path}}, nil
	case "string":
		if p.lex.peek().kind == tokDot {
			p.lex.next()
			if p.lex.next().kind != tokRParen {
				return nil, fmt.Errorf("xpath: expected ')' after string(.)")
			}
			return valueWrapper{StringFn{}}, nil
		}
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		if p.lex.next().kind != tokRParen {
			return nil, fmt.Errorf("xpath: expected ')' after string path")
		}
		return valueWrapper{StringFn{Path: path}}, nil
	case "contains":
		a, err := p.parseValueArg()
		if err != nil {
			return nil, err
		}
		if p.lex.next().kind != tokComma {
			return nil, fmt.Errorf("xpath: expected ',' in contains")
		}
		b, err := p.parseValueArg()
		if err != nil {
			return nil, err
		}
		if p.lex.next().kind != tokRParen {
			return nil, fmt.Errorf("xpath: expected ')' after contains")
		}
		return Compare{Op: "=", L: ContainsFn{A: a, B: b}, R: Number{N: 1}}, nil
	}
	return nil, fmt.Errorf("xpath: unknown function %s", name)
}

func (p *parser) parseValueArg() (ValueExpr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	return exprToValue(e)
}

func (p *parser) parseValue() (ValueExpr, error) {
	tk := p.lex.peek()
	switch tk.kind {
	case tokNumber:
		p.lex.next()
		return Number{N: tk.num}, nil
	case tokString:
		p.lex.next()
		return Literal{S: tk.text}, nil
	}
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	return exprToValue(e)
}
