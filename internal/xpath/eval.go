package xpath

import (
	"fmt"

	"repro/internal/dom"
	"repro/internal/nodeset"
)

// EvalCore evaluates a Core XPath path on tree t in time O(|D| · |Q|)
// using the set-algebraic algorithm of [15, 16]: every location step is
// one linear-time axis application over node sets, and every condition
// predicate is translated to the set of nodes satisfying it by one
// backward pass per path inside the condition.
//
// Relative paths are evaluated from the given context set; pass nil to
// use the root (the common case for absolute queries). Results are in
// document order.
func EvalCore(p *Path, t *dom.Tree, context []dom.NodeID) ([]dom.NodeID, error) {
	if !p.IsCore() {
		return nil, fmt.Errorf("xpath: %s is not in Core XPath (positional/value predicates present); use EvalFull", p)
	}
	if t.Size() == 0 {
		return nil, nil
	}
	t.Reindex()
	var start nodeset.Set
	virtual := false
	switch {
	case p.Absolute:
		// Absolute paths start at the virtual document root (the node
		// above the root element), so that /html selects the html
		// element and //x includes the root element.
		start = nodeset.New(t)
		virtual = true
	case context == nil:
		start = nodeset.Singleton(t, t.Root())
	default:
		start = nodeset.FromSlice(t, context)
	}
	res, virt := evalSteps(t, p.Steps, start, virtual)
	if virt {
		// A final context still containing the virtual root (query "/")
		// materializes as the root element — the closest representable
		// node.
		res.Add(t.Root())
	}
	return res.Nodes(t), nil
}

// evalSteps applies the steps of a path to a context set. The virtual
// flag tracks whether the virtual document root is part of the context;
// its axis images are child = {root element}, descendant(-or-self) =
// all nodes, self = itself, and the empty set for all other axes.
func evalSteps(t *dom.Tree, steps []Step, ctx nodeset.Set, virtual bool) (nodeset.Set, bool) {
	cur := ctx
	for _, s := range steps {
		next := applyAxis(t, s.Axis, cur)
		if virtual {
			switch s.Axis {
			case AxisChild:
				next.Add(t.Root())
			case AxisDescendant, AxisDescendantOrSelf:
				next.Or(nodeset.Full(t))
			}
		}
		// Does the virtual root survive this step? Only self and
		// descendant-or-self keep it, under a node() test; predicates
		// are then evaluated at the virtual root itself (a negated
		// condition like [not(parent::*)] DOES hold there, so dropping
		// it whenever predicates exist would lose answers).
		virtual = virtual &&
			(s.Axis == AxisSelf || s.Axis == AxisDescendantOrSelf) &&
			s.Test.Kind == TestNode
		for _, pred := range s.Preds {
			if !virtual {
				break
			}
			virtual = condHoldsAtVirtualRoot(t, pred)
		}
		next.And(testSet(t, s.Test))
		for _, pred := range s.Preds {
			next.And(condSet(t, pred))
		}
		cur = next
	}
	return cur, virtual
}

// applyAxis maps a context set through an axis in O(|dom|).
func applyAxis(t *dom.Tree, a Axis, s nodeset.Set) nodeset.Set {
	switch a {
	case AxisSelf:
		return s.Clone()
	case AxisChild:
		return nodeset.Children(t, s)
	case AxisParent:
		return nodeset.Parents(t, s)
	case AxisDescendant:
		return nodeset.Descendants(t, s)
	case AxisDescendantOrSelf:
		return nodeset.DescendantsOrSelf(t, s)
	case AxisAncestor:
		return nodeset.Ancestors(t, s)
	case AxisAncestorOrSelf:
		return nodeset.AncestorsOrSelf(t, s)
	case AxisFollowing:
		return nodeset.Following(t, s)
	case AxisPreceding:
		return nodeset.Preceding(t, s)
	case AxisFollowingSibling:
		return nodeset.FollowingSiblings(t, s)
	case AxisPrecedingSibling:
		return nodeset.PrecedingSiblings(t, s)
	}
	return nodeset.New(t)
}

// inverseAxis returns the axis whose relation is the converse; used for
// the backward condition passes.
func inverseAxis(a Axis) Axis {
	switch a {
	case AxisSelf:
		return AxisSelf
	case AxisChild:
		return AxisParent
	case AxisParent:
		return AxisChild
	case AxisDescendant:
		return AxisAncestor
	case AxisAncestor:
		return AxisDescendant
	case AxisDescendantOrSelf:
		return AxisAncestorOrSelf
	case AxisAncestorOrSelf:
		return AxisDescendantOrSelf
	case AxisFollowing:
		return AxisPreceding
	case AxisPreceding:
		return AxisFollowing
	case AxisFollowingSibling:
		return AxisPrecedingSibling
	case AxisPrecedingSibling:
		return AxisFollowingSibling
	}
	return a
}

// testSet returns the set of nodes passing a node test. With interned
// labels and the dom-cached characteristic bitsets this is a word copy,
// not a |dom| string-comparison sweep.
func testSet(t *dom.Tree, nt NodeTest) nodeset.Set {
	switch nt.Kind {
	case TestName:
		id := t.LabelIDFor(nt.Name)
		if id == dom.NoLabel {
			return nodeset.New(t)
		}
		// The element-kind mask keeps the seed semantics exact even for
		// perverse trees where a tag label collides with the #text or
		// #comment pseudo-labels.
		out := nodeset.FromWords(t, t.LabelBits(id))
		return out.And(nodeset.FromWords(t, t.KindBits(dom.Element)))
	case TestAny:
		return nodeset.FromWords(t, t.KindBits(dom.Element))
	case TestText:
		return nodeset.FromWords(t, t.KindBits(dom.Text))
	case TestComment:
		return nodeset.FromWords(t, t.KindBits(dom.Comment))
	case TestNode:
		return nodeset.Full(t)
	}
	return nodeset.New(t)
}

// condSet computes the set of nodes at which a Core XPath condition
// holds. Each ExistsPath inside the condition costs O(|path| · |dom|)
// via a backward pass; boolean operations are pointwise.
func condSet(t *dom.Tree, e Expr) nodeset.Set {
	switch x := e.(type) {
	case And:
		return condSet(t, x.L).And(condSet(t, x.R))
	case Or:
		return condSet(t, x.L).Or(condSet(t, x.R))
	case Not:
		return condSet(t, x.E).Not()
	case ExistsPath:
		return existsSet(t, x.Path)
	}
	// Non-Core predicate reaching the linear evaluator is a programming
	// error (guarded by IsCore); fail closed with the empty set.
	return nodeset.New(t)
}

// condHoldsAtVirtualRoot evaluates a Core condition at the virtual
// document root: boolean operators pointwise, and an ExistsPath —
// relative or absolute, both start at the virtual root there —
// evaluated forward from the virtual root.
func condHoldsAtVirtualRoot(t *dom.Tree, e Expr) bool {
	switch x := e.(type) {
	case And:
		return condHoldsAtVirtualRoot(t, x.L) && condHoldsAtVirtualRoot(t, x.R)
	case Or:
		return condHoldsAtVirtualRoot(t, x.L) || condHoldsAtVirtualRoot(t, x.R)
	case Not:
		return !condHoldsAtVirtualRoot(t, x.E)
	case ExistsPath:
		res, virt := evalSteps(t, x.Path.Steps, nodeset.New(t), true)
		return virt || !res.Empty()
	}
	return false
}

// existsSet returns the set of context nodes from which the path has at
// least one result: the backward evaluation S_{i-1} = inv-axis_i(test_i ∧
// preds_i ∧ S_i), starting from the full set. Absolute paths inside
// conditions are context-independent and are evaluated forward from the
// virtual document root.
func existsSet(t *dom.Tree, p *Path) nodeset.Set {
	if p.Absolute {
		res, virt := evalSteps(t, p.Steps, nodeset.New(t), true)
		if virt || !res.Empty() {
			return nodeset.Full(t)
		}
		return nodeset.New(t)
	}
	target := nodeset.Full(t)
	for i := len(p.Steps) - 1; i >= 0; i-- {
		s := p.Steps[i]
		target.And(testSet(t, s.Test))
		for _, pred := range s.Preds {
			target.And(condSet(t, pred))
		}
		target = applyAxis(t, inverseAxis(s.Axis), target)
	}
	return target
}
