package xpath

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dom"
	"repro/internal/htmlparse"
	"repro/internal/mdatalog"
)

func nodesEqual(a, b []dom.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func dedup(t *dom.Tree, ns []dom.NodeID) []dom.NodeID {
	return t.SortDocOrder(append([]dom.NodeID(nil), ns...))
}

func TestParseBasics(t *testing.T) {
	for _, src := range []string{
		"/html/body/table",
		"//table[tr]/td",
		"child::a/descendant::b",
		"//a[not(b) and (c or d)]",
		"//tr[3]",
		"//td[position()=2]",
		"//td[last()]",
		"//a[@href='x.html']",
		"//p[text()='hi']",
		"//table[count(tr)>2]",
		"//a[contains(@href, 'item')]",
		"..//*",
		"//*[@class]",
		"/",
		"//a[.//b]",
		"ancestor-or-self::div[parent::body]",
		"preceding-sibling::td/following::hr",
	} {
		p, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		// Reparse of String must succeed (String uses canonical axis
		// syntax).
		if _, err := Parse(p.String()); err != nil {
			t.Errorf("reparse of %q -> %q failed: %v", src, p.String(), err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"", "//", "//a[", "//a[]", "//a]'", "foo::a", "//a[not b]",
		"//a[1 = ", "@x", "//a[position(1)]",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestIsCoreAndPositive(t *testing.T) {
	core := MustParse("//a[b and not(c//d)]")
	if !core.IsCore() || core.IsPositive() {
		t.Error("classification of core path wrong")
	}
	pos := MustParse("//a[b]/c")
	if !pos.IsCore() || !pos.IsPositive() {
		t.Error("classification of positive path wrong")
	}
	ext := MustParse("//a[3]")
	if ext.IsCore() {
		t.Error("positional predicate classified as core")
	}
}

func bookTree() *dom.Tree {
	return htmlparse.Parse(`
<html><body>
  <h1>Books</h1>
  <table class="list">
    <tr><td class="t">Title A</td><td class="p">10</td></tr>
    <tr><td class="t">Title B</td><td class="p">20</td></tr>
    <tr><td class="t">Title C</td><td class="p">30</td></tr>
  </table>
  <div><p>note <i>deep <b>x</b></i></p></div>
  <hr>
</body></html>`)
}

func countLabel(tr *dom.Tree, res []dom.NodeID, label string) int {
	k := 0
	for _, n := range res {
		if tr.Label(n) == label {
			k++
		}
	}
	return k
}

func TestEvalCoreOnDocument(t *testing.T) {
	tr := bookTree()
	for _, tc := range []struct {
		q    string
		want int // result count
	}{
		{"//td", 6},
		{"//table/tr", 3},
		{"//tr[td]", 3},
		{"/html/body/table", 1},
		{"//tr/td/text()", 6},
		{"//i/ancestor::div", 1},
		{"//b/ancestor-or-self::*", 6}, // b, i, p, div, body, html
		{"//h1/following-sibling::*", 3},
		{"//hr/preceding-sibling::table", 1},
		{"//table/following::hr", 1},
		{"//hr/preceding::td", 6},
		{"//tr[not(td)]", 0},
		{"//*[not(self::td) and not(self::tr)]", 9}, // html body h1 table div p i b hr
		{"//td[not(following-sibling::td)]", 3},
	} {
		p := MustParse(tc.q)
		got, err := EvalCore(p, tr, nil)
		if err != nil {
			t.Errorf("%s: %v", tc.q, err)
			continue
		}
		if len(got) != tc.want {
			t.Errorf("%s: got %d nodes (%v), want %d", tc.q, len(got), got, tc.want)
		}
	}
}

// TestNaiveMatchesCore: naive (deduped) equals linear on hand-written
// and random queries.
func TestNaiveMatchesCore(t *testing.T) {
	tr := bookTree()
	for _, q := range []string{
		"//td", "//tr[td]", "//i/ancestor::div", "//table/following::hr",
		"//td[not(following-sibling::td)]", "//*[b or i]",
	} {
		p := MustParse(q)
		fast, err := EvalCore(p, tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := EvalNaive(p, tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !nodesEqual(fast, dedup(tr, slow)) {
			t.Errorf("%s: core %v naive %v", q, fast, dedup(tr, slow))
		}
	}
}

// randomCorePath generates a random Core XPath query.
func randomCorePath(rng *rand.Rand, depth int) *Path {
	axes := []Axis{AxisSelf, AxisChild, AxisParent, AxisDescendant,
		AxisDescendantOrSelf, AxisAncestor, AxisAncestorOrSelf,
		AxisFollowing, AxisPreceding, AxisFollowingSibling, AxisPrecedingSibling}
	labels := []string{"a", "b", "c"}
	var mkPath func(d int) *Path
	var mkExpr func(d int) Expr
	mkStep := func(d int) Step {
		s := Step{Axis: axes[rng.Intn(len(axes))]}
		switch rng.Intn(4) {
		case 0:
			s.Test = NodeTest{Kind: TestAny}
		case 1, 2:
			s.Test = NodeTest{Kind: TestName, Name: labels[rng.Intn(len(labels))]}
		default:
			s.Test = NodeTest{Kind: TestNode}
		}
		if d > 0 && rng.Intn(3) == 0 {
			s.Preds = append(s.Preds, mkExpr(d-1))
		}
		return s
	}
	mkPath = func(d int) *Path {
		p := &Path{Absolute: rng.Intn(4) == 0}
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			p.Steps = append(p.Steps, mkStep(d))
		}
		return p
	}
	mkExpr = func(d int) Expr {
		switch rng.Intn(5) {
		case 0:
			return And{L: mkExpr(d / 2), R: mkExpr(d / 2)}
		case 1:
			return Or{L: mkExpr(d / 2), R: mkExpr(d / 2)}
		case 2:
			return Not{E: mkExpr(d - 1)}
		default:
			return ExistsPath{Path: mkPath(d - 1)}
		}
	}
	return mkPath(depth)
}

// TestRandomCoreDifferential cross-validates the three Core evaluators —
// linear set-algebraic, naive recursive, and full/CVT — on random
// queries and random trees.
func TestRandomCoreDifferential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := dom.RandomTree(rng, 1+rng.Intn(30), []string{"a", "b", "c"}, 4)
		p := randomCorePath(rng, 2)
		lin, err := EvalCore(p, tr, nil)
		if err != nil {
			return false
		}
		naive, err := EvalNaive(p, tr, nil)
		if err != nil {
			return false
		}
		full, err := EvalFull(p, tr, nil)
		if err != nil {
			return false
		}
		if !nodesEqual(lin, dedup(tr, naive)) {
			t.Logf("naive mismatch: %s on %s: lin=%v naive=%v", p, tr, lin, dedup(tr, naive))
			return false
		}
		if !nodesEqual(lin, full) {
			t.Logf("full mismatch: %s on %s: lin=%v full=%v", p, tr, lin, full)
			return false
		}
		return true
	}
	// Deterministic input stream: EvalNaive is exponential by design,
	// so a time-seeded draw can occasionally produce a query that runs
	// for minutes (worse under -race) and times the suite out. A fixed
	// source keeps the differential reproducible and CI-stable.
	if err := quick.Check(f, &quick.Config{MaxCount: 250, Rand: rand.New(rand.NewSource(20040614))}); err != nil {
		t.Error(err)
	}
}

// TestVirtualRootPredicateRegression pins a counterexample once found
// by TestRandomCoreDifferential (quick input 4479217461210968517): the
// negated predicate holds at the virtual document root — not() of an
// empty node set is true — so the virtual root survives the first step
// and the final descendant step must include the root element. The
// linear evaluator used to drop the virtual root whenever a predicate
// was present and lost that answer.
func TestVirtualRootPredicateRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(4479217461210968517))
	tr := dom.RandomTree(rng, 1+rng.Intn(30), []string{"a", "b", "c"}, 4)
	p := MustParse("/descendant-or-self::node()[not(parent::*/self::*)]/descendant::node()")
	lin, err := EvalCore(p, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := EvalNaive(p, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !nodesEqual(lin, dedup(tr, naive)) {
		t.Fatalf("lin=%v naive=%v", lin, dedup(tr, naive))
	}
	if lin[0] != tr.Root() {
		t.Fatalf("root element missing from answer: %v", lin)
	}
}

// TestE12TranslationEquivalence is Theorem 4.6's correctness: the
// translated monadic datalog program selects exactly EvalCore's nodes.
func TestE12TranslationEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := dom.RandomTree(rng, 1+rng.Intn(25), []string{"a", "b", "c"}, 4)
		p := randomCorePath(rng, 2)
		want, err := EvalCore(p, tr, nil)
		if err != nil {
			return false
		}
		prog, qpred, err := TranslateCore(p)
		if err != nil {
			t.Logf("translate %s: %v", p, err)
			return false
		}
		got, err := mdatalog.Query(prog, tr, qpred)
		if err != nil {
			t.Logf("eval translated %s: %v", p, err)
			return false
		}
		got = dedup(tr, got)
		if !nodesEqual(got, want) {
			t.Logf("translation mismatch: %s on %s: datalog=%v core=%v", p, tr, got, want)
			return false
		}
		return true
	}
	// Fixed source for the same reason as TestRandomCoreDifferential:
	// bounded, reproducible running time.
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(20040615))}); err != nil {
		t.Error(err)
	}
}

// TestTranslationSizeLinear checks Theorem 4.6's size bound.
func TestTranslationSizeLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30; i++ {
		p := randomCorePath(rng, 3)
		prog, _, err := TranslateCore(p)
		if err != nil {
			t.Fatal(err)
		}
		if prog.Size() > 60*p.Size() {
			t.Errorf("program size %d >> 60·|Q| = %d for %s", prog.Size(), 60*p.Size(), p)
		}
	}
}

func TestEvalFullPositional(t *testing.T) {
	tr := bookTree()
	for _, tc := range []struct {
		q    string
		want int
	}{
		{"//tr[1]", 1},
		{"//tr[3]/td", 2},
		{"//tr[last()]", 1},
		{"//td[position()=2]", 3},
		{"//tr[position()>1]", 2},
		{"//td[@class='p']", 3},
		{"//table[@class='list']", 1},
		{"//table[count(tr)>2]", 1},
		{"//table[count(tr)>3]", 0},
		{"//td[text()='Title B']", 1},
		{"//tr[td='Title B']", 1},
		{"//a[contains(@href, 'zzz')]", 0},
		{"//*[@class]", 7}, // table + 6 td
	} {
		p := MustParse(tc.q)
		got, err := EvalFull(p, tr, nil)
		if err != nil {
			t.Errorf("%s: %v", tc.q, err)
			continue
		}
		if len(got) != tc.want {
			t.Errorf("%s: got %d (%v), want %d", tc.q, len(got), got, tc.want)
		}
	}
}

func TestEvalFullReverseAxisPositions(t *testing.T) {
	// On reverse axes, position 1 is the nearest node.
	tr := bookTree()
	p := MustParse("//b/ancestor::*[1]")
	got, err := EvalFull(p, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || tr.Label(got[0]) != "i" {
		t.Errorf("nearest ancestor: got %v", got)
	}
}

func TestEvalCoreRejectsExtended(t *testing.T) {
	if _, err := EvalCore(MustParse("//tr[2]"), bookTree(), nil); err == nil {
		t.Fatal("EvalCore accepted a positional predicate")
	}
}

// deepDivs builds nested divs for the E10 pathological workload.
func deepDivs(depth int) *dom.Tree {
	var b strings.Builder
	b.WriteString("<html><body>")
	for i := 0; i < depth; i++ {
		b.WriteString("<div><span>x</span>")
	}
	for i := 0; i < depth; i++ {
		b.WriteString("</div>")
	}
	b.WriteString("</body></html>")
	return htmlparse.Parse(b.String())
}

// doubleSlashQuery returns //div//div//...//div with k steps.
func doubleSlashQuery(k int) *Path {
	p := &Path{Absolute: true}
	for i := 0; i < k; i++ {
		p.Steps = append(p.Steps,
			Step{Axis: AxisDescendantOrSelf, Test: NodeTest{Kind: TestNode}},
			Step{Axis: AxisChild, Test: NodeTest{Kind: TestName, Name: "div"}})
	}
	return p
}

func TestNaiveExplodesButAgrees(t *testing.T) {
	tr := deepDivs(8)
	q := doubleSlashQuery(4)
	lin, err := EvalCore(q, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := EvalNaive(q, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(naive) <= len(lin) {
		t.Errorf("expected duplicate blowup: naive list %d, set %d", len(naive), len(lin))
	}
	if !nodesEqual(lin, dedup(tr, naive)) {
		t.Error("naive disagrees with linear")
	}
}

func BenchmarkE9_CoreXPathLinear(b *testing.B) {
	// O(|D|·|Q|): scale document size at fixed query.
	q := MustParse("//div[span and not(b)]//span")
	for _, depth := range []int{100, 200, 400, 800} {
		tr := deepDivs(depth)
		b.Run("doc-"+itoa(depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := EvalCore(q, tr, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Scale query size at fixed document.
	tr := deepDivs(200)
	for _, k := range []int{2, 4, 8, 16} {
		q := doubleSlashQuery(k)
		b.Run("query-"+itoa(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := EvalCore(q, tr, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE10_NaiveVsCVT(b *testing.B) {
	// Theorem 4.1 [15]: naive engines are exponential in |Q|; ours is
	// polynomial. Same query family on a fixed document.
	tr := deepDivs(14)
	for _, k := range []int{2, 3, 4, 5} {
		q := doubleSlashQuery(k)
		b.Run("naive-k"+itoa(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := EvalNaive(q, tr, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("linear-k"+itoa(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := EvalCore(q, tr, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("cvt-k"+itoa(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := EvalFull(q, tr, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE12_XPathTMNF(b *testing.B) {
	tr := deepDivs(100)
	q := MustParse("//div[span and not(b)]//span")
	prog, qpred, err := TranslateCore(q)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("translate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := TranslateCore(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("eval-tmnf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mdatalog.Query(prog, tr, qpred); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("eval-core", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := EvalCore(q, tr, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestParserPrecedence(t *testing.T) {
	// "a or b and c" parses as "a or (b and c)".
	p := MustParse("//x[a or b and c]")
	pred := p.Steps[1].Preds[0]
	or, ok := pred.(Or)
	if !ok {
		t.Fatalf("top is %T, want Or", pred)
	}
	if _, ok := or.R.(And); !ok {
		t.Fatalf("right of or is %T, want And", or.R)
	}
}

func TestDoubleNegationProperty(t *testing.T) {
	// not(not(phi)) selects the same nodes as phi.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := dom.RandomTree(rng, 1+rng.Intn(25), []string{"a", "b"}, 3)
		inner := randomCorePath(rng, 1)
		base := &Path{Steps: []Step{{
			Axis: AxisDescendantOrSelf, Test: NodeTest{Kind: TestNode},
			Preds: []Expr{ExistsPath{Path: inner}},
		}}}
		doubled := &Path{Steps: []Step{{
			Axis: AxisDescendantOrSelf, Test: NodeTest{Kind: TestNode},
			Preds: []Expr{Not{E: Not{E: ExistsPath{Path: inner}}}},
		}}}
		r1, err1 := EvalCore(base, tr, nil)
		r2, err2 := EvalCore(doubled, tr, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		return nodesEqual(r1, r2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDeMorganProperty(t *testing.T) {
	// not(a and b) == not(a) or not(b), via the TMNF translation too.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := dom.RandomTree(rng, 1+rng.Intn(20), []string{"a", "b"}, 3)
		pa := randomCorePath(rng, 0)
		pb := randomCorePath(rng, 0)
		lhs := &Path{Steps: []Step{{
			Axis: AxisDescendantOrSelf, Test: NodeTest{Kind: TestNode},
			Preds: []Expr{Not{E: And{L: ExistsPath{Path: pa}, R: ExistsPath{Path: pb}}}},
		}}}
		rhs := &Path{Steps: []Step{{
			Axis: AxisDescendantOrSelf, Test: NodeTest{Kind: TestNode},
			Preds: []Expr{Or{L: Not{E: ExistsPath{Path: pa}}, R: Not{E: ExistsPath{Path: pb}}}},
		}}}
		r1, err1 := EvalCore(lhs, tr, nil)
		r2, err2 := EvalCore(rhs, tr, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		if !nodesEqual(r1, r2) {
			return false
		}
		// And the translation agrees on the lhs.
		prog, q, err := TranslateCore(lhs)
		if err != nil {
			return false
		}
		r3, err := mdatalog.Query(prog, tr, q)
		if err != nil {
			return false
		}
		return nodesEqual(dedup(tr, r3), r1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEvalFullAttributeExistence(t *testing.T) {
	tr := bookTree()
	got, err := EvalFull(MustParse("//td[@class]"), tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Errorf("td[@class] = %d", len(got))
	}
	got2, err := EvalFull(MustParse("//td[@missing]"), tr, nil)
	if err != nil || len(got2) != 0 {
		t.Errorf("td[@missing] = %v, %v", got2, err)
	}
}

func TestEvalFullChainedPredicatesRerank(t *testing.T) {
	// [position()>1][1] selects the SECOND original candidate (the first
	// after re-ranking).
	tr := bookTree()
	got, err := EvalFull(MustParse("//table/tr[position()>1][1]"), tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("got %v", got)
	}
	if txt := tr.ElementText(got[0]); !strings.Contains(txt, "Title B") {
		t.Errorf("selected row %q", txt)
	}
}

// TestCompiledMatchesEval pins that compiled queries dispatch to the
// same evaluator as the direct entry points, and that the
// fingerprint-keyed cache stays coherent across document mutations.
func TestCompiledMatchesEval(t *testing.T) {
	doc := htmlparse.Parse(`<body><div><span>a</span></div><div><b>x</b><span>b</span></div></body>`)
	for _, q := range []string{
		"//div[span and not(b)]//span",
		"/html/body/div",
		"//div[position() = 2]",
	} {
		c, err := Compile(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := c.Eval(doc, nil)
		if err != nil {
			t.Fatal(err)
		}
		var direct []dom.NodeID
		if c.IsCore() {
			direct, err = EvalCore(c.Path, doc, nil)
		} else {
			direct, err = EvalFull(c.Path, doc, nil)
		}
		if err != nil {
			t.Fatal(err)
		}
		if !nodesEqual(want, direct) {
			t.Fatalf("%s: Compiled.Eval %v != direct %v", q, want, direct)
		}
		for i := 0; i < 3; i++ {
			got, err := c.EvalCached(doc)
			if err != nil {
				t.Fatal(err)
			}
			if !nodesEqual(got, want) {
				t.Fatalf("%s: cached eval %v != %v", q, got, want)
			}
		}
	}
	// A mutation must invalidate cached results.
	c := MustCompile("//span")
	before, err := c.EvalCached(doc)
	if err != nil {
		t.Fatal(err)
	}
	body := doc.FirstChild(doc.Root())
	doc.AppendChild(body, "span")
	after, err := c.EvalCached(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before)+1 {
		t.Fatalf("cache served stale results: before %v, after %v", before, after)
	}
	fresh, err := EvalCore(c.Path, doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !nodesEqual(after, fresh) {
		t.Fatalf("cached %v != fresh %v", after, fresh)
	}
}

// TestCompiledCachedRandomDifferential cross-checks EvalCached against
// EvalCore on the random-tree generator, interleaving repeated lookups.
func TestCompiledCachedRandomDifferential(t *testing.T) {
	queries := []*Compiled{
		MustCompile("//a//b"),
		MustCompile("//a[b and not(parent::b)]"),
		MustCompile("//b[following-sibling::a]"),
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 25; i++ {
		tr := dom.RandomTree(rng, 1+rng.Intn(120), []string{"a", "b", "c"}, 4)
		for _, c := range queries {
			want, err := EvalCore(c.Path, tr, nil)
			if err != nil {
				t.Fatal(err)
			}
			for rep := 0; rep < 2; rep++ {
				got, err := c.EvalCached(tr)
				if err != nil {
					t.Fatal(err)
				}
				if !nodesEqual(got, want) {
					t.Fatalf("tree %d query %s: cached %v != core %v", i, c, got, want)
				}
			}
		}
	}
}
