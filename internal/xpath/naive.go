package xpath

import (
	"repro/internal/dom"
)

// EvalNaive evaluates a Core XPath path the way pre-2002 XPath engines
// did (the behaviour Theorem 4.1 / [15] was written against): context
// nodes are processed one at a time, intermediate results are node LISTS
// that are concatenated without duplicate elimination, and every
// condition re-evaluates its paths from scratch at every candidate node.
//
// On queries like //a//a//a over a tree with many nested a's, the
// intermediate lists grow multiplicatively and the running time is
// exponential in the query size — experiment E10 measures exactly this
// against EvalCore.
//
// The returned list may contain duplicates (callers interested only in
// the answer set can dedup); its node SET always equals EvalCore's.
func EvalNaive(p *Path, t *dom.Tree, context []dom.NodeID) ([]dom.NodeID, error) {
	if !p.IsCore() {
		return nil, errNotCore(p)
	}
	if t.Size() == 0 {
		return nil, nil
	}
	t.Reindex()
	var ctx []dom.NodeID
	switch {
	case p.Absolute:
		ctx = []dom.NodeID{VirtualRoot}
	case context == nil:
		ctx = []dom.NodeID{t.Root()}
	default:
		ctx = append(ctx, context...)
	}
	out := naiveSteps(t, p.Steps, ctx)
	for i, n := range out {
		if n == VirtualRoot {
			out[i] = t.Root()
		}
	}
	return out, nil
}

// VirtualRoot is the sentinel for the document node above the root
// element, used as the starting context of absolute paths. It never
// appears in results (it materializes as the root element).
const VirtualRoot dom.NodeID = -2

func errNotCore(p *Path) error {
	return &notCoreError{p}
}

type notCoreError struct{ p *Path }

func (e *notCoreError) Error() string {
	return "xpath: " + e.p.String() + " is not in Core XPath"
}

func naiveSteps(t *dom.Tree, steps []Step, ctx []dom.NodeID) []dom.NodeID {
	if len(steps) == 0 {
		return ctx
	}
	s := steps[0]
	var out []dom.NodeID
	for _, c := range ctx {
		for _, n := range axisNodes(t, s.Axis, c) {
			if !nodeTestHolds(t, s.Test, n) {
				continue
			}
			ok := true
			for _, pred := range s.Preds {
				if !naiveCond(t, n, pred) {
					ok = false
					break
				}
			}
			if ok {
				// No dedup: this is the point of the naive evaluator.
				out = append(out, naiveSteps(t, steps[1:], []dom.NodeID{n})...)
			}
		}
	}
	return out
}

func naiveCond(t *dom.Tree, n dom.NodeID, e Expr) bool {
	switch x := e.(type) {
	case And:
		return naiveCond(t, n, x.L) && naiveCond(t, n, x.R)
	case Or:
		return naiveCond(t, n, x.L) || naiveCond(t, n, x.R)
	case Not:
		return !naiveCond(t, n, x.E)
	case ExistsPath:
		ctx := []dom.NodeID{n}
		if x.Path.Absolute {
			ctx = []dom.NodeID{VirtualRoot}
		}
		return len(naiveSteps(t, x.Path.Steps, ctx)) > 0
	}
	return false
}

// nodeTestHolds checks a node test on a single node.
func nodeTestHolds(t *dom.Tree, nt NodeTest, n dom.NodeID) bool {
	if n == VirtualRoot {
		return nt.Kind == TestNode
	}
	switch nt.Kind {
	case TestName:
		return t.Kind(n) == dom.Element && t.Label(n) == nt.Name
	case TestAny:
		return t.Kind(n) == dom.Element
	case TestText:
		return t.Kind(n) == dom.Text
	case TestComment:
		return t.Kind(n) == dom.Comment
	case TestNode:
		return true
	}
	return false
}

// axisNodes enumerates the axis members of a single context node in
// axis order (document order for forward axes, reverse document order —
// nearest first — for reverse axes), as required for positional
// predicates.
func axisNodes(t *dom.Tree, a Axis, n dom.NodeID) []dom.NodeID {
	if n == VirtualRoot {
		switch a {
		case AxisSelf:
			return []dom.NodeID{VirtualRoot}
		case AxisChild:
			return []dom.NodeID{t.Root()}
		case AxisDescendant:
			return t.InDocumentOrder()
		case AxisDescendantOrSelf:
			return append([]dom.NodeID{VirtualRoot}, t.InDocumentOrder()...)
		}
		return nil
	}
	switch a {
	case AxisSelf:
		return []dom.NodeID{n}
	case AxisChild:
		return t.Children(n)
	case AxisParent:
		if p := t.Parent(n); p != dom.Nil {
			return []dom.NodeID{p}
		}
		return nil
	case AxisDescendant:
		return t.Descendants(n)
	case AxisDescendantOrSelf:
		return append([]dom.NodeID{n}, t.Descendants(n)...)
	case AxisAncestor:
		var out []dom.NodeID
		for p := t.Parent(n); p != dom.Nil; p = t.Parent(p) {
			out = append(out, p)
		}
		return out
	case AxisAncestorOrSelf:
		out := []dom.NodeID{n}
		for p := t.Parent(n); p != dom.Nil; p = t.Parent(p) {
			out = append(out, p)
		}
		return out
	case AxisFollowingSibling:
		var out []dom.NodeID
		for s := t.NextSibling(n); s != dom.Nil; s = t.NextSibling(s) {
			out = append(out, s)
		}
		return out
	case AxisPrecedingSibling:
		var out []dom.NodeID
		for s := t.PrevSibling(n); s != dom.Nil; s = t.PrevSibling(s) {
			out = append(out, s)
		}
		return out
	case AxisFollowing:
		var out []dom.NodeID
		for _, m := range t.InDocumentOrder() {
			if t.Following(n, m) {
				out = append(out, m)
			}
		}
		return out
	case AxisPreceding:
		var out []dom.NodeID
		order := t.InDocumentOrder()
		for i := len(order) - 1; i >= 0; i-- {
			if t.Following(order[i], n) {
				out = append(out, order[i])
			}
		}
		return out
	}
	return nil
}
