package xpath

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dom"
)

// EvalFull evaluates the extended ("pXPath"-style) fragment, adding to
// Core XPath: positional predicates ([3], [position() < last()]),
// attribute references (@name, existence and comparison), string-value
// comparisons, count(), and contains(). It follows the XPath 1.0
// context semantics: within a step, each context node produces its
// candidate list in axis order; position() and last() refer to that
// list, and predicates are applied sequentially, re-ranking after each.
//
// The algorithm is the polynomial-time context-value-table style
// evaluation of Theorem 4.1: every (subexpression, context) pair is
// evaluated at most once per step, giving O(|Q| · |D|²) worst-case time
// — polynomial, in contrast to the naive evaluator.
func EvalFull(p *Path, t *dom.Tree, context []dom.NodeID) ([]dom.NodeID, error) {
	if t.Size() == 0 {
		return nil, nil
	}
	t.Reindex()
	var ctx []dom.NodeID
	switch {
	case p.Absolute:
		ctx = []dom.NodeID{VirtualRoot}
	case context == nil:
		ctx = []dom.NodeID{t.Root()}
	default:
		ctx = append(ctx, context...)
	}
	out, err := fullSteps(t, p.Steps, ctx)
	if err != nil {
		return nil, err
	}
	for i, n := range out {
		if n == VirtualRoot {
			out[i] = t.Root()
		}
	}
	return t.SortDocOrder(out), nil
}

func fullSteps(t *dom.Tree, steps []Step, ctx []dom.NodeID) ([]dom.NodeID, error) {
	cur := ctx
	for _, s := range steps {
		var next []dom.NodeID
		seen := map[dom.NodeID]bool{}
		for _, c := range cur {
			cands := make([]dom.NodeID, 0, 8)
			for _, n := range axisNodes(t, s.Axis, c) {
				if nodeTestHolds(t, s.Test, n) {
					cands = append(cands, n)
				}
			}
			for _, pred := range s.Preds {
				var kept []dom.NodeID
				size := len(cands)
				for i, n := range cands {
					ok, err := fullCond(t, n, i+1, size, pred)
					if err != nil {
						return nil, err
					}
					if ok {
						kept = append(kept, n)
					}
				}
				cands = kept
			}
			for _, n := range cands {
				if !seen[n] {
					seen[n] = true
					next = append(next, n)
				}
			}
		}
		cur = next
	}
	return cur, nil
}

// fullCond evaluates a predicate at context (n, pos, size).
func fullCond(t *dom.Tree, n dom.NodeID, pos, size int, e Expr) (bool, error) {
	switch x := e.(type) {
	case And:
		l, err := fullCond(t, n, pos, size, x.L)
		if err != nil || !l {
			return false, err
		}
		return fullCond(t, n, pos, size, x.R)
	case Or:
		l, err := fullCond(t, n, pos, size, x.L)
		if err != nil || l {
			return l, err
		}
		return fullCond(t, n, pos, size, x.R)
	case Not:
		v, err := fullCond(t, n, pos, size, x.E)
		return !v, err
	case ExistsPath:
		res, err := evalSubPath(t, n, x.Path)
		if err != nil {
			return false, err
		}
		return len(res) > 0, nil
	case NumberPred:
		return float64(pos) == x.N, nil
	case Compare:
		return compareValues(t, n, pos, size, x)
	case valueWrapper:
		// A bare value expression as predicate: attribute existence
		// (@name), or truthiness of the value.
		return valueTruth(t, n, pos, size, x.v)
	}
	return false, fmt.Errorf("xpath: unsupported predicate %s", e)
}

func evalSubPath(t *dom.Tree, n dom.NodeID, p *Path) ([]dom.NodeID, error) {
	ctx := []dom.NodeID{n}
	if p.Absolute {
		ctx = []dom.NodeID{VirtualRoot}
	}
	return fullSteps(t, p.Steps, ctx)
}

// value is the XPath 1.0 value domain restricted to what the fragment
// needs: numbers, strings, booleans, node-sets.
type value struct {
	kind  byte // 'n' number, 's' string, 'b' bool, 'S' node-set
	num   float64
	str   string
	nodes []dom.NodeID
	// ok is false for absent attributes.
	ok bool
}

func evalValue(t *dom.Tree, n dom.NodeID, pos, size int, v ValueExpr) (value, error) {
	switch x := v.(type) {
	case Literal:
		return value{kind: 's', str: x.S, ok: true}, nil
	case Number:
		return value{kind: 'n', num: x.N, ok: true}, nil
	case PositionFn:
		return value{kind: 'n', num: float64(pos), ok: true}, nil
	case LastFn:
		return value{kind: 'n', num: float64(size), ok: true}, nil
	case AttrRef:
		if n == VirtualRoot {
			return value{kind: 's', ok: false}, nil
		}
		s, ok := t.Attr(n, x.Name)
		return value{kind: 's', str: s, ok: ok}, nil
	case CountFn:
		res, err := evalSubPath(t, n, x.Path)
		if err != nil {
			return value{}, err
		}
		return value{kind: 'n', num: float64(len(res)), ok: true}, nil
	case StringFn:
		if x.Path == nil {
			return value{kind: 's', str: stringValue(t, n), ok: true}, nil
		}
		res, err := evalSubPath(t, n, x.Path)
		if err != nil {
			return value{}, err
		}
		return value{kind: 'S', nodes: res, ok: true}, nil
	case ContainsFn:
		a, err := evalValue(t, n, pos, size, x.A)
		if err != nil {
			return value{}, err
		}
		b, err := evalValue(t, n, pos, size, x.B)
		if err != nil {
			return value{}, err
		}
		res := 0.0
		if strings.Contains(a.toString(t), b.toString(t)) {
			res = 1.0
		}
		return value{kind: 'n', num: res, ok: true}, nil
	}
	return value{}, fmt.Errorf("xpath: unsupported value expression %s", v)
}

// stringValue is the XPath string-value: concatenated text content for
// elements, the data for text nodes. The virtual document root's string
// value is that of the whole document.
func stringValue(t *dom.Tree, n dom.NodeID) string {
	if n == VirtualRoot {
		return t.ElementText(t.Root())
	}
	if t.Kind(n) == dom.Text || t.Kind(n) == dom.Comment {
		return t.Text(n)
	}
	return t.ElementText(n)
}

func (v value) toString(t *dom.Tree) string {
	switch v.kind {
	case 's':
		return v.str
	case 'n':
		return trimFloat(v.num)
	case 'S':
		if len(v.nodes) == 0 {
			return ""
		}
		return stringValue(t, v.nodes[0])
	case 'b':
		if v.num != 0 {
			return "true"
		}
		return "false"
	}
	return ""
}

func valueTruth(t *dom.Tree, n dom.NodeID, pos, size int, v ValueExpr) (bool, error) {
	val, err := evalValue(t, n, pos, size, v)
	if err != nil {
		return false, err
	}
	switch val.kind {
	case 'S':
		return len(val.nodes) > 0, nil
	case 'n':
		// XPath 1.0: a numeric predicate value means position() = value
		// (so [last()] keeps only the last candidate).
		return float64(pos) == val.num, nil
	case 's':
		return val.ok && val.str != "", nil
	}
	return val.ok, nil
}

// compareValues implements the XPath 1.0 comparison rules for the
// fragment, including existential node-set comparison.
func compareValues(t *dom.Tree, n dom.NodeID, pos, size int, c Compare) (bool, error) {
	l, err := evalValue(t, n, pos, size, c.L)
	if err != nil {
		return false, err
	}
	r, err := evalValue(t, n, pos, size, c.R)
	if err != nil {
		return false, err
	}
	// Expand node-sets existentially.
	lvals := expand(t, l)
	rvals := expand(t, r)
	for _, lv := range lvals {
		for _, rv := range rvals {
			if compareScalar(t, lv, rv, c.Op) {
				return true, nil
			}
		}
	}
	return false, nil
}

func expand(t *dom.Tree, v value) []value {
	if v.kind != 'S' {
		if !v.ok {
			return nil // absent attribute: no comparison succeeds
		}
		return []value{v}
	}
	out := make([]value, 0, len(v.nodes))
	for _, n := range v.nodes {
		out = append(out, value{kind: 's', str: stringValue(t, n), ok: true})
	}
	return out
}

func compareScalar(t *dom.Tree, l, r value, op string) bool {
	// Numeric comparison when either side is a number and the other
	// parses as one; otherwise string comparison (only = and !=).
	if l.kind == 'n' || r.kind == 'n' {
		ln, lok := toNum(l)
		rn, rok := toNum(r)
		if lok && rok {
			switch op {
			case "=":
				return ln == rn
			case "!=":
				return ln != rn
			case "<":
				return ln < rn
			case "<=":
				return ln <= rn
			case ">":
				return ln > rn
			case ">=":
				return ln >= rn
			}
			return false
		}
		// Number vs non-numeric string: only != succeeds.
		return op == "!="
	}
	switch op {
	case "=":
		return l.str == r.str
	case "!=":
		return l.str != r.str
	case "<":
		return l.str < r.str
	case "<=":
		return l.str <= r.str
	case ">":
		return l.str > r.str
	case ">=":
		return l.str >= r.str
	}
	return false
}

func toNum(v value) (float64, bool) {
	if v.kind == 'n' {
		return v.num, true
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(v.str), 64)
	return f, err == nil
}
