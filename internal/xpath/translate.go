package xpath

import (
	"fmt"

	"repro/internal/datalog"
	"repro/internal/mdatalog"
)

// TranslateCore translates a Core XPath query into an equivalent monadic
// datalog program over τ_ur ∪ {child} in time (and output size) linear
// in the query — Theorem 4.6. The returned program's query predicate
// selects, on any tree, exactly the nodes EvalCore selects from the
// root.
//
// The "slightly curious fact" the paper notes — datalog has no negation,
// Core XPath does — is handled as in [12]: negations are pushed down to
// condition leaves and the complements of path-existence conditions are
// expressed positively by structural recursion over the tree (e.g. "no
// child matches" is computed bottom-up from last siblings), using the
// extensional complement predicates justified by footnote 5.
//
// Feed the result to mdatalog.ToTMNF for Tree-Marking Normal Form, or
// directly to mdatalog.Eval.
func TranslateCore(p *Path) (*datalog.Program, string, error) {
	if !p.IsCore() {
		return nil, "", fmt.Errorf("xpath: %s is not in Core XPath", p)
	}
	tr := &translator{}
	// Absolute queries start at the virtual document root (tracked
	// symbolically: cur == "" means "no real nodes yet"); relative
	// queries are evaluated from the root element context, matching
	// EvalCore's convention.
	cur, virtual := "", true
	if !p.Absolute {
		cur = tr.fresh("s")
		tr.rule(cur, nil, atom1(mdatalog.PredRoot))
		virtual = false
	}
	for _, s := range p.Steps {
		next, nextVirtual, err := tr.step(cur, virtual, s)
		if err != nil {
			return nil, "", err
		}
		cur, virtual = next, nextVirtual
	}
	query := "xpath_result"
	emitted := false
	if cur != "" {
		tr.rule(query, nil, atom1(cur))
		emitted = true
	}
	if virtual {
		// The query "/" (and friends): the virtual root materializes as
		// the root element.
		tr.rule(query, nil, atom1(mdatalog.PredRoot))
		emitted = true
	}
	if !emitted {
		tr.rule(query, nil, atom1(query)) // defined and empty
	}
	return &datalog.Program{Rules: tr.rules}, query, nil
}

// translator accumulates rules and fresh predicate names.
type translator struct {
	rules []datalog.Rule
	n     int
}

func (t *translator) fresh(prefix string) string {
	t.n++
	return fmt.Sprintf("x_%s%d", prefix, t.n)
}

// atomSpec describes one body atom: unary pred on the head variable
// (binary == ""), or a binary tree atom connecting x0 to the head
// variable x in the given argument order.
type atomSpec struct {
	pred    string
	binary  string // "", "fwd" (pred(x0,x)) or "rev" (pred(x,x0))
	onAuxFn bool   // atom applies to x0 instead of x
}

func atom1(pred string) atomSpec   { return atomSpec{pred: pred} }
func atomOn0(pred string) atomSpec { return atomSpec{pred: pred, onAuxFn: true} }
func atomFwd(pred string) atomSpec { return atomSpec{pred: pred, binary: "fwd"} }
func atomRev(pred string) atomSpec { return atomSpec{pred: pred, binary: "rev"} }
func (t *translator) rule(head string, _ []string, body ...atomSpec) {
	x := datalog.Var("X")
	x0 := datalog.Var("X0")
	r := datalog.Rule{Head: datalog.Atom{Pred: head, Args: []datalog.Term{x}}}
	for _, a := range body {
		switch {
		case a.binary == "fwd":
			r.Body = append(r.Body, datalog.Atom{Pred: a.pred, Args: []datalog.Term{x0, x}})
		case a.binary == "rev":
			r.Body = append(r.Body, datalog.Atom{Pred: a.pred, Args: []datalog.Term{x, x0}})
		case a.onAuxFn:
			r.Body = append(r.Body, datalog.Atom{Pred: a.pred, Args: []datalog.Term{x0}})
		default:
			r.Body = append(r.Body, datalog.Atom{Pred: a.pred, Args: []datalog.Term{x}})
		}
	}
	t.rules = append(t.rules, r)
}

// step emits rules computing the node set after applying one location
// step to the context denoted by (src, virtual): src is the predicate
// for the real context nodes ("" when empty) and virtual reports whether
// the virtual document root is in the context. It returns the result
// predicate and the new virtual flag.
func (t *translator) step(src string, virtual bool, s Step) (string, bool, error) {
	// test+preds conjunction applied to the axis image.
	var guards []atomSpec
	if g, ok := testPred(s.Test); ok {
		guards = append(guards, atom1(g))
	}
	for _, pred := range s.Preds {
		c, err := t.condPos(pred)
		if err != nil {
			return "", false, err
		}
		guards = append(guards, atom1(c))
	}
	out := t.fresh("s")
	outRules := 0
	emit := func(body ...atomSpec) {
		t.rule(out, nil, append(body, guards...)...)
		outRules++
	}
	// Contributions of the virtual document root to the axis image.
	if virtual {
		switch s.Axis {
		case AxisChild:
			emit(atom1(mdatalog.PredRoot))
		case AxisDescendant, AxisDescendantOrSelf:
			emit(atom1(mdatalog.PredNode))
		}
	}
	outVirtual := virtual &&
		(s.Axis == AxisSelf || s.Axis == AxisDescendantOrSelf) &&
		s.Test.Kind == TestNode && len(s.Preds) == 0
	if src == "" {
		if outRules == 0 {
			t.rule(out, nil, atom1(out)) // defined and empty
		}
		if outRules == 0 && !outVirtual {
			return "", outVirtual, nil
		}
		if outRules == 0 {
			return "", outVirtual, nil
		}
		return out, outVirtual, nil
	}
	if err := t.stepReal(src, s, emit); err != nil {
		return "", false, err
	}
	return out, outVirtual, nil
}

// stepReal emits the axis rules for the real part of the context.
func (t *translator) stepReal(src string, s Step, emit func(body ...atomSpec)) error {
	switch s.Axis {
	case AxisSelf:
		emit(atom1(src))
	case AxisChild:
		emit(atomOn0(src), atomFwd(mdatalog.PredChild))
	case AxisParent:
		emit(atomOn0(src), atomRev(mdatalog.PredChild))
	case AxisDescendant, AxisDescendantOrSelf:
		d := t.fresh("desc")
		if s.Axis == AxisDescendantOrSelf {
			t.rule(d, nil, atom1(src))
		}
		t.rule(d, nil, atomOn0(src), atomFwd(mdatalog.PredChild))
		t.rule(d, nil, atomOn0(d), atomFwd(mdatalog.PredChild))
		emit(atom1(d))
	case AxisAncestor, AxisAncestorOrSelf:
		u := t.fresh("anc")
		if s.Axis == AxisAncestorOrSelf {
			t.rule(u, nil, atom1(src))
		}
		t.rule(u, nil, atomOn0(src), atomRev(mdatalog.PredChild))
		t.rule(u, nil, atomOn0(u), atomRev(mdatalog.PredChild))
		emit(atom1(u))
	case AxisFollowingSibling:
		f := t.fresh("fsib")
		t.rule(f, nil, atomOn0(src), atomFwd(mdatalog.PredNextSibling))
		t.rule(f, nil, atomOn0(f), atomFwd(mdatalog.PredNextSibling))
		emit(atom1(f))
	case AxisPrecedingSibling:
		f := t.fresh("psib")
		t.rule(f, nil, atomOn0(src), atomRev(mdatalog.PredNextSibling))
		t.rule(f, nil, atomOn0(f), atomRev(mdatalog.PredNextSibling))
		emit(atom1(f))
	case AxisFollowing:
		// ancestor-or-self, then nextsibling+, then descendant-or-self.
		aos := t.fresh("aos")
		t.rule(aos, nil, atom1(src))
		t.rule(aos, nil, atomOn0(aos), atomRev(mdatalog.PredChild))
		ns := t.fresh("fns")
		t.rule(ns, nil, atomOn0(aos), atomFwd(mdatalog.PredNextSibling))
		t.rule(ns, nil, atomOn0(ns), atomFwd(mdatalog.PredNextSibling))
		dos := t.fresh("fdos")
		t.rule(dos, nil, atom1(ns))
		t.rule(dos, nil, atomOn0(dos), atomFwd(mdatalog.PredChild))
		emit(atom1(dos))
	case AxisPreceding:
		aos := t.fresh("aos")
		t.rule(aos, nil, atom1(src))
		t.rule(aos, nil, atomOn0(aos), atomRev(mdatalog.PredChild))
		ns := t.fresh("pns")
		t.rule(ns, nil, atomOn0(aos), atomRev(mdatalog.PredNextSibling))
		t.rule(ns, nil, atomOn0(ns), atomRev(mdatalog.PredNextSibling))
		dos := t.fresh("pdos")
		t.rule(dos, nil, atom1(ns))
		t.rule(dos, nil, atomOn0(dos), atomFwd(mdatalog.PredChild))
		emit(atom1(dos))
	default:
		return fmt.Errorf("xpath: untranslatable axis %s", s.Axis)
	}
	return nil
}

// testPred returns the extensional predicate for a node test, with
// ok=false when the test is vacuous (node()).
func testPred(nt NodeTest) (string, bool) {
	switch nt.Kind {
	case TestName:
		return mdatalog.LabelPred(nt.Name), true
	case TestAny:
		return mdatalog.PredElement, true
	case TestText:
		return mdatalog.PredTextNode, true
	case TestComment:
		return mdatalog.PredCommentNode, true
	}
	return "", false
}

// negTestPred returns the complement predicate of a node test, with
// ok=false when the test never fails (node()).
func negTestPred(nt NodeTest) (string, bool) {
	switch nt.Kind {
	case TestName:
		return mdatalog.NLabelPrefix + nt.Name, true
	case TestAny:
		return mdatalog.PredNonElement, true
	case TestText:
		return mdatalog.PredNonTextNode, true
	case TestComment:
		return mdatalog.PredNonCommentNode, true
	}
	return "", false
}

// condPos emits rules for a predicate expression and returns the
// predicate holding exactly where the condition holds.
func (t *translator) condPos(e Expr) (string, error) {
	switch x := e.(type) {
	case And:
		l, err := t.condPos(x.L)
		if err != nil {
			return "", err
		}
		r, err := t.condPos(x.R)
		if err != nil {
			return "", err
		}
		out := t.fresh("and")
		t.rule(out, nil, atom1(l), atom1(r))
		return out, nil
	case Or:
		l, err := t.condPos(x.L)
		if err != nil {
			return "", err
		}
		r, err := t.condPos(x.R)
		if err != nil {
			return "", err
		}
		out := t.fresh("or")
		t.rule(out, nil, atom1(l))
		t.rule(out, nil, atom1(r))
		return out, nil
	case Not:
		return t.condNeg(x.E)
	case ExistsPath:
		return t.existsPos(x.Path)
	}
	return "", fmt.Errorf("xpath: non-Core predicate %s in translation", e)
}

// condNeg emits rules for the COMPLEMENT of a condition, entirely
// positively.
func (t *translator) condNeg(e Expr) (string, error) {
	switch x := e.(type) {
	case And:
		l, err := t.condNeg(x.L)
		if err != nil {
			return "", err
		}
		r, err := t.condNeg(x.R)
		if err != nil {
			return "", err
		}
		out := t.fresh("nand")
		t.rule(out, nil, atom1(l))
		t.rule(out, nil, atom1(r))
		return out, nil
	case Or:
		l, err := t.condNeg(x.L)
		if err != nil {
			return "", err
		}
		r, err := t.condNeg(x.R)
		if err != nil {
			return "", err
		}
		out := t.fresh("nor")
		t.rule(out, nil, atom1(l), atom1(r))
		return out, nil
	case Not:
		return t.condPos(x.E)
	case ExistsPath:
		return t.existsNeg(x.Path)
	}
	return "", fmt.Errorf("xpath: non-Core predicate %s in translation", e)
}

// okAndFail emits, for step i of a condition path with continuation
// predicates (contPos, contFail), the pair (ok_i, fail_i) where
// ok_i(x) ⇔ test_i(x) ∧ conds_i(x) ∧ contPos(x) and fail_i is its
// complement.
func (t *translator) okAndFail(s Step, contPos, contFail string) (ok, fail string, err error) {
	ok = t.fresh("ok")
	fail = t.fresh("fail")
	failRules := 0
	var conj []atomSpec
	if g, has := testPred(s.Test); has {
		conj = append(conj, atom1(g))
	}
	if g, has := negTestPred(s.Test); has {
		t.rule(fail, nil, atom1(g))
		failRules++
	}
	for _, pred := range s.Preds {
		c, err := t.condPos(pred)
		if err != nil {
			return "", "", err
		}
		conj = append(conj, atom1(c))
		nc, err := t.condNeg(pred)
		if err != nil {
			return "", "", err
		}
		t.rule(fail, nil, atom1(nc))
		failRules++
	}
	if contPos != "" {
		conj = append(conj, atom1(contPos))
		t.rule(fail, nil, atom1(contFail))
		failRules++
	}
	if len(conj) == 0 {
		conj = append(conj, atom1(mdatalog.PredNode))
	}
	if failRules == 0 {
		// node() test, no predicates, no continuation: nothing can fail.
		// Keep the predicate defined (and empty).
		t.rule(fail, nil, atom1(fail))
	}
	t.rule(ok, nil, conj...)
	return ok, fail, nil
}

// existsPos returns a predicate holding at x iff the path has a match
// starting from x (or from the root, for absolute paths).
func (t *translator) existsPos(p *Path) (string, error) {
	pos, _, err := t.existsBoth(p, false)
	return pos, err
}

// existsNeg returns a predicate holding at x iff the path has NO match.
func (t *translator) existsNeg(p *Path) (string, error) {
	_, neg, err := t.existsBoth(p, true)
	return neg, err
}

// existsBoth builds the backward chain E_i / NE_i over the steps. For
// relative paths the chain heads are the answer. Absolute paths are
// context-independent: their truth is decided at the virtual document
// root and then spread to every node.
func (t *translator) existsBoth(p *Path, needNeg bool) (string, string, error) {
	n := len(p.Steps)
	ok := make([]string, n)
	fail := make([]string, n)
	ePos := make([]string, n+1)
	eNeg := make([]string, n+1)
	// Walk steps from the last to the first, remembering the per-step
	// ok/fail predicates (the absolute case needs them).
	for i := n - 1; i >= 0; i-- {
		s := p.Steps[i]
		var err error
		ok[i], fail[i], err = t.okAndFail(s, ePos[i+1], eNeg[i+1])
		if err != nil {
			return "", "", err
		}
		ePos[i], eNeg[i], err = t.axisExists(s.Axis, ok[i], fail[i], needNeg || p.Absolute)
		if err != nil {
			return "", "", err
		}
	}
	if !p.Absolute {
		if n == 0 {
			// Empty relative path: trivially true.
			tp := t.fresh("true")
			t.rule(tp, nil, atom1(mdatalog.PredNode))
			fp := t.fresh("false")
			t.rule(fp, nil, atom1(fp))
			return tp, fp, nil
		}
		return ePos[0], eNeg[0], nil
	}
	// Absolute path: decide truth at the virtual root. virtualExists
	// returns "root-anchored boolean" predicates (holding at the root
	// node iff true).
	posRoot, negRoot := t.virtualExists(p.Steps, 0, ok, fail)
	pos := t.spreadFromRoot(posRoot)
	neg := ""
	if needNeg {
		neg = t.spreadFromRoot(negRoot)
	}
	return pos, neg, nil
}

// trueAtRoot returns a predicate holding exactly at the root.
func (t *translator) trueAtRoot() string {
	p := t.fresh("troot")
	t.rule(p, nil, atom1(mdatalog.PredRoot))
	return p
}

// falsePred returns a defined-but-empty predicate.
func (t *translator) falsePred() string {
	p := t.fresh("fpred")
	t.rule(p, nil, atom1(p))
	return p
}

// anywhere returns a root-anchored boolean: it holds at the root iff
// base holds at some node (computed by bubbling base up the tree).
func (t *translator) anywhere(base string) string {
	u := t.fresh("up")
	t.rule(u, nil, atom1(base))
	t.rule(u, nil, atomOn0(u), atomRev(mdatalog.PredChild))
	out := t.fresh("anyroot")
	t.rule(out, nil, atom1(u), atom1(mdatalog.PredRoot))
	return out
}

// atRoot restricts base to the root node.
func (t *translator) atRoot(base string) string {
	out := t.fresh("atroot")
	t.rule(out, nil, atom1(base), atom1(mdatalog.PredRoot))
	return out
}

// spreadFromRoot turns a root-anchored boolean into an all-or-nothing
// node set.
func (t *translator) spreadFromRoot(rootPred string) string {
	sp := t.fresh("spread")
	t.rule(sp, nil, atom1(rootPred))
	t.rule(sp, nil, atomOn0(sp), atomFwd(mdatalog.PredFirstChild))
	t.rule(sp, nil, atomOn0(sp), atomFwd(mdatalog.PredNextSibling))
	return sp
}

// virtualExists computes root-anchored booleans (pos, neg) for "the
// path steps[k:] has a match starting at the virtual document root".
// The virtual root's axis images are: child = {root element},
// descendant(-or-self) = all real nodes; self keeps the virtual root
// alive when the test is node() with no predicates.
func (t *translator) virtualExists(steps []Step, k int, ok, fail []string) (string, string) {
	if k == len(steps) {
		return t.trueAtRoot(), t.falsePred()
	}
	s := steps[k]
	var posParts []string
	negParts := []string{}
	switch s.Axis {
	case AxisChild:
		posParts = append(posParts, t.atRoot(ok[k]))
		negParts = append(negParts, t.atRoot(fail[k]))
	case AxisDescendant, AxisDescendantOrSelf:
		posParts = append(posParts, t.anywhere(ok[k]))
		ad := t.allDescFail(fail[k])
		all := t.fresh("allfail")
		t.rule(all, nil, atom1(fail[k]), atom1(ad), atom1(mdatalog.PredRoot))
		negParts = append(negParts, all)
	}
	if (s.Axis == AxisSelf || s.Axis == AxisDescendantOrSelf) &&
		s.Test.Kind == TestNode && len(s.Preds) == 0 {
		p2, n2 := t.virtualExists(steps, k+1, ok, fail)
		posParts = append(posParts, p2)
		negParts = append(negParts, n2)
	}
	var pos string
	switch len(posParts) {
	case 0:
		pos = t.falsePred()
		// With no way to match, the negation is unconditionally true.
		return pos, t.trueAtRoot()
	case 1:
		pos = posParts[0]
	default:
		pos = t.fresh("vor")
		for _, p := range posParts {
			t.rule(pos, nil, atom1(p))
		}
	}
	var neg string
	switch len(negParts) {
	case 1:
		neg = negParts[0]
	default:
		neg = t.fresh("vand")
		var body []atomSpec
		for _, p := range negParts {
			body = append(body, atom1(p))
		}
		t.rule(neg, nil, body...)
	}
	return pos, neg
}

// axisExists emits, given predicates ok (target matches) and fail (its
// complement), the pair of predicates
//
//	E(x)  ⇔ ∃y axis(x, y) ∧ ok(y)
//	NE(x) ⇔ ∀y axis(x, y) → fail(y)
//
// NE is only constructed when needNeg is true (it costs extra rules).
func (t *translator) axisExists(a Axis, ok, fail string, needNeg bool) (string, string, error) {
	e := t.fresh("e")
	var ne string
	mkNE := func() string {
		if ne == "" {
			ne = t.fresh("ne")
		}
		return ne
	}
	switch a {
	case AxisSelf:
		t.rule(e, nil, atom1(ok))
		if needNeg {
			t.rule(mkNE(), nil, atom1(fail))
		}
	case AxisChild:
		t.rule(e, nil, atomOn0(ok), atomRev(mdatalog.PredChild))
		if needNeg {
			// All children fail: recursion from the last sibling.
			chain := t.fresh("cfail") // y and all right siblings fail
			t.rule(chain, nil, atom1(fail), atom1(mdatalog.PredLastSibling))
			carry := t.fresh("cnext")
			t.rule(carry, nil, atomOn0(chain), atomRev(mdatalog.PredNextSibling))
			t.rule(chain, nil, atom1(fail), atom1(carry))
			t.rule(mkNE(), nil, atom1(mdatalog.PredLeaf))
			t.rule(mkNE(), nil, atomOn0(chain), atomRev(mdatalog.PredFirstChild))
		}
	case AxisParent:
		t.rule(e, nil, atomOn0(ok), atomFwd(mdatalog.PredChild))
		if needNeg {
			t.rule(mkNE(), nil, atom1(mdatalog.PredRoot))
			t.rule(mkNE(), nil, atomOn0(fail), atomFwd(mdatalog.PredChild))
		}
	case AxisDescendant, AxisDescendantOrSelf:
		ob := t.fresh("ob") // ok at y or somewhere below y
		t.rule(ob, nil, atom1(ok))
		t.rule(ob, nil, atomOn0(ob), atomRev(mdatalog.PredChild))
		if a == AxisDescendant {
			t.rule(e, nil, atomOn0(ob), atomRev(mdatalog.PredChild))
		} else {
			t.rule(e, nil, atom1(ob))
		}
		if needNeg {
			ad := t.allDescFail(fail)
			if a == AxisDescendant {
				t.rule(mkNE(), nil, atom1(ad))
			} else {
				t.rule(mkNE(), nil, atom1(fail), atom1(ad))
			}
		}
	case AxisAncestor, AxisAncestorOrSelf:
		if a == AxisAncestorOrSelf {
			t.rule(e, nil, atom1(ok))
		}
		t.rule(e, nil, atomOn0(ok), atomFwd(mdatalog.PredChild))
		t.rule(e, nil, atomOn0(e), atomFwd(mdatalog.PredChild))
		if needNeg {
			aa := t.fresh("aafail") // all proper ancestors fail
			t.rule(aa, nil, atom1(mdatalog.PredRoot))
			h := t.fresh("aastep")
			t.rule(h, nil, atom1(fail), atom1(aa))
			t.rule(aa, nil, atomOn0(h), atomFwd(mdatalog.PredChild))
			if a == AxisAncestor {
				t.rule(mkNE(), nil, atom1(aa))
			} else {
				t.rule(mkNE(), nil, atom1(fail), atom1(aa))
			}
		}
	case AxisFollowingSibling:
		t.rule(e, nil, atomOn0(ok), atomRev(mdatalog.PredNextSibling))
		t.rule(e, nil, atomOn0(e), atomRev(mdatalog.PredNextSibling))
		if needNeg {
			afs := t.fresh("afsfail")
			t.rule(afs, nil, atom1(mdatalog.PredLastSibling))
			t.rule(afs, nil, atom1(mdatalog.PredRoot))
			h := t.fresh("afsstep")
			t.rule(h, nil, atom1(fail), atom1(afs))
			t.rule(afs, nil, atomOn0(h), atomRev(mdatalog.PredNextSibling))
			t.rule(mkNE(), nil, atom1(afs))
		}
	case AxisPrecedingSibling:
		t.rule(e, nil, atomOn0(ok), atomFwd(mdatalog.PredNextSibling))
		t.rule(e, nil, atomOn0(e), atomFwd(mdatalog.PredNextSibling))
		if needNeg {
			aps := t.fresh("apsfail")
			t.rule(aps, nil, atom1(mdatalog.PredFirstSibling))
			t.rule(aps, nil, atom1(mdatalog.PredRoot))
			h := t.fresh("apsstep")
			t.rule(h, nil, atom1(fail), atom1(aps))
			t.rule(aps, nil, atomOn0(h), atomFwd(mdatalog.PredNextSibling))
			t.rule(mkNE(), nil, atom1(aps))
		}
	case AxisFollowing:
		// ∃: some right-sibling subtree (of an ancestor-or-self) matches.
		ob := t.fresh("ob")
		t.rule(ob, nil, atom1(ok))
		t.rule(ob, nil, atomOn0(ob), atomRev(mdatalog.PredChild))
		rs := t.fresh("rs") // some strict right sibling subtree has ok
		t.rule(rs, nil, atomOn0(ob), atomRev(mdatalog.PredNextSibling))
		t.rule(rs, nil, atomOn0(rs), atomRev(mdatalog.PredNextSibling))
		t.rule(e, nil, atom1(rs))
		t.rule(e, nil, atomOn0(e), atomFwd(mdatalog.PredChild))
		if needNeg {
			ad := t.allDescFail(fail)
			w := t.fresh("wfail") // y's subtree-or-self and right forest fail
			arsf := t.fresh("arsf")
			t.rule(w, nil, atom1(fail), atom1(ad), atom1(arsf))
			t.rule(arsf, nil, atom1(mdatalog.PredLastSibling))
			t.rule(arsf, nil, atom1(mdatalog.PredRoot))
			t.rule(arsf, nil, atomOn0(w), atomRev(mdatalog.PredNextSibling))
			nf := mkNE()
			t.rule(nf, nil, atom1(mdatalog.PredRoot))
			nfp := t.fresh("nfp")
			t.rule(nfp, nil, atomOn0(nf), atomFwd(mdatalog.PredChild))
			t.rule(nf, nil, atom1(nfp), atom1(arsf))
		}
	case AxisPreceding:
		ob := t.fresh("ob")
		t.rule(ob, nil, atom1(ok))
		t.rule(ob, nil, atomOn0(ob), atomRev(mdatalog.PredChild))
		ls := t.fresh("ls") // some strict left sibling subtree has ok
		t.rule(ls, nil, atomOn0(ob), atomFwd(mdatalog.PredNextSibling))
		t.rule(ls, nil, atomOn0(ls), atomFwd(mdatalog.PredNextSibling))
		t.rule(e, nil, atom1(ls))
		t.rule(e, nil, atomOn0(e), atomFwd(mdatalog.PredChild))
		if needNeg {
			ad := t.allDescFail(fail)
			w := t.fresh("wfail")
			alsf := t.fresh("alsf")
			t.rule(w, nil, atom1(fail), atom1(ad), atom1(alsf))
			t.rule(alsf, nil, atom1(mdatalog.PredFirstSibling))
			t.rule(alsf, nil, atom1(mdatalog.PredRoot))
			t.rule(alsf, nil, atomOn0(w), atomFwd(mdatalog.PredNextSibling))
			np := mkNE()
			t.rule(np, nil, atom1(mdatalog.PredRoot))
			npp := t.fresh("npp")
			t.rule(npp, nil, atomOn0(np), atomFwd(mdatalog.PredChild))
			t.rule(np, nil, atom1(npp), atom1(alsf))
		}
	default:
		return "", "", fmt.Errorf("xpath: untranslatable axis %s", a)
	}
	if ne == "" {
		ne = t.fresh("ne")
		t.rule(ne, nil, atom1(ne)) // defined but empty
	}
	return e, ne, nil
}

// allDescFail emits the predicate AD with AD(x) ⇔ every proper
// descendant of x satisfies fail, via the bottom-up recursion described
// in the package comment, and returns its name.
func (t *translator) allDescFail(fail string) string {
	ad := t.fresh("adfail")
	g := t.fresh("gfail") // subtree-or-self of y and right forest fail
	t.rule(ad, nil, atom1(mdatalog.PredLeaf))
	t.rule(ad, nil, atomOn0(g), atomRev(mdatalog.PredFirstChild))
	t.rule(g, nil, atom1(fail), atom1(ad), atom1(mdatalog.PredLastSibling))
	gn := t.fresh("gnext")
	t.rule(gn, nil, atomOn0(g), atomRev(mdatalog.PredNextSibling))
	t.rule(g, nil, atom1(fail), atom1(ad), atom1(gn))
	return ad
}
