// Package xpath implements the XPath fragments studied in Section 4 of
// the paper:
//
//   - Core XPath [15, 16]: location paths over all major axes with node
//     tests and arbitrary boolean combinations (including negation) of
//     condition predicates — evaluated in time O(|D| · |Q|) by the
//     set-algebraic algorithm (Theorem "Core XPath is in linear time"),
//   - a naive recursive evaluator with node-list (not node-set)
//     intermediate results, reproducing the exponential behaviour of all
//     pre-2002 XPath engines (Theorem 4.1's motivation, experiment E10),
//   - an extended fragment ("pXPath"-style) adding positional predicates
//     (position(), last(), numeric literals), attribute and string-value
//     comparisons, count() and contains() — evaluated by a polynomial
//     context-value-table style algorithm (Theorem 4.1),
//   - the linear-time translation of Core XPath into monadic datalog /
//     TMNF (Theorem 4.6), with negation compiled away positively by
//     structural recursion over the tree.
package xpath

import (
	"fmt"
	"strings"
)

// Axis enumerates the XPath axes supported (all of Core XPath).
type Axis int

const (
	AxisSelf Axis = iota
	AxisChild
	AxisParent
	AxisDescendant
	AxisDescendantOrSelf
	AxisAncestor
	AxisAncestorOrSelf
	AxisFollowing
	AxisPreceding
	AxisFollowingSibling
	AxisPrecedingSibling
)

var axisNames = map[Axis]string{
	AxisSelf: "self", AxisChild: "child", AxisParent: "parent",
	AxisDescendant: "descendant", AxisDescendantOrSelf: "descendant-or-self",
	AxisAncestor: "ancestor", AxisAncestorOrSelf: "ancestor-or-self",
	AxisFollowing: "following", AxisPreceding: "preceding",
	AxisFollowingSibling: "following-sibling", AxisPrecedingSibling: "preceding-sibling",
}

func (a Axis) String() string { return axisNames[a] }

// axisByName resolves an axis name from the source syntax.
var axisByName = func() map[string]Axis {
	m := map[string]Axis{}
	for a, n := range axisNames {
		m[n] = a
	}
	return m
}()

// TestKind distinguishes the node tests.
type TestKind int

const (
	// TestName matches elements with a specific tag.
	TestName TestKind = iota
	// TestAny is "*": any element node.
	TestAny
	// TestText is "text()".
	TestText
	// TestNode is "node()": any node.
	TestNode
	// TestComment is "comment()".
	TestComment
)

// NodeTest is the node test of a step.
type NodeTest struct {
	Kind TestKind
	Name string
}

func (nt NodeTest) String() string {
	switch nt.Kind {
	case TestName:
		return nt.Name
	case TestAny:
		return "*"
	case TestText:
		return "text()"
	case TestNode:
		return "node()"
	case TestComment:
		return "comment()"
	}
	return "?"
}

// Step is one location step: axis::test[pred1][pred2]...
type Step struct {
	Axis  Axis
	Test  NodeTest
	Preds []Expr
}

func (s Step) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s::%s", s.Axis, s.Test)
	for _, p := range s.Preds {
		fmt.Fprintf(&b, "[%s]", p)
	}
	return b.String()
}

// Path is a location path.
type Path struct {
	Absolute bool
	Steps    []Step
}

func (p *Path) String() string {
	var parts []string
	for _, s := range p.Steps {
		parts = append(parts, s.String())
	}
	out := strings.Join(parts, "/")
	if p.Absolute {
		return "/" + out
	}
	return out
}

// Expr is a predicate expression. The Core XPath forms are ExistsPath,
// And, Or, Not; the remaining forms belong to the extended fragment.
type Expr interface {
	fmt.Stringer
	isExpr()
}

// ExistsPath tests whether a (relative or absolute) path has at least
// one result from the context node.
type ExistsPath struct{ Path *Path }

// And is conjunction.
type And struct{ L, R Expr }

// Or is disjunction.
type Or struct{ L, R Expr }

// Not is negation.
type Not struct{ E Expr }

// Compare compares two value expressions: = != < <= > >=.
type Compare struct {
	Op   string
	L, R ValueExpr
}

// NumberPred is a bare numeric predicate [k], shorthand for
// [position() = k].
type NumberPred struct{ N float64 }

func (ExistsPath) isExpr() {}
func (And) isExpr()        {}
func (Or) isExpr()         {}
func (Not) isExpr()        {}
func (Compare) isExpr()    {}
func (NumberPred) isExpr() {}

func (e ExistsPath) String() string { return e.Path.String() }
func (e And) String() string        { return fmt.Sprintf("(%s and %s)", e.L, e.R) }
func (e Or) String() string         { return fmt.Sprintf("(%s or %s)", e.L, e.R) }
func (e Not) String() string        { return fmt.Sprintf("not(%s)", e.E) }
func (e Compare) String() string {
	// contains(a,b) is parsed into Compare{contains = 1}; print it back
	// in its source form.
	if c, ok := e.L.(ContainsFn); ok && e.Op == "=" {
		if n, ok := e.R.(Number); ok && n.N == 1 {
			return c.String()
		}
	}
	return fmt.Sprintf("%s %s %s", e.L, e.Op, e.R)
}
func (e NumberPred) String() string { return trimFloat(e.N) }

// ValueExpr is a value-producing expression of the extended fragment.
type ValueExpr interface {
	fmt.Stringer
	isValue()
}

// Literal is a string literal.
type Literal struct{ S string }

// Number is a numeric literal.
type Number struct{ N float64 }

// PositionFn is position().
type PositionFn struct{}

// LastFn is last().
type LastFn struct{}

// CountFn is count(path).
type CountFn struct{ Path *Path }

// AttrRef is @name: the value of an attribute of the context node.
type AttrRef struct{ Name string }

// StringFn is string(.) / the string-value of the context node, or of a
// relative path's first result when Path is non-nil.
type StringFn struct{ Path *Path }

// ContainsFn is contains(a, b) — boolean, usable in Compare via = true?
// It is exposed as a ValueExpr producing "1"/"0"; the parser wraps bare
// contains(...) predicates into Compare{Op: "=", R: Number(1)}.
type ContainsFn struct{ A, B ValueExpr }

func (Literal) isValue()    {}
func (Number) isValue()     {}
func (PositionFn) isValue() {}
func (LastFn) isValue()     {}
func (CountFn) isValue()    {}
func (AttrRef) isValue()    {}
func (StringFn) isValue()   {}
func (ContainsFn) isValue() {}

func (v Literal) String() string    { return fmt.Sprintf("%q", v.S) }
func (v Number) String() string     { return trimFloat(v.N) }
func (v PositionFn) String() string { return "position()" }
func (v LastFn) String() string     { return "last()" }
func (v CountFn) String() string    { return fmt.Sprintf("count(%s)", v.Path) }
func (v AttrRef) String() string    { return "@" + v.Name }
func (v StringFn) String() string {
	if v.Path == nil {
		return "string(.)"
	}
	return fmt.Sprintf("string(%s)", v.Path)
}
func (v ContainsFn) String() string { return fmt.Sprintf("contains(%s, %s)", v.A, v.B) }

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

// IsCore reports whether the path lies in Core XPath: only ExistsPath,
// And, Or, Not predicates (no positional or value features). Core paths
// are eligible for the linear evaluator and the TMNF translation.
func (p *Path) IsCore() bool {
	for _, s := range p.Steps {
		for _, pr := range s.Preds {
			if !exprIsCore(pr) {
				return false
			}
		}
	}
	return true
}

func exprIsCore(e Expr) bool {
	switch x := e.(type) {
	case ExistsPath:
		return x.Path.IsCore()
	case And:
		return exprIsCore(x.L) && exprIsCore(x.R)
	case Or:
		return exprIsCore(x.L) && exprIsCore(x.R)
	case Not:
		return exprIsCore(x.E)
	default:
		return false
	}
}

// IsPositive reports whether the path contains no negation — the
// "Positive Core XPath" fragment of Theorem 4.3 when combined with
// IsCore.
func (p *Path) IsPositive() bool {
	for _, s := range p.Steps {
		for _, pr := range s.Preds {
			if !exprIsPositive(pr) {
				return false
			}
		}
	}
	return true
}

func exprIsPositive(e Expr) bool {
	switch x := e.(type) {
	case ExistsPath:
		return x.Path.IsPositive()
	case And:
		return exprIsPositive(x.L) && exprIsPositive(x.R)
	case Or:
		return exprIsPositive(x.L) && exprIsPositive(x.R)
	case Not:
		return false
	default:
		return true
	}
}

// Size counts steps and predicate atoms — the |Q| of the combined
// complexity bounds.
func (p *Path) Size() int {
	n := 0
	for _, s := range p.Steps {
		n++
		for _, pr := range s.Preds {
			n += exprSize(pr)
		}
	}
	return n
}

func exprSize(e Expr) int {
	switch x := e.(type) {
	case ExistsPath:
		return x.Path.Size()
	case And:
		return 1 + exprSize(x.L) + exprSize(x.R)
	case Or:
		return 1 + exprSize(x.L) + exprSize(x.R)
	case Not:
		return 1 + exprSize(x.E)
	default:
		return 1
	}
}
