// Package pib implements the pattern instance base (Section 3.1): the
// hierarchical data structure the Extractor produces, "encoding the
// extracted instances as hierarchically ordered trees and strings",
// together with the XML Designer / XML Transformer pair that maps it to
// XML output.
//
// The binary pattern predicates of Elog (Section 3.3) define a
// multigraph over instances — each instance knows the parent instance
// "in terms of which it was defined" — and that multigraph is the basis
// of the XML transformation. Auxiliary patterns are filtered out in the
// tree-minor fashion of Section 2.1: their children are promoted to the
// nearest non-auxiliary ancestor, preserving document order.
package pib

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dom"
	"repro/internal/xmlenc"
)

// Kind distinguishes the instance flavours of Lixto extraction.
type Kind int

const (
	// NodeInstance is a single tree node (subelem extraction).
	NodeInstance Kind = iota
	// SequenceInstance is a run of consecutive sibling nodes (subsq).
	SequenceInstance
	// StringInstance is a character string (subtext, subatt).
	StringInstance
	// DocumentInstance is the root instance of a wrapped document.
	DocumentInstance
)

// Instance is one pattern instance.
type Instance struct {
	ID      int
	Pattern string
	Kind    Kind
	// Doc is the document tree the instance lives in (nil only for
	// detached string instances, which keep a pointer anyway for
	// provenance).
	Doc *dom.Tree
	// URL identifies the document (provenance; also the crawl address).
	URL string
	// Nodes are the instance's nodes: one for NodeInstance and
	// DocumentInstance, one or more consecutive siblings for
	// SequenceInstance, empty for StringInstance.
	Nodes []dom.NodeID
	// Text is the string value of a StringInstance.
	Text string
	// Parent is the instance this one was extracted from (nil for
	// document instances).
	Parent   *Instance
	Children []*Instance

	// Memoized transform-time state (computed after evaluation has
	// finished, when the instance's children and document are final):
	// the content-addressed identity hashes of incremental.go and the
	// document-ordered child list.
	cHash, oHash     uint64
	cHashOK, oHashOK bool
	ordKids          []*Instance
	ordOK            bool
}

// TextContent returns the instance's text: the stored string for string
// instances, the concatenated element text otherwise.
func (in *Instance) TextContent() string {
	if in.Kind == StringInstance {
		return in.Text
	}
	var b strings.Builder
	for _, n := range in.Nodes {
		b.WriteString(in.Doc.ElementText(n))
	}
	return b.String()
}

// key returns the identity of an instance for deduplication. Built by
// hand rather than with fmt: Add runs once per candidate derivation, so
// key construction is on the evaluator's hottest path.
func (in *Instance) key() string {
	n := len(in.Pattern) + len(in.URL) + 4 + 12*len(in.Nodes)
	if in.Parent != nil {
		n += 14
	}
	if in.Kind == StringInstance {
		n += 2 + len(in.Text)
	}
	b := make([]byte, 0, n)
	b = append(b, in.Pattern...)
	b = append(b, '|')
	b = append(b, in.URL...)
	b = append(b, '|')
	if in.Parent != nil {
		b = append(b, 'p')
		b = strconv.AppendInt(b, int64(in.Parent.ID), 10)
		b = append(b, '|')
	}
	for _, nd := range in.Nodes {
		b = strconv.AppendInt(b, int64(nd), 10)
		b = append(b, ',')
	}
	if in.Kind == StringInstance {
		b = append(b, 't', ':')
		b = append(b, in.Text...)
	}
	return string(b)
}

// Base is the pattern instance base.
type Base struct {
	// Roots are the document instances, in wrapping order.
	Roots []*Instance
	all   map[string]*Instance
	byPat map[string][]*Instance
	next  int
}

// NewBase returns an empty instance base.
func NewBase() *Base {
	return &Base{all: map[string]*Instance{}, byPat: map[string][]*Instance{}}
}

// Add inserts an instance (deduplicating) and returns the canonical
// instance plus whether it was new. Parent links are fixed at insert;
// the instance is appended to its parent's children in insertion order.
func (b *Base) Add(in *Instance) (*Instance, bool) {
	k := in.key()
	if prev, ok := b.all[k]; ok {
		return prev, false
	}
	in.ID = b.next
	b.next++
	b.all[k] = in
	b.byPat[in.Pattern] = append(b.byPat[in.Pattern], in)
	if in.Parent != nil {
		in.Parent.Children = append(in.Parent.Children, in)
	} else {
		b.Roots = append(b.Roots, in)
	}
	return in, true
}

// Instances returns the instances of a pattern, in insertion order.
func (b *Base) Instances(pattern string) []*Instance { return b.byPat[pattern] }

// Patterns returns the pattern names present, sorted.
func (b *Base) Patterns() []string {
	out := make([]string, 0, len(b.byPat))
	for p := range b.byPat {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Count returns the total number of instances.
func (b *Base) Count() int { return len(b.all) }

// Dump returns a canonical textual serialization of the whole base: one
// line per instance, patterns in sorted order, instances in insertion
// order, including the sequentially assigned ids and parent ids. Two
// bases serialize identically exactly when every instance — and the
// order it was committed in — matches, which is what the differential
// tests for parallel evaluation pin.
func (b *Base) Dump() string {
	var sb strings.Builder
	for _, p := range b.Patterns() {
		for _, in := range b.byPat[p] {
			fmt.Fprintf(&sb, "%s#%d kind=%d url=%s nodes=%v", in.Pattern, in.ID, in.Kind, in.URL, in.Nodes)
			if in.Kind == StringInstance {
				fmt.Fprintf(&sb, " text=%q", in.Text)
			}
			if in.Parent != nil {
				fmt.Fprintf(&sb, " parent=%d", in.Parent.ID)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// Design is the XML Designer configuration (Section 3.1): which
// intensional predicates are auxiliary, and what labels nodes receive.
// The zero value emits every pattern under its own name — "the pattern
// name can act as a default node label".
type Design struct {
	// Auxiliary patterns do not propagate to the output tree; their
	// children attach to the nearest non-auxiliary ancestor.
	Auxiliary map[string]bool
	// Rename maps pattern names to XML element names.
	Rename map[string]string
	// RootName is the document element name (default "lixto").
	RootName string
	// KeepText controls whether leaf instances emit their text content
	// (default true). Patterns listed in SuppressText never emit text.
	SuppressText map[string]bool
	// AlwaysText patterns emit their text content even when they have
	// child instances (useful when a pattern carries both a value and
	// sub-patterns, like a price with an extracted currency).
	AlwaysText map[string]bool
	// EmitURL adds a url attribute on document instances (default on
	// for multi-document bases).
	EmitURL bool
}

// elementName resolves the output element name of a pattern.
func (d *Design) elementName(pattern string) string {
	if d.Rename != nil {
		if n, ok := d.Rename[pattern]; ok {
			return n
		}
	}
	return pattern
}

// Transform runs the XML Transformer: it maps the instance base to an
// XML document following the parent multigraph, omitting auxiliary
// patterns tree-minor style and preserving document order among
// siblings.
func (d *Design) Transform(b *Base) *xmlenc.Node {
	rootName := d.RootName
	if rootName == "" {
		rootName = "lixto"
	}
	root := xmlenc.NewElement(rootName)
	for _, docInst := range b.Roots {
		var target *xmlenc.Node
		if d.Auxiliary[docInst.Pattern] {
			target = root
		} else {
			el := xmlenc.NewElement(d.elementName(docInst.Pattern))
			if d.EmitURL && docInst.URL != "" {
				el.SetAttr("url", docInst.URL)
			}
			root.Append(el)
			target = el
		}
		d.emitChildren(docInst, target)
	}
	return root
}

// emitChildren emits the child instances of in into the XML element out.
func (d *Design) emitChildren(in *Instance, out *xmlenc.Node) {
	children := orderedChildren(in)
	for _, c := range children {
		if d.Auxiliary[c.Pattern] {
			// Tree minor: skip the node, promote its children.
			d.emitChildren(c, out)
			continue
		}
		el := xmlenc.NewElement(d.elementName(c.Pattern))
		out.Append(el)
		d.emitChildren(c, el)
		if (len(el.Children) == 0 || d.AlwaysText[c.Pattern]) && !d.SuppressText[c.Pattern] {
			el.Text = strings.TrimSpace(c.TextContent())
		}
	}
}

// orderedChildren returns the children sorted by document order of their
// first node (string instances keep their relative insertion order,
// anchored at their parent's position). The sorted list is memoized:
// it is only requested at transform time, when the base is final, and
// the incremental path needs it twice per instance (once for the
// output hash, once for emission).
func orderedChildren(in *Instance) []*Instance {
	if in.ordOK {
		return in.ordKids
	}
	out := append([]*Instance(nil), in.Children...)
	pos := func(c *Instance) int {
		if len(c.Nodes) > 0 && c.Doc != nil {
			return c.Doc.Pre(c.Nodes[0])
		}
		if len(in.Nodes) > 0 && in.Doc != nil {
			return in.Doc.Pre(in.Nodes[0])
		}
		return 0
	}
	sort.SliceStable(out, func(i, j int) bool { return pos(out[i]) < pos(out[j]) })
	in.ordKids, in.ordOK = out, true
	return out
}

// TransformString is Transform followed by indented serialization.
func (d *Design) TransformString(b *Base) string {
	return xmlenc.MarshalIndent(d.Transform(b))
}
