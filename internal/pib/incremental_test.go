package pib

import (
	"fmt"
	"testing"

	"repro/internal/dom"
	"repro/internal/xmlenc"
)

// buildBaseN is buildBase parameterized: n entries, one of which (idx
// tagged) carries a version-dependent name, so two calls with different
// tags produce bases identical everywhere but that entry.
func buildBaseN(t *testing.T, n int, tag string) *Base {
	t.Helper()
	term := "html(body(ul("
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("Item%d", i)
		if i == n/2 {
			name += tag
		}
		if i > 0 {
			term += ","
		}
		term += fmt.Sprintf(`li(span(%q),em("$%d"))`, name, i)
	}
	term += ")))"
	doc := dom.MustParseTerm(term)
	doc.Reindex()
	b := NewBase()
	root, _ := b.Add(&Instance{Pattern: "document", Kind: DocumentInstance, Doc: doc, URL: "u", Nodes: []dom.NodeID{doc.Root()}})
	list, _ := b.Add(&Instance{Pattern: "list", Kind: NodeInstance, Doc: doc, URL: "u", Nodes: []dom.NodeID{doc.FirstChild(doc.FirstChild(doc.Root()))}, Parent: root})
	doc.Walk(func(nd dom.NodeID) {
		if doc.Label(nd) != "li" {
			return
		}
		entry, _ := b.Add(&Instance{Pattern: "entry", Kind: NodeInstance, Doc: doc, URL: "u", Nodes: []dom.NodeID{nd}, Parent: list})
		doc.WalkSubtree(nd, func(c dom.NodeID) {
			switch doc.Label(c) {
			case "span":
				b.Add(&Instance{Pattern: "name", Kind: NodeInstance, Doc: doc, URL: "u", Nodes: []dom.NodeID{c}, Parent: entry})
			case "em":
				b.Add(&Instance{Pattern: "price", Kind: StringInstance, Doc: doc, URL: "u", Text: doc.ElementText(c), Parent: entry})
			}
		})
	})
	return b
}

// ContentHash must be stable for content-identical instances across
// re-parsed documents (fresh NodeIDs, fresh parent IDs) and differ when
// content differs.
func TestContentHashCrossTick(t *testing.T) {
	b1 := buildBaseN(t, 6, "A")
	b2 := buildBaseN(t, 6, "A")
	b3 := buildBaseN(t, 6, "B")
	h := func(b *Base, pat string, i int) uint64 { return b.Instances(pat)[i].ContentHash() }
	for i := 0; i < 6; i++ {
		if h(b1, "entry", i) != h(b2, "entry", i) {
			t.Errorf("entry %d: identical content hashes differently across parses", i)
		}
	}
	if h(b1, "entry", 3) == h(b3, "entry", 3) {
		t.Error("changed entry content hashes identically")
	}
	if h(b1, "entry", 0) != h(b3, "entry", 0) {
		t.Error("untouched entry's hash shifted when a sibling changed")
	}
}

func TestDiff(t *testing.T) {
	prev := buildBaseN(t, 6, "A")
	cur := buildBaseN(t, 6, "B")
	d := Diff(prev, cur)
	// The tagged li changes: its entry, its name instance, and the
	// enclosing list + document (whose subtree hashes cover it) differ.
	// The other 5 entries, their names, and all 6 price strings match.
	if len(d.Added) != len(d.Removed) {
		t.Errorf("added %d != removed %d on an equal-size change", len(d.Added), len(d.Removed))
	}
	if len(d.Added) == 0 || len(d.Unchanged) == 0 {
		t.Fatalf("degenerate delta: added %d unchanged %d", len(d.Added), len(d.Unchanged))
	}
	wantUnchanged := cur.Count() - len(d.Added)
	if len(d.Unchanged) != wantUnchanged {
		t.Errorf("unchanged = %d, want %d", len(d.Unchanged), wantUnchanged)
	}
	// Identity diff: everything unchanged.
	same := Diff(prev, buildBaseN(t, 6, "A"))
	if len(same.Added) != 0 || len(same.Removed) != 0 {
		t.Errorf("identical bases diff to added %d removed %d", len(same.Added), len(same.Removed))
	}
}

// TransformIncremental must emit byte-identical XML to Transform, tick
// after tick, while actually reusing subtrees.
func TestTransformIncrementalByteIdentical(t *testing.T) {
	designs := []*Design{
		{Auxiliary: map[string]bool{"document": true}},
		{Auxiliary: map[string]bool{"document": true, "list": true}, RootName: "out"},
		{Auxiliary: map[string]bool{"document": true}, Rename: map[string]string{"name": "n"}, SuppressText: map[string]bool{"price": true}},
		{EmitURL: true},
		{Auxiliary: map[string]bool{"document": true, "list": true}, AlwaysText: map[string]bool{"entry": true}},
	}
	for di, d := range designs {
		oc := NewOutputCache()
		for tick := 0; tick < 4; tick++ {
			b := buildBaseN(t, 8, fmt.Sprintf("v%d", tick/2)) // change every other tick
			want := xmlenc.MarshalIndent(d.Transform(b))
			got := xmlenc.MarshalIndent(d.TransformIncremental(b, oc))
			if got != want {
				t.Fatalf("design %d tick %d: incremental output diverges:\n%s\nvs\n%s", di, tick, got, want)
			}
		}
		st := oc.Stats()
		if st.ReusedNodes == 0 {
			t.Errorf("design %d: no nodes reused across 4 ticks", di)
		}
		if st.InstancesUnchanged == 0 {
			t.Errorf("design %d: diff saw no unchanged instances", di)
		}
	}
}

// Aliasing: a document already rendered must stay byte-stable after
// later ticks reuse (and re-place) its subtrees.
func TestTransformIncrementalAliasing(t *testing.T) {
	d := &Design{Auxiliary: map[string]bool{"document": true}}
	oc := NewOutputCache()
	doc1 := d.TransformIncremental(buildBaseN(t, 8, "v1"), oc)
	snap := xmlenc.MarshalIndent(doc1)
	d.TransformIncremental(buildBaseN(t, 8, "v2"), oc)
	d.TransformIncremental(buildBaseN(t, 8, "v3"), oc)
	if got := xmlenc.MarshalIndent(doc1); got != snap {
		t.Fatal("published tick-1 document mutated by later incremental transforms")
	}
	// Emitted instance subtrees are frozen; the roots are fresh.
	if doc1.Frozen() {
		t.Error("document root should be fresh (unfrozen) each tick")
	}
	for _, c := range doc1.Children {
		if !c.Frozen() {
			t.Errorf("emitted subtree <%s> not frozen", c.Name)
		}
	}
}

// Duplicate identical siblings must each get their own tree position:
// the cache pops per use, so the output stays a tree.
func TestTransformIncrementalDuplicateSiblings(t *testing.T) {
	build := func() *Base {
		doc := dom.MustParseTerm(`html(body(ul(li(span("Same")),li(span("Same")),li(span("Same")))))`)
		doc.Reindex()
		b := NewBase()
		root, _ := b.Add(&Instance{Pattern: "document", Kind: DocumentInstance, Doc: doc, URL: "u", Nodes: []dom.NodeID{doc.Root()}})
		doc.Walk(func(nd dom.NodeID) {
			if doc.Label(nd) == "li" {
				b.Add(&Instance{Pattern: "entry", Kind: NodeInstance, Doc: doc, URL: "u", Nodes: []dom.NodeID{nd}, Parent: root})
			}
		})
		return b
	}
	d := &Design{Auxiliary: map[string]bool{"document": true}}
	oc := NewOutputCache()
	d.TransformIncremental(build(), oc)
	out := d.TransformIncremental(build(), oc)
	if len(out.Children) != 3 {
		t.Fatalf("children = %d, want 3", len(out.Children))
	}
	seen := map[*xmlenc.Node]bool{}
	for _, c := range out.Children {
		if seen[c] {
			t.Fatal("same *Node spliced into two sibling positions")
		}
		seen[c] = true
	}
	if got, want := xmlenc.MarshalIndent(out), xmlenc.MarshalIndent(d.Transform(build())); got != want {
		t.Errorf("duplicate-sibling output diverges:\n%s\nvs\n%s", got, want)
	}
}

// Shrinking and growing the base across ticks must stay byte-identical
// (removed subtrees are dropped, new ones built).
func TestTransformIncrementalGrowShrink(t *testing.T) {
	d := &Design{Auxiliary: map[string]bool{"document": true}}
	oc := NewOutputCache()
	for _, n := range []int{8, 3, 12, 1, 12} {
		b := buildBaseN(t, n, "x")
		want := xmlenc.MarshalIndent(d.Transform(b))
		if got := xmlenc.MarshalIndent(d.TransformIncremental(b, oc)); got != want {
			t.Fatalf("size %d: incremental output diverges", n)
		}
	}
}
