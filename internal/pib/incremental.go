// Incremental output: the dirty-subtree half of the end-to-end
// incremental tick. PR 8 made Elog evaluation cost proportional to the
// changed region of a document; this file does the same for the
// instance-base → XML mapping. Instances carry content-addressed
// identity hashes (built on dom.Tree's merkle subtree fingerprints),
// Diff computes the added/removed/unchanged delta between two ticks'
// bases, and Design.TransformIncremental reuses the previous tick's
// emitted xmlenc subtrees for every instance whose output hash is
// unchanged — splicing frozen subtrees into the fresh document instead
// of rebuilding them.
//
// Identity is content-addressed, not ID-based: Instance.key() embeds
// the parent's sequential ID and raw NodeIDs, both of which shift
// between ticks even for untouched regions, so cross-tick matching
// hangs off dom.SubtreeHash instead (fnv64; the collision risk is the
// same one PR 8 accepted for match reuse, and the differential tests
// and FuzzIncrementalTransform pin byte-identical output).

package pib

import (
	"strings"

	"repro/internal/xmlenc"
)

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// mixString folds a string into an fnv64a hash, followed by a field
// separator so adjacent fields cannot alias.
func mixString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	h ^= 0x1f
	h *= fnvPrime64
	return h
}

// mix64 folds a 64-bit value into an fnv64a hash.
func mix64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// ContentHash returns the instance's content-addressed local identity:
// pattern, kind, and content (the string value for string instances,
// the merkle subtree fingerprints of its nodes otherwise; the URL for
// document instances). It deliberately excludes IDs, parent linkage,
// and raw node numbers, all of which are unstable across ticks, so an
// untouched region of a re-fetched page hashes identically. Memoized;
// instances are built fresh per evaluation run.
func (in *Instance) ContentHash() uint64 {
	if in.cHashOK {
		return in.cHash
	}
	h := uint64(fnvOffset64)
	h = mixString(h, in.Pattern)
	h = mix64(h, uint64(in.Kind))
	if in.Kind == StringInstance {
		h = mixString(h, in.Text)
	} else {
		if in.Kind == DocumentInstance {
			h = mixString(h, in.URL)
		}
		for _, nd := range in.Nodes {
			if in.Doc != nil {
				h = mix64(h, in.Doc.SubtreeHash(nd))
			}
		}
	}
	in.cHash, in.cHashOK = h, true
	return h
}

// outputHash extends ContentHash over the instance's subtree: the
// ordered children's output hashes are folded in emission order, so
// two instances with equal output hashes emit byte-identical XML under
// any fixed Design (element names, text emission, and tree-minor
// promotion are all functions of the pattern names and child hashes
// the fold covers). This is the cache key for emitted subtrees.
func (in *Instance) outputHash() uint64 {
	if in.oHashOK {
		return in.oHash
	}
	kids := orderedChildren(in)
	h := mix64(in.ContentHash(), uint64(len(kids)))
	for _, c := range kids {
		h = mix64(h, c.outputHash())
	}
	in.oHash, in.oHashOK = h, true
	return h
}

// Delta is the instance-level difference between two ticks' bases.
// Added and Unchanged hold instances of the current base, Removed
// instances of the previous one; matching is a multiset pairing on
// ContentHash, so duplicate identical instances pair off one-to-one.
type Delta struct {
	Added, Removed, Unchanged []*Instance
}

// Diff computes the content-addressed instance delta from prev to cur.
// Cost is linear in the two bases' sizes.
func Diff(prev, cur *Base) Delta {
	var d Delta
	remain := make(map[uint64]int, len(prev.all))
	prevBy := make(map[uint64][]*Instance, len(prev.all))
	for _, in := range prev.all {
		h := in.ContentHash()
		remain[h]++
		prevBy[h] = append(prevBy[h], in)
	}
	for _, in := range cur.all {
		h := in.ContentHash()
		if remain[h] > 0 {
			remain[h]--
			d.Unchanged = append(d.Unchanged, in)
		} else {
			d.Added = append(d.Added, in)
		}
	}
	for h, list := range prevBy {
		for i := len(list) - remain[h]; i < len(list); i++ {
			d.Removed = append(d.Removed, list[i])
		}
	}
	return d
}

// cachedSub is one reusable emitted subtree: the frozen element and
// its node count (for the reuse stats, so splicing does not re-walk).
type cachedSub struct {
	el    *xmlenc.Node
	nodes uint64
}

// OutputCache carries a wrapper's emitted-subtree cache and the
// previous tick's base across TransformIncremental calls. Not safe for
// concurrent use; each wrapper source owns one and transforms one tick
// at a time.
type OutputCache struct {
	prev, next map[uint64][]cachedSub
	prevBase   *Base

	reused, built                uint64
	added, removed, unchangedCnt uint64
}

// NewOutputCache returns an empty cache.
func NewOutputCache() *OutputCache {
	return &OutputCache{prev: map[uint64][]cachedSub{}}
}

// OutputStats are OutputCache's cumulative counters.
type OutputStats struct {
	// ReusedNodes / BuiltNodes count output XML nodes spliced from the
	// previous tick vs constructed fresh.
	ReusedNodes, BuiltNodes uint64
	// InstancesAdded / InstancesRemoved / InstancesUnchanged accumulate
	// the per-tick base deltas (Diff against the retained base).
	InstancesAdded, InstancesRemoved, InstancesUnchanged uint64
}

// Stats returns the cache's cumulative counters.
func (oc *OutputCache) Stats() OutputStats {
	return OutputStats{
		ReusedNodes:        oc.reused,
		BuiltNodes:         oc.built,
		InstancesAdded:     oc.added,
		InstancesRemoved:   oc.removed,
		InstancesUnchanged: oc.unchangedCnt,
	}
}

// takePrev pops one cached subtree for the key, so a *Node is spliced
// into at most one position of the new document (the output stays a
// tree even when identical siblings repeat).
func (oc *OutputCache) takePrev(key uint64) (cachedSub, bool) {
	list := oc.prev[key]
	if len(list) == 0 {
		return cachedSub{}, false
	}
	sub := list[len(list)-1]
	if len(list) == 1 {
		delete(oc.prev, key)
	} else {
		oc.prev[key] = list[:len(list)-1]
	}
	return sub, true
}

// putNext records an emitted subtree for reuse by the next tick.
func (oc *OutputCache) putNext(key uint64, sub cachedSub) {
	oc.next[key] = append(oc.next[key], sub)
}

// TransformIncremental is Transform with cross-tick output reuse: the
// root and document-level elements are rebuilt every tick (they are a
// handful of nodes and carry per-tick attributes), while every
// non-auxiliary instance subtree whose output hash matches one emitted
// last tick is spliced in frozen from the cache. Freshly built
// subtrees are frozen before caching, so a subtree shared with an
// already-published document can never be mutated through the new one
// (xmlenc's lixtodebug guard enforces this in debug builds). Output is
// byte-identical to Transform on the same base.
func (d *Design) TransformIncremental(b *Base, oc *OutputCache) *xmlenc.Node {
	if oc.prevBase != nil {
		delta := Diff(oc.prevBase, b)
		oc.added += uint64(len(delta.Added))
		oc.removed += uint64(len(delta.Removed))
		oc.unchangedCnt += uint64(len(delta.Unchanged))
	}
	oc.next = make(map[uint64][]cachedSub, len(oc.prev)+8)

	rootName := d.RootName
	if rootName == "" {
		rootName = "lixto"
	}
	root := xmlenc.NewElement(rootName)
	for _, docInst := range b.Roots {
		var target *xmlenc.Node
		if d.Auxiliary[docInst.Pattern] {
			target = root
		} else {
			el := xmlenc.NewElement(d.elementName(docInst.Pattern))
			if d.EmitURL && docInst.URL != "" {
				el.SetAttr("url", docInst.URL)
			}
			root.Append(el)
			target = el
		}
		d.emitChildrenCached(docInst, target, oc)
	}

	oc.prev, oc.next = oc.next, nil
	oc.prevBase = b
	return root
}

// emitChildrenCached mirrors emitChildren with the subtree cache in
// the path, returning the number of output nodes placed under out.
func (d *Design) emitChildrenCached(in *Instance, out *xmlenc.Node, oc *OutputCache) uint64 {
	var total uint64
	for _, c := range orderedChildren(in) {
		if d.Auxiliary[c.Pattern] {
			// Tree minor: skip the node, promote its children.
			total += d.emitChildrenCached(c, out, oc)
			continue
		}
		key := c.outputHash()
		if sub, ok := oc.takePrev(key); ok {
			out.Append(sub.el)
			oc.putNext(key, sub)
			oc.reused += sub.nodes
			total += sub.nodes
			continue
		}
		el := xmlenc.NewElement(d.elementName(c.Pattern))
		out.Append(el)
		nodes := d.emitChildrenCached(c, el, oc) + 1
		if (len(el.Children) == 0 || d.AlwaysText[c.Pattern]) && !d.SuppressText[c.Pattern] {
			el.Text = strings.TrimSpace(c.TextContent())
		}
		el.Freeze()
		oc.putNext(key, cachedSub{el: el, nodes: nodes})
		oc.built++
		total += nodes
	}
	return total
}
