package pib

import (
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/xmlenc"
)

// buildBase constructs a small instance base by hand: a document with a
// list of two entries, each holding a name and (for the first) a price
// string.
func buildBase(t *testing.T) (*Base, *dom.Tree) {
	t.Helper()
	doc := dom.MustParseTerm(`html(body(ul(li(span("Alpha"),em("$1")),li(span("Beta")))))`)
	doc.Reindex()
	b := NewBase()
	root, _ := b.Add(&Instance{Pattern: "document", Kind: DocumentInstance, Doc: doc, URL: "u", Nodes: []dom.NodeID{doc.Root()}})
	var lis []dom.NodeID
	doc.Walk(func(n dom.NodeID) {
		if doc.Label(n) == "li" {
			lis = append(lis, n)
		}
	})
	list, _ := b.Add(&Instance{Pattern: "list", Kind: NodeInstance, Doc: doc, URL: "u", Nodes: []dom.NodeID{doc.FirstChild(doc.FirstChild(doc.Root()))}, Parent: root})
	for _, li := range lis {
		entry, _ := b.Add(&Instance{Pattern: "entry", Kind: NodeInstance, Doc: doc, URL: "u", Nodes: []dom.NodeID{li}, Parent: list})
		doc.WalkSubtree(li, func(n dom.NodeID) {
			switch doc.Label(n) {
			case "span":
				b.Add(&Instance{Pattern: "name", Kind: NodeInstance, Doc: doc, URL: "u", Nodes: []dom.NodeID{n}, Parent: entry})
			case "em":
				b.Add(&Instance{Pattern: "price", Kind: StringInstance, Doc: doc, URL: "u", Text: doc.ElementText(n), Parent: entry})
			}
		})
	}
	return b, doc
}

func TestAddDedup(t *testing.T) {
	b, doc := buildBase(t)
	n := b.Count()
	// Re-adding an identical instance must not grow the base.
	root := b.Instances("document")[0]
	_, added := b.Add(&Instance{Pattern: "document", Kind: DocumentInstance, Doc: doc, URL: "u", Nodes: root.Nodes})
	if added || b.Count() != n {
		t.Fatalf("duplicate accepted (count %d -> %d)", n, b.Count())
	}
}

func TestPatternsAndInstances(t *testing.T) {
	b, _ := buildBase(t)
	pats := b.Patterns()
	want := []string{"document", "entry", "list", "name", "price"}
	if strings.Join(pats, ",") != strings.Join(want, ",") {
		t.Errorf("patterns = %v", pats)
	}
	if len(b.Instances("entry")) != 2 || len(b.Instances("name")) != 2 || len(b.Instances("price")) != 1 {
		t.Error("instance counts wrong")
	}
}

func TestTransformBasic(t *testing.T) {
	b, _ := buildBase(t)
	d := &Design{Auxiliary: map[string]bool{"document": true}}
	x := d.Transform(b)
	s := xmlenc.MarshalIndent(x)
	if !strings.Contains(s, "<name>Alpha</name>") || !strings.Contains(s, "<price>$1</price>") {
		t.Errorf("xml:\n%s", s)
	}
	if strings.Count(s, "<entry>") != 2 {
		t.Errorf("entries:\n%s", s)
	}
}

func TestAuxiliaryTreeMinor(t *testing.T) {
	// Marking both document and list auxiliary must promote entries to
	// the top — the tree-minor construction of Section 2.1.
	b, _ := buildBase(t)
	d := &Design{Auxiliary: map[string]bool{"document": true, "list": true}, RootName: "out"}
	x := d.Transform(b)
	for _, c := range x.Children {
		if c.Name != "entry" {
			t.Errorf("unexpected top-level element %s", c.Name)
		}
	}
	if len(x.Children) != 2 {
		t.Errorf("children = %d", len(x.Children))
	}
}

func TestRenameAndSuppress(t *testing.T) {
	b, _ := buildBase(t)
	d := &Design{
		Auxiliary:    map[string]bool{"document": true},
		Rename:       map[string]string{"name": "n"},
		SuppressText: map[string]bool{"price": true},
	}
	s := xmlenc.Marshal(d.Transform(b))
	if !strings.Contains(s, "<n>Alpha</n>") {
		t.Errorf("rename failed: %s", s)
	}
	if strings.Contains(s, "$1") {
		t.Errorf("suppressed text leaked: %s", s)
	}
}

func TestDocumentOrderOfSiblings(t *testing.T) {
	b, _ := buildBase(t)
	d := &Design{Auxiliary: map[string]bool{"document": true, "list": true, "price": true}}
	s := xmlenc.Marshal(d.Transform(b))
	// Alpha's entry precedes Beta's in document order.
	if strings.Index(s, "Alpha") > strings.Index(s, "Beta") {
		t.Errorf("document order violated: %s", s)
	}
}

func TestEmitURL(t *testing.T) {
	b, _ := buildBase(t)
	d := &Design{EmitURL: true}
	s := xmlenc.Marshal(d.Transform(b))
	if !strings.Contains(s, `url="u"`) {
		t.Errorf("url attribute missing: %s", s)
	}
}

func TestTextContentOfSequence(t *testing.T) {
	doc := dom.MustParseTerm(`r(a("x"),b("y"),c("z"))`)
	doc.Reindex()
	var kids []dom.NodeID
	for c := doc.FirstChild(doc.Root()); c != dom.Nil; c = doc.NextSibling(c) {
		kids = append(kids, c)
	}
	in := &Instance{Pattern: "seq", Kind: SequenceInstance, Doc: doc, Nodes: kids[:2]}
	if got := in.TextContent(); got != "xy" {
		t.Errorf("TextContent = %q", got)
	}
}

func TestAlwaysText(t *testing.T) {
	b, _ := buildBase(t)
	// entry instances have child instances; with AlwaysText they also
	// carry their own text.
	d := &Design{Auxiliary: map[string]bool{"document": true, "list": true},
		AlwaysText: map[string]bool{"entry": true}}
	s := xmlenc.Marshal(d.Transform(b))
	if !strings.Contains(s, "Alpha$1") && !strings.Contains(s, "Alpha") {
		t.Errorf("entry text missing: %s", s)
	}
	// The text sits on the entry element itself, before its children.
	if !strings.Contains(s, `<entry>Alpha`) {
		t.Errorf("AlwaysText not applied: %s", s)
	}
}
