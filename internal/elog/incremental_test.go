package elog

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/dom"
	"repro/internal/htmlparse"
)

// churnVersions returns nVersions snapshots of the fixture's documents:
// version 0 is the fixture as parsed, and each later version is an
// independent clone of the originals with its own deterministic
// mutation burst. Consecutive versions therefore share most subtrees
// while differing in a few dirty regions — the shape the incremental
// layer is built for.
func churnVersions(fetch MapFetcher, nVersions int) []MapFetcher {
	versions := make([]MapFetcher, nVersions)
	versions[0] = fetch
	for v := 1; v < nVersions; v++ {
		m := MapFetcher{}
		for url, tr := range fetch {
			c := tr.Clone()
			dom.Mutate(c, rand.New(rand.NewSource(int64(v)*1000003+int64(len(url)))), 4)
			m[url] = c
		}
		versions[v] = m
	}
	return versions
}

// TestIncrementalMatchesCold pins the tentpole differential guarantee:
// over a randomized mutation sequence, an evaluator reusing subtree
// match results across document versions produces a bit-identical
// instance base to a cold evaluation of each version, at every
// concurrency level. Run with -race this also stresses concurrent
// access to the subtree caches from parallel waves.
func TestIncrementalMatchesCold(t *testing.T) {
	concs := []int{1, runtime.GOMAXPROCS(0)}
	for name, fx := range parallelFixtures() {
		prog := MustParse(fx.src)
		versions := churnVersions(fx.fetch, 6)

		// Cold baseline: a fresh compiled program per version, no
		// sharing of any kind between versions.
		want := make([]string, len(versions))
		for v, fetch := range versions {
			ev := NewEvaluator(fetch)
			base, err := ev.RunCompiled(MustCompile(prog))
			if err != nil {
				t.Fatalf("%s cold v%d: %v", name, v, err)
			}
			want[v] = base.Dump()
		}

		for _, conc := range concs {
			cp := MustCompile(prog)
			shared := NewMatchCache()
			for v, fetch := range versions {
				ev := NewEvaluator(fetch)
				ev.MaxConcurrency = conc
				ev.Incremental = true
				ev.Shared = shared
				base, err := ev.RunCompiled(cp)
				if err != nil {
					t.Fatalf("%s conc=%d v%d: %v", name, conc, v, err)
				}
				if got := base.Dump(); got != want[v] {
					t.Errorf("%s conc=%d v%d: incremental base diverges from cold evaluation:\n--- cold ---\n%s--- incremental ---\n%s",
						name, conc, v, want[v], got)
				}
			}
			// Fine-grained contexts (rows, cells) must see reuse across
			// versions. The crawl fixture's contexts are whole tiny
			// documents, so any mutation dirties them — zero hits is the
			// correct outcome there, not a failure.
			if inc := cp.Incremental(); inc.SubtreeHits == 0 && name != "crawl" {
				t.Errorf("%s conc=%d: no subtree hits across %d versions — incremental path never engaged", name, conc, len(versions))
			}
		}
	}
}

// TestIncrementalCumulativeDrift runs the same differential over a
// cumulative content-mutation chain (each version mutates the previous
// one, not the original), the pattern a long-lived wrapper sees from a
// slowly drifting live page. Content-only churn preserves document
// order, so the incremental path must stay engaged the whole chain.
func TestIncrementalCumulativeDrift(t *testing.T) {
	fx := parallelFixtures()["ebay"]
	prog := MustParse(fx.src)
	rng := rand.New(rand.NewSource(42))
	cur := fx.fetch["www.ebay.com/"]
	cp := MustCompile(prog)
	shared := NewMatchCache()
	for v := 0; v < 8; v++ {
		fetch := MapFetcher{"www.ebay.com/": cur}
		cold := NewEvaluator(fetch)
		wantBase, err := cold.RunCompiled(MustCompile(prog))
		if err != nil {
			t.Fatalf("cold v%d: %v", v, err)
		}
		inc := NewEvaluator(fetch)
		inc.Incremental = true
		inc.Shared = shared
		gotBase, err := inc.RunCompiled(cp)
		if err != nil {
			t.Fatalf("incremental v%d: %v", v, err)
		}
		if want, got := wantBase.Dump(), gotBase.Dump(); got != want {
			t.Errorf("v%d: incremental base diverges from cold evaluation:\n--- cold ---\n%s--- incremental ---\n%s", v, want, got)
		}
		next := cur.Clone()
		dom.MutateContent(next, rng, 5)
		cur = next
	}
	if st := cp.Incremental(); st.SubtreeHits == 0 {
		t.Error("no subtree hits over the drift chain")
	}
}

// TestMatchCacheLRUBound pins the satellite memory guarantee: under
// sustained churn the shared cache never exceeds its entry cap and
// keeps serving by evicting least recently used entries.
func TestMatchCacheLRUBound(t *testing.T) {
	const cap = 32
	shared := NewMatchCacheSize(cap)
	prog := MustParse(`item(S, X) <- document("d", S), subelem(S, ?.td, X)`)
	cp := MustCompile(prog)
	rng := rand.New(rand.NewSource(9))
	cur := htmlparse.Parse(`<table><tr><td>a</td><td>b</td><td>c</td><td>d</td></tr></table>`)
	for i := 0; i < 150; i++ {
		ev := NewEvaluator(MapFetcher{"d": cur})
		ev.Incremental = true
		ev.Shared = shared
		if _, err := ev.RunCompiled(cp); err != nil {
			t.Fatal(err)
		}
		if st := shared.Report(); st.Entries > cap {
			t.Fatalf("round %d: %d entries exceeds cap %d", i, st.Entries, cap)
		}
		next := cur.Clone()
		dom.Mutate(next, rng, 2)
		cur = next
	}
	if st := shared.Report(); st.Evictions == 0 {
		t.Error("no evictions after 150 distinct document versions against a 32-entry cap")
	}
}

// FuzzIncremental mutates a document between evaluations and checks
// that subtree-level reuse never changes the instance base: for every
// (document, seed) the incremental evaluator's base must be
// bit-identical to a cold evaluation of each version.
func FuzzIncremental(f *testing.F) {
	f.Add("<body><ul><li>alpha</li><li>beta</li></ul><p>tail</p></body>", int64(1))
	f.Add(`<table><tr><td><b class="cur">$</b> 5</td><td>x</td></tr></table>`, int64(7))
	f.Add(`<div a="1"><span>x</span><div><i>y</i></div></div>`, int64(3))
	f.Fuzz(func(t *testing.T, src string, seed int64) {
		if len(src) > 4096 {
			return
		}
		prog := MustParse(`
cell(S, X) <- document("d", S), subelem(S, ?.*, X)
inner(S, X) <- cell(_, S), subelem(S, *, X)
texty(S, X) <- cell(S, X), contains(X, (?.*, [(elementtext, .+, regexp)]), _)
`)
		rng := rand.New(rand.NewSource(seed))
		cur := htmlparse.Parse(src)
		cp := MustCompile(prog)
		shared := NewMatchCache()
		for v := 0; v < 3; v++ {
			fetch := MapFetcher{"d": cur}
			cold := NewEvaluator(fetch)
			wantBase, err := cold.RunCompiled(MustCompile(prog))
			if err != nil {
				t.Fatalf("cold v%d: %v", v, err)
			}
			inc := NewEvaluator(fetch)
			inc.Incremental = true
			inc.Shared = shared
			gotBase, err := inc.RunCompiled(cp)
			if err != nil {
				t.Fatalf("incremental v%d: %v", v, err)
			}
			if want, got := wantBase.Dump(), gotBase.Dump(); got != want {
				t.Fatalf("v%d: incremental base diverges from cold evaluation:\n--- cold ---\n%s--- incremental ---\n%s", v, want, got)
			}
			next := cur.Clone()
			dom.Mutate(next, rng, 3)
			cur = next
		}
	})
}
