package elog

import (
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/htmlparse"
	"repro/internal/pib"
)

// ebayPage builds an eBay-style auction listing page with the structure
// Figure 5's wrapper expects: a header table containing "item", one
// table per offered item, and a closing <hr>.
func ebayPage() string {
	var b strings.Builder
	b.WriteString(`<html><body>`)
	b.WriteString(`<h1>eBay Listings</h1>`)
	b.WriteString(`<table><tr><td><b>item</b></td><td>price</td><td>bids</td></tr></table>`)
	items := []struct {
		des, price, bids string
	}{
		{"Vintage Camera", "$ 120.50", "12 bids"},
		{"Mountain Bike", "$ 85.00", "3 bids"},
		{"Antique Clock", "Euro 45.00", "7 bids"},
	}
	for _, it := range items {
		b.WriteString(`<table><tr>`)
		b.WriteString(`<td><a href="item.html">` + it.des + `</a></td>`)
		b.WriteString(`<td>` + it.price + `</td>`)
		b.WriteString(`<td>` + it.bids + `</td>`)
		b.WriteString(`</tr></table>`)
	}
	b.WriteString(`<hr><p>footer</p>`)
	b.WriteString(`</body></html>`)
	return b.String()
}

// ebayProgram is the Elog extraction program of Figure 5, normalized to
// a consistent pattern name (the paper prints "tablesq" in the first
// head but "tableseq" elsewhere) and to this implementation's element
// path syntax (the bids rule descends with ?.td, since td cells are not
// direct children of the record table).
const ebayProgram = `
tableseq(S, X) <- document("www.ebay.com/", S),
    subsq(S, (.body, []), (.table, []), (.table, []), X),
    before(S, X, (.table, [(elementtext, item, substr)]), 0, 0, _, _),
    after(S, X, .hr, 0, 0, _, _)
record(S, X) <- tableseq(_, S), subelem(S, .table, X)
itemdes(S, X) <- record(_, S), subelem(S, (?.td.?.a, []), X)
price(S, X) <- record(_, S), subelem(S, (?.td, [(elementtext, \var[Y].*, regvar)]), X), isCurrency(Y)
bids(S, X) <- record(_, S), subelem(S, ?.td, X), before(S, X, ?.td, 0, 30, Y, _), price(_, Y)
currency(S, X) <- price(_, S), subtext(S, \var[Y], X), isCurrency(Y)
`

func runEbay(t *testing.T) *pib.Base {
	t.Helper()
	prog, err := Parse(ebayProgram)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ev := NewEvaluator(MapFetcher{"www.ebay.com/": htmlparse.Parse(ebayPage())})
	base, err := ev.Run(prog)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return base
}

func TestE8EbayFigure5(t *testing.T) {
	base := runEbay(t)
	if got := len(base.Instances("tableseq")); got != 1 {
		t.Fatalf("tableseq instances = %d", got)
	}
	seq := base.Instances("tableseq")[0]
	if seq.Kind != pib.SequenceInstance || len(seq.Nodes) != 3 {
		t.Fatalf("tableseq = %v nodes (kind %v)", len(seq.Nodes), seq.Kind)
	}
	if got := len(base.Instances("record")); got != 3 {
		t.Fatalf("records = %d", got)
	}
	des := base.Instances("itemdes")
	if len(des) != 3 {
		t.Fatalf("itemdes = %d", len(des))
	}
	wantDes := []string{"Vintage Camera", "Mountain Bike", "Antique Clock"}
	for i, in := range des {
		if got := strings.TrimSpace(in.TextContent()); got != wantDes[i] {
			t.Errorf("itemdes[%d] = %q, want %q", i, got, wantDes[i])
		}
	}
	prices := base.Instances("price")
	if len(prices) != 3 {
		t.Fatalf("prices = %d: %v", len(prices), prices)
	}
	wantPrice := []string{"$ 120.50", "$ 85.00", "Euro 45.00"}
	for i, in := range prices {
		if got := strings.TrimSpace(in.TextContent()); got != wantPrice[i] {
			t.Errorf("price[%d] = %q, want %q", i, got, wantPrice[i])
		}
	}
	bids := base.Instances("bids")
	if len(bids) != 3 {
		t.Fatalf("bids = %d", len(bids))
	}
	for i, in := range bids {
		if got := strings.TrimSpace(in.TextContent()); !strings.HasSuffix(got, "bids") {
			t.Errorf("bids[%d] = %q", i, got)
		}
	}
	curr := base.Instances("currency")
	if len(curr) != 3 {
		t.Fatalf("currency = %d", len(curr))
	}
	wantCur := []string{"$", "$", "Euro"}
	for i, in := range curr {
		if in.Text != wantCur[i] {
			t.Errorf("currency[%d] = %q, want %q", i, in.Text, wantCur[i])
		}
	}
}

func TestEbayXMLOutput(t *testing.T) {
	base := runEbay(t)
	design := &pib.Design{
		Auxiliary: map[string]bool{"document": true, "tableseq": true},
		RootName:  "ebay",
	}
	xml := design.TransformString(base)
	if strings.Count(xml, "<record>") != 3 {
		t.Errorf("xml records:\n%s", xml)
	}
	if !strings.Contains(xml, "<itemdes>Vintage Camera</itemdes>") {
		t.Errorf("missing itemdes:\n%s", xml)
	}
	if !strings.Contains(xml, "<currency>Euro</currency>") {
		t.Errorf("missing currency:\n%s", xml)
	}
	// tableseq is auxiliary: records must sit directly under ebay.
	if strings.Contains(xml, "<tableseq>") {
		t.Errorf("auxiliary pattern leaked:\n%s", xml)
	}
}

func TestEbayRobustnessUnderPerturbation(t *testing.T) {
	// Layout noise the paper's landmark-based approach should tolerate:
	// extra navigation junk before the header, different number of
	// items, whitespace.
	var b strings.Builder
	b.WriteString(`<html><body><div><a href="/">home</a> | <a href="/sell">sell</a></div>`)
	b.WriteString(`<p>Welcome!</p>`)
	b.WriteString(`<table><tr><td>item</td></tr></table>`)
	for i := 0; i < 5; i++ {
		b.WriteString(`<table><tr><td><a href="i.html">Item ` + string(rune('A'+i)) + `</a></td><td>$ 10.00</td><td>1 bid</td></tr></table>`)
	}
	b.WriteString(`<hr></body></html>`)
	prog := MustParse(ebayProgram)
	ev := NewEvaluator(MapFetcher{"www.ebay.com/": htmlparse.Parse(b.String())})
	base, err := ev.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(base.Instances("record")); got != 5 {
		t.Fatalf("records = %d", got)
	}
	if got := len(base.Instances("itemdes")); got != 5 {
		t.Fatalf("itemdes = %d", got)
	}
}

func TestParseRejects(t *testing.T) {
	for _, src := range []string{
		"",
		"p(S, X) <- q(_, S), subelem(S, .a, X)", // undefined parent q
		"p(S, X) <- document(\"u\", S)",         // no extraction
		"p(S) <- document(\"u\", S), subelem(S, .a, X)",                      // head not binary
		"p(S, X) <- document(\"u\", S), subelem(S, .a, X), subtext(S, x, X)", // two extractions
		"p(S, X) <- document(\"u\", S), subelem(S, .a, X), frobnicate(S)",    // unknown condition
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestSpecializationRule(t *testing.T) {
	// Footnote 6: greentable(S, X) <- table(S, X), contains(...).
	src := `
tbl(S, X) <- document("d", S), subelem(S, ?.table, X)
greentable(S, X) <- tbl(S, X), contains(X, (?.td, [(color, green, exact)]), _)
`
	doc := htmlparse.Parse(`<body>
<table><tr><td color="green">a</td></tr></table>
<table><tr><td>b</td></tr></table>
</body>`)
	base, err := NewEvaluator(MapFetcher{"d": doc}).Run(MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Instances("tbl")) != 2 {
		t.Fatalf("tbl = %d", len(base.Instances("tbl")))
	}
	if len(base.Instances("greentable")) != 1 {
		t.Fatalf("greentable = %d", len(base.Instances("greentable")))
	}
}

func TestNegatedConditions(t *testing.T) {
	src := `
row(S, X) <- document("d", S), subelem(S, ?.tr, X)
plain(S, X) <- row(S, X), notcontains(X, ?.b, _)
`
	doc := htmlparse.Parse(`<table><tr><td><b>bold</b></td></tr><tr><td>plain</td></tr></table>`)
	base, err := NewEvaluator(MapFetcher{"d": doc}).Run(MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Instances("plain")) != 1 {
		t.Fatalf("plain = %d", len(base.Instances("plain")))
	}
	if got := strings.TrimSpace(base.Instances("plain")[0].TextContent()); got != "plain" {
		t.Errorf("plain text = %q", got)
	}
}

func TestSubattAndComparison(t *testing.T) {
	src := `
link(S, X) <- document("d", S), subelem(S, ?.a, X)
url(S, X) <- link(_, S), subatt(S, href, X)
`
	doc := htmlparse.Parse(`<p><a href="x.html">x</a><a href="y.html">y</a></p>`)
	base, err := NewEvaluator(MapFetcher{"d": doc}).Run(MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	urls := base.Instances("url")
	if len(urls) != 2 || urls[0].Text != "x.html" || urls[1].Text != "y.html" {
		t.Fatalf("urls = %v", urls)
	}
}

func TestCrawlingGetDocument(t *testing.T) {
	// Recursive wrapping across pages: follow "next" links.
	src := `
page(S, X) <- document("p1", S), subelem(S, .body, X)
nextlink(S, X) <- page(_, S), subelem(S, ?.a, X)
nexturl(S, X) <- nextlink(_, S), subatt(S, href, X)
nextdoc(S, X) <- nexturl(_, S), getDocument(S, X)
page(S, X) <- nextdoc(_, S), subelem(S, .body, X)
title(S, X) <- page(_, S), subelem(S, ?.h1, X)
`
	fetcher := MapFetcher{
		"p1": htmlparse.Parse(`<body><h1>One</h1><a href="p2">next</a></body>`),
		"p2": htmlparse.Parse(`<body><h1>Two</h1><a href="p3">next</a></body>`),
		"p3": htmlparse.Parse(`<body><h1>Three</h1></body>`),
	}
	base, err := NewEvaluator(fetcher).Run(MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	titles := base.Instances("title")
	if len(titles) != 3 {
		t.Fatalf("titles = %d", len(titles))
	}
	var got []string
	for _, in := range titles {
		got = append(got, strings.TrimSpace(in.TextContent()))
	}
	want := map[string]bool{"One": true, "Two": true, "Three": true}
	for _, g := range got {
		if !want[g] {
			t.Errorf("unexpected title %q", g)
		}
	}
}

func TestCrawlLimit(t *testing.T) {
	// A self-linking page must hit the crawl guard, not loop forever:
	// the fetch cache dedups by URL, so a *cycle* terminates naturally;
	// use an infinite chain instead.
	n := 0
	fetch := FetcherFunc(func(url string) (*dom.Tree, error) {
		n++
		return htmlparse.Parse(`<body><a href="p` + strings.Repeat("x", n) + `">next</a></body>`), nil
	})
	src := `
doc(S, X) <- document("p0", S), subelem(S, .body, X)
link(S, X) <- doc(_, S), subelem(S, ?.a, X)
url(S, X) <- link(_, S), subatt(S, href, X)
next(S, X) <- url(_, S), getDocument(S, X)
doc(S, X) <- next(_, S), subelem(S, .body, X)
`
	ev := NewEvaluator(fetch)
	ev.MaxDocuments = 10
	_, err := ev.Run(MustParse(src))
	if err == nil {
		t.Fatal("expected crawl-limit error")
	}
	if !strings.Contains(err.Error(), "crawl limit") {
		t.Fatalf("got %v", err)
	}
}

func TestDistanceToleranceBinding(t *testing.T) {
	src := `
cell(S, X) <- document("d", S), subelem(S, ?.td, X)
neartail(S, X) <- cell(S, X), after(S, X, ?.hr, 0, 1, _, D)
`
	doc := htmlparse.Parse(`<body><table><tr><td>a</td><td>b</td></tr></table><hr></body>`)
	base, err := NewEvaluator(MapFetcher{"d": doc}).Run(MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	// td "b" is 2 positions from the hr (text node + nothing...) —
	// at least the second cell must qualify, the first is farther.
	near := base.Instances("neartail")
	if len(near) == 0 {
		t.Fatal("no neartail instances")
	}
	for _, in := range near {
		if strings.TrimSpace(in.TextContent()) == "a" {
			t.Errorf("td 'a' should be too far from hr")
		}
	}
}

func TestEPDParsing(t *testing.T) {
	for _, tc := range []struct {
		src   string
		steps int
		conds int
	}{
		{".body", 1, 0},
		{"?.td", 2, 0},
		{"(.table, [])", 1, 0},
		{"(?.td, [(elementtext, x, substr)])", 2, 1},
		{"(.td, [(color, green, exact), (class, x, substr)])", 1, 2},
		{"?.td.?.a", 4, 0},
		{".*.table", 2, 0},
	} {
		e, err := ParseEPD(tc.src)
		if err != nil {
			t.Errorf("ParseEPD(%q): %v", tc.src, err)
			continue
		}
		if len(e.Steps) != tc.steps || len(e.Conds) != tc.conds {
			t.Errorf("ParseEPD(%q): steps=%d conds=%d, want %d/%d", tc.src, len(e.Steps), len(e.Conds), tc.steps, tc.conds)
		}
	}
	for _, bad := range []string{"", "(.td, [x)"} {
		if _, err := ParseEPD(bad); err == nil {
			t.Errorf("ParseEPD(%q) succeeded", bad)
		}
	}
}

func TestProgramStringRoundTrip(t *testing.T) {
	p := MustParse(ebayProgram)
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, p.String())
	}
	if len(p2.Rules) != len(p.Rules) {
		t.Fatalf("rule count changed: %d vs %d", len(p.Rules), len(p2.Rules))
	}
}

func BenchmarkE8_EbayWrapper(b *testing.B) {
	prog := MustParse(ebayProgram)
	// A larger listing: 200 items.
	var sb strings.Builder
	sb.WriteString(`<html><body><table><tr><td>item</td></tr></table>`)
	for i := 0; i < 200; i++ {
		sb.WriteString(`<table><tr><td><a href="i.html">Item</a></td><td>$ 10.00</td><td>2 bids</td></tr></table>`)
	}
	sb.WriteString(`<hr></body></html>`)
	doc := htmlparse.Parse(sb.String())
	ev := NewEvaluator(MapFetcher{"www.ebay.com/": doc})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base, err := ev.Run(prog)
		if err != nil {
			b.Fatal(err)
		}
		if len(base.Instances("record")) != 200 {
			b.Fatalf("records = %d", len(base.Instances("record")))
		}
	}
}

func TestStratifiedNegatedPatternRef(t *testing.T) {
	// Cells that are NOT prices: requires the price pattern to be fully
	// computed before the negated reference is checked — the stratified
	// negation feature of Section 3.3.
	src := `
cell(S, X) <- document("d", S), subelem(S, ?.td, X)
price(S, X) <- cell(S, X), subtext(S, \var[Y], X2), isCurrency(Y)
nonprice(S, X) <- cell(S, X), not price(_, X)
`
	// The price rule above is awkward (subtext under a specialization);
	// use a cleaner formulation.
	src = `
cell(S, X) <- document("d", S), subelem(S, ?.td, X)
price(S, X) <- cell(S, X), contains(X, (?.b, [(class, cur, exact)]), _)
nonprice(S, X) <- cell(S, X), not price(_, X)
`
	doc := htmlparse.Parse(`<table><tr>
<td><b class="cur">$</b> 10</td>
<td>just text</td>
<td><b class="cur">$</b> 20</td>
</tr></table>`)
	base, err := NewEvaluator(MapFetcher{"d": doc}).Run(MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(base.Instances("price")); got != 2 {
		t.Fatalf("price = %d", got)
	}
	non := base.Instances("nonprice")
	if len(non) != 1 {
		t.Fatalf("nonprice = %d", len(non))
	}
	if got := strings.TrimSpace(non[0].TextContent()); got != "just text" {
		t.Errorf("nonprice text = %q", got)
	}
}

func TestStratifyRejectsNegationCycle(t *testing.T) {
	src := `
a(S, X) <- document("d", S), subelem(S, ?.td, X), not b(_, X)
b(S, X) <- document("d", S), subelem(S, ?.td, X), not a(_, X)
`
	doc := htmlparse.Parse(`<table><tr><td>x</td></tr></table>`)
	if _, err := NewEvaluator(MapFetcher{"d": doc}).Run(MustParse(src)); err == nil {
		t.Fatal("negation cycle accepted")
	}
}

func TestStratifyOrdering(t *testing.T) {
	p := MustParse(`
a(S, X) <- document("d", S), subelem(S, .body, X)
b(S, X) <- a(_, S), subelem(S, ?.td, X), not c(_, X)
c(S, X) <- a(_, S), subelem(S, ?.th, X)
`)
	strata, err := Stratify(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(strata) != 2 {
		t.Fatalf("strata = %d", len(strata))
	}
	for _, r := range strata[0] {
		if r.Head == "b" {
			t.Error("b must be in the upper stratum")
		}
	}
}

func TestComparisonConditions(t *testing.T) {
	// Extract only flights after a threshold time — date/number-aware
	// comparisons from the concepts package.
	src := `
row(S, X) <- document("d", S), subelem(S, ?.tr, X)
late(S, X) <- row(S, X), contains(X, (?.td, [(class, time, exact)]), T), >(T, "12:00")
`
	doc := htmlparse.Parse(`<table>
<tr><td class="time">09:30</td></tr>
<tr><td class="time">15:45</td></tr>
<tr><td class="time">23:10</td></tr>
</table>`)
	base, err := NewEvaluator(MapFetcher{"d": doc}).Run(MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(base.Instances("late")); got != 2 {
		t.Fatalf("late = %d", got)
	}
}

func TestNegatedConceptCondition(t *testing.T) {
	src := `
tok(S, X) <- document("d", S), subtext(S, \var[Y], X)
noncur(S, X) <- tok(S, X), not isCurrency(X)
`
	doc := htmlparse.Parse(`<p>price $ 12</p>`)
	base, err := NewEvaluator(MapFetcher{"d": doc}).Run(MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range base.Instances("noncur") {
		if in.Text == "$" {
			t.Errorf("currency token %q classified as non-currency", in.Text)
		}
	}
	if len(base.Instances("noncur")) != 2 { // "price", "12"
		t.Errorf("noncur = %v", len(base.Instances("noncur")))
	}
}

func TestSubattMissingAttribute(t *testing.T) {
	src := `
link(S, X) <- document("d", S), subelem(S, ?.a, X)
href(S, X) <- link(_, S), subatt(S, href, X)
`
	doc := htmlparse.Parse(`<p><a href="u">with</a><a>without</a></p>`)
	base, err := NewEvaluator(MapFetcher{"d": doc}).Run(MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(base.Instances("href")); got != 1 {
		t.Fatalf("href = %d", got)
	}
}

// TestE8AblationLandmarks: the DESIGN.md ablation — a wrapper keyed on
// absolute positions breaks under layout perturbation, while the
// landmark-based Figure 5 wrapper survives (the robustness motivation of
// Section 1).
func TestE8AblationLandmarks(t *testing.T) {
	// Brittle wrapper: records are "the 2nd..4th table of the body",
	// approximated here as "tables immediately following the first
	// table" without landmarks: take ALL body tables as records.
	brittle := MustParse(`
record(S, X) <- document("www.ebay.com/", S), subelem(S, .body.table, X)
itemdes(S, X) <- record(_, S), subelem(S, (?.td.?.a, []), X)
`)
	robust := MustParse(ebayProgram)

	clean := htmlparse.Parse(ebayPage())
	// Perturbed page: an extra navigation TABLE before the header — the
	// kind of redesign the paper says sites do intentionally.
	var b strings.Builder
	b.WriteString(`<html><body>`)
	b.WriteString(`<table class="nav"><tr><td><a href="/">home</a></td></tr></table>`)
	b.WriteString(`<table><tr><td>item</td></tr></table>`)
	b.WriteString(`<table><tr><td><a href="i.html">Only Item</a></td><td>$ 1.00</td><td>0 bids</td></tr></table>`)
	b.WriteString(`<hr></body></html>`)
	perturbed := htmlparse.Parse(b.String())

	countDes := func(p *Program, doc *dom.Tree) int {
		base, err := NewEvaluator(MapFetcher{"www.ebay.com/": doc}).Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return len(base.Instances("itemdes"))
	}
	// On the clean page the brittle wrapper over-extracts (header table
	// has no <a>, so it happens to match 3 here) — but on the perturbed
	// page it extracts the nav link as an "item description".
	if got := countDes(brittle, perturbed); got == 1 {
		t.Fatal("expected the brittle wrapper to mis-extract under perturbation")
	}
	if got := countDes(robust, perturbed); got != 1 {
		t.Fatalf("landmark wrapper: %d itemdes on perturbed page, want exactly 1", got)
	}
	if got := countDes(robust, clean); got != 3 {
		t.Fatalf("landmark wrapper: %d itemdes on clean page, want 3", got)
	}
}

func TestTagAlternation(t *testing.T) {
	src := `
cell(S, X) <- document("d", S), subelem(S, ?.td|th, X)
`
	doc := htmlparse.Parse(`<table><tr><th>h</th><td>a</td><td>b</td></tr></table>`)
	base, err := NewEvaluator(MapFetcher{"d": doc}).Run(MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(base.Instances("cell")); got != 3 {
		t.Fatalf("cells = %d", got)
	}
}

func TestFirstSubtreeCondition(t *testing.T) {
	src := `
firstrow(S, X) <- document("d", S), subelem(S, ?.tr, X), firstsubtree(S, X)
`
	doc := htmlparse.Parse(`<table><tr><td>one</td></tr><tr><td>two</td></tr><tr><td>three</td></tr></table>`)
	base, err := NewEvaluator(MapFetcher{"d": doc}).Run(MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	rows := base.Instances("firstrow")
	if len(rows) != 1 {
		t.Fatalf("firstrow = %d", len(rows))
	}
	if got := strings.TrimSpace(rows[0].TextContent()); got != "one" {
		t.Errorf("firstrow text = %q", got)
	}
}
