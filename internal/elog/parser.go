package elog

import (
	"fmt"
	"strconv"
	"strings"
)

// SyntaxError is a positioned Elog program error: Rule is the 1-based
// index of the offending rule and Line the 1-based source line the rule
// starts on. Parse errors unwrap to the underlying cause.
type SyntaxError struct {
	Rule int
	Line int
	Err  error
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("rule %d (line %d): %v", e.Rule, e.Line, e.Err)
}

// Unwrap returns the underlying cause.
func (e *SyntaxError) Unwrap() error { return e.Err }

// Parse reads an Elog program in the concrete syntax of Figure 5:
//
//	tableseq(S, X) <- document("www.ebay.com/", S),
//	    subsq(S, (.body, []), (.table, []), (.table, []), X),
//	    before(S, X, (.table, [(elementtext, item, substr)]), 0, 0, _, _),
//	    after(S, X, .hr, 0, 0, _, _)
//	record(S, X) <- tableseq(_, S), subelem(S, .table, X)
//	...
//
// Rules are terminated by a newline at nesting depth zero (so a rule may
// wrap across lines as long as open parentheses carry it), or by an
// optional '.'. '%' starts a comment. The arrow may be '<-', '←' or
// ':-'.
//
// Errors carry source positions: every parse failure (and every
// undefined-pattern reference) is reported as a *SyntaxError naming the
// rule number and the source line the rule starts on.
func Parse(src string) (*Program, error) {
	prog := &Program{}
	srcs := splitRules(src)
	lines := make([]int, 0, len(srcs))
	for i, raw := range srcs {
		r, err := parseRule(raw.text)
		if err != nil {
			return nil, &SyntaxError{Rule: i + 1, Line: raw.line, Err: err}
		}
		prog.Rules = append(prog.Rules, r)
		lines = append(lines, raw.line)
	}
	if len(prog.Rules) == 0 {
		return nil, fmt.Errorf("elog: empty program")
	}
	if idx, err := prog.check(); err != nil {
		return nil, &SyntaxError{Rule: idx + 1, Line: lines[idx], Err: err}
	}
	return prog, nil
}

// MustParse panics on error.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// check verifies that every referenced parent pattern is defined; on
// failure it returns the index of the offending rule.
func (p *Program) check() (int, error) {
	defined := map[string]bool{"document": true}
	for _, r := range p.Rules {
		defined[r.Head] = true
	}
	for i, r := range p.Rules {
		if r.DocURL == "" && !defined[r.Parent] {
			return i, fmt.Errorf("elog: rule for %s references undefined parent pattern %s", r.Head, r.Parent)
		}
		for _, c := range r.Conds {
			if ref, ok := c.(PatternRefCond); ok && !defined[ref.Pattern] {
				return i, fmt.Errorf("elog: rule for %s references undefined pattern %s", r.Head, ref.Pattern)
			}
		}
	}
	return 0, nil
}

// ruleSrc is one rule's raw text plus the 1-based source line it starts
// on (for positioned errors).
type ruleSrc struct {
	text string
	line int
}

// splitRules splits the source into rule strings: a rule ends at a
// newline (or '.') at parenthesis depth zero, once it contains an arrow.
func splitRules(src string) []ruleSrc {
	src = strings.ReplaceAll(src, "←", "<-")
	var rules []ruleSrc
	var cur strings.Builder
	depth := 0
	hasArrow := false
	startLine := 0
	flush := func() {
		s := strings.TrimSpace(cur.String())
		s = strings.TrimSuffix(s, ".")
		if s != "" {
			rules = append(rules, ruleSrc{text: s, line: startLine})
		}
		cur.Reset()
		hasArrow = false
		startLine = 0
	}
	lines := strings.Split(src, "\n")
	for ln, line := range lines {
		if i := strings.IndexByte(line, '%'); i >= 0 {
			line = line[:i]
		}
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if cur.Len() == 0 {
			startLine = ln + 1
		}
		cur.WriteString(line)
		cur.WriteByte(' ')
		for _, c := range line {
			switch c {
			case '(', '[':
				depth++
			case ')', ']':
				depth--
			}
		}
		if strings.Contains(cur.String(), "<-") || strings.Contains(cur.String(), ":-") {
			hasArrow = true
		}
		if depth == 0 && hasArrow && !strings.HasSuffix(strings.TrimSpace(cur.String()), ",") {
			flush()
		}
	}
	flush()
	return rules
}

// atom is a raw parsed atom: a predicate name and its raw argument
// strings (top-level comma split).
type atom struct {
	name string
	args []string
}

func parseRule(src string) (*Rule, error) {
	src = strings.ReplaceAll(src, ":-", "<-")
	parts := strings.SplitN(src, "<-", 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("elog: missing arrow in %q", src)
	}
	head, err := parseAtom(parts[0])
	if err != nil {
		return nil, err
	}
	if len(head.args) != 2 {
		return nil, fmt.Errorf("elog: head %s must be binary (S, X)", head.name)
	}
	bodyAtoms, err := parseBody(parts[1])
	if err != nil {
		return nil, err
	}
	if len(bodyAtoms) == 0 {
		return nil, fmt.Errorf("elog: empty body")
	}
	r := &Rule{Head: head.name}
	// First atom: parent.
	par := bodyAtoms[0]
	switch {
	case par.name == "document":
		if len(par.args) != 2 {
			return nil, fmt.Errorf("elog: document atom needs (url, S)")
		}
		r.Parent = "document"
		r.DocURL = unquote(par.args[0])
	default:
		if len(par.args) != 2 {
			return nil, fmt.Errorf("elog: parent atom %s must be binary", par.name)
		}
		r.Parent = par.name
		if strings.TrimSpace(par.args[0]) != "_" {
			// Specialization rule: parent(S, X).
			r.Specialize = true
		}
	}
	// Remaining atoms: at most one extraction, then conditions.
	for _, a := range bodyAtoms[1:] {
		if ext, ok, err := parseExtraction(a); err != nil {
			return nil, err
		} else if ok {
			if r.Extract != nil {
				return nil, fmt.Errorf("elog: rule for %s has two extraction atoms", r.Head)
			}
			r.Extract = ext
			continue
		}
		c, err := parseCondition(a)
		if err != nil {
			return nil, err
		}
		r.Conds = append(r.Conds, c)
	}
	if r.Extract == nil && !r.Specialize {
		return nil, fmt.Errorf("elog: standard rule for %s lacks an extraction atom (make it a specialization rule with %s(S, X))", r.Head, r.Parent)
	}
	return r, nil
}

// parseBody splits the rule body into atoms at top-level commas, then
// parses each.
func parseBody(src string) ([]atom, error) {
	var atoms []atom
	for _, raw := range splitTop(src, ',') {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		a, err := parseAtom(raw)
		if err != nil {
			return nil, err
		}
		atoms = append(atoms, a)
	}
	return atoms, nil
}

func parseAtom(src string) (atom, error) {
	s := strings.TrimSpace(src)
	neg := false
	if rest, ok := strings.CutPrefix(s, "not "); ok {
		neg = true
		s = strings.TrimSpace(rest)
	}
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return atom{}, fmt.Errorf("elog: malformed atom %q", src)
	}
	name := strings.TrimSpace(s[:open])
	if name == "" {
		return atom{}, fmt.Errorf("elog: atom without predicate name: %q", src)
	}
	inner := s[open+1 : len(s)-1]
	var args []string
	for _, a := range splitTop(inner, ',') {
		args = append(args, strings.TrimSpace(a))
	}
	if neg {
		name = "not" + name
	}
	return atom{name: name, args: args}, nil
}

func unquote(s string) string {
	s = strings.TrimSpace(s)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		if u, err := strconv.Unquote(s); err == nil {
			return u
		}
		return s[1 : len(s)-1]
	}
	return s
}

func isVar(s string) bool {
	s = strings.TrimSpace(s)
	if s == "" || s == "_" {
		return false
	}
	c := s[0]
	if !(c >= 'A' && c <= 'Z') {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !(s[i] >= 'a' && s[i] <= 'z' || s[i] >= 'A' && s[i] <= 'Z' || s[i] >= '0' && s[i] <= '9' || s[i] == '_') {
			return false
		}
	}
	return true
}

func varOrBlank(s string) string {
	s = strings.TrimSpace(s)
	if s == "_" {
		return ""
	}
	return s
}

// parseExtraction recognizes the extraction atoms; ok=false when the
// atom is not an extraction atom.
func parseExtraction(a atom) (*Extract, bool, error) {
	switch a.name {
	case "subelem":
		if len(a.args) != 3 {
			return nil, true, fmt.Errorf("elog: subelem needs (S, epd, X), got %d args", len(a.args))
		}
		epd, err := ParseEPD(a.args[1])
		if err != nil {
			return nil, true, err
		}
		return &Extract{Kind: Subelem, EPD: epd}, true, nil
	case "subsq":
		if len(a.args) != 5 {
			return nil, true, fmt.Errorf("elog: subsq needs (S, from, start, end, X), got %d args", len(a.args))
		}
		from, err := ParseEPD(a.args[1])
		if err != nil {
			return nil, true, err
		}
		start, err := ParseEPD(a.args[2])
		if err != nil {
			return nil, true, err
		}
		end, err := ParseEPD(a.args[3])
		if err != nil {
			return nil, true, err
		}
		return &Extract{Kind: Subsq, From: from, Start: start, End: end}, true, nil
	case "subtext":
		if len(a.args) != 3 {
			return nil, true, fmt.Errorf("elog: subtext needs (S, spd, X)")
		}
		spd, err := ParseSPD(a.args[1])
		if err != nil {
			return nil, true, err
		}
		return &Extract{Kind: Subtext, SPD: spd}, true, nil
	case "subatt":
		if len(a.args) != 3 {
			return nil, true, fmt.Errorf("elog: subatt needs (S, attr, X)")
		}
		return &Extract{Kind: Subatt, Attr: unquote(a.args[1])}, true, nil
	case "getDocument", "getdocument":
		if len(a.args) != 2 {
			return nil, true, fmt.Errorf("elog: getDocument needs (S, X)")
		}
		return &Extract{Kind: GetDocument}, true, nil
	}
	return nil, false, nil
}

// comparison operator predicate names.
var compareOps = map[string]string{
	"<": "<", "<=": "<=", ">": ">", ">=": ">=", "=": "=", "!=": "!=",
	"lt": "<", "le": "<=", "gt": ">", "ge": ">=", "eq": "=", "neq": "!=",
}

func parseCondition(a atom) (Cond, error) {
	name := a.name
	neg := false
	if rest, ok := strings.CutPrefix(name, "not"); ok && rest != "" && name != "notbefore" && name != "notafter" && name != "notcontains" {
		// "not isCurrency" style negation was folded into the name by
		// parseAtom ("notisCurrency"); undo it for concept conditions.
		name = rest
		neg = true
	}
	switch name {
	case "before", "after", "notbefore", "notafter":
		base := strings.TrimPrefix(name, "not")
		if len(a.args) != 7 {
			return nil, fmt.Errorf("elog: %s needs (S, X, epd, dmin, dmax, Y, D), got %d args", name, len(a.args))
		}
		epd, err := ParseEPD(a.args[2])
		if err != nil {
			return nil, err
		}
		dmin, err1 := strconv.Atoi(strings.TrimSpace(a.args[3]))
		dmax, err2 := strconv.Atoi(strings.TrimSpace(a.args[4]))
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("elog: %s distance bounds must be integers", name)
		}
		return BeforeCond{
			EPD: epd, DMin: dmin, DMax: dmax,
			Var: varOrBlank(a.args[5]), DistVar: varOrBlank(a.args[6]),
			Negated: strings.HasPrefix(name, "not"),
			After:   base == "after",
		}, nil
	case "contains", "notcontains":
		if len(a.args) != 3 {
			return nil, fmt.Errorf("elog: %s needs (X, epd, Y)", name)
		}
		epd, err := ParseEPD(a.args[1])
		if err != nil {
			return nil, err
		}
		return ContainsCond{EPD: epd, Var: varOrBlank(a.args[2]), Negated: name == "notcontains"}, nil
	}
	if name == "firstsubtree" {
		if len(a.args) != 2 {
			return nil, fmt.Errorf("elog: firstsubtree needs (S, X)")
		}
		return FirstCond{}, nil
	}
	if op, ok := compareOps[name]; ok {
		if len(a.args) != 2 {
			return nil, fmt.Errorf("elog: comparison %s needs two arguments", name)
		}
		return CompareCond{Op: op, L: parseOperand(a.args[0]), R: parseOperand(a.args[1])}, nil
	}
	// Concept condition: is... with one variable argument.
	if strings.HasPrefix(name, "is") && len(a.args) == 1 && isVar(a.args[0]) {
		return ConceptCond{Concept: name, Var: a.args[0], Negated: neg}, nil
	}
	// Pattern reference: pattern(_, Y).
	if len(a.args) == 2 && strings.TrimSpace(a.args[0]) == "_" && isVar(a.args[1]) {
		return PatternRefCond{Pattern: name, Var: a.args[1], Negated: neg}, nil
	}
	return nil, fmt.Errorf("elog: unrecognized condition atom %s/%d", a.name, len(a.args))
}

func parseOperand(s string) Operand {
	s = strings.TrimSpace(s)
	if isVar(s) {
		return Operand{Var: s}
	}
	return Operand{Literal: unquote(s)}
}
