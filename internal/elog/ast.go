// Package elog implements the Elog wrapper language of Section 3.3: the
// internal, datalog-like language into which the Lixto Visual Wrapper
// compiles visually specified wrappers.
//
// A standard Elog rule has the form
//
//	New(S, X) ← Par(_, S), Ex(S, X), Φ(S, X)
//
// with binary pattern predicates (parent instance, instance), an
// extraction definition atom Ex (tree extraction via subelem/subsq with
// element path definitions, string extraction via subtext/subatt with
// string path definitions), and a possibly empty set of condition atoms
// Φ: context conditions (before/after with distance tolerances, and
// their negations), internal conditions (contains/notcontains), concept
// conditions (isCurrency(X), isDate(X), ...), comparison conditions, and
// pattern references. Specialization rules (footnote 6) lack the
// extraction atom and match a subset of the parent pattern's nodes.
// document(url, S) atoms root wrapping at fetched pages, and the
// getDocument extraction atom follows extracted URLs, enabling Web
// crawling and recursive wrapping.
package elog

import (
	"fmt"
	"strings"
)

// Program is a parsed Elog program.
type Program struct {
	Rules []*Rule
}

// Patterns returns the pattern names defined by the program, in first-
// definition order.
func (p *Program) Patterns() []string {
	var out []string
	seen := map[string]bool{}
	for _, r := range p.Rules {
		if !seen[r.Head] {
			seen[r.Head] = true
			out = append(out, r.Head)
		}
	}
	return out
}

func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Rule is one Elog rule.
type Rule struct {
	// Head is the defined pattern name; the head atom is Head(S, X).
	Head string
	// Parent is the parent pattern name, or "document" for entry rules.
	Parent string
	// DocURL is set for document(url, S) parents (entry points).
	DocURL string
	// Specialize marks specialization rules: Head(S, X) ← Parent(S, X),
	// conditions — no extraction atom, the instance is the parent's.
	Specialize bool
	// Extract is the extraction definition atom (nil for specialization
	// rules).
	Extract *Extract
	// Conds are the condition atoms, evaluated left to right with
	// backtracking over the bindings introduced by before/after/
	// contains.
	Conds []Cond
}

func (r *Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(S, X) <- ", r.Head)
	if r.DocURL != "" {
		fmt.Fprintf(&b, "document(%q, S)", r.DocURL)
	} else if r.Specialize {
		fmt.Fprintf(&b, "%s(S, X)", r.Parent)
	} else {
		fmt.Fprintf(&b, "%s(_, S)", r.Parent)
	}
	if r.Extract != nil {
		b.WriteString(", ")
		b.WriteString(r.Extract.String())
	}
	for _, c := range r.Conds {
		b.WriteString(", ")
		b.WriteString(c.String())
	}
	return b.String()
}

// ExtractKind enumerates the extraction mechanisms.
type ExtractKind int

const (
	// Subelem extracts tree nodes matched by an element path definition.
	Subelem ExtractKind = iota
	// Subsq extracts sequences of consecutive children delimited by
	// start/end element path definitions.
	Subsq
	// Subtext extracts strings matched by a string path definition
	// (regular expression, possibly with \var bindings).
	Subtext
	// Subatt extracts an attribute value of the parent instance node.
	Subatt
	// GetDocument fetches the document whose URL is the parent
	// instance's text and yields its root — the crawling primitive.
	GetDocument
)

// Extract is an extraction definition atom.
type Extract struct {
	Kind ExtractKind
	// EPD is the element path definition (Subelem).
	EPD *EPD
	// From/Start/End are the subsq path definitions.
	From, Start, End *EPD
	// SPD is the string path definition (Subtext).
	SPD *SPD
	// Attr is the attribute name (Subatt).
	Attr string
}

func (e *Extract) String() string {
	switch e.Kind {
	case Subelem:
		return fmt.Sprintf("subelem(S, %s, X)", e.EPD)
	case Subsq:
		return fmt.Sprintf("subsq(S, %s, %s, %s, X)", e.From, e.Start, e.End)
	case Subtext:
		return fmt.Sprintf("subtext(S, %s, X)", e.SPD)
	case Subatt:
		return fmt.Sprintf("subatt(S, %s, X)", e.Attr)
	case GetDocument:
		return "getDocument(S, X)"
	}
	return "?"
}

// Cond is a condition atom.
type Cond interface {
	fmt.Stringer
	isCond()
}

// BeforeCond / AfterCond are the context conditions: an element matching
// EPD must (or, negated, must not) occur before/after the target
// instance within the parent instance, with the tree-distance within
// [DMin, DMax]. Var, when non-empty, is bound to the matched element
// (for pattern references and further conditions); DistVar, when
// non-empty, is bound to the observed distance.
type BeforeCond struct {
	EPD        *EPD
	DMin, DMax int
	Var        string
	DistVar    string
	Negated    bool
	After      bool
}

func (c BeforeCond) isCond() {}
func (c BeforeCond) String() string {
	name := "before"
	if c.After {
		name = "after"
	}
	if c.Negated {
		name = "not" + name
	}
	v, d := c.Var, c.DistVar
	if v == "" {
		v = "_"
	}
	if d == "" {
		d = "_"
	}
	return fmt.Sprintf("%s(S, X, %s, %d, %d, %s, %s)", name, c.EPD, c.DMin, c.DMax, v, d)
}

// ContainsCond is the internal condition: the target instance must (not)
// contain a subtree matching EPD. Var binds the matched node.
type ContainsCond struct {
	EPD     *EPD
	Var     string
	Negated bool
}

func (c ContainsCond) isCond() {}
func (c ContainsCond) String() string {
	name := "contains"
	if c.Negated {
		name = "notcontains"
	}
	v := c.Var
	if v == "" {
		v = "_"
	}
	return fmt.Sprintf("%s(X, %s, %s)", name, c.EPD, v)
}

// ConceptCond applies a semantic or syntactic concept to a bound
// variable's text, e.g. isCurrency(Y).
type ConceptCond struct {
	Concept string
	Var     string
	Negated bool
}

func (c ConceptCond) isCond() {}
func (c ConceptCond) String() string {
	if c.Negated {
		return fmt.Sprintf("not %s(%s)", c.Concept, c.Var)
	}
	return fmt.Sprintf("%s(%s)", c.Concept, c.Var)
}

// CompareCond compares two operands (bound variables or literals) with
// the concept-aware ordering (dates chronologically, numbers
// numerically).
type CompareCond struct {
	Op   string
	L, R Operand
}

func (c CompareCond) isCond() {}
func (c CompareCond) String() string {
	return fmt.Sprintf("%s(%s, %s)", c.Op, c.L, c.R)
}

// Operand is a variable reference or a literal string.
type Operand struct {
	Var     string
	Literal string
}

func (o Operand) String() string {
	if o.Var != "" {
		return o.Var
	}
	return fmt.Sprintf("%q", o.Literal)
}

// FirstCond is the internal condition the paper describes as checking
// "whether a node is the first among those matching a path"
// (Section 3.3): of all candidates the rule's extraction produced within
// one parent instance, only the one earliest in document order survives.
type FirstCond struct{}

func (c FirstCond) isCond()        {}
func (c FirstCond) String() string { return "firstsubtree(S, X)" }

// PatternRefCond requires the bound variable to be an instance of
// another pattern: e.g. price(_, Y).
type PatternRefCond struct {
	Pattern string
	Var     string
	Negated bool
}

func (c PatternRefCond) isCond() {}
func (c PatternRefCond) String() string {
	if c.Negated {
		return fmt.Sprintf("not %s(_, %s)", c.Pattern, c.Var)
	}
	return fmt.Sprintf("%s(_, %s)", c.Pattern, c.Var)
}
