package elog

import (
	"testing"

	"repro/internal/dom"
	"repro/internal/htmlparse"
)

// fuzzTree is a fixed, warmed document the EPD fuzzer matches against,
// so every parsed path is also executed — interpreted and compiled —
// and the two matchers are cross-checked on arbitrary inputs.
var fuzzTree = func() *dom.Tree {
	t := htmlparse.Parse(`<html><body>
<table class="books"><tr class="book"><td class="title">A</td><td class="price">$ 1.00</td></tr>
<tr><td><a href="x">link</a></td></tr></table>
<div id="d"><span>text</span><!-- c --><p>more <b>bold</b></p></div>
<hr><ul><li>one<li>two</ul>
</body></html>`)
	t.Warm()
	return t
}()

// FuzzParseEPD is the native fuzz target for element path definitions:
// ParseEPD must never panic; on accepted inputs the textual form must
// re-parse, and the compiled bitset matcher must select exactly the
// same nodes as the interpreted matcher.
//
// Run with `go test -fuzz=FuzzParseEPD ./internal/elog`; without -fuzz
// the seed corpus doubles as a regression test.
func FuzzParseEPD(f *testing.F) {
	seeds := []string{
		".body",
		"?.td",
		".*",
		"?",
		".content",
		".table.tr.td",
		"?.td.?.a",
		".td|th",
		"(?.td, [(elementtext, \\var[Y].*, regvar)])",
		"(.table, [(elementtext, item, substr)])",
		"(?.a, [(class, next, exact), (href, ., regexp)])",
		"(.div, [id, d, exact])",
		"( , )",
		".",
		"?..",
		"(?.td, [(elementtext, [bad(regexp, regvar)])",
		"....",
		".#text",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 512 {
			return // bound regexp compilation work
		}
		e, err := ParseEPD(src)
		if err != nil {
			return
		}
		if len(e.Steps) == 0 {
			t.Fatalf("ParseEPD(%q) accepted a path with no steps", src)
		}
		if _, err := ParseEPD(e.String()); err != nil {
			t.Fatalf("round trip of %q failed: %v", src, err)
		}
		roots := []dom.NodeID{fuzzTree.Root()}
		interp := e.Match(fuzzTree, roots, false)
		compiled := bitsetMatch(e, fuzzTree, roots, false)
		if got, want := nodeSet(compiled), nodeSet(interp); got != want {
			t.Fatalf("path %q: compiled matched %s, interpreter matched %s", src, got, want)
		}
	})
}

// nodeSet renders matches as a canonical sorted id set.
func nodeSet(ms []epdMatch) string {
	present := map[dom.NodeID]bool{}
	for _, m := range ms {
		present[m.node] = true
	}
	out := make([]byte, fuzzTree.Size())
	for i := range out {
		if present[dom.NodeID(i)] {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}

// FuzzParseProgram fuzzes the full Elog program parser: Parse must
// never panic, and accepted programs must re-parse from their textual
// form, stratify deterministically, and compile.
func FuzzParseProgram(f *testing.F) {
	seeds := []string{
		`p(S, X) <- document("u", S), subelem(S, .body, X)`,
		`p(S, X) <- document("u", S), subelem(S, .body, X)
q(S, X) <- p(_, S), subelem(S, ?.td, X), before(S, X, .hr, 0, 2, Y, D), isCurrency(Y)`,
		`p(S, X) <- document("u", S), subsq(S, (.body, []), (.table, []), (.hr, []), X)
q(S, X) <- p(_, S), subtext(S, \var[Y].*, X), not q2(_, Y)
q2(S, X) <- p(_, S), subatt(S, href, X)`,
		`a(S, X) <- document("u", S), getDocument(S, X)`,
		`p(S, X) <- p(_, S), subelem(S, .b, X)`,
		`p(S, X) <- document("u", S), subelem(S, .b, X), not p(_, X)`,
		"p(S,X) <- q(S,X)\n",
		"% comment only",
		"p(S, X) <- document(\"u\", S), subelem(S, .body, X), >=(X, \"10\")",
		"broken <- <- (",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 2048 {
			return
		}
		p, err := Parse(src)
		if err != nil {
			return
		}
		if _, err := Parse(p.String()); err != nil {
			t.Fatalf("round trip failed: %v\nprogram:\n%s", err, p)
		}
		strata1, err1 := Stratify(p)
		strata2, err2 := Stratify(p)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("Stratify not deterministic: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if len(strata1) != len(strata2) {
			t.Fatalf("Stratify heights differ: %d vs %d", len(strata1), len(strata2))
		}
		cp, err := Compile(p)
		if err != nil {
			t.Fatalf("Stratify accepted but Compile rejected: %v", err)
		}
		if cp.Program != p {
			t.Fatal("Compile lost the program")
		}
	})
}
