package elog_test

// Differential and concurrency tests for the compiled Elog execution
// path: elog.Compile must produce exactly the pattern instance bases
// and XML documents of the seed interpreter (Evaluator.Run) on every
// wrapper the examples/ directory exercises, and the concurrent crawl
// frontier must keep that output deterministic under -race.

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dom"
	"repro/internal/elog"
	"repro/internal/htmlparse"
	"repro/internal/pib"
	"repro/internal/visual"
	"repro/internal/web"
)

// exampleWrappers mirrors the Elog programs run by the commands under
// examples/ (quickstart, ebay with crawling, flightinfo, pressclipping,
// nowplaying radio/chart/lyrics): each entry builds the simulated web
// the example wraps and returns the program source.
var exampleWrappers = []struct {
	name string
	prog string
	site func() *web.Web
}{
	{
		name: "quickstart",
		prog: `
page(S, X)  <- document("shop", S), subelem(S, .body, X)
book(S, X)  <- page(_, S), subelem(S, (?.tr, [(class, book, exact)]), X)
title(S, X) <- book(_, S), subelem(S, (?.td, [(class, title, exact)]), X)
price(S, X) <- book(_, S), subelem(S, (?.td, [(class, price, exact)]), X)
`,
		site: func() *web.Web {
			w := web.New()
			w.SetStatic("shop", `<html><body><h1>Staff picks</h1><table class="books">
<tr class="book"><td class="title">Foundations of Databases</td><td class="price">$ 54.00</td></tr>
<tr class="book"><td class="title">Monadic Datalog and Web Information Extraction</td><td class="price">$ 12.00</td></tr>
<tr class="book"><td class="title">The Complexity of XPath</td><td class="price">$ 9.50</td></tr>
</table></body></html>`)
			return w
		},
	},
	{
		name: "ebay-crawl",
		prog: `
tableseq(S, X) <- document("www.ebay.com/", S),
    subsq(S, (.body, []), (.table, []), (.table, []), X),
    before(S, X, (.table, [(elementtext, item, substr)]), 0, 0, _, _),
    after(S, X, .hr, 0, 0, _, _)
record(S, X) <- tableseq(_, S), subelem(S, .table, X)
itemdes(S, X) <- record(_, S), subelem(S, (?.td.?.a, []), X)
price(S, X) <- record(_, S), subelem(S, (?.td, [(elementtext, \var[Y].*, regvar)]), X), isCurrency(Y)
bids(S, X) <- record(_, S), subelem(S, ?.td, X), before(S, X, ?.td, 0, 30, Y, _), price(_, Y)
currency(S, X) <- price(_, S), subtext(S, \var[Y], X), isCurrency(Y)
nextlink(S, X) <- document("www.ebay.com/", S), subelem(S, (?.a, [(class, next, exact)]), X)
nexturl(S, X) <- nextlink(_, S), subatt(S, href, X)
nextpage(S, X) <- nexturl(_, S), getDocument(S, X)
tableseq2(S, X) <- nextpage(_, S),
    subsq(S, (.body, []), (.table, []), (.table, []), X),
    before(S, X, (.table, [(elementtext, item, substr)]), 0, 0, _, _),
    after(S, X, .hr, 0, 0, _, _)
record(S, X) <- tableseq2(_, S), subelem(S, .table, X)
`,
		site: func() *web.Web {
			w := web.New()
			web.NewAuctionSite(2004, 40).Register(w, "www.ebay.com") // two pages of 25 + 15
			return w
		},
	},
	{
		name: "flightinfo",
		prog: `
page(S, X) <- document("airport.example.com/departures.html", S), subelem(S, .body, X)
flight(S, X) <- page(_, S), subelem(S, (?.tr, [(class, flight, exact)]), X)
number(S, X) <- flight(_, S), subelem(S, (?.td, [(class, no, exact)]), X)
from(S, X) <- flight(_, S), subelem(S, (?.td, [(class, from, exact)]), X)
to(S, X) <- flight(_, S), subelem(S, (?.td, [(class, to, exact)]), X)
time(S, X) <- flight(_, S), subelem(S, (?.td, [(class, time, exact)]), X)
status(S, X) <- flight(_, S), subelem(S, (?.td, [(class, status, exact)]), X)
`,
		site: func() *web.Web {
			w := web.New()
			web.NewFlightSite(2004, 30).Register(w, "airport.example.com")
			return w
		},
	},
	{
		name: "pressclipping",
		prog: `
page(S, X) <- document("press.example.com/news.html", S), subelem(S, .body, X)
article(S, X) <- page(_, S), subelem(S, (?.div, [(class, article, exact)]), X)
headline(S, X) <- article(_, S), subelem(S, (?.h2, [(class, headline, exact)]), X)
date(S, X) <- article(_, S), subelem(S, (?.span, [(class, date, exact)]), X)
ticker(S, X) <- article(_, S), subelem(S, (?.span, [(class, ticker, exact)]), X)
body(S, X) <- article(_, S), subelem(S, (?.p, [(class, body, exact)]), X)
`,
		site: func() *web.Web {
			w := web.New()
			web.NewNewsSite("press", 2004, 5).Register(w, "press.example.com")
			return w
		},
	},
	{
		name: "nowplaying-chart",
		prog: `
page(S, X) <- document("top40.example.com/top.html", S), subelem(S, .body, X)
entry(S, X) <- page(_, S), subelem(S, ?.tr, X), contains(X, (?.td, [(class, rank, exact)]), _)
rank(S, X) <- entry(_, S), subelem(S, (?.td, [(class, rank, exact)]), X)
song(S, X) <- entry(_, S), subelem(S, (?.td, [(class, song, exact)]), X)
artist(S, X) <- entry(_, S), subelem(S, (?.td, [(class, artist, exact)]), X)
`,
		site: func() *web.Web {
			w := web.New()
			web.NewChartSite("top40", web.SongPool(2004, 40), 2005, 10).Register(w, "top40.example.com")
			return w
		},
	},
	{
		name: "nowplaying-lyrics-crawl",
		prog: `
index(S, X) <- document("lyrics.example.com/index.html", S), subelem(S, .body, X)
link(S, X) <- index(_, S), subelem(S, ?.a, X)
url(S, X) <- link(_, S), subatt(S, href, X)
songpage(S, X) <- url(_, S), getDocument(S, X)
song(S, X) <- songpage(_, S), subelem(S, (?.h1, [(class, song, exact)]), X)
lyrics(S, X) <- songpage(_, S), subelem(S, (?.pre, [(class, lyrics, exact)]), X)
`,
		site: func() *web.Web {
			w := web.New()
			ls := &web.LyricsSite{Pool: web.SongPool(2004, 12)}
			ls.Register(w, "lyrics.example.com")
			return w
		},
	},
}

// baseSummary renders a pattern instance base into a canonical string:
// every pattern with every instance's kind, URL, nodes, and text. Two
// equal summaries mean the extracted instance sets are identical.
func baseSummary(b *pib.Base) string {
	var sb strings.Builder
	for _, pat := range b.Patterns() {
		fmt.Fprintf(&sb, "%s (%d):\n", pat, len(b.Instances(pat)))
		lines := make([]string, 0, len(b.Instances(pat)))
		for _, in := range b.Instances(pat) {
			lines = append(lines, fmt.Sprintf("  k%d %s %v %q", in.Kind, in.URL, in.Nodes, in.Text))
		}
		// Insertion order may differ between interpreted and compiled
		// matching (discovery order vs document order); the instance
		// sets must not.
		sortStrings(lines)
		for _, l := range lines {
			sb.WriteString(l + "\n")
		}
	}
	return sb.String()
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// wrapBoth runs the program interpreted and compiled over fresh copies
// of the same site and returns both bases plus both XML documents.
func wrapBoth(t *testing.T, prog string, site func() *web.Web) (xmlI, xmlC, sumI, sumC string) {
	t.Helper()
	p := elog.MustParse(prog)
	design := &pib.Design{Auxiliary: map[string]bool{"document": true}}

	baseI, err := elog.NewEvaluator(site()).Run(p)
	if err != nil {
		t.Fatalf("interpreted run: %v", err)
	}
	cp, err := elog.Compile(p)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	baseC, err := elog.NewEvaluator(site()).RunCompiled(cp)
	if err != nil {
		t.Fatalf("compiled run: %v", err)
	}
	return design.TransformString(baseI), design.TransformString(baseC),
		baseSummary(baseI), baseSummary(baseC)
}

// TestCompiledDifferentialExamples pins compiled execution against the
// seed interpreter on every wrapper the examples/ commands run.
func TestCompiledDifferentialExamples(t *testing.T) {
	for _, tc := range exampleWrappers {
		t.Run(tc.name, func(t *testing.T) {
			xmlI, xmlC, sumI, sumC := wrapBoth(t, tc.prog, tc.site)
			if sumI != sumC {
				t.Errorf("instance bases differ:\n--- interpreted ---\n%s--- compiled ---\n%s", sumI, sumC)
			}
			if xmlI != xmlC {
				t.Errorf("XML output differs:\n--- interpreted ---\n%s\n--- compiled ---\n%s", xmlI, xmlC)
			}
			if !strings.Contains(sumI, "(") || len(sumI) < 10 {
				t.Fatalf("suspiciously empty extraction:\n%s", sumI)
			}
		})
	}
}

// TestCompiledDifferentialVisualBuilder runs the visually generated
// wrapper of examples/visualbuilder through both paths.
func TestCompiledDifferentialVisualBuilder(t *testing.T) {
	sim := web.New()
	site := web.NewBookSite(2004, 8)
	site.Register(sim, "books.example.com")
	doc, err := sim.Fetch("books.example.com/bestsellers.html")
	if err != nil {
		t.Fatal(err)
	}
	s := visual.NewSession(doc, "books.example.com/bestsellers.html")
	if err := s.AddDocumentPattern("page"); err != nil {
		t.Fatal(err)
	}
	region, ok := s.FindText(site.Books[0].Title)
	if !ok {
		t.Fatal("example title not on page")
	}
	if _, err := s.AddPattern("title", "page", region); err != nil {
		t.Fatal(err)
	}
	if err := s.GeneralizePath("title", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.RequireAttribute("title", "class", "title", "exact"); err != nil {
		t.Fatal(err)
	}

	heldOut := func() *web.Web {
		w := web.New()
		web.NewBookSite(4071, 20).Register(w, "books.example.com")
		return w
	}
	baseI, err := elog.NewEvaluator(heldOut()).Run(s.Program())
	if err != nil {
		t.Fatal(err)
	}
	baseC, err := elog.NewEvaluator(heldOut()).RunCompiled(elog.MustCompile(s.Program()))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := baseSummary(baseC), baseSummary(baseI); got != want {
		t.Errorf("instance bases differ:\n--- interpreted ---\n%s--- compiled ---\n%s", want, got)
	}
	if n := len(baseI.Instances("title")); n != 20 {
		t.Fatalf("interpreted titles = %d, want 20", n)
	}
}

// TestCompiledFingerprintCache re-wraps an unchanged page through one
// CompiledProgram: the second run must be answered from the
// fingerprint-keyed match caches and produce identical output.
func TestCompiledFingerprintCache(t *testing.T) {
	tc := exampleWrappers[1] // ebay-crawl
	p := elog.MustParse(tc.prog)
	cp := elog.MustCompile(p)
	sim := tc.site()

	base1, err := elog.NewEvaluator(sim).RunCompiled(cp)
	if err != nil {
		t.Fatal(err)
	}
	_, misses1 := cp.Stats()
	if misses1 == 0 {
		t.Fatal("first run recorded no cache misses")
	}
	base2, err := elog.NewEvaluator(sim).RunCompiled(cp)
	if err != nil {
		t.Fatal(err)
	}
	hits2, misses2 := cp.Stats()
	if misses2 != misses1 {
		t.Errorf("second run over unchanged pages recorded %d new misses", misses2-misses1)
	}
	if hits2 == 0 {
		t.Error("second run hit the match cache 0 times")
	}
	if a, b := baseSummary(base1), baseSummary(base2); a != b {
		t.Errorf("cached run changed the output:\n%s\nvs\n%s", a, b)
	}
}

// TestConcurrentRunStress runs many evaluations in parallel over one
// simulated web and one shared CompiledProgram — the server's
// many-pipelines usage — and checks every run produces the reference
// output. Run with -race (CI does).
func TestConcurrentRunStress(t *testing.T) {
	tc := exampleWrappers[1] // ebay-crawl: exercises subsq, regvar, getDocument
	p := elog.MustParse(tc.prog)
	cp := elog.MustCompile(p)
	sim := tc.site()
	sim.SetLatency(200 * time.Microsecond)

	ref, err := elog.NewEvaluator(sim).RunCompiled(cp)
	if err != nil {
		t.Fatal(err)
	}
	want := baseSummary(ref)

	const goroutines = 8
	const runsEach = 3
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*runsEach)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < runsEach; i++ {
				var base *pib.Base
				var err error
				if i%2 == 0 {
					base, err = elog.NewEvaluator(sim).RunCompiled(cp)
				} else {
					base, err = elog.NewEvaluator(sim).Run(p)
				}
				if err != nil {
					errs <- fmt.Errorf("goroutine %d run %d: %v", g, i, err)
					return
				}
				if got := baseSummary(base); got != want {
					errs <- fmt.Errorf("goroutine %d run %d: output diverged", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestFrontierFetchesConcurrently uses the simulated web's latency to
// observe the parallel crawl frontier: an index page linking to six
// subpages costs at least 7×latency serially, and the frontier must
// beat that while producing output identical to a serial crawl.
func TestFrontierFetchesConcurrently(t *testing.T) {
	// The latency is simulated with time.Sleep, so the fetches overlap
	// even on GOMAXPROCS=1 — no CPU-count skip needed.
	const pages = 6
	const latency = 30 * time.Millisecond
	prog := `
index(S, X) <- document("crawl.example.com/index.html", S), subelem(S, .body, X)
link(S, X) <- index(_, S), subelem(S, ?.a, X)
url(S, X) <- link(_, S), subatt(S, href, X)
page(S, X) <- url(_, S), getDocument(S, X)
title(S, X) <- page(_, S), subelem(S, ?.h1, X)
`
	site := func() *web.Web {
		w := web.New()
		var idx strings.Builder
		idx.WriteString("<html><body>")
		for i := 0; i < pages; i++ {
			// Relative hrefs: resolveURL resolves them against the
			// index page's path-style URL.
			fmt.Fprintf(&idx, `<a href="page%d.html">p%d</a>`, i, i)
			w.SetStatic(fmt.Sprintf("crawl.example.com/page%d.html", i),
				fmt.Sprintf("<html><body><h1>page %d</h1></body></html>", i))
		}
		idx.WriteString("</body></html>")
		w.SetStatic("crawl.example.com/index.html", idx.String())
		return w
	}
	p := elog.MustParse(prog)

	// Serial reference: one fetch at a time.
	serialWeb := site()
	serialWeb.SetLatency(latency)
	evSerial := elog.NewEvaluator(serialWeb)
	evSerial.MaxConcurrency = 1
	baseSerial, err := evSerial.Run(p)
	if err != nil {
		t.Fatal(err)
	}

	parallelWeb := site()
	parallelWeb.SetLatency(latency)
	ev := elog.NewEvaluator(parallelWeb)
	ev.MaxConcurrency = pages + 2
	start := time.Now()
	base, err := ev.Run(p)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := baseSummary(base), baseSummary(baseSerial); got != want {
		t.Errorf("parallel crawl changed the output:\n%s\nvs serial:\n%s", got, want)
	}
	if n := len(base.Instances("title")); n != pages {
		t.Fatalf("crawled %d titles, want %d", n, pages)
	}
	// Serial lower bound is (pages+1)×latency = 210ms; the frontier
	// needs one latency for the index plus one for the batched subpage
	// wave. The generous bound keeps slow CI machines green while still
	// distinguishing parallel from serial.
	if serialMin := time.Duration(pages+1) * latency; elapsed >= serialMin*2/3 {
		t.Errorf("crawl of %d pages with %v latency took %v, want well under the serial %v",
			pages+1, latency, elapsed, serialMin)
	}
}

// TestSharedTreeUnderConcurrentFrontier maps several document URLs to
// one shared unwarmed tree (the core.Wrapper.WrapHTML shape): frontier
// workers then warm the same tree concurrently, which must be safe.
// Run with -race (CI does).
func TestSharedTreeUnderConcurrentFrontier(t *testing.T) {
	prog := elog.MustParse(`
a(S, X) <- document("u1", S), subelem(S, .body, X)
b(S, X) <- document("u2", S), subelem(S, .body, X)
c(S, X) <- document("u3", S), subelem(S, .body, X)
`)
	for i := 0; i < 20; i++ {
		shared := htmlparse.Parse(`<html><body><p>shared</p></body></html>`)
		fetch := elog.MapFetcher{"u1": shared, "u2": shared, "u3": shared}
		ev := elog.NewEvaluator(fetch)
		ev.MaxConcurrency = 4
		base, err := ev.RunCompiled(elog.MustCompile(prog))
		if err != nil {
			t.Fatal(err)
		}
		for _, pat := range []string{"a", "b", "c"} {
			if n := len(base.Instances(pat)); n != 1 {
				t.Fatalf("iteration %d: %s extracted %d instances, want 1", i, pat, n)
			}
		}
	}
}

// TestPrefetchHonorsCrawlLimit pins the frontier's speculative budget:
// a crawl aborted at MaxDocuments must not have fetched pages beyond
// the limit behind the evaluator's back.
func TestPrefetchHonorsCrawlLimit(t *testing.T) {
	const links = 10
	const limit = 4
	sim := web.New()
	var idx strings.Builder
	idx.WriteString("<html><body>")
	for i := 0; i < links; i++ {
		fmt.Fprintf(&idx, `<a href="p%d.html">p</a>`, i)
		sim.SetStatic(fmt.Sprintf("crawl.example.com/p%d.html", i), "<html><body><h1>p</h1></body></html>")
	}
	idx.WriteString("</body></html>")
	sim.SetStatic("crawl.example.com/index.html", idx.String())

	var fetches atomic.Int64
	counting := elog.FetcherFunc(func(url string) (*dom.Tree, error) {
		fetches.Add(1)
		return sim.Fetch(url)
	})
	prog := elog.MustParse(`
index(S, X) <- document("crawl.example.com/index.html", S), subelem(S, .body, X)
link(S, X) <- index(_, S), subelem(S, ?.a, X)
url(S, X) <- link(_, S), subatt(S, href, X)
page(S, X) <- url(_, S), getDocument(S, X)
`)
	ev := elog.NewEvaluator(counting)
	ev.MaxDocuments = limit
	ev.MaxConcurrency = links + 2
	if _, err := ev.Run(prog); err == nil || !strings.Contains(err.Error(), "crawl limit") {
		t.Fatalf("expected crawl-limit error, got %v", err)
	}
	if got := fetches.Load(); got > limit {
		t.Errorf("run fetched %d pages with MaxDocuments=%d", got, limit)
	}
}

// TestTransientFetchFailureRetried pins the frontier's error handling:
// failures are not cached for the run, so a page whose fetch fails
// transiently (one-off timeout) is re-attempted when a rule consumes
// it — the seed interpreter's attempt-per-consumption semantics.
func TestTransientFetchFailureRetried(t *testing.T) {
	const target = "crawl.example.com/page.html"
	sim := web.New()
	sim.SetStatic("crawl.example.com/index.html",
		`<html><body><a href="page.html">p</a></body></html>`)
	sim.SetStatic(target, "<html><body><h1>found</h1></body></html>")
	var failed atomic.Bool
	flaky := elog.FetcherFunc(func(url string) (*dom.Tree, error) {
		if url == target && failed.CompareAndSwap(false, true) {
			return nil, fmt.Errorf("transient: connection reset")
		}
		return sim.Fetch(url)
	})
	prog := elog.MustParse(`
index(S, X) <- document("crawl.example.com/index.html", S), subelem(S, .body, X)
link(S, X) <- index(_, S), subelem(S, ?.a, X)
url(S, X) <- link(_, S), subatt(S, href, X)
page(S, X) <- url(_, S), getDocument(S, X)
title(S, X) <- page(_, S), subelem(S, ?.h1, X)
`)
	for _, compiled := range []bool{false, true} {
		failed.Store(false)
		ev := elog.NewEvaluator(flaky)
		var base *pib.Base
		var err error
		if compiled {
			base, err = ev.RunCompiled(elog.MustCompile(prog))
		} else {
			base, err = ev.Run(prog)
		}
		if err != nil {
			t.Fatalf("compiled=%v: %v", compiled, err)
		}
		// The speculative prefetch eats the transient failure; the
		// consuming getDocument must retry and succeed.
		if n := len(base.Instances("title")); n != 1 {
			t.Errorf("compiled=%v: extracted %d titles after transient failure, want 1", compiled, n)
		}
	}
}
