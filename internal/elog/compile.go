package elog

import (
	"sync"
	"sync/atomic"

	"repro/internal/dom"
	"repro/internal/nodeset"
)

// CompiledProgram is a parsed and analyzed Elog program: a reusable
// value mirroring the xpath.Compile design. Compiling resolves the
// stratification once and lowers every element path definition onto
// the packed-bitset kernel — each tag test becomes a word-parallel
// intersection with the document's interned-label bitsets
// (dom.LabelBits via internal/nodeset), with per-node work left only
// for the attribute/variable conditions. Per-document match results
// are memoized keyed on the tree's content fingerprint, so re-wrapping
// an unchanged page costs hash lookups instead of tree walks.
//
// A CompiledProgram is safe for concurrent use: multiple evaluators
// (server ticks, parallel Run calls) may share one, provided the
// document trees themselves are not shared unwarmed between goroutines
// (the crawl frontier warms every tree it fetches; see dom.Tree.Warm).
type CompiledProgram struct {
	// Program is the source program (read-only after Compile).
	Program *Program
	strata  [][]*Rule
	// waves caches planWaves per stratum, so evaluation does not re-plan
	// the concurrency structure on every run.
	waves [][]wave
	epds  map[*EPD]*compiledEPD

	hits, misses atomic.Uint64
}

// Compile stratifies the program and lowers its element path
// definitions for bitset execution. It fails exactly when Run would:
// on programs with a cycle through a negated pattern reference.
func Compile(p *Program) (*CompiledProgram, error) {
	strata, err := Stratify(p)
	if err != nil {
		return nil, err
	}
	waves := make([][]wave, len(strata))
	for i, rules := range strata {
		waves[i] = planWaves(rules)
	}
	cp := &CompiledProgram{Program: p, strata: strata, waves: waves, epds: map[*EPD]*compiledEPD{}}
	add := func(e *EPD) {
		if e != nil && cp.epds[e] == nil {
			cp.epds[e] = newCompiledEPD(e)
		}
	}
	for _, r := range p.Rules {
		if r.Extract != nil {
			// Subsq Start/End are SelfMatch-only delimiters (per-node
			// checks on already-selected children); nothing to lower.
			add(r.Extract.EPD)
			add(r.Extract.From)
		}
		for _, c := range r.Conds {
			switch cc := c.(type) {
			case BeforeCond:
				add(cc.EPD)
			case ContainsCond:
				add(cc.EPD)
			}
		}
	}
	return cp, nil
}

// MustCompile panics on error, for tests and package-level wrappers.
func MustCompile(p *Program) *CompiledProgram {
	cp, err := Compile(p)
	if err != nil {
		panic(err)
	}
	return cp
}

// Stats returns the cumulative fingerprint-cache counters across all
// compiled paths: hits are pattern matches answered without touching
// the document tree.
func (cp *CompiledProgram) Stats() (hits, misses uint64) {
	return cp.hits.Load(), cp.misses.Load()
}

// maxEPDCache bounds each compiled path's memo table. Entries are keyed
// per (document fingerprint, context node set), so a parent pattern
// with many instances produces many keys; when the table fills it is
// reset wholesale, like the xpath compiled-query cache.
const maxEPDCache = 4096

// epdCacheKey identifies one memoized match: the document content
// fingerprint, a hash of the context roots, and the two match-mode
// flags. Hash collisions are as unlikely as fingerprint collisions
// (~2^-64), the same trade the xpath cache makes.
type epdCacheKey struct {
	fp, roots  uint64
	asChildren bool
	deep       bool
}

// compiledEPD is one lowered element path definition plus its memo
// table. The deep variant (implicit leading descent, used by context
// and internal conditions) shares the table under the key's deep flag.
type compiledEPD struct {
	epd  *EPD
	deep *EPD
	// sig is a hash of the path's canonical form: the identity under
	// which structurally equal paths of different programs share match
	// results through an attached MatchCache.
	sig uint64

	mu    sync.Mutex
	cache map[epdCacheKey][]epdMatch
}

func newCompiledEPD(e *EPD) *compiledEPD {
	return &compiledEPD{
		epd:   e,
		deep:  &EPD{Steps: append([]EPDStep{{Kind: "deep"}}, e.Steps...), Conds: e.Conds},
		sig:   hashString(e.sigString()),
		cache: map[epdCacheKey][]epdMatch{},
	}
}

// match evaluates the path over the bitset kernel, memoized per
// document fingerprint and context set — first in the program's own
// table, then (when a fleet-shared MatchCache is attached) in the
// shared one, qualified by the path's signature. Results computed here
// are published to both. The returned slice and the binds maps inside
// it are shared cache entries: callers must treat them as read-only,
// which every evaluator call site does (bindings are copied into fresh
// maps before use).
func (ce *compiledEPD) match(cp *CompiledProgram, shared *MatchCache, t *dom.Tree, roots []dom.NodeID, asChildren, deep bool) []epdMatch {
	key := epdCacheKey{fp: t.Fingerprint(), roots: hashNodes(roots), asChildren: asChildren, deep: deep}
	ce.mu.Lock()
	m, ok := ce.cache[key]
	ce.mu.Unlock()
	if ok {
		cp.hits.Add(1)
		return m
	}
	if shared != nil {
		if m, ok := shared.get(sharedMatchKey{sig: ce.sig, epdCacheKey: key}); ok {
			cp.hits.Add(1)
			ce.store(key, m)
			return m
		}
	}
	cp.misses.Add(1)
	e := ce.epd
	if deep {
		e = ce.deep
	}
	m = bitsetMatch(e, t, roots, asChildren)
	ce.store(key, m)
	if shared != nil {
		shared.put(sharedMatchKey{sig: ce.sig, epdCacheKey: key}, m)
	}
	return m
}

// store inserts into the per-program memo, resetting wholesale at the
// size bound.
func (ce *compiledEPD) store(key epdCacheKey, m []epdMatch) {
	ce.mu.Lock()
	if len(ce.cache) >= maxEPDCache {
		ce.cache = make(map[epdCacheKey][]epdMatch, 64)
	}
	ce.cache[key] = m
	ce.mu.Unlock()
}

// bitsetMatch is the compiled analogue of EPD.Match: each step advances
// a packed node set — descent is a single-sweep DescendantsOrSelf
// image, tag tests are word-parallel intersections with the interned
// labels' characteristic bitsets — and only the attribute conditions
// fall back to per-node checks. Matches come out in document order;
// the interpreter's discovery order can differ, but the match sets are
// identical and every downstream consumer is order-insensitive (the
// XML transformer re-sorts siblings by document order).
func bitsetMatch(e *EPD, t *dom.Tree, roots []dom.NodeID, rootsAsChildren bool) []epdMatch {
	ctx := nodeset.FromSlice(t, roots)
	for si := range e.Steps {
		step := &e.Steps[si]
		if step.Kind == "deep" {
			ctx = nodeset.DescendantsOrSelf(t, ctx)
			continue
		}
		cand := ctx
		if !(si == 0 && rootsAsChildren) {
			cand = nodeset.Children(t, ctx)
		}
		switch step.Kind {
		case "tag":
			sel := nodeset.New(t)
			for _, tag := range append([]string{step.Tag}, step.Alts...) {
				if id := t.LabelIDFor(tag); id != dom.NoLabel {
					sel.OrWords(t.LabelBits(id))
				}
			}
			ctx = cand.And(sel).AndWords(t.KindBits(dom.Element))
		case "star":
			ctx = cand.AndWords(t.KindBits(dom.Element))
		default: // "content": any child node
			ctx = cand
		}
		if ctx.Empty() {
			return nil
		}
	}
	return e.applyConds(t, ctx.Nodes(t))
}

// hashString is FNV-1a over a string.
func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * prime64
	}
	return h
}

// hashNodes is FNV-1a over the context node ids.
func hashNodes(nodes []dom.NodeID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, n := range nodes {
		h = (h ^ uint64(uint32(n))) * prime64
	}
	return h
}
