package elog

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dom"
	"repro/internal/nodeset"
)

// CompiledProgram is a parsed and analyzed Elog program: a reusable
// value mirroring the xpath.Compile design. Compiling resolves the
// stratification once and lowers every element path definition onto
// the packed-bitset kernel — each tag test becomes a word-parallel
// intersection with the document's interned-label bitsets
// (dom.LabelBits via internal/nodeset), with per-node work left only
// for the attribute/variable conditions. Per-document match results
// are memoized keyed on the tree's content fingerprint, so re-wrapping
// an unchanged page costs hash lookups instead of tree walks.
//
// A CompiledProgram is safe for concurrent use: multiple evaluators
// (server ticks, parallel Run calls) may share one, provided the
// document trees themselves are not shared unwarmed between goroutines
// (the crawl frontier warms every tree it fetches; see dom.Tree.Warm).
type CompiledProgram struct {
	// Program is the source program (read-only after Compile).
	Program *Program
	strata  [][]*Rule
	// waves caches planWaves per stratum, so evaluation does not re-plan
	// the concurrency structure on every run.
	waves [][]wave
	epds  map[*EPD]*compiledEPD

	hits, misses atomic.Uint64

	// Incremental-matching counters (see Evaluator.Incremental):
	// subHits/subMisses count per-root subtree-fingerprint lookups,
	// reusedNodes/dirtyNodes the document nodes those roots covered.
	subHits, subMisses      atomic.Uint64
	reusedNodes, dirtyNodes atomic.Uint64
}

// Compile stratifies the program and lowers its element path
// definitions for bitset execution. It fails exactly when Run would:
// on programs with a cycle through a negated pattern reference.
func Compile(p *Program) (*CompiledProgram, error) {
	strata, err := Stratify(p)
	if err != nil {
		return nil, err
	}
	waves := make([][]wave, len(strata))
	for i, rules := range strata {
		waves[i] = planWaves(rules)
	}
	cp := &CompiledProgram{Program: p, strata: strata, waves: waves, epds: map[*EPD]*compiledEPD{}}
	add := func(e *EPD) {
		if e != nil && cp.epds[e] == nil {
			cp.epds[e] = newCompiledEPD(e)
		}
	}
	for _, r := range p.Rules {
		if r.Extract != nil {
			// Subsq Start/End are SelfMatch-only delimiters (per-node
			// checks on already-selected children); nothing to lower.
			add(r.Extract.EPD)
			add(r.Extract.From)
		}
		for _, c := range r.Conds {
			switch cc := c.(type) {
			case BeforeCond:
				add(cc.EPD)
			case ContainsCond:
				add(cc.EPD)
			}
		}
	}
	return cp, nil
}

// MustCompile panics on error, for tests and package-level wrappers.
func MustCompile(p *Program) *CompiledProgram {
	cp, err := Compile(p)
	if err != nil {
		panic(err)
	}
	return cp
}

// Stats returns the cumulative fingerprint-cache counters across all
// compiled paths: hits are pattern matches answered without touching
// the document tree.
func (cp *CompiledProgram) Stats() (hits, misses uint64) {
	return cp.hits.Load(), cp.misses.Load()
}

// IncrementalStats is a snapshot of the subtree-fingerprint reuse
// counters: SubtreeHits/SubtreeMisses count per-root cache lookups
// during incremental matching, ReusedNodes/DirtyNodes the document
// nodes under those roots — reused nodes were resolved from cache
// without touching the tree, dirty nodes ran the bitset matcher.
type IncrementalStats struct {
	SubtreeHits   uint64 `json:"subtree_hits"`
	SubtreeMisses uint64 `json:"subtree_misses"`
	ReusedNodes   uint64 `json:"reused_nodes"`
	DirtyNodes    uint64 `json:"dirty_nodes"`
}

// Incremental returns the cumulative incremental-matching counters
// (all zero unless some evaluator ran with Incremental set).
func (cp *CompiledProgram) Incremental() IncrementalStats {
	return IncrementalStats{
		SubtreeHits:   cp.subHits.Load(),
		SubtreeMisses: cp.subMisses.Load(),
		ReusedNodes:   cp.reusedNodes.Load(),
		DirtyNodes:    cp.dirtyNodes.Load(),
	}
}

// maxEPDCache bounds each compiled path's memo table. Entries are keyed
// per (document fingerprint, context node set), so a parent pattern
// with many instances produces many keys; when the table fills it is
// reset wholesale, like the xpath compiled-query cache.
const maxEPDCache = 4096

// epdCacheKey identifies one memoized match: the document content
// fingerprint, a hash of the context roots, and the two match-mode
// flags. Hash collisions are as unlikely as fingerprint collisions
// (~2^-64), the same trade the xpath cache makes.
type epdCacheKey struct {
	fp, roots  uint64
	asChildren bool
	deep       bool
}

// subKey identifies one memoized per-root match in the subtree-
// fingerprint layer: the root's subtree content hash plus the two
// match-mode flags. Unlike epdCacheKey it carries no document
// fingerprint and no node ids — the entry is content-addressed, so it
// survives across document versions and even across documents.
type subKey struct {
	sub        uint64
	asChildren bool
	deep       bool
}

// relMatch is a cached match in context-relative position: the offset
// of the matched node from the context root. On document-ordered trees
// the subtree of root r occupies exactly the contiguous id range
// [r, r+size), and equal-content subtrees lay out their nodes at equal
// offsets, so r+off re-materializes the match in any document carrying
// an identical subtree at any position. The binds maps are shared with
// the original computation (read-only by the evaluator convention).
type relMatch struct {
	off   dom.NodeID
	binds map[string]string
}

// compiledEPD is one lowered element path definition plus its memo
// tables. The deep variant (implicit leading descent, used by context
// and internal conditions) shares the tables under the keys' deep
// flag. cache memoizes whole calls per document fingerprint; subCache
// memoizes per-root results by subtree fingerprint, feeding the
// incremental path.
type compiledEPD struct {
	epd  *EPD
	deep *EPD
	// sig is a hash of the path's canonical form: the identity under
	// which structurally equal paths of different programs share match
	// results through an attached MatchCache.
	sig uint64

	mu       sync.Mutex
	cache    map[epdCacheKey][]epdMatch
	subCache map[subKey][]relMatch
}

func newCompiledEPD(e *EPD) *compiledEPD {
	return &compiledEPD{
		epd:      e,
		deep:     &EPD{Steps: append([]EPDStep{{Kind: "deep"}}, e.Steps...), Conds: e.Conds},
		sig:      hashString(e.sigString()),
		cache:    map[epdCacheKey][]epdMatch{},
		subCache: map[subKey][]relMatch{},
	}
}

// match evaluates the path over the bitset kernel, memoized per
// document fingerprint and context set — first in the program's own
// table, then (when a fleet-shared MatchCache is attached) in the
// shared one, qualified by the path's signature. Results computed here
// are published to both. The returned slice and the binds maps inside
// it are shared cache entries: callers must treat them as read-only,
// which every evaluator call site does (bindings are copied into fresh
// maps before use).
func (ce *compiledEPD) match(cp *CompiledProgram, shared *MatchCache, t *dom.Tree, roots []dom.NodeID, asChildren, deep, inc bool) []epdMatch {
	key := epdCacheKey{fp: t.Fingerprint(), roots: hashNodes(roots), asChildren: asChildren, deep: deep}
	ce.mu.Lock()
	m, ok := ce.cache[key]
	ce.mu.Unlock()
	if ok {
		cp.hits.Add(1)
		return m
	}
	if shared != nil {
		if m, ok := shared.get(sharedMatchKey{sig: ce.sig, epdCacheKey: key}); ok {
			cp.hits.Add(1)
			ce.store(key, m)
			return m
		}
	}
	cp.misses.Add(1)
	if inc {
		if m, ok := ce.matchIncremental(cp, shared, t, roots, asChildren, deep); ok {
			ce.store(key, m)
			if shared != nil {
				shared.put(sharedMatchKey{sig: ce.sig, epdCacheKey: key}, m)
			}
			return m
		}
	}
	e := ce.epd
	if deep {
		e = ce.deep
	}
	m = bitsetMatch(e, t, roots, asChildren)
	ce.store(key, m)
	if shared != nil {
		shared.put(sharedMatchKey{sig: ce.sig, epdCacheKey: key}, m)
	}
	return m
}

// matchIncremental answers a match miss from the content-addressed
// subtree layer: each context root whose subtree fingerprint was seen
// before — in an earlier version of the document, in another document,
// or via a fleet-shared MatchCache in another wrapper's run —
// re-materializes its cached per-root result by offset translation,
// and only the remaining dirty roots run the bitset matcher (in one
// batched call). Correctness rests on two facts checked here: EPD
// matches from a root depend only on that root's subtree (navigation
// only descends, conditions are subtree-local), and on document-
// ordered trees disjoint subtrees occupy disjoint contiguous id
// ranges, so the per-root results concatenated in ascending root order
// equal the batched document-order output exactly. Trees whose ids are
// not document order, or overlapping context roots, report ok=false
// and fall back to the plain batched path.
func (ce *compiledEPD) matchIncremental(cp *CompiledProgram, shared *MatchCache, t *dom.Tree, roots []dom.NodeID, asChildren, deep bool) ([]epdMatch, bool) {
	if len(roots) == 0 || !t.DocOrdered() {
		return nil, false
	}
	sorted := roots
	if len(roots) > 1 {
		sorted = append(make([]dom.NodeID, 0, len(roots)), roots...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		w := 0
		for i, r := range sorted {
			if i == 0 || sorted[w-1] != r {
				sorted[w] = r
				w++
			}
		}
		sorted = sorted[:w]
		for i := 1; i < len(sorted); i++ {
			if int(sorted[i]) < int(sorted[i-1])+t.SubtreeSize(sorted[i-1]) {
				return nil, false
			}
		}
	}
	perRoot := make([][]epdMatch, len(sorted))
	keys := make([]subKey, len(sorted))
	var dirty []dom.NodeID
	var dirtyIdx []int
	for i, r := range sorted {
		k := subKey{sub: t.SubtreeHash(r), asChildren: asChildren, deep: deep}
		keys[i] = k
		rel, ok := ce.subGet(k)
		if !ok && shared != nil {
			if rel, ok = shared.subGet(sharedSubKey{sig: ce.sig, subKey: k}); ok {
				ce.subStore(k, rel)
			}
		}
		if ok {
			cp.subHits.Add(1)
			cp.reusedNodes.Add(uint64(t.SubtreeSize(r)))
			if len(rel) > 0 {
				out := make([]epdMatch, len(rel))
				for j, m := range rel {
					out[j] = epdMatch{node: r + m.off, binds: m.binds}
				}
				perRoot[i] = out
			}
		} else {
			cp.subMisses.Add(1)
			cp.dirtyNodes.Add(uint64(t.SubtreeSize(r)))
			dirty = append(dirty, r)
			dirtyIdx = append(dirtyIdx, i)
		}
	}
	if len(dirty) > 0 {
		e := ce.epd
		if deep {
			e = ce.deep
		}
		all := bitsetMatch(e, t, dirty, asChildren)
		j := 0
		for k, r := range dirty {
			end := dom.NodeID(int(r) + t.SubtreeSize(r))
			start := j
			for j < len(all) && all[j].node < end {
				j++
			}
			seg := all[start:j:j]
			perRoot[dirtyIdx[k]] = seg
			var rel []relMatch
			if len(seg) > 0 {
				rel = make([]relMatch, len(seg))
				for x, m := range seg {
					rel[x] = relMatch{off: m.node - r, binds: m.binds}
				}
			}
			ce.subStore(keys[dirtyIdx[k]], rel)
			if shared != nil {
				shared.subPut(sharedSubKey{sig: ce.sig, subKey: keys[dirtyIdx[k]]}, rel)
			}
		}
	}
	total := 0
	for _, m := range perRoot {
		total += len(m)
	}
	if total == 0 {
		return nil, true
	}
	if len(perRoot) == 1 {
		return perRoot[0], true
	}
	out := make([]epdMatch, 0, total)
	for _, m := range perRoot {
		out = append(out, m...)
	}
	return out, true
}

// subGet looks a root's cached relative matches up in the per-program
// subtree table.
func (ce *compiledEPD) subGet(k subKey) ([]relMatch, bool) {
	ce.mu.Lock()
	m, ok := ce.subCache[k]
	ce.mu.Unlock()
	return m, ok
}

// subStore inserts into the per-program subtree table, resetting
// wholesale at the size bound like store.
func (ce *compiledEPD) subStore(k subKey, m []relMatch) {
	ce.mu.Lock()
	if len(ce.subCache) >= maxEPDCache {
		ce.subCache = make(map[subKey][]relMatch, 64)
	}
	ce.subCache[k] = m
	ce.mu.Unlock()
}

// store inserts into the per-program memo, resetting wholesale at the
// size bound.
func (ce *compiledEPD) store(key epdCacheKey, m []epdMatch) {
	ce.mu.Lock()
	if len(ce.cache) >= maxEPDCache {
		ce.cache = make(map[epdCacheKey][]epdMatch, 64)
	}
	ce.cache[key] = m
	ce.mu.Unlock()
}

// bitsetMatch is the compiled analogue of EPD.Match: each step advances
// a packed node set — descent is a single-sweep DescendantsOrSelf
// image, tag tests are word-parallel intersections with the interned
// labels' characteristic bitsets — and only the attribute conditions
// fall back to per-node checks. Matches come out in document order;
// the interpreter's discovery order can differ, but the match sets are
// identical and every downstream consumer is order-insensitive (the
// XML transformer re-sorts siblings by document order).
func bitsetMatch(e *EPD, t *dom.Tree, roots []dom.NodeID, rootsAsChildren bool) []epdMatch {
	ctx := nodeset.FromSlice(t, roots)
	for si := range e.Steps {
		step := &e.Steps[si]
		if step.Kind == "deep" {
			ctx = nodeset.DescendantsOrSelf(t, ctx)
			continue
		}
		cand := ctx
		if !(si == 0 && rootsAsChildren) {
			cand = nodeset.Children(t, ctx)
		}
		switch step.Kind {
		case "tag":
			sel := nodeset.New(t)
			for _, tag := range append([]string{step.Tag}, step.Alts...) {
				if id := t.LabelIDFor(tag); id != dom.NoLabel {
					sel.OrWords(t.LabelBits(id))
				}
			}
			ctx = cand.And(sel).AndWords(t.KindBits(dom.Element))
		case "star":
			ctx = cand.AndWords(t.KindBits(dom.Element))
		default: // "content": any child node
			ctx = cand
		}
		if ctx.Empty() {
			return nil
		}
	}
	return e.applyConds(t, ctx.Nodes(t))
}

// hashString is FNV-1a over a string.
func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * prime64
	}
	return h
}

// hashNodes is FNV-1a over the context node ids.
func hashNodes(nodes []dom.NodeID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, n := range nodes {
		h = (h ^ uint64(uint32(n))) * prime64
	}
	return h
}
