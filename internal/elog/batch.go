package elog

import (
	"sync"
	"sync/atomic"
)

// MatchCache is a shared, cross-program match memo for batched fleet
// extraction: when a fleet of wrappers monitors the same pages (one
// fetch+parse shared through fetchcache), attaching one MatchCache to
// all of their evaluators also shares the pattern-matching work. Keys
// extend the per-program memo key with a signature of the element path
// definition itself, so two independently compiled wrappers containing
// the same path — the common case in a fleet stamped from one template
// — reuse each other's match results on the same document. A
// 100-wrapper fleet over one shared page then costs roughly one parse
// plus one warmed match cache instead of 100 of each.
//
// The cache holds two entry kinds behind one LRU bound: whole-call
// results keyed by document fingerprint and context set, and per-root
// relative results keyed by subtree fingerprint (the incremental layer
// — see Evaluator.Incremental), which survive document churn because
// they are content-addressed. Memory is bounded: at the entry cap the
// least recently used entry of either kind is evicted.
//
// A MatchCache is safe for concurrent use by any number of evaluators.
// Entries are value-compatible across programs: a match result depends
// only on the path definition (captured by the signature) and the
// document content (captured by the tree or subtree fingerprint),
// never on the program around it.
type MatchCache struct {
	mu         sync.Mutex
	doc        map[sharedMatchKey]*mcEntry
	sub        map[sharedSubKey]*mcEntry
	head, tail *mcEntry // LRU list; head is most recently used
	capEntries int

	hits, misses atomic.Uint64
	evictions    atomic.Uint64
	attached     atomic.Int64
}

// mcEntry is one cache entry on the intrusive LRU list; exactly one of
// the two key/value pairs is live, selected by isSub.
type mcEntry struct {
	prev, next *mcEntry
	isSub      bool
	docKey     sharedMatchKey
	subK       sharedSubKey
	matches    []epdMatch
	rel        []relMatch
}

// sharedMatchKey is a per-program memo key qualified by the path
// definition's signature, making it meaningful across programs.
type sharedMatchKey struct {
	sig uint64
	epdCacheKey
}

// sharedSubKey qualifies a subtree-layer key by the path signature,
// like sharedMatchKey does for whole-call keys.
type sharedSubKey struct {
	sig uint64
	subKey
}

// DefaultMatchCacheEntries is the entry cap of NewMatchCache. It is
// larger than the per-program memo bound because one table serves a
// whole fleet.
const DefaultMatchCacheEntries = 65536

// NewMatchCache returns an empty shared match cache with the default
// entry cap.
func NewMatchCache() *MatchCache { return NewMatchCacheSize(0) }

// NewMatchCacheSize returns an empty shared match cache evicting least
// recently used entries beyond maxEntries (<= 0 means
// DefaultMatchCacheEntries).
func NewMatchCacheSize(maxEntries int) *MatchCache {
	if maxEntries <= 0 {
		maxEntries = DefaultMatchCacheEntries
	}
	return &MatchCache{
		doc:        make(map[sharedMatchKey]*mcEntry),
		sub:        make(map[sharedSubKey]*mcEntry),
		capEntries: maxEntries,
	}
}

// Stats returns the cumulative shared-cache counters: hits are matches
// some evaluator answered from another program's (or an earlier run's)
// work; misses are lookups that fell through to computation.
func (mc *MatchCache) Stats() (hits, misses uint64) {
	return mc.hits.Load(), mc.misses.Load()
}

// Attach records one more wrapper drawing on the cache; Attached is the
// fleet's batch size, surfaced in extraction stats.
func (mc *MatchCache) Attach() { mc.attached.Add(1) }

// Detach undoes one Attach.
func (mc *MatchCache) Detach() { mc.attached.Add(-1) }

// Attached returns the number of currently attached wrappers.
func (mc *MatchCache) Attached() int { return int(mc.attached.Load()) }

// BatchStats is a JSON-friendly snapshot of a MatchCache, surfaced on
// the server's /statusz and GET /v1/wrappers payloads.
type BatchStats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Attached int    `json:"attached"`
	// Entries counts live entries of both kinds (document-keyed and
	// subtree-keyed); Evictions counts entries dropped at the LRU cap.
	Entries   int    `json:"entries"`
	Evictions uint64 `json:"evictions"`
}

// Report returns the cache's current counters and size.
func (mc *MatchCache) Report() BatchStats {
	mc.mu.Lock()
	entries := len(mc.doc) + len(mc.sub)
	mc.mu.Unlock()
	return BatchStats{
		Hits:      mc.hits.Load(),
		Misses:    mc.misses.Load(),
		Attached:  mc.Attached(),
		Entries:   entries,
		Evictions: mc.evictions.Load(),
	}
}

// moveFront makes e the most recently used entry. Caller holds mu.
func (mc *MatchCache) moveFront(e *mcEntry) {
	if mc.head == e {
		return
	}
	// Unlink (e is in the list unless it is new).
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if mc.tail == e {
		mc.tail = e.prev
	}
	e.prev = nil
	e.next = mc.head
	if mc.head != nil {
		mc.head.prev = e
	}
	mc.head = e
	if mc.tail == nil {
		mc.tail = e
	}
}

// evict drops least recently used entries until the cap holds. Caller
// holds mu.
func (mc *MatchCache) evict() {
	for len(mc.doc)+len(mc.sub) > mc.capEntries && mc.tail != nil {
		e := mc.tail
		mc.tail = e.prev
		if mc.tail != nil {
			mc.tail.next = nil
		} else {
			mc.head = nil
		}
		if e.isSub {
			delete(mc.sub, e.subK)
		} else {
			delete(mc.doc, e.docKey)
		}
		mc.evictions.Add(1)
	}
}

// get looks the key up, counting a hit or miss.
func (mc *MatchCache) get(k sharedMatchKey) ([]epdMatch, bool) {
	mc.mu.Lock()
	e, ok := mc.doc[k]
	var m []epdMatch
	if ok {
		m = e.matches
		mc.moveFront(e)
	}
	mc.mu.Unlock()
	if ok {
		mc.hits.Add(1)
	} else {
		mc.misses.Add(1)
	}
	return m, ok
}

// put stores a computed match result, evicting at the entry cap.
func (mc *MatchCache) put(k sharedMatchKey, m []epdMatch) {
	mc.mu.Lock()
	e, ok := mc.doc[k]
	if !ok {
		e = &mcEntry{docKey: k}
		mc.doc[k] = e
	}
	e.matches = m
	mc.moveFront(e)
	mc.evict()
	mc.mu.Unlock()
}

// subGet looks a subtree-layer key up. It does not touch the hit/miss
// counters — the per-program IncrementalStats count subtree lookups,
// keeping the two stats blocks independently meaningful.
func (mc *MatchCache) subGet(k sharedSubKey) ([]relMatch, bool) {
	mc.mu.Lock()
	e, ok := mc.sub[k]
	var m []relMatch
	if ok {
		m = e.rel
		mc.moveFront(e)
	}
	mc.mu.Unlock()
	return m, ok
}

// subPut stores a per-root relative result, evicting at the entry cap.
func (mc *MatchCache) subPut(k sharedSubKey, m []relMatch) {
	mc.mu.Lock()
	e, ok := mc.sub[k]
	if !ok {
		e = &mcEntry{isSub: true, subK: k}
		mc.sub[k] = e
	}
	e.rel = m
	mc.moveFront(e)
	mc.evict()
	mc.mu.Unlock()
}
