package elog

import (
	"sync"
	"sync/atomic"
)

// MatchCache is a shared, cross-program match memo for batched fleet
// extraction: when a fleet of wrappers monitors the same pages (one
// fetch+parse shared through fetchcache), attaching one MatchCache to
// all of their evaluators also shares the pattern-matching work. Keys
// extend the per-program memo key with a signature of the element path
// definition itself, so two independently compiled wrappers containing
// the same path — the common case in a fleet stamped from one template
// — reuse each other's match results on the same document. A
// 100-wrapper fleet over one shared page then costs roughly one parse
// plus one warmed match cache instead of 100 of each.
//
// A MatchCache is safe for concurrent use by any number of evaluators.
// Entries are value-compatible across programs: a match result depends
// only on the path definition (captured by the signature) and the
// document content (captured by the tree fingerprint), never on the
// program around it.
type MatchCache struct {
	mu    sync.Mutex
	cache map[sharedMatchKey][]epdMatch

	hits, misses atomic.Uint64
	attached     atomic.Int64
}

// sharedMatchKey is a per-program memo key qualified by the path
// definition's signature, making it meaningful across programs.
type sharedMatchKey struct {
	sig uint64
	epdCacheKey
}

// maxSharedCache bounds the shared table; like the per-program memo it
// is reset wholesale when full. It is larger because one table serves
// a whole fleet.
const maxSharedCache = 65536

// NewMatchCache returns an empty shared match cache.
func NewMatchCache() *MatchCache {
	return &MatchCache{cache: make(map[sharedMatchKey][]epdMatch)}
}

// Stats returns the cumulative shared-cache counters: hits are matches
// some evaluator answered from another program's (or an earlier run's)
// work; misses are lookups that fell through to computation.
func (mc *MatchCache) Stats() (hits, misses uint64) {
	return mc.hits.Load(), mc.misses.Load()
}

// Attach records one more wrapper drawing on the cache; Attached is the
// fleet's batch size, surfaced in extraction stats.
func (mc *MatchCache) Attach() { mc.attached.Add(1) }

// Detach undoes one Attach.
func (mc *MatchCache) Detach() { mc.attached.Add(-1) }

// Attached returns the number of currently attached wrappers.
func (mc *MatchCache) Attached() int { return int(mc.attached.Load()) }

// BatchStats is a JSON-friendly snapshot of a MatchCache, surfaced on
// the server's /statusz and GET /v1/wrappers payloads.
type BatchStats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Attached int    `json:"attached"`
	Entries  int    `json:"entries"`
}

// Report returns the cache's current counters and size.
func (mc *MatchCache) Report() BatchStats {
	mc.mu.Lock()
	entries := len(mc.cache)
	mc.mu.Unlock()
	return BatchStats{
		Hits:     mc.hits.Load(),
		Misses:   mc.misses.Load(),
		Attached: mc.Attached(),
		Entries:  entries,
	}
}

// get looks the key up, counting a hit or miss.
func (mc *MatchCache) get(k sharedMatchKey) ([]epdMatch, bool) {
	mc.mu.Lock()
	m, ok := mc.cache[k]
	mc.mu.Unlock()
	if ok {
		mc.hits.Add(1)
	} else {
		mc.misses.Add(1)
	}
	return m, ok
}

// put stores a computed match result, resetting the table wholesale at
// the size bound.
func (mc *MatchCache) put(k sharedMatchKey, m []epdMatch) {
	mc.mu.Lock()
	if len(mc.cache) >= maxSharedCache {
		mc.cache = make(map[sharedMatchKey][]epdMatch, 1024)
	}
	mc.cache[k] = m
	mc.mu.Unlock()
}
