package elog

import (
	"fmt"
	"regexp"
	"strings"

	"repro/internal/dom"
)

// EPD is an element path definition (Section 3.3): a path over tag
// names, where paths "may consist of certain regular expressions over
// tag names and may also put conditions on the values of HTML node
// attributes". The step language:
//
//	.tag      a child labeled tag
//	?         descent by zero or more levels (the Lixto wildcard)
//	*         any element child
//	content   any child node including text
//
// followed by an optional attribute-condition list
//
//	[(attr, value, mode), ...]
//
// with mode ∈ {exact, substr, regexp, regvar}; attr may be an HTML
// attribute name or the pseudo-attribute "elementtext" (the node's text
// content). Mode regvar matches value as a regular expression in which
// \var[Y] denotes a capture bound to the Elog variable Y — as in the
// price rule of Figure 5.
type EPD struct {
	Steps []EPDStep
	Conds []AttrCond
	src   string
}

// EPDStep is one path step. A "tag" step may carry alternatives
// (tag1|tag2|...), the paper's "certain regular expressions over tag
// names".
type EPDStep struct {
	// Kind: "tag", "deep" (?), "star" (*), "content".
	Kind string
	Tag  string
	// Alts are additional acceptable tags for a "tag" step.
	Alts []string
}

// matchesTag reports whether label matches the step's tag or one of its
// alternatives.
func (st EPDStep) matchesTag(label string) bool {
	if st.Tag == label {
		return true
	}
	for _, a := range st.Alts {
		if a == label {
			return true
		}
	}
	return false
}

// AttrCond is an attribute condition of an EPD.
type AttrCond struct {
	Attr  string // attribute name or "elementtext"
	Value string
	Mode  string // exact | substr | regexp | regvar
	Vars  []string
	re    *regexp.Regexp
}

func (e *EPD) String() string {
	if e.src != "" {
		return e.src
	}
	return e.sigString()
}

// sigString is the canonical textual identity of the path: unlike
// String it ignores the source spelling, so two paths that parse to
// the same steps and conditions are identified regardless of
// formatting. The cross-program match cache keys on its hash.
func (e *EPD) sigString() string {
	var b strings.Builder
	for _, s := range e.Steps {
		switch s.Kind {
		case "deep":
			b.WriteString("?")
		case "star":
			b.WriteString(".*")
		case "content":
			b.WriteString(".content")
		default:
			b.WriteString("." + strings.Join(append([]string{s.Tag}, s.Alts...), "|"))
		}
	}
	if len(e.Conds) > 0 {
		b.WriteString("[")
		for i, c := range e.Conds {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(%s, %s, %s)", c.Attr, c.Value, c.Mode)
		}
		b.WriteString("]")
	}
	return b.String()
}

// ParseEPD parses an element path definition from its textual form,
// e.g. ".body", "?.td", "(?.td, [(elementtext, \\var[Y].*, regvar)])".
func ParseEPD(src string) (*EPD, error) {
	s := strings.TrimSpace(src)
	// Strip one level of wrapping parens: (path, [conds]).
	var condPart string
	if strings.HasPrefix(s, "(") && strings.HasSuffix(s, ")") {
		inner := s[1 : len(s)-1]
		// Split at the top-level comma before '['.
		depth := 0
		cut := -1
		for i := 0; i < len(inner); i++ {
			switch inner[i] {
			case '(', '[':
				depth++
			case ')', ']':
				depth--
			case ',':
				if depth == 0 {
					cut = i
				}
			}
			if cut >= 0 {
				break
			}
		}
		if cut >= 0 {
			condPart = strings.TrimSpace(inner[cut+1:])
			inner = strings.TrimSpace(inner[:cut])
		}
		s = inner
	}
	epd := &EPD{src: strings.TrimSpace(src)}
	if err := epd.parseSteps(s); err != nil {
		return nil, err
	}
	if condPart != "" {
		if err := epd.parseConds(condPart); err != nil {
			return nil, err
		}
	}
	return epd, nil
}

// MustParseEPD panics on error.
func MustParseEPD(src string) *EPD {
	e, err := ParseEPD(src)
	if err != nil {
		panic(err)
	}
	return e
}

func (e *EPD) parseSteps(s string) error {
	s = strings.TrimSpace(s)
	if s == "" {
		return fmt.Errorf("elog: empty element path")
	}
	i := 0
	for i < len(s) {
		switch {
		case s[i] == '?':
			e.Steps = append(e.Steps, EPDStep{Kind: "deep"})
			i++
			if i < len(s) && s[i] == '.' {
				i++
			}
		case s[i] == '.':
			i++
		case s[i] == '*':
			e.Steps = append(e.Steps, EPDStep{Kind: "star"})
			i++
			if i < len(s) && s[i] == '.' {
				i++
			}
		case s[i] == ' ':
			i++
		default:
			j := i
			for j < len(s) && s[j] != '.' && s[j] != '?' && s[j] != ' ' {
				j++
			}
			tag := s[i:j]
			if tag == "content" {
				e.Steps = append(e.Steps, EPDStep{Kind: "content"})
			} else if tag == "*" {
				e.Steps = append(e.Steps, EPDStep{Kind: "star"})
			} else if strings.Contains(tag, "|") {
				parts := strings.Split(strings.ToLower(tag), "|")
				e.Steps = append(e.Steps, EPDStep{Kind: "tag", Tag: parts[0], Alts: parts[1:]})
			} else {
				e.Steps = append(e.Steps, EPDStep{Kind: "tag", Tag: strings.ToLower(tag)})
			}
			i = j
			if i < len(s) && s[i] == '.' {
				i++
			}
		}
	}
	if len(e.Steps) == 0 {
		return fmt.Errorf("elog: no steps in element path %q", s)
	}
	return nil
}

// parseConds parses "[(attr, value, mode), ...]" — also accepting the
// paper's bare form "[attr, value, mode]".
func (e *EPD) parseConds(s string) error {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return fmt.Errorf("elog: attribute conditions must be bracketed: %q", s)
	}
	body := strings.TrimSpace(s[1 : len(s)-1])
	if body == "" {
		return nil
	}
	// Split into tuples at top level.
	var tuples []string
	if strings.HasPrefix(body, "(") {
		depth := 0
		start := 0
		for i := 0; i < len(body); i++ {
			switch body[i] {
			case '(':
				if depth == 0 {
					start = i
				}
				depth++
			case ')':
				depth--
				if depth == 0 {
					tuples = append(tuples, body[start+1:i])
				}
			}
		}
	} else {
		tuples = []string{body}
	}
	for _, tup := range tuples {
		parts := splitTop(tup, ',')
		if len(parts) < 2 {
			return fmt.Errorf("elog: bad attribute condition %q", tup)
		}
		c := AttrCond{Attr: strings.TrimSpace(parts[0])}
		c.Value = strings.TrimSpace(parts[1])
		c.Mode = "exact"
		if len(parts) >= 3 {
			c.Mode = strings.TrimSpace(parts[2])
		}
		if err := c.compile(); err != nil {
			return err
		}
		e.Conds = append(e.Conds, c)
	}
	return nil
}

// splitTop splits at the separator, ignoring separators nested in
// parentheses or brackets.
func splitTop(s string, sep byte) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
		case sep:
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// varRef matches \var[Y] in string path definitions and regvar values.
var varRef = regexp.MustCompile(`\\var\[([A-Za-z]\w*)\]`)

// compileVarPattern converts a Lixto pattern with \var[Y] references into
// a Go regular expression with capture groups, returning the variable
// names in group order. Bare \var[Y] captures a non-empty token.
func compileVarPattern(pattern string) (*regexp.Regexp, []string, error) {
	var vars []string
	expanded := varRef.ReplaceAllStringFunc(pattern, func(m string) string {
		name := varRef.FindStringSubmatch(m)[1]
		vars = append(vars, name)
		return `(\S+)`
	})
	re, err := regexp.Compile(expanded)
	if err != nil {
		return nil, nil, fmt.Errorf("elog: bad pattern %q: %w", pattern, err)
	}
	return re, vars, nil
}

func (c *AttrCond) compile() error {
	switch c.Mode {
	case "exact", "substr":
		return nil
	case "regexp":
		re, err := regexp.Compile(c.Value)
		if err != nil {
			return fmt.Errorf("elog: bad regexp in attribute condition: %w", err)
		}
		c.re = re
		return nil
	case "regvar":
		re, vars, err := compileVarPattern(c.Value)
		if err != nil {
			return err
		}
		c.re = re
		c.Vars = vars
		return nil
	}
	return fmt.Errorf("elog: unknown attribute-condition mode %q", c.Mode)
}

// match checks the condition on node n, returning variable bindings for
// regvar conditions.
func (c *AttrCond) match(t *dom.Tree, n dom.NodeID) (map[string]string, bool) {
	var val string
	if c.Attr == "elementtext" {
		val = strings.TrimSpace(t.ElementText(n))
	} else {
		v, ok := t.Attr(n, c.Attr)
		if !ok {
			return nil, false
		}
		val = v
	}
	switch c.Mode {
	case "exact":
		return nil, val == c.Value
	case "substr":
		return nil, strings.Contains(val, c.Value)
	case "regexp":
		return nil, c.re.MatchString(val)
	case "regvar":
		m := c.re.FindStringSubmatch(val)
		if m == nil {
			return nil, false
		}
		binds := map[string]string{}
		for i, v := range c.Vars {
			if i+1 < len(m) {
				binds[v] = m[i+1]
			}
		}
		return binds, true
	}
	return nil, false
}

// epdMatch is one EPD match: a node plus regvar bindings.
type epdMatch struct {
	node  dom.NodeID
	binds map[string]string
}

// Match evaluates the EPD against the given context roots in tree t. The
// roots act as a virtual parent: a leading tag step matches among the
// roots' children — and, for sequence instances whose members are the
// roots, among the members themselves when rootsAsChildren is set.
func (e *EPD) Match(t *dom.Tree, roots []dom.NodeID, rootsAsChildren bool) []epdMatch {
	// ctx is the current node set; a "tag" step selects children of ctx
	// (or, at step 0 with rootsAsChildren, the roots themselves).
	ctx := append([]dom.NodeID(nil), roots...)
	for si, step := range e.Steps {
		var next []dom.NodeID
		seen := map[dom.NodeID]bool{}
		add := func(n dom.NodeID) {
			if !seen[n] {
				seen[n] = true
				next = append(next, n)
			}
		}
		switch step.Kind {
		case "deep":
			for _, n := range ctx {
				add(n)
				t.WalkSubtree(n, func(m dom.NodeID) { add(m) })
			}
		case "tag", "star", "content":
			cands := func(yield func(dom.NodeID)) {
				if si == 0 && rootsAsChildren {
					for _, n := range ctx {
						yield(n)
					}
					return
				}
				for _, n := range ctx {
					for c := t.FirstChild(n); c != dom.Nil; c = t.NextSibling(c) {
						yield(c)
					}
				}
			}
			cands(func(c dom.NodeID) {
				switch step.Kind {
				case "tag":
					if t.Kind(c) == dom.Element && step.matchesTag(t.Label(c)) {
						add(c)
					}
				case "star":
					if t.Kind(c) == dom.Element {
						add(c)
					}
				case "content":
					add(c)
				}
			})
		}
		ctx = next
		if len(ctx) == 0 {
			return nil
		}
	}
	return e.applyConds(t, ctx)
}

// applyConds filters candidate nodes through the attribute conditions,
// returning one match (with regvar bindings) per surviving node, in
// input order. Both the interpreted Match above and the compiled bitset
// matcher funnel through here, so the condition semantics have a single
// home.
func (e *EPD) applyConds(t *dom.Tree, nodes []dom.NodeID) []epdMatch {
	var out []epdMatch
	for _, n := range nodes {
		binds := map[string]string{}
		ok := true
		for i := range e.Conds {
			b, match := e.Conds[i].match(t, n)
			if !match {
				ok = false
				break
			}
			for k, v := range b {
				binds[k] = v
			}
		}
		if ok {
			if len(binds) == 0 {
				binds = nil
			}
			out = append(out, epdMatch{node: n, binds: binds})
		}
	}
	return out
}

// MatchDeep matches the EPD with an implicit leading descent: context
// conditions (before/after) and internal conditions (contains) look for
// "some other subtree" anywhere within their scope (Section 3.3), so
// their paths are anchored at any depth, unlike extraction paths which
// descend only where the path says so.
func (e *EPD) MatchDeep(t *dom.Tree, roots []dom.NodeID, rootsAsChildren bool) []epdMatch {
	deep := &EPD{Steps: append([]EPDStep{{Kind: "deep"}}, e.Steps...), Conds: e.Conds}
	return deep.Match(t, roots, rootsAsChildren)
}

// SelfMatch checks whether a single node matches the EPD's final tag
// step and conditions — used by subsq start/end delimiters, where the
// path denotes the delimiter node itself.
func (e *EPD) SelfMatch(t *dom.Tree, n dom.NodeID) bool {
	if len(e.Steps) == 0 {
		return false
	}
	last := e.Steps[len(e.Steps)-1]
	switch last.Kind {
	case "tag":
		if t.Kind(n) != dom.Element || !last.matchesTag(t.Label(n)) {
			return false
		}
	case "star":
		if t.Kind(n) != dom.Element {
			return false
		}
	}
	for i := range e.Conds {
		if _, ok := e.Conds[i].match(t, n); !ok {
			return false
		}
	}
	return true
}

// SPD is a string path definition: a regular expression over element
// text, possibly containing \var[Y] captures (Figure 5's currency rule).
type SPD struct {
	Pattern string
	Vars    []string
	re      *regexp.Regexp
}

// ParseSPD compiles a string path definition.
func ParseSPD(pattern string) (*SPD, error) {
	p := strings.TrimSpace(pattern)
	if strings.HasPrefix(p, `"`) && strings.HasSuffix(p, `"`) && len(p) >= 2 {
		p = p[1 : len(p)-1]
	}
	re, vars, err := compileVarPattern(p)
	if err != nil {
		return nil, err
	}
	return &SPD{Pattern: p, Vars: vars, re: re}, nil
}

func (s *SPD) String() string { return s.Pattern }

// spdMatch is one string match with bindings.
type spdMatch struct {
	text  string
	binds map[string]string
}

// Match finds all non-overlapping matches in text.
func (s *SPD) Match(text string) []spdMatch {
	var out []spdMatch
	for _, m := range s.re.FindAllStringSubmatch(text, -1) {
		binds := map[string]string{}
		for i, v := range s.Vars {
			if i+1 < len(m) {
				binds[v] = m[i+1]
			}
		}
		if len(binds) == 0 {
			binds = nil
		}
		out = append(out, spdMatch{text: m[0], binds: binds})
	}
	return out
}
