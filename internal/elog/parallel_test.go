package elog

import (
	"runtime"
	"testing"

	"repro/internal/htmlparse"
	"repro/internal/pib"
)

// parallelFixtures are programs spanning the evaluator's features —
// sequence extraction, regvar bindings, pattern references, stratified
// negation, specialization, crawling — each paired with its fetcher.
func parallelFixtures() map[string]struct {
	src   string
	fetch MapFetcher
} {
	return map[string]struct {
		src   string
		fetch MapFetcher
	}{
		"ebay": {
			src:   ebayProgram,
			fetch: MapFetcher{"www.ebay.com/": htmlparse.Parse(ebayPage())},
		},
		"stratified": {
			src: `
cell(S, X) <- document("d", S), subelem(S, ?.td, X)
price(S, X) <- cell(S, X), contains(X, (?.b, [(class, cur, exact)]), _)
nonprice(S, X) <- cell(S, X), not price(_, X)
`,
			fetch: MapFetcher{"d": htmlparse.Parse(`<table><tr>
<td><b class="cur">$</b> 10</td>
<td>just text</td>
<td><b class="cur">$</b> 20</td>
</tr></table>`)},
		},
		"crawl": {
			src: `
page(S, X) <- document("p1", S), subelem(S, .body, X)
nextlink(S, X) <- page(_, S), subelem(S, ?.a, X)
nexturl(S, X) <- nextlink(_, S), subatt(S, href, X)
nextdoc(S, X) <- nexturl(_, S), getDocument(S, X)
page(S, X) <- nextdoc(_, S), subelem(S, .body, X)
title(S, X) <- page(_, S), subelem(S, ?.h1, X)
`,
			fetch: MapFetcher{
				"p1": htmlparse.Parse(`<body><h1>One</h1><a href="p2">next</a></body>`),
				"p2": htmlparse.Parse(`<body><h1>Two</h1><a href="p3">next</a></body>`),
				"p3": htmlparse.Parse(`<body><h1>Three</h1></body>`),
			},
		},
	}
}

// TestParallelMatchesSerial pins the tentpole determinism claim: the
// instance base — ids, parents, dedup decisions, everything Dump
// serializes — is byte-identical whether rule application runs serially
// or wave-parallel, interpreted or compiled. Run with -race, this also
// stresses the concurrent candidate-generation phase.
func TestParallelMatchesSerial(t *testing.T) {
	concs := []int{1, 2, 3, runtime.GOMAXPROCS(0)}
	for name, fx := range parallelFixtures() {
		prog := MustParse(fx.src)
		for _, compiled := range []bool{false, true} {
			var want string
			for _, conc := range concs {
				ev := NewEvaluator(fx.fetch)
				ev.MaxConcurrency = conc
				var base *pib.Base
				var err error
				if compiled {
					base, err = ev.RunCompiled(MustCompile(prog))
				} else {
					base, err = ev.Run(prog)
				}
				if err != nil {
					t.Fatalf("%s compiled=%v conc=%d: %v", name, compiled, conc, err)
				}
				if base.Count() == 0 {
					t.Fatalf("%s compiled=%v conc=%d: empty base", name, compiled, conc)
				}
				got := base.Dump()
				if conc == concs[0] {
					want = got
				} else if got != want {
					t.Errorf("%s compiled=%v conc=%d: base diverges from serial evaluation:\n--- serial ---\n%s--- conc=%d ---\n%s",
						name, compiled, conc, want, conc, got)
				}
			}
		}
	}
}

// TestPlanWaves checks the independence analysis on the Figure 5
// program: the entry rule is a sequential singleton, record waits for
// tableseq, itemdes and price share a wave (both only read record),
// bids must wait for price (pattern reference), and currency may join
// bids' wave (it reads price, which that wave does not write).
func TestPlanWaves(t *testing.T) {
	prog := MustParse(ebayProgram)
	st, err := Stratify(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 1 {
		t.Fatalf("strata = %d, want 1", len(st))
	}
	var got [][]string
	var seq []bool
	for _, w := range planWaves(st[0]) {
		var heads []string
		for _, r := range w.rules {
			heads = append(heads, r.Head)
		}
		got = append(got, heads)
		seq = append(seq, w.sequential)
	}
	want := [][]string{{"tableseq"}, {"record"}, {"itemdes", "price"}, {"bids", "currency"}}
	if len(got) != len(want) {
		t.Fatalf("waves = %v, want %v", got, want)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("wave %d = %v, want %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("wave %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
	if !seq[0] {
		t.Error("entry rule wave should be sequential (it drives the crawl frontier)")
	}
	for i := 1; i < len(seq); i++ {
		if seq[i] {
			t.Errorf("wave %d (%v) should be parallel-eligible", i, got[i])
		}
	}
}

// TestSelfRecursiveRuleIsSequential guards the subtle case: a rule
// reading its own head must interleave generation and commit per
// parent, so the planner must pin it to the serial path.
func TestSelfRecursiveRuleIsSequential(t *testing.T) {
	prog := MustParse(`
item(S, X) <- document("d", S), subelem(S, ?.li, X)
item(S, X) <- item(_, S), subelem(S, ?.li, X)
`)
	st, err := Stratify(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range planWaves(st[0]) {
		for _, r := range w.rules {
			if r.DocURL == "" && r.Head == "item" && !w.sequential {
				t.Fatal("self-recursive rule placed in a parallel wave")
			}
		}
	}
}
