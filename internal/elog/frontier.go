package elog

import (
	"runtime"
	"sync"

	"repro/internal/dom"
)

// fetchResult is one page's in-flight (or finished) retrieval.
type fetchResult struct {
	done chan struct{}
	tree *dom.Tree
	err  error
}

// frontier is the concurrent crawl frontier of one evaluator run: URLs
// are announced with prefetch as soon as rule application discovers
// them, a bounded worker pool fetches, parses, and warms the documents
// in parallel, and the evaluation goroutine consumes them with get in
// its own deterministic order — so the pattern instance base comes out
// identical to a serial crawl while the fetch latencies overlap.
type frontier struct {
	fetch Fetcher
	sem   chan struct{}
	wg    sync.WaitGroup
	// budget caps how many distinct URLs speculative prefetches may
	// schedule — the evaluator's crawl limit, so a run aborted at
	// MaxDocuments never has more than that many fetches in flight.
	// Demand-driven gets are exempt: the evaluator accounts those
	// against the crawl limit itself before asking.
	budget int
	// warmFull selects how much of each tree the worker warms: the
	// compiled matcher reads bitsets and fingerprints, the interpreter
	// only the pre/post index.
	warmFull bool

	mu    sync.Mutex
	pages map[string]*fetchResult
}

// newFrontier returns a frontier fetching at most conc pages at once
// (conc <= 0 means GOMAXPROCS) and speculatively scheduling at most
// budget distinct URLs.
func newFrontier(f Fetcher, conc, budget int, warmFull bool) *frontier {
	if conc <= 0 {
		conc = runtime.GOMAXPROCS(0)
	}
	return &frontier{fetch: f, sem: make(chan struct{}, conc), budget: budget,
		warmFull: warmFull, pages: map[string]*fetchResult{}}
}

// prefetch speculatively schedules url for retrieval, within the
// frontier's budget; a URL already scheduled is not fetched twice.
func (fr *frontier) prefetch(url string) { fr.schedule(url, false) }

func (fr *frontier) schedule(url string, force bool) *fetchResult {
	fr.mu.Lock()
	if res, ok := fr.pages[url]; ok {
		// Failures are not served from cache: the seed interpreter
		// attempted a fresh fetch on every consumption, so transient
		// errors (an HTTP fetcher's one-off timeout) could heal across
		// fixpoint iterations. A forced get on a completed failure
		// therefore retries; successes stay cached for the run.
		retry := false
		if force {
			select {
			case <-res.done:
				retry = res.err != nil
			default:
			}
		}
		if !retry {
			fr.mu.Unlock()
			return res
		}
	} else if !force && len(fr.pages) >= fr.budget {
		fr.mu.Unlock()
		return nil
	}
	res := &fetchResult{done: make(chan struct{})}
	fr.pages[url] = res
	fr.mu.Unlock()
	fr.wg.Add(1)
	go func() {
		defer fr.wg.Done()
		fr.sem <- struct{}{}
		defer func() { <-fr.sem }()
		t, err := fr.fetch.Fetch(url)
		if err == nil {
			// Build the lazy structures on the worker, off the
			// evaluation goroutine's critical path; the published tree
			// is then read-only for the rest of the run.
			if fr.warmFull {
				t.Warm()
			} else {
				t.WarmIndex()
			}
		}
		res.tree, res.err = t, err
		close(res.done)
	}()
	return res
}

// get blocks until url's page is available, scheduling the fetch if it
// was never announced (or was announced beyond the prefetch budget).
func (fr *frontier) get(url string) (*dom.Tree, error) {
	res := fr.schedule(url, true)
	<-res.done
	return res.tree, res.err
}

// drain waits for every outstanding fetch, so a run never leaves
// workers touching the Fetcher after it returns.
func (fr *frontier) drain() { fr.wg.Wait() }
