package elog

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/htmlparse"
)

// fleetProgram stamps the same wrapper template the way a monitoring
// fleet does: identical extraction paths, a per-wrapper document URL.
func fleetProgram(url string) *Program {
	return MustParse(fmt.Sprintf(`
page(S, X) <- document(%q, S), subelem(S, .body, X)
row(S, X) <- page(_, S), subelem(S, (?.tr, [(class, row, exact)]), X)
name(S, X) <- row(_, S), subelem(S, (?.td, [(class, name, exact)]), X)
price(S, X) <- row(_, S), subelem(S, (?.td, [(class, price, exact)]), X)
`, url))
}

func fleetPage(rows int) string {
	var b strings.Builder
	b.WriteString("<html><body><table>")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&b, `<tr class="row"><td class="name">item %d</td><td class="price">$ %d</td></tr>`, i, i*3)
	}
	b.WriteString("</table></body></html>")
	return b.String()
}

// TestBatchedMatchesUnbatched is the batching differential: a fleet of
// independently compiled wrappers over one shared page produces
// byte-identical instance bases with and without a shared MatchCache.
func TestBatchedMatchesUnbatched(t *testing.T) {
	const wrappers = 8
	fetch := MapFetcher{"fleet": htmlparse.Parse(fleetPage(40))}
	run := func(mc *MatchCache) []string {
		var dumps []string
		for i := 0; i < wrappers; i++ {
			ev := NewEvaluator(fetch)
			ev.Shared = mc
			base, err := ev.RunCompiled(MustCompile(fleetProgram("fleet")))
			if err != nil {
				t.Fatal(err)
			}
			dumps = append(dumps, base.Dump())
		}
		return dumps
	}
	plain := run(nil)
	mc := NewMatchCache()
	batched := run(mc)
	for i := range plain {
		if plain[i] != batched[i] {
			t.Errorf("wrapper %d: batched base diverges from unbatched:\n--- unbatched ---\n%s--- batched ---\n%s",
				i, plain[i], batched[i])
		}
	}
	hits, misses := mc.Stats()
	if hits == 0 {
		t.Fatalf("shared cache never hit (hits=%d misses=%d): fleet wrappers are not sharing matches", hits, misses)
	}
	// Only the first wrapper should compute matches; the remaining
	// wrappers' lookups must be answered by the shared cache.
	if hits < misses*(wrappers-2) {
		t.Errorf("shared cache hits=%d misses=%d: expected the fleet to be almost entirely hits", hits, misses)
	}
}

// TestMatchCacheSignatureIsolation: wrappers whose paths differ must
// not see each other's results even on the same document.
func TestMatchCacheSignatureIsolation(t *testing.T) {
	fetch := MapFetcher{"fleet": htmlparse.Parse(fleetPage(5))}
	mc := NewMatchCache()
	runOne := func(src string, pattern string) int {
		ev := NewEvaluator(fetch)
		ev.Shared = mc
		base, err := ev.RunCompiled(MustCompile(MustParse(src)))
		if err != nil {
			t.Fatal(err)
		}
		return len(base.Instances(pattern))
	}
	names := runOne(`
page(S, X) <- document("fleet", S), subelem(S, .body, X)
cell(S, X) <- page(_, S), subelem(S, (?.td, [(class, name, exact)]), X)
`, "cell")
	prices := runOne(`
page(S, X) <- document("fleet", S), subelem(S, .body, X)
cell(S, X) <- page(_, S), subelem(S, (?.td, [(class, price, exact)]), X)
`, "cell")
	if names != 5 || prices != 5 {
		t.Fatalf("names=%d prices=%d, want 5 and 5 (signature collision across distinct paths?)", names, prices)
	}
}

// TestMatchCacheAttach pins the batch-size accounting.
func TestMatchCacheAttach(t *testing.T) {
	mc := NewMatchCache()
	if got := mc.Attached(); got != 0 {
		t.Fatalf("fresh cache attached = %d", got)
	}
	mc.Attach()
	mc.Attach()
	if got := mc.Attached(); got != 2 {
		t.Fatalf("attached = %d, want 2", got)
	}
	mc.Detach()
	if got := mc.Attached(); got != 1 {
		t.Fatalf("after detach attached = %d, want 1", got)
	}
	r := mc.Report()
	if r.Attached != 1 {
		t.Fatalf("report attached = %d, want 1", r.Attached)
	}
}
