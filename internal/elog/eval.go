package elog

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/concepts"
	"repro/internal/dom"
	"repro/internal/pib"
	"repro/internal/strata"
)

// errCrawlLimit marks the crawl guard tripping; unlike a dangling link,
// it aborts evaluation.
var errCrawlLimit = errors.New("elog: crawl limit")

// Fetcher resolves URLs to parsed HTML documents. The simulated web of
// internal/web provides one; tests use in-memory maps.
//
// The evaluator's crawl frontier calls Fetch from multiple goroutines,
// so fetchers must be safe for concurrent use (internal/web is; a bare
// MapFetcher is, as map reads).
type Fetcher interface {
	Fetch(url string) (*dom.Tree, error)
}

// FetcherFunc adapts a function to the Fetcher interface.
type FetcherFunc func(url string) (*dom.Tree, error)

// Fetch implements Fetcher.
func (f FetcherFunc) Fetch(url string) (*dom.Tree, error) { return f(url) }

// MapFetcher serves documents from an in-memory map.
type MapFetcher map[string]*dom.Tree

// Fetch implements Fetcher.
func (m MapFetcher) Fetch(url string) (*dom.Tree, error) {
	if t, ok := m[url]; ok {
		return t, nil
	}
	return nil, fmt.Errorf("elog: no document at %q", url)
}

// Evaluator runs Elog programs. The zero value is not usable; use
// NewEvaluator.
type Evaluator struct {
	// Fetcher resolves document(url, S) atoms and getDocument crawling.
	Fetcher Fetcher
	// Concepts provides the concept conditions; defaults to the
	// built-in base.
	Concepts *concepts.Base
	// MaxDocuments bounds crawling (default 64).
	MaxDocuments int
	// MaxInstances bounds the pattern instance base (default 100000),
	// guarding against runaway recursive wrapping.
	MaxInstances int
	// MaxConcurrency bounds how many documents the crawl frontier
	// fetches and parses in parallel, and how many rule-application
	// jobs run concurrently within a stratum (default GOMAXPROCS).
	// Candidate generation for provably independent rules overlaps;
	// instances are committed sequentially in rule order, so the
	// resulting base is bit-identical to a fully serial evaluation at
	// any concurrency level.
	MaxConcurrency int
	// Shared, when set, consults and feeds a fleet-shared match cache
	// (see MatchCache): compiled pattern matches are then reused across
	// every program whose evaluator shares the cache, keyed by path
	// signature and document fingerprint. Output is unchanged — only the
	// matching work is shared.
	Shared *MatchCache
	// Incremental enables subtree-fingerprint match reuse: on a match
	// miss (a changed document), context roots whose subtree content was
	// seen before — in a previous version of the page, or in another
	// wrapper's run via Shared — resolve their candidate sets from the
	// content-addressed subtree cache, and only the dirty regions run
	// the bitset matcher. The instance base is bit-identical to a full
	// evaluation; only the matching work shrinks to the changed regions.
	// Documents whose NodeIDs are not in document order (dom.DocOrdered)
	// fall back to full matching automatically.
	Incremental bool
}

// NewEvaluator returns an evaluator with the built-in concept base.
func NewEvaluator(f Fetcher) *Evaluator {
	return &Evaluator{Fetcher: f, Concepts: concepts.NewBase(), MaxDocuments: 64, MaxInstances: 100000}
}

// Run evaluates the program: document(url, S) entry rules fetch their
// pages through the Fetcher, patterns are computed to fixpoint
// (supporting recursive wrapping and crawling), and the resulting
// pattern instance base is returned. Documents are fetched through a
// concurrent crawl frontier (see MaxConcurrency), but the instance
// base is built in the same deterministic order as a serial crawl.
//
// A single Elog program "can be used for continuous wrapping of changing
// pages or to wrap several HTML pages of similar structure"
// (Section 3.1) — Run is stateless; call it again to re-wrap.
func (ev *Evaluator) Run(p *Program) (*pib.Base, error) { return ev.run(p, nil) }

// RunCompiled evaluates a compiled program: pattern matching runs on
// the bitset kernel and is memoized per document fingerprint, so
// re-wrapping unchanged pages skips the tree walks entirely. The
// instance base is identical to Run's on the same inputs.
func (ev *Evaluator) RunCompiled(cp *CompiledProgram) (*pib.Base, error) {
	return ev.run(cp.Program, cp)
}

// runner is the state of one evaluation: the instance base under
// construction, the crawl bookkeeping, and the optional compiled form.
type runner struct {
	ev   *Evaluator
	cp   *CompiledProgram // nil for interpreted execution
	base *pib.Base
	fr   *frontier
	docs map[string]*pib.Instance // fetched documents by URL
	// announced marks parent instances whose crawl URL was already
	// handed to the frontier, so fixpoint re-iterations do not re-walk
	// their text content.
	announced map[*pib.Instance]bool
	// jobs is runWave's scratch job list, reused across waves and
	// fixpoint passes of this evaluation.
	jobs []waveJob
}

// waveJob is one (rule, parent) candidate-generation unit of a wave.
type waveJob struct {
	rule     *Rule
	parent   *pib.Instance
	accepted []candidate
	err      error
}

func (ev *Evaluator) run(p *Program, cp *CompiledProgram) (*pib.Base, error) {
	r := &runner{ev: ev, cp: cp, base: pib.NewBase(),
		docs: map[string]*pib.Instance{}, announced: map[*pib.Instance]bool{}}
	r.fr = newFrontier(ev.Fetcher, ev.MaxConcurrency, ev.max(ev.MaxDocuments, 64), cp != nil)
	defer r.fr.drain()

	// Elog supports stratified negation (Section 3.3): rules with
	// negated pattern references must see the referenced pattern fully
	// computed. Group the rules into strata, then run each stratum's
	// rules to fixpoint (rules within a stratum may feed each other —
	// pattern references, recursive wrapping).
	var st [][]*Rule
	if cp != nil {
		st = cp.strata
	} else {
		var err error
		st, err = Stratify(p)
		if err != nil {
			return r.base, err
		}
	}

	// Seed the frontier with every entry page: they are all fetched
	// eventually, so announcing them up front overlaps their fetch and
	// parse latencies.
	for _, rule := range p.Rules {
		if rule.DocURL != "" {
			r.fr.prefetch(rule.DocURL)
		}
	}

	for i, rules := range st {
		var waves []wave
		if cp != nil {
			waves = cp.waves[i]
		} else {
			waves = planWaves(rules)
		}
		if err := r.runStratum(waves); err != nil {
			return r.base, err
		}
	}
	return r.base, nil
}

// wave is a run of consecutive stratum rules whose candidate-generation
// phases are mutually independent: no member reads (via its parent
// pattern or a pattern reference) a pattern any member writes.
// Sequential waves are singletons that must interleave generation and
// commit exactly like the serial evaluator: document/crawl rules (they
// mutate the crawl bookkeeping) and self-recursive rules (a later
// parent's generation may read an earlier parent's commits).
type wave struct {
	rules      []*Rule
	sequential bool
}

// ruleReads returns the patterns whose instance sets candidate
// generation for the rule consults: the parent pattern and every
// pattern reference (negated references point to lower strata and so
// can never conflict within one, but listing them is harmless).
func ruleReads(rule *Rule) []string {
	var out []string
	if rule.DocURL == "" {
		out = append(out, rule.Parent)
	}
	for _, c := range rule.Conds {
		if ref, ok := c.(PatternRefCond); ok {
			out = append(out, ref.Pattern)
		}
	}
	return out
}

// ruleSequential reports whether the rule must run on the interleaved
// serial path: entry rules and getDocument rules drive the crawl
// frontier and mutate the document table, and a rule that reads its own
// head must see each parent's commits before the next parent's
// generation, exactly as the serial evaluator does.
func ruleSequential(rule *Rule) bool {
	if rule.DocURL != "" {
		return true
	}
	if rule.Extract != nil && rule.Extract.Kind == GetDocument {
		return true
	}
	for _, p := range ruleReads(rule) {
		if p == rule.Head {
			return true
		}
	}
	return false
}

// planWaves greedily partitions a stratum's rule list, preserving rule
// order, into waves safe for concurrent candidate generation. A rule
// opens a new wave when it reads a pattern some earlier member of the
// current wave writes (it must observe those commits first) or when it
// needs the serial path.
func planWaves(rules []*Rule) []wave {
	var out []wave
	var cur []*Rule
	heads := map[string]bool{}
	flush := func() {
		if len(cur) > 0 {
			out = append(out, wave{rules: cur})
			cur = nil
			heads = map[string]bool{}
		}
	}
	for _, rule := range rules {
		if ruleSequential(rule) {
			flush()
			out = append(out, wave{rules: []*Rule{rule}, sequential: true})
			continue
		}
		for _, p := range ruleReads(rule) {
			if heads[p] {
				flush()
				break
			}
		}
		cur = append(cur, rule)
		heads[rule.Head] = true
	}
	flush()
	return out
}

// runStratum evaluates one stratum's rules to fixpoint. The rule list
// is planned into waves once (at Compile for compiled programs); each
// fixpoint pass walks the waves in rule order, so at MaxConcurrency 1 —
// or whenever every wave is a singleton — the evaluation order is
// exactly the serial one.
func (r *runner) runStratum(waves []wave) error {
	conc := r.ev.MaxConcurrency
	if conc <= 0 {
		conc = runtime.GOMAXPROCS(0)
	}
	for {
		changed := false
		for _, w := range waves {
			wc, err := r.runWave(w, conc)
			if wc {
				changed = true
			}
			if err != nil {
				return err
			}
		}
		if !changed {
			break
		}
	}
	return nil
}

// runWave evaluates one wave: candidate generation runs concurrently
// over every (rule, parent) job, then instances are committed on the
// evaluation goroutine in job order. Because no job's generation reads
// a pattern the wave writes, every job sees the same base it would have
// seen serially, and the ordered commit assigns the same instance ids —
// the resulting base is bit-identical to serial evaluation.
func (r *runner) runWave(w wave, conc int) (bool, error) {
	if w.sequential || conc <= 1 {
		return r.runSerial(w.rules)
	}
	jobs := r.jobs[:0]
	for _, rule := range w.rules {
		for _, s := range r.base.Instances(rule.Parent) {
			jobs = append(jobs, waveJob{rule: rule, parent: s})
		}
	}
	r.jobs = jobs
	switch {
	case len(jobs) == 0:
		return false, nil
	case len(jobs) == 1:
		return r.runSerial(w.rules)
	}
	if conc > len(jobs) {
		conc = len(jobs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < conc; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= len(jobs) {
					return
				}
				jb := &jobs[j]
				jb.accepted, jb.err = r.ruleCandidates(jb.rule, jb.parent)
			}
		}()
	}
	wg.Wait()
	changed := false
	for j := range jobs {
		jb := &jobs[j]
		if jb.err != nil {
			// Generation has no side effects, so discarding the later
			// jobs' candidates leaves the base exactly as the serial
			// evaluator would have: committed up to the failing job.
			return changed, jb.err
		}
		if r.commit(jb.rule, jb.parent, jb.accepted) {
			changed = true
		}
		if r.base.Count() > r.ev.max(r.ev.MaxInstances, 100000) {
			return changed, fmt.Errorf("elog: instance limit exceeded (recursive wrapper runaway?)")
		}
	}
	return changed, nil
}

// runSerial is the seed evaluator's interleaved loop: one rule at a
// time, one parent at a time, committing before the next generation.
// Crawl-driving and self-recursive rules require it; it is also the
// whole story at MaxConcurrency 1.
func (r *runner) runSerial(rules []*Rule) (bool, error) {
	changed := false
	for _, rule := range rules {
		var parents []*pib.Instance
		if rule.DocURL != "" {
			in, err := r.fetchDoc(rule.DocURL)
			if err != nil {
				return changed, fmt.Errorf("elog: rule for %s: %w", rule.Head, err)
			}
			parents = []*pib.Instance{in}
		} else {
			parents = r.base.Instances(rule.Parent)
		}
		if rule.Extract != nil && rule.Extract.Kind == GetDocument {
			// Open the crawl frontier: every URL this rule is
			// about to request is known before the first fetch,
			// so the pages download in parallel while rule
			// application consumes them sequentially in stable
			// order. Each parent is announced once; fixpoint
			// re-iterations skip the text walk.
			for _, s := range parents {
				if r.announced[s] {
					continue
				}
				r.announced[s] = true
				if url, ok := crawlURL(s); ok {
					r.fr.prefetch(url)
				}
			}
		}
		for _, s := range parents {
			added, err := r.applyRule(rule, s)
			if err != nil {
				return changed, err
			}
			if added {
				changed = true
			}
			if r.base.Count() > r.ev.max(r.ev.MaxInstances, 100000) {
				return changed, fmt.Errorf("elog: instance limit exceeded (recursive wrapper runaway?)")
			}
		}
	}
	return changed, nil
}

// fetchDoc returns the document instance for url, consuming the crawl
// frontier. It runs on the evaluation goroutine only, so instance ids
// and the crawl limit are accounted in deterministic request order.
func (r *runner) fetchDoc(url string) (*pib.Instance, error) {
	if in, ok := r.docs[url]; ok {
		return in, nil
	}
	if len(r.docs) >= r.ev.max(r.ev.MaxDocuments, 64) {
		return nil, fmt.Errorf("%w of %d documents exceeded", errCrawlLimit, r.ev.max(r.ev.MaxDocuments, 64))
	}
	t, err := r.fr.get(url)
	if err != nil {
		return nil, err
	}
	in := &pib.Instance{Pattern: "document", Kind: pib.DocumentInstance,
		Doc: t, URL: url, Nodes: []dom.NodeID{t.Root()}}
	in, _ = r.base.Add(in)
	r.docs[url] = in
	return in, nil
}

// match dispatches an extraction-path match to the compiled bitset
// matcher when a compiled form is present, else to the interpreter.
func (r *runner) match(e *EPD, t *dom.Tree, roots []dom.NodeID, asChildren bool) []epdMatch {
	if r.cp != nil {
		if ce := r.cp.epds[e]; ce != nil {
			return ce.match(r.cp, r.ev.Shared, t, roots, asChildren, false, r.ev.Incremental)
		}
	}
	return e.Match(t, roots, asChildren)
}

// matchDeep is match with the implicit leading descent of context and
// internal conditions.
func (r *runner) matchDeep(e *EPD, t *dom.Tree, roots []dom.NodeID, asChildren bool) []epdMatch {
	if r.cp != nil {
		if ce := r.cp.epds[e]; ce != nil {
			return ce.match(r.cp, r.ev.Shared, t, roots, asChildren, true, r.ev.Incremental)
		}
	}
	return e.MatchDeep(t, roots, asChildren)
}

// Stratify partitions the program's rules into strata such that negated
// pattern references only point to strictly lower strata; positive
// dependencies (parents, positive references) stay within or below. It
// returns an error for programs with negation cycles, which have no
// stratified semantics.
//
// The stratum numbers come from the shared solver in internal/strata
// (also used by the generic datalog engine): a rule's head depends
// positively on its parent pattern and on each positive pattern
// reference, and negatively on each negated pattern reference.
func Stratify(p *Program) ([][]*Rule, error) {
	deps := make([]strata.Rule, 0, len(p.Rules))
	for _, r := range p.Rules {
		sr := strata.Rule{Head: r.Head}
		if r.DocURL == "" {
			sr.Deps = append(sr.Deps, strata.Dep{Pred: r.Parent})
		}
		for _, c := range r.Conds {
			if ref, ok := c.(PatternRefCond); ok {
				sr.Deps = append(sr.Deps, strata.Dep{Pred: ref.Pattern, Negated: ref.Negated})
			}
		}
		deps = append(deps, sr)
	}
	stratum, err := strata.Solve(deps)
	if err != nil {
		return nil, fmt.Errorf("elog: program is not stratifiable (cycle through a negated pattern reference)")
	}
	out := make([][]*Rule, strata.Height(stratum))
	for _, r := range p.Rules {
		out[stratum[r.Head]] = append(out[stratum[r.Head]], r)
	}
	return out, nil
}

func (ev *Evaluator) max(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}

// binding maps Elog variables to values: "S", "X" plus regvar and
// condition-bound variables. Rules bind a handful of variables, so the
// entries live in small slices scanned linearly — in the per-candidate
// hot path this beats allocating two maps per candidate and two more
// per backtracking branch by a wide margin (the E18 allocs/op budget).
type binding struct {
	// node-valued variables.
	nodes []nodeBind
	// string-valued variables.
	strs []strBind
}

type nodeBind struct {
	name string
	node dom.NodeID
}

type strBind struct {
	name, val string
}

// branch returns a child binding sharing this one's entries. The
// capacity caps force any append in the child to reallocate, so sibling
// backtracking branches never observe each other's bindings.
func (b *binding) branch() binding {
	return binding{
		nodes: b.nodes[:len(b.nodes):len(b.nodes)],
		strs:  b.strs[:len(b.strs):len(b.strs)],
	}
}

// setNode binds name to a node, replacing an existing binding
// copy-on-write (the backing array may be shared with other branches).
func (b *binding) setNode(name string, n dom.NodeID) {
	for i := range b.nodes {
		if b.nodes[i].name == name {
			nodes := make([]nodeBind, len(b.nodes))
			copy(nodes, b.nodes)
			nodes[i].node = n
			b.nodes = nodes
			return
		}
	}
	b.nodes = append(b.nodes, nodeBind{name, n})
}

// setStr binds name to a string, replacing copy-on-write like setNode.
func (b *binding) setStr(name, val string) {
	for i := range b.strs {
		if b.strs[i].name == name {
			strs := make([]strBind, len(b.strs))
			copy(strs, b.strs)
			strs[i].val = val
			b.strs = strs
			return
		}
	}
	b.strs = append(b.strs, strBind{name, val})
}

func (b *binding) node(name string) (dom.NodeID, bool) {
	for i := range b.nodes {
		if b.nodes[i].name == name {
			return b.nodes[i].node, true
		}
	}
	return dom.Nil, false
}

func (b *binding) str(name string) (string, bool) {
	for i := range b.strs {
		if b.strs[i].name == name {
			return b.strs[i].val, true
		}
	}
	return "", false
}

// candidate is a prospective instance produced by the extraction atom.
type candidate struct {
	kind  pib.Kind
	nodes []dom.NodeID
	text  string
	doc   *dom.Tree
	url   string
	binds map[string]string
}

// applyRule evaluates one rule for one parent instance; it returns
// whether any new instance was added.
func (r *runner) applyRule(rule *Rule, s *pib.Instance) (bool, error) {
	accepted, err := r.ruleCandidates(rule, s)
	if err != nil {
		return false, err
	}
	return r.commit(rule, s, accepted), nil
}

// ruleCandidates is the generation phase of one (rule, parent) job:
// extraction, condition filtering, and the subsq/firstsubtree
// post-filters. It only reads evaluation state (the instance base, the
// concept base, warmed document trees, memoized match caches), never
// writes it, so independent jobs run concurrently — runWave relies on
// this. Crawl-driving rules (getDocument, document entry) are the
// exception and never reach here concurrently: ruleSequential pins them
// to the serial path because their extraction fetches documents.
func (r *runner) ruleCandidates(rule *Rule, s *pib.Instance) ([]candidate, error) {
	cands, err := r.extract(rule, s)
	if err != nil {
		return nil, err
	}
	var accepted []candidate
	for _, c := range cands {
		var b binding
		b.nodes = make([]nodeBind, 0, 2)
		if len(c.nodes) > 0 {
			b.nodes = append(b.nodes, nodeBind{"X", c.nodes[0]})
		}
		if len(s.Nodes) > 0 {
			b.nodes = append(b.nodes, nodeBind{"S", s.Nodes[0]})
		}
		for k, v := range c.binds {
			b.setStr(k, v)
		}
		ok, err := r.conditions(rule, s, c, b, 0)
		if err != nil {
			return nil, err
		}
		if ok {
			accepted = append(accepted, c)
		}
	}
	if rule.Extract != nil && rule.Extract.Kind == Subsq {
		accepted = maximalOnly(accepted)
	}
	for _, c := range rule.Conds {
		if _, ok := c.(FirstCond); ok {
			accepted = firstOnly(accepted)
			break
		}
	}
	return accepted, nil
}

// commit adds the accepted candidates of one (rule, parent) job to the
// instance base. It runs on the evaluation goroutine only, in job
// order, so instance ids and dedup decisions are deterministic.
func (r *runner) commit(rule *Rule, s *pib.Instance, accepted []candidate) bool {
	changed := false
	for _, c := range accepted {
		inst := &pib.Instance{
			Pattern: rule.Head, Kind: c.kind, Doc: c.doc, URL: c.url,
			Nodes: c.nodes, Text: c.text, Parent: s,
		}
		if _, added := r.base.Add(inst); added {
			changed = true
		}
	}
	return changed
}

// firstOnly keeps the candidate earliest in document order — the
// firstsubtree internal condition.
func firstOnly(cands []candidate) []candidate {
	best := -1
	bestPre := 1 << 30
	for i, c := range cands {
		if len(c.nodes) == 0 {
			continue
		}
		if p := c.doc.Pre(c.nodes[0]); p < bestPre {
			best, bestPre = i, p
		}
	}
	if best < 0 {
		if len(cands) > 0 {
			return cands[:1]
		}
		return nil
	}
	return cands[best : best+1]
}

// maximalOnly keeps, among accepted subsq candidates, only those whose
// node range is not strictly contained in another accepted candidate's
// range ("the largest sequence").
func maximalOnly(cands []candidate) []candidate {
	var out []candidate
	for i, c := range cands {
		contained := false
		for j, d := range cands {
			if i == j || len(c.nodes) == 0 || len(d.nodes) == 0 {
				continue
			}
			if d.nodes[0] <= c.nodes[0] && c.nodes[len(c.nodes)-1] <= d.nodes[len(d.nodes)-1] &&
				len(d.nodes) > len(c.nodes) {
				contained = true
				break
			}
		}
		if !contained {
			out = append(out, c)
		}
	}
	return out
}

// extract produces the candidate instances of a rule for parent s.
func (r *runner) extract(rule *Rule, s *pib.Instance) ([]candidate, error) {
	if rule.Specialize {
		// The candidate is the parent instance itself.
		return []candidate{{kind: s.Kind, nodes: s.Nodes, text: s.Text, doc: s.Doc, url: s.URL}}, nil
	}
	e := rule.Extract
	switch e.Kind {
	case Subelem:
		if len(s.Nodes) == 0 {
			return nil, nil
		}
		var out []candidate
		for _, m := range r.match(e.EPD, s.Doc, s.Nodes, s.Kind == pib.SequenceInstance) {
			out = append(out, candidate{kind: pib.NodeInstance, nodes: []dom.NodeID{m.node}, doc: s.Doc, url: s.URL, binds: m.binds})
		}
		return out, nil
	case Subsq:
		if len(s.Nodes) == 0 {
			return nil, nil
		}
		var out []candidate
		for _, fm := range r.match(e.From, s.Doc, s.Nodes, s.Kind == pib.SequenceInstance) {
			seqs := candidateSequences(s.Doc, fm.node, e.Start, e.End)
			for _, seq := range seqs {
				out = append(out, candidate{kind: pib.SequenceInstance, nodes: seq, doc: s.Doc, url: s.URL, binds: fm.binds})
			}
		}
		return out, nil
	case Subtext:
		text := s.TextContent()
		var out []candidate
		for _, m := range e.SPD.Match(text) {
			out = append(out, candidate{kind: pib.StringInstance, text: m.text, doc: s.Doc, url: s.URL, binds: m.binds})
		}
		return out, nil
	case Subatt:
		if len(s.Nodes) == 0 {
			return nil, nil
		}
		var out []candidate
		for _, n := range s.Nodes {
			if v, ok := s.Doc.Attr(n, e.Attr); ok {
				out = append(out, candidate{kind: pib.StringInstance, text: v, doc: s.Doc, url: s.URL})
			}
		}
		return out, nil
	case GetDocument:
		url, ok := crawlURL(s)
		if !ok {
			return nil, nil
		}
		in, err := r.fetchDoc(url)
		if err != nil {
			// A cancelled context must abort the whole evaluation, not
			// degrade every remaining crawl step into a "dangling link".
			if errors.Is(err, errCrawlLimit) ||
				errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, err
			}
			// A dangling link is not a wrapper failure; crawling skips it.
			return nil, nil
		}
		return []candidate{{kind: pib.NodeInstance, nodes: in.Nodes, doc: in.Doc, url: in.URL}}, nil
	}
	return nil, fmt.Errorf("elog: unknown extraction kind")
}

// crawlURL derives the document URL a getDocument extraction for
// parent s requests: the instance's text resolved against its source
// document. The frontier announce loop and the consuming extraction
// share it, so prefetched keys always match what is consumed.
func crawlURL(s *pib.Instance) (string, bool) {
	url := strings.TrimSpace(s.TextContent())
	if url == "" {
		return "", false
	}
	return resolveURL(s.URL, url), true
}

// resolveURL resolves a possibly relative URL against the base document
// URL (string prefix resolution; the simulated web uses path-style
// URLs).
func resolveURL(base, ref string) string {
	if strings.Contains(ref, "://") || base == "" {
		return ref
	}
	if strings.HasPrefix(ref, "/") {
		// Keep scheme+host of base.
		if i := strings.Index(base, "://"); i >= 0 {
			if j := strings.IndexByte(base[i+3:], '/'); j >= 0 {
				return base[:i+3+j] + ref
			}
			return base + ref
		}
		return ref
	}
	// Relative: replace last path component.
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		return base[:i+1] + ref
	}
	return ref
}

// candidateSequences enumerates the runs of consecutive children of
// parent that start at a child self-matching start and end at a child
// self-matching end. All candidate ranges are produced; the rule's
// conditions select among them, and applyRule keeps only the largest
// surviving ones (Figure 5: "the (largest) sequence ... such that the
// first node immediately follows the list header and the final node is
// immediately followed by an hr").
func candidateSequences(t *dom.Tree, parent dom.NodeID, start, end *EPD) [][]dom.NodeID {
	children := t.Children(parent)
	var starts, ends []int
	for i, c := range children {
		if start.SelfMatch(t, c) {
			starts = append(starts, i)
		}
		if end.SelfMatch(t, c) {
			ends = append(ends, i)
		}
	}
	var out [][]dom.NodeID
	for _, i := range starts {
		for _, j := range ends {
			if j < i {
				continue
			}
			out = append(out, append([]dom.NodeID(nil), children[i:j+1]...))
		}
	}
	return out
}

// conditions evaluates rule.Conds[i:] under binding b with backtracking
// over the choices introduced by before/after/contains. Bindings pass
// by value; branches extend them copy-on-write (see binding.branch).
func (r *runner) conditions(rule *Rule, s *pib.Instance, c candidate, b binding, i int) (bool, error) {
	if i == len(rule.Conds) {
		return true, nil
	}
	cond := rule.Conds[i]
	switch cc := cond.(type) {
	case BeforeCond:
		// In a specialization rule head(S, X) <- parent(S, X), the rule
		// variable S denotes the parent instance's own parent — context
		// conditions scope there, not at the instance being specialized.
		scope := s
		if rule.Specialize && s.Parent != nil {
			scope = s.Parent
		}
		matches := r.contextMatches(scope, c, cc)
		if cc.Negated {
			if len(matches) > 0 {
				return false, nil
			}
			return r.conditions(rule, s, c, b, i+1)
		}
		for _, m := range matches {
			nb := b.branch()
			if cc.Var != "" {
				nb.setNode(cc.Var, m.node)
				nb.setStr(cc.Var, strings.TrimSpace(c.doc.ElementText(m.node)))
			}
			if cc.DistVar != "" {
				nb.setStr(cc.DistVar, fmt.Sprintf("%d", m.dist))
			}
			for k, v := range m.binds {
				nb.setStr(k, v)
			}
			ok, err := r.conditions(rule, s, c, nb, i+1)
			if err != nil || ok {
				return ok, err
			}
		}
		return false, nil
	case ContainsCond:
		if len(c.nodes) == 0 {
			if cc.Negated {
				return r.conditions(rule, s, c, b, i+1)
			}
			return false, nil
		}
		ms := r.matchDeep(cc.EPD, c.doc, c.nodes, c.kind == pib.SequenceInstance)
		if cc.Negated {
			if len(ms) > 0 {
				return false, nil
			}
			return r.conditions(rule, s, c, b, i+1)
		}
		for _, m := range ms {
			nb := b.branch()
			if cc.Var != "" {
				nb.setNode(cc.Var, m.node)
				nb.setStr(cc.Var, strings.TrimSpace(c.doc.ElementText(m.node)))
			}
			for k, v := range m.binds {
				nb.setStr(k, v)
			}
			ok, err := r.conditions(rule, s, c, nb, i+1)
			if err != nil || ok {
				return ok, err
			}
		}
		return false, nil
	case ConceptCond:
		val, ok := r.varText(&b, c, cc.Var)
		if !ok {
			return false, fmt.Errorf("elog: rule for %s: concept %s on unbound variable %s", rule.Head, cc.Concept, cc.Var)
		}
		holds := r.ev.Concepts.Holds(cc.Concept, val)
		if holds == cc.Negated {
			return false, nil
		}
		return r.conditions(rule, s, c, b, i+1)
	case CompareCond:
		l, ok1 := r.operandText(&b, c, cc.L)
		rv, ok2 := r.operandText(&b, c, cc.R)
		if !ok1 || !ok2 {
			return false, fmt.Errorf("elog: rule for %s: comparison on unbound variable", rule.Head)
		}
		holds, err := concepts.Compare(cc.Op, l, rv)
		if err != nil {
			return false, err
		}
		if !holds {
			return false, nil
		}
		return r.conditions(rule, s, c, b, i+1)
	case FirstCond:
		// Handled as a post-filter in applyRule; as an in-place
		// condition it is vacuously true.
		return r.conditions(rule, s, c, b, i+1)
	case PatternRefCond:
		n, ok := b.node(cc.Var)
		if !ok {
			return false, fmt.Errorf("elog: rule for %s: pattern reference %s(_, %s) on unbound variable", rule.Head, cc.Pattern, cc.Var)
		}
		found := false
		for _, in := range r.base.Instances(cc.Pattern) {
			if in.Doc == c.doc && len(in.Nodes) == 1 && in.Nodes[0] == n {
				found = true
				break
			}
		}
		if found == cc.Negated {
			return false, nil
		}
		return r.conditions(rule, s, c, b, i+1)
	}
	return false, fmt.Errorf("elog: unknown condition %T", cond)
}

// varText resolves a variable to text: string binding first, then the
// element text of a node binding, then the candidate itself for "X".
func (r *runner) varText(b *binding, c candidate, v string) (string, bool) {
	if s, ok := b.str(v); ok && s != "" {
		return s, true
	}
	if n, ok := b.node(v); ok {
		return strings.TrimSpace(c.doc.ElementText(n)), true
	}
	if v == "X" {
		if c.kind == pib.StringInstance {
			return c.text, true
		}
		var sb strings.Builder
		for _, n := range c.nodes {
			sb.WriteString(c.doc.ElementText(n))
		}
		return strings.TrimSpace(sb.String()), true
	}
	if s, ok := b.str(v); ok {
		return s, true
	}
	return "", false
}

func (r *runner) operandText(b *binding, c candidate, o Operand) (string, bool) {
	if o.Var != "" {
		return r.varText(b, c, o.Var)
	}
	return o.Literal, true
}

// ctxMatch is a before/after candidate: the matched node and its tree
// distance from the target instance.
type ctxMatch struct {
	node  dom.NodeID
	dist  int
	binds map[string]string
}

// contextMatches finds the elements matching the condition's EPD within
// the parent instance that lie before (or after) the target with the
// distance within tolerance. Distance is measured in document-order
// positions between the end of the earlier subtree and the start of the
// later one — 0 means immediately adjacent, as in Figure 5's
// before(..., 0, 0, ...) "immediately precedes" usage.
func (r *runner) contextMatches(s *pib.Instance, c candidate, cc BeforeCond) []ctxMatch {
	if len(s.Nodes) == 0 || len(c.nodes) == 0 {
		return nil
	}
	// The tree was warmed when fetched, so the order predicates below
	// are read-only lookups (an explicit Reindex here would re-walk the
	// tree on every call and race between concurrent runs).
	t := s.Doc
	xStart := t.Pre(c.nodes[0])
	lastNode := c.nodes[len(c.nodes)-1]
	xEnd := t.Pre(lastNode) + t.SubtreeSize(lastNode) // one past the end
	var out []ctxMatch
	for _, m := range r.matchDeep(cc.EPD, t, s.Nodes, s.Kind == pib.SequenceInstance) {
		yStart := t.Pre(m.node)
		yEnd := yStart + t.SubtreeSize(m.node)
		var dist int
		if cc.After {
			// m must start after the target ends.
			if yStart < xEnd {
				continue
			}
			dist = yStart - xEnd
		} else {
			// m's subtree must end before the target starts.
			if yEnd > xStart {
				continue
			}
			dist = xStart - yEnd
		}
		if dist < cc.DMin || dist > cc.DMax {
			continue
		}
		out = append(out, ctxMatch{node: m.node, dist: dist, binds: m.binds})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].dist < out[j].dist })
	return out
}
