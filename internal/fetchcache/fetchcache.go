// Package fetchcache is the shared fetch/document layer of the
// Transformation Server: a process-wide, size-bounded LRU of parsed
// dom.Trees with singleflight deduplication, so that N wrappers (and
// the elog crawl frontier) monitoring the same pages share one
// fetch+parse instead of doing the work N times.
//
// A Cache does not fetch by itself; it wraps existing elog.Fetchers:
//
//	cache := fetchcache.New(1024, time.Second)
//	fetcher := cache.Wrap(sim) // sim is any elog.Fetcher
//
// Every Fetch through the wrapped fetcher first consults the cache.
// Entries are keyed by URL and indexed with the parsed tree's content
// fingerprint (dom.Tree.Fingerprint): when a stale entry is
// revalidated and the refetched page's fingerprint is unchanged, the
// cache keeps serving the original *dom.Tree object, so downstream
// fingerprint-keyed caches (the wrapper poll cache, the compiled match
// caches) stay hot across the refresh. Concurrent fetches of the same
// URL coalesce into one upstream retrieval (singleflight); the
// followers block and share the leader's result. Trees are warmed
// (dom.Tree.Warm) before publication, so they are read-only and safe
// to share across concurrently evaluating wrappers.
//
// Freshness is bounded by the maxAge window: an entry older than
// maxAge is refetched on next use (maxAge <= 0 disables expiry — pure
// LRU). Fetch failures are never cached; the next Fetch retries, which
// preserves the evaluator's transient-error-healing semantics.
//
// All wrapped fetchers of one Cache share one URL namespace and must
// therefore resolve URLs identically (e.g. all wrap the same simulated
// web or the same HTTP client). Fetchers with private page overlays
// (inline-HTML wrappers) must not be wrapped — or use WrapScoped to
// give them an isolated key namespace.
package fetchcache

import (
	"sync"
	"time"

	"repro/internal/dom"
	"repro/internal/elog"
)

// Cache is the shared document store. The zero value is not usable;
// construct with New. A Cache is safe for concurrent use.
type Cache struct {
	mu         sync.Mutex
	maxEntries int
	maxAge     time.Duration
	entries    map[string]*entry
	head, tail *entry // LRU order, head = most recently used

	hits, misses, shared, expired, evictions uint64

	// now is the clock; replaced in tests.
	now func() time.Time
}

// entry is one cached page: a singleflight slot while the fetch is in
// flight, the parsed tree once done is closed.
type entry struct {
	key, url   string
	prev, next *entry
	done       chan struct{}
	tree       *dom.Tree
	err        error
	fp         uint64
	fetched    time.Time
}

// New returns a cache holding at most maxEntries parsed documents
// (0 = unbounded) and treating entries older than maxAge as stale
// (maxAge <= 0 = entries never expire).
func New(maxEntries int, maxAge time.Duration) *Cache {
	return &Cache{
		maxEntries: maxEntries,
		maxAge:     maxAge,
		entries:    map[string]*entry{},
		now:        time.Now,
	}
}

// Stats is a snapshot of the cache counters, JSON-shaped for /statusz.
type Stats struct {
	// Entries and MaxEntries report current and maximum size.
	Entries    int   `json:"entries"`
	MaxEntries int   `json:"max_entries"`
	MaxAgeMS   int64 `json:"max_age_ms"`
	// Hits are fetches answered from a fresh entry; Misses went
	// upstream; Shared joined another caller's in-flight fetch.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Shared uint64 `json:"shared"`
	// Expired counts revalidations of stale entries (a subset of
	// Misses); Evictions counts LRU removals under size pressure.
	Expired   uint64 `json:"expired"`
	Evictions uint64 `json:"evictions"`
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:    len(c.entries),
		MaxEntries: c.maxEntries,
		MaxAgeMS:   c.maxAge.Milliseconds(),
		Hits:       c.hits,
		Misses:     c.misses,
		Shared:     c.shared,
		Expired:    c.expired,
		Evictions:  c.evictions,
	}
}

// Wrap returns a fetcher that serves url fetches through the cache,
// going to inner on a miss. All fetchers wrapped by one cache share
// one URL key space (see the package comment). Wrapping an
// already-wrapped fetcher of the same cache and scope is a no-op, so
// layered call sites cannot stack the cache onto itself (which would
// deadlock a miss on its own in-flight entry).
func (c *Cache) Wrap(inner elog.Fetcher) elog.Fetcher { return c.WrapScoped("", inner) }

// WrapScoped is Wrap under an isolated key namespace: entries of
// different scopes never mix, for wrapping fetchers that resolve the
// same URLs to different content.
func (c *Cache) WrapScoped(scope string, inner elog.Fetcher) elog.Fetcher {
	if cf, ok := inner.(*cachedFetcher); ok && cf.c == c && cf.scope == scope {
		return inner
	}
	return &cachedFetcher{c: c, scope: scope, inner: inner}
}

// cachedFetcher is the Wrap result: an elog.Fetcher front end of one
// cache scope.
type cachedFetcher struct {
	c     *Cache
	scope string
	inner elog.Fetcher
}

// Fetch implements elog.Fetcher.
func (f *cachedFetcher) Fetch(url string) (*dom.Tree, error) {
	return f.c.fetch(f.scope+"\x00"+url, url, f.inner)
}

// Invalidate drops the default-scope entry for url, forcing the next
// fetch upstream.
func (c *Cache) Invalidate(url string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries["\x00"+url]; e != nil && completed(e) {
		c.removeLocked(e)
	}
}

// Flush drops every completed entry.
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.entries {
		if completed(e) {
			c.removeLocked(e)
		}
	}
}

// Len returns the number of cached entries (including in-flight ones).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *Cache) fetch(key, url string, inner elog.Fetcher) (*dom.Tree, error) {
	c.mu.Lock()
	var prev *entry
	if e := c.entries[key]; e != nil {
		select {
		case <-e.done:
			if e.err == nil && !c.staleLocked(e) {
				c.hits++
				c.moveFrontLocked(e)
				t := e.tree
				c.mu.Unlock()
				return t, nil
			}
			if e.err == nil {
				c.expired++
			}
			prev = e
		default:
			// In flight: join the leader's fetch.
			c.shared++
			c.mu.Unlock()
			<-e.done
			return e.tree, e.err
		}
	}
	c.misses++
	e := &entry{key: key, url: url, done: make(chan struct{})}
	if prev != nil {
		c.removeLocked(prev)
	}
	c.entries[key] = e
	c.pushFrontLocked(e)
	c.evictLocked()
	c.mu.Unlock()

	t, err := inner.Fetch(url)
	if err == nil {
		// Warm on the fetching goroutine so the published tree is
		// read-only for every sharer.
		t.Warm()
		fp := t.Fingerprint()
		if prev != nil && prev.err == nil && prev.fp == fp {
			// Unchanged content: keep the original tree object so
			// downstream fingerprint/pointer caches survive the refresh.
			t = prev.tree
		}
		e.tree, e.fp = t, fp
	}
	e.err = err
	c.mu.Lock()
	e.fetched = c.now()
	if err != nil && c.entries[key] == e {
		// Failures are not cached: the next fetch retries.
		c.removeLocked(e)
	}
	c.mu.Unlock()
	close(e.done)
	return e.tree, e.err
}

func (c *Cache) staleLocked(e *entry) bool {
	return c.maxAge > 0 && c.now().Sub(e.fetched) >= c.maxAge
}

func completed(e *entry) bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// evictLocked drops least-recently-used completed entries until the
// size bound holds; in-flight entries are never evicted (their callers
// hold the singleflight slot).
func (c *Cache) evictLocked() {
	if c.maxEntries <= 0 {
		return
	}
	e := c.tail
	for len(c.entries) > c.maxEntries && e != nil {
		victim := e
		e = e.prev
		if !completed(victim) {
			continue
		}
		c.removeLocked(victim)
		c.evictions++
	}
}

// --- intrusive LRU list, guarded by c.mu ---

func (c *Cache) pushFrontLocked(e *entry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) removeLocked(e *entry) {
	if c.entries[e.key] == e {
		delete(c.entries, e.key)
	}
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) moveFrontLocked(e *entry) {
	if c.head == e {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
	c.pushFrontLocked(e)
}
