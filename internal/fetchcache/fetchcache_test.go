package fetchcache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dom"
	"repro/internal/htmlparse"
)

// countingFetcher parses a fixed page per URL, counting upstream
// fetches and optionally sleeping to widen singleflight windows.
type countingFetcher struct {
	mu    sync.Mutex
	pages map[string]string
	calls map[string]int
	delay time.Duration
}

func newCounting() *countingFetcher {
	return &countingFetcher{pages: map[string]string{}, calls: map[string]int{}}
}

func (f *countingFetcher) set(url, html string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pages[url] = html
}

func (f *countingFetcher) count(url string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[url]
}

func (f *countingFetcher) Fetch(url string) (*dom.Tree, error) {
	f.mu.Lock()
	html, ok := f.pages[url]
	f.calls[url]++
	delay := f.delay
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if !ok {
		return nil, fmt.Errorf("404 %s", url)
	}
	return htmlparse.Parse(html), nil
}

func TestHitMissAndSharing(t *testing.T) {
	inner := newCounting()
	inner.set("a", "<p>a</p>")
	c := New(16, 0)
	f := c.Wrap(inner)

	t1, err := f.Fetch("a")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := f.Fetch("a")
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Error("second fetch did not reuse the cached tree")
	}
	if got := inner.count("a"); got != 1 {
		t.Errorf("upstream fetched %d times, want 1", got)
	}
	// A second wrapped fetcher of the same cache shares the entries.
	other := c.Wrap(newCounting())
	t3, err := other.Fetch("a")
	if err != nil {
		t.Fatal(err)
	}
	if t3 != t1 {
		t.Error("second fetcher did not share the cache entry")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 2 hits / 1 miss / 1 entry", st)
	}
}

func TestSingleflightDedup(t *testing.T) {
	inner := newCounting()
	inner.set("a", "<p>a</p>")
	inner.delay = 20 * time.Millisecond
	c := New(16, 0)
	f := c.Wrap(inner)

	const n = 16
	trees := make([]*dom.Tree, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t_, err := f.Fetch("a")
			if err != nil {
				t.Error(err)
				return
			}
			trees[i] = t_
		}(i)
	}
	wg.Wait()
	if got := inner.count("a"); got != 1 {
		t.Fatalf("upstream fetched %d times under %d concurrent callers, want 1", got, n)
	}
	for i := 1; i < n; i++ {
		if trees[i] != trees[0] {
			t.Fatal("concurrent callers got different trees")
		}
	}
	if st := c.Stats(); st.Shared != n-1 {
		t.Errorf("shared = %d, want %d", st.Shared, n-1)
	}
}

func TestLRUEviction(t *testing.T) {
	inner := newCounting()
	for _, u := range []string{"a", "b", "c"} {
		inner.set(u, "<p>"+u+"</p>")
	}
	c := New(2, 0)
	f := c.Wrap(inner)
	for _, u := range []string{"a", "b"} {
		if _, err := f.Fetch(u); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a so that b is the LRU victim.
	if _, err := f.Fetch("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Fetch("c"); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats after eviction = %+v, want 2 entries / 1 eviction", st)
	}
	// b was evicted, a survived.
	if _, err := f.Fetch("a"); err != nil {
		t.Fatal(err)
	}
	if got := inner.count("a"); got != 1 {
		t.Errorf("a refetched (%d upstream calls) despite surviving eviction", got)
	}
	if _, err := f.Fetch("b"); err != nil {
		t.Fatal(err)
	}
	if got := inner.count("b"); got != 2 {
		t.Errorf("b upstream calls = %d, want 2 (evicted then refetched)", got)
	}
}

func TestFreshnessWindowAndFingerprintStability(t *testing.T) {
	inner := newCounting()
	inner.set("a", "<p>a</p>")
	c := New(16, time.Second)
	clock := time.Now()
	c.now = func() time.Time { return clock }
	f := c.Wrap(inner)

	t1, err := f.Fetch("a")
	if err != nil {
		t.Fatal(err)
	}
	// Within the window: served from cache.
	clock = clock.Add(500 * time.Millisecond)
	if _, err := f.Fetch("a"); err != nil {
		t.Fatal(err)
	}
	if got := inner.count("a"); got != 1 {
		t.Fatalf("fresh entry refetched (%d upstream calls)", got)
	}
	// Past the window with unchanged content: revalidated upstream, but
	// the original tree object keeps being served so downstream
	// fingerprint caches stay hot.
	clock = clock.Add(time.Second)
	t2, err := f.Fetch("a")
	if err != nil {
		t.Fatal(err)
	}
	if got := inner.count("a"); got != 2 {
		t.Fatalf("stale entry not revalidated (%d upstream calls)", got)
	}
	if t2 != t1 {
		t.Error("unchanged content served a new tree object after revalidation")
	}
	// Changed content yields the new tree.
	inner.set("a", "<p>changed</p>")
	clock = clock.Add(2 * time.Second)
	t3, err := f.Fetch("a")
	if err != nil {
		t.Fatal(err)
	}
	if t3 == t1 {
		t.Error("changed content still served the old tree")
	}
	if st := c.Stats(); st.Expired != 2 {
		t.Errorf("expired = %d, want 2", st.Expired)
	}
}

func TestErrorsNotCached(t *testing.T) {
	inner := newCounting()
	c := New(16, 0)
	f := c.Wrap(inner)
	if _, err := f.Fetch("missing"); err == nil {
		t.Fatal("expected error")
	}
	inner.set("missing", "<p>found</p>")
	if _, err := f.Fetch("missing"); err != nil {
		t.Fatalf("error was cached: %v", err)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Errorf("entries = %d, want 1", st.Entries)
	}
}

func TestScopesIsolateAndWrapIdempotent(t *testing.T) {
	a, b := newCounting(), newCounting()
	a.set("u", "<p>a</p>")
	b.set("u", "<p>b</p>")
	c := New(16, 0)
	fa := c.WrapScoped("a", a)
	fb := c.WrapScoped("b", b)
	ta, err := fa.Fetch("u")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := fb.Fetch("u")
	if err != nil {
		t.Fatal(err)
	}
	if ta == tb {
		t.Error("scoped entries collided")
	}
	if c.Len() != 2 {
		t.Errorf("entries = %d, want 2", c.Len())
	}
	// Re-wrapping the wrapped fetcher must not stack the cache onto
	// itself (a stacked miss would deadlock on its own entry).
	w := c.Wrap(a)
	if c.Wrap(w) != w {
		t.Error("double Wrap stacked the cache")
	}
	if c.WrapScoped("a", fa) != fa {
		t.Error("WrapScoped stacked the cache onto itself")
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	inner := newCounting()
	inner.set("a", "<p>a</p>")
	inner.set("b", "<p>b</p>")
	c := New(16, 0)
	f := c.Wrap(inner)
	for _, u := range []string{"a", "b"} {
		if _, err := f.Fetch(u); err != nil {
			t.Fatal(err)
		}
	}
	c.Invalidate("a")
	if _, err := f.Fetch("a"); err != nil {
		t.Fatal(err)
	}
	if got := inner.count("a"); got != 2 {
		t.Errorf("a upstream calls after Invalidate = %d, want 2", got)
	}
	c.Flush()
	if c.Len() != 0 {
		t.Errorf("entries after Flush = %d, want 0", c.Len())
	}
}

// TestConcurrentChurn hammers one cache from many goroutines across
// overlapping URLs with a small capacity, checking internal
// consistency under -race.
func TestConcurrentChurn(t *testing.T) {
	inner := newCounting()
	for i := 0; i < 20; i++ {
		inner.set(fmt.Sprintf("u%d", i), fmt.Sprintf("<p>%d</p>", i))
	}
	c := New(8, 0)
	f := c.Wrap(inner)
	var errs atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := f.Fetch(fmt.Sprintf("u%d", (g*7+i)%20)); err != nil {
					errs.Add(1)
				}
				if i%50 == 0 {
					c.Invalidate(fmt.Sprintf("u%d", i%20))
				}
			}
		}(g)
	}
	wg.Wait()
	if errs.Load() != 0 {
		t.Fatalf("%d fetch errors", errs.Load())
	}
	if n := c.Len(); n > 8 {
		t.Errorf("cache grew past its bound: %d entries", n)
	}
}
