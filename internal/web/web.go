// Package web is the simulated World Wide Web this reproduction wraps:
// deterministic generators for the site families that the paper's
// applications (Section 6) extract from — auction listings (eBay,
// Figure 5), book bestsellers (Figure 4), radio playlists / music charts
// / lyrics ("Now Playing", Section 6.1), flight timetables (6.2), press
// sites and stock quotes (6.3), viticulture pages (6.4), automotive
// portals (6.5), competitor price lists (6.6), and power-exchange spot
// prices (6.7).
//
// Pages are plain HTML strings produced from seeded generators, so every
// experiment is reproducible; sites can be stepped (AdvanceTime) to make
// content change, which the Transformation Server's monitoring
// components react to. The Web type implements elog.Fetcher and can also
// be served over real HTTP via net/http/httptest.
package web

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/dom"
	"repro/internal/htmlparse"
)

// Web is a registry of simulated sites addressed by URL. It is safe
// for concurrent fetching: the evaluator's crawl frontier retrieves
// many pages at once, so the registry is locked, page rendering is
// serialized (site generators close over mutable site state), and the
// optional simulated latency and HTML parsing run in parallel.
type Web struct {
	mu    sync.RWMutex
	pages map[string]func() string
	// Fetches counts page retrievals, for the crawling experiments.
	fetches map[string]int
	// latency is the simulated per-fetch network delay.
	latency time.Duration
	// renderMu serializes generator calls.
	renderMu sync.Mutex
}

// New returns an empty web.
func New() *Web {
	return &Web{pages: map[string]func() string{}, fetches: map[string]int{}}
}

// SetPage registers a dynamic page at url.
func (w *Web) SetPage(url string, gen func() string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pages[url] = gen
}

// SetStatic registers a fixed page at url.
func (w *Web) SetStatic(url, html string) {
	w.SetPage(url, func() string { return html })
}

// Fetch implements elog.Fetcher.
func (w *Web) Fetch(url string) (*dom.Tree, error) {
	html, err := w.Source(url)
	if err != nil {
		return nil, err
	}
	return htmlparse.Parse(html), nil
}

// SetLatency installs a simulated per-fetch delay, modeling network and
// server time. With latency set, the parallelism of a crawl becomes
// observable: n pages fetched serially cost n×latency of wall clock,
// a concurrent frontier roughly one latency per batch.
func (w *Web) SetLatency(d time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.latency = d
}

// Source returns the raw HTML of a page.
func (w *Web) Source(url string) (string, error) {
	w.mu.Lock()
	gen, ok := w.pages[url]
	var delay time.Duration
	if ok {
		w.fetches[url]++
		delay = w.latency
	}
	w.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("web: 404 %s", url)
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	// Generators may close over mutable site state (AdvanceTime), so
	// concurrent fetches serialize the render; only the simulated
	// latency above and the caller's parse overlap.
	w.renderMu.Lock()
	defer w.renderMu.Unlock()
	return gen(), nil
}

// FetchCount reports how often url was retrieved.
func (w *Web) FetchCount(url string) int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.fetches[url]
}

// URLs lists the registered pages, sorted.
func (w *Web) URLs() []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]string, 0, len(w.pages))
	for u := range w.pages {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Serve exposes the web over real HTTP. URLs registered as
// "host/path" are served as "/host/path" on the returned test server.
// The caller must Close the server.
func (w *Web) Serve() *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		url := strings.TrimPrefix(r.URL.Path, "/")
		html, err := w.Source(url)
		if err != nil {
			http.NotFound(rw, r)
			return
		}
		rw.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(rw, html)
	}))
}

// rng is a small deterministic PRNG (xorshift) so that generators do not
// depend on math/rand's global state and stay reproducible.
type rng struct{ s uint64 }

func newRng(seed int64) *rng {
	if seed == 0 {
		seed = 1
	}
	return &rng{s: uint64(seed)}
}

func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

func (r *rng) pick(xs []string) string { return xs[r.intn(len(xs))] }

func (r *rng) price(lo, hi int) string {
	cents := r.intn(100)
	return fmt.Sprintf("%d.%02d", lo+r.intn(hi-lo+1), cents)
}

// HTTPFetcher is an elog.Fetcher that retrieves pages over real HTTP —
// used to wrap a Web served by Serve (or any other HTTP source). URLs
// of the form "host/path" are resolved against Base.
type HTTPFetcher struct {
	// Base is the server URL prefix, e.g. a httptest.Server.URL.
	Base string
	// Client defaults to http.DefaultClient.
	Client *http.Client
}

// Fetch implements the fetcher contract over HTTP.
func (h *HTTPFetcher) Fetch(url string) (*dom.Tree, error) {
	client := h.Client
	if client == nil {
		client = http.DefaultClient
	}
	full := url
	if !strings.Contains(url, "://") {
		full = strings.TrimSuffix(h.Base, "/") + "/" + strings.TrimPrefix(url, "/")
	}
	resp, err := client.Get(full)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("web: GET %s: %s", full, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	return htmlparse.Parse(string(body)), nil
}
