package web

import (
	"math/rand"
	"sync/atomic"

	"repro/internal/dom"
)

// docFetcher is the fetching contract shared with elog.Fetcher,
// restated locally so the simulated web does not depend on the
// evaluator package.
type docFetcher interface {
	Fetch(url string) (*dom.Tree, error)
}

// ChurnFetcher wraps a fetcher and deterministically perturbs every
// fetched document: at step s, the fetched tree is cloned and s bursts
// of pseudo-random mutations are replayed onto it, each burst seeded by
// (Seed, url, burst index) only. Two ChurnFetchers with the same Seed
// whose steps advance in lockstep over the same underlying pages
// therefore serve bit-identical document versions — the property the
// incremental-vs-cold differential tests and the churn load generator
// rely on: "the page at step s" is a pure function, not a mutable
// object, so a cold evaluator and an incremental one can each fetch
// their own copy and must extract identical instance bases.
//
// Consecutive steps share all subtrees the newest burst missed, giving
// the subtree-fingerprint layer realistic partial overlap. With Grow
// set, bursts occasionally append nodes, which knocks parser-built
// trees out of document order and exercises the evaluator's
// non-incremental fallback alongside the fast path.
type ChurnFetcher struct {
	Inner docFetcher
	// Seed selects the mutation sequence; equal seeds replay equal
	// sequences.
	Seed int64
	// PerStep is the number of mutations per burst (default 4).
	PerStep int
	// Grow allows structural growth mutations (see dom.Mutate); off,
	// bursts are content-only (dom.MutateContent) and preserve
	// document order.
	Grow bool

	step atomic.Int64
}

// Advance moves the churn one step forward and returns the new step.
func (c *ChurnFetcher) Advance() int { return int(c.step.Add(1)) }

// Step returns the current step.
func (c *ChurnFetcher) Step() int { return int(c.step.Load()) }

// Fetch retrieves the page and replays the mutation bursts for the
// current step onto a clone, leaving the inner fetcher's tree intact.
func (c *ChurnFetcher) Fetch(url string) (*dom.Tree, error) {
	t, err := c.Inner.Fetch(url)
	if err != nil {
		return nil, err
	}
	steps := c.Step()
	if steps == 0 {
		return t, nil
	}
	per := c.PerStep
	if per <= 0 {
		per = 4
	}
	mt := t.Clone()
	for s := 1; s <= steps; s++ {
		rng := rand.New(rand.NewSource(churnSeed(c.Seed, url, s)))
		if c.Grow {
			dom.Mutate(mt, rng, per)
		} else {
			dom.MutateContent(mt, rng, per)
		}
	}
	return mt, nil
}

// churnSeed derives the burst seed from (seed, url, step) by FNV-1a, so
// distinct pages and steps mutate independently but reproducibly.
func churnSeed(seed int64, url string, step int) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	for i := 0; i < len(url); i++ {
		mix(url[i])
	}
	for s := 0; s < 8; s++ {
		mix(byte(uint64(seed) >> (8 * s)))
		mix(byte(uint64(step) >> (8 * s)))
	}
	return int64(h)
}
