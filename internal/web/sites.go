package web

import (
	"fmt"
	"strings"
	"sync"
)

// ---------------------------------------------------------------------
// eBay-style auction listings (Figure 5).

// AuctionItem is one offered item.
type AuctionItem struct {
	Description string
	Price       string // e.g. "$ 12.50"
	Currency    string
	Bids        int
}

// AuctionSite simulates an eBay-like marketplace with paginated listing
// pages.
type AuctionSite struct {
	mu       sync.Mutex
	Items    []AuctionItem
	PageSize int
	// Noise adds navigation clutter and ads, for the robustness
	// experiments.
	Noise bool
}

// NewAuctionSite generates n items deterministically from seed.
func NewAuctionSite(seed int64, n int) *AuctionSite {
	r := newRng(seed)
	adjectives := []string{"Vintage", "Antique", "Rare", "Mint", "Used", "Boxed", "Signed", "Classic"}
	nouns := []string{"Camera", "Clock", "Bicycle", "Guitar", "Radio", "Watch", "Lamp", "Typewriter", "Globe", "Atlas"}
	currencies := []string{"$", "Euro", "£"}
	s := &AuctionSite{PageSize: 25}
	for i := 0; i < n; i++ {
		cur := r.pick(currencies)
		s.Items = append(s.Items, AuctionItem{
			Description: fmt.Sprintf("%s %s #%d", r.pick(adjectives), r.pick(nouns), i+1),
			Price:       fmt.Sprintf("%s %s", cur, r.price(5, 500)),
			Currency:    cur,
			Bids:        r.intn(30),
		})
	}
	return s
}

// Register installs the site's pages under host (e.g. "www.ebay.com") on w.
func (s *AuctionSite) Register(w *Web, host string) {
	pages := (len(s.Items) + s.PageSize - 1) / s.PageSize
	if pages == 0 {
		pages = 1
	}
	for p := 0; p < pages; p++ {
		p := p
		url := host + "/"
		if p > 0 {
			url = fmt.Sprintf("%s/page%d.html", host, p)
		}
		w.SetPage(url, func() string { return s.renderPage(host, p, pages) })
	}
}

func (s *AuctionSite) renderPage(host string, page, pages int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	b.WriteString("<html><head><title>Auctions</title></head><body>")
	if s.Noise {
		b.WriteString(`<div class="nav"><a href="/">home</a> | <a href="/sell.html">sell</a> | <a href="/help.html">help</a></div>`)
		b.WriteString(`<p>Sponsored: <a href="ad.html">Buy more stuff!</a></p>`)
	}
	b.WriteString(`<table class="hdr"><tr><td><b>item</b></td><td>price</td><td>bids</td></tr></table>`)
	lo := page * s.PageSize
	hi := lo + s.PageSize
	if hi > len(s.Items) {
		hi = len(s.Items)
	}
	for _, it := range s.Items[lo:hi] {
		b.WriteString(`<table class="item"><tr>`)
		fmt.Fprintf(&b, `<td><a href="item.html">%s</a></td>`, htmlEscape(it.Description))
		fmt.Fprintf(&b, `<td>%s</td>`, it.Price)
		fmt.Fprintf(&b, `<td>%d bids</td>`, it.Bids)
		b.WriteString(`</tr></table>`)
	}
	b.WriteString("<hr>")
	if page+1 < pages {
		fmt.Fprintf(&b, `<p><a class="next" href="page%d.html">next page</a></p>`, page+1)
	}
	b.WriteString("</body></html>")
	return b.String()
}

// ---------------------------------------------------------------------
// Book bestsellers (the Amazon books example of Figure 4).

// Book is one bestseller entry.
type Book struct {
	Rank   int
	Title  string
	Author string
	Price  string
}

// BookSite simulates a bookshop bestseller list.
type BookSite struct {
	mu    sync.Mutex
	Books []Book
}

// NewBookSite generates n books deterministically.
func NewBookSite(seed int64, n int) *BookSite {
	r := newRng(seed)
	firsts := []string{"Ada", "Kurt", "Alonzo", "Alan", "Emmy", "Grace", "John", "Julia", "Edsger", "Barbara"}
	lasts := []string{"Lovelace", "Goedel", "Church", "Turing", "Noether", "Hopper", "McCarthy", "Robinson", "Dijkstra", "Liskov"}
	topics := []string{"Databases", "Logic", "Trees", "Automata", "Datalog", "The Web", "Wrappers", "Queries", "Complexity", "Monads"}
	s := &BookSite{}
	for i := 0; i < n; i++ {
		s.Books = append(s.Books, Book{
			Rank:   i + 1,
			Title:  fmt.Sprintf("%s for Everyone, Vol. %d", r.pick(topics), 1+r.intn(4)),
			Author: r.pick(firsts) + " " + r.pick(lasts),
			Price:  "$ " + r.price(9, 80),
		})
	}
	return s
}

// SetPrice changes a book's price (for the change-monitoring pipeline).
func (s *BookSite) SetPrice(rank int, price string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.Books {
		if s.Books[i].Rank == rank {
			s.Books[i].Price = price
		}
	}
}

// Register installs the bestseller page at host+"/bestsellers.html".
func (s *BookSite) Register(w *Web, host string) {
	w.SetPage(host+"/bestsellers.html", s.Render)
}

// Render produces the bestseller page.
func (s *BookSite) Render() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	b.WriteString(`<html><head><title>Bestsellers</title></head><body>`)
	b.WriteString(`<h1>Book Bestsellers</h1><table class="books">`)
	b.WriteString(`<tr><th>rank</th><th>title</th><th>author</th><th>price</th></tr>`)
	for _, bk := range s.Books {
		fmt.Fprintf(&b, `<tr class="book"><td>%d</td><td class="title"><a href="book%d.html">%s</a></td><td class="author">%s</td><td class="price">%s</td></tr>`,
			bk.Rank, bk.Rank, htmlEscape(bk.Title), htmlEscape(bk.Author), bk.Price)
	}
	b.WriteString(`</table><hr><p>updated daily</p></body></html>`)
	return b.String()
}

// ---------------------------------------------------------------------
// Now Playing (Section 6.1): radio playlists, music charts, lyrics.

// RadioSite simulates a radio station page showing the current song and
// recent playlist. Step advances simulated time (songs rotate).
type RadioSite struct {
	mu    sync.Mutex
	Name  string
	Songs []Song
	step  int
}

// Song is a title/artist pair.
type Song struct{ Title, Artist string }

// SongPool generates a deterministic pool of songs.
func SongPool(seed int64, n int) []Song {
	r := newRng(seed)
	adjs := []string{"Blue", "Electric", "Silent", "Golden", "Midnight", "Broken", "Distant", "Crystal"}
	nouns := []string{"River", "Heart", "City", "Sky", "Train", "Mirror", "Garden", "Signal"}
	bands := []string{"The Wrappers", "Monadic", "Datalog Five", "Tree Automata", "Infinite Loop", "The Fixpoints", "Stratified", "Core XPath"}
	var out []Song
	for i := 0; i < n; i++ {
		out = append(out, Song{
			Title:  r.pick(adjs) + " " + r.pick(nouns),
			Artist: r.pick(bands),
		})
	}
	return out
}

// NewRadioSite creates a station with a rotation drawn from pool.
func NewRadioSite(name string, pool []Song, offset int) *RadioSite {
	return &RadioSite{Name: name, Songs: pool, step: offset}
}

// Advance rotates to the next song ("periodic intervals ranging from a
// few seconds").
func (s *RadioSite) Advance() {
	s.mu.Lock()
	s.step++
	s.mu.Unlock()
}

// Current returns the song on air.
func (s *RadioSite) Current() Song {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Songs[s.step%len(s.Songs)]
}

// Register installs the station page at host+"/playlist.html".
func (s *RadioSite) Register(w *Web, host string) {
	w.SetPage(host+"/playlist.html", s.Render)
}

// Render produces the playlist page.
func (s *RadioSite) Render() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.Songs[s.step%len(s.Songs)]
	var b strings.Builder
	fmt.Fprintf(&b, `<html><head><title>%s</title></head><body>`, s.Name)
	fmt.Fprintf(&b, `<h1>%s</h1>`, s.Name)
	fmt.Fprintf(&b, `<div class="nowplaying">Now playing: <span class="title">%s</span> by <span class="artist">%s</span></div>`,
		htmlEscape(cur.Title), htmlEscape(cur.Artist))
	b.WriteString(`<h2>Recently played</h2><ul class="recent">`)
	for i := 1; i <= 5; i++ {
		sg := s.Songs[(s.step+len(s.Songs)*8-i)%len(s.Songs)]
		fmt.Fprintf(&b, `<li><span class="title">%s</span> - <span class="artist">%s</span></li>`, htmlEscape(sg.Title), htmlEscape(sg.Artist))
	}
	b.WriteString(`</ul><p><a href="stream.html">live stream</a></p></body></html>`)
	return b.String()
}

// ChartSite simulates a music chart (top-N list).
type ChartSite struct {
	Name    string
	Entries []Song
}

// NewChartSite ranks a permutation of the pool.
func NewChartSite(name string, pool []Song, seed int64, n int) *ChartSite {
	r := newRng(seed)
	perm := make([]Song, len(pool))
	copy(perm, pool)
	for i := len(perm) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	if n > len(perm) {
		n = len(perm)
	}
	return &ChartSite{Name: name, Entries: perm[:n]}
}

// Register installs the chart page at host+"/top.html".
func (s *ChartSite) Register(w *Web, host string) {
	w.SetPage(host+"/top.html", s.Render)
}

// Render produces the chart page.
func (s *ChartSite) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, `<html><head><title>%s</title></head><body><h1>%s</h1><table class="chart">`, s.Name, s.Name)
	b.WriteString(`<tr><th>rank</th><th>song</th><th>artist</th></tr>`)
	for i, e := range s.Entries {
		fmt.Fprintf(&b, `<tr><td class="rank">%d</td><td class="song">%s</td><td class="artist">%s</td></tr>`, i+1, htmlEscape(e.Title), htmlEscape(e.Artist))
	}
	b.WriteString(`</table></body></html>`)
	return b.String()
}

// LyricsSite serves one lyrics page per song.
type LyricsSite struct{ Pool []Song }

// Register installs lyric pages at host+"/lyrics<i>.html" plus an index.
func (s *LyricsSite) Register(w *Web, host string) {
	var idx strings.Builder
	idx.WriteString(`<html><body><h1>Lyrics index</h1><ul>`)
	for i, sg := range s.Pool {
		i, sg := i, sg
		url := fmt.Sprintf("%s/lyrics%d.html", host, i)
		w.SetPage(url, func() string {
			var b strings.Builder
			fmt.Fprintf(&b, `<html><body><h1 class="song">%s</h1><h2 class="artist">%s</h2><pre class="lyrics">La la la %s, oh %s...</pre></body></html>`,
				htmlEscape(sg.Title), htmlEscape(sg.Artist), htmlEscape(sg.Title), htmlEscape(sg.Artist))
			return b.String()
		})
		fmt.Fprintf(&idx, `<li><a href="lyrics%d.html">%s</a></li>`, i, htmlEscape(sg.Title))
	}
	idx.WriteString(`</ul></body></html>`)
	w.SetStatic(host+"/index.html", idx.String())
}

// ---------------------------------------------------------------------
// Flight schedules (Section 6.2).

// Flight is one timetable row.
type Flight struct {
	Number string
	From   string
	To     string
	Sched  string
	Status string // "on time", "delayed 20 min", "cancelled", "boarding"
}

// FlightSite simulates an airport information system whose statuses
// change over time.
type FlightSite struct {
	mu      sync.Mutex
	Flights []Flight
	seed    int64
	step    int
}

// NewFlightSite generates n flights.
func NewFlightSite(seed int64, n int) *FlightSite {
	r := newRng(seed)
	cities := []string{"Vienna", "Paris", "London", "Frankfurt", "Zurich", "Milan", "Madrid", "Prague"}
	s := &FlightSite{seed: seed}
	for i := 0; i < n; i++ {
		from := r.pick(cities)
		to := r.pick(cities)
		for to == from {
			to = r.pick(cities)
		}
		s.Flights = append(s.Flights, Flight{
			Number: fmt.Sprintf("OS%03d", 100+i),
			From:   from,
			To:     to,
			Sched:  fmt.Sprintf("%02d:%02d", 6+r.intn(16), 5*r.intn(12)),
			Status: "on time",
		})
	}
	return s
}

// Advance mutates some statuses deterministically.
func (s *FlightSite) Advance() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.step++
	r := newRng(s.seed + int64(s.step))
	statuses := []string{"on time", "delayed 20 min", "delayed 45 min", "boarding", "cancelled"}
	for i := 0; i < len(s.Flights)/4+1; i++ {
		s.Flights[r.intn(len(s.Flights))].Status = r.pick(statuses)
	}
}

// Status returns a flight's current status.
func (s *FlightSite) Status(number string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range s.Flights {
		if f.Number == number {
			return f.Status
		}
	}
	return ""
}

// Register installs the timetable at host+"/departures.html".
func (s *FlightSite) Register(w *Web, host string) {
	w.SetPage(host+"/departures.html", s.Render)
}

// Render produces the departures page.
func (s *FlightSite) Render() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	b.WriteString(`<html><head><title>Departures</title></head><body><h1>Departures</h1><table class="flights">`)
	b.WriteString(`<tr><th>flight</th><th>from</th><th>to</th><th>time</th><th>status</th></tr>`)
	for _, f := range s.Flights {
		fmt.Fprintf(&b, `<tr class="flight"><td class="no">%s</td><td class="from">%s</td><td class="to">%s</td><td class="time">%s</td><td class="status">%s</td></tr>`,
			f.Number, f.From, f.To, f.Sched, f.Status)
	}
	b.WriteString(`</table></body></html>`)
	return b.String()
}

// ---------------------------------------------------------------------
// Press / financial news (Section 6.3).

// Article is one news item.
type Article struct {
	Headline string
	Date     string
	Body     string
	Ticker   string
}

// NewsSite simulates a press site; Publish appends articles.
type NewsSite struct {
	mu       sync.Mutex
	Name     string
	Articles []Article
}

// NewNewsSite generates n initial articles.
func NewNewsSite(name string, seed int64, n int) *NewsSite {
	s := &NewsSite{Name: name}
	r := newRng(seed)
	for i := 0; i < n; i++ {
		s.Articles = append(s.Articles, genArticle(r, i))
	}
	return s
}

func genArticle(r *rng, i int) Article {
	companies := []string{"ACME", "Globex", "Initech", "Umbrella", "Hooli", "Stark"}
	verbs := []string{"beats expectations", "announces merger", "issues profit warning", "expands to Asia", "recalls product", "wins contract"}
	tick := r.pick(companies)
	return Article{
		Headline: fmt.Sprintf("%s %s", tick, r.pick(verbs)),
		Date:     fmt.Sprintf("2004-06-%02d", 1+r.intn(28)),
		Body:     fmt.Sprintf("Today, %s made headlines (story %d). Analysts are watching closely.", tick, i+1),
		Ticker:   tick,
	}
}

// Publish appends a fresh article.
func (s *NewsSite) Publish(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := newRng(seed)
	s.Articles = append(s.Articles, genArticle(r, len(s.Articles)))
}

// Register installs the front page at host+"/news.html".
func (s *NewsSite) Register(w *Web, host string) {
	w.SetPage(host+"/news.html", s.Render)
}

// Render produces the news front page.
func (s *NewsSite) Render() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, `<html><head><title>%s</title></head><body><h1>%s</h1>`, s.Name, s.Name)
	for _, a := range s.Articles {
		b.WriteString(`<div class="article">`)
		fmt.Fprintf(&b, `<h2 class="headline">%s</h2>`, htmlEscape(a.Headline))
		fmt.Fprintf(&b, `<span class="date">%s</span>`, a.Date)
		fmt.Fprintf(&b, `<span class="ticker">%s</span>`, a.Ticker)
		fmt.Fprintf(&b, `<p class="body">%s</p>`, htmlEscape(a.Body))
		b.WriteString(`</div>`)
	}
	b.WriteString(`</body></html>`)
	return b.String()
}

// QuoteSite serves stock quotes that drift over time.
type QuoteSite struct {
	mu     sync.Mutex
	quotes map[string]float64
	seed   int64
	step   int
}

// NewQuoteSite initializes quotes for the given tickers.
func NewQuoteSite(seed int64, tickers ...string) *QuoteSite {
	r := newRng(seed)
	q := &QuoteSite{quotes: map[string]float64{}, seed: seed}
	for _, t := range tickers {
		q.quotes[t] = 20 + float64(r.intn(20000))/100
	}
	return q
}

// Advance drifts the quotes.
func (q *QuoteSite) Advance() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.step++
	r := newRng(q.seed + int64(q.step))
	for t := range q.quotes {
		q.quotes[t] += float64(r.intn(200)-100) / 100
		if q.quotes[t] < 1 {
			q.quotes[t] = 1
		}
	}
}

// Register installs the quote board at host+"/quotes.html".
func (q *QuoteSite) Register(w *Web, host string) {
	w.SetPage(host+"/quotes.html", q.Render)
}

// Render produces the quote board.
func (q *QuoteSite) Render() string {
	q.mu.Lock()
	defer q.mu.Unlock()
	tickers := make([]string, 0, len(q.quotes))
	for t := range q.quotes {
		tickers = append(tickers, t)
	}
	sortStrings(tickers)
	var b strings.Builder
	b.WriteString(`<html><body><h1>Quotes</h1><table class="quotes"><tr><th>ticker</th><th>price</th></tr>`)
	for _, t := range tickers {
		fmt.Fprintf(&b, `<tr class="quote"><td class="ticker">%s</td><td class="value">%.2f</td></tr>`, t, q.quotes[t])
	}
	b.WriteString(`</table></body></html>`)
	return b.String()
}

// ---------------------------------------------------------------------
// Power trading (Section 6.7).

// PowerSite serves spot market prices for electric power plus the
// weather/water-level data the application integrates with.
type PowerSite struct {
	mu   sync.Mutex
	seed int64
	step int
}

// NewPowerSite returns a spot-price site.
func NewPowerSite(seed int64) *PowerSite { return &PowerSite{seed: seed} }

// Advance moves to the next trading interval.
func (p *PowerSite) Advance() {
	p.mu.Lock()
	p.step++
	p.mu.Unlock()
}

// Register installs spot.html and weather.html under host.
func (p *PowerSite) Register(w *Web, host string) {
	w.SetPage(host+"/spot.html", p.RenderSpot)
	w.SetPage(host+"/weather.html", p.RenderWeather)
}

// RenderSpot produces the hourly spot-price table.
func (p *PowerSite) RenderSpot() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	r := newRng(p.seed + int64(p.step))
	var b strings.Builder
	b.WriteString(`<html><body><h1>Spot Market</h1><table class="spot"><tr><th>hour</th><th>price</th></tr>`)
	for h := 0; h < 24; h++ {
		fmt.Fprintf(&b, `<tr class="hour"><td class="h">%02d:00</td><td class="eur">%d.%02d EUR</td></tr>`, h, 18+r.intn(40), r.intn(100))
	}
	b.WriteString(`</table></body></html>`)
	return b.String()
}

// RenderWeather produces the weather/water-level page.
func (p *PowerSite) RenderWeather() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	r := newRng(p.seed*7 + int64(p.step))
	conds := []string{"sunny", "cloudy", "rain", "storm", "snow"}
	var b strings.Builder
	b.WriteString(`<html><body><h1>Weather and Water</h1>`)
	fmt.Fprintf(&b, `<p class="forecast">Forecast: <span class="cond">%s</span>, <span class="temp">%d</span> degrees</p>`, r.pick(conds), r.intn(35))
	fmt.Fprintf(&b, `<p class="water">Danube level: <span class="level">%d</span> cm</p>`, 200+r.intn(400))
	b.WriteString(`</body></html>`)
	return b.String()
}

// ---------------------------------------------------------------------
// Viticulture portal sources (Section 6.4).

// VitiSite serves vine news and pesticide recommendations per region.
type VitiSite struct {
	Regions []string
}

// Register installs region pages under host.
func (s *VitiSite) Register(w *Web, host string) {
	for _, region := range s.Regions {
		region := region
		w.SetPage(fmt.Sprintf("%s/%s.html", host, strings.ToLower(region)), func() string {
			var b strings.Builder
			fmt.Fprintf(&b, `<html><body><h1>Viticulture: %s</h1>`, region)
			fmt.Fprintf(&b, `<div class="advice"><h2>Pest control</h2><ul><li class="pest">Peronospora: spray within 3 days</li><li class="pest">Oidium: monitor</li></ul></div>`)
			fmt.Fprintf(&b, `<div class="news"><h2>Vine news</h2><p class="item">Harvest in %s expected early.</p></div>`, region)
			b.WriteString(`</body></html>`)
			return b.String()
		})
	}
}

// ---------------------------------------------------------------------
// Automotive supplier portal (Section 6.5).

// PortalSite simulates a business portal with RFQs (requests for
// quotation) that suppliers must monitor.
type PortalSite struct {
	mu   sync.Mutex
	RFQs []string
}

// NewPortalSite seeds n RFQs.
func NewPortalSite(seed int64, n int) *PortalSite {
	r := newRng(seed)
	parts := []string{"brake disc", "headlight", "wiring loom", "dashboard", "gearbox mount", "door seal"}
	p := &PortalSite{}
	for i := 0; i < n; i++ {
		p.RFQs = append(p.RFQs, fmt.Sprintf("RFQ-%04d: %s, qty %d", 1000+i, r.pick(parts), 100*(1+r.intn(50))))
	}
	return p
}

// Post adds a new RFQ.
func (p *PortalSite) Post(rfq string) {
	p.mu.Lock()
	p.RFQs = append(p.RFQs, rfq)
	p.mu.Unlock()
}

// Register installs the RFQ list at host+"/rfq.html".
func (p *PortalSite) Register(w *Web, host string) {
	w.SetPage(host+"/rfq.html", func() string {
		p.mu.Lock()
		defer p.mu.Unlock()
		var b strings.Builder
		b.WriteString(`<html><body><h1>Open RFQs</h1><ol class="rfqs">`)
		for _, r := range p.RFQs {
			fmt.Fprintf(&b, `<li class="rfq">%s</li>`, htmlEscape(r))
		}
		b.WriteString(`</ol></body></html>`)
		return b.String()
	})
}

func htmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
