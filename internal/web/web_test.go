package web

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dom"
)

func TestAuctionSiteDeterministic(t *testing.T) {
	a := NewAuctionSite(42, 30)
	b := NewAuctionSite(42, 30)
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
	c := NewAuctionSite(43, 30)
	same := true
	for i := range a.Items {
		if a.Items[i] != c.Items[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical catalogs")
	}
}

func TestAuctionPagination(t *testing.T) {
	w := New()
	s := NewAuctionSite(1, 60)
	s.PageSize = 25
	s.Register(w, "www.ebay.com")
	if _, err := w.Fetch("www.ebay.com/"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Fetch("www.ebay.com/page1.html"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Fetch("www.ebay.com/page2.html"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Fetch("www.ebay.com/page3.html"); err == nil {
		t.Fatal("page3 should not exist for 60 items / 25 per page")
	}
	if got := w.FetchCount("www.ebay.com/"); got != 1 {
		t.Errorf("fetch count = %d", got)
	}
}

func TestAuctionPageStructure(t *testing.T) {
	w := New()
	NewAuctionSite(7, 10).Register(w, "e")
	tr, err := w.Fetch("e/")
	if err != nil {
		t.Fatal(err)
	}
	tables, hrs := 0, 0
	tr.Walk(func(n dom.NodeID) {
		switch tr.Label(n) {
		case "table":
			tables++
		case "hr":
			hrs++
		}
	})
	if tables != 11 { // header + 10 items
		t.Errorf("tables = %d", tables)
	}
	if hrs != 1 {
		t.Errorf("hrs = %d", hrs)
	}
}

func TestBookSitePriceUpdate(t *testing.T) {
	w := New()
	s := NewBookSite(5, 10)
	s.Register(w, "books.example.com")
	before, _ := w.Source("books.example.com/bestsellers.html")
	s.SetPrice(3, "$ 1.99")
	after, _ := w.Source("books.example.com/bestsellers.html")
	if before == after {
		t.Fatal("price update not visible")
	}
	if !strings.Contains(after, "$ 1.99") {
		t.Fatal("new price missing")
	}
}

func TestRadioRotation(t *testing.T) {
	pool := SongPool(3, 12)
	r := NewRadioSite("Radio Wien", pool, 0)
	w := New()
	r.Register(w, "radio.example.com")
	p1, _ := w.Source("radio.example.com/playlist.html")
	r.Advance()
	p2, _ := w.Source("radio.example.com/playlist.html")
	if p1 == p2 {
		t.Fatal("advancing did not change the page")
	}
	cur := r.Current()
	if !strings.Contains(p2, cur.Title) {
		t.Fatal("current song missing from page")
	}
}

func TestChartAndLyrics(t *testing.T) {
	pool := SongPool(3, 20)
	w := New()
	NewChartSite("Top 10", pool, 9, 10).Register(w, "charts.example.com")
	(&LyricsSite{Pool: pool}).Register(w, "lyrics.example.com")
	chart, err := w.Source("charts.example.com/top.html")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(chart, `class="rank"`) != 10 {
		t.Error("chart rows wrong")
	}
	if _, err := w.Source("lyrics.example.com/lyrics0.html"); err != nil {
		t.Error(err)
	}
	idx, _ := w.Source("lyrics.example.com/index.html")
	if strings.Count(idx, "<li>") != 20 {
		t.Error("lyrics index wrong")
	}
}

func TestFlightStatusChanges(t *testing.T) {
	s := NewFlightSite(11, 20)
	w := New()
	s.Register(w, "air.example.com")
	initial := map[string]string{}
	for _, f := range s.Flights {
		initial[f.Number] = f.Status
	}
	changedAny := false
	for i := 0; i < 5; i++ {
		s.Advance()
	}
	for _, f := range s.Flights {
		if initial[f.Number] != s.Status(f.Number) {
			changedAny = true
		}
	}
	if !changedAny {
		t.Fatal("statuses never change")
	}
	page, _ := w.Source("air.example.com/departures.html")
	if strings.Count(page, `class="flight"`) != 20 {
		t.Error("flight rows wrong")
	}
}

func TestNewsAndQuotes(t *testing.T) {
	n := NewNewsSite("Financial Daily", 2, 5)
	q := NewQuoteSite(2, "ACME", "Globex")
	w := New()
	n.Register(w, "news.example.com")
	q.Register(w, "quotes.example.com")
	page, _ := w.Source("news.example.com/news.html")
	if strings.Count(page, `class="article"`) != 5 {
		t.Error("article count wrong")
	}
	n.Publish(99)
	page2, _ := w.Source("news.example.com/news.html")
	if strings.Count(page2, `class="article"`) != 6 {
		t.Error("publish did not add an article")
	}
	qp, _ := w.Source("quotes.example.com/quotes.html")
	q.Advance()
	qp2, _ := w.Source("quotes.example.com/quotes.html")
	if qp == qp2 {
		t.Error("quotes did not drift")
	}
}

func TestPowerAndVitiAndPortal(t *testing.T) {
	w := New()
	p := NewPowerSite(4)
	p.Register(w, "power.example.com")
	spot, _ := w.Source("power.example.com/spot.html")
	if strings.Count(spot, `class="hour"`) != 24 {
		t.Error("spot rows wrong")
	}
	weather, _ := w.Source("power.example.com/weather.html")
	if !strings.Contains(weather, "Danube") {
		t.Error("weather page wrong")
	}
	(&VitiSite{Regions: []string{"Wachau", "Burgenland"}}).Register(w, "wine.example.com")
	if _, err := w.Source("wine.example.com/wachau.html"); err != nil {
		t.Error(err)
	}
	portal := NewPortalSite(6, 8)
	portal.Register(w, "portal.example.com")
	rfq, _ := w.Source("portal.example.com/rfq.html")
	if strings.Count(rfq, `class="rfq"`) != 8 {
		t.Error("rfq rows wrong")
	}
	portal.Post("RFQ-9999: special")
	rfq2, _ := w.Source("portal.example.com/rfq.html")
	if strings.Count(rfq2, `class="rfq"`) != 9 {
		t.Error("posting failed")
	}
}

func TestServeHTTP(t *testing.T) {
	w := New()
	NewBookSite(1, 3).Register(w, "books.example.com")
	srv := w.Serve()
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/books.example.com/bestsellers.html")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "Bestsellers") {
		t.Error("HTTP serving broken")
	}
	resp2, _ := http.Get(srv.URL + "/nope")
	if resp2.StatusCode != 404 {
		t.Error("missing page should 404")
	}
	resp2.Body.Close()
}

func Test404(t *testing.T) {
	w := New()
	if _, err := w.Fetch("nowhere"); err == nil {
		t.Fatal("expected 404")
	}
}

func TestHTTPFetcherEndToEnd(t *testing.T) {
	w := New()
	NewBookSite(9, 3).Register(w, "books.example.com")
	srv := w.Serve()
	defer srv.Close()
	f := &HTTPFetcher{Base: srv.URL}
	tr, err := f.Fetch("books.example.com/bestsellers.html")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	tr.Walk(func(n dom.NodeID) {
		if tr.Label(n) == "h1" {
			found = true
		}
	})
	if !found {
		t.Error("fetched page lacks heading")
	}
	if _, err := f.Fetch("missing.example.com/x.html"); err == nil {
		t.Error("404 not surfaced")
	}
}

// TestConcurrentFetchWithLatency exercises the fetcher the way the
// evaluator's crawl frontier does: many goroutines fetching stateful
// generated pages at once, with simulated latency. Rendering is
// serialized internally (generators close over site state) while the
// latency overlaps, so this must be race-free and the fetch counters
// exact. Run with -race (CI does).
func TestConcurrentFetchWithLatency(t *testing.T) {
	w := New()
	site := NewAuctionSite(5, 60)
	site.Register(w, "www.ebay.com")
	w.SetLatency(2 * time.Millisecond)
	urls := w.URLs()
	if len(urls) < 2 {
		t.Fatalf("auction site registered %d pages", len(urls))
	}
	const per = 8
	var wg sync.WaitGroup
	errs := make(chan error, len(urls)*per)
	for _, url := range urls {
		for i := 0; i < per; i++ {
			wg.Add(1)
			go func(url string) {
				defer wg.Done()
				tr, err := w.Fetch(url)
				if err != nil {
					errs <- err
					return
				}
				if tr.Size() == 0 {
					errs <- fmt.Errorf("empty tree for %s", url)
				}
			}(url)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	for _, url := range urls {
		if got := w.FetchCount(url); got != per {
			t.Errorf("FetchCount(%s) = %d, want %d", url, got, per)
		}
	}
}
