package visual

import (
	"strings"
	"testing"

	"repro/internal/elog"
	"repro/internal/pib"
	"repro/internal/web"
)

// buildBooksWrapper drives a full visual session on a bestseller page —
// the books example of Figure 4 — using only text selections ("clicks").
func buildBooksWrapper(t *testing.T, site *web.BookSite, w *web.Web) (*Session, *elog.Program) {
	t.Helper()
	doc, err := w.Fetch("books.example.com/bestsellers.html")
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(doc, "books.example.com/bestsellers.html")

	// Step 1: the page pattern.
	if err := s.AddDocumentPattern("page"); err != nil {
		t.Fatal(err)
	}
	// Step 2: the user selects the first book row. Selecting the title
	// text of book 1 picks the td; select the whole row text instead.
	rowText := site.Books[0].Title
	r, ok := s.FindText(rowText)
	if !ok {
		t.Fatalf("example text %q not on page", rowText)
	}
	if _, err := s.AddPattern("titlecell", "page", r); err != nil {
		t.Fatal(err)
	}
	// The inferred rule is too specific (exact path to one row); the
	// user generalizes so that ALL title cells match: keep the last two
	// steps (td under tr) and wildcard the prefix... the td is reached
	// via table/tr/td.
	if err := s.GeneralizePath("titlecell", 2); err != nil {
		t.Fatal(err)
	}
	// Too general now (matches all td under any tr): restrict to the
	// title column by its class attribute — the "restricting conditions"
	// refinement.
	if err := s.RequireAttribute("titlecell", "class", "title", "exact"); err != nil {
		t.Fatal(err)
	}

	// Step 3: author cells, same flow.
	ra, ok := s.FindText(site.Books[0].Author)
	if !ok {
		t.Fatal("author text missing")
	}
	if _, err := s.AddPattern("author", "page", ra); err != nil {
		t.Fatal(err)
	}
	if err := s.GeneralizePath("author", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.RequireAttribute("author", "class", "author", "exact"); err != nil {
		t.Fatal(err)
	}

	// Step 4: price cells.
	rp, ok := s.FindText(site.Books[0].Price)
	if !ok {
		t.Fatal("price text missing")
	}
	if _, err := s.AddPattern("price", "page", rp); err != nil {
		t.Fatal(err)
	}
	if err := s.GeneralizePath("price", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.RequireAttribute("price", "class", "price", "exact"); err != nil {
		t.Fatal(err)
	}
	return s, s.Program()
}

func TestE7BooksVisualWrapper(t *testing.T) {
	w := web.New()
	site := web.NewBookSite(21, 12)
	site.Register(w, "books.example.com")
	s, prog := buildBooksWrapper(t, site, w)

	counts, err := s.Test()
	if err != nil {
		t.Fatal(err)
	}
	for _, pat := range []string{"titlecell", "author", "price"} {
		if counts[pat] != 12 {
			t.Errorf("%s instances = %d, want 12 (program:\n%s)", pat, counts[pat], prog)
		}
	}
	// Productivity: the whole wrapper took a handful of gestures.
	if s.Interactions > 12 {
		t.Errorf("interactions = %d, expected a small number", s.Interactions)
	}

	// Accuracy on a HELD-OUT page: a different catalog from a different
	// seed, same layout. Rewire the program's URL by serving the new
	// page at the same address.
	w2 := web.New()
	site2 := web.NewBookSite(99, 30)
	site2.Register(w2, "books.example.com")
	ev := elog.NewEvaluator(w2)
	base, err := ev.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	titles := base.Instances("titlecell")
	if len(titles) != 30 {
		t.Fatalf("held-out titles = %d, want 30", len(titles))
	}
	for i, in := range titles {
		want := site2.Books[i].Title
		if got := strings.TrimSpace(in.TextContent()); got != want {
			t.Errorf("title[%d] = %q, want %q", i, got, want)
		}
	}
}

func TestSelectNodeBestMatch(t *testing.T) {
	w := web.New()
	web.NewBookSite(21, 3).Register(w, "b")
	doc, _ := w.Fetch("b/bestsellers.html")
	s := NewSession(doc, "b/bestsellers.html")
	// Selecting the heading text must pick the h1, not body/html.
	r, ok := s.FindText("Book Bestsellers")
	if !ok {
		t.Fatal("heading missing")
	}
	n, err := s.SelectNode(r)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Label(n) != "h1" {
		t.Errorf("selected %s, want h1", doc.Label(n))
	}
	// A selection spanning two cells must pick their common row.
	full := s.RenderedText()
	i := strings.Index(full, "1")
	j := strings.Index(full, "Vol.")
	if i < 0 || j < 0 {
		t.Skip("layout changed")
	}
	n2, err := s.SelectNode(Region{Start: i, End: j})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Label(n2) != "tr" && doc.Label(n2) != "table" {
		t.Errorf("cross-cell selection picked %s", doc.Label(n2))
	}
}

func TestSelectNodeErrors(t *testing.T) {
	w := web.New()
	web.NewBookSite(21, 3).Register(w, "b")
	doc, _ := w.Fetch("b/bestsellers.html")
	s := NewSession(doc, "b/bestsellers.html")
	if _, err := s.SelectNode(Region{Start: 5, End: 5}); err == nil {
		t.Error("empty region accepted")
	}
	if _, err := s.SelectNode(Region{Start: -1, End: 3}); err == nil {
		t.Error("negative region accepted")
	}
	if _, err := s.SelectNode(Region{Start: 0, End: 1 << 30}); err == nil {
		t.Error("out-of-range region accepted")
	}
}

func TestHighlight(t *testing.T) {
	w := web.New()
	site := web.NewBookSite(21, 5)
	site.Register(w, "books.example.com")
	s, _ := buildBooksWrapper(t, site, w)
	hs, err := s.Highlight("titlecell")
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 5 {
		t.Fatalf("highlights = %d", len(hs))
	}
	text := s.RenderedText()
	for i, h := range hs {
		if !strings.Contains(text[h.Start:h.End], site.Books[i].Title) {
			t.Errorf("highlight %d = %q does not cover title", i, text[h.Start:h.End])
		}
	}
}

func TestAddPatternOutsideParent(t *testing.T) {
	w := web.New()
	web.NewBookSite(21, 3).Register(w, "b")
	doc, _ := w.Fetch("b/bestsellers.html")
	s := NewSession(doc, "b/bestsellers.html")
	r, _ := s.FindText("Vol.")
	if _, err := s.AddPattern("x", "nosuchparent", r); err == nil {
		t.Error("undefined parent accepted")
	}
}

func TestXMLFromVisualWrapper(t *testing.T) {
	w := web.New()
	site := web.NewBookSite(21, 4)
	site.Register(w, "books.example.com")
	_, prog := buildBooksWrapper(t, site, w)
	base, err := elog.NewEvaluator(w).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	d := &pib.Design{Auxiliary: map[string]bool{"document": true, "page": true}, RootName: "books"}
	xml := d.TransformString(base)
	if strings.Count(xml, "<titlecell>") != 4 || strings.Count(xml, "<price>") != 4 {
		t.Errorf("xml:\n%s", xml)
	}
}

func BenchmarkE7_VisualBuild(b *testing.B) {
	w := web.New()
	site := web.NewBookSite(21, 12)
	site.Register(w, "books.example.com")
	doc, _ := w.Fetch("books.example.com/bestsellers.html")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSession(doc, "books.example.com/bestsellers.html")
		if err := s.AddDocumentPattern("page"); err != nil {
			b.Fatal(err)
		}
		r, _ := s.FindText(site.Books[0].Title)
		if _, err := s.AddPattern("titlecell", "page", r); err != nil {
			b.Fatal(err)
		}
		if err := s.GeneralizePath("titlecell", 2); err != nil {
			b.Fatal(err)
		}
		if err := s.RequireAttribute("titlecell", "class", "title", "exact"); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Test(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAddBeforeCondition(t *testing.T) {
	w := web.New()
	site := web.NewBookSite(21, 4)
	site.Register(w, "books.example.com")
	doc, _ := w.Fetch("books.example.com/bestsellers.html")
	s := NewSession(doc, "books.example.com/bestsellers.html")
	if err := s.AddDocumentPattern("page"); err != nil {
		t.Fatal(err)
	}
	r, _ := s.FindText(site.Books[0].Title)
	if _, err := s.AddPattern("cell", "page", r); err != nil {
		t.Fatal(err)
	}
	if err := s.GeneralizePath("cell", 1); err != nil {
		t.Fatal(err)
	}
	// Landmark: cells must come after the page heading.
	h, ok := s.FindText("Book Bestsellers")
	if !ok {
		t.Fatal("heading missing")
	}
	before := s.Interactions
	if err := s.AddBeforeCondition("cell", h, false, 0, 100000); err != nil {
		t.Fatal(err)
	}
	if s.Interactions != before+1 {
		t.Error("interaction not counted")
	}
	counts, err := s.Test()
	if err != nil {
		t.Fatal(err)
	}
	if counts["cell"] == 0 {
		t.Errorf("condition killed all instances: %v", counts)
	}
	// An impossible landmark window kills everything.
	if err := s.AddBeforeCondition("cell", h, true, 100000, 100001); err != nil {
		t.Fatal(err)
	}
	counts, _ = s.Test()
	if counts["cell"] != 0 {
		t.Errorf("impossible condition left %d instances", counts["cell"])
	}
}
