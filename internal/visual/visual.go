// Package visual implements the Interactive Pattern Builder of
// Section 3.2 (Figures 3 and 4): the visual wrapper-specification
// process in which a user, working on one (or few) example documents,
// builds an Elog program "using mainly mouse clicks" — without knowing
// the wrapper language.
//
// A GUI is only an input device for document regions; everything the
// paper describes the *system* doing is an algorithm, and this package
// implements it:
//
//   - a "click" is a Region (a character range of the rendered document
//     text, or a direct node handle); SelectNode robustly determines
//     the document-tree node best matching the region,
//   - for a (parent pattern, selected node) pair the system infers the
//     path π and emits the rule p(S, X) ← p0(_, S), subelem(S, π, X),
//   - Highlight shows the current instances of a pattern (the
//     highlighted regions of Figure 3),
//   - too-general filters are refined by adding conditions, too-specific
//     ones by generalizing the path — both tracked as "interactions" so
//     experiment E7 can report how many clicks a wrapper costs.
package visual

import (
	"fmt"
	"strings"

	"repro/internal/dom"
	"repro/internal/elog"
	"repro/internal/pib"
)

// Region is a user selection on the rendered example document: a
// character interval of the document's visible text (as produced by
// RenderedText). Mouse selections in a browser map to exactly this.
type Region struct {
	Start, End int
}

// Session is one interactive wrapper-construction session over an
// example document.
type Session struct {
	doc     *dom.Tree
	url     string
	rules   []*elog.Rule
	defined map[string]bool
	// Interactions counts user gestures (clicks/refinements) — the
	// productivity metric of experiment E7.
	Interactions int

	// text rendering with node spans, for region→node matching.
	text  string
	spans map[dom.NodeID][2]int
}

// NewSession starts a session on an example document. url is the address
// the generated program's document atom will use.
func NewSession(doc *dom.Tree, url string) *Session {
	s := &Session{doc: doc, url: url, defined: map[string]bool{"document": true}}
	s.renderText()
	return s
}

// renderText computes the visible text and each node's span within it.
func (s *Session) renderText() {
	var b strings.Builder
	s.spans = map[dom.NodeID][2]int{}
	var rec func(n dom.NodeID)
	rec = func(n dom.NodeID) {
		start := b.Len()
		if s.doc.Kind(n) == dom.Text {
			b.WriteString(s.doc.Text(n))
		}
		for c := s.doc.FirstChild(n); c != dom.Nil; c = s.doc.NextSibling(c) {
			rec(c)
		}
		s.spans[n] = [2]int{start, b.Len()}
	}
	if s.doc.Size() > 0 {
		rec(s.doc.Root())
	}
	s.text = b.String()
}

// RenderedText returns the document's visible text — what the user sees
// and selects in.
func (s *Session) RenderedText() string { return s.text }

// FindText returns the region of the first occurrence of needle in the
// rendered text; convenient for driving sessions from tests ("the user
// selects the words ...").
func (s *Session) FindText(needle string) (Region, bool) {
	i := strings.Index(s.text, needle)
	if i < 0 {
		return Region{}, false
	}
	return Region{Start: i, End: i + len(needle)}, true
}

// SelectNode determines the document-tree node best matching a selected
// region: the deepest node whose text span covers the region
// (Section 3.2: "the node in the document tree best matching the
// selected region can be robustly determined").
func (s *Session) SelectNode(r Region) (dom.NodeID, error) {
	if r.Start < 0 || r.End > len(s.text) || r.Start >= r.End {
		return dom.Nil, fmt.Errorf("visual: empty or out-of-range region %v", r)
	}
	best := dom.Nil
	bestSize := len(s.text) + 1
	for n := 0; n < s.doc.Size(); n++ {
		id := dom.NodeID(n)
		if s.doc.Kind(id) == dom.Text {
			continue // select elements, not raw text nodes
		}
		sp := s.spans[id]
		if sp[0] <= r.Start && r.End <= sp[1] {
			if size := sp[1] - sp[0]; size < bestSize {
				best, bestSize = id, size
			}
		}
	}
	if best == dom.Nil {
		return dom.Nil, fmt.Errorf("visual: no node covers region %v", r)
	}
	return best, nil
}

// AddDocumentPattern defines the entry pattern wrapping the whole page:
// name(S, X) ← document(url, S), subelem(S, .body, X). Most wrappers
// start here (the "root" pattern of Section 3.2 corresponds to the
// document itself).
func (s *Session) AddDocumentPattern(name string) error {
	if s.defined[name] {
		return fmt.Errorf("visual: pattern %s already defined", name)
	}
	s.Interactions++
	s.rules = append(s.rules, &elog.Rule{
		Head: name, Parent: "document", DocURL: s.url,
		Extract: &elog.Extract{Kind: elog.Subelem, EPD: elog.MustParseEPD(".body")},
	})
	s.defined[name] = true
	return nil
}

// AddPattern performs the core visual step of Figure 3: the user chooses
// a destination pattern name and a parent pattern, then selects an
// example region inside a highlighted parent instance. The system finds
// the best matching node, computes the label path π from the parent
// instance to it, and adds the filter
//
//	name(S, X) ← parent(_, S), subelem(S, π, X).
//
// The generated rule is returned so the caller can inspect (or display)
// it; it is already part of the session's program.
func (s *Session) AddPattern(name, parent string, r Region) (*elog.Rule, error) {
	if !s.defined[parent] {
		return nil, fmt.Errorf("visual: parent pattern %s not defined", parent)
	}
	node, err := s.SelectNode(r)
	if err != nil {
		return nil, err
	}
	// Find a highlighted parent instance containing the selection.
	parentInst, err := s.instanceContaining(parent, node)
	if err != nil {
		return nil, err
	}
	path, ok := s.doc.PathLabels(parentInst, node)
	if !ok {
		if parentInst == node {
			return nil, fmt.Errorf("visual: selection equals the parent instance; refine the parent pattern instead")
		}
		return nil, fmt.Errorf("visual: selection lies outside the parent instance")
	}
	epd := elog.MustParseEPD("." + strings.Join(path, "."))
	s.Interactions++ // one selection gesture
	rule := &elog.Rule{
		Head: name, Parent: parent,
		Extract: &elog.Extract{Kind: elog.Subelem, EPD: epd},
	}
	s.rules = append(s.rules, rule)
	s.defined[name] = true
	return rule, nil
}

// instanceContaining finds an instance of pattern whose subtree contains
// node, by evaluating the program built so far (the system highlights
// those instances; the user clicked within one).
func (s *Session) instanceContaining(pattern string, node dom.NodeID) (dom.NodeID, error) {
	base, err := s.evaluate()
	if err != nil {
		return dom.Nil, err
	}
	for _, in := range base.Instances(pattern) {
		for _, n := range in.Nodes {
			if n == node || in.Doc.IsAncestor(n, node) {
				return n, nil
			}
		}
	}
	return dom.Nil, fmt.Errorf("visual: the selection is not inside any instance of %s", pattern)
}

// GeneralizePath replaces the leading steps of the last rule for pattern
// by the deep wildcard '?', keeping the final keep steps — the
// "generalizing the path π" refinement of Section 3.2. One interaction.
func (s *Session) GeneralizePath(pattern string, keep int) error {
	r := s.lastRule(pattern)
	if r == nil || r.Extract == nil || r.Extract.EPD == nil {
		return fmt.Errorf("visual: no path to generalize for %s", pattern)
	}
	steps := r.Extract.EPD.Steps
	if keep <= 0 || keep > len(steps) {
		return fmt.Errorf("visual: keep must be in 1..%d", len(steps))
	}
	var b strings.Builder
	b.WriteString("?")
	for _, st := range steps[len(steps)-keep:] {
		switch st.Kind {
		case "tag":
			b.WriteString("." + st.Tag)
		case "star":
			b.WriteString(".*")
		case "content":
			b.WriteString(".content")
		case "deep":
			b.WriteString(".?")
		}
	}
	epd, err := elog.ParseEPD(b.String())
	if err != nil {
		return err
	}
	epd.Conds = r.Extract.EPD.Conds
	r.Extract.EPD = epd
	s.Interactions++
	return nil
}

// RequireAttribute refines the last rule for pattern with an attribute
// condition ("adding restricting conditions", Section 3.2). Mode is
// exact, substr or regexp; attr may be "elementtext".
func (s *Session) RequireAttribute(pattern, attr, value, mode string) error {
	r := s.lastRule(pattern)
	if r == nil || r.Extract == nil || r.Extract.EPD == nil {
		return fmt.Errorf("visual: no rule to refine for %s", pattern)
	}
	cur := r.Extract.EPD.String()
	refined, err := elog.ParseEPD(fmt.Sprintf("(%s, [(%s, %s, %s)])", strings.TrimSuffix(strings.TrimPrefix(cur, "("), ")"), attr, value, mode))
	if err != nil {
		return err
	}
	// Keep previously added conditions too.
	refined.Conds = append(r.Extract.EPD.Conds, refined.Conds...)
	r.Extract.EPD = refined
	s.Interactions++
	return nil
}

// AddBeforeCondition adds a context condition to the last rule for
// pattern: an element matching epd must appear before (or after) the
// instance within tolerance — the user picks the landmark element by
// clicking it, the system infers its path.
func (s *Session) AddBeforeCondition(pattern string, landmark Region, after bool, dmin, dmax int) error {
	r := s.lastRule(pattern)
	if r == nil {
		return fmt.Errorf("visual: pattern %s has no rule", pattern)
	}
	node, err := s.SelectNode(landmark)
	if err != nil {
		return err
	}
	epd := elog.MustParseEPD("." + s.doc.Label(node))
	s.Interactions++
	r.Conds = append(r.Conds, elog.BeforeCond{EPD: epd, DMin: dmin, DMax: dmax, After: after})
	return nil
}

// lastRule returns the most recently added rule for pattern.
func (s *Session) lastRule(pattern string) *elog.Rule {
	for i := len(s.rules) - 1; i >= 0; i-- {
		if s.rules[i].Head == pattern {
			return s.rules[i]
		}
	}
	return nil
}

// Program returns the Elog program built so far (the fully automatic
// output of the visual process).
func (s *Session) Program() *elog.Program {
	return &elog.Program{Rules: s.rules}
}

// evaluate runs the current program on the example document.
func (s *Session) evaluate() (*pib.Base, error) {
	ev := elog.NewEvaluator(elog.MapFetcher{s.url: s.doc})
	return ev.Run(s.Program())
}

// Highlight returns the regions of all current instances of pattern —
// what the GUI would highlight (Figure 3, "the system can then display
// the document and highlight those regions").
func (s *Session) Highlight(pattern string) ([]Region, error) {
	base, err := s.evaluate()
	if err != nil {
		return nil, err
	}
	var out []Region
	for _, in := range base.Instances(pattern) {
		if in.Doc != s.doc || len(in.Nodes) == 0 {
			continue
		}
		sp := s.spans[in.Nodes[0]]
		last := s.spans[in.Nodes[len(in.Nodes)-1]]
		out = append(out, Region{Start: sp[0], End: last[1]})
	}
	return out, nil
}

// Test evaluates the current program and reports the instance count per
// pattern — the "test pattern" button of Figure 4's UI.
func (s *Session) Test() (map[string]int, error) {
	base, err := s.evaluate()
	if err != nil {
		return nil, err
	}
	out := map[string]int{}
	for _, p := range base.Patterns() {
		out[p] = len(base.Instances(p))
	}
	return out, nil
}
