// Package datalog implements classical function-free datalog with
// stratified negation: syntax, parser, stratification, and semi-naive
// bottom-up evaluation over arbitrary finite structures.
//
// In the paper this is the general setting of Proposition 2.3: monadic
// datalog over arbitrary finite structures is NP-complete (combined
// complexity), and full datalog is EXPTIME-complete. The engine here is
// the baseline against which internal/mdatalog demonstrates Theorem 2.4's
// O(|P|·|dom|) bound for monadic datalog over trees (experiment E3). It
// is also used as a differential-testing oracle: a tree can be loaded as
// an EDB (see TreeDB in internal/mdatalog) and any monadic program run on
// both engines must select the same nodes.
package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// Term is a variable or a constant. Variables begin with an upper-case
// letter or '_'; everything else is a constant.
type Term struct {
	// Name is the variable name or constant value.
	Name string
	// IsVar reports whether the term is a variable.
	IsVar bool
}

// Var returns a variable term.
func Var(name string) Term { return Term{Name: name, IsVar: true} }

// Const returns a constant term.
func Const(value string) Term { return Term{Name: value, IsVar: false} }

func (t Term) String() string {
	if t.IsVar {
		return t.Name
	}
	if needsQuoting(t.Name) {
		return fmt.Sprintf("%q", t.Name)
	}
	return t.Name
}

func needsQuoting(s string) bool {
	if s == "" {
		return true
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
			if i == 0 {
				return true // would parse as a variable
			}
		case c >= '0' && c <= '9':
		case c == '_' || c == '-' || c == '.' || c == '#':
		default:
			return true
		}
	}
	return false
}

// Atom is a predicate applied to terms, possibly negated when used in a
// rule body.
type Atom struct {
	Pred    string
	Args    []Term
	Negated bool
}

func (a Atom) String() string {
	var b strings.Builder
	if a.Negated {
		b.WriteString("not ")
	}
	b.WriteString(a.Pred)
	if len(a.Args) > 0 {
		b.WriteByte('(')
		for i, t := range a.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(t.String())
		}
		b.WriteByte(')')
	}
	return b.String()
}

// Rule is a datalog rule Head :- Body. A rule with an empty body is a
// fact (all head arguments must then be constants).
type Rule struct {
	Head Atom
	Body []Atom
}

func (r Rule) String() string {
	if len(r.Body) == 0 {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, a := range r.Body {
		parts[i] = a.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// IsFact reports whether the rule has an empty body.
func (r Rule) IsFact() bool { return len(r.Body) == 0 }

// Program is a list of rules.
type Program struct {
	Rules []Rule
}

func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// IDBPredicates returns the set of intensional predicates (those that
// occur in some rule head), sorted.
func (p *Program) IDBPredicates() []string {
	set := map[string]bool{}
	for _, r := range p.Rules {
		set[r.Head.Pred] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// IsMonadic reports whether every intensional predicate of the program is
// unary — the defining property of monadic datalog (Section 2.3).
func (p *Program) IsMonadic() bool {
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	check := func(a Atom) bool { return !idb[a.Pred] || len(a.Args) == 1 }
	for _, r := range p.Rules {
		if !check(r.Head) {
			return false
		}
		for _, a := range r.Body {
			if !check(a) {
				return false
			}
		}
	}
	return true
}

// Size returns the size |P| of the program measured in atoms, the measure
// used in the combined-complexity statements of the paper.
func (p *Program) Size() int {
	n := 0
	for _, r := range p.Rules {
		n += 1 + len(r.Body)
	}
	return n
}

// Validate checks range restriction (every head variable and every
// variable in a negated atom occurs in some positive body atom) and
// returns a descriptive error for the first violation.
func (p *Program) Validate() error {
	for _, r := range p.Rules {
		pos := map[string]bool{}
		for _, a := range r.Body {
			if a.Negated {
				continue
			}
			for _, t := range a.Args {
				if t.IsVar {
					pos[t.Name] = true
				}
			}
		}
		for _, t := range r.Head.Args {
			if t.IsVar && !pos[t.Name] {
				return fmt.Errorf("datalog: rule %s: head variable %s not range-restricted", r, t.Name)
			}
		}
		for _, a := range r.Body {
			if !a.Negated {
				continue
			}
			for _, t := range a.Args {
				if t.IsVar && !pos[t.Name] {
					return fmt.Errorf("datalog: rule %s: variable %s occurs only in negated atom", r, t.Name)
				}
			}
		}
	}
	return nil
}
