package datalog

import (
	"fmt"

	"repro/internal/strata"
)

// Stratify partitions the program's intensional predicates into strata
// such that negative dependencies only point to strictly lower strata.
// It returns the rules grouped by stratum in evaluation order, or an
// error if the program is not stratifiable (a negative cycle exists).
//
// The stratum numbers come from the shared solver in internal/strata
// (also used by the Elog engine). Dependencies on extensional
// predicates are dropped before solving: EDB facts are fully known
// before evaluation, so negation on them needs no stratification.
func Stratify(p *Program) ([][]Rule, error) {
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	deps := make([]strata.Rule, 0, len(p.Rules))
	for _, r := range p.Rules {
		sr := strata.Rule{Head: r.Head.Pred}
		for _, a := range r.Body {
			if idb[a.Pred] {
				sr.Deps = append(sr.Deps, strata.Dep{Pred: a.Pred, Negated: a.Negated})
			}
		}
		deps = append(deps, sr)
	}
	stratum, err := strata.Solve(deps)
	if err != nil {
		return nil, fmt.Errorf("datalog: program is not stratifiable (cycle through negation)")
	}
	out := make([][]Rule, strata.Height(stratum))
	for _, r := range p.Rules {
		s := stratum[r.Head.Pred]
		out[s] = append(out[s], r)
	}
	return out, nil
}

// Eval computes the stratified model of program p over the extensional
// database edb and returns a new database containing both the original
// facts and all derived intensional facts. The input database is not
// modified.
//
// Evaluation is semi-naive within each stratum. Worst-case complexity is
// exponential in program arity (full datalog is EXPTIME-complete,
// cf. [9] in the paper); for monadic programs it is polynomial but not
// linear — experiment E3 contrasts this with internal/mdatalog.
func Eval(p *Program, edb *DB) (*DB, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	strata, err := Stratify(p)
	if err != nil {
		return nil, err
	}
	db := edb.Clone()
	for _, rules := range strata {
		if err := evalStratum(rules, db); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// evalStratum runs semi-naive evaluation of a negation-free-on-IDB (for
// this stratum) rule set to fixpoint, adding facts to db.
func evalStratum(rules []Rule, db *DB) error {
	idb := map[string]bool{}
	for _, r := range rules {
		idb[r.Head.Pred] = true
		if db.rels[r.Head.Pred] == nil {
			db.rels[r.Head.Pred] = NewRelation(len(r.Head.Args))
		}
	}
	// delta contains the facts derived in the previous round, per
	// predicate.
	delta := map[string]*Relation{}
	// Round 0: naive evaluation of every rule against the current db.
	for _, r := range rules {
		derive(r, db, nil, -1, func(t Tuple) {
			if db.rels[r.Head.Pred].Add(t) {
				addDelta(delta, r.Head.Pred, t, len(t))
			}
		})
	}
	for len(delta) > 0 {
		next := map[string]*Relation{}
		for _, r := range rules {
			// Semi-naive: for each body position holding an IDB
			// predicate of this stratum, join with the delta at that
			// position and the full relations elsewhere.
			for i, a := range r.Body {
				if a.Negated || !idb[a.Pred] {
					continue
				}
				d := delta[a.Pred]
				if d == nil || d.Len() == 0 {
					continue
				}
				derive(r, db, d, i, func(t Tuple) {
					if db.rels[r.Head.Pred].Add(t) {
						addDelta(next, r.Head.Pred, t, len(t))
					}
				})
			}
		}
		delta = next
	}
	return nil
}

func addDelta(m map[string]*Relation, pred string, t Tuple, arity int) {
	r, ok := m[pred]
	if !ok {
		r = NewRelation(arity)
		m[pred] = r
	}
	r.Add(t)
}

// derive enumerates all satisfying assignments of rule r's body over db,
// where body atom deltaPos (if >= 0) ranges over deltaRel instead of the
// full relation, and calls emit with each resulting head tuple.
func derive(r Rule, db *DB, deltaRel *Relation, deltaPos int, emit func(Tuple)) {
	// Order body atoms: the delta atom first (it is typically the most
	// selective), then remaining positives left to right, negatives last.
	var order []int
	if deltaPos >= 0 {
		order = append(order, deltaPos)
	}
	for i, a := range r.Body {
		if i != deltaPos && !a.Negated {
			order = append(order, i)
		}
	}
	for i, a := range r.Body {
		if i != deltaPos && a.Negated {
			order = append(order, i)
		}
	}

	binding := map[string]string{}
	var rec func(k int)
	rec = func(k int) {
		if k == len(order) {
			head := make(Tuple, len(r.Head.Args))
			for i, t := range r.Head.Args {
				if t.IsVar {
					head[i] = binding[t.Name]
				} else {
					head[i] = t.Name
				}
			}
			emit(head)
			return
		}
		idx := order[k]
		a := r.Body[idx]
		if a.Negated {
			// All variables bound by now (range restriction).
			args := make(Tuple, len(a.Args))
			for i, t := range a.Args {
				if t.IsVar {
					args[i] = binding[t.Name]
				} else {
					args[i] = t.Name
				}
			}
			rel := db.rels[a.Pred]
			if rel != nil && rel.Contains(args) {
				return
			}
			rec(k + 1)
			return
		}
		var rel *Relation
		if idx == deltaPos {
			rel = deltaRel
		} else {
			rel = db.rels[a.Pred]
		}
		if rel == nil || rel.Len() == 0 {
			return
		}
		// Choose candidates: if some argument is bound, use an index.
		var candidates []Tuple
		usedIndex := false
		for i, t := range a.Args {
			var v string
			if t.IsVar {
				b, ok := binding[t.Name]
				if !ok {
					continue
				}
				v = b
			} else {
				v = t.Name
			}
			candidates = rel.lookup(i, v)
			usedIndex = true
			break
		}
		if !usedIndex {
			candidates = rel.Tuples()
		}
	cand:
		for _, tup := range candidates {
			var bound []string
			for i, t := range a.Args {
				if !t.IsVar {
					if tup[i] != t.Name {
						for _, name := range bound {
							delete(binding, name)
						}
						continue cand
					}
					continue
				}
				if v, ok := binding[t.Name]; ok {
					if v != tup[i] {
						// Undo partial bindings from this tuple.
						for _, name := range bound {
							delete(binding, name)
						}
						continue cand
					}
				} else {
					binding[t.Name] = tup[i]
					bound = append(bound, t.Name)
				}
			}
			rec(k + 1)
			for _, name := range bound {
				delete(binding, name)
			}
		}
	}
	rec(0)
}

// Query evaluates program p over edb and returns the unary query result
// for the designated query predicate, sorted. It is the "unary query"
// reading of a monadic datalog program (Section 2.3).
func Query(p *Program, edb *DB, queryPred string) ([]string, error) {
	db, err := Eval(p, edb)
	if err != nil {
		return nil, err
	}
	return db.Unary(queryPred), nil
}
