package datalog

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads a datalog program in the conventional syntax:
//
//	italic(X) :- label_i(X).
//	italic(X) :- italic(X0), firstchild(X0, X).
//	reachable(X, Y) :- edge(X, Y).
//	reachable(X, Z) :- reachable(X, Y), edge(Y, Z).
//	unhappy(X) :- node(X), not reachable(X, X).
//	fact(a, "some constant").
//
// '%' starts a comment to end of line. Variables start with an upper-case
// letter or '_'; identifiers starting with a lower-case letter, numbers,
// and double-quoted strings are constants. "not" or "!" negates a body
// atom. ":-" and "<-" are both accepted as the rule arrow.
func Parse(src string) (*Program, error) {
	p := &parser{src: src}
	prog := &Program{}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			break
		}
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, r)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse is Parse that panics on error; for tests and examples.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	line := 1 + strings.Count(p.src[:min(p.pos, len(p.src))], "\n")
	return fmt.Errorf("datalog: line %d: %s", line, fmt.Sprintf(format, args...))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '%' {
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		p.pos++
	}
}

func (p *parser) rule() (Rule, error) {
	head, err := p.atom(false)
	if err != nil {
		return Rule{}, err
	}
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '.' {
		p.pos++
		for _, t := range head.Args {
			if t.IsVar {
				return Rule{}, p.errf("fact %s contains variable %s", head, t.Name)
			}
		}
		return Rule{Head: head}, nil
	}
	if !p.eat(":-") && !p.eat("<-") {
		return Rule{}, p.errf("expected '.' or ':-' after %s", head)
	}
	var body []Atom
	for {
		p.skipSpace()
		a, err := p.atom(true)
		if err != nil {
			return Rule{}, err
		}
		body = append(body, a)
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == ',' {
			p.pos++
			continue
		}
		if p.pos < len(p.src) && p.src[p.pos] == '.' {
			p.pos++
			return Rule{Head: head, Body: body}, nil
		}
		return Rule{}, p.errf("expected ',' or '.' in rule body")
	}
}

func (p *parser) eat(s string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *parser) atom(allowNeg bool) (Atom, error) {
	p.skipSpace()
	neg := false
	if allowNeg {
		if p.eat("not ") || p.eat("!") {
			neg = true
			p.skipSpace()
		}
	}
	name, err := p.ident()
	if err != nil {
		return Atom{}, err
	}
	a := Atom{Pred: name, Negated: neg}
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		p.pos++
		for {
			t, err := p.term()
			if err != nil {
				return Atom{}, err
			}
			a.Args = append(a.Args, t)
			p.skipSpace()
			if p.pos >= len(p.src) {
				return Atom{}, p.errf("unterminated argument list of %s", name)
			}
			switch p.src[p.pos] {
			case ',':
				p.pos++
			case ')':
				p.pos++
				return a, nil
			default:
				return Atom{}, p.errf("expected ',' or ')' in arguments of %s", name)
			}
		}
	}
	return a, nil
}

func (p *parser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-' || c == '.' && p.pos+1 < len(p.src) && isIdentByte(p.src[p.pos+1]) {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", p.errf("expected identifier")
	}
	return p.src[start:p.pos], nil
}

func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

func (p *parser) term() (Term, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return Term{}, p.errf("expected term")
	}
	c := p.src[p.pos]
	if c == '"' {
		val, err := strconv.QuotedPrefix(p.src[p.pos:])
		if err != nil {
			return Term{}, p.errf("bad string: %v", err)
		}
		unq, _ := strconv.Unquote(val)
		p.pos += len(val)
		return Const(unq), nil
	}
	name, err := p.ident()
	if err != nil {
		return Term{}, err
	}
	if name[0] >= 'A' && name[0] <= 'Z' || name[0] == '_' {
		return Var(name), nil
	}
	return Const(name), nil
}
