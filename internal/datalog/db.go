package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple is one row of a relation. Components are strings; node ids,
// numbers etc. are encoded textually.
type Tuple []string

func (t Tuple) key() string { return strings.Join(t, "\x00") }

// Relation is a set of tuples of a fixed arity.
type Relation struct {
	Arity  int
	tuples map[string]Tuple
	// index[i][v] lists tuples whose i-th component is v; built lazily.
	index []map[string][]Tuple
}

// NewRelation returns an empty relation of the given arity.
func NewRelation(arity int) *Relation {
	return &Relation{Arity: arity, tuples: map[string]Tuple{}}
}

// Add inserts a tuple, reporting whether it was new.
func (r *Relation) Add(t Tuple) bool {
	if len(t) != r.Arity {
		panic(fmt.Sprintf("datalog: arity mismatch: %v into arity-%d relation", t, r.Arity))
	}
	k := t.key()
	if _, ok := r.tuples[k]; ok {
		return false
	}
	cp := make(Tuple, len(t))
	copy(cp, t)
	r.tuples[k] = cp
	if r.index != nil {
		for i, m := range r.index {
			if m != nil {
				m[cp[i]] = append(m[cp[i]], cp)
			}
		}
	}
	return true
}

// Contains reports membership of a tuple.
func (r *Relation) Contains(t Tuple) bool {
	_, ok := r.tuples[t.key()]
	return ok
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns all tuples in unspecified order.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, 0, len(r.tuples))
	for _, t := range r.tuples {
		out = append(out, t)
	}
	return out
}

// SortedTuples returns all tuples sorted lexicographically, for
// deterministic output.
func (r *Relation) SortedTuples() []Tuple {
	out := r.Tuples()
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// lookup returns the tuples whose component pos equals v, using (and
// lazily building) a hash index.
func (r *Relation) lookup(pos int, v string) []Tuple {
	if r.index == nil {
		r.index = make([]map[string][]Tuple, r.Arity)
	}
	if r.index[pos] == nil {
		m := make(map[string][]Tuple)
		for _, t := range r.tuples {
			m[t[pos]] = append(m[t[pos]], t)
		}
		r.index[pos] = m
	}
	return r.index[pos][v]
}

// DB is a finite structure: a mapping from predicate names to relations.
// It serves both as the extensional database for evaluation and as the
// container for computed intensional relations.
type DB struct {
	rels map[string]*Relation
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{rels: map[string]*Relation{}} }

// Add inserts the fact pred(args...) into the database, creating the
// relation on first use.
func (db *DB) Add(pred string, args ...string) {
	r, ok := db.rels[pred]
	if !ok {
		r = NewRelation(len(args))
		db.rels[pred] = r
	}
	r.Add(Tuple(args))
}

// Relation returns the relation for pred, or nil if absent.
func (db *DB) Relation(pred string) *Relation { return db.rels[pred] }

// Has reports whether the fact pred(args...) holds.
func (db *DB) Has(pred string, args ...string) bool {
	r := db.rels[pred]
	return r != nil && r.Contains(Tuple(args))
}

// Predicates returns the sorted predicate names present.
func (db *DB) Predicates() []string {
	out := make([]string, 0, len(db.rels))
	for k := range db.rels {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Facts returns the total number of facts stored.
func (db *DB) Facts() int {
	n := 0
	for _, r := range db.rels {
		n += r.Len()
	}
	return n
}

// Clone returns a deep copy of the database.
func (db *DB) Clone() *DB {
	c := NewDB()
	for name, r := range db.rels {
		nr := NewRelation(r.Arity)
		for _, t := range r.tuples {
			nr.Add(t)
		}
		c.rels[name] = nr
	}
	return c
}

// Unary returns the set of values v with pred(v), sorted; convenient for
// reading out monadic query predicates.
func (db *DB) Unary(pred string) []string {
	r := db.rels[pred]
	if r == nil {
		return nil
	}
	if r.Arity != 1 {
		panic("datalog: Unary on non-unary relation " + pred)
	}
	out := make([]string, 0, r.Len())
	for _, t := range r.tuples {
		out = append(out, t[0])
	}
	sort.Strings(out)
	return out
}
