package datalog

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseRoundTrip(t *testing.T) {
	src := `
% transitive closure
reachable(X, Y) :- edge(X, Y).
reachable(X, Z) :- reachable(X, Y), edge(Y, Z).
isolated(X) :- node(X), not touched(X).
touched(X) :- edge(X, Y_1).
touched(Y) :- edge(X, Y).
start(a).
labeled(n1, "some label").
`
	p := MustParse(src)
	if len(p.Rules) != 7 {
		t.Fatalf("got %d rules", len(p.Rules))
	}
	// Reparse the printed form.
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, p.String())
	}
	if p.String() != p2.String() {
		t.Errorf("print-parse-print differs:\n%s\n%s", p, p2)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"p(X)",                    // missing '.'
		"p(X) :- q(X,",            // unterminated args
		"p(X) :- .",               // empty body
		"p(X).",                   // variable in fact
		"p(X) :- q(Y).",           // head var not range-restricted
		"p(X) :- q(X), not r(Y).", // negated var unrestricted
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestTransitiveClosure(t *testing.T) {
	p := MustParse(`
reachable(X, Y) :- edge(X, Y).
reachable(X, Z) :- reachable(X, Y), edge(Y, Z).
`)
	db := NewDB()
	db.Add("edge", "a", "b")
	db.Add("edge", "b", "c")
	db.Add("edge", "c", "d")
	out, err := Eval(p, db)
	if err != nil {
		t.Fatal(err)
	}
	r := out.Relation("reachable")
	if r.Len() != 6 {
		t.Fatalf("reachable has %d tuples: %v", r.Len(), r.SortedTuples())
	}
	if !out.Has("reachable", "a", "d") {
		t.Error("a->d missing")
	}
	if out.Has("reachable", "d", "a") {
		t.Error("d->a should not hold")
	}
}

func TestStratifiedNegation(t *testing.T) {
	p := MustParse(`
touched(X) :- edge(X, Y).
touched(Y) :- edge(X, Y).
isolated(X) :- node(X), not touched(X).
`)
	db := NewDB()
	db.Add("node", "a")
	db.Add("node", "b")
	db.Add("node", "c")
	db.Add("edge", "a", "b")
	got, err := Query(p, db, "isolated")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "c" {
		t.Fatalf("isolated = %v", got)
	}
}

func TestUnstratifiableRejected(t *testing.T) {
	p := MustParse(`
win(X) :- move(X, Y), not win(Y).
`)
	db := NewDB()
	db.Add("move", "a", "b")
	if _, err := Eval(p, db); err == nil {
		t.Fatal("unstratifiable program accepted")
	}
}

func TestStratifyOrder(t *testing.T) {
	p := MustParse(`
a(X) :- base(X).
b(X) :- base(X), not a(X).
c(X) :- base(X), not b(X).
`)
	strata, err := Stratify(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(strata) != 3 {
		t.Fatalf("got %d strata", len(strata))
	}
	if strata[0][0].Head.Pred != "a" || strata[1][0].Head.Pred != "b" || strata[2][0].Head.Pred != "c" {
		t.Errorf("strata order wrong: %v", strata)
	}
}

func TestFactsAndConstants(t *testing.T) {
	p := MustParse(`
parent(tom, bob).
parent(bob, ann).
grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
tomgrandchild(X) :- grandparent(tom, X).
`)
	got, err := Query(p, NewDB(), "tomgrandchild")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "ann" {
		t.Fatalf("got %v", got)
	}
}

func TestRepeatedVariableInAtom(t *testing.T) {
	p := MustParse(`selfloop(X) :- edge(X, X).`)
	db := NewDB()
	db.Add("edge", "a", "a")
	db.Add("edge", "a", "b")
	got, err := Query(p, db, "selfloop")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("got %v", got)
	}
}

func TestConstantInBodyAtom(t *testing.T) {
	p := MustParse(`fromA(Y) :- edge(a, Y).`)
	db := NewDB()
	db.Add("edge", "a", "b")
	db.Add("edge", "c", "d")
	got, err := Query(p, db, "fromA")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "b" {
		t.Fatalf("got %v", got)
	}
}

func TestIsMonadicAndSize(t *testing.T) {
	p := MustParse(`
italic(X) :- label_i(X).
italic(X) :- italic(X0), firstchild(X0, X).
`)
	if !p.IsMonadic() {
		t.Error("should be monadic (binary EDB relations are allowed)")
	}
	if p.Size() != 5 {
		t.Errorf("Size = %d", p.Size())
	}
	p2 := MustParse(`r(X, Y) :- e(X, Y).`)
	if p2.IsMonadic() {
		t.Error("binary IDB is not monadic")
	}
}

func TestThreeColorability(t *testing.T) {
	// The classical NP-hard guessing pattern expressible in datalog with
	// unstratified negation is out of scope; instead verify a
	// deterministic coloring check: a graph 2-coloring given as EDB is
	// validated by a monadic program.
	p := MustParse(`
badedge(X) :- edge(X, Y), red(X), red(Y).
badedge(X) :- edge(X, Y), blue(X), blue(Y).
`)
	db := NewDB()
	db.Add("edge", "a", "b")
	db.Add("edge", "b", "c")
	db.Add("red", "a")
	db.Add("blue", "b")
	db.Add("red", "c")
	got, err := Query(p, db, "badedge")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("valid coloring flagged: %v", got)
	}
	db.Add("red", "b") // now a-b is monochromatic, and so is b-c (b is red too)
	got, _ = Query(p, db, "badedge")
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("got %v", got)
	}
}

func TestSemiNaiveEqualsNaiveProperty(t *testing.T) {
	// Differential property: on random graphs, the engine's transitive
	// closure must equal a direct Floyd-Warshall style computation.
	p := MustParse(`
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- tc(X, Y), edge(Y, Z).
`)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		var reach [10][10]bool
		db := NewDB()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Intn(4) == 0 {
					db.Add("edge", name(i), name(j))
					reach[i][j] = true
				}
			}
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if reach[i][k] && reach[k][j] {
						reach[i][j] = true
					}
				}
			}
		}
		out, err := Eval(p, db)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if reach[i][j] != out.Has("tc", name(i), name(j)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func name(i int) string { return fmt.Sprintf("v%d", i) }

func TestMonotonicityProperty(t *testing.T) {
	// Positive datalog is monotone: adding EDB facts never removes
	// derived facts.
	p := MustParse(`
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- tc(X, Y), edge(Y, Z).
`)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := NewDB()
		n := 6
		for i := 0; i < 8; i++ {
			db.Add("edge", name(rng.Intn(n)), name(rng.Intn(n)))
		}
		out1, _ := Eval(p, db)
		db2 := db.Clone()
		db2.Add("edge", name(rng.Intn(n)), name(rng.Intn(n)))
		out2, _ := Eval(p, db2)
		for _, tup := range out1.Relation("tc").Tuples() {
			if !out2.Relation("tc").Contains(tup) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestValidateErrors(t *testing.T) {
	p := &Program{Rules: []Rule{{
		Head: Atom{Pred: "p", Args: []Term{Var("X")}},
		Body: []Atom{{Pred: "q", Args: []Term{Var("Y")}}},
	}}}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "range-restricted") {
		t.Errorf("got %v", err)
	}
}

func TestDBBasics(t *testing.T) {
	db := NewDB()
	db.Add("p", "a")
	db.Add("p", "a") // duplicate
	db.Add("p", "b")
	if db.Facts() != 2 {
		t.Errorf("Facts = %d", db.Facts())
	}
	if got := db.Unary("p"); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Unary = %v", got)
	}
	if db.Predicates()[0] != "p" {
		t.Errorf("Predicates = %v", db.Predicates())
	}
	c := db.Clone()
	c.Add("p", "c")
	if db.Facts() != 2 || c.Facts() != 3 {
		t.Error("clone not independent")
	}
}

func BenchmarkTransitiveClosureChain(b *testing.B) {
	p := MustParse(`
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- tc(X, Y), edge(Y, Z).
`)
	db := NewDB()
	for i := 0; i < 200; i++ {
		db.Add("edge", name(i), name(i+1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := Eval(p, db)
		if err != nil {
			b.Fatal(err)
		}
		if out.Relation("tc").Len() != 200*201/2 {
			b.Fatal("wrong size")
		}
	}
}
