// Package concepts implements the concept conditions of Elog
// (Section 3.3): semantic concepts like isCountry(X) and isCurrency(X)
// that refer to an ontological database, and syntactic concepts like
// isDate(X) defined by regular expressions. As in Lixto, a set of
// concepts is built in "to enrich the system, while more can be
// interactively added" — Register adds user-defined concepts.
//
// The package also provides the comparison conditions (e.g. <(X, Y) on
// dates and numbers) that Elog rules may use on concept-typed values.
package concepts

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Base is a registry of named concepts. The zero value is unusable; use
// NewBase (which pre-loads the built-ins) or NewEmptyBase.
type Base struct {
	mu    sync.RWMutex
	preds map[string]func(string) bool
}

// NewEmptyBase returns a registry with no concepts.
func NewEmptyBase() *Base {
	return &Base{preds: map[string]func(string) bool{}}
}

// NewBase returns a registry with the built-in concepts: isCurrency,
// isCountry, isCity, isDate, isNumber, isEmail, isURL, isTime.
func NewBase() *Base {
	b := NewEmptyBase()
	b.Register("isCurrency", IsCurrency)
	b.Register("isCountry", IsCountry)
	b.Register("isCity", IsCity)
	b.Register("isDate", IsDate)
	b.Register("isNumber", IsNumber)
	b.Register("isEmail", isEmailConcept)
	b.Register("isURL", isURLConcept)
	b.Register("isTime", isTimeConcept)
	return b
}

// Register adds (or replaces) a semantic concept backed by an arbitrary
// predicate.
func (b *Base) Register(name string, pred func(string) bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.preds[name] = pred
}

// RegisterSyntactic adds a concept defined by a regular expression, the
// way syntactic concepts are created interactively in Lixto.
func (b *Base) RegisterSyntactic(name, pattern string) error {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return fmt.Errorf("concepts: bad pattern for %s: %w", name, err)
	}
	b.Register(name, func(s string) bool { return re.MatchString(strings.TrimSpace(s)) })
	return nil
}

// RegisterOntology adds a semantic concept defined by a finite set of
// values (case-insensitive), resembling the ontological database lookup.
func (b *Base) RegisterOntology(name string, values ...string) {
	set := make(map[string]bool, len(values))
	for _, v := range values {
		set[strings.ToLower(v)] = true
	}
	b.Register(name, func(s string) bool { return set[strings.ToLower(strings.TrimSpace(s))] })
}

// Holds evaluates concept name on value; unknown concepts are false.
func (b *Base) Holds(name, value string) bool {
	b.mu.RLock()
	p := b.preds[name]
	b.mu.RUnlock()
	return p != nil && p(value)
}

// Has reports whether a concept is registered.
func (b *Base) Has(name string) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.preds[name] != nil
}

func regexpConcept(pattern string) func(string) bool {
	re := regexp.MustCompile(pattern)
	return func(s string) bool { return re.MatchString(strings.TrimSpace(s)) }
}

// The built-in syntactic concepts compile their patterns once at
// package init: evaluators construct a fresh Base per run (the server
// builds one per poll), and recompiling three regexps each time was a
// measurable share of the per-poll allocations.
var (
	isEmailConcept = regexpConcept(`^[\w.+-]+@[\w-]+(\.[\w-]+)+$`)
	isURLConcept   = regexpConcept(`^(https?://|/|\./)\S+$`)
	isTimeConcept  = regexpConcept(`^([01]?\d|2[0-3]):[0-5]\d(:[0-5]\d)?$`)
)

// currencies matches the paper's examples: "strings like $, DM, Euro,
// etc.".
var currencies = map[string]bool{
	"$": true, "us$": true, "usd": true, "dollar": true, "dollars": true,
	"€": true, "euro": true, "euros": true, "eur": true,
	"dm": true, "ats": true, "öS": true, "chf": true, "sfr": true,
	"£": true, "gbp": true, "pound": true, "pounds": true,
	"¥": true, "jpy": true, "yen": true,
	"sek": true, "nok": true, "dkk": true, "czk": true, "huf": true, "pln": true,
}

// IsCurrency reports whether s denotes a currency symbol or name.
func IsCurrency(s string) bool {
	return currencies[strings.ToLower(strings.TrimSpace(s))]
}

// countries is a compact excerpt of the ontology; enough for the
// applications of Section 6.
var countries = map[string]bool{
	"austria": true, "germany": true, "italy": true, "france": true,
	"switzerland": true, "spain": true, "portugal": true, "greece": true,
	"hungary": true, "czech republic": true, "slovakia": true, "slovenia": true,
	"poland": true, "netherlands": true, "belgium": true, "luxembourg": true,
	"denmark": true, "sweden": true, "norway": true, "finland": true,
	"united kingdom": true, "uk": true, "ireland": true, "usa": true,
	"united states": true, "canada": true, "japan": true, "china": true,
	"australia": true, "brazil": true, "india": true, "russia": true,
}

// IsCountry reports whether s names a country.
func IsCountry(s string) bool {
	return countries[strings.ToLower(strings.TrimSpace(s))]
}

var cities = map[string]bool{
	"vienna": true, "wien": true, "graz": true, "linz": true, "salzburg": true,
	"innsbruck": true, "berlin": true, "munich": true, "münchen": true,
	"frankfurt": true, "hamburg": true, "paris": true, "london": true,
	"rome": true, "milan": true, "madrid": true, "zurich": true, "zürich": true,
	"geneva": true, "amsterdam": true, "brussels": true, "prague": true,
	"budapest": true, "warsaw": true, "new york": true, "tokyo": true,
	"rende": true, "cosenza": true,
}

// IsCity reports whether s names a city known to the ontology.
func IsCity(s string) bool {
	return cities[strings.ToLower(strings.TrimSpace(s))]
}

// dateLayouts are the textual date formats isDate accepts.
var dateLayouts = []string{
	"2006-01-02", "02.01.2006", "01/02/2006", "2.1.2006",
	"Jan 2, 2006", "January 2, 2006", "2 Jan 2006", "2 January 2006",
}

// IsDate reports whether s parses as a calendar date.
func IsDate(s string) bool {
	_, ok := ParseDate(s)
	return ok
}

// ParseDate parses a date in any accepted layout.
func ParseDate(s string) (time.Time, bool) {
	s = strings.TrimSpace(s)
	for _, l := range dateLayouts {
		if t, err := time.Parse(l, s); err == nil {
			return t, true
		}
	}
	return time.Time{}, false
}

// IsNumber reports whether s is a decimal number (allowing thousands
// separators and a currency-style decimal comma).
func IsNumber(s string) bool {
	_, ok := ParseNumber(s)
	return ok
}

// ParseNumber parses "1,234.56", "1234", "12.5", "1.234,56".
func ParseNumber(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false
	}
	// Heuristic: if both separators occur, the last one is the decimal
	// point.
	lastDot, lastComma := strings.LastIndexByte(s, '.'), strings.LastIndexByte(s, ',')
	switch {
	case lastDot >= 0 && lastComma >= 0:
		if lastComma > lastDot {
			s = strings.ReplaceAll(s, ".", "")
			s = strings.Replace(s, ",", ".", 1)
		} else {
			s = strings.ReplaceAll(s, ",", "")
		}
	case lastComma >= 0:
		// A single comma with exactly 3 trailing digits is a thousands
		// separator; otherwise decimal.
		if len(s)-lastComma-1 == 3 && strings.Count(s, ",") >= 1 && !strings.Contains(s, ".") && strings.Count(s, ",") == 1 && lastComma != 0 && len(s) > 4 {
			s = strings.ReplaceAll(s, ",", "")
		} else {
			s = strings.ReplaceAll(s, ",", ".")
		}
	}
	f, err := strconv.ParseFloat(s, 64)
	return f, err == nil
}

// Compare implements the comparison conditions of Elog on values typed
// by concepts: dates compare chronologically, numbers numerically,
// everything else lexicographically. op is one of < <= > >= = !=.
func Compare(op, a, b string) (bool, error) {
	var cmp int
	if da, ok := ParseDate(a); ok {
		if db, ok := ParseDate(b); ok {
			switch {
			case da.Before(db):
				cmp = -1
			case da.After(db):
				cmp = 1
			}
			return applyCmp(op, cmp)
		}
	}
	if na, ok := ParseNumber(a); ok {
		if nb, ok := ParseNumber(b); ok {
			switch {
			case na < nb:
				cmp = -1
			case na > nb:
				cmp = 1
			}
			return applyCmp(op, cmp)
		}
	}
	cmp = strings.Compare(a, b)
	return applyCmp(op, cmp)
}

func applyCmp(op string, cmp int) (bool, error) {
	switch op {
	case "<":
		return cmp < 0, nil
	case "<=":
		return cmp <= 0, nil
	case ">":
		return cmp > 0, nil
	case ">=":
		return cmp >= 0, nil
	case "=", "==":
		return cmp == 0, nil
	case "!=":
		return cmp != 0, nil
	}
	return false, fmt.Errorf("concepts: unknown comparison operator %q", op)
}
