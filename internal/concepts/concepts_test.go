package concepts

import "testing"

func TestBuiltins(t *testing.T) {
	b := NewBase()
	for _, tc := range []struct {
		concept, val string
		want         bool
	}{
		{"isCurrency", "$", true},
		{"isCurrency", "Euro", true},
		{"isCurrency", "DM", true},
		{"isCurrency", "bananas", false},
		{"isCountry", "Austria", true},
		{"isCountry", "austria", true},
		{"isCountry", "Atlantis", false},
		{"isCity", "Vienna", true},
		{"isCity", "Nowhere", false},
		{"isDate", "2004-06-14", true},
		{"isDate", "14.06.2004", true},
		{"isDate", "Jun 14, 2004", true},
		{"isDate", "not a date", false},
		{"isNumber", "1,234.56", true},
		{"isNumber", "1.234,56", true},
		{"isNumber", "12", true},
		{"isNumber", "x12", false},
		{"isEmail", "office@lixto.com", true},
		{"isEmail", "not-an-email", false},
		{"isURL", "http://www.ebay.com/", true},
		{"isTime", "23:59", true},
		{"isTime", "25:00", false},
		{"unknownConcept", "x", false},
	} {
		if got := b.Holds(tc.concept, tc.val); got != tc.want {
			t.Errorf("%s(%q) = %v, want %v", tc.concept, tc.val, got, tc.want)
		}
	}
}

func TestRegisterSyntactic(t *testing.T) {
	b := NewEmptyBase()
	if err := b.RegisterSyntactic("isFlightNo", `^[A-Z]{2}\d{3,4}$`); err != nil {
		t.Fatal(err)
	}
	if !b.Holds("isFlightNo", "OS101") || b.Holds("isFlightNo", "xyz") {
		t.Error("syntactic concept wrong")
	}
	if err := b.RegisterSyntactic("bad", `([`); err == nil {
		t.Error("bad regexp accepted")
	}
}

func TestRegisterOntology(t *testing.T) {
	b := NewEmptyBase()
	b.RegisterOntology("isGrape", "Riesling", "Veltliner", "Zweigelt")
	if !b.Holds("isGrape", "riesling") || b.Holds("isGrape", "Merlot") {
		t.Error("ontology concept wrong")
	}
	if !b.Has("isGrape") || b.Has("isWine") {
		t.Error("Has wrong")
	}
}

func TestParseNumber(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
		ok   bool
	}{
		{"1,234.56", 1234.56, true},
		{"1.234,56", 1234.56, true},
		{"1234", 1234, true},
		{"12,5", 12.5, true},
		{"1,234", 1234, true},
		{"", 0, false},
		{"abc", 0, false},
	} {
		got, ok := ParseNumber(tc.in)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("ParseNumber(%q) = %v, %v; want %v, %v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestCompare(t *testing.T) {
	for _, tc := range []struct {
		op, a, b string
		want     bool
	}{
		{"<", "2004-06-14", "2004-06-16", true},
		{">", "14.06.2004", "2004-06-16", false},
		{"<", "9", "10", true}, // numeric, not lexicographic
		{"<", "apple", "banana", true},
		{"=", "12.0", "12", true},
		{"!=", "a", "b", true},
		{">=", "10", "10", true},
	} {
		got, err := Compare(tc.op, tc.a, tc.b)
		if err != nil {
			t.Fatalf("Compare(%q,%q,%q): %v", tc.op, tc.a, tc.b, err)
		}
		if got != tc.want {
			t.Errorf("Compare(%q,%q,%q) = %v, want %v", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
	if _, err := Compare("~", "a", "b"); err == nil {
		t.Error("unknown operator accepted")
	}
}
