// Package transform implements the Lixto Transformation Server
// (Section 5): a container of visually configured information agents
// forming an information pipe — acquisition (wrapper components),
// integration, transformation, and delivery stages that hand XML
// documents from component to component.
//
// As in the paper, the actual data flow is realized by handing over XML
// documents: every stage accepts XML (except wrapper components, which
// accept HTML from their source sites) and produces XML for its
// successors. Components that are not on the boundary are only activated
// by their neighbors; boundary components (wrappers, deliverers)
// self-activate according to a schedule and trigger processing on behalf
// of the user.
//
// The engine supports two execution modes: Tick() runs one synchronous
// activation round (deterministic; used by tests and benchmarks), and
// Run(ctx, interval) drives Ticks from a wall-clock ticker, giving the
// continuous monitoring behaviour of the deployed system.
package transform

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dom"
	"repro/internal/elog"
	"repro/internal/fetchcache"
	"repro/internal/pib"
	"repro/internal/xmlenc"
)

// Component is one stage of an information pipe. Process receives a
// document from an upstream component (identified by name, so that
// integrators can tell their inputs apart) and emits zero or more
// documents to its successors.
type Component interface {
	Name() string
	Process(from string, doc *xmlenc.Node) ([]*xmlenc.Node, error)
}

// Source is a boundary component that self-activates: Poll is called on
// every engine tick and produces fresh documents.
type Source interface {
	Component
	Poll() ([]*xmlenc.Node, error)
}

// Engine is the component container and pipe network.
type Engine struct {
	mu    sync.Mutex
	comps map[string]Component
	order []string
	edges map[string][]string
	// Errors accumulated during ticks (a failing source should not kill
	// the whole service; the paper's server keeps running).
	Errors []error
	// MaxErrors bounds the error log.
	MaxErrors int
	// lastErr and nErrs always track the most recent error and the
	// total count, even once the Errors log is full.
	lastErr error
	nErrs   int
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{comps: map[string]Component{}, edges: map[string][]string{}, MaxErrors: 100}
}

// Add registers a component.
func (e *Engine) Add(c Component) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.comps[c.Name()]; dup {
		return fmt.Errorf("transform: duplicate component %q", c.Name())
	}
	e.comps[c.Name()] = c
	e.order = append(e.order, c.Name())
	return nil
}

// Components returns the registered components in registration order —
// the order Tick polls sources in. Callers inspect them (status pages,
// differential tests over wrapper sources); the engine stays the owner.
func (e *Engine) Components() []Component {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Component, 0, len(e.order))
	for _, name := range e.order {
		out = append(out, e.comps[name])
	}
	return out
}

// Close releases component resources held outside the engine — today,
// wrapper sources detaching from a fleet-shared match cache. The
// engine must not tick concurrently with or after Close.
func (e *Engine) Close() {
	for _, c := range e.Components() {
		if cl, ok := c.(interface{ Close() }); ok {
			cl.Close()
		}
	}
}

// Connect wires from's output to to's input. The pipe network must stay
// acyclic ("very complex unidirectional information flows").
func (e *Engine) Connect(from, to string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.comps[from]; !ok {
		return fmt.Errorf("transform: unknown component %q", from)
	}
	if _, ok := e.comps[to]; !ok {
		return fmt.Errorf("transform: unknown component %q", to)
	}
	e.edges[from] = append(e.edges[from], to)
	if e.reaches(to, from, map[string]bool{}) {
		e.edges[from] = e.edges[from][:len(e.edges[from])-1]
		return fmt.Errorf("transform: connecting %s -> %s would create a cycle", from, to)
	}
	return nil
}

func (e *Engine) reaches(from, target string, seen map[string]bool) bool {
	if from == target {
		return true
	}
	if seen[from] {
		return false
	}
	seen[from] = true
	for _, n := range e.edges[from] {
		if e.reaches(n, target, seen) {
			return true
		}
	}
	return false
}

// Tick runs one activation round: every Source polls once and its
// outputs propagate through the network. Deterministic given the
// sources' state.
func (e *Engine) Tick() {
	e.mu.Lock()
	order := append([]string{}, e.order...)
	e.mu.Unlock()
	for _, name := range order {
		src, ok := e.comps[name].(Source)
		if !ok {
			continue
		}
		docs, err := src.Poll()
		if err != nil {
			e.logErr(fmt.Errorf("source %s: %w", name, err))
			continue
		}
		for _, d := range docs {
			e.propagate(name, d)
		}
	}
}

func (e *Engine) propagate(from string, doc *xmlenc.Node) {
	for _, next := range e.edges[from] {
		out, err := e.comps[next].Process(from, doc)
		if err != nil {
			e.logErr(fmt.Errorf("component %s: %w", next, err))
			continue
		}
		for _, d := range out {
			e.propagate(next, d)
		}
	}
}

func (e *Engine) logErr(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.lastErr = err
	e.nErrs++
	if len(e.Errors) < e.MaxErrors {
		e.Errors = append(e.Errors, err)
	}
}

// ErrorCount returns the total number of errors logged so far (not
// capped by MaxErrors).
func (e *Engine) ErrorCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.nErrs
}

// LastError returns the most recently logged error, or nil.
func (e *Engine) LastError() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastErr
}

// Run ticks the engine at the given interval until the context is
// cancelled — the continuous-service mode.
func (e *Engine) Run(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			e.Tick()
		}
	}
}

// ---------------------------------------------------------------------
// Wrapper source.

// WrapperSource acquires content from source locations: on every poll it
// runs an Elog wrapper against its Fetcher and emits the XML produced by
// the XML transformer — "this component resembles the Lixto Visual
// Wrapper".
//
// The Elog program is compiled once on the first poll (elog.Compile)
// and the compiled form is held across ticks, so its fingerprint-keyed
// match caches persist: pages whose content is unchanged skip the
// pattern-matching tree walks even when some other page of the wrapper
// changed. Program must therefore not be swapped after the first poll.
//
// Polls are additionally memoized on page content: every run records
// the fetched pages' fingerprints (dom.Tree.Fingerprint), and the next
// poll first re-fetches only those pages. If every fingerprint is
// unchanged, the wrapper evaluation is deterministic on the same
// inputs, so the previous output document is re-emitted without
// re-running the Elog program or the XML transformation. Set NoCache to
// disable.
type WrapperSource struct {
	CompName string
	Fetcher  elog.Fetcher
	Program  *elog.Program
	Design   *pib.Design
	// Every counts ticks between polls (1 = every tick); sources with
	// slower upgrade intervals (charts vs radio, Section 6.1) poll less
	// often.
	Every int
	// NoCache disables the fingerprint-keyed result cache.
	NoCache bool
	// NoSourceAttr suppresses the source="name" attribute on emitted
	// documents, so the output is byte-identical to running the same
	// program through the SDK or cmd/elogc (the /v1 dynamic wrappers
	// rely on this).
	NoSourceAttr bool
	// Shared, when set, routes every fetch (the cache recheck and the
	// evaluator's crawl frontier alike) through the shared
	// fetch/document layer, so concurrent wrappers monitoring the same
	// URLs share one fetch+parse per page per freshness window. All
	// sources sharing one cache must resolve URLs identically; the
	// extracted output is unchanged (only the fetch work is shared).
	Shared *fetchcache.Cache
	// Batch, when set, attaches the source's evaluator to a fleet-shared
	// match cache (elog.MatchCache): every wrapper sharing the cache
	// reuses the others' compiled pattern matches on identical paths and
	// unchanged pages, so a fleet of N template-stamped wrappers over
	// one shared page costs about one parse plus one warmed match cache.
	// Output is unchanged; pair with Shared to also share the fetches.
	Batch *elog.MatchCache
	// NoIncremental disables subtree-fingerprint match reuse
	// (elog.Evaluator.Incremental). By default a changed-fingerprint
	// tick re-evaluates incrementally: the compiled program's
	// content-addressed subtree caches persist across polls, so the
	// regions of the new document version that are byte-identical to
	// the previous one resolve their matches from cache and only the
	// dirty regions run the bitset matcher. Output is bit-identical
	// either way; set this only to measure or to pin the full
	// re-evaluation behaviour.
	NoIncremental bool
	// NoIncrementalOutput disables cross-tick output reuse (the
	// pib.OutputCache). By default the source retains the previous
	// tick's instance base and emitted subtrees: the XML transform
	// splices frozen, already-built xmlenc subtrees for every instance
	// whose content-addressed output hash is unchanged and rebuilds
	// only the dirty ones. Output is byte-identical either way; set
	// this only to measure or to pin the full-rebuild behaviour.
	NoIncrementalOutput bool
	tick                int
	// shared is the cache-wrapped form of Fetcher, built on first use.
	shared elog.Fetcher
	// batchAttached records that this source has counted itself into
	// Batch's fleet size.
	batchAttached bool

	// Compiled form of Program, built lazily on the first poll and
	// reused across ticks.
	compiled   *elog.CompiledProgram
	compileErr error

	// Last successful run: the URLs fetched (in order), their tree
	// fingerprints, and the emitted document.
	lastURLs []string
	lastFPs  []uint64
	lastDoc  *xmlenc.Node
	// outCache is the cross-tick emitted-subtree cache of the
	// incremental output path; it also retains the previous tick's
	// instance base for the added/removed/unchanged delta. Touched only
	// from Poll (one tick at a time); outStats is its counter snapshot,
	// copied under statsMu after each transform so status reads never
	// race a transform in flight.
	outCache *pib.OutputCache
	outStats pib.OutputStats
	// Cumulative extraction timings (nanoseconds), written under
	// statsMu: parseNS is time spent in the fetch+parse layer (the
	// fetcher calls, including tree warming), evalNS the wall time of
	// whole wrapper evaluations, transformNS the wall time of the
	// instance-base → XML transform.
	parseNS     int64
	evalNS      int64
	transformNS int64
	// CacheHits counts polls answered from the fingerprint cache. It is
	// written under statsMu so that ExtractionStats can be read
	// concurrently (the server's status page polls it over HTTP).
	CacheHits int
	statsMu   sync.Mutex
}

// ExtractionStats aggregates a wrapper's memoization counters:
// PollCacheHits counts whole polls answered from the page-fingerprint
// cache; MatchCacheHits/Misses count individual compiled pattern
// matches answered from (or inserted into) the per-document match
// caches.
type ExtractionStats struct {
	PollCacheHits    uint64 `json:"poll_cache_hits"`
	MatchCacheHits   uint64 `json:"match_cache_hits"`
	MatchCacheMisses uint64 `json:"match_cache_misses"`
	// Incremental-matching counters (subtree-fingerprint reuse):
	// SubtreeHits/SubtreeMisses count per-root content-addressed cache
	// lookups on changed documents; ReusedNodes/DirtyNodes the document
	// nodes those roots covered — reused nodes resolved their matches
	// from cache, dirty nodes ran the bitset matcher.
	SubtreeHits   uint64 `json:"subtree_hits"`
	SubtreeMisses uint64 `json:"subtree_misses"`
	DirtyNodes    uint64 `json:"dirty_nodes"`
	ReusedNodes   uint64 `json:"reused_nodes"`
	// Incremental-output counters (cross-tick emitted-subtree reuse):
	// OutputReusedNodes/OutputBuiltNodes count output XML nodes spliced
	// from the previous tick's document vs constructed fresh, and
	// InstancesAdded/Removed/Unchanged the content-addressed instance
	// delta between consecutive ticks' bases.
	OutputReusedNodes  uint64 `json:"output_reused_nodes"`
	OutputBuiltNodes   uint64 `json:"output_built_nodes"`
	InstancesAdded     uint64 `json:"instances_added"`
	InstancesRemoved   uint64 `json:"instances_removed"`
	InstancesUnchanged uint64 `json:"instances_unchanged"`
	// ParseNS is cumulative time (ns) spent in the fetch+parse layer;
	// EvalNS cumulative wall time (ns) of wrapper evaluations (which
	// includes the fetches its crawl frontier issues); TransformNS
	// cumulative wall time of the instance-base → XML transform.
	ParseNS     uint64 `json:"parse_ns"`
	EvalNS      uint64 `json:"eval_ns"`
	TransformNS uint64 `json:"transform_ns"`
	// EncodeSplicedBytes counts snapshot bytes spliced from the
	// delivery plane's per-pipeline encode cache instead of being
	// re-encoded. Filled in by the server (the encoder lives with the
	// delivery plane, not the wrapper source).
	EncodeSplicedBytes uint64 `json:"encode_spliced_bytes"`
	// BatchSize is the number of wrappers attached to the source's
	// fleet-shared match cache (0 when batching is off). Aggregated
	// stats report the largest fleet.
	BatchSize int `json:"batch_size"`
}

// add accumulates o into s.
func (s *ExtractionStats) add(o ExtractionStats) {
	s.PollCacheHits += o.PollCacheHits
	s.MatchCacheHits += o.MatchCacheHits
	s.MatchCacheMisses += o.MatchCacheMisses
	s.SubtreeHits += o.SubtreeHits
	s.SubtreeMisses += o.SubtreeMisses
	s.DirtyNodes += o.DirtyNodes
	s.ReusedNodes += o.ReusedNodes
	s.OutputReusedNodes += o.OutputReusedNodes
	s.OutputBuiltNodes += o.OutputBuiltNodes
	s.InstancesAdded += o.InstancesAdded
	s.InstancesRemoved += o.InstancesRemoved
	s.InstancesUnchanged += o.InstancesUnchanged
	s.ParseNS += o.ParseNS
	s.EvalNS += o.EvalNS
	s.TransformNS += o.TransformNS
	s.EncodeSplicedBytes += o.EncodeSplicedBytes
	if o.BatchSize > s.BatchSize {
		s.BatchSize = o.BatchSize
	}
}

// ExtractionStats returns the source's memoization counters; safe to
// call concurrently with polling.
func (s *WrapperSource) ExtractionStats() ExtractionStats {
	s.statsMu.Lock()
	out := ExtractionStats{
		PollCacheHits: uint64(s.CacheHits),
		ParseNS:       uint64(s.parseNS),
		EvalNS:        uint64(s.evalNS),
		TransformNS:   uint64(s.transformNS),
	}
	out.OutputReusedNodes = s.outStats.ReusedNodes
	out.OutputBuiltNodes = s.outStats.BuiltNodes
	out.InstancesAdded = s.outStats.InstancesAdded
	out.InstancesRemoved = s.outStats.InstancesRemoved
	out.InstancesUnchanged = s.outStats.InstancesUnchanged
	compiled := s.compiled
	s.statsMu.Unlock()
	if compiled != nil {
		out.MatchCacheHits, out.MatchCacheMisses = compiled.Stats()
		inc := compiled.Incremental()
		out.SubtreeHits = inc.SubtreeHits
		out.SubtreeMisses = inc.SubtreeMisses
		out.DirtyNodes = inc.DirtyNodes
		out.ReusedNodes = inc.ReusedNodes
	}
	if s.Batch != nil {
		out.BatchSize = s.Batch.Attached()
	}
	return out
}

// extractionStatser is any component exposing extraction memoization
// counters.
type extractionStatser interface {
	ExtractionStats() ExtractionStats
}

// ExtractionStats sums the memoization counters of every wrapper source
// registered in the engine — the per-pipeline numbers surfaced on the
// server's /statusz page.
func (e *Engine) ExtractionStats() ExtractionStats {
	e.mu.Lock()
	comps := make([]Component, 0, len(e.order))
	for _, name := range e.order {
		comps = append(comps, e.comps[name])
	}
	e.mu.Unlock()
	var out ExtractionStats
	for _, c := range comps {
		if es, ok := c.(extractionStatser); ok {
			out.add(es.ExtractionStats())
		}
	}
	return out
}

// recordingFetcher wraps a Fetcher, recording each fetched URL and the
// fingerprint of the returned tree. Pages already fetched by the
// cache recheck are served from prefetched, so a cache miss never
// fetches a page twice in one poll. The evaluator's crawl frontier
// fetches from multiple goroutines, so the recording is locked; the
// recorded order is whatever the frontier completes first, which is
// fine — the cache recheck treats the list as a url→fingerprint set.
type recordingFetcher struct {
	inner      elog.Fetcher
	prefetched map[string]*dom.Tree
	mu         sync.Mutex
	urls       []string
	fps        []uint64
	fetchNS    int64
}

func (r *recordingFetcher) Fetch(url string) (*dom.Tree, error) {
	start := time.Now()
	t, ok := r.prefetched[url]
	if !ok {
		var err error
		t, err = r.inner.Fetch(url)
		if err != nil {
			return nil, err
		}
	}
	// Warm before fingerprinting: Warm serializes concurrent callers,
	// so two frontier workers handed the same tree under different
	// URLs do not race on the lazy fingerprint.
	t.Warm()
	fp := t.Fingerprint()
	r.mu.Lock()
	r.urls = append(r.urls, url)
	r.fps = append(r.fps, fp)
	r.fetchNS += time.Since(start).Nanoseconds()
	r.mu.Unlock()
	return t, nil
}

// unchanged reports whether re-fetching every page of the last run
// yields the same fingerprints. The fetched trees are retained in
// prefetched either way, so on a miss the evaluator reuses them. The
// re-fetch is the steady-state server tick, so the pages are retrieved
// in parallel, mirroring the evaluator's crawl frontier; a fetch error
// counts as changed (the evaluator will surface it).
func (s *WrapperSource) unchanged(prefetched map[string]*dom.Tree) bool {
	if s.lastDoc == nil {
		return false
	}
	var missing []string
	if len(s.lastURLs) == 1 {
		if _, ok := prefetched[s.lastURLs[0]]; !ok {
			missing = s.lastURLs
		}
	} else {
		seen := map[string]bool{}
		for _, url := range s.lastURLs {
			if _, ok := prefetched[url]; !ok && !seen[url] {
				seen[url] = true
				missing = append(missing, url)
			}
		}
	}
	fetcher := s.fetchClient()
	if len(missing) == 1 {
		// The common single-page wrapper: fetch inline, skipping the
		// fan-out machinery (a measurable share of steady-state poll
		// allocations).
		t, err := fetcher.Fetch(missing[0])
		if err != nil {
			return false
		}
		t.Warm()
		prefetched[missing[0]] = t
	} else if len(missing) > 1 {
		type fetched struct {
			url string
			t   *dom.Tree
			err error
		}
		results := make(chan fetched, len(missing))
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for _, url := range missing {
			go func(url string) {
				sem <- struct{}{}
				defer func() { <-sem }()
				t, err := fetcher.Fetch(url)
				if err == nil {
					t.Warm()
				}
				results <- fetched{url, t, err}
			}(url)
		}
		ok := true
		for range missing {
			r := <-results
			if r.err != nil {
				ok = false
				continue
			}
			prefetched[r.url] = r.t
		}
		if !ok {
			return false
		}
	}
	same := true
	for i, url := range s.lastURLs {
		if prefetched[url].Fingerprint() != s.lastFPs[i] {
			same = false
		}
	}
	return same
}

// fetchClient returns the fetcher polls go through: the raw Fetcher,
// or its cache-wrapped form when a shared fetch layer is configured.
// Called only from the polling goroutine (Poll and its helpers).
func (s *WrapperSource) fetchClient() elog.Fetcher {
	if s.Shared == nil {
		return s.Fetcher
	}
	if s.shared == nil {
		s.shared = s.Shared.Wrap(s.Fetcher)
	}
	return s.shared
}

// Name implements Component.
func (s *WrapperSource) Name() string { return s.CompName }

// Process implements Component (sources have no inputs).
func (s *WrapperSource) Process(string, *xmlenc.Node) ([]*xmlenc.Node, error) {
	return nil, fmt.Errorf("transform: wrapper source %s cannot receive documents", s.CompName)
}

// Poll wraps the sources and emits one XML document.
func (s *WrapperSource) Poll() ([]*xmlenc.Node, error) {
	every := s.Every
	if every <= 0 {
		every = 1
	}
	s.tick++
	if (s.tick-1)%every != 0 {
		return nil, nil
	}
	if s.compiled == nil && s.compileErr == nil {
		s.statsMu.Lock()
		s.compiled, s.compileErr = elog.Compile(s.Program)
		s.statsMu.Unlock()
	}
	if s.compileErr != nil {
		return nil, s.compileErr
	}
	prefetched := map[string]*dom.Tree{}
	if !s.NoCache {
		if s.unchanged(prefetched) {
			s.statsMu.Lock()
			s.CacheHits++
			s.statsMu.Unlock()
			return []*xmlenc.Node{s.lastDoc}, nil
		}
	} else {
		prefetched = nil
	}
	rec := &recordingFetcher{inner: s.fetchClient(), prefetched: prefetched}
	ev := elog.NewEvaluator(rec)
	ev.Incremental = !s.NoIncremental
	if s.Batch != nil {
		ev.Shared = s.Batch
		s.statsMu.Lock()
		if !s.batchAttached {
			s.batchAttached = true
			s.Batch.Attach()
		}
		s.statsMu.Unlock()
	}
	start := time.Now()
	base, err := ev.RunCompiled(s.compiled)
	if err != nil {
		return nil, err
	}
	s.statsMu.Lock()
	s.parseNS += rec.fetchNS
	s.evalNS += time.Since(start).Nanoseconds()
	s.statsMu.Unlock()
	design := s.Design
	if design == nil {
		design = &pib.Design{Auxiliary: map[string]bool{"document": true}}
	}
	tstart := time.Now()
	var doc *xmlenc.Node
	if s.NoIncrementalOutput {
		doc = design.Transform(base)
	} else {
		if s.outCache == nil {
			s.outCache = pib.NewOutputCache()
		}
		doc = design.TransformIncremental(base, s.outCache)
	}
	s.statsMu.Lock()
	s.transformNS += time.Since(tstart).Nanoseconds()
	if s.outCache != nil {
		s.outStats = s.outCache.Stats()
	}
	s.statsMu.Unlock()
	if !s.NoSourceAttr {
		doc.SetAttr("source", s.CompName)
	}
	s.lastURLs, s.lastFPs, s.lastDoc = rec.urls, rec.fps, doc
	return []*xmlenc.Node{doc}, nil
}

// Close detaches the source from its fleet-shared match cache, so
// batch_size stops counting retired wrappers. Safe to call multiple
// times and on sources that never polled.
func (s *WrapperSource) Close() {
	if s.Batch == nil {
		return
	}
	s.statsMu.Lock()
	attached := s.batchAttached
	s.batchAttached = false
	s.statsMu.Unlock()
	if attached {
		s.Batch.Detach()
	}
}

// ---------------------------------------------------------------------
// Integrator.

// Integrator merges the latest document from each of its inputs into a
// single document (stage 2 of the pipeline). It emits whenever an input
// arrives and all expected inputs have delivered at least once.
type Integrator struct {
	CompName string
	// Expect lists the upstream component names to wait for.
	Expect []string
	// RootName is the merged document element (default "integrated").
	RootName string
	mu       sync.Mutex
	latest   map[string]*xmlenc.Node
}

// Name implements Component.
func (i *Integrator) Name() string { return i.CompName }

// Process implements Component.
func (i *Integrator) Process(from string, doc *xmlenc.Node) ([]*xmlenc.Node, error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.latest == nil {
		i.latest = map[string]*xmlenc.Node{}
	}
	i.latest[from] = doc
	for _, exp := range i.Expect {
		if i.latest[exp] == nil {
			return nil, nil // wait for the remaining inputs
		}
	}
	name := i.RootName
	if name == "" {
		name = "integrated"
	}
	merged := xmlenc.NewElement(name)
	for _, exp := range i.Expect {
		merged.Append(i.latest[exp])
	}
	return []*xmlenc.Node{merged}, nil
}

// ---------------------------------------------------------------------
// Transformer.

// Transformer applies a function to each document (stage 3). The
// function must not mutate its input (documents are shared across
// branches); it returns the transformed document, or nil to drop it.
type Transformer struct {
	CompName string
	Fn       func(*xmlenc.Node) (*xmlenc.Node, error)
}

// Name implements Component.
func (t *Transformer) Name() string { return t.CompName }

// Process implements Component.
func (t *Transformer) Process(_ string, doc *xmlenc.Node) ([]*xmlenc.Node, error) {
	out, err := t.Fn(doc)
	if err != nil {
		return nil, err
	}
	if out == nil {
		return nil, nil
	}
	return []*xmlenc.Node{out}, nil
}

// ChangeFilter forwards a document only when it differs from the
// previous one — the change-detection behaviour of the flight-status
// application ("only if the status changed between consecutive
// requests", Section 6.2).
type ChangeFilter struct {
	CompName string
	mu       sync.Mutex
	last     map[string]string
}

// Name implements Component.
func (c *ChangeFilter) Name() string { return c.CompName }

// Process implements Component.
func (c *ChangeFilter) Process(from string, doc *xmlenc.Node) ([]*xmlenc.Node, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.last == nil {
		c.last = map[string]string{}
	}
	s := xmlenc.Marshal(doc)
	if c.last[from] == s {
		return nil, nil
	}
	c.last[from] = s
	return []*xmlenc.Node{doc}, nil
}

// ---------------------------------------------------------------------
// Deliverers.

// DefaultRetain is the number of recent documents a Collector keeps
// when no explicit retention cap is configured.
const DefaultRetain = 64

// Collector is a deliverer that stores the documents it receives in a
// bounded ring buffer; tests, examples and benchmarks read the
// service's output here. It stands in for the paper's SMS/HTTP/RMI
// delivery media. A long-running server delivers forever, so retention
// is capped (DefaultRetain unless Retain is set) while Len still
// reports the total number of deliveries.
type Collector struct {
	CompName string
	// Retain caps how many recent documents are kept. Zero means
	// DefaultRetain. The cap is latched on the first delivery; later
	// changes to Retain have no effect.
	Retain int
	// Journal, when set, is called after every delivery with the new
	// version and the delivered document, outside the collector lock.
	// The server's persistence layer uses it to queue WAL appends; it
	// must not block.
	Journal func(version uint64, doc *xmlenc.Node)
	mu      sync.Mutex
	ringCap int
	docs    []*xmlenc.Node // ring storage, oldest at start
	start   int
	total   int
	// version counts deliveries atomically so readers (the server's
	// delivery plane) can detect staleness without taking mu.
	version atomic.Uint64
}

// Name implements Component.
func (c *Collector) Name() string { return c.CompName }

func (c *Collector) capLocked() int {
	if c.ringCap == 0 {
		if c.Retain > 0 {
			c.ringCap = c.Retain
		} else {
			c.ringCap = DefaultRetain
		}
	}
	return c.ringCap
}

// Process implements Component.
func (c *Collector) Process(_ string, doc *xmlenc.Node) ([]*xmlenc.Node, error) {
	c.mu.Lock()
	c.total++
	if n := c.capLocked(); len(c.docs) < n {
		c.docs = append(c.docs, doc)
	} else {
		c.docs[c.start] = doc
		c.start = (c.start + 1) % n
	}
	v := c.version.Add(1)
	c.mu.Unlock()
	if c.Journal != nil {
		c.Journal(v, doc)
	}
	return nil, nil
}

// Preload seeds the collector with recovered documents (oldest first)
// and sets the delivery counter, as if the documents had been delivered
// live. It is only safe before the collector receives traffic; the
// server's crash-recovery path calls it while rehydrating a wrapper
// from its result log.
func (c *Collector) Preload(docs []*xmlenc.Node, version uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.capLocked()
	if len(docs) > n {
		docs = docs[len(docs)-n:]
	}
	c.docs = append(c.docs[:0], docs...)
	c.start = 0 // oldest at index 0; Process overwrites from here once full
	c.total = int(version)
	c.version.Store(version)
}

// HistorySince returns up to n retained documents with version numbers
// strictly greater than since, oldest first, along with each document's
// delivery version. Versions are derived from the invariant that the
// collector delivers exactly once per version: the oldest retained
// document has version total-len+1.
func (c *Collector) HistorySince(since uint64, n int) ([]*xmlenc.Node, []uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.docs) == 0 {
		return nil, nil
	}
	oldest := uint64(c.total - len(c.docs) + 1)
	from := oldest
	if since+1 > from {
		from = since + 1
	}
	last := uint64(c.total)
	if from > last {
		return nil, nil
	}
	count := int(last - from + 1)
	if n > 0 && count > n {
		// Keep the oldest qualifying entries: the caller pages forward
		// by advancing since.
		count = n
	}
	docs := make([]*xmlenc.Node, 0, count)
	vers := make([]uint64, 0, count)
	for i := 0; i < count; i++ {
		v := from + uint64(i)
		idx := (c.start + int(v-oldest)) % len(c.docs)
		docs = append(docs, c.docs[idx])
		vers = append(vers, v)
	}
	return docs, vers
}

// Version returns the delivery counter without locking: it increments
// on every Process call, so a reader holding an encoded copy of the
// collector's state can check freshness with one atomic load.
func (c *Collector) Version() uint64 { return c.version.Load() }

// Docs returns the retained documents in delivery order (oldest
// first). Once more than the retention cap have been delivered, only
// the most recent cap documents remain.
func (c *Collector) Docs() []*xmlenc.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*xmlenc.Node, len(c.docs))
	for i := range c.docs {
		out[i] = c.docs[(c.start+i)%len(c.docs)]
	}
	return out
}

// Latest returns the most recently delivered document, or nil.
func (c *Collector) Latest() *xmlenc.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.docs) == 0 {
		return nil
	}
	last := c.start - 1
	if last < 0 {
		last = len(c.docs) - 1
	}
	return c.docs[last]
}

// History returns up to n of the most recent documents, newest first.
func (c *Collector) History(n int) []*xmlenc.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n > len(c.docs) {
		n = len(c.docs)
	}
	if n <= 0 {
		return nil
	}
	out := make([]*xmlenc.Node, 0, n)
	for i := 0; i < n; i++ {
		idx := c.start - 1 - i
		idx = ((idx % len(c.docs)) + len(c.docs)) % len(c.docs)
		out = append(out, c.docs[idx])
	}
	return out
}

// Len returns the total number of deliveries (including documents that
// have since been evicted from the retention ring).
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Retained returns the number of documents currently held.
func (c *Collector) Retained() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.docs)
}

// FileDeliverer appends each document to a file (one document per
// write), for offline consumption.
type FileDeliverer struct {
	CompName string
	Path     string
}

// Name implements Component.
func (f *FileDeliverer) Name() string { return f.CompName }

// Process implements Component.
func (f *FileDeliverer) Process(_ string, doc *xmlenc.Node) ([]*xmlenc.Node, error) {
	fh, err := os.OpenFile(f.Path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	if _, err := fh.WriteString(xmlenc.MarshalIndent(doc) + "\n"); err != nil {
		return nil, err
	}
	return nil, nil
}

// HTTPDeliverer POSTs each document to an endpoint (the paper's
// HTTP-controlled services).
type HTTPDeliverer struct {
	CompName string
	URL      string
	Client   *http.Client
}

// Name implements Component.
func (h *HTTPDeliverer) Name() string { return h.CompName }

// Process implements Component.
func (h *HTTPDeliverer) Process(_ string, doc *xmlenc.Node) ([]*xmlenc.Node, error) {
	client := h.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Post(h.URL, "application/xml", strings.NewReader(xmlenc.Marshal(doc)))
	if err != nil {
		return nil, err
	}
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		return nil, fmt.Errorf("transform: delivery to %s failed: %s", h.URL, resp.Status)
	}
	return nil, nil
}
