package transform

import (
	"fmt"

	"repro/internal/elog"
	"repro/internal/fetchcache"
	"repro/pkg/lixto"
)

// NewWrapperSource builds a wrapper source from a compiled SDK wrapper:
// the source shares the wrapper's bitset-compiled form (and therefore
// its fingerprint-keyed match caches) instead of compiling its own copy
// on the first poll. The program must not be mutated afterwards. An
// optional shared fetch cache (see WrapperSource.Shared) can be set on
// the returned source before its first poll.
func NewWrapperSource(name string, w *lixto.Wrapper, f elog.Fetcher) *WrapperSource {
	return &WrapperSource{
		CompName: name,
		Fetcher:  f,
		Program:  w.Program(),
		Design:   w.Design(),
		compiled: w.Compiled(),
	}
}

// NewWrapperEngine wires the minimal single-wrapper information pipe —
// one wrapper source feeding one collector — from a compiled SDK
// wrapper. The emitted documents carry no source attribute, so each
// delivery is byte-identical to running the same program through the
// SDK; this is the engine behind the server's dynamically registered
// /v1 wrappers.
func NewWrapperEngine(name string, w *lixto.Wrapper, f elog.Fetcher) (*Engine, *Collector, error) {
	return NewWrapperEngineCached(name, w, f, nil)
}

// NewWrapperEngineCached is NewWrapperEngine with the wrapper source
// polling through a shared fetch/document cache (nil behaves exactly
// like NewWrapperEngine): the server threads its process-wide cache
// through here so that thousands of dynamically registered wrappers
// monitoring the same pages share one fetch+parse per page.
func NewWrapperEngineCached(name string, w *lixto.Wrapper, f elog.Fetcher, cache *fetchcache.Cache) (*Engine, *Collector, error) {
	return NewWrapperEngineBatched(name, w, f, cache, nil)
}

// NewWrapperEngineBatched is NewWrapperEngineCached with the wrapper
// source additionally attached to a fleet-shared match cache (nil
// disables batching): wrappers sharing one batch cache reuse each
// other's compiled pattern matches on identical paths and unchanged
// pages — the match-side counterpart of the shared fetch layer.
func NewWrapperEngineBatched(name string, w *lixto.Wrapper, f elog.Fetcher, cache *fetchcache.Cache, batch *elog.MatchCache) (*Engine, *Collector, error) {
	e := NewEngine()
	src := NewWrapperSource(name, w, f)
	src.NoSourceAttr = true
	src.Shared = cache
	src.Batch = batch
	out := &Collector{CompName: name + ".out"}
	if err := e.Add(src); err != nil {
		return nil, nil, err
	}
	if err := e.Add(out); err != nil {
		return nil, nil, err
	}
	if err := e.Connect(src.CompName, out.CompName); err != nil {
		return nil, nil, fmt.Errorf("transform: wiring wrapper engine %s: %w", name, err)
	}
	return e, out, nil
}
