package transform

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/elog"
	"repro/internal/pib"
	"repro/internal/web"
	"repro/internal/xmlenc"
)

// churnPage is a catalogue page wide enough that per-row contexts give
// the subtree layer something to reuse when only a few rows change.
func churnPage() string {
	var b strings.Builder
	b.WriteString("<html><body><table>\n")
	for i := 0; i < 24; i++ {
		fmt.Fprintf(&b, `<tr class="book"><td class="title">Volume %d</td><td class="price">%d.50</td></tr>`+"\n", i, 10+i)
	}
	b.WriteString("</table></body></html>")
	return b.String()
}

const churnProg = `page(S, X)  <- document("shop.example.com/churn", S), subelem(S, .body, X)
row(S, X)   <- page(_, S), subelem(S, ?.tr, X)
title(S, X) <- row(_, S), subelem(S, (?.td, [(class, title, exact)]), X)
price(S, X) <- row(_, S), subelem(S, (?.td, [(class, price, exact)]), X)`

func newChurnSource(fetch elog.Fetcher) *WrapperSource {
	return &WrapperSource{
		CompName: "churn",
		Fetcher:  fetch,
		Program:  elog.MustParse(churnProg),
		Design:   &pib.Design{Auxiliary: map[string]bool{"document": true, "page": true, "row": true}},
		NoCache:  true,
	}
}

// TestWrapperSourceIncrementalDifferential pins the tentpole guarantee
// at the transform level: a long-lived wrapper source polling a
// churning page with incremental matching on emits XML byte-identical
// to a cold full re-evaluation of every document version — under
// content-only churn (where the subtree layer must engage) and under
// structural churn (where trees fall out of document order and the
// evaluator must fall back).
func TestWrapperSourceIncrementalDifferential(t *testing.T) {
	for _, grow := range []bool{false, true} {
		name := "content-churn"
		if grow {
			name = "structural-churn"
		}
		t.Run(name, func(t *testing.T) {
			sim := web.New()
			sim.SetStatic("shop.example.com/churn", churnPage())
			churnInc := &web.ChurnFetcher{Inner: sim, Seed: 7, Grow: grow}
			churnCold := &web.ChurnFetcher{Inner: sim, Seed: 7, Grow: grow}
			inc := newChurnSource(churnInc)
			for step := 0; step < 8; step++ {
				got, err := inc.Poll()
				if err != nil {
					t.Fatalf("step %d incremental: %v", step, err)
				}
				cold := newChurnSource(churnCold)
				cold.NoIncremental = true
				want, err := cold.Poll()
				if err != nil {
					t.Fatalf("step %d cold: %v", step, err)
				}
				g, w := xmlenc.MarshalIndent(got[0]), xmlenc.MarshalIndent(want[0])
				if g != w {
					t.Fatalf("step %d: incremental output differs from cold re-evaluation:\n--- cold ---\n%s\n--- incremental ---\n%s", step, w, g)
				}
				churnInc.Advance()
				churnCold.Advance()
			}
			st := inc.ExtractionStats()
			if !grow && st.SubtreeHits == 0 {
				t.Error("no subtree hits over a content-only churn sequence")
			}
			if !grow && st.ReusedNodes == 0 {
				t.Error("reused_nodes = 0 over a content-only churn sequence")
			}
			if st.SubtreeHits == 0 && st.SubtreeMisses == 0 && !grow {
				t.Error("incremental counters never moved")
			}
		})
	}
}
