package transform

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/elog"
	"repro/internal/htmlparse"
	"repro/internal/pib"
	"repro/internal/web"
	"repro/internal/xmlenc"
)

// bookPipeline wires the small information pipe of Figure 7: two
// bookshop wrappers -> integrator -> cheapest-offer transformer ->
// change filter -> collector.
func bookPipeline(t *testing.T) (*Engine, *web.BookSite, *web.BookSite, *Collector) {
	t.Helper()
	w := web.New()
	shopA := web.NewBookSite(1, 5)
	shopA.Register(w, "shop-a.example.com")
	shopB := web.NewBookSite(2, 5)
	shopB.Register(w, "shop-b.example.com")

	mkProgram := func(host string) *elog.Program {
		return elog.MustParse(fmt.Sprintf(`
page(S, X) <- document("%s/bestsellers.html", S), subelem(S, .body, X)
book(S, X) <- page(_, S), subelem(S, (?.tr, [(class, book, exact)]), X)
title(S, X) <- book(_, S), subelem(S, (?.td, [(class, title, exact)]), X)
price(S, X) <- book(_, S), subelem(S, (?.td, [(class, price, exact)]), X)
`, host))
	}
	design := &pib.Design{Auxiliary: map[string]bool{"document": true, "page": true}, RootName: "shop"}

	eng := NewEngine()
	for _, c := range []Component{
		&WrapperSource{CompName: "wrapA", Fetcher: w, Program: mkProgram("shop-a.example.com"), Design: design},
		&WrapperSource{CompName: "wrapB", Fetcher: w, Program: mkProgram("shop-b.example.com"), Design: design},
		&Integrator{CompName: "merge", Expect: []string{"wrapA", "wrapB"}, RootName: "offers"},
		&Transformer{CompName: "best", Fn: cheapest},
		&ChangeFilter{CompName: "changed"},
	} {
		if err := eng.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	sink := &Collector{CompName: "out"}
	if err := eng.Add(sink); err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]string{
		{"wrapA", "merge"}, {"wrapB", "merge"}, {"merge", "best"},
		{"best", "changed"}, {"changed", "out"},
	} {
		if err := eng.Connect(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return eng, shopA, shopB, sink
}

// cheapest reduces the merged offers to the globally cheapest book.
func cheapest(doc *xmlenc.Node) (*xmlenc.Node, error) {
	out := xmlenc.NewElement("cheapest")
	bestPrice := 1e18
	var best *xmlenc.Node
	for _, book := range doc.Find("book") {
		p := book.FirstChild("price")
		tl := book.FirstChild("title")
		if p == nil || tl == nil {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(strings.TrimPrefix(strings.TrimSpace(p.Text), "$ "), "%f", &v); err != nil {
			continue
		}
		if v < bestPrice {
			bestPrice = v
			best = book
		}
	}
	if best == nil {
		return nil, fmt.Errorf("no offers")
	}
	out.AppendTextElement("title", best.FirstChild("title").Text)
	out.AppendTextElement("price", best.FirstChild("price").Text)
	return out, nil
}

func TestE13Pipeline(t *testing.T) {
	eng, shopA, _, sink := bookPipeline(t)
	eng.Tick()
	if len(eng.Errors) != 0 {
		t.Fatalf("errors: %v", eng.Errors)
	}
	if sink.Len() != 1 {
		t.Fatalf("deliveries = %d", sink.Len())
	}
	first := sink.Docs()[0]
	if first.Name != "cheapest" || first.FirstChild("title") == nil {
		t.Fatalf("bad delivery: %s", xmlenc.Marshal(first))
	}

	// Nothing changed: the change filter must suppress the second tick.
	eng.Tick()
	if sink.Len() != 1 {
		t.Fatalf("unchanged data delivered again (%d deliveries)", sink.Len())
	}

	// A price drop must flow through.
	shopA.SetPrice(1, "$ 0.50")
	eng.Tick()
	if sink.Len() != 2 {
		t.Fatalf("price change not delivered (%d)", sink.Len())
	}
	last := sink.Docs()[1]
	if got := last.FirstChild("price").Text; !strings.Contains(got, "0.50") {
		t.Errorf("cheapest price = %q", got)
	}
}

func TestIntegratorWaitsForAllInputs(t *testing.T) {
	i := &Integrator{CompName: "m", Expect: []string{"a", "b"}}
	out, err := i.Process("a", xmlenc.NewElement("x"))
	if err != nil || out != nil {
		t.Fatalf("emitted before all inputs: %v %v", out, err)
	}
	out, err = i.Process("b", xmlenc.NewElement("y"))
	if err != nil || len(out) != 1 {
		t.Fatalf("did not emit after all inputs: %v %v", out, err)
	}
	if len(out[0].Children) != 2 {
		t.Errorf("merged %d children", len(out[0].Children))
	}
}

func TestCycleRejected(t *testing.T) {
	eng := NewEngine()
	a := &Transformer{CompName: "a", Fn: func(n *xmlenc.Node) (*xmlenc.Node, error) { return n, nil }}
	b := &Transformer{CompName: "b", Fn: func(n *xmlenc.Node) (*xmlenc.Node, error) { return n, nil }}
	if err := eng.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := eng.Add(b); err != nil {
		t.Fatal(err)
	}
	if err := eng.Connect("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Connect("b", "a"); err == nil {
		t.Fatal("cycle accepted")
	}
	if err := eng.Connect("a", "zzz"); err == nil {
		t.Fatal("unknown target accepted")
	}
}

func TestDuplicateComponentRejected(t *testing.T) {
	eng := NewEngine()
	c := &Collector{CompName: "x"}
	if err := eng.Add(c); err != nil {
		t.Fatal(err)
	}
	if err := eng.Add(&Collector{CompName: "x"}); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestSourceErrorLoggedNotFatal(t *testing.T) {
	eng := NewEngine()
	bad := &WrapperSource{CompName: "bad",
		Fetcher: elog.MapFetcher{},
		Program: elog.MustParse(`p(S, X) <- document("missing", S), subelem(S, .body, X)`)}
	sink := &Collector{CompName: "out"}
	if err := eng.Add(bad); err != nil {
		t.Fatal(err)
	}
	if err := eng.Add(sink); err != nil {
		t.Fatal(err)
	}
	if err := eng.Connect("bad", "out"); err != nil {
		t.Fatal(err)
	}
	eng.Tick()
	if len(eng.Errors) == 0 {
		t.Fatal("error not logged")
	}
	if sink.Len() != 0 {
		t.Fatal("bad source delivered")
	}
}

func TestWrapperSourcePollInterval(t *testing.T) {
	w := web.New()
	web.NewBookSite(1, 2).Register(w, "s.example.com")
	src := &WrapperSource{CompName: "s", Fetcher: w, Every: 3,
		Program: elog.MustParse(`page(S, X) <- document("s.example.com/bestsellers.html", S), subelem(S, .body, X)`)}
	polls := 0
	for i := 0; i < 9; i++ {
		docs, err := src.Poll()
		if err != nil {
			t.Fatal(err)
		}
		polls += len(docs)
	}
	if polls != 3 {
		t.Fatalf("polled %d times, want 3 (Every=3 over 9 ticks)", polls)
	}
}

func TestFileDeliverer(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.xml")
	f := &FileDeliverer{CompName: "f", Path: path}
	doc := xmlenc.NewElement("d")
	doc.AppendTextElement("v", "1")
	if _, err := f.Process("", doc); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Process("", doc); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(string(data), "<d>") != 2 {
		t.Errorf("file content:\n%s", data)
	}
}

func TestHTTPDeliverer(t *testing.T) {
	var mu sync.Mutex
	var got []string
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		mu.Lock()
		got = append(got, string(body))
		mu.Unlock()
	}))
	defer srv.Close()
	h := &HTTPDeliverer{CompName: "h", URL: srv.URL}
	doc := xmlenc.NewElement("ping")
	if _, err := h.Process("", doc); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || !strings.Contains(got[0], "<ping/>") {
		t.Errorf("delivered: %v", got)
	}
}

func BenchmarkE13_PipelineThroughput(b *testing.B) {
	w := web.New()
	web.NewBookSite(1, 50).Register(w, "shop-a.example.com")
	web.NewBookSite(2, 50).Register(w, "shop-b.example.com")
	eng := NewEngine()
	design := &pib.Design{Auxiliary: map[string]bool{"document": true, "page": true}, RootName: "shop"}
	mk := func(host string) *elog.Program {
		return elog.MustParse(fmt.Sprintf(`
page(S, X) <- document("%s/bestsellers.html", S), subelem(S, .body, X)
book(S, X) <- page(_, S), subelem(S, (?.tr, [(class, book, exact)]), X)
title(S, X) <- book(_, S), subelem(S, (?.td, [(class, title, exact)]), X)
price(S, X) <- book(_, S), subelem(S, (?.td, [(class, price, exact)]), X)
`, host))
	}
	_ = eng.Add(&WrapperSource{CompName: "wrapA", Fetcher: w, Program: mk("shop-a.example.com"), Design: design})
	_ = eng.Add(&WrapperSource{CompName: "wrapB", Fetcher: w, Program: mk("shop-b.example.com"), Design: design})
	_ = eng.Add(&Integrator{CompName: "merge", Expect: []string{"wrapA", "wrapB"}})
	sink := &Collector{CompName: "out"}
	_ = eng.Add(sink)
	_ = eng.Connect("wrapA", "merge")
	_ = eng.Connect("wrapB", "merge")
	_ = eng.Connect("merge", "out")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Tick()
	}
	if sink.Len() == 0 {
		b.Fatal("no deliveries")
	}
}

func TestRunWallClock(t *testing.T) {
	// The continuous mode: ticks driven by a real ticker until the
	// context is cancelled.
	eng, _, _, sink := bookPipeline(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		eng.Run(ctx, time.Millisecond)
		close(done)
	}()
	deadline := time.After(2 * time.Second)
	for sink.Len() == 0 {
		select {
		case <-deadline:
			cancel()
			t.Fatal("no delivery within 2s of wall-clock running")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Run did not stop on context cancel")
	}
}

// TestWrapperSourceFingerprintCache pins the fingerprint-keyed poll
// cache: unchanged pages re-emit the previous document without
// re-running the wrapper; any page mutation invalidates the cache.
func TestWrapperSourceFingerprintCache(t *testing.T) {
	page := htmlparse.Parse(`<html><body><p class="x">one</p></body></html>`)
	src := &WrapperSource{
		CompName: "w",
		Fetcher:  elog.MapFetcher{"site/page.html": page},
		Program: elog.MustParse(`
page(S, X) <- document("site/page.html", S), subelem(S, .body, X)
`),
	}
	poll := func() *xmlenc.Node {
		t.Helper()
		docs, err := src.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if len(docs) != 1 {
			t.Fatalf("poll emitted %d docs, want 1", len(docs))
		}
		return docs[0]
	}
	d1 := poll()
	d2 := poll()
	if d2 != d1 || src.CacheHits != 1 {
		t.Fatalf("unchanged page: got new document (hits=%d), want cache hit", src.CacheHits)
	}
	// Mutate the page: the fingerprint changes and the wrapper re-runs.
	page.AppendText(page.Root(), "extra")
	d3 := poll()
	if d3 == d1 || src.CacheHits != 1 {
		t.Fatalf("changed page: poll reused stale document (hits=%d)", src.CacheHits)
	}
	if d4 := poll(); d4 != d3 || src.CacheHits != 2 {
		t.Fatalf("re-poll after change should hit cache again (hits=%d)", src.CacheHits)
	}
	// NoCache disables memoization entirely.
	src.NoCache = true
	if d5 := poll(); d5 == d3 || src.CacheHits != 2 {
		t.Fatalf("NoCache poll must re-evaluate (hits=%d)", src.CacheHits)
	}
}

// TestExtractionStats pins the wrapper memoization counters that the
// server's /statusz page surfaces: whole-poll fingerprint cache hits
// plus the compiled program's per-document match cache, aggregated
// over the engine.
func TestExtractionStats(t *testing.T) {
	page := htmlparse.Parse(`<html><body><p class="x">one</p><p class="x">two</p></body></html>`)
	src := &WrapperSource{
		CompName: "w",
		Fetcher:  elog.MapFetcher{"site/page.html": page},
		Program: elog.MustParse(`
page(S, X) <- document("site/page.html", S), subelem(S, .body, X)
para(S, X) <- page(_, S), subelem(S, (?.p, [(class, x, exact)]), X)
`),
	}
	eng := NewEngine()
	sink := &Collector{CompName: "sink"}
	for _, c := range []Component{Component(src), sink} {
		if err := eng.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Connect("w", "sink"); err != nil {
		t.Fatal(err)
	}

	eng.Tick()
	st := src.ExtractionStats()
	// The fixpoint loop re-applies rules within one run, so the match
	// cache records hits even on a cold poll; misses are the cold
	// matches themselves.
	if st.PollCacheHits != 0 || st.MatchCacheMisses == 0 {
		t.Fatalf("first tick stats = %+v, want cold misses and no poll hits", st)
	}
	eng.Tick()
	prev := st
	st = src.ExtractionStats()
	if st.PollCacheHits != 1 {
		t.Fatalf("second tick poll hits = %d, want 1", st.PollCacheHits)
	}
	if st.MatchCacheMisses != prev.MatchCacheMisses {
		t.Fatalf("poll cache hit still re-matched: %+v vs %+v", st, prev)
	}
	// Invalidate only the poll cache (NoCache): the compiled match
	// cache still answers the unchanged page without new misses.
	src.NoCache = true
	eng.Tick()
	prev = st
	st = src.ExtractionStats()
	if st.MatchCacheHits <= prev.MatchCacheHits || st.MatchCacheMisses != prev.MatchCacheMisses {
		t.Fatalf("re-extraction of an unchanged page missed the match cache: %+v vs %+v", st, prev)
	}
	if got := eng.ExtractionStats(); got != st {
		t.Fatalf("engine aggregate %+v != source stats %+v", got, st)
	}
}

// TestWrapperSourceAliasedTree polls a wrapper whose fetcher serves the
// same tree under two URLs: the frontier's workers then hand the shared
// tree to the recording fetcher concurrently, which must be race-free
// (run with -race; CI does).
func TestWrapperSourceAliasedTree(t *testing.T) {
	for i := 0; i < 10; i++ {
		page := htmlparse.Parse(`<html><body><p class="x">one</p></body></html>`)
		src := &WrapperSource{
			CompName: "w",
			Fetcher:  elog.MapFetcher{"u1": page, "u2": page},
			Program: elog.MustParse(`
a(S, X) <- document("u1", S), subelem(S, .body, X)
b(S, X) <- document("u2", S), subelem(S, .body, X)
`),
		}
		docs, err := src.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if len(docs) != 1 {
			t.Fatalf("poll emitted %d docs", len(docs))
		}
		if docs2, err := src.Poll(); err != nil || len(docs2) != 1 || docs2[0] != docs[0] {
			t.Fatalf("re-poll over the aliased unchanged tree missed the cache: %v", err)
		}
	}
}
