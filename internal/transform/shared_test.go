package transform

import (
	"strings"
	"testing"
	"time"

	"repro/internal/elog"
	"repro/internal/fetchcache"
	"repro/internal/pib"
	"repro/internal/web"
	"repro/internal/xmlenc"
)

const sharedPage = `<html><body><table>
<tr class="book"><td class="title">Foundations of Databases</td></tr>
<tr class="book"><td class="title">The Complexity of XPath</td></tr>
</table></body></html>`

const sharedProg = `page(S, X)  <- document("shop.example.com/books", S), subelem(S, .body, X)
title(S, X) <- page(_, S), subelem(S, (?.td, [(class, title, exact)]), X)`

func newSharedSource(name string, sim *web.Web, cache *fetchcache.Cache) *WrapperSource {
	return &WrapperSource{
		CompName: name,
		Fetcher:  sim,
		Program:  elog.MustParse(sharedProg),
		Design:   &pib.Design{Auxiliary: map[string]bool{"document": true, "page": true}},
		Shared:   cache,
	}
}

// TestWrapperSourcesShareFetches pins the shared fetch layer at the
// transform level: N wrapper sources polling the same page through one
// cache trigger one upstream fetch, and their output is byte-identical
// to uncached polling.
func TestWrapperSourcesShareFetches(t *testing.T) {
	simShared := web.New()
	simShared.SetStatic("shop.example.com/books", sharedPage)
	simPrivate := web.New()
	simPrivate.SetStatic("shop.example.com/books", sharedPage)

	cache := fetchcache.New(16, time.Hour)
	var docs []string
	for i := 0; i < 5; i++ {
		src := newSharedSource("shared", simShared, cache)
		out, err := src.Poll()
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, xmlenc.MarshalIndent(out[0]))
	}
	if got := simShared.FetchCount("shop.example.com/books"); got != 1 {
		t.Fatalf("shared page fetched %d times by 5 sources, want 1", got)
	}

	// Byte identity against a private (uncached) source.
	private := newSharedSource("shared", simPrivate, nil)
	out, err := private.Poll()
	if err != nil {
		t.Fatal(err)
	}
	want := xmlenc.MarshalIndent(out[0])
	for i, got := range docs {
		if got != want {
			t.Fatalf("source %d output differs under the shared cache:\n%s\nwant:\n%s", i, got, want)
		}
	}
	if simPrivate.FetchCount("shop.example.com/books") != 1 {
		t.Fatalf("private source fetch count unexpected")
	}
	if st := cache.Stats(); st.Hits != 4 || st.Misses != 1 {
		t.Errorf("cache stats = %+v, want 4 hits / 1 miss", st)
	}
}

// TestSharedCacheRefreshObservesChanges checks that freshness still
// works through the shared layer: once the cache window lapses, a
// changed page reaches the wrapper (monitoring is not frozen).
func TestSharedCacheRefreshObservesChanges(t *testing.T) {
	sim := web.New()
	sim.SetStatic("shop.example.com/books", sharedPage)
	cache := fetchcache.New(16, time.Millisecond)
	src := newSharedSource("w", sim, cache)
	out, err := src.Poll()
	if err != nil {
		t.Fatal(err)
	}
	before := xmlenc.MarshalIndent(out[0])

	sim.SetStatic("shop.example.com/books",
		`<html><body><table><tr class="book"><td class="title">New Arrival</td></tr></table></body></html>`)
	time.Sleep(5 * time.Millisecond) // let the freshness window lapse
	out, err = src.Poll()
	if err != nil {
		t.Fatal(err)
	}
	after := xmlenc.MarshalIndent(out[0])
	if before == after {
		t.Fatal("wrapper never observed the page change through the shared cache")
	}
	if !strings.Contains(after, "New Arrival") {
		t.Fatalf("unexpected refreshed output:\n%s", after)
	}
}
