package transform

import (
	"bytes"
	"testing"

	"repro/internal/web"
	"repro/internal/xmlenc"
)

// FuzzIncrementalTransform drives the whole end-to-end incremental
// tick under fuzzed churn and pins both byte-identity guarantees at
// once: (1) a wrapper source with incremental matching and incremental
// output must emit XML identical to a cold full re-evaluation of every
// document version; (2) the splice-based xmlenc.Encoder must produce
// the exact bytes of the plain marshaler for every emitted document.
func FuzzIncrementalTransform(f *testing.F) {
	f.Add(int64(1), uint8(4), false)
	f.Add(int64(7), uint8(8), false)
	f.Add(int64(31), uint8(6), true)
	f.Add(int64(-12345), uint8(3), true)
	f.Fuzz(func(t *testing.T, seed int64, steps uint8, grow bool) {
		n := int(steps)%8 + 2
		sim := web.New()
		sim.SetStatic("shop.example.com/churn", churnPage())
		churnInc := &web.ChurnFetcher{Inner: sim, Seed: seed, Grow: grow}
		churnCold := &web.ChurnFetcher{Inner: sim, Seed: seed, Grow: grow}
		inc := newChurnSource(churnInc)
		enc := xmlenc.NewEncoder()
		for step := 0; step < n; step++ {
			got, err := inc.Poll()
			if err != nil {
				t.Fatalf("step %d incremental: %v", step, err)
			}
			cold := newChurnSource(churnCold)
			cold.NoIncremental = true
			cold.NoIncrementalOutput = true
			want, err := cold.Poll()
			if err != nil {
				t.Fatalf("step %d cold: %v", step, err)
			}
			plain := xmlenc.MarshalIndentBytes(got[0])
			if want, got := xmlenc.MarshalIndentBytes(want[0]), plain; !bytes.Equal(got, want) {
				t.Fatalf("step %d: incremental output differs from cold rebuild:\n--- cold ---\n%s\n--- incremental ---\n%s", step, want, got)
			}
			if spliced := enc.MarshalIndentBytes(got[0]); !bytes.Equal(spliced, plain) {
				t.Fatalf("step %d: splice encoder differs from plain marshaler:\n--- plain ---\n%s\n--- spliced ---\n%s", step, plain, spliced)
			}
			churnInc.Advance()
			churnCold.Advance()
		}
	})
}
