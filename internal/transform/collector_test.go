package transform

import (
	"strconv"
	"testing"

	"repro/internal/xmlenc"
)

func deliver(t *testing.T, c *Collector, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		doc := xmlenc.NewElement("d")
		doc.SetAttr("n", strconv.Itoa(i))
		if _, err := c.Process("", doc); err != nil {
			t.Fatal(err)
		}
	}
}

func nth(t *testing.T, doc *xmlenc.Node) int {
	t.Helper()
	v, _ := doc.Attr("n")
	i, err := strconv.Atoi(v)
	if err != nil {
		t.Fatalf("bad doc %s", xmlenc.Marshal(doc))
	}
	return i
}

func TestCollectorBelowCap(t *testing.T) {
	c := &Collector{CompName: "c", Retain: 8}
	deliver(t, c, 3)
	if c.Len() != 3 || c.Retained() != 3 {
		t.Fatalf("Len=%d Retained=%d", c.Len(), c.Retained())
	}
	docs := c.Docs()
	for i, d := range docs {
		if nth(t, d) != i+1 {
			t.Fatalf("Docs out of order: %v", docs)
		}
	}
	if nth(t, c.Latest()) != 3 {
		t.Fatalf("Latest = %d", nth(t, c.Latest()))
	}
}

func TestCollectorRingEviction(t *testing.T) {
	c := &Collector{CompName: "c", Retain: 4}
	deliver(t, c, 10)
	if c.Len() != 10 {
		t.Fatalf("Len = %d, want total deliveries 10", c.Len())
	}
	if c.Retained() != 4 {
		t.Fatalf("Retained = %d, want cap 4", c.Retained())
	}
	docs := c.Docs()
	want := []int{7, 8, 9, 10}
	for i, d := range docs {
		if nth(t, d) != want[i] {
			t.Fatalf("retained wrong docs: got %d at %d, want %d", nth(t, d), i, want[i])
		}
	}
	if nth(t, c.Latest()) != 10 {
		t.Fatalf("Latest = %d, want 10", nth(t, c.Latest()))
	}
	hist := c.History(3)
	wantHist := []int{10, 9, 8}
	for i, d := range hist {
		if nth(t, d) != wantHist[i] {
			t.Fatalf("History newest-first violated: got %d at %d", nth(t, d), i)
		}
	}
	if got := len(c.History(100)); got != 4 {
		t.Fatalf("History over-cap = %d docs, want 4", got)
	}
	if c.History(0) != nil {
		t.Fatal("History(0) should be empty")
	}
}

func TestCollectorDefaultRetain(t *testing.T) {
	c := &Collector{CompName: "c"}
	deliver(t, c, DefaultRetain+10)
	if c.Len() != DefaultRetain+10 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.Retained() != DefaultRetain {
		t.Fatalf("Retained = %d, want DefaultRetain %d", c.Retained(), DefaultRetain)
	}
	if nth(t, c.Latest()) != DefaultRetain+10 {
		t.Fatalf("Latest = %d", nth(t, c.Latest()))
	}
}

func TestCollectorEmpty(t *testing.T) {
	c := &Collector{CompName: "c"}
	if c.Latest() != nil || len(c.Docs()) != 0 || c.History(5) != nil || c.Len() != 0 {
		t.Fatal("empty collector not empty")
	}
}

func TestCollectorJournal(t *testing.T) {
	c := &Collector{CompName: "c", Retain: 4}
	var vers []uint64
	c.Journal = func(v uint64, doc *xmlenc.Node) {
		if doc == nil {
			t.Fatal("journal got nil doc")
		}
		vers = append(vers, v)
	}
	deliver(t, c, 6)
	if len(vers) != 6 {
		t.Fatalf("journal called %d times, want 6", len(vers))
	}
	for i, v := range vers {
		if v != uint64(i+1) {
			t.Fatalf("journal versions %v, want 1..6", vers)
		}
	}
}

func TestCollectorPreload(t *testing.T) {
	docs := make([]*xmlenc.Node, 3)
	for i := range docs {
		docs[i] = xmlenc.NewElement("d")
		docs[i].SetAttr("n", strconv.Itoa(i+8))
	}
	c := &Collector{CompName: "c", Retain: 4}
	c.Preload(docs, 10)
	if c.Version() != 10 || c.Len() != 10 || c.Retained() != 3 {
		t.Fatalf("Version=%d Len=%d Retained=%d", c.Version(), c.Len(), c.Retained())
	}
	if nth(t, c.Latest()) != 10 {
		t.Fatalf("Latest = %d", nth(t, c.Latest()))
	}
	// Live deliveries continue seamlessly after a preload.
	doc := xmlenc.NewElement("d")
	doc.SetAttr("n", "11")
	if _, err := c.Process("", doc); err != nil {
		t.Fatal(err)
	}
	got := c.Docs()
	want := []int{8, 9, 10, 11}
	for i, d := range got {
		if nth(t, d) != want[i] {
			t.Fatalf("after preload+process: doc %d at %d, want %d", nth(t, d), i, want[i])
		}
	}
	// Preload more docs than the cap keeps only the newest cap docs.
	c2 := &Collector{CompName: "c", Retain: 2}
	c2.Preload(docs, 10)
	if c2.Retained() != 2 || nth(t, c2.Latest()) != 10 {
		t.Fatalf("over-cap preload: Retained=%d Latest=%d", c2.Retained(), nth(t, c2.Latest()))
	}
}

func TestCollectorHistorySince(t *testing.T) {
	c := &Collector{CompName: "c", Retain: 4}
	deliver(t, c, 10) // retained: docs 7..10 with versions 7..10
	docs, vers := c.HistorySince(0, 0)
	if len(docs) != 4 || vers[0] != 7 || vers[3] != 10 {
		t.Fatalf("HistorySince(0) = %d docs, vers %v", len(docs), vers)
	}
	for i, d := range docs {
		if uint64(nth(t, d)) != vers[i] {
			t.Fatalf("doc %d carries version %d", nth(t, d), vers[i])
		}
	}
	docs, vers = c.HistorySince(8, 0)
	if len(docs) != 2 || vers[0] != 9 || vers[1] != 10 {
		t.Fatalf("HistorySince(8) = %v", vers)
	}
	if docs, _ := c.HistorySince(10, 0); docs != nil {
		t.Fatalf("HistorySince(latest) returned %d docs", len(docs))
	}
	if docs, _ := c.HistorySince(99, 0); docs != nil {
		t.Fatal("HistorySince past the end returned docs")
	}
	// n caps the page, keeping the oldest qualifying entries.
	docs, vers = c.HistorySince(6, 2)
	if len(docs) != 2 || vers[0] != 7 || vers[1] != 8 {
		t.Fatalf("paged HistorySince = %v", vers)
	}
	empty := &Collector{CompName: "c"}
	if docs, _ := empty.HistorySince(0, 0); docs != nil {
		t.Fatal("empty collector returned history")
	}
}

func TestEngineErrorAccessors(t *testing.T) {
	e := NewEngine()
	e.MaxErrors = 2
	for i := 0; i < 5; i++ {
		e.logErr(errFor(i))
	}
	if len(e.Errors) != 2 {
		t.Fatalf("Errors log = %d entries, want capped at 2", len(e.Errors))
	}
	if e.ErrorCount() != 5 {
		t.Fatalf("ErrorCount = %d, want 5 (uncapped)", e.ErrorCount())
	}
	if e.LastError() == nil || e.LastError().Error() != "err 4" {
		t.Fatalf("LastError = %v", e.LastError())
	}
}

func errFor(i int) error { return &numErr{i} }

type numErr struct{ i int }

func (e *numErr) Error() string { return "err " + strconv.Itoa(e.i) }
