package transform

import (
	"testing"
	"time"

	"repro/internal/elog"
	"repro/internal/fetchcache"
	"repro/internal/web"
	"repro/internal/xmlenc"
)

// TestWrapperSourcesBatchExtraction pins the batched fleet path at the
// transform level: N wrapper sources sharing one fetch cache AND one
// match cache over the same page produce output byte-identical to
// private polling, while the fleet's matching work collapses into the
// shared cache (later wrappers hit, only the first misses). The
// extraction block must report the fleet's batch size and nonzero
// parse/eval timings.
func TestWrapperSourcesBatchExtraction(t *testing.T) {
	const fleet = 6
	sim := web.New()
	sim.SetStatic("shop.example.com/books", sharedPage)

	cache := fetchcache.New(16, time.Hour)
	mc := elog.NewMatchCache()
	var docs []string
	var srcs []*WrapperSource
	for i := 0; i < fleet; i++ {
		src := newSharedSource("batched", sim, cache)
		src.Batch = mc
		out, err := src.Poll()
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, xmlenc.MarshalIndent(out[0]))
		srcs = append(srcs, src)
	}

	simPrivate := web.New()
	simPrivate.SetStatic("shop.example.com/books", sharedPage)
	private := newSharedSource("batched", simPrivate, nil)
	out, err := private.Poll()
	if err != nil {
		t.Fatal(err)
	}
	want := xmlenc.MarshalIndent(out[0])
	for i, got := range docs {
		if got != want {
			t.Fatalf("source %d output differs under batching:\n%s\nwant:\n%s", i, got, want)
		}
	}

	hits, misses := mc.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("shared match cache hits=%d misses=%d: fleet is not batching", hits, misses)
	}
	if hits < misses*(fleet-2) {
		t.Errorf("shared match cache hits=%d misses=%d: expected all but the first wrapper to hit", hits, misses)
	}
	st := srcs[0].ExtractionStats()
	if st.BatchSize != fleet {
		t.Errorf("batch_size = %d, want %d", st.BatchSize, fleet)
	}
	if st.EvalNS == 0 {
		t.Error("eval_ns = 0 after a real poll")
	}
	if st.ParseNS == 0 {
		t.Error("parse_ns = 0 after a real poll")
	}
	var agg ExtractionStats
	for _, src := range srcs {
		agg.add(src.ExtractionStats())
	}
	if agg.BatchSize != fleet {
		t.Errorf("aggregated batch_size = %d, want %d", agg.BatchSize, fleet)
	}
}
