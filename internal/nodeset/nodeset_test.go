package nodeset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dom"
)

// oracle computes an axis image by quadratic enumeration.
func oracle(t *dom.Tree, s Set, holds func(x, y dom.NodeID) bool) Set {
	out := New(t)
	for x := 0; x < t.Size(); x++ {
		if !s[x] {
			continue
		}
		for y := 0; y < t.Size(); y++ {
			if holds(dom.NodeID(x), dom.NodeID(y)) {
				out[y] = true
			}
		}
	}
	return out
}

func setsEqual(a, b Set) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAxisOpsAgainstOracle(t *testing.T) {
	ops := []struct {
		name  string
		fn    func(*dom.Tree, Set) Set
		holds func(tr *dom.Tree) func(x, y dom.NodeID) bool
	}{
		{"Children", Children, func(tr *dom.Tree) func(x, y dom.NodeID) bool {
			return func(x, y dom.NodeID) bool { return tr.IsChild(x, y) }
		}},
		{"Parents", Parents, func(tr *dom.Tree) func(x, y dom.NodeID) bool {
			return func(x, y dom.NodeID) bool { return tr.IsChild(y, x) }
		}},
		{"Descendants", Descendants, func(tr *dom.Tree) func(x, y dom.NodeID) bool {
			return func(x, y dom.NodeID) bool { return tr.IsAncestor(x, y) }
		}},
		{"Ancestors", Ancestors, func(tr *dom.Tree) func(x, y dom.NodeID) bool {
			return func(x, y dom.NodeID) bool { return tr.IsAncestor(y, x) }
		}},
		{"NextSiblings", NextSiblings, func(tr *dom.Tree) func(x, y dom.NodeID) bool {
			return func(x, y dom.NodeID) bool { return tr.NextSibling(x) == y }
		}},
		{"PrevSiblings", PrevSiblings, func(tr *dom.Tree) func(x, y dom.NodeID) bool {
			return func(x, y dom.NodeID) bool { return tr.PrevSibling(x) == y }
		}},
		{"FollowingSiblings", FollowingSiblings, func(tr *dom.Tree) func(x, y dom.NodeID) bool {
			return func(x, y dom.NodeID) bool { return tr.FollowingSibling(x, y) }
		}},
		{"PrecedingSiblings", PrecedingSiblings, func(tr *dom.Tree) func(x, y dom.NodeID) bool {
			return func(x, y dom.NodeID) bool { return tr.FollowingSibling(y, x) }
		}},
		{"Following", Following, func(tr *dom.Tree) func(x, y dom.NodeID) bool {
			return func(x, y dom.NodeID) bool { return tr.Following(x, y) }
		}},
		{"Preceding", Preceding, func(tr *dom.Tree) func(x, y dom.NodeID) bool {
			return func(x, y dom.NodeID) bool { return tr.Following(y, x) }
		}},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := dom.RandomTree(rng, 1+rng.Intn(40), []string{"a", "b"}, 4)
		tr.Reindex()
		s := New(tr)
		for i := range s {
			s[i] = rng.Intn(3) == 0
		}
		for _, op := range ops {
			got := op.fn(tr, s)
			want := oracle(tr, s, op.holds(tr))
			if !setsEqual(got, want) {
				t.Logf("%s wrong on %s", op.name, tr)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestSetAlgebra(t *testing.T) {
	tr := dom.MustParseTerm("a(b,c)")
	full := Full(tr)
	if full.Count() != 3 || full.Empty() {
		t.Error("Full wrong")
	}
	s := Singleton(tr, 1)
	if s.Count() != 1 {
		t.Error("Singleton wrong")
	}
	c := s.Clone().Not()
	if c.Count() != 2 || c[1] {
		t.Error("Not wrong")
	}
	u := s.Clone().Or(c)
	if u.Count() != 3 {
		t.Error("Or wrong")
	}
	i := u.And(Singleton(tr, 2))
	if i.Count() != 1 || !i[2] {
		t.Error("And wrong")
	}
	if got := FromSlice(tr, []dom.NodeID{2, 0}).Nodes(tr); len(got) != 2 || got[0] != 0 {
		t.Errorf("Nodes = %v", got)
	}
}
