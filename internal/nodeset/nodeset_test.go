package nodeset

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dom"
)

// boolSet is the seed's []bool reference representation; the property
// tests below pin that the packed bitset agrees with it bit for bit.
type boolSet []bool

func toBools(s Set) boolSet {
	out := make(boolSet, s.Len())
	s.ForEach(func(n dom.NodeID) { out[n] = true })
	return out
}

func fromBools(t *dom.Tree, b boolSet) Set {
	s := New(t)
	for i, in := range b {
		if in {
			s.Add(dom.NodeID(i))
		}
	}
	return s
}

func randomSet(rng *rand.Rand, t *dom.Tree) (Set, boolSet) {
	b := make(boolSet, t.Size())
	for i := range b {
		b[i] = rng.Intn(3) == 0
	}
	return fromBools(t, b), b
}

func boolsEqual(a, b boolSet) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// oracle computes an axis image by quadratic enumeration over the
// []bool representation.
func oracle(t *dom.Tree, s boolSet, holds func(x, y dom.NodeID) bool) boolSet {
	out := make(boolSet, t.Size())
	for x := 0; x < t.Size(); x++ {
		if !s[x] {
			continue
		}
		for y := 0; y < t.Size(); y++ {
			if holds(dom.NodeID(x), dom.NodeID(y)) {
				out[y] = true
			}
		}
	}
	return out
}

func TestAxisOpsAgainstOracle(t *testing.T) {
	ops := []struct {
		name  string
		fn    func(*dom.Tree, Set) Set
		holds func(tr *dom.Tree) func(x, y dom.NodeID) bool
	}{
		{"Children", Children, func(tr *dom.Tree) func(x, y dom.NodeID) bool {
			return func(x, y dom.NodeID) bool { return tr.IsChild(x, y) }
		}},
		{"Parents", Parents, func(tr *dom.Tree) func(x, y dom.NodeID) bool {
			return func(x, y dom.NodeID) bool { return tr.IsChild(y, x) }
		}},
		{"Descendants", Descendants, func(tr *dom.Tree) func(x, y dom.NodeID) bool {
			return func(x, y dom.NodeID) bool { return tr.IsAncestor(x, y) }
		}},
		{"Ancestors", Ancestors, func(tr *dom.Tree) func(x, y dom.NodeID) bool {
			return func(x, y dom.NodeID) bool { return tr.IsAncestor(y, x) }
		}},
		{"NextSiblings", NextSiblings, func(tr *dom.Tree) func(x, y dom.NodeID) bool {
			return func(x, y dom.NodeID) bool { return tr.NextSibling(x) == y }
		}},
		{"PrevSiblings", PrevSiblings, func(tr *dom.Tree) func(x, y dom.NodeID) bool {
			return func(x, y dom.NodeID) bool { return tr.PrevSibling(x) == y }
		}},
		{"FollowingSiblings", FollowingSiblings, func(tr *dom.Tree) func(x, y dom.NodeID) bool {
			return func(x, y dom.NodeID) bool { return tr.FollowingSibling(x, y) }
		}},
		{"PrecedingSiblings", PrecedingSiblings, func(tr *dom.Tree) func(x, y dom.NodeID) bool {
			return func(x, y dom.NodeID) bool { return tr.FollowingSibling(y, x) }
		}},
		{"Following", Following, func(tr *dom.Tree) func(x, y dom.NodeID) bool {
			return func(x, y dom.NodeID) bool { return tr.Following(x, y) }
		}},
		{"Preceding", Preceding, func(tr *dom.Tree) func(x, y dom.NodeID) bool {
			return func(x, y dom.NodeID) bool { return tr.Following(y, x) }
		}},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := dom.RandomTree(rng, 1+rng.Intn(40), []string{"a", "b"}, 4)
		tr.Reindex()
		s, sb := randomSet(rng, tr)
		for _, op := range ops {
			got := toBools(op.fn(tr, s))
			want := oracle(tr, sb, op.holds(tr))
			if !boolsEqual(got, want) {
				t.Logf("%s wrong on %s", op.name, tr)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestBitOpsAgainstBoolReference pins the word-parallel boolean algebra
// against the naive []bool implementation on random sets, including
// sizes straddling word boundaries.
func TestBitOpsAgainstBoolReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 1 + rng.Intn(200)
		tr := dom.RandomTree(rng, size, []string{"a"}, 5)
		a, ab := randomSet(rng, tr)
		b, bb := randomSet(rng, tr)

		and := make(boolSet, size)
		or := make(boolSet, size)
		andNot := make(boolSet, size)
		notA := make(boolSet, size)
		for i := range ab {
			and[i] = ab[i] && bb[i]
			or[i] = ab[i] || bb[i]
			andNot[i] = ab[i] && !bb[i]
			notA[i] = !ab[i]
		}
		if !boolsEqual(toBools(a.Clone().And(b)), and) {
			t.Log("And disagrees")
			return false
		}
		if !boolsEqual(toBools(a.Clone().Or(b)), or) {
			t.Log("Or disagrees")
			return false
		}
		if !boolsEqual(toBools(a.Clone().AndNot(b)), andNot) {
			t.Log("AndNot disagrees")
			return false
		}
		if !boolsEqual(toBools(a.Clone().Not()), notA) {
			t.Log("Not disagrees")
			return false
		}
		count := 0
		for _, in := range ab {
			if in {
				count++
			}
		}
		if a.Count() != count || a.Empty() != (count == 0) {
			t.Log("Count/Empty disagree")
			return false
		}
		for i := range ab {
			if a.Has(dom.NodeID(i)) != ab[i] {
				t.Log("Has disagrees")
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNotTrimsGhostBits(t *testing.T) {
	tr := dom.MustParseTerm("a(b,c)")
	full := New(tr).Not()
	if full.Count() != 3 {
		t.Fatalf("Not() over 3 nodes has count %d; tail bits leaked", full.Count())
	}
	if got := full.Nodes(tr); len(got) != 3 {
		t.Fatalf("Nodes after Not = %v", got)
	}
}

func TestNodesDocOrderAndDedup(t *testing.T) {
	// A tree built out of document order: root, two children, then a
	// grandchild under the first child (id 3, document position 2).
	tr := dom.New(4)
	r := tr.AddRoot("r")
	a := tr.AppendChild(r, "a")
	b := tr.AppendChild(r, "b")
	g := tr.AppendChild(a, "g")
	if tr.DocOrdered() {
		t.Fatal("tree should not be id-ordered")
	}
	s := FromSlice(tr, []dom.NodeID{b, g, a})
	got := s.Nodes(tr)
	want := []dom.NodeID{a, g, b}
	if len(got) != len(want) {
		t.Fatalf("Nodes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nodes = %v, want %v", got, want)
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	tr := dom.MustParseTerm("a(b,c)")
	full := Full(tr)
	if full.Count() != 3 || full.Empty() {
		t.Error("Full wrong")
	}
	s := Singleton(tr, 1)
	if s.Count() != 1 {
		t.Error("Singleton wrong")
	}
	c := s.Clone().Not()
	if c.Count() != 2 || c.Has(1) {
		t.Error("Not wrong")
	}
	u := s.Clone().Or(c)
	if u.Count() != 3 {
		t.Error("Or wrong")
	}
	if !Equal(u, Full(tr)) || Equal(u, New(tr)) {
		t.Error("Equal wrong")
	}
	i := u.And(Singleton(tr, 2))
	if i.Count() != 1 || !i.Has(2) {
		t.Error("And wrong")
	}
	if got := FromSlice(tr, []dom.NodeID{2, 0}).Nodes(tr); len(got) != 2 || got[0] != 0 {
		t.Errorf("Nodes = %v", got)
	}
}
