// Package nodeset provides linear-time set-level operations over tree
// axes: given the characteristic vector of a node set S, each function
// computes {y : ∃x∈S axis(x,y)} (or the converse) in a single O(|dom|)
// sweep. These are the primitives behind both the linear-time Core XPath
// evaluator (Theorems 4.1/4.2: O(|D|·|Q|) combined complexity) and the
// acyclic conjunctive-query evaluator.
//
// Sets are packed bitsets: 64 nodes per machine word, so the boolean
// operations (And, Or, Not, AndNot) process 64 nodes per instruction
// and membership sweeps visit only the words that contain members. The
// axis images exploit two invariants of dom.Tree: parents and previous
// siblings always carry smaller NodeIDs than their children/right
// siblings (trees are built by appending), so the transitive sweeps are
// plain ascending/descending id loops, and Following/Preceding reduce
// to prefix-min/suffix-max scans over preorder numbers.
package nodeset

import (
	"math/bits"

	"repro/internal/dom"
)

// Set is the characteristic bitset of a node set, indexed by NodeID
// (bit i of word i/64). The zero value is an empty set over an empty
// universe. Mutating methods (And, Or, Not, Add, …) update the receiver
// in place and return it for chaining; the word slice is shared between
// copies, exactly as the former []bool representation was.
type Set struct {
	words []uint64
	n     int // universe size |dom|
}

// New returns an empty set sized for t.
func New(t *dom.Tree) Set { return NewSized(t.Size()) }

// NewSized returns an empty set over a universe of n nodes.
func NewSized(n int) Set { return Set{words: make([]uint64, (n+63)/64), n: n} }

// FromWords builds a set over t's nodes by copying a raw word vector
// (e.g. a dom label bitset). Extra bits beyond the universe must be
// zero, which holds for all vectors produced by dom.
func FromWords(t *dom.Tree, w []uint64) Set {
	s := New(t)
	copy(s.words, w)
	return s
}

// Full returns the set of all nodes of t.
func Full(t *dom.Tree) Set {
	s := New(t)
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
	return s
}

// Singleton returns {n}.
func Singleton(t *dom.Tree, n dom.NodeID) Set {
	s := New(t)
	s.Add(n)
	return s
}

// FromSlice builds a Set from a node slice.
func FromSlice(t *dom.Tree, nodes []dom.NodeID) Set {
	s := New(t)
	for _, n := range nodes {
		s.Add(n)
	}
	return s
}

// Len returns the universe size the set ranges over.
func (s Set) Len() int { return s.n }

// Has reports whether n is a member.
func (s Set) Has(n dom.NodeID) bool {
	return s.words[uint32(n)>>6]&(1<<(uint32(n)&63)) != 0
}

// Add inserts n.
func (s Set) Add(n dom.NodeID) {
	s.words[uint32(n)>>6] |= 1 << (uint32(n) & 63)
}

// Remove deletes n.
func (s Set) Remove(n dom.NodeID) {
	s.words[uint32(n)>>6] &^= 1 << (uint32(n) & 63)
}

// trim clears the unused bits of the last word (kept as an invariant by
// every operation, so Count/Empty/Nodes never see ghost members).
func (s Set) trim() { TrimWords(s.words, s.n) }

// ForEach calls f for every member in ascending NodeID order.
func (s Set) ForEach(f func(dom.NodeID)) { ForEachWord(s.words, f) }

// The raw-word helpers below are shared with consumers that manage
// their own word vectors over NodeIDs (the mdatalog evaluator's
// per-predicate truth store, the dom label bitsets) so the packed
// representation has a single home.

// ForEachWord calls f for every set bit of a raw word vector, in
// ascending NodeID order.
func ForEachWord(words []uint64, f func(dom.NodeID)) {
	for wi, w := range words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(dom.NodeID(wi<<6 + b))
			w &= w - 1
		}
	}
}

// MembersOf returns the set bits of a raw word vector as NodeIDs in
// ascending order, preallocated to the population count; nil when
// empty.
func MembersOf(words []uint64) []dom.NodeID {
	count := 0
	for _, w := range words {
		count += bits.OnesCount64(w)
	}
	if count == 0 {
		return nil
	}
	out := make([]dom.NodeID, 0, count)
	ForEachWord(words, func(n dom.NodeID) { out = append(out, n) })
	return out
}

// TrimWords clears the bits at positions >= n in the last word of a
// raw word vector.
func TrimWords(words []uint64, n int) {
	if r := uint(n) & 63; r != 0 && len(words) > 0 {
		words[len(words)-1] &= (1 << r) - 1
	}
}

// Nodes returns the members in document order. The output is
// preallocated from Count; for trees whose NodeIDs coincide with
// document order (every top-down-built tree) the ascending bit sweep is
// already sorted and the sort pass is skipped.
func (s Set) Nodes(t *dom.Tree) []dom.NodeID {
	c := s.Count()
	if c == 0 {
		return nil
	}
	out := make([]dom.NodeID, 0, c)
	s.ForEach(func(n dom.NodeID) { out = append(out, n) })
	if t.DocOrdered() {
		return out
	}
	return t.SortDocOrder(out)
}

// Count returns |s|.
func (s Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no members.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone copies the set.
func (s Set) Clone() Set {
	return Set{words: append([]uint64(nil), s.words...), n: s.n}
}

// And intersects into s and returns it.
func (s Set) And(o Set) Set {
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
	return s
}

// Or unions into s and returns it.
func (s Set) Or(o Set) Set {
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
	return s
}

// OrWords unions a raw word vector (e.g. a dom label bitset) into s and
// returns it. The vector must cover the same universe.
func (s Set) OrWords(words []uint64) Set {
	for i := range s.words {
		s.words[i] |= words[i]
	}
	return s
}

// AndWords intersects s with a raw word vector and returns it.
func (s Set) AndWords(words []uint64) Set {
	for i := range s.words {
		s.words[i] &= words[i]
	}
	return s
}

// AndNot removes o's members from s and returns it.
func (s Set) AndNot(o Set) Set {
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
	return s
}

// Not complements into s and returns it.
func (s Set) Not() Set {
	for i := range s.words {
		s.words[i] = ^s.words[i]
	}
	s.trim()
	return s
}

// Equal reports whether two sets over the same universe have the same
// members.
func Equal(a, b Set) bool {
	if a.n != b.n {
		return false
	}
	for i := range a.words {
		if a.words[i] != b.words[i] {
			return false
		}
	}
	return true
}

// Children returns {y : parent(y) ∈ s}.
func Children(t *dom.Tree, s Set) Set {
	out := New(t)
	s.ForEach(func(x dom.NodeID) {
		for c := t.FirstChild(x); c != dom.Nil; c = t.NextSibling(c) {
			out.Add(c)
		}
	})
	return out
}

// Parents returns {x : some child of x ∈ s}.
func Parents(t *dom.Tree, s Set) Set {
	out := New(t)
	s.ForEach(func(y dom.NodeID) {
		if p := t.Parent(y); p != dom.Nil {
			out.Add(p)
		}
	})
	return out
}

// Descendants returns {y : some proper ancestor of y ∈ s}. Parents
// always precede children in NodeID order, so one ascending sweep
// propagates membership down the tree.
func Descendants(t *dom.Tree, s Set) Set {
	out := New(t)
	for i := 0; i < s.n; i++ {
		y := dom.NodeID(i)
		if p := t.Parent(y); p != dom.Nil && (s.Has(p) || out.Has(p)) {
			out.Add(y)
		}
	}
	return out
}

// DescendantsOrSelf returns Descendants(s) ∪ s.
func DescendantsOrSelf(t *dom.Tree, s Set) Set { return Descendants(t, s).Or(s) }

// Ancestors returns {x : some proper descendant of x ∈ s}; the converse
// descending sweep.
func Ancestors(t *dom.Tree, s Set) Set {
	out := New(t)
	for i := s.n - 1; i >= 0; i-- {
		y := dom.NodeID(i)
		if p := t.Parent(y); p != dom.Nil && (s.Has(y) || out.Has(y)) {
			out.Add(p)
		}
	}
	return out
}

// AncestorsOrSelf returns Ancestors(s) ∪ s.
func AncestorsOrSelf(t *dom.Tree, s Set) Set { return Ancestors(t, s).Or(s) }

// NextSiblings returns {y : prevsibling(y) ∈ s}.
func NextSiblings(t *dom.Tree, s Set) Set {
	out := New(t)
	s.ForEach(func(x dom.NodeID) {
		if y := t.NextSibling(x); y != dom.Nil {
			out.Add(y)
		}
	})
	return out
}

// PrevSiblings returns {x : nextsibling(x) ∈ s}.
func PrevSiblings(t *dom.Tree, s Set) Set {
	out := New(t)
	s.ForEach(func(y dom.NodeID) {
		if x := t.PrevSibling(y); x != dom.Nil {
			out.Add(x)
		}
	})
	return out
}

// FollowingSiblings returns {y : some left sibling of y ∈ s}. Left
// siblings precede right siblings in NodeID order, so an ascending
// sweep propagates along sibling chains.
func FollowingSiblings(t *dom.Tree, s Set) Set {
	out := New(t)
	for i := 0; i < s.n; i++ {
		y := dom.NodeID(i)
		if p := t.PrevSibling(y); p != dom.Nil && (s.Has(p) || out.Has(p)) {
			out.Add(y)
		}
	}
	return out
}

// PrecedingSiblings returns {x : some right sibling of x ∈ s}.
func PrecedingSiblings(t *dom.Tree, s Set) Set {
	out := New(t)
	for i := s.n - 1; i >= 0; i-- {
		y := dom.NodeID(i)
		if p := t.PrevSibling(y); p != dom.Nil && (s.Has(y) || out.Has(y)) {
			out.Add(p)
		}
	}
	return out
}

// Following returns {y : ∃x∈s Following(x,y)} — nodes starting after
// the subtree of some member. y follows some member iff a member with a
// smaller preorder number has a smaller postorder number, so one
// prefix-min scan over preorder positions suffices.
func Following(t *dom.Tree, s Set) Set {
	out := New(t)
	if s.n == 0 {
		return out
	}
	const inf = int(^uint(0) >> 1)
	// minPost[p] = postorder number of the member at preorder position
	// p-1, or inf; turned into a prefix minimum below.
	minPost := make([]int, s.n+1)
	for i := range minPost {
		minPost[i] = inf
	}
	s.ForEach(func(x dom.NodeID) {
		minPost[t.Pre(x)+1] = t.Post(x)
	})
	for p := 1; p <= s.n; p++ {
		if minPost[p-1] < minPost[p] {
			minPost[p] = minPost[p-1]
		}
	}
	for i := 0; i < s.n; i++ {
		y := dom.NodeID(i)
		if minPost[t.Pre(y)] < t.Post(y) {
			out.Add(y)
		}
	}
	return out
}

// Preceding returns {x : ∃y∈s Following(x,y)} — nodes whose subtree
// ends before some member starts (the converse suffix-max scan).
func Preceding(t *dom.Tree, s Set) Set {
	out := New(t)
	if s.n == 0 {
		return out
	}
	// maxPost[p] = max postorder number of members at preorder positions
	// > p, or -1.
	maxPost := make([]int, s.n+1)
	for i := range maxPost {
		maxPost[i] = -1
	}
	s.ForEach(func(y dom.NodeID) {
		maxPost[t.Pre(y)] = t.Post(y)
	})
	for p := s.n - 1; p >= 0; p-- {
		if maxPost[p+1] > maxPost[p] {
			maxPost[p] = maxPost[p+1]
		}
	}
	for i := 0; i < s.n; i++ {
		x := dom.NodeID(i)
		if maxPost[t.Pre(x)+1] > t.Post(x) {
			out.Add(x)
		}
	}
	return out
}
