// Package nodeset provides linear-time set-level operations over tree
// axes: given the characteristic vector of a node set S, each function
// computes {y : ∃x∈S axis(x,y)} (or the converse) in a single O(|dom|)
// sweep. These are the primitives behind both the linear-time Core XPath
// evaluator (Theorems 4.1/4.2: O(|D|·|Q|) combined complexity) and the
// acyclic conjunctive-query evaluator.
package nodeset

import "repro/internal/dom"

// Set is the characteristic vector of a node set, indexed by NodeID.
type Set []bool

// New returns an empty set sized for t.
func New(t *dom.Tree) Set { return make(Set, t.Size()) }

// Full returns the set of all nodes of t.
func Full(t *dom.Tree) Set {
	s := New(t)
	for i := range s {
		s[i] = true
	}
	return s
}

// Singleton returns {n}.
func Singleton(t *dom.Tree, n dom.NodeID) Set {
	s := New(t)
	s[n] = true
	return s
}

// FromSlice builds a Set from a node slice.
func FromSlice(t *dom.Tree, nodes []dom.NodeID) Set {
	s := New(t)
	for _, n := range nodes {
		s[n] = true
	}
	return s
}

// Nodes returns the members in document order.
func (s Set) Nodes(t *dom.Tree) []dom.NodeID {
	var out []dom.NodeID
	for i, in := range s {
		if in {
			out = append(out, dom.NodeID(i))
		}
	}
	return t.SortDocOrder(out)
}

// Count returns |s|.
func (s Set) Count() int {
	n := 0
	for _, in := range s {
		if in {
			n++
		}
	}
	return n
}

// Empty reports whether the set has no members.
func (s Set) Empty() bool {
	for _, in := range s {
		if in {
			return false
		}
	}
	return true
}

// Clone copies the set.
func (s Set) Clone() Set { return append(Set(nil), s...) }

// And intersects into s and returns it.
func (s Set) And(o Set) Set {
	for i := range s {
		s[i] = s[i] && o[i]
	}
	return s
}

// Or unions into s and returns it.
func (s Set) Or(o Set) Set {
	for i := range s {
		s[i] = s[i] || o[i]
	}
	return s
}

// Not complements into s and returns it.
func (s Set) Not() Set {
	for i := range s {
		s[i] = !s[i]
	}
	return s
}

// Children returns {y : parent(y) ∈ s}.
func Children(t *dom.Tree, s Set) Set {
	out := New(t)
	for i := range out {
		if p := t.Parent(dom.NodeID(i)); p != dom.Nil && s[p] {
			out[i] = true
		}
	}
	return out
}

// Parents returns {x : some child of x ∈ s}.
func Parents(t *dom.Tree, s Set) Set {
	out := New(t)
	for i := range s {
		if s[i] {
			if p := t.Parent(dom.NodeID(i)); p != dom.Nil {
				out[p] = true
			}
		}
	}
	return out
}

// Descendants returns {y : some proper ancestor of y ∈ s}.
func Descendants(t *dom.Tree, s Set) Set {
	out := New(t)
	for _, y := range t.InDocumentOrder() {
		if p := t.Parent(y); p != dom.Nil && (s[p] || out[p]) {
			out[y] = true
		}
	}
	return out
}

// DescendantsOrSelf returns Descendants(s) ∪ s.
func DescendantsOrSelf(t *dom.Tree, s Set) Set { return Descendants(t, s).Or(s) }

// Ancestors returns {x : some proper descendant of x ∈ s}.
func Ancestors(t *dom.Tree, s Set) Set {
	out := New(t)
	order := t.InDocumentOrder()
	for i := len(order) - 1; i >= 0; i-- {
		y := order[i]
		if p := t.Parent(y); p != dom.Nil && (s[y] || out[y]) {
			out[p] = true
		}
	}
	return out
}

// AncestorsOrSelf returns Ancestors(s) ∪ s.
func AncestorsOrSelf(t *dom.Tree, s Set) Set { return Ancestors(t, s).Or(s) }

// NextSiblings returns {y : prevsibling(y) ∈ s}.
func NextSiblings(t *dom.Tree, s Set) Set {
	out := New(t)
	for i := range out {
		if p := t.PrevSibling(dom.NodeID(i)); p != dom.Nil && s[p] {
			out[i] = true
		}
	}
	return out
}

// PrevSiblings returns {x : nextsibling(x) ∈ s}.
func PrevSiblings(t *dom.Tree, s Set) Set {
	out := New(t)
	for i := range s {
		if s[i] {
			if p := t.PrevSibling(dom.NodeID(i)); p != dom.Nil {
				out[p] = true
			}
		}
	}
	return out
}

// FollowingSiblings returns {y : some left sibling of y ∈ s}.
func FollowingSiblings(t *dom.Tree, s Set) Set {
	out := New(t)
	for _, y := range t.InDocumentOrder() {
		if p := t.PrevSibling(y); p != dom.Nil && (s[p] || out[p]) {
			out[y] = true
		}
	}
	return out
}

// PrecedingSiblings returns {x : some right sibling of x ∈ s}.
func PrecedingSiblings(t *dom.Tree, s Set) Set {
	out := New(t)
	order := t.InDocumentOrder()
	for i := len(order) - 1; i >= 0; i-- {
		y := order[i]
		if p := t.PrevSibling(y); p != dom.Nil && (s[y] || out[y]) {
			out[p] = true
		}
	}
	return out
}

// Following returns {y : ∃x∈s Following(x,y)} — nodes starting after the
// subtree of some member.
func Following(t *dom.Tree, s Set) Set {
	out := New(t)
	minPost := int(^uint(0) >> 1)
	for _, y := range t.InDocumentOrder() {
		if minPost < t.Post(y) {
			out[y] = true
		}
		if s[y] && t.Post(y) < minPost {
			minPost = t.Post(y)
		}
	}
	return out
}

// Preceding returns {x : ∃y∈s Following(x,y)} — nodes whose subtree ends
// before some member starts (the converse sweep).
func Preceding(t *dom.Tree, s Set) Set {
	out := New(t)
	order := t.InDocumentOrder()
	maxPost := -1
	for i := len(order) - 1; i >= 0; i-- {
		x := order[i]
		if maxPost > t.Post(x) {
			out[x] = true
		}
		if s[x] && t.Post(x) > maxPost {
			maxPost = t.Post(x)
		}
	}
	return out
}
