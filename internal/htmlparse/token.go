// Package htmlparse implements a self-contained, forgiving HTML tokenizer
// and parser producing dom.Tree parse trees.
//
// Web wrappers operate on parse trees of real-world HTML, which is rarely
// well-formed; like the parser embedded in the Lixto Visual Wrapper, this
// one therefore repairs common malformations: unclosed <li>/<td>/<tr>/<p>
// elements, stray end tags, void elements without slashes, unquoted
// attribute values, and undeclared entities. It intentionally implements
// a pragmatic subset of the HTML5 algorithm — enough to parse everything
// the simulated web of internal/web produces plus the usual hand-written
// HTML idioms — rather than the full specification.
package htmlparse

import (
	"strings"
)

// TokenType enumerates the lexical token classes of HTML.
type TokenType int

const (
	// TextToken is character data between tags.
	TextToken TokenType = iota
	// StartTagToken is <name attr=...>.
	StartTagToken
	// EndTagToken is </name>.
	EndTagToken
	// SelfClosingToken is <name .../>.
	SelfClosingToken
	// CommentToken is <!-- ... -->.
	CommentToken
	// DoctypeToken is <!DOCTYPE ...>.
	DoctypeToken
)

func (t TokenType) String() string {
	switch t {
	case TextToken:
		return "text"
	case StartTagToken:
		return "start"
	case EndTagToken:
		return "end"
	case SelfClosingToken:
		return "selfclosing"
	case CommentToken:
		return "comment"
	case DoctypeToken:
		return "doctype"
	}
	return "unknown"
}

// Attr is a lexical attribute of a start tag.
type Attr struct {
	Name  string
	Value string
}

// Token is one lexical token. For tag tokens, Data is the lower-cased tag
// name; for text and comments it is the (entity-decoded) character data.
type Token struct {
	Type  TokenType
	Data  string
	Attrs []Attr
}

// Tokenizer splits HTML source into tokens. It never fails: malformed
// input degrades to text tokens.
type Tokenizer struct {
	src string
	pos int
	// rawUntil, when non-empty, makes the tokenizer treat everything up
	// to the matching end tag as raw text (script/style contents).
	rawUntil string
	// NoRawText disables the HTML raw-text elements (script, style,
	// title, textarea); set by XML consumers, where those names are
	// ordinary elements.
	NoRawText bool
	// scratch backs the attribute lists of NextStream tokens, reused
	// across calls; reuse selects it over a fresh allocation.
	scratch []Attr
	reuse   bool
}

// NewTokenizer returns a tokenizer over src.
func NewTokenizer(src string) *Tokenizer {
	return &Tokenizer{src: src}
}

// Next returns the next token and false when the input is exhausted.
// The token's attribute slice is freshly allocated and owned by the
// caller.
func (z *Tokenizer) Next() (Token, bool) {
	z.reuse = false
	return z.next()
}

// NextStream is Next with zero-copy attribute handling: the returned
// token's Attrs alias an internal scratch buffer that the following
// NextStream call overwrites. Streaming consumers that process each
// token before asking for the next one (the arena tree builder) avoid
// one slice allocation per tag this way.
func (z *Tokenizer) NextStream() (Token, bool) {
	z.reuse = true
	return z.next()
}

func (z *Tokenizer) next() (Token, bool) {
	if z.pos >= len(z.src) {
		return Token{}, false
	}
	if z.rawUntil != "" {
		return z.rawText(), true
	}
	if z.src[z.pos] == '<' {
		if tok, ok := z.tag(); ok {
			return tok, true
		}
		// A lone '<' that does not begin a tag: emit it as text.
	}
	return z.text(), true
}

func (z *Tokenizer) rawText() Token {
	end := "</" + z.rawUntil
	low := strings.ToLower(z.src[z.pos:])
	idx := strings.Index(low, end)
	var data string
	if idx < 0 {
		data = z.src[z.pos:]
		z.pos = len(z.src)
	} else {
		data = z.src[z.pos : z.pos+idx]
		z.pos += idx
	}
	z.rawUntil = ""
	return Token{Type: TextToken, Data: data}
}

func (z *Tokenizer) text() Token {
	start := z.pos
	for z.pos < len(z.src) {
		if z.src[z.pos] == '<' && z.pos > start {
			break
		}
		if z.src[z.pos] == '<' && z.pos == start {
			// Starts with '<' but tag() declined: consume the character.
			z.pos++
			continue
		}
		z.pos++
	}
	return Token{Type: TextToken, Data: DecodeEntities(z.src[start:z.pos])}
}

// tag attempts to lex a tag at z.pos (which is '<'). It returns ok=false
// if the input cannot be a tag, leaving pos unchanged.
func (z *Tokenizer) tag() (Token, bool) {
	s := z.src
	i := z.pos + 1
	if i >= len(s) {
		return Token{}, false
	}
	switch {
	case strings.HasPrefix(s[i:], "!--"):
		end := strings.Index(s[i+3:], "-->")
		var data string
		if end < 0 {
			data = s[i+3:]
			z.pos = len(s)
		} else {
			data = s[i+3 : i+3+end]
			z.pos = i + 3 + end + 3
		}
		return Token{Type: CommentToken, Data: data}, true
	case s[i] == '!' || s[i] == '?':
		// Doctype or processing instruction.
		end := strings.IndexByte(s[i:], '>')
		if end < 0 {
			z.pos = len(s)
			return Token{Type: DoctypeToken, Data: s[i:]}, true
		}
		z.pos = i + end + 1
		return Token{Type: DoctypeToken, Data: s[i : i+end]}, true
	case s[i] == '/':
		j := i + 1
		start := j
		for j < len(s) && isNameChar(s[j]) {
			j++
		}
		if j == start {
			return Token{}, false
		}
		name := strings.ToLower(s[start:j])
		// Skip to '>'.
		for j < len(s) && s[j] != '>' {
			j++
		}
		if j < len(s) {
			j++
		}
		z.pos = j
		return Token{Type: EndTagToken, Data: name}, true
	case isNameStart(s[i]):
		j := i
		for j < len(s) && isNameChar(s[j]) {
			j++
		}
		name := strings.ToLower(s[i:j])
		attrs, selfClose, newPos := z.attrs(j)
		z.pos = newPos
		typ := StartTagToken
		if selfClose {
			typ = SelfClosingToken
		}
		if typ == StartTagToken && !z.NoRawText && isRawText(name) {
			z.rawUntil = name
		}
		return Token{Type: typ, Data: name, Attrs: attrs}, true
	}
	return Token{}, false
}

// attrs lexes the attribute list starting at position j, returning the
// attributes, whether the tag is self-closing, and the position just
// past the closing '>'. In reuse mode the list is built in the scratch
// buffer, whose grown capacity is kept for the next tag.
func (z *Tokenizer) attrs(j int) ([]Attr, bool, int) {
	attrs, selfClose, pos := z.lexAttrs(j)
	if z.reuse {
		z.scratch = attrs
	}
	return attrs, selfClose, pos
}

func (z *Tokenizer) lexAttrs(j int) ([]Attr, bool, int) {
	s := z.src
	var attrs []Attr
	if z.reuse {
		attrs = z.scratch[:0]
	}
	selfClose := false
	for j < len(s) {
		// Skip whitespace.
		for j < len(s) && isSpace(s[j]) {
			j++
		}
		if j >= len(s) {
			break
		}
		if s[j] == '>' {
			return attrs, selfClose, j + 1
		}
		if s[j] == '/' {
			selfClose = true
			j++
			continue
		}
		// Attribute name.
		start := j
		for j < len(s) && s[j] != '=' && s[j] != '>' && s[j] != '/' && !isSpace(s[j]) {
			j++
		}
		name := strings.ToLower(s[start:j])
		if name == "" {
			j++
			continue
		}
		for j < len(s) && isSpace(s[j]) {
			j++
		}
		if j < len(s) && s[j] == '=' {
			j++
			for j < len(s) && isSpace(s[j]) {
				j++
			}
			var val string
			if j < len(s) && (s[j] == '"' || s[j] == '\'') {
				q := s[j]
				j++
				vs := j
				for j < len(s) && s[j] != q {
					j++
				}
				val = s[vs:j]
				if j < len(s) {
					j++
				}
			} else {
				vs := j
				for j < len(s) && !isSpace(s[j]) && s[j] != '>' {
					j++
				}
				val = s[vs:j]
			}
			attrs = append(attrs, Attr{Name: name, Value: DecodeEntities(val)})
		} else {
			attrs = append(attrs, Attr{Name: name, Value: ""})
		}
	}
	return attrs, selfClose, len(s)
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

func isNameStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9' || c == '-' || c == '_' || c == ':'
}

// isRawText reports whether the element's content is raw text (no markup
// recognized inside).
func isRawText(name string) bool {
	switch name {
	case "script", "style", "textarea", "title":
		return true
	}
	return false
}

// entities is the set of named character references the decoder knows.
// Real-world wrapping needs only the common ones; numeric references are
// handled generically.
var entities = map[string]rune{
	"amp": '&', "lt": '<', "gt": '>', "quot": '"', "apos": '\'',
	"nbsp": ' ', "copy": '©', "reg": '®', "trade": '™',
	"hellip": '…', "mdash": '—', "ndash": '–', "laquo": '«', "raquo": '»',
	"euro": '€', "pound": '£', "yen": '¥', "cent": '¢', "sect": '§',
	"deg": '°', "plusmn": '±', "middot": '·', "times": '×', "divide": '÷',
	"lsquo": '‘', "rsquo": '’', "ldquo": '“', "rdquo": '”',
	"auml": 'ä', "ouml": 'ö', "uuml": 'ü', "Auml": 'Ä', "Ouml": 'Ö', "Uuml": 'Ü', "szlig": 'ß',
	"eacute": 'é', "egrave": 'è', "agrave": 'à', "ccedil": 'ç',
}

// DecodeEntities replaces character references (&amp;, &#65;, &#x41;)
// with the characters they denote. Unknown references are left verbatim,
// matching browser behaviour.
func DecodeEntities(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '&' {
			b.WriteByte(c)
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 10 {
			b.WriteByte(c)
			i++
			continue
		}
		ref := s[i+1 : i+semi]
		if r, ok := decodeRef(ref); ok {
			b.WriteRune(r)
			i += semi + 1
		} else {
			b.WriteByte(c)
			i++
		}
	}
	return b.String()
}

func decodeRef(ref string) (rune, bool) {
	if ref == "" {
		return 0, false
	}
	if ref[0] == '#' {
		num := ref[1:]
		base := 10
		if len(num) > 0 && (num[0] == 'x' || num[0] == 'X') {
			base = 16
			num = num[1:]
		}
		var v int64
		for _, c := range num {
			var d int64
			switch {
			case c >= '0' && c <= '9':
				d = int64(c - '0')
			case base == 16 && c >= 'a' && c <= 'f':
				d = int64(c-'a') + 10
			case base == 16 && c >= 'A' && c <= 'F':
				d = int64(c-'A') + 10
			default:
				return 0, false
			}
			v = v*int64(base) + d
			if v > 0x10FFFF {
				return 0, false
			}
		}
		if v == 0 {
			return 0, false
		}
		return rune(v), true
	}
	r, ok := entities[ref]
	return r, ok
}

// EscapeText escapes character data for inclusion in HTML/XML text
// content.
func EscapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// EscapeAttr escapes an attribute value for double-quoted inclusion.
func EscapeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
