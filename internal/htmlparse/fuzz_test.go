package htmlparse

import (
	"testing"

	"repro/internal/dom"
)

// FuzzParse is the native fuzz target for the HTML parser: on any input
// whatsoever, Parse must not panic, must synthesize the html/body
// skeleton, and must produce a structurally sound tree that Reindex
// accepts (consistent pre/post numbering, well-formed parent/sibling
// links).
//
// Run with `go test -fuzz=FuzzParse ./internal/htmlparse`; without
// -fuzz the seed corpus doubles as a regression test.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"plain text",
		"<html><body><p>hi</p></body></html>",
		"<table><tr><td>a<td>b<tr><td>c</table>",
		"<ul><li>one<li>two</ul>",
		"<div><span>x</span><!-- c --><br></div>",
		"<p>broken <b>nest</p></b>",
		"</html></body></p>",
		"<a href='x' class=\"y\" checked>link</a>",
		"<script>if (a < b) { x(); }</script>",
		"<<<>>><tag<<",
		"&amp;&lt;&unknown;&#65;&#x41;",
		"<p attr=>empty</p><p =broken>",
		"<!DOCTYPE html><html><head><title>t</title></head></html>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		tr := Parse(src)
		if tr == nil {
			t.Fatal("Parse returned nil")
		}
		if tr.Size() == 0 {
			t.Fatal("Parse returned an empty tree")
		}
		if tr.Label(tr.Root()) != "html" {
			t.Fatalf("root label = %q, want html", tr.Label(tr.Root()))
		}
		tr.Reindex()
		// Every node must be reachable by the indexer: pre numbers form a
		// permutation, ancestors properly nest, and sibling links agree
		// with parent links.
		seenPre := make([]bool, tr.Size())
		for i := 0; i < tr.Size(); i++ {
			n := dom.NodeID(i)
			p := tr.Pre(n)
			if p < 0 || p >= tr.Size() || seenPre[p] {
				t.Fatalf("node %d: bad or duplicate pre number %d", i, p)
			}
			seenPre[p] = true
			if par := tr.Parent(n); par != dom.Nil {
				if !tr.IsAncestor(par, n) {
					t.Fatalf("node %d: parent %d is not an ancestor after Reindex", i, par)
				}
			} else if n != tr.Root() {
				t.Fatalf("node %d: orphan non-root", i)
			}
			if s := tr.NextSibling(n); s != dom.Nil && tr.Parent(s) != tr.Parent(n) {
				t.Fatalf("node %d: next sibling %d has a different parent", i, s)
			}
		}
		if tr.SubtreeSize(tr.Root()) != tr.Size() {
			t.Fatalf("root subtree size %d != tree size %d", tr.SubtreeSize(tr.Root()), tr.Size())
		}
	})
}

// FuzzParseArena is the differential fuzz target for the zero-copy
// arena builder: on any input, the arena path behind Parse must produce
// a tree byte-identical to the frozen seed parser ParseLegacy —
// isomorphic structure, equal fingerprints, and identical in-order
// attribute lists (dom.Equal compares attributes by name, so order is
// checked separately).
func FuzzParseArena(f *testing.F) {
	seeds := []string{
		"",
		"<html><body><p>hi</p></body></html>",
		"<table><tr><td>a<td>b<tr><td>c</table>",
		"<html lang=en a=1 a=2><body class=main>dup</body></html>",
		"<p>broken <b>nest</p></b>",
		"<a href='x' class=\"y\" checked>link</a>",
		"<!DOCTYPE html><html><head><title>t</title></head></html>",
		"<<<>>><tag<<",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		arena := Parse(src)
		legacy := ParseLegacy(src)
		if !dom.Equal(arena, legacy) {
			t.Fatalf("arena tree differs from legacy:\narena:  %s\nlegacy: %s", arena, legacy)
		}
		if af, lf := arena.Fingerprint(), legacy.Fingerprint(); af != lf {
			t.Fatalf("fingerprint mismatch: arena %#x, legacy %#x", af, lf)
		}
		for i := 0; i < arena.Size(); i++ {
			n := dom.NodeID(i)
			aa, la := arena.Attrs(n), legacy.Attrs(n)
			if len(aa) != len(la) {
				t.Fatalf("node %d: attr count %d != %d", i, len(aa), len(la))
			}
			for j := range aa {
				if aa[j] != la[j] {
					t.Fatalf("node %d attr %d: %v != %v", i, j, aa[j], la[j])
				}
			}
		}
	})
}
