package htmlparse

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/dom"
)

// arenaDiffDocs are representative documents for the arena-vs-legacy
// differential: the fuzz seeds plus larger structured pages of the kind
// the benchmarks exercise.
func arenaDiffDocs() []string {
	docs := []string{
		"",
		"plain text",
		"<html><body><p>hi</p></body></html>",
		"<table><tr><td>a<td>b<tr><td>c</table>",
		"<ul><li>one<li>two</ul>",
		"<div><span>x</span><!-- c --><br></div>",
		"<p>broken <b>nest</b></p>",
		"</html></body></p>",
		"<a href='x' class=\"y\" checked>link</a>",
		"<script>if (a < b) { x(); }</script>",
		"<<<>>><tag<<",
		"&amp;&lt;&unknown;&#65;&#x41;",
		"<p attr=>empty</p><p =broken>",
		"<!DOCTYPE html><html><head><title>t</title></head></html>",
		"<html lang=en a=1 a=2><body class=main>dup attr</body></html>",
	}
	var b strings.Builder
	b.WriteString("<html><head><title>listing</title></head><body><table>")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&b, "<tr class=row id=r%d><td><b>item %d</b></td><td><a href=\"/item/%d\">$%d.00</a></td></tr>", i, i, i, i)
	}
	b.WriteString("</table></body></html>")
	docs = append(docs, b.String())
	return docs
}

// assertSameTree checks every property the arena parser must preserve:
// isomorphism, fingerprints, and attribute order (dom.Equal compares
// attributes by name lookup, so order is pinned separately).
func assertSameTree(t *testing.T, arena, legacy *dom.Tree) {
	t.Helper()
	if !dom.Equal(arena, legacy) {
		t.Fatalf("arena tree differs from legacy tree:\narena:  %s\nlegacy: %s", arena, legacy)
	}
	if af, lf := arena.Fingerprint(), legacy.Fingerprint(); af != lf {
		t.Fatalf("fingerprint mismatch: arena %#x, legacy %#x", af, lf)
	}
	if arena.Size() != legacy.Size() {
		t.Fatalf("size mismatch: arena %d, legacy %d", arena.Size(), legacy.Size())
	}
	for i := 0; i < arena.Size(); i++ {
		n := dom.NodeID(i)
		aa, la := arena.Attrs(n), legacy.Attrs(n)
		if len(aa) != len(la) {
			t.Fatalf("node %d: attr count %d != %d", i, len(aa), len(la))
		}
		for j := range aa {
			if aa[j] != la[j] {
				t.Fatalf("node %d attr %d: %v != %v", i, j, aa[j], la[j])
			}
		}
	}
}

// TestParseArenaMatchesLegacy is the deterministic differential: the
// arena builder must be tree-identical to the frozen seed parser on a
// spread of well-formed, malformed, and large inputs.
func TestParseArenaMatchesLegacy(t *testing.T) {
	for i, src := range arenaDiffDocs() {
		assertSameTree(t, Parse(src), ParseLegacy(src))
		_ = i
	}
}

// TestParseAllocs pins the allocation collapse the arena parser exists
// for. The representative page has ~1200 elements; the legacy parser
// allocates a few per node (token attr slices, per-node appends, attr
// map churn), the arena parser a small constant number of regions plus
// the interned strings. A generous cap still catches any per-node
// regression, and the ≥3× ratio is the PR's acceptance criterion.
func TestParseAllocs(t *testing.T) {
	src := arenaDiffDocs()[len(arenaDiffDocs())-1]
	arena := testing.AllocsPerRun(20, func() {
		if Parse(src) == nil {
			t.Fatal("nil tree")
		}
	})
	legacy := testing.AllocsPerRun(20, func() {
		if ParseLegacy(src) == nil {
			t.Fatal("nil tree")
		}
	})
	t.Logf("allocs/op: arena %.0f, legacy %.0f", arena, legacy)
	if arena*3 > legacy {
		t.Errorf("arena parse allocates %.0f/op, legacy %.0f/op: want >= 3x reduction", arena, legacy)
	}
	// Absolute backstop: the arena path must stay within a small budget
	// that cannot hide a per-node allocation on a ~1600-node document.
	const maxAllocs = 400
	if arena > maxAllocs {
		t.Errorf("arena parse allocates %.0f/op, want <= %d", arena, maxAllocs)
	}
}
