package htmlparse

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dom"
)

func labels(t *dom.Tree) []string {
	var out []string
	t.Walk(func(n dom.NodeID) { out = append(out, t.Label(n)) })
	return out
}

func TestParseSimple(t *testing.T) {
	tr := Parse(`<html><body><p>Hello <b>world</b></p></body></html>`)
	want := "html(body(p(\"Hello \",b(\"world\"))))"
	if got := tr.String(); got != want {
		t.Errorf("got %s want %s", got, want)
	}
}

func TestParseSynthesizesHTMLBody(t *testing.T) {
	tr := Parse(`<p>x</p>`)
	if tr.Label(tr.Root()) != "html" {
		t.Fatalf("root = %s", tr.Label(tr.Root()))
	}
	body := Body(tr)
	if tr.Label(body) != "body" {
		t.Fatalf("no body")
	}
	if tr.Label(tr.FirstChild(body)) != "p" {
		t.Fatalf("p not under body: %s", tr.String())
	}
}

func TestParseAttributes(t *testing.T) {
	tr := Parse(`<a href="x.html" class='nav' disabled data-id=42>go</a>`)
	var a dom.NodeID = dom.Nil
	tr.Walk(func(n dom.NodeID) {
		if tr.Label(n) == "a" {
			a = n
		}
	})
	if a == dom.Nil {
		t.Fatal("no <a>")
	}
	for _, tc := range []struct{ k, v string }{
		{"href", "x.html"}, {"class", "nav"}, {"disabled", ""}, {"data-id", "42"},
	} {
		if v, ok := tr.Attr(a, tc.k); !ok || v != tc.v {
			t.Errorf("attr %s = %q, %v; want %q", tc.k, v, ok, tc.v)
		}
	}
}

func TestAutoCloseListItems(t *testing.T) {
	tr := Parse(`<ul><li>one<li>two<li>three</ul>`)
	ul := dom.Nil
	tr.Walk(func(n dom.NodeID) {
		if tr.Label(n) == "ul" {
			ul = n
		}
	})
	if got := tr.ChildCount(ul); got != 3 {
		t.Fatalf("ul has %d children: %s", got, tr.String())
	}
}

func TestAutoCloseTableCells(t *testing.T) {
	tr := Parse(`<table><tr><td>a<td>b<tr><td>c</table>`)
	var trs, tds int
	tr.Walk(func(n dom.NodeID) {
		switch tr.Label(n) {
		case "tr":
			trs++
		case "td":
			tds++
		}
	})
	if trs != 2 || tds != 3 {
		t.Fatalf("trs=%d tds=%d: %s", trs, tds, tr.String())
	}
}

func TestNestedTablesNotAutoClosed(t *testing.T) {
	// A <table> inside a <td> must not close the outer row/cell.
	tr := Parse(`<table><tr><td><table><tr><td>inner</td></tr></table></td><td>after</td></tr></table>`)
	outer := dom.Nil
	tr.Walk(func(n dom.NodeID) {
		if tr.Label(n) == "table" && outer == dom.Nil {
			outer = n
		}
	})
	// The outer row must have two cells.
	row := tr.FirstChild(outer)
	if tr.Label(row) != "tr" || tr.ChildCount(row) != 2 {
		t.Fatalf("outer structure wrong: %s", tr.String())
	}
}

func TestVoidElements(t *testing.T) {
	tr := Parse(`<body>a<br>b<hr><img src="i.png">c</body>`)
	body := Body(tr)
	var seq []string
	for c := tr.FirstChild(body); c != dom.Nil; c = tr.NextSibling(c) {
		seq = append(seq, tr.Label(c))
	}
	want := []string{"#text", "br", "#text", "hr", "img", "#text"}
	if strings.Join(seq, ",") != strings.Join(want, ",") {
		t.Fatalf("got %v want %v", seq, want)
	}
}

func TestParagraphAutoClose(t *testing.T) {
	tr := Parse(`<p>one<p>two`)
	body := Body(tr)
	if got := tr.ChildCount(body); got != 2 {
		t.Fatalf("body children = %d: %s", got, tr.String())
	}
}

func TestRawTextScript(t *testing.T) {
	tr := Parse(`<body><script>if (a < b) { x("<div>") }</script><p>y</p></body>`)
	script := dom.Nil
	tr.Walk(func(n dom.NodeID) {
		if tr.Label(n) == "script" {
			script = n
		}
	})
	if script == dom.Nil {
		t.Fatal("no script")
	}
	if got := tr.ElementText(script); !strings.Contains(got, `x("<div>")`) {
		t.Errorf("script text = %q", got)
	}
	// The <p> must still be parsed as an element.
	found := false
	tr.Walk(func(n dom.NodeID) {
		if tr.Label(n) == "p" {
			found = true
		}
	})
	if !found {
		t.Error("p lost after script")
	}
}

func TestEntities(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"a &amp; b", "a & b"},
		{"&lt;i&gt;", "<i>"},
		{"&#65;&#x42;", "AB"},
		{"5 &euro;", "5 €"},
		{"&bogus; stays", "&bogus; stays"},
		{"&unterminated", "&unterminated"},
	} {
		if got := DecodeEntities(tc.in); got != tc.want {
			t.Errorf("DecodeEntities(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestStrayEndTagsIgnored(t *testing.T) {
	tr := Parse(`<div></span>text</div>`)
	div := dom.Nil
	tr.Walk(func(n dom.NodeID) {
		if tr.Label(n) == "div" {
			div = n
		}
	})
	if got := tr.ElementText(div); got != "text" {
		t.Errorf("div text = %q (%s)", got, tr.String())
	}
}

func TestCommentsPreserved(t *testing.T) {
	tr := Parse(`<body><!-- marker --><p>x</p></body>`)
	found := false
	tr.Walk(func(n dom.NodeID) {
		if tr.Kind(n) == dom.Comment && strings.Contains(tr.Text(n), "marker") {
			found = true
		}
	})
	if !found {
		t.Error("comment lost")
	}
}

func TestHeadElements(t *testing.T) {
	tr := Parse(`<html><head><title>T</title><meta charset="utf-8"></head><body><p>x</p></body></html>`)
	var head dom.NodeID = dom.Nil
	for c := tr.FirstChild(tr.Root()); c != dom.Nil; c = tr.NextSibling(c) {
		if tr.Label(c) == "head" {
			head = c
		}
	}
	if head == dom.Nil {
		t.Fatal("no head")
	}
	if got := tr.ElementText(head); got != "T" {
		t.Errorf("title text = %q", got)
	}
}

func TestDoctypeIgnored(t *testing.T) {
	tr := Parse("<!DOCTYPE html>\n<html><body><p>x</p></body></html>")
	if tr.Label(tr.Root()) != "html" {
		t.Fatalf("root = %s", tr.Label(tr.Root()))
	}
}

func TestRenderRoundTrip(t *testing.T) {
	src := `<html><body><table class="list"><tr><td>a &amp; b</td><td><a href="u?x=1&amp;y=2">link</a></td></tr></table><hr></body></html>`
	t1 := Parse(src)
	out := Render(t1)
	t2 := Parse(out)
	if !dom.Equal(t1, t2) {
		t.Errorf("round trip changed tree:\n%s\n%s", t1, t2)
	}
}

func TestRenderParseIdempotentProperty(t *testing.T) {
	// Render∘Parse is idempotent: parsing rendered output re-yields an
	// equal tree, on randomly generated documents.
	cfg := &quick.Config{MaxCount: 100}
	f := func(seed int64) bool {
		src := randomHTML(rand.New(rand.NewSource(seed)))
		t1 := Parse(src)
		t2 := Parse(Render(t1))
		return dom.Equal(t1, t2)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// randomHTML emits a random well-formed-ish document exercising the
// repair paths: unclosed li/td, void elements, entities.
func randomHTML(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("<html><body>")
	var emit func(depth int)
	texts := []string{"x", "a &amp; b", "42 &euro;", "hello world"}
	emit = func(depth int) {
		if depth > 4 {
			b.WriteString(texts[rng.Intn(len(texts))])
			return
		}
		switch rng.Intn(6) {
		case 0:
			b.WriteString("<div>")
			for i := 0; i < rng.Intn(3); i++ {
				emit(depth + 1)
			}
			b.WriteString("</div>")
		case 1:
			b.WriteString("<ul>")
			for i := 0; i < 1+rng.Intn(3); i++ {
				b.WriteString("<li>")
				emit(depth + 1)
			}
			b.WriteString("</ul>")
		case 2:
			b.WriteString("<table>")
			for i := 0; i < 1+rng.Intn(2); i++ {
				b.WriteString("<tr>")
				for j := 0; j < 1+rng.Intn(3); j++ {
					b.WriteString("<td>")
					emit(depth + 1)
				}
			}
			b.WriteString("</table>")
		case 3:
			b.WriteString("<p>")
			b.WriteString(texts[rng.Intn(len(texts))])
		case 4:
			b.WriteString("<br>")
		default:
			b.WriteString(texts[rng.Intn(len(texts))])
		}
	}
	for i := 0; i < 1+rng.Intn(5); i++ {
		emit(0)
	}
	b.WriteString("</body></html>")
	return b.String()
}

func TestParseNeverPanicsProperty(t *testing.T) {
	// The parser must accept arbitrary garbage without panicking.
	f := func(s string) bool {
		tr := Parse(s)
		return tr.Size() >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParseGarbage(t *testing.T) {
	for _, s := range []string{
		"", "<", "<<>>", "</nope>", "<a", "< b >", "<a href=", "text only",
		"<!---->", "<!--unterminated", "<!DOCTYPE", "&#xZZ;", "<a/></a>",
	} {
		tr := Parse(s)
		if tr.Size() < 1 {
			t.Errorf("Parse(%q) produced empty tree", s)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<html><body><table>")
	for i := 0; i < 500; i++ {
		sb.WriteString("<tr><td><a href=\"item.html\">Item</a></td><td>$12.99</td><td>5 bids</td></tr>")
	}
	sb.WriteString("</table></body></html>")
	src := sb.String()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := Parse(src)
		if t.Size() < 1000 {
			b.Fatal("parse too small")
		}
	}
}
