package htmlparse

import (
	"strings"

	"repro/internal/dom"
)

// parseArena is the zero-copy parse path behind Parse: the tokenizer
// streams tags straight into an arena-allocated dom.Tree. Three things
// distinguish it from ParseLegacy, none of them semantic:
//
//   - the tree's parallel node slices are pre-sized from a tag-count
//     estimate of the source, so node appends never reallocate on
//     typical documents;
//   - tag tokens come from Tokenizer.NextStream, whose attribute lists
//     live in a reused scratch buffer instead of a fresh slice per tag;
//   - attributes are committed with dom.Tree.SetAttrs, which copies the
//     scratch into the tree's chunked attribute arena in one step
//     (label interning already happens at node-append time).
//
// The token stream, the repair rules, and the resulting tree are
// identical to ParseLegacy's; FuzzParseArena pins that.
func parseArena(src string) *dom.Tree {
	// Every element, end tag, and comment starts with '<'; text runs sit
	// between them. Counting '<' therefore bounds the element+comment
	// count and approximates the node count closely enough that typical
	// documents never regrow the arena.
	t := dom.New(strings.Count(src, "<") + 4)
	z := NewTokenizer(src)

	var root, head, body dom.NodeID = dom.Nil, dom.Nil, dom.Nil
	// stack holds the chain of currently open elements.
	type openElem struct {
		node dom.NodeID
		name string
	}
	stack := make([]openElem, 0, 16)

	// attrScratch bridges the tokenizer's reused attribute buffer to
	// SetAttrs, reused across tags so attribute commits allocate nothing
	// beyond the tree's own arena chunks.
	var attrScratch []dom.Attr
	setAttrs := func(n dom.NodeID, as []Attr) {
		if len(as) == 0 {
			return
		}
		attrScratch = attrScratch[:0]
		for _, a := range as {
			attrScratch = append(attrScratch, dom.Attr{Name: a.Name, Value: a.Value})
		}
		t.SetAttrs(n, attrScratch)
	}

	ensureRoot := func() {
		if root == dom.Nil {
			root = t.AddRoot("html")
			stack = append(stack, openElem{root, "html"})
		}
	}
	ensureBody := func() dom.NodeID {
		ensureRoot()
		if body == dom.Nil {
			body = t.AppendChild(root, "body")
			stack = append(stack, openElem{body, "body"})
		}
		return body
	}
	cur := func() dom.NodeID {
		if len(stack) == 0 {
			return ensureBody()
		}
		top := stack[len(stack)-1]
		if top.name == "html" {
			// Text and non-head elements directly under html belong in
			// body.
			return dom.Nil
		}
		return top.node
	}

	for {
		tok, ok := z.NextStream()
		if !ok {
			break
		}
		switch tok.Type {
		case DoctypeToken:
			// Ignored: the parse tree of the paper starts at html.
		case CommentToken:
			parent := cur()
			if parent == dom.Nil {
				parent = ensureBody()
			}
			t.AppendComment(parent, tok.Data)
		case TextToken:
			if strings.TrimSpace(tok.Data) == "" {
				// Inter-tag whitespace is not meaningful for wrapping and
				// would bloat every pattern path; drop it like the Lixto
				// preprocessor does.
				continue
			}
			parent := cur()
			if parent == dom.Nil {
				parent = ensureBody()
			}
			t.AppendText(parent, tok.Data)
		case StartTagToken, SelfClosingToken:
			name := tok.Data
			switch name {
			case "html":
				if root == dom.Nil {
					root = t.AddRoot("html")
					stack = append(stack, openElem{root, "html"})
					setAttrs(root, tok.Attrs)
				}
				continue
			case "head":
				ensureRoot()
				if head == dom.Nil {
					head = t.AppendChild(root, "head")
					stack = append(stack, openElem{head, "head"})
				}
				continue
			case "body":
				ensureRoot()
				if body == dom.Nil {
					// Close an open head.
					for len(stack) > 0 && stack[len(stack)-1].name != "html" {
						stack = stack[:len(stack)-1]
					}
					body = t.AppendChild(root, "body")
					stack = append(stack, openElem{body, "body"})
					setAttrs(body, tok.Attrs)
				}
				continue
			}
			// Implicit closing.
			if closes, ok := autoClose[name]; ok {
				for len(stack) > 0 {
					top := stack[len(stack)-1].name
					if closeBarrier[top] {
						break
					}
					matched := false
					for _, c := range closes {
						if top == c {
							matched = true
							break
						}
					}
					if !matched {
						break
					}
					stack = stack[:len(stack)-1]
				}
			}
			parent := cur()
			if parent == dom.Nil {
				if headElements[name] && body == dom.Nil {
					ensureRoot()
					if head == dom.Nil {
						head = t.AppendChild(root, "head")
						stack = append(stack, openElem{head, "head"})
					}
					parent = head
				} else {
					parent = ensureBody()
				}
			}
			n := t.AppendChild(parent, name)
			setAttrs(n, tok.Attrs)
			if tok.Type == StartTagToken && !voidElements[name] {
				stack = append(stack, openElem{n, name})
			}
		case EndTagToken:
			name := tok.Data
			if voidElements[name] {
				continue
			}
			// Find the matching open element; if none, ignore the stray
			// end tag.
			idx := -1
			for i := len(stack) - 1; i >= 0; i-- {
				if stack[i].name == name {
					idx = i
					break
				}
			}
			if idx < 0 {
				continue
			}
			// Never pop the synthetic html/body/head wrappers via
			// mismatched tags deeper in the stack.
			stack = stack[:idx]
			switch name {
			case "html":
				stack = append(stack, openElem{root, "html"})
			case "body":
				if body != dom.Nil {
					// body stays conceptually open for trailing content.
					stack = append(stack, openElem{root, "html"})
				}
			}
		}
	}
	if root == dom.Nil {
		ensureBody()
	}
	if body == dom.Nil {
		// Documents with only head content still get an empty body.
		b := dom.Nil
		for c := t.FirstChild(root); c != dom.Nil; c = t.NextSibling(c) {
			if t.Label(c) == "body" {
				b = c
				break
			}
		}
		if b == dom.Nil {
			t.AppendChild(root, "body")
		}
	}
	return t
}
