package htmlparse

import (
	"strings"

	"repro/internal/dom"
)

// voidElements never have content; an end tag for them is ignored.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// autoClose maps a tag name to the set of open tags it implicitly closes
// when it starts: e.g. a new <li> closes a currently open <li>.
var autoClose = map[string][]string{
	"li":     {"li"},
	"td":     {"td", "th"},
	"th":     {"td", "th"},
	"tr":     {"tr", "td", "th"},
	"thead":  {"tr", "td", "th"},
	"tbody":  {"thead", "tr", "td", "th"},
	"tfoot":  {"tbody", "tr", "td", "th"},
	"p":      {"p"},
	"option": {"option"},
	"dt":     {"dt", "dd"},
	"dd":     {"dt", "dd"},
}

// closeBarrier contains tags that act as scope boundaries for implicit
// closing: an auto-close never propagates past them.
var closeBarrier = map[string]bool{
	"table": true, "html": true, "body": true, "div": true, "ul": true,
	"ol": true, "select": true, "dl": true,
}

// Parse parses HTML source into a dom.Tree. The returned tree always has
// an "html" root with a "body" child (synthesized when missing), because
// the Elog programs of the paper navigate from the body node (Figure 5).
// Parse never fails; arbitrarily broken input yields a best-effort tree.
func Parse(src string) *dom.Tree {
	t := dom.New(len(src) / 16)
	z := NewTokenizer(src)

	var root, head, body dom.NodeID = dom.Nil, dom.Nil, dom.Nil
	// stack holds the chain of currently open elements.
	type openElem struct {
		node dom.NodeID
		name string
	}
	var stack []openElem

	ensureRoot := func() {
		if root == dom.Nil {
			root = t.AddRoot("html")
			stack = append(stack, openElem{root, "html"})
		}
	}
	ensureBody := func() dom.NodeID {
		ensureRoot()
		if body == dom.Nil {
			body = t.AppendChild(root, "body")
			stack = append(stack, openElem{body, "body"})
		}
		return body
	}
	cur := func() dom.NodeID {
		if len(stack) == 0 {
			return ensureBody()
		}
		top := stack[len(stack)-1]
		if top.name == "html" {
			// Text and non-head elements directly under html belong in
			// body.
			return dom.Nil
		}
		return top.node
	}

	headElements := map[string]bool{"title": true, "meta": true, "link": true, "base": true, "style": true}

	for {
		tok, ok := z.Next()
		if !ok {
			break
		}
		switch tok.Type {
		case DoctypeToken:
			// Ignored: the parse tree of the paper starts at html.
		case CommentToken:
			parent := cur()
			if parent == dom.Nil {
				parent = ensureBody()
			}
			t.AppendComment(parent, tok.Data)
		case TextToken:
			if strings.TrimSpace(tok.Data) == "" {
				// Inter-tag whitespace is not meaningful for wrapping and
				// would bloat every pattern path; drop it like the Lixto
				// preprocessor does.
				continue
			}
			parent := cur()
			if parent == dom.Nil {
				parent = ensureBody()
			}
			t.AppendText(parent, tok.Data)
		case StartTagToken, SelfClosingToken:
			name := tok.Data
			switch name {
			case "html":
				if root == dom.Nil {
					root = t.AddRoot("html")
					stack = append(stack, openElem{root, "html"})
					for _, a := range tok.Attrs {
						t.SetAttr(root, a.Name, a.Value)
					}
				}
				continue
			case "head":
				ensureRoot()
				if head == dom.Nil {
					head = t.AppendChild(root, "head")
					stack = append(stack, openElem{head, "head"})
				}
				continue
			case "body":
				ensureRoot()
				if body == dom.Nil {
					// Close an open head.
					for len(stack) > 0 && stack[len(stack)-1].name != "html" {
						stack = stack[:len(stack)-1]
					}
					body = t.AppendChild(root, "body")
					stack = append(stack, openElem{body, "body"})
					for _, a := range tok.Attrs {
						t.SetAttr(body, a.Name, a.Value)
					}
				}
				continue
			}
			// Implicit closing.
			if closes, ok := autoClose[name]; ok {
				for len(stack) > 0 {
					top := stack[len(stack)-1].name
					if closeBarrier[top] {
						break
					}
					matched := false
					for _, c := range closes {
						if top == c {
							matched = true
							break
						}
					}
					if !matched {
						break
					}
					stack = stack[:len(stack)-1]
				}
			}
			parent := cur()
			if parent == dom.Nil {
				if headElements[name] && body == dom.Nil {
					ensureRoot()
					if head == dom.Nil {
						head = t.AppendChild(root, "head")
						stack = append(stack, openElem{head, "head"})
					}
					parent = head
				} else {
					parent = ensureBody()
				}
			}
			n := t.AppendChild(parent, name)
			for _, a := range tok.Attrs {
				t.SetAttr(n, a.Name, a.Value)
			}
			if tok.Type == StartTagToken && !voidElements[name] {
				stack = append(stack, openElem{n, name})
			}
		case EndTagToken:
			name := tok.Data
			if voidElements[name] {
				continue
			}
			// Find the matching open element; if none, ignore the stray
			// end tag.
			idx := -1
			for i := len(stack) - 1; i >= 0; i-- {
				if stack[i].name == name {
					idx = i
					break
				}
			}
			if idx < 0 {
				continue
			}
			// Never pop the synthetic html/body/head wrappers via
			// mismatched tags deeper in the stack.
			stack = stack[:idx]
			switch name {
			case "html":
				stack = append(stack, openElem{root, "html"})
			case "body":
				if body != dom.Nil {
					// body stays conceptually open for trailing content.
					stack = append(stack, openElem{root, "html"})
				}
			}
		}
	}
	if root == dom.Nil {
		ensureBody()
	}
	if body == dom.Nil {
		// Documents with only head content still get an empty body.
		b := dom.Nil
		for c := t.FirstChild(root); c != dom.Nil; c = t.NextSibling(c) {
			if t.Label(c) == "body" {
				b = c
				break
			}
		}
		if b == dom.Nil {
			t.AppendChild(root, "body")
		}
	}
	return t
}

// Body returns the body element of a parsed document, or the root if no
// body exists (which Parse prevents).
func Body(t *dom.Tree) dom.NodeID {
	for c := t.FirstChild(t.Root()); c != dom.Nil; c = t.NextSibling(c) {
		if t.Label(c) == "body" {
			return c
		}
	}
	return t.Root()
}

// Render serializes a tree back to HTML text. It is the inverse of Parse
// up to whitespace and repaired malformations and is used by the
// transformation server's HTML deliverer.
func Render(t *dom.Tree) string {
	var b strings.Builder
	var rec func(n dom.NodeID)
	rec = func(n dom.NodeID) {
		switch t.Kind(n) {
		case dom.Text:
			b.WriteString(EscapeText(t.Text(n)))
			return
		case dom.Comment:
			b.WriteString("<!--")
			b.WriteString(t.Text(n))
			b.WriteString("-->")
			return
		}
		name := t.Label(n)
		b.WriteByte('<')
		b.WriteString(name)
		for _, a := range t.Attrs(n) {
			b.WriteByte(' ')
			b.WriteString(a.Name)
			b.WriteString(`="`)
			b.WriteString(EscapeAttr(a.Value))
			b.WriteByte('"')
		}
		b.WriteByte('>')
		if voidElements[name] {
			return
		}
		for c := t.FirstChild(n); c != dom.Nil; c = t.NextSibling(c) {
			rec(c)
		}
		b.WriteString("</")
		b.WriteString(name)
		b.WriteByte('>')
	}
	if t.Size() > 0 {
		rec(t.Root())
	}
	return b.String()
}
