package resultlog

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustLog(t *testing.T, s *Store, name string) *Log {
	t.Helper()
	l, err := s.Log(name)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func collect(t *testing.T, l *Log) []Record {
	t.Helper()
	var out []Record
	if err := l.Replay(func(r Record) error { out = append(out, r); return nil }); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: KindSnapshot, Version: 1, Time: 42, Fingerprint: 7, XML: []byte("<doc/>\n")},
		{Kind: KindNoop, Version: 2, Time: 43},
		{Kind: KindSnapshot, Version: 1<<63 + 5, Time: -1, Fingerprint: ^uint64(0), XML: bytes.Repeat([]byte("x"), 10000)},
		{Kind: KindSnapshot, Version: 9, XML: nil},
	}
	var buf []byte
	for _, r := range recs {
		buf = AppendRecord(buf, r)
	}
	off := 0
	for i, want := range recs {
		got, n, err := DecodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		off += n
		if got.Kind != want.Kind || got.Version != want.Version || got.Time != want.Time ||
			got.Fingerprint != want.Fingerprint || !bytes.Equal(got.XML, want.XML) {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

func TestRecordCorruptionDetected(t *testing.T) {
	good := AppendRecord(nil, Record{Kind: KindSnapshot, Version: 3, Time: 1, XML: []byte("<a/>")})
	// Every single-bit flip must either fail the CRC or shorten the
	// frame — never decode to a different record silently.
	for i := 0; i < len(good)*8; i++ {
		bad := append([]byte(nil), good...)
		bad[i/8] ^= 1 << (i % 8)
		rec, _, err := DecodeRecord(bad)
		if err == nil {
			// A flip inside the length prefix can still frame a valid
			// record only if the CRC happens to match, which it must not.
			if rec.Version != 3 || !bytes.Equal(rec.XML, []byte("<a/>")) {
				t.Fatalf("bit %d: corrupt frame decoded as %+v", i, rec)
			}
		}
	}
	// Truncations at every length are torn, not errors or panics.
	for i := 0; i < len(good); i++ {
		if _, _, err := DecodeRecord(good[:i]); err == nil {
			t.Fatalf("truncated frame of %d bytes decoded", i)
		}
	}
}

func TestAppendReplay(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	l := mustLog(t, s, "w")
	for v := uint64(1); v <= 5; v++ {
		kind := KindSnapshot
		xml := []byte(fmt.Sprintf("<doc n=%q/>\n", fmt.Sprint(v)))
		if v == 3 {
			kind, xml = KindNoop, nil
		}
		if err := l.Append(Record{Kind: kind, Version: v, Fingerprint: v * 10, XML: xml}); err != nil {
			t.Fatal(err)
		}
	}
	recs := collect(t, l)
	if len(recs) != 5 {
		t.Fatalf("replayed %d records, want 5", len(recs))
	}
	if recs[2].Kind != KindNoop || recs[2].XML != nil {
		t.Fatalf("noop record round-trip: %+v", recs[2])
	}
	if l.LastVersion() != 5 {
		t.Fatalf("LastVersion = %d", l.LastVersion())
	}
	// Versions must move forward.
	if err := l.Append(Record{Kind: KindNoop, Version: 5}); err == nil {
		t.Fatal("stale version accepted")
	}
	// Cursor reads skip up to and including the cursor.
	var since []uint64
	if err := l.Since(3, func(r Record) error { since = append(since, r.Version); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(since) != 2 || since[0] != 4 || since[1] != 5 {
		t.Fatalf("Since(3) = %v", since)
	}
}

func TestReopenContinues(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	l := mustLog(t, s, "w")
	for v := uint64(1); v <= 3; v++ {
		if err := l.Append(Record{Kind: KindSnapshot, Version: v, XML: []byte("<d/>")}); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: simulate the crash path (writes reached the OS).
	s2 := open(t, dir, Options{})
	l2 := mustLog(t, s2, "w")
	if l2.LastVersion() != 3 {
		t.Fatalf("reopened LastVersion = %d", l2.LastVersion())
	}
	if err := l2.Append(Record{Kind: KindSnapshot, Version: 4, XML: []byte("<d4/>")}); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l2); len(got) != 4 || got[3].Version != 4 {
		t.Fatalf("after reopen+append: %d records", len(got))
	}
}

func TestTornTailIgnoredAndTruncated(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	l := mustLog(t, s, "w")
	for v := uint64(1); v <= 3; v++ {
		if err := l.Append(Record{Kind: KindSnapshot, Version: v, XML: []byte("<doc/>")}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Tear the tail: append half a record to the active segment.
	seg := filepath.Join(dir, "w", segName(1))
	torn := AppendRecord(nil, Record{Kind: KindSnapshot, Version: 4, XML: []byte("<lost/>")})
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)-3]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := open(t, dir, Options{})
	l2 := mustLog(t, s2, "w")
	if l2.LastVersion() != 3 {
		t.Fatalf("LastVersion after torn tail = %d", l2.LastVersion())
	}
	if got := collect(t, l2); len(got) != 3 {
		t.Fatalf("replayed %d records, want 3 (torn tail dropped)", len(got))
	}
	if s2.Stats().TornRecords == 0 {
		t.Fatal("torn record not counted")
	}
	// The tail was truncated away, so appending continues cleanly on a
	// record boundary.
	if err := l2.Append(Record{Kind: KindSnapshot, Version: 4, XML: []byte("<doc4/>")}); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l2); len(got) != 4 || got[3].Version != 4 {
		t.Fatalf("append after truncation: %v records", len(got))
	}
}

func TestRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{SegmentBytes: 256, MaxSegments: 3})
	l := mustLog(t, s, "w")
	payload := bytes.Repeat([]byte("r"), 100)
	for v := uint64(1); v <= 40; v++ {
		if err := l.Append(Record{Kind: KindSnapshot, Version: v, XML: payload}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Rotations == 0 {
		t.Fatal("no rotations at a 256-byte segment bound")
	}
	if st.TruncatedSegments == 0 {
		t.Fatal("no truncation with MaxSegments 3")
	}
	files, err := filepath.Glob(filepath.Join(dir, "w", "*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) > 3 {
		t.Fatalf("%d segments on disk, cap 3", len(files))
	}
	// The newest records survive; replay stays contiguous at the tail.
	recs := collect(t, l)
	if len(recs) == 0 || recs[len(recs)-1].Version != 40 {
		t.Fatalf("tail record = %+v", recs[len(recs)-1])
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Version != recs[i-1].Version+1 {
			t.Fatalf("gap inside retained records: %d → %d", recs[i-1].Version, recs[i].Version)
		}
	}
}

func TestAgeRetention(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{SegmentBytes: 64, MaxSegments: 100, MaxAge: time.Millisecond})
	l := mustLog(t, s, "w")
	old := time.Now().Add(-time.Hour).UnixNano()
	for v := uint64(1); v <= 6; v++ {
		if err := l.Append(Record{Kind: KindSnapshot, Version: v, Time: old, XML: []byte("<aged/>")}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().TruncatedSegments == 0 {
		t.Fatal("hour-old segments not dropped under a 1ms age bound")
	}
}

func TestFsyncModes(t *testing.T) {
	for _, mode := range []FsyncMode{FsyncAlways, FsyncBatch, FsyncOff} {
		s := open(t, t.TempDir(), Options{Fsync: mode, FsyncInterval: 5 * time.Millisecond})
		l := mustLog(t, s, "w")
		if err := l.Append(Record{Kind: KindSnapshot, Version: 1, XML: []byte("<x/>")}); err != nil {
			t.Fatal(err)
		}
		switch mode {
		case FsyncAlways:
			if s.Stats().Fsyncs == 0 {
				t.Fatal("FsyncAlways did not sync on append")
			}
		case FsyncBatch:
			deadline := time.Now().Add(2 * time.Second)
			for s.Stats().BatchedSyncs == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if s.Stats().BatchedSyncs == 0 {
				t.Fatal("batch syncer never flushed a dirty log")
			}
		case FsyncOff:
			if s.Stats().Fsyncs != 0 {
				t.Fatal("FsyncOff synced")
			}
		}
	}
}

func TestParseFsyncMode(t *testing.T) {
	for in, want := range map[string]FsyncMode{
		"": FsyncBatch, "batch": FsyncBatch, "always": FsyncAlways, "off": FsyncOff, "none": FsyncOff,
	} {
		got, err := ParseFsyncMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFsyncMode("sometimes"); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func TestMetaSidecars(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	type spec struct {
		Name string `json:"name"`
		N    int    `json:"n"`
	}
	if err := s.SaveMeta("w", "spec.json", spec{Name: "w", N: 3}); err != nil {
		t.Fatal(err)
	}
	var got spec
	if err := s.LoadMeta("w", "spec.json", &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "w" || got.N != 3 {
		t.Fatalf("meta round-trip: %+v", got)
	}
	if err := s.LoadMeta("w", "missing.json", &got); !os.IsNotExist(err) {
		t.Fatalf("missing meta: %v", err)
	}
	names, err := s.Names()
	if err != nil || len(names) != 1 || names[0] != "w" {
		t.Fatalf("Names = %v, %v", names, err)
	}
	if err := s.Remove("w"); err != nil {
		t.Fatal(err)
	}
	if names, _ := s.Names(); len(names) != 0 {
		t.Fatalf("after Remove: %v", names)
	}
}

func TestNameValidation(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	for _, bad := range []string{"", ".", "..", "a/b", `a\b`} {
		if _, err := s.Log(bad); err == nil {
			t.Fatalf("Log(%q) accepted", bad)
		}
		if err := s.SaveMeta(bad, "x.json", 1); err == nil {
			t.Fatalf("SaveMeta(%q) accepted", bad)
		}
	}
}
