package resultlog

import (
	"bytes"
	"testing"
)

// FuzzWALRecord feeds arbitrary bytes through the record decoder and,
// when a frame is well-formed, re-encodes it and checks the round trip
// is exact. The decoder must never panic, never read past the input,
// and never accept a frame whose checksum does not match.
func FuzzWALRecord(f *testing.F) {
	f.Add(AppendRecord(nil, Record{Kind: KindSnapshot, Version: 1, Time: 7, Fingerprint: 9, XML: []byte("<doc/>\n")}))
	f.Add(AppendRecord(nil, Record{Kind: KindNoop, Version: 2}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if n < recHeaderLen+payloadHeaderLen || n > len(data) {
			t.Fatalf("decoded length %d out of range (input %d)", n, len(data))
		}
		// Round trip: a decoded record re-encodes to the exact frame.
		out := AppendRecord(nil, rec)
		if !bytes.Equal(out, data[:n]) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", data[:n], out)
		}
		rec2, n2, err := DecodeRecord(out)
		if err != nil || n2 != n {
			t.Fatalf("re-decode: n=%d err=%v", n2, err)
		}
		if rec2.Kind != rec.Kind || rec2.Version != rec.Version || rec2.Time != rec.Time ||
			rec2.Fingerprint != rec.Fingerprint || !bytes.Equal(rec2.XML, rec.XML) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", rec, rec2)
		}
	})
}
