package resultlog

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// appendN writes n snapshot records of ~size bytes starting at version
// from, returning the last version written.
func appendN(t *testing.T, l *Log, from uint64, n, size int) uint64 {
	t.Helper()
	v := from
	for i := 0; i < n; i++ {
		xml := []byte("<doc v=\"" + fmt.Sprint(v) + "\">" + strings.Repeat("x", size) + "</doc>\n")
		if err := l.Append(Record{Kind: KindSnapshot, Version: v, Fingerprint: v, XML: xml}); err != nil {
			t.Fatalf("append %d: %v", v, err)
		}
		v++
	}
	return v - 1
}

func segFiles(t *testing.T, dir, name string) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".wal") {
			out = append(out, e.Name())
		}
	}
	return out
}

func TestCompactTruncatesHistory(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{SegmentBytes: 2048, MaxSegments: 64, Fsync: FsyncOff, CompactSegments: 3})
	l := mustLog(t, s, "w")
	last := appendN(t, l, 1, 40, 128) // forces several rotations
	if !l.NeedsCompaction() {
		t.Fatalf("expected NeedsCompaction after %d segment files", len(segFiles(t, dir, "w")))
	}
	checkpoint := []byte("<doc v=\"" + fmt.Sprint(last) + "\">latest</doc>\n")
	if err := l.Compact(Record{Version: last, Fingerprint: last, XML: checkpoint}); err != nil {
		t.Fatal(err)
	}
	if l.NeedsCompaction() {
		t.Error("still NeedsCompaction immediately after Compact")
	}
	if got := segFiles(t, dir, "w"); len(got) != 1 {
		t.Fatalf("segments after compact = %v, want exactly one", got)
	}
	recs := collect(t, l)
	if len(recs) != 1 {
		t.Fatalf("replay after compact = %d records, want 1", len(recs))
	}
	if recs[0].Kind != KindCheckpoint || recs[0].Version != last || !bytes.Equal(recs[0].XML, checkpoint) {
		t.Fatalf("checkpoint replayed wrong: %+v", recs[0])
	}
	if l.LastVersion() != last {
		t.Errorf("LastVersion = %d, want %d", l.LastVersion(), last)
	}
	if st := s.Stats(); st.Compactions != 1 {
		t.Errorf("Compactions = %d, want 1", st.Compactions)
	}

	// The log keeps appending after the checkpoint, and a cursor at the
	// checkpoint version sees only the newer records.
	appendN(t, l, last+1, 3, 16)
	var since []uint64
	l.Since(last, func(r Record) error { since = append(since, r.Version); return nil })
	if len(since) != 3 || since[0] != last+1 {
		t.Errorf("Since(checkpoint) = %v", since)
	}
}

// A reopened store must restore from the checkpoint exactly as it would
// from the full history's tail.
func TestCompactSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentBytes: 1024, MaxSegments: 64, Fsync: FsyncOff, CompactSegments: 2}
	s := open(t, dir, opts)
	l := mustLog(t, s, "w")
	last := appendN(t, l, 1, 20, 100)
	checkpoint := []byte("<state/>\n")
	if err := l.Compact(Record{Version: last, Fingerprint: 9, XML: checkpoint}); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, last+1, 2, 16)
	s.Close()

	s2 := open(t, dir, opts)
	l2 := mustLog(t, s2, "w")
	if l2.LastVersion() != last+2 {
		t.Fatalf("LastVersion after reopen = %d, want %d", l2.LastVersion(), last+2)
	}
	recs := collect(t, l2)
	if len(recs) != 3 {
		t.Fatalf("replay after reopen = %d records, want 3 (checkpoint + 2)", len(recs))
	}
	if recs[0].Kind != KindCheckpoint || !bytes.Equal(recs[0].XML, checkpoint) {
		t.Fatalf("first replayed record not the checkpoint: %+v", recs[0])
	}
	// Appends continue past the restored tail.
	if err := l2.Append(Record{Kind: KindSnapshot, Version: last + 3, XML: []byte("<n/>")}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactVersionRules(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{Fsync: FsyncOff, CompactSegments: 1})
	l := mustLog(t, s, "w")
	appendN(t, l, 1, 3, 16)
	// Behind the log's last version: rejected (Append would also refuse
	// an equal version; Compact uniquely allows restating it).
	if err := l.Compact(Record{Version: 2, XML: []byte("<x/>")}); err == nil {
		t.Error("Compact accepted a stale version")
	}
	if err := l.Compact(Record{Version: 3, XML: []byte("<x/>")}); err != nil {
		t.Errorf("Compact rejected the current version: %v", err)
	}
	if l.LastVersion() != 3 {
		t.Errorf("LastVersion = %d", l.LastVersion())
	}
}

func TestNeedsCompactionOffByDefault(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{SegmentBytes: 512, Fsync: FsyncOff})
	l := mustLog(t, s, "w")
	appendN(t, l, 1, 30, 100)
	if l.NeedsCompaction() {
		t.Error("NeedsCompaction true with CompactSegments unset")
	}
}
