// Package resultlog is the durable half of the delivery plane: a
// per-wrapper append-only write-ahead log of result snapshots. Every
// record carries the delivery version, the content fingerprint, and
// the already-encoded XML bytes published by the server's snapshot
// plane, so a restarted server rehydrates each wrapper's history ring,
// latest snapshot, ETag, and delivery version byte-identically — and
// subscribers that reconnect with a cursor (SSE Last-Event-ID, webhook
// cursors) replay exactly the snapshots they missed.
//
// Layout: <dir>/<wrapper>/NNNNNNNN.wal segment files plus small JSON
// sidecars (wrapper spec, webhook registrations) written atomically.
// Records are length-prefixed and CRC-checked; a torn tail (the crash
// case) is detected and ignored rather than poisoning the log. The
// active segment rotates at a size bound and old segments are dropped
// by count and age, so retention is a pair of knobs rather than a
// compaction scheme.
//
// Appends write() straight through to the OS so a kill -9 loses at
// most the not-yet-acknowledged delivery; fsync is batched on a
// background syncer (FsyncBatch, the default) so the publish path
// never waits on the disk. FsyncAlways trades publish latency for
// power-loss durability; FsyncOff leaves flushing to the OS entirely.
package resultlog

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Record kinds.
const (
	// KindSnapshot is a full result snapshot: the encoded XML bytes of
	// one published delivery.
	KindSnapshot byte = 1
	// KindNoop marks a delivery whose content was identical to the
	// previous snapshot (a suppressed no-op tick): the version advanced
	// but the bytes did not, so only the version is logged and replay
	// re-appends the previous document.
	KindNoop byte = 2
	// KindCheckpoint is the latest snapshot re-written by compaction
	// (Log.Compact) so segments holding older history can be deleted.
	// It carries the same payload as KindSnapshot and replays the same
	// way; uniquely, its version may equal the log's last version, since
	// it restates rather than advances the delivery state.
	KindCheckpoint byte = 3
)

// Record is one logged delivery.
type Record struct {
	Kind byte
	// Version is the collector's delivery version for this record;
	// strictly increasing within a log.
	Version uint64
	// Time is the append wall-clock time in Unix nanoseconds.
	Time int64
	// Fingerprint is the FNV-1a hash of the XML bytes (the same hash
	// the delivery plane derives ETags from). Zero for noop records.
	Fingerprint uint64
	// XML is the encoded snapshot; empty for noop records.
	XML []byte
}

// recHeaderLen is the fixed frame prefix: payload length + CRC.
const recHeaderLen = 8

// payloadHeaderLen is the fixed payload prefix: kind, version, time,
// fingerprint.
const payloadHeaderLen = 1 + 8 + 8 + 8

// maxRecordBytes bounds a single record so a corrupt length prefix
// cannot ask the reader to allocate gigabytes.
const maxRecordBytes = 64 << 20

// AppendRecord encodes rec onto buf (reusing its capacity) and returns
// the extended slice. The frame is
//
//	uint32 payload length | uint32 CRC-32 (IEEE) of payload |
//	byte kind | uint64 version | int64 time | uint64 fingerprint | xml…
//
// with all integers little-endian.
func AppendRecord(buf []byte, rec Record) []byte {
	n := payloadHeaderLen + len(rec.XML)
	start := len(buf)
	buf = append(buf, make([]byte, recHeaderLen+n)...)
	payload := buf[start+recHeaderLen:]
	payload[0] = rec.Kind
	binary.LittleEndian.PutUint64(payload[1:], rec.Version)
	binary.LittleEndian.PutUint64(payload[9:], uint64(rec.Time))
	binary.LittleEndian.PutUint64(payload[17:], rec.Fingerprint)
	copy(payload[payloadHeaderLen:], rec.XML)
	binary.LittleEndian.PutUint32(buf[start:], uint32(n))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.ChecksumIEEE(payload))
	return buf
}

// errTorn reports a frame that does not decode: a truncated tail, a
// length prefix past the data, or a checksum mismatch. Readers treat
// it as "the log ends here".
var errTorn = errors.New("resultlog: torn or corrupt record")

// DecodeRecord decodes one record from the front of b, returning the
// record and the number of bytes consumed. A short, oversized, or
// checksum-failing frame returns errTorn.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < recHeaderLen {
		return Record{}, 0, errTorn
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n < payloadHeaderLen || n > maxRecordBytes || len(b) < recHeaderLen+n {
		return Record{}, 0, errTorn
	}
	payload := b[recHeaderLen : recHeaderLen+n]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[4:]) {
		return Record{}, 0, errTorn
	}
	rec := Record{
		Kind:        payload[0],
		Version:     binary.LittleEndian.Uint64(payload[1:]),
		Time:        int64(binary.LittleEndian.Uint64(payload[9:])),
		Fingerprint: binary.LittleEndian.Uint64(payload[17:]),
	}
	if n > payloadHeaderLen {
		rec.XML = append([]byte(nil), payload[payloadHeaderLen:]...)
		rec.XML = rec.XML[:n-payloadHeaderLen]
	}
	return rec, recHeaderLen + n, nil
}

// FsyncMode selects how appended records reach stable storage.
type FsyncMode int

const (
	// FsyncBatch (default) fsyncs dirty logs from a background syncer
	// every Options.FsyncInterval: the publish path never waits on the
	// disk, and a power loss costs at most one interval of appends.
	FsyncBatch FsyncMode = iota
	// FsyncAlways fsyncs inside every Append.
	FsyncAlways
	// FsyncOff never fsyncs; the OS flushes on its own schedule.
	FsyncOff
)

// ParseFsyncMode maps the -wal-fsync flag values onto a mode.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch strings.ToLower(s) {
	case "", "batch":
		return FsyncBatch, nil
	case "always":
		return FsyncAlways, nil
	case "off", "none":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("resultlog: unknown fsync mode %q (want batch, always, or off)", s)
}

// Options tunes a Store.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 4 MiB).
	SegmentBytes int64
	// MaxSegments caps how many segments a wrapper's log keeps; the
	// oldest are deleted at rotation (default 8, minimum 2 so the
	// active segment never stands alone against retention).
	MaxSegments int
	// MaxAge drops closed segments whose newest record is older than
	// this (0 = no age-based truncation).
	MaxAge time.Duration
	// CompactSegments triggers checkpoint compaction once a log holds at
	// least this many closed segments (Log.NeedsCompaction): the caller
	// writes the latest snapshot as a KindCheckpoint record into a fresh
	// segment and every older closed segment is deleted, so restore cost
	// stops growing with wrapper lifetime. 0 disables compaction and
	// leaves retention to MaxSegments/MaxAge alone.
	CompactSegments int
	// Fsync selects the durability mode (default FsyncBatch).
	Fsync FsyncMode
	// FsyncInterval is the batch syncer period (default 50ms).
	FsyncInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.MaxSegments <= 0 {
		o.MaxSegments = 8
	}
	if o.MaxSegments < 2 {
		o.MaxSegments = 2
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 50 * time.Millisecond
	}
	return o
}

// Stats are the store-wide persistence counters, reported on /statusz
// as the "persistence" block.
type Stats struct {
	// Wrappers is the number of open per-wrapper logs.
	Wrappers int `json:"wrappers"`
	// Segments is the total segment-file count across open logs.
	Segments int `json:"segments"`
	// Appends counts snapshot records written; NoopAppends counts
	// version-only records for suppressed no-op deliveries.
	Appends     uint64 `json:"appends"`
	NoopAppends uint64 `json:"noop_appends"`
	// BytesAppended is the total bytes written to segment files.
	BytesAppended uint64 `json:"bytes_appended"`
	// Fsyncs counts file syncs; BatchedSyncs counts syncer passes that
	// flushed at least one dirty log (Fsync == FsyncBatch only).
	Fsyncs       uint64 `json:"fsyncs"`
	BatchedSyncs uint64 `json:"batched_syncs"`
	// Rotations counts segment rollovers; TruncatedSegments counts
	// segments deleted by size/age retention or compaction;
	// Compactions counts checkpoint compactions (Log.Compact).
	Rotations         uint64 `json:"rotations"`
	TruncatedSegments uint64 `json:"truncated_segments"`
	Compactions       uint64 `json:"compactions"`
	// ReplayedRecords counts records read back during recovery;
	// TornRecords counts frames dropped as truncated or corrupt.
	ReplayedRecords uint64 `json:"replayed_records"`
	TornRecords     uint64 `json:"torn_records"`
	// AppendErrors counts failed appends; LastError is the most recent
	// failure (appends keep going — a full disk degrades durability,
	// not delivery).
	AppendErrors uint64 `json:"append_errors"`
	LastError    string `json:"last_error,omitempty"`
}

// Store is the root of the durable delivery state: one directory per
// wrapper, each holding WAL segments and JSON sidecars.
type Store struct {
	dir  string
	opts Options

	mu     sync.Mutex
	logs   map[string]*Log
	closed bool

	// syncer state (FsyncBatch).
	stopSync chan struct{}
	syncDone chan struct{}

	appends     atomic.Uint64
	noops       atomic.Uint64
	bytes       atomic.Uint64
	fsyncs      atomic.Uint64
	batchSyncs  atomic.Uint64
	rotations   atomic.Uint64
	truncated   atomic.Uint64
	compactions atomic.Uint64
	replayed    atomic.Uint64
	torn        atomic.Uint64
	appendErrs  atomic.Uint64
	lastErrMu   sync.Mutex
	lastErrText string
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts.withDefaults(), logs: map[string]*Log{}}
	if s.opts.Fsync == FsyncBatch {
		s.stopSync = make(chan struct{})
		s.syncDone = make(chan struct{})
		go s.syncLoop()
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// validName rejects names that would escape the store directory.
func validName(name string) error {
	if name == "" || name == "." || name == ".." ||
		strings.ContainsAny(name, `/\`) {
		return fmt.Errorf("resultlog: invalid wrapper name %q", name)
	}
	return nil
}

// Names lists the wrappers with on-disk state, sorted.
func (s *Store) Names() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// Log opens (or creates) the named wrapper's log. Repeated calls
// return the same *Log.
func (s *Store) Log(name string) (*Log, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("resultlog: store closed")
	}
	if l, ok := s.logs[name]; ok {
		return l, nil
	}
	l, err := openLog(s, filepath.Join(s.dir, name))
	if err != nil {
		return nil, err
	}
	s.logs[name] = l
	return l, nil
}

// Remove closes and deletes all state for one wrapper (a retired
// dynamic wrapper's history does not outlive its registration).
func (s *Store) Remove(name string) error {
	if err := validName(name); err != nil {
		return err
	}
	s.mu.Lock()
	l := s.logs[name]
	delete(s.logs, name)
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	return os.RemoveAll(filepath.Join(s.dir, name))
}

// SaveMeta atomically writes v as indented JSON to the named sidecar
// file (write to a temp file, fsync, rename) in the wrapper's dir.
func (s *Store) SaveMeta(name, file string, v any) error {
	if err := validName(name); err != nil {
		return err
	}
	if err := validName(file); err != nil {
		return err
	}
	dir := filepath.Join(s.dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, file+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if s.opts.Fsync != FsyncOff {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, file))
}

// LoadMeta reads a sidecar written by SaveMeta. A missing file returns
// os.ErrNotExist.
func (s *Store) LoadMeta(name, file string, v any) error {
	if err := validName(name); err != nil {
		return err
	}
	data, err := os.ReadFile(filepath.Join(s.dir, name, file))
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// Sync flushes every open log to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	logs := make([]*Log, 0, len(s.logs))
	for _, l := range s.logs {
		logs = append(logs, l)
	}
	s.mu.Unlock()
	var first error
	for _, l := range logs {
		if err := l.Sync(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close stops the batch syncer, flushes, and closes every log.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	logs := make([]*Log, 0, len(s.logs))
	for _, l := range s.logs {
		logs = append(logs, l)
	}
	s.mu.Unlock()
	if s.stopSync != nil {
		close(s.stopSync)
		<-s.syncDone
	}
	var first error
	for _, l := range logs {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// syncLoop is the batch syncer: every FsyncInterval it fsyncs the logs
// that appended since the last pass.
func (s *Store) syncLoop() {
	defer close(s.syncDone)
	t := time.NewTicker(s.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopSync:
			return
		case <-t.C:
			s.mu.Lock()
			logs := make([]*Log, 0, len(s.logs))
			for _, l := range s.logs {
				logs = append(logs, l)
			}
			s.mu.Unlock()
			flushed := false
			for _, l := range logs {
				if l.dirty.Swap(false) {
					l.Sync()
					flushed = true
				}
			}
			if flushed {
				s.batchSyncs.Add(1)
			}
		}
	}
}

func (s *Store) noteErr(err error) {
	s.appendErrs.Add(1)
	s.lastErrMu.Lock()
	s.lastErrText = err.Error()
	s.lastErrMu.Unlock()
}

// Stats returns the store-wide counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	wrappers := len(s.logs)
	segs := 0
	for _, l := range s.logs {
		l.mu.Lock()
		segs += len(l.closedSegs)
		if l.active != nil {
			segs++
		}
		l.mu.Unlock()
	}
	s.mu.Unlock()
	s.lastErrMu.Lock()
	lastErr := s.lastErrText
	s.lastErrMu.Unlock()
	return Stats{
		Wrappers:          wrappers,
		Segments:          segs,
		Appends:           s.appends.Load(),
		NoopAppends:       s.noops.Load(),
		BytesAppended:     s.bytes.Load(),
		Fsyncs:            s.fsyncs.Load(),
		BatchedSyncs:      s.batchSyncs.Load(),
		Rotations:         s.rotations.Load(),
		TruncatedSegments: s.truncated.Load(),
		Compactions:       s.compactions.Load(),
		ReplayedRecords:   s.replayed.Load(),
		TornRecords:       s.torn.Load(),
		AppendErrors:      s.appendErrs.Load(),
		LastError:         lastErr,
	}
}

// ---------------------------------------------------------------------
// Per-wrapper log.

// segInfo indexes one closed segment for cursor reads and retention.
type segInfo struct {
	id       uint64
	path     string
	size     int64
	firstVer uint64 // 0 when the segment holds no decodable records
	lastVer  uint64
	lastTime int64
}

// Log is one wrapper's append-only record sequence, split across
// rotated segment files.
type Log struct {
	store *Store
	dir   string

	mu         sync.Mutex
	closedSegs []segInfo
	active     *os.File
	activeInfo segInfo
	lastVer    uint64
	buf        []byte // append frame scratch, reused
	closed     bool

	dirty atomic.Bool // appended since the last fsync
}

// segName formats a segment file name.
func segName(id uint64) string { return fmt.Sprintf("%08d.wal", id) }

// openLog opens a wrapper directory, indexes its segments (scanning
// each once to find version bounds and the true record-aligned size),
// and opens the newest segment for appending.
func openLog(s *Store, dir string) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segInfo
	for _, e := range entries {
		var id uint64
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".wal") {
			continue
		}
		if _, err := fmt.Sscanf(e.Name(), "%08d.wal", &id); err != nil || id == 0 {
			continue
		}
		segs = append(segs, segInfo{id: id, path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].id < segs[j].id })
	l := &Log{store: s, dir: dir}
	for i := range segs {
		if err := l.indexSegment(&segs[i]); err != nil {
			return nil, err
		}
	}
	nextID := uint64(1)
	if n := len(segs); n > 0 {
		nextID = segs[n-1].id
		l.lastVer = segs[n-1].lastVer
		for _, seg := range segs {
			if seg.lastVer > l.lastVer {
				l.lastVer = seg.lastVer
			}
		}
		l.closedSegs = segs[:n-1]
		l.activeInfo = segs[n-1]
	} else {
		l.activeInfo = segInfo{id: nextID, path: filepath.Join(dir, segName(nextID))}
	}
	// Truncate a torn tail away so appends start on a record boundary.
	f, err := os.OpenFile(l.activeInfo.path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(l.activeInfo.size); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	l.active = f
	return l, nil
}

// indexSegment scans one segment, filling its version bounds and its
// record-aligned size (bytes past the last good record are torn).
func (l *Log) indexSegment(seg *segInfo) error {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return err
	}
	off := 0
	for off < len(data) {
		rec, n, err := DecodeRecord(data[off:])
		if err != nil {
			l.store.torn.Add(1)
			break
		}
		if seg.firstVer == 0 {
			seg.firstVer = rec.Version
		}
		seg.lastVer = rec.Version
		seg.lastTime = rec.Time
		off += n
	}
	seg.size = int64(off)
	return nil
}

// LastVersion returns the newest logged delivery version (0 when the
// log is empty).
func (l *Log) LastVersion() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastVer
}

// Append writes one record. The write reaches the OS before Append
// returns; whether it reaches the platter too depends on the store's
// fsync mode. Versions must be strictly increasing.
func (l *Log) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("resultlog: log closed")
	}
	if rec.Version <= l.lastVer {
		return fmt.Errorf("resultlog: version %d not after %d", rec.Version, l.lastVer)
	}
	if rec.Time == 0 {
		rec.Time = time.Now().UnixNano()
	}
	l.buf = AppendRecord(l.buf[:0], rec)
	if _, err := l.active.Write(l.buf); err != nil {
		l.store.noteErr(err)
		return err
	}
	if l.activeInfo.firstVer == 0 {
		l.activeInfo.firstVer = rec.Version
	}
	l.activeInfo.lastVer = rec.Version
	l.activeInfo.lastTime = rec.Time
	l.activeInfo.size += int64(len(l.buf))
	l.lastVer = rec.Version
	if rec.Kind == KindNoop {
		l.store.noops.Add(1)
	} else {
		l.store.appends.Add(1)
	}
	l.store.bytes.Add(uint64(len(l.buf)))
	switch l.store.opts.Fsync {
	case FsyncAlways:
		if err := l.active.Sync(); err != nil {
			l.store.noteErr(err)
			return err
		}
		l.store.fsyncs.Add(1)
	case FsyncBatch:
		l.dirty.Store(true)
	}
	if l.activeInfo.size >= l.store.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.store.noteErr(err)
			return err
		}
	}
	return nil
}

// rotateLocked closes the active segment, opens the next one, and
// applies count/age retention to the closed set.
func (l *Log) rotateLocked() error {
	if l.store.opts.Fsync != FsyncOff {
		if err := l.active.Sync(); err != nil {
			return err
		}
		l.store.fsyncs.Add(1)
	}
	if err := l.active.Close(); err != nil {
		return err
	}
	l.closedSegs = append(l.closedSegs, l.activeInfo)
	next := segInfo{id: l.activeInfo.id + 1}
	next.path = filepath.Join(l.dir, segName(next.id))
	f, err := os.OpenFile(next.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.active = f
	l.activeInfo = next
	l.store.rotations.Add(1)
	l.truncateLocked()
	return nil
}

// truncateLocked deletes the oldest closed segments beyond the count
// cap, and any whose newest record is past the age bound.
func (l *Log) truncateLocked() {
	opts := l.store.opts
	drop := 0
	for drop < len(l.closedSegs) {
		seg := l.closedSegs[drop]
		over := len(l.closedSegs)-drop+1 > opts.MaxSegments
		old := opts.MaxAge > 0 && seg.lastTime > 0 &&
			time.Since(time.Unix(0, seg.lastTime)) > opts.MaxAge
		if !over && !old {
			break
		}
		os.Remove(seg.path)
		l.store.truncated.Add(1)
		drop++
	}
	if drop > 0 {
		l.closedSegs = append([]segInfo(nil), l.closedSegs[drop:]...)
	}
}

// NeedsCompaction reports whether the log has accumulated at least
// Options.CompactSegments closed segments (always false when the
// policy is off). The caller responds by invoking Compact with the
// latest snapshot; polling this per tick is a pair of cheap loads.
func (l *Log) NeedsCompaction() bool {
	n := l.store.opts.CompactSegments
	if n <= 0 {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.closedSegs) >= n
}

// Compact collapses the log's history into one checkpoint: the given
// record — the latest published snapshot, restated — is written as a
// KindCheckpoint into a fresh segment, and every older closed segment
// is deleted. Replay afterwards starts at the checkpoint, so restore
// cost is bounded by the live state instead of the wrapper's lifetime.
// rec.Version must be the log's last version (the checkpoint restates
// it) or newer; rec.XML and rec.Fingerprint carry the snapshot. The
// checkpoint is fsynced before any segment is deleted (unless the
// store runs FsyncOff), so a crash mid-compaction never loses the only
// copy of the state.
func (l *Log) Compact(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("resultlog: log closed")
	}
	if rec.Version < l.lastVer {
		return fmt.Errorf("resultlog: checkpoint version %d behind %d", rec.Version, l.lastVer)
	}
	rec.Kind = KindCheckpoint
	if rec.Time == 0 {
		rec.Time = time.Now().UnixNano()
	}
	if l.activeInfo.size > 0 {
		if err := l.rotateLocked(); err != nil {
			l.store.noteErr(err)
			return err
		}
	}
	l.buf = AppendRecord(l.buf[:0], rec)
	if _, err := l.active.Write(l.buf); err != nil {
		l.store.noteErr(err)
		return err
	}
	if l.activeInfo.firstVer == 0 {
		l.activeInfo.firstVer = rec.Version
	}
	l.activeInfo.lastVer = rec.Version
	l.activeInfo.lastTime = rec.Time
	l.activeInfo.size += int64(len(l.buf))
	l.lastVer = rec.Version
	l.store.appends.Add(1)
	l.store.bytes.Add(uint64(len(l.buf)))
	if l.store.opts.Fsync != FsyncOff {
		if err := l.active.Sync(); err != nil {
			l.store.noteErr(err)
			return err
		}
		l.store.fsyncs.Add(1)
	}
	for _, seg := range l.closedSegs {
		os.Remove(seg.path)
		l.store.truncated.Add(1)
	}
	l.closedSegs = nil
	l.store.compactions.Add(1)
	return nil
}

// Sync flushes the active segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.active == nil {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		l.store.noteErr(err)
		return err
	}
	l.store.fsyncs.Add(1)
	return nil
}

// Close flushes and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.active == nil {
		return nil
	}
	if l.store.opts.Fsync != FsyncOff {
		l.active.Sync()
	}
	return l.active.Close()
}

// segments snapshots the segment list, oldest first, active last.
func (l *Log) segments() []segInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := append([]segInfo(nil), l.closedSegs...)
	if l.activeInfo.size > 0 || l.activeInfo.firstVer > 0 {
		out = append(out, l.activeInfo)
	}
	return out
}

// Replay streams every decodable record oldest→newest. A torn or
// corrupt frame ends that segment's replay (counted) but later
// segments still replay; fn returning an error aborts.
func (l *Log) Replay(fn func(Record) error) error {
	return l.replayFrom(0, fn)
}

// Since streams the records with Version > after, oldest→newest —
// the cursor read behind SSE Last-Event-ID replay and webhook
// catch-up. Segments wholly at or before the cursor are skipped
// without being read.
func (l *Log) Since(after uint64, fn func(Record) error) error {
	return l.replayFrom(after, fn)
}

func (l *Log) replayFrom(after uint64, fn func(Record) error) error {
	for _, seg := range l.segments() {
		if seg.lastVer <= after {
			continue
		}
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return err
		}
		if int64(len(data)) > seg.size {
			data = data[:seg.size]
		}
		off := 0
		for off < len(data) {
			rec, n, err := DecodeRecord(data[off:])
			if err != nil {
				l.store.torn.Add(1)
				break
			}
			off += n
			l.store.replayed.Add(1)
			if rec.Version <= after {
				continue
			}
			if err := fn(rec); err != nil {
				return err
			}
		}
	}
	return nil
}
