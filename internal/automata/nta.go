package automata

import (
	"math/bits"
)

// NTA is a nondeterministic bottom-up tree automaton over the binary
// encoding. Transitions map a configuration to a set of possible states.
// NTAs arise naturally when translating formulas (disjunction,
// existential set quantification); Determinize converts them to DTAs by
// the subset construction so that the boolean operations and the datalog
// compilation (which need determinism) apply.
type NTA struct {
	NumStates int
	Alphabet  []string
	// Trans maps configurations to candidate target states.
	Trans map[TransKey][]int
	// Accept marks accepting states.
	Accept []bool
}

// NewNTA returns an empty nondeterministic automaton.
func NewNTA(n int, alphabet ...string) *NTA {
	return &NTA{NumStates: n, Alphabet: alphabet, Trans: map[TransKey][]int{}, Accept: make([]bool, n)}
}

// AddTrans adds target to the transition set of the configuration.
func (a *NTA) AddTrans(l, r int, label string, marked bool, target int) {
	k := TransKey{l, r, label, marked}
	a.Trans[k] = append(a.Trans[k], target)
}

// Determinize performs the subset construction, producing an equivalent
// deterministic automaton. States of the result are packed bitsets of
// NTA states (one word per 64 states); the empty set becomes the
// (rejecting) sink. Worst-case exponential, as it must be.
func (a *NTA) Determinize() *DTA {
	stride := (a.NumStates + 63) / 64
	if stride == 0 {
		stride = 1
	}
	encode := func(set []uint64) string {
		b := make([]byte, 0, stride*8)
		for _, w := range set {
			b = append(b,
				byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
				byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
		}
		return string(b)
	}
	// Subset states discovered so far; index 0 is the empty set (sink).
	var sets [][]uint64
	index := map[string]int{}
	intern := func(set []uint64) int {
		k := encode(set)
		if i, ok := index[k]; ok {
			return i
		}
		i := len(sets)
		index[k] = i
		sets = append(sets, append([]uint64{}, set...))
		return i
	}
	sink := intern(make([]uint64, stride))

	labels := append([]string{}, a.Alphabet...)
	labels = append(labels, Wildcard)

	// forEach visits the member states of a subset in ascending order,
	// or just Absent for an absent side.
	forEach := func(set []uint64, absent bool, f func(int)) {
		if absent {
			f(Absent)
			return
		}
		for wi, w := range set {
			for w != 0 {
				f(wi<<6 + bits.TrailingZeros64(w))
				w &= w - 1
			}
		}
	}

	// step computes the subset reached from subset-states L and R
	// (Absent maps to "absent").
	step := func(L, R []uint64, lAbsent, rAbsent bool, label string, marked bool) []uint64 {
		out := make([]uint64, stride)
		forEach(L, lAbsent, func(l int) {
			forEach(R, rAbsent, func(r int) {
				for _, q := range a.Trans[TransKey{l, r, label, marked}] {
					out[q>>6] |= 1 << (uint(q) & 63)
				}
			})
		})
		return out
	}

	d := NewDTA(0, a.Alphabet...)
	d.Sink = sink
	d.Trans = map[TransKey]int{}
	// Worklist over discovered subset states (plus Absent) combined
	// pairwise.
	for changed := true; changed; {
		changed = false
		// Snapshot count; new sets found during the sweep trigger another
		// sweep.
		cnt := len(sets)
		// Enumerate (l, r) over {Absent} ∪ discovered sets.
		for li := -1; li < cnt; li++ {
			for ri := -1; ri < cnt; ri++ {
				for _, lbl := range labels {
					for _, marked := range []bool{false, true} {
						var L, R []uint64
						lAbsent := li == -1
						rAbsent := ri == -1
						if !lAbsent {
							L = sets[li]
						}
						if !rAbsent {
							R = sets[ri]
						}
						target := step(L, R, lAbsent, rAbsent, lbl, marked)
						ti := intern(target)
						lKey, rKey := li, ri
						if lAbsent {
							lKey = Absent
						}
						if rAbsent {
							rKey = Absent
						}
						k := TransKey{lKey, rKey, lbl, marked}
						if prev, ok := d.Trans[k]; !ok || prev != ti {
							d.Trans[k] = ti
							if ti >= cnt {
								changed = true
							}
						}
					}
				}
			}
		}
		if len(sets) > cnt {
			changed = true
		}
	}
	d.NumStates = len(sets)
	d.Accept = make([]bool, len(sets))
	for i, set := range sets {
		forEach(set, false, func(q int) {
			if a.Accept[q] {
				d.Accept[i] = true
			}
		})
	}
	return d
}

// Complement returns an automaton accepting exactly the trees the
// (deterministic, complete) input rejects. Unary queries are dualized
// too: the complement selects exactly the nodes the original did not.
func (a *DTA) Complement() *DTA {
	c := &DTA{NumStates: a.NumStates, Alphabet: a.Alphabet, Trans: a.Trans, Sink: a.Sink, Accept: make([]bool, a.NumStates)}
	for i := range c.Accept {
		c.Accept[i] = !a.Accept[i]
	}
	return c
}

// Product combines two deterministic automata over the same alphabet
// into one running both in parallel; accept combines component
// acceptance (e.g. AND for intersection, OR for union).
func Product(a, b *DTA, accept func(bool, bool) bool) *DTA {
	alpha := unionAlphabet(a.Alphabet, b.Alphabet)
	n := a.NumStates * b.NumStates
	p := NewDTA(n, alpha...)
	pair := func(qa, qb int) int { return qa*b.NumStates + qb }
	p.Sink = pair(a.Sink, b.Sink)
	states := func(m int) []int {
		out := []int{Absent}
		for q := 0; q < m; q++ {
			out = append(out, q)
		}
		return out
	}
	labels := append([]string{}, alpha...)
	labels = append(labels, Wildcard)
	split := func(q int) (int, int) {
		return q / b.NumStates, q % b.NumStates
	}
	for _, l := range states(n) {
		for _, r := range states(n) {
			la, lb, ra, rb := Absent, Absent, Absent, Absent
			if l != Absent {
				la, lb = split(l)
			}
			if r != Absent {
				ra, rb = split(r)
			}
			for _, lbl := range labels {
				for _, marked := range []bool{false, true} {
					qa := a.Step(la, ra, lbl, marked)
					qb := b.Step(lb, rb, lbl, marked)
					p.SetTrans(l, r, lbl, marked, pair(qa, qb))
				}
			}
		}
	}
	p.Accept = make([]bool, n)
	for qa := 0; qa < a.NumStates; qa++ {
		for qb := 0; qb < b.NumStates; qb++ {
			p.Accept[pair(qa, qb)] = accept(a.Accept[qa], b.Accept[qb])
		}
	}
	return p
}

// Intersect returns the automaton for the conjunction of two queries.
func Intersect(a, b *DTA) *DTA { return Product(a, b, func(x, y bool) bool { return x && y }) }

// Union returns the automaton for the disjunction of two queries.
func Union(a, b *DTA) *DTA { return Product(a, b, func(x, y bool) bool { return x || y }) }

func unionAlphabet(a, b []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range a {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, s := range b {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
