package automata

// This file provides ready-made query automata for common MSO queries on
// trees. They serve three purposes: unit-test subjects, building blocks
// for the boolean operations, and the workloads of experiment E5
// (automaton → monadic datalog compilation).

// HasAncestorLabel returns a query automaton selecting every node that
// has a proper-or-self ancestor labeled a (the semantics the Italic
// program of Example 2.1 aims at, here including the labeled node
// itself).
//
// States: 0 = subtree contains no mark; 1 = the mark is in this subtree
// and an a-labeled node lies on (or above, within the subtree) the path
// so far... concretely: 1 = mark seen, still waiting for an a-ancestor;
// 2 = mark seen and an a-node dominating it was found. Accept: 2.
func HasAncestorLabel(a string) *DTA {
	d := NewDTA(3, a)
	// Transition rules, reading l = state of first child (subtree below),
	// r = state of next sibling (rest of the forest to the right).
	// combine(l, r): where is the mark?
	states := []int{Absent, 0, 1, 2}
	for _, l := range states {
		for _, r := range states {
			for _, marked := range []bool{false, true} {
				for _, lbl := range []string{a, Wildcard} {
					// Mark status of the subtree rooted at this node in
					// the unranked tree = this node + first-child forest;
					// the next-sibling part passes through unchanged
					// unless it already carries the answer.
					var markHere int
					switch {
					case marked:
						markHere = 1
					case l == Absent:
						markHere = 0
					default:
						markHere = l
					}
					// The a-label promotes a pending mark below or at
					// this node.
					if lbl == a && markHere == 1 {
						markHere = 2
					}
					out := markHere
					// Merge with the sibling forest to the right; the
					// mark is unique, so at most one side is non-zero.
					if r != Absent && r > out {
						out = r
					}
					d.SetTrans(l, r, lbl, marked, out)
				}
			}
		}
	}
	d.Accept[2] = true
	d.Sink = 0
	return d
}

// LabelIs returns a query automaton selecting exactly the nodes labeled
// a — the MSO query label_a(x).
func LabelIs(a string) *DTA {
	// States: 0 = no mark in subtree; 1 = mark present and its node was
	// labeled a; 2 = mark present, label was not a.
	d := NewDTA(3, a)
	states := []int{Absent, 0, 1, 2}
	merge := func(x, y int) int {
		if x > 0 {
			return x
		}
		if y > 0 {
			return y
		}
		return 0
	}
	for _, l := range states {
		for _, r := range states {
			lv, rv := 0, 0
			if l != Absent {
				lv = l
			}
			if r != Absent {
				rv = r
			}
			for _, marked := range []bool{false, true} {
				for _, lbl := range []string{a, Wildcard} {
					self := 0
					if marked {
						if lbl == a {
							self = 1
						} else {
							self = 2
						}
					}
					d.SetTrans(l, r, lbl, marked, merge(merge(self, lv), rv))
				}
			}
		}
	}
	d.Accept[1] = true
	return d
}

// EvenBLeaves returns a query automaton selecting the marked node iff
// the whole tree has an even number of leaves labeled b. Parity counting
// is the classical example of an MSO query that is not expressible in
// first-order logic, which makes this automaton a good witness that the
// pipeline reaches genuinely-MSO expressiveness (Section 2.1's
// "expressiveness yardstick").
func EvenBLeaves() *DTA {
	// States track (parity of b-leaves in subtree-forest, mark seen):
	// 0=(even,no) 1=(odd,no) 2=(even,yes) 3=(odd,yes).
	d := NewDTA(4, "b")
	get := func(q int) (parity int, mark bool) {
		if q == Absent {
			return 0, false
		}
		return q & 1, q >= 2
	}
	mk := func(parity int, mark bool) int {
		q := parity
		if mark {
			q += 2
		}
		return q
	}
	states := []int{Absent, 0, 1, 2, 3}
	for _, l := range states {
		for _, r := range states {
			lp, lm := get(l)
			rp, rm := get(r)
			for _, marked := range []bool{false, true} {
				for _, lbl := range []string{"b", Wildcard} {
					p := lp ^ rp
					if lbl == "b" && l == Absent { // a b-labeled leaf
						p ^= 1
					}
					d.SetTrans(l, r, lbl, marked, mk(p, lm || rm || marked))
				}
			}
		}
	}
	// Accept iff mark seen and total parity even.
	d.Accept[2] = true
	return d
}

// FirstChildOfLabel selects nodes that are the first child of a node
// labeled a.
func FirstChildOfLabel(a string) *DTA {
	// States: 0 = no mark; 1 = mark on the root of this binary subtree
	// (i.e. the mark is exactly this node, pending parent inspection);
	// 2 = mark seen, resolved positively; 3 = mark seen, resolved
	// negatively. A parent resolves a pending state-1 first child.
	d := NewDTA(4, a)
	states := []int{Absent, 0, 1, 2, 3}
	val := func(q int) int {
		if q == Absent {
			return 0
		}
		return q
	}
	for _, l := range states {
		for _, r := range states {
			for _, marked := range []bool{false, true} {
				for _, lbl := range []string{a, Wildcard} {
					lv, rv := val(l), val(r)
					// A pending mark (state 1) is resolved exactly when
					// its binary subtree is consumed: via the firstchild
					// edge it IS a first child (check this node's label);
					// via the nextsibling edge it is a later sibling —
					// resolve negatively.
					if lv == 1 {
						if lbl == a {
							lv = 2
						} else {
							lv = 3
						}
					}
					if rv == 1 {
						rv = 3
					}
					out := 0
					switch {
					case marked:
						out = 1
					case lv >= 2:
						out = lv
					case rv >= 2:
						out = rv
					}
					d.SetTrans(l, r, lbl, marked, out)
				}
			}
		}
	}
	// At the root, a still-pending mark (state 1) means the marked node
	// had no parent or was not a first child along the chain... A
	// pending state at the root can only mean the root itself was marked
	// (no parent) — reject.
	d.Accept[2] = true
	return d
}
