// Package automata implements bottom-up tree automata over the binary
// firstchild/nextsibling encoding of unranked trees (Figure 1b), the
// boolean closure operations, subset-construction determinization, and —
// the ingredient of Theorem 2.5 — the compilation of automaton-defined
// unary queries into monadic datalog over τ_ur.
//
// Unary MSO queries over trees are, by the classical Thatcher–Wright /
// Doner correspondence the paper cites ([37, 10]), exactly the queries
// definable by tree automata with a marked alphabet: a query automaton
// runs over Σ × {0,1} and selects node x iff marking exactly x (and no
// other node) yields an accepted tree. Deterministic query automata are
// evaluated here in two linear passes (bottom-up states, top-down
// contexts), and CompileToDatalog emits an equivalent monadic datalog
// program of size O(|A|) — the effective content of Theorem 2.5 for the
// automata-presented form of MSO.
package automata

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/datalog"
	"repro/internal/dom"
)

// Absent is the pseudo-state fed to a transition when the corresponding
// binary-encoding child (first child or next sibling) does not exist.
const Absent = -1

// Wildcard is the pseudo-label matching any label outside the automaton's
// alphabet. Automata are total: every (l, r, label, marked) combination
// must resolve to a state, with Wildcard as the fallback label.
const Wildcard = "*"

// TransKey identifies one transition of a deterministic automaton:
// the states of the node's first child (L) and next sibling (R) in the
// binary encoding (Absent when missing), the node's label (Wildcard for
// out-of-alphabet), and whether the node carries the query mark.
type TransKey struct {
	L, R   int
	Label  string
	Marked bool
}

// DTA is a deterministic, complete bottom-up tree automaton over the
// binary encoding, with a marked alphabet for unary queries. An
// automaton used only as a tree acceptor simply ignores marking (its
// transition function treats Marked=true like Marked=false).
type DTA struct {
	// NumStates is the number of states, numbered 0..NumStates-1.
	NumStates int
	// Alphabet lists the labels the automaton distinguishes; all other
	// labels behave like Wildcard.
	Alphabet []string
	// Trans is the transition table. Lookup falls back to the Wildcard
	// label and then to the Sink state, so tables may be partial.
	Trans map[TransKey]int
	// Sink is the state used when no transition matches. It should be a
	// rejecting trap state in well-formed automata.
	Sink int
	// Accept marks the accepting states (acceptance is tested on the
	// state of the root node).
	Accept []bool
}

// NewDTA returns an automaton with n states, the given alphabet, an
// empty transition table and state 0 as sink.
func NewDTA(n int, alphabet ...string) *DTA {
	return &DTA{NumStates: n, Alphabet: alphabet, Trans: map[TransKey]int{}, Accept: make([]bool, n)}
}

// SetTrans adds a transition.
func (a *DTA) SetTrans(l, r int, label string, marked bool, to int) {
	a.Trans[TransKey{l, r, label, marked}] = to
}

// Step resolves the transition for the given configuration, falling back
// to the wildcard label and then the sink.
func (a *DTA) Step(l, r int, label string, marked bool) int {
	if !a.inAlphabet(label) {
		label = Wildcard
	}
	if to, ok := a.Trans[TransKey{l, r, label, marked}]; ok {
		return to
	}
	if to, ok := a.Trans[TransKey{l, r, Wildcard, marked}]; ok {
		return to
	}
	return a.Sink
}

func (a *DTA) inAlphabet(label string) bool {
	for _, x := range a.Alphabet {
		if x == label {
			return true
		}
	}
	return false
}

// Run computes the bottom-up run of the automaton on the (unmarked) tree
// and returns the state of every node. Children and next siblings always
// carry larger NodeIDs than the node that consumes their state (trees
// are built by appending), so a single descending id sweep sees every
// dependency first — no document-order sort is needed.
func (a *DTA) Run(t *dom.Tree) []int {
	states := make([]int, t.Size())
	for i := t.Size() - 1; i >= 0; i-- {
		n := dom.NodeID(i)
		l, r := Absent, Absent
		if c := t.FirstChild(n); c != dom.Nil {
			l = states[c]
		}
		if s := t.NextSibling(n); s != dom.Nil {
			r = states[s]
		}
		states[n] = a.Step(l, r, t.Label(n), false)
	}
	return states
}

// Accepts reports whether the automaton accepts the (unmarked) tree.
func (a *DTA) Accepts(t *dom.Tree) bool {
	if t.Size() == 0 {
		return false
	}
	states := a.Run(t)
	return a.Accept[states[t.Root()]]
}

// Select evaluates the unary query defined by the automaton: it returns
// all nodes x such that running the automaton on the tree with exactly x
// marked yields acceptance. The two-pass algorithm (bottom-up states,
// top-down context sets) runs in time O(|A| · |dom|).
func (a *DTA) Select(t *dom.Tree) []dom.NodeID {
	if t.Size() == 0 {
		return nil
	}
	states := a.Run(t)
	// ctx holds one packed state set per node (stride words each):
	// bit q of ctx[n] == true iff, assuming the binary-encoding subtree
	// rooted at n evaluates to state q (all nodes outside that subtree
	// keeping their unmarked states), the root state is accepting.
	stride := (a.NumStates + 63) / 64
	ctx := make([]uint64, t.Size()*stride)
	has := func(n dom.NodeID, q int) bool {
		return ctx[int(n)*stride+q>>6]&(1<<(uint(q)&63)) != 0
	}
	set := func(n dom.NodeID, q int) {
		ctx[int(n)*stride+q>>6] |= 1 << (uint(q) & 63)
	}
	root := t.Root()
	for q := 0; q < a.NumStates; q++ {
		if a.Accept[q] {
			set(root, q)
		}
	}
	// Top-down: parents and previous siblings always carry smaller ids,
	// so an ascending id sweep sees them first.
	for i := 0; i < t.Size(); i++ {
		n := dom.NodeID(i)
		l, r := Absent, Absent
		if c := t.FirstChild(n); c != dom.Nil {
			l = states[c]
		}
		if s := t.NextSibling(n); s != dom.Nil {
			r = states[s]
		}
		label := t.Label(n)
		if c := t.FirstChild(n); c != dom.Nil {
			for q := 0; q < a.NumStates; q++ {
				if has(n, a.Step(q, r, label, false)) {
					set(c, q)
				}
			}
		}
		if s := t.NextSibling(n); s != dom.Nil {
			for q := 0; q < a.NumStates; q++ {
				if has(n, a.Step(l, q, label, false)) {
					set(s, q)
				}
			}
		}
	}
	var out []dom.NodeID
	for i := 0; i < t.Size(); i++ {
		n := dom.NodeID(i)
		l, r := Absent, Absent
		if c := t.FirstChild(n); c != dom.Nil {
			l = states[c]
		}
		if s := t.NextSibling(n); s != dom.Nil {
			r = states[s]
		}
		if has(n, a.Step(l, r, t.Label(n), true)) {
			out = append(out, n)
		}
	}
	return out
}

// SelectNaive evaluates the query by the definition: for each node,
// re-run the automaton with that node marked. O(|A| · |dom|²); used as a
// test oracle for Select and for the compiled datalog program.
func (a *DTA) SelectNaive(t *dom.Tree) []dom.NodeID {
	var out []dom.NodeID
	for i := 0; i < t.Size(); i++ {
		mark := dom.NodeID(i)
		states := make([]int, t.Size())
		for j := t.Size() - 1; j >= 0; j-- {
			n := dom.NodeID(j)
			l, r := Absent, Absent
			if c := t.FirstChild(n); c != dom.Nil {
				l = states[c]
			}
			if s := t.NextSibling(n); s != dom.Nil {
				r = states[s]
			}
			states[n] = a.Step(l, r, t.Label(n), n == mark)
		}
		if a.Accept[states[t.Root()]] {
			out = append(out, mark)
		}
	}
	return out
}

// stateName renders a state id for predicate names, mapping Absent to
// "bot".
func stateName(q int) string {
	if q == Absent {
		return "bot"
	}
	return fmt.Sprintf("%d", q)
}

// CompileToDatalog translates the unary query defined by the automaton
// into an equivalent monadic datalog program over τ_ur with query
// predicate queryPred (the Proposition 2.2 / Theorem 2.5 direction
// "MSO ⊆ monadic datalog", for automata-presented MSO queries).
//
// The program has size O(|A|) — independent of any tree — and uses the
// predicate families
//
//	fcstate_q(x): the binary-encoding left child of x (= first child)
//	              has run state q, or q = bot and x is a leaf,
//	nsstate_q(x): likewise for the right child (= next sibling),
//	state_q(x):   the run state of x is q,
//	ctx_q(x):     if x's subtree evaluated to q the tree would accept.
//
// Evaluating the compiled program with mdatalog.Eval therefore realizes
// MSO query evaluation in time O(|A| · |dom|).
func (a *DTA) CompileToDatalog(queryPred string) *datalog.Program {
	var rules []datalog.Rule
	x := datalog.Var("X")
	x0 := datalog.Var("X0")
	unary := func(pred string, v datalog.Term) datalog.Atom {
		return datalog.Atom{Pred: pred, Args: []datalog.Term{v}}
	}
	binary := func(pred string, u, v datalog.Term) datalog.Atom {
		return datalog.Atom{Pred: pred, Args: []datalog.Term{u, v}}
	}
	rule := func(head datalog.Atom, body ...datalog.Atom) {
		rules = append(rules, datalog.Rule{Head: head, Body: body})
	}

	// fcstate_bot(x) <- leaf(x).   nsstate_bot(x) <- lastsibling(x) | root(x).
	rule(unary("fcstate_bot", x), unary("leaf", x))
	rule(unary("nsstate_bot", x), unary("lastsibling", x))
	rule(unary("nsstate_bot", x), unary("root", x))
	for q := 0; q < a.NumStates; q++ {
		// fcstate_q(x) <- state_q(x0), firstchild(x, x0) — expressed with
		// the atom in the (x, x0) orientation; the TMNF rewriter handles
		// both directions.
		rule(unary("fcstate_"+stateName(q), x), unary("state_"+stateName(q), x0), binary("firstchild", x, x0))
		rule(unary("nsstate_"+stateName(q), x), unary("state_"+stateName(q), x0), binary("nextsibling", x, x0))
	}

	// Enumerate the (finite) relevant configurations: l, r in
	// {Absent, 0..n-1}, label in the alphabet. Rules for the wildcard
	// label would need "label not in alphabet", which positive monadic
	// datalog cannot express directly, so CompileToDatalog requires the
	// alphabet to cover every label of the trees it runs on — use
	// CompleteAlphabetFor to extend it; the wildcard transitions then
	// never fire and are omitted.
	labels := append([]string{}, a.Alphabet...)
	states := []int{Absent}
	for q := 0; q < a.NumStates; q++ {
		states = append(states, q)
	}
	for _, l := range states {
		for _, r := range states {
			for _, lbl := range labels {
				for _, marked := range []bool{false, true} {
					q := a.Step(l, r, lbl, marked)
					// state rule (unmarked only: the base run).
					var body []datalog.Atom
					body = append(body, unary("fcstate_"+stateName(l), x))
					body = append(body, unary("nsstate_"+stateName(r), x))
					body = append(body, unary("label_"+lbl, x))
					if !marked {
						rule(unary("state_"+stateName(q), x), body...)
					} else {
						// Selection rule: selected(x) <- ctx_q(x), body.
						selBody := append([]datalog.Atom{unary("ctx_"+stateName(q), x)}, body...)
						rule(unary(queryPred, x), selBody...)
					}
					if !marked {
						// Context propagation mirrors the top-down pass
						// of Select: the hypothesis state of the child
						// being propagated to is NOT constrained by the
						// actual run — only the other side and the label
						// are. ctx_l(firstchild of x) holds if
						// ctx_{δ(l, r_actual, a)}(x); dually for the next
						// sibling.
						if l != Absent {
							hf := fmt.Sprintf("hf_%s_%s_%s_%s", stateName(l), stateName(r), lbl, stateName(q))
							rule(unary(hf, x),
								unary("ctx_"+stateName(q), x),
								unary("nsstate_"+stateName(r), x),
								unary("label_"+lbl, x))
							rule(unary("ctx_"+stateName(l), x), unary(hf, x0), binary("firstchild", x0, x))
						}
						if r != Absent {
							hn := fmt.Sprintf("hn_%s_%s_%s_%s", stateName(l), stateName(r), lbl, stateName(q))
							rule(unary(hn, x),
								unary("ctx_"+stateName(q), x),
								unary("fcstate_"+stateName(l), x),
								unary("label_"+lbl, x))
							rule(unary("ctx_"+stateName(r), x), unary(hn, x0), binary("nextsibling", x0, x))
						}
					}
				}
			}
		}
	}
	// Root context: ctx_q(x) <- root(x) for accepting q.
	for q := 0; q < a.NumStates; q++ {
		if a.Accept[q] {
			rule(unary("ctx_"+stateName(q), x), unary("root", x))
		}
	}
	return pruneUndefined(&datalog.Program{Rules: rules}, queryPred)
}

// pruneUndefined removes rules whose bodies mention intensional
// predicates with no defining rule (e.g. states unreachable in unmarked
// runs); such atoms are unsatisfiable, so removal preserves semantics.
// Iterates to fixpoint because pruning can orphan further predicates. It
// always keeps at least one defining context for queryPred by emitting,
// if everything was pruned, the empty program containing a single
// vacuous rule — mdatalog then yields an empty selection.
func pruneUndefined(p *datalog.Program, queryPred string) *datalog.Program {
	rules := p.Rules
	for {
		defined := map[string]bool{}
		for _, r := range rules {
			defined[r.Head.Pred] = true
		}
		var kept []datalog.Rule
		for _, r := range rules {
			ok := true
			for _, a := range r.Body {
				if len(a.Args) == 1 && !defined[a.Pred] && !mdatalogIsExtensional(a.Pred) {
					ok = false
					break
				}
			}
			if ok {
				kept = append(kept, r)
			}
		}
		if len(kept) == len(rules) {
			break
		}
		rules = kept
	}
	hasQuery := false
	for _, r := range rules {
		if r.Head.Pred == queryPred {
			hasQuery = true
		}
	}
	if !hasQuery {
		// Keep the program well-formed: an unsatisfiable definition.
		rules = append(rules, datalog.Rule{
			Head: datalog.Atom{Pred: queryPred, Args: []datalog.Term{datalog.Var("X")}},
			Body: []datalog.Atom{
				{Pred: "root", Args: []datalog.Term{datalog.Var("X")}},
				{Pred: "__never", Args: []datalog.Term{datalog.Var("X")}},
			},
		})
		rules = append(rules, datalog.Rule{
			Head: datalog.Atom{Pred: "__never", Args: []datalog.Term{datalog.Var("X")}},
			Body: []datalog.Atom{
				{Pred: "__never", Args: []datalog.Term{datalog.Var("X")}},
			},
		})
	}
	return &datalog.Program{Rules: rules}
}

func mdatalogIsExtensional(pred string) bool {
	switch pred {
	case "root", "leaf", "lastsibling", "firstsibling", "textnode":
		return true
	}
	return strings.HasPrefix(pred, "label_")
}

// CompleteAlphabetFor returns a copy of the automaton whose alphabet
// covers every label occurring in t (new labels behave like the wildcard
// did). CompileToDatalog requires a complete alphabet; see its comment.
func (a *DTA) CompleteAlphabetFor(t *dom.Tree) *DTA {
	seen := map[string]bool{}
	for _, l := range a.Alphabet {
		seen[l] = true
	}
	cp := &DTA{NumStates: a.NumStates, Alphabet: append([]string{}, a.Alphabet...), Trans: a.Trans, Sink: a.Sink, Accept: a.Accept}
	var extra []string
	t.Walk(func(n dom.NodeID) {
		l := t.Label(n)
		if !seen[l] {
			seen[l] = true
			extra = append(extra, l)
		}
	})
	sort.Strings(extra)
	cp.Alphabet = append(cp.Alphabet, extra...)
	return cp
}

// String summarizes the automaton.
func (a *DTA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DTA: %d states, alphabet {%s}, %d transitions, accept {",
		a.NumStates, strings.Join(a.Alphabet, ","), len(a.Trans))
	for q, acc := range a.Accept {
		if acc {
			fmt.Fprintf(&b, " %d", q)
		}
	}
	b.WriteString(" }")
	return b.String()
}
