package automata

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dom"
	"repro/internal/mdatalog"
)

func nodesEqual(a, b []dom.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// oracleAncestorOrSelf computes the HasAncestorLabel query directly.
func oracleAncestorOrSelf(t *dom.Tree, label string) []dom.NodeID {
	var out []dom.NodeID
	for i := 0; i < t.Size(); i++ {
		n := dom.NodeID(i)
		for m := n; m != dom.Nil; m = t.Parent(m) {
			if t.Label(m) == label {
				out = append(out, n)
				break
			}
		}
	}
	return out
}

func TestHasAncestorLabel(t *testing.T) {
	tr := dom.MustParseTerm("r(a(b,c(d)),e,a(f))")
	a := HasAncestorLabel("a")
	got := a.Select(tr)
	want := oracleAncestorOrSelf(tr, "a")
	if !nodesEqual(got, want) {
		t.Errorf("got %v want %v (tree %s)", got, want, tr)
	}
}

func TestLabelIs(t *testing.T) {
	tr := dom.MustParseTerm("r(a,b(a),c)")
	got := LabelIs("a").Select(tr)
	var want []dom.NodeID
	tr.Walk(func(n dom.NodeID) {
		if tr.Label(n) == "a" {
			want = append(want, n)
		}
	})
	mdatalog.SortNodes(want)
	if !nodesEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestEvenBLeaves(t *testing.T) {
	// Two b-leaves: every node selected.
	tr := dom.MustParseTerm("r(b,a(b))")
	got := EvenBLeaves().Select(tr)
	if len(got) != tr.Size() {
		t.Errorf("even case: selected %d of %d", len(got), tr.Size())
	}
	// Three b-leaves: nothing selected.
	tr2 := dom.MustParseTerm("r(b,a(b),b)")
	if got2 := EvenBLeaves().Select(tr2); len(got2) != 0 {
		t.Errorf("odd case: selected %v", got2)
	}
}

func TestFirstChildOfLabel(t *testing.T) {
	tr := dom.MustParseTerm("a(x(q),a(y,z),x)")
	got := FirstChildOfLabel("a").Select(tr)
	var want []dom.NodeID
	tr.Walk(func(n dom.NodeID) {
		p := tr.Parent(n)
		if p != dom.Nil && tr.Label(p) == "a" && tr.IsFirstSibling(n) {
			want = append(want, n)
		}
	})
	mdatalog.SortNodes(want)
	if !nodesEqual(got, want) {
		t.Errorf("got %v want %v (tree %s)", got, want, tr)
	}
}

// TestSelectMatchesNaive is the core two-pass-correctness property: the
// linear Select must agree with the per-node re-run definition.
func TestSelectMatchesNaive(t *testing.T) {
	autos := map[string]*DTA{
		"ancestor-a": HasAncestorLabel("a"),
		"label-a":    LabelIs("a"),
		"even-b":     EvenBLeaves(),
		"fc-of-a":    FirstChildOfLabel("a"),
	}
	f := func(seed int64) bool {
		tr := dom.RandomTree(rand.New(rand.NewSource(seed)), 1+int(seed%47+47)%47, []string{"a", "b", "c"}, 4)
		for name, a := range autos {
			if !nodesEqual(a.Select(tr), a.SelectNaive(tr)) {
				t.Logf("%s disagrees on %s", name, tr)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestE5CompileToDatalog: the compiled monadic datalog program must
// select the same nodes as the automaton — Theorem 2.5's effective
// direction, cross-validated on random trees.
func TestE5CompileToDatalog(t *testing.T) {
	autos := map[string]*DTA{
		"ancestor-a": HasAncestorLabel("a"),
		"label-a":    LabelIs("a"),
		"even-b":     EvenBLeaves(),
		"fc-of-a":    FirstChildOfLabel("a"),
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := dom.RandomTree(rng, 1+rng.Intn(35), []string{"a", "b", "c"}, 4)
		for name, a := range autos {
			ac := a.CompleteAlphabetFor(tr)
			prog := ac.CompileToDatalog("selected")
			got, err := mdatalog.Query(prog, tr, "selected")
			if err != nil {
				t.Logf("%s: eval error: %v", name, err)
				return false
			}
			want := a.Select(tr)
			if !nodesEqual(got, want) {
				t.Logf("%s: datalog=%v automaton=%v tree=%s", name, got, want, tr)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestComplement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := dom.RandomTree(rng, 1+rng.Intn(30), []string{"a", "b"}, 3)
		a := HasAncestorLabel("a")
		c := a.Complement()
		sel := map[dom.NodeID]bool{}
		for _, n := range a.Select(tr) {
			sel[n] = true
		}
		csel := c.Select(tr)
		if len(csel)+len(sel) != tr.Size() {
			return false
		}
		for _, n := range csel {
			if sel[n] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIntersectUnion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := dom.RandomTree(rng, 1+rng.Intn(30), []string{"a", "b"}, 3)
		pa := HasAncestorLabel("a")
		pb := LabelIs("b")
		both := Intersect(pa, pb)
		either := Union(pa, pb)
		inA := map[dom.NodeID]bool{}
		for _, n := range pa.Select(tr) {
			inA[n] = true
		}
		inB := map[dom.NodeID]bool{}
		for _, n := range pb.Select(tr) {
			inB[n] = true
		}
		for i := 0; i < tr.Size(); i++ {
			n := dom.NodeID(i)
			wantBoth := inA[n] && inB[n]
			wantEither := inA[n] || inB[n]
			gotBoth := contains(both.Select(tr), n)
			gotEither := contains(either.Select(tr), n)
			if wantBoth != gotBoth || wantEither != gotEither {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func contains(ns []dom.NodeID, x dom.NodeID) bool {
	for _, n := range ns {
		if n == x {
			return true
		}
	}
	return false
}

func TestDeterminize(t *testing.T) {
	// NTA guessing: accept trees containing at least one node labeled
	// "a" (nondeterministically pick a witness... expressed bottom-up:
	// state 1 = an a was seen).
	n := NewNTA(2, "a")
	for _, l := range []int{Absent, 0, 1} {
		for _, r := range []int{Absent, 0, 1} {
			seen := l == 1 || r == 1
			for _, marked := range []bool{false, true} {
				for _, lbl := range []string{"a", Wildcard} {
					if lbl == "a" || seen {
						n.AddTrans(l, r, lbl, marked, 1)
					}
					// Nondeterministic alternative: ignore the a.
					n.AddTrans(l, r, lbl, marked, 0)
				}
			}
		}
	}
	n.Accept[1] = true
	d := n.Determinize()
	for _, tc := range []struct {
		term string
		want bool
	}{
		{"r(b,c)", false},
		{"r(a)", true},
		{"a", true},
		{"r(b(c(a)),d)", true},
		{"b", false},
	} {
		tr := dom.MustParseTerm(tc.term)
		if got := d.Accepts(tr); got != tc.want {
			t.Errorf("Accepts(%s) = %v, want %v", tc.term, got, tc.want)
		}
	}
}

func TestCompleteAlphabetFor(t *testing.T) {
	a := LabelIs("a")
	tr := dom.MustParseTerm("r(a,zzz(q))")
	c := a.CompleteAlphabetFor(tr)
	if len(c.Alphabet) < 4 {
		t.Errorf("alphabet = %v", c.Alphabet)
	}
	if !nodesEqual(c.Select(tr), a.Select(tr)) {
		t.Error("completion changed semantics")
	}
}

func BenchmarkE5_AutomatonCompile(b *testing.B) {
	tr := dom.RandomTree(rand.New(rand.NewSource(1)), 2000, []string{"a", "b", "c"}, 5)
	a := HasAncestorLabel("a").CompleteAlphabetFor(tr)
	prog := a.CompileToDatalog("selected")
	b.Run("compile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a.CompileToDatalog("selected")
		}
	})
	b.Run("eval-datalog", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mdatalog.Query(prog, tr, "selected"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("eval-automaton", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a.Select(tr)
		}
	})
}
