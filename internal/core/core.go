// Package core is the legacy facade of the Lixto reproduction. It is a
// thin shim over the public SDK in pkg/lixto — the supported embedding
// entry point — kept so that older call sites and examples continue to
// work unchanged:
//
//	w, _ := core.CompileWrapper(elogSource)
//	xml, _ := w.Wrap(fetcher)              // crawl + extract + XML
//	doc := core.ParseHTML(html)
//	nodes, _ := core.XPath(doc, "//table//td[not(a)]")
//	res, _ := core.MonadicDatalog(doc, program, "query")
//
// New code should import repro/pkg/lixto directly; it adds
// context-aware extraction, typed errors, and batch fan-out.
package core

import (
	"context"

	"repro/internal/concepts"
	"repro/internal/datalog"
	"repro/internal/dom"
	"repro/internal/elog"
	"repro/internal/htmlparse"
	"repro/internal/mdatalog"
	"repro/internal/pib"
	"repro/internal/xmlenc"
	"repro/internal/xpath"
	"repro/pkg/lixto"
)

// Wrapper is a compiled Elog wrapper together with its XML design. The
// exported fields mirror the SDK wrapper's state; extraction delegates
// to pkg/lixto with the fields' current values.
type Wrapper struct {
	Program *elog.Program
	// Compiled is the bitset-lowered form of Program (elog.Compile):
	// extraction runs on it, and its fingerprint-keyed match caches
	// persist across Wrap calls, so re-wrapping unchanged pages skips
	// the pattern-matching tree walks. Setting Compiled to nil falls
	// back to the seed interpreter. Program must not be mutated after
	// CompileWrapper.
	Compiled *elog.CompiledProgram
	Design   *pib.Design
	// Concepts can be extended with application-specific semantic or
	// syntactic concepts before wrapping.
	Concepts *concepts.Base
	// MaxDocuments bounds crawling (0 = default).
	MaxDocuments int
	// MaxConcurrency bounds the crawl frontier's parallel fetches
	// (0 = GOMAXPROCS).
	MaxConcurrency int

	sdk *lixto.Wrapper
}

// CompileWrapper parses and compiles an Elog program and returns a
// wrapper with the default XML design (document instances auxiliary,
// patterns emitted under their own names). Errors are typed
// *lixto.Error values with source positions.
func CompileWrapper(src string) (*Wrapper, error) {
	lw, err := lixto.Compile(src)
	if err != nil {
		return nil, err
	}
	return &Wrapper{
		Program:  lw.Program(),
		Compiled: lw.Compiled(),
		Design:   lw.Design(),
		Concepts: concepts.NewBase(),
		sdk:      lw,
	}, nil
}

// MustCompileWrapper panics on error; for examples and tests.
func MustCompileWrapper(src string) *Wrapper {
	w, err := CompileWrapper(src)
	if err != nil {
		panic(err)
	}
	return w
}

// SetAuxiliary marks patterns as auxiliary (not propagated to XML).
func (w *Wrapper) SetAuxiliary(patterns ...string) *Wrapper {
	if w.Design.Auxiliary == nil {
		w.Design.Auxiliary = map[string]bool{}
	}
	for _, p := range patterns {
		w.Design.Auxiliary[p] = true
	}
	return w
}

// Rename maps a pattern to a different XML element name.
func (w *Wrapper) Rename(pattern, element string) *Wrapper {
	if w.Design.Rename == nil {
		w.Design.Rename = map[string]string{}
	}
	w.Design.Rename[pattern] = element
	return w
}

// options assembles the per-call SDK options from the wrapper's current
// field values, so post-compile mutations (MaxDocuments, Compiled=nil)
// keep working as they did before the SDK existed.
func (w *Wrapper) options(f elog.Fetcher) []lixto.Option {
	opts := []lixto.Option{
		lixto.WithFetcher(f),
		lixto.WithConcurrency(w.MaxConcurrency),
		lixto.WithDesign(w.Design),
	}
	if w.Concepts != nil {
		opts = append(opts, lixto.WithConcepts(w.Concepts))
	}
	if w.MaxDocuments > 0 {
		opts = append(opts, lixto.WithMaxDocuments(w.MaxDocuments))
	}
	if w.Compiled == nil {
		opts = append(opts, lixto.WithCache(false))
	}
	return opts
}

// Extract runs the wrapper against the fetcher and returns the pattern
// instance base, on the compiled form when present (always, for
// wrappers built by CompileWrapper).
func (w *Wrapper) Extract(f elog.Fetcher) (*pib.Base, error) {
	if w.Compiled != nil && w.Compiled != w.sdk.Compiled() {
		// Legacy escape hatch: the caller swapped in a different
		// compiled form; run it directly as the pre-SDK code did.
		ev := elog.NewEvaluator(f)
		if w.Concepts != nil {
			ev.Concepts = w.Concepts
		}
		if w.MaxDocuments > 0 {
			ev.MaxDocuments = w.MaxDocuments
		}
		ev.MaxConcurrency = w.MaxConcurrency
		return ev.RunCompiled(w.Compiled)
	}
	res, err := w.sdk.Extract(context.Background(), lixto.Origin(), w.options(f)...)
	if err != nil {
		return nil, err
	}
	return res.Base, nil
}

// Wrap extracts and transforms to XML in one call.
func (w *Wrapper) Wrap(f elog.Fetcher) (*xmlenc.Node, error) {
	base, err := w.Extract(f)
	if err != nil {
		return nil, err
	}
	return w.Design.Transform(base), nil
}

// WrapHTML wraps a single in-memory HTML document: every document URL
// mentioned by the program is served this same document. Useful for
// one-page wrappers and tests. It routes through Wrap/Extract, so the
// swapped-Compiled escape hatch applies here too.
func (w *Wrapper) WrapHTML(html string) (*xmlenc.Node, error) {
	f, err := w.sdk.InlineFetcher(html, nil)
	if err != nil {
		return nil, err
	}
	return w.Wrap(f)
}

// SDK returns the underlying pkg/lixto wrapper.
func (w *Wrapper) SDK() *lixto.Wrapper { return w.sdk }

// ParseHTML parses HTML into a document tree.
func ParseHTML(html string) *dom.Tree { return htmlparse.Parse(html) }

// XPath evaluates an XPath query (Core plus the positional/value
// extensions) on a document, from the (virtual) root.
func XPath(doc *dom.Tree, query string) ([]dom.NodeID, error) {
	p, err := xpath.Parse(query)
	if err != nil {
		return nil, err
	}
	if p.IsCore() {
		return xpath.EvalCore(p, doc, nil)
	}
	return xpath.EvalFull(p, doc, nil)
}

// MonadicDatalog evaluates a monadic datalog program (in the textual
// syntax of internal/datalog, over the τ_ur signature) on a document and
// returns the nodes selected by the query predicate, using the
// O(|P|·|dom|) engine of Theorem 2.4.
func MonadicDatalog(doc *dom.Tree, program, queryPred string) ([]dom.NodeID, error) {
	p, err := datalog.Parse(program)
	if err != nil {
		return nil, err
	}
	return mdatalog.Query(p, doc, queryPred)
}
