// Package core is the public facade of the Lixto reproduction: it ties
// together the wrapper language (internal/elog), the pattern instance
// base and XML mapping (internal/pib), the visual builder
// (internal/visual), and the query engines (internal/xpath,
// internal/mdatalog) behind a small API:
//
//	w, _ := core.CompileWrapper(elogSource)
//	xml, _ := w.Wrap(fetcher)              // crawl + extract + XML
//	doc := core.ParseHTML(html)
//	nodes, _ := core.XPath(doc, "//table//td[not(a)]")
//	res, _ := core.MonadicDatalog(doc, program, "query")
//
// Downstream users who need the full control surface import the internal
// packages directly; core covers the common paths.
package core

import (
	"fmt"

	"repro/internal/concepts"
	"repro/internal/datalog"
	"repro/internal/dom"
	"repro/internal/elog"
	"repro/internal/htmlparse"
	"repro/internal/mdatalog"
	"repro/internal/pib"
	"repro/internal/xmlenc"
	"repro/internal/xpath"
)

// Wrapper is a compiled Elog wrapper together with its XML design.
type Wrapper struct {
	Program *elog.Program
	// Compiled is the bitset-lowered form of Program (elog.Compile):
	// extraction runs on it, and its fingerprint-keyed match caches
	// persist across Wrap calls, so re-wrapping unchanged pages skips
	// the pattern-matching tree walks. Program must not be mutated
	// after CompileWrapper.
	Compiled *elog.CompiledProgram
	Design   *pib.Design
	// Concepts can be extended with application-specific semantic or
	// syntactic concepts before wrapping.
	Concepts *concepts.Base
	// MaxDocuments bounds crawling (0 = default).
	MaxDocuments int
	// MaxConcurrency bounds the crawl frontier's parallel fetches
	// (0 = GOMAXPROCS).
	MaxConcurrency int
}

// CompileWrapper parses and compiles an Elog program and returns a
// wrapper with the default XML design (document instances auxiliary,
// patterns emitted under their own names).
func CompileWrapper(src string) (*Wrapper, error) {
	p, err := elog.Parse(src)
	if err != nil {
		return nil, err
	}
	cp, err := elog.Compile(p)
	if err != nil {
		return nil, err
	}
	return &Wrapper{
		Program:  p,
		Compiled: cp,
		Design:   &pib.Design{Auxiliary: map[string]bool{"document": true}},
		Concepts: concepts.NewBase(),
	}, nil
}

// MustCompileWrapper panics on error; for examples and tests.
func MustCompileWrapper(src string) *Wrapper {
	w, err := CompileWrapper(src)
	if err != nil {
		panic(err)
	}
	return w
}

// SetAuxiliary marks patterns as auxiliary (not propagated to XML).
func (w *Wrapper) SetAuxiliary(patterns ...string) *Wrapper {
	if w.Design.Auxiliary == nil {
		w.Design.Auxiliary = map[string]bool{}
	}
	for _, p := range patterns {
		w.Design.Auxiliary[p] = true
	}
	return w
}

// Rename maps a pattern to a different XML element name.
func (w *Wrapper) Rename(pattern, element string) *Wrapper {
	if w.Design.Rename == nil {
		w.Design.Rename = map[string]string{}
	}
	w.Design.Rename[pattern] = element
	return w
}

// Extract runs the wrapper against the fetcher and returns the pattern
// instance base, on the compiled form when present (always, for
// wrappers built by CompileWrapper).
func (w *Wrapper) Extract(f elog.Fetcher) (*pib.Base, error) {
	ev := elog.NewEvaluator(f)
	if w.Concepts != nil {
		ev.Concepts = w.Concepts
	}
	if w.MaxDocuments > 0 {
		ev.MaxDocuments = w.MaxDocuments
	}
	ev.MaxConcurrency = w.MaxConcurrency
	if w.Compiled != nil {
		return ev.RunCompiled(w.Compiled)
	}
	return ev.Run(w.Program)
}

// Wrap extracts and transforms to XML in one call.
func (w *Wrapper) Wrap(f elog.Fetcher) (*xmlenc.Node, error) {
	base, err := w.Extract(f)
	if err != nil {
		return nil, err
	}
	return w.Design.Transform(base), nil
}

// WrapHTML wraps a single in-memory HTML document: every document URL
// mentioned by the program is served this same document. Useful for
// one-page wrappers and tests.
func (w *Wrapper) WrapHTML(html string) (*xmlenc.Node, error) {
	t := htmlparse.Parse(html)
	m := elog.MapFetcher{}
	for _, r := range w.Program.Rules {
		if r.DocURL != "" {
			m[r.DocURL] = t
		}
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("core: program has no document entry points")
	}
	return w.Wrap(m)
}

// ParseHTML parses HTML into a document tree.
func ParseHTML(html string) *dom.Tree { return htmlparse.Parse(html) }

// XPath evaluates an XPath query (Core plus the positional/value
// extensions) on a document, from the (virtual) root.
func XPath(doc *dom.Tree, query string) ([]dom.NodeID, error) {
	p, err := xpath.Parse(query)
	if err != nil {
		return nil, err
	}
	if p.IsCore() {
		return xpath.EvalCore(p, doc, nil)
	}
	return xpath.EvalFull(p, doc, nil)
}

// MonadicDatalog evaluates a monadic datalog program (in the textual
// syntax of internal/datalog, over the τ_ur signature) on a document and
// returns the nodes selected by the query predicate, using the
// O(|P|·|dom|) engine of Theorem 2.4.
func MonadicDatalog(doc *dom.Tree, program, queryPred string) ([]dom.NodeID, error) {
	p, err := datalog.Parse(program)
	if err != nil {
		return nil, err
	}
	return mdatalog.Query(p, doc, queryPred)
}
