package core

import (
	"strings"
	"testing"

	"repro/internal/web"
	"repro/internal/xmlenc"
)

const listWrapper = `
page(S, X) <- document("site/list.html", S), subelem(S, .body, X)
entry(S, X) <- page(_, S), subelem(S, ?.li, X)
`

func TestWrapHTML(t *testing.T) {
	w := MustCompileWrapper(listWrapper).SetAuxiliary("page")
	xml, err := w.WrapHTML(`<body><ul><li>alpha</li><li>beta</li></ul></body>`)
	if err != nil {
		t.Fatal(err)
	}
	s := xmlenc.MarshalIndent(xml)
	if strings.Count(s, "<entry>") != 2 || !strings.Contains(s, "alpha") {
		t.Errorf("xml:\n%s", s)
	}
}

func TestRename(t *testing.T) {
	w := MustCompileWrapper(listWrapper).SetAuxiliary("page").Rename("entry", "item")
	xml, err := w.WrapHTML(`<body><ul><li>x</li></ul></body>`)
	if err != nil {
		t.Fatal(err)
	}
	s := xmlenc.Marshal(xml)
	if !strings.Contains(s, "<item>x</item>") {
		t.Errorf("xml: %s", s)
	}
}

func TestWrapAgainstSimulatedWeb(t *testing.T) {
	sim := web.New()
	web.NewBookSite(3, 4).Register(sim, "books.example.com")
	w := MustCompileWrapper(`
page(S, X) <- document("books.example.com/bestsellers.html", S), subelem(S, .body, X)
book(S, X) <- page(_, S), subelem(S, (?.tr, [(class, book, exact)]), X)
title(S, X) <- book(_, S), subelem(S, (?.td, [(class, title, exact)]), X)
`).SetAuxiliary("page")
	xml, err := w.Wrap(sim)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(xmlenc.Marshal(xml), "<title>"); got != 4 {
		t.Errorf("titles = %d\n%s", got, xmlenc.MarshalIndent(xml))
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := CompileWrapper("nonsense"); err == nil {
		t.Fatal("garbage accepted")
	}
	w := MustCompileWrapper(`p(S, X) <- p(_, S), subelem(S, .a, X)
q(S, X) <- p(_, S), subelem(S, .b, X)`)
	// No document entry point: WrapHTML must fail cleanly.
	if _, err := w.WrapHTML("<body></body>"); err == nil {
		t.Fatal("expected no-entry-point error")
	}
}

func TestXPathFacade(t *testing.T) {
	doc := ParseHTML(`<body><table><tr><td>a</td><td><a href="#">l</a></td></tr></table></body>`)
	core, err := XPath(doc, "//td[not(a)]")
	if err != nil {
		t.Fatal(err)
	}
	if len(core) != 1 {
		t.Errorf("core query: %v", core)
	}
	ext, err := XPath(doc, "//td[1]")
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) != 1 {
		t.Errorf("extended query: %v", ext)
	}
	if _, err := XPath(doc, "///"); err == nil {
		t.Error("bad query accepted")
	}
}

func TestMonadicDatalogFacade(t *testing.T) {
	doc := ParseHTML(`<body><p>x</p><i><b>y</b></i></body>`)
	got, err := MonadicDatalog(doc, `
italic(X) :- label_i(X).
italic(X) :- italic(X0), firstchild(X0, X).
italic(X) :- italic(X0), nextsibling(X0, X).
`, "italic")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Error("no italic nodes")
	}
	if _, err := MonadicDatalog(doc, "bad(", "q"); err == nil {
		t.Error("bad program accepted")
	}
}
