package xmlenc

import (
	"strings"
	"testing"
)

func sample() *Node {
	root := NewElement("catalog")
	root.SetAttr("version", "1")
	b := root.AppendElement("book")
	b.AppendTextElement("title", "Foundations of <Databases>")
	b.AppendTextElement("price", "$ 10 & up")
	root.AppendElement("empty")
	return root
}

func TestMarshalEscaping(t *testing.T) {
	s := Marshal(sample())
	if !strings.Contains(s, "Foundations of &lt;Databases&gt;") {
		t.Errorf("text not escaped: %s", s)
	}
	if !strings.Contains(s, "$ 10 &amp; up") {
		t.Errorf("ampersand not escaped: %s", s)
	}
	if !strings.Contains(s, "<empty/>") {
		t.Errorf("empty element not self-closed: %s", s)
	}
	if !strings.Contains(s, `version="1"`) {
		t.Errorf("attribute lost: %s", s)
	}
}

func TestUnmarshalRoundTrip(t *testing.T) {
	s := Marshal(sample())
	n, err := Unmarshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if Marshal(n) != s {
		t.Errorf("round trip differs:\n%s\n%s", s, Marshal(n))
	}
}

func TestUnmarshalIndentedRoundTrip(t *testing.T) {
	s := MarshalIndent(sample())
	n, err := Unmarshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if n.FirstChild("book") == nil || n.FirstChild("book").FirstChild("title") == nil {
		t.Fatalf("structure lost: %s", Marshal(n))
	}
	if got := n.FirstChild("book").FirstChild("title").Text; got != "Foundations of <Databases>" {
		t.Errorf("title = %q", got)
	}
}

// NITF-style dotted element names (<date.issue>, <body.head>) must
// survive an Unmarshal round trip byte-exactly: the WAL restore path
// re-parses stored result XML with Unmarshal, and the HTML tokenizer's
// name alphabet used to split "date.issue" into a tag plus a stray
// attribute.
func TestUnmarshalDottedNamesRoundTrip(t *testing.T) {
	doc := NewElement("nitf")
	head := doc.AppendElement("head")
	dd := head.AppendElement("docdata")
	di := dd.AppendElement("date.issue")
	di.SetAttr("norm", "2004-06-08")
	bh := doc.AppendElement("body.head")
	bh.AppendTextElement("hedline", "Globex & <friends>")
	for _, s := range []string{Marshal(doc), MarshalIndent(doc)} {
		n, err := Unmarshal(s)
		if err != nil {
			t.Fatalf("Unmarshal(%q): %v", s, err)
		}
		if got := Marshal(n); got != Marshal(doc) {
			t.Errorf("round trip differs:\n%s\n%s", Marshal(doc), got)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	for _, s := range []string{
		"", "just text", "<a><b></a>", "<a>", "</a>", "<a/><b/>",
	} {
		if _, err := Unmarshal(s); err == nil {
			t.Errorf("Unmarshal(%q) succeeded", s)
		}
	}
}

func TestFindAndChildren(t *testing.T) {
	root := NewElement("r")
	for i := 0; i < 3; i++ {
		c := root.AppendElement("item")
		c.AppendTextElement("v", "x")
	}
	root.AppendElement("other")
	if got := len(root.Find("item")); got != 3 {
		t.Errorf("Find = %d", got)
	}
	if got := len(root.ChildrenNamed("item")); got != 3 {
		t.Errorf("ChildrenNamed = %d", got)
	}
	if root.FirstChild("other") == nil || root.FirstChild("missing") != nil {
		t.Error("FirstChild wrong")
	}
	if got := len(root.Find("v")); got != 3 {
		t.Errorf("deep Find = %d", got)
	}
}

func TestTextContent(t *testing.T) {
	n, err := Unmarshal("<a>one<b>two</b>three</a>")
	if err != nil {
		t.Fatal(err)
	}
	if got := n.TextContent(); got != "onetwothree" {
		t.Errorf("TextContent = %q", got)
	}
}

func TestSetAttrReplaces(t *testing.T) {
	n := NewElement("x")
	n.SetAttr("k", "1")
	n.SetAttr("k", "2")
	if v, _ := n.Attr("k"); v != "2" || len(n.Attrs) != 1 {
		t.Errorf("attrs = %v", n.Attrs)
	}
}

func TestMarshalIndentBytesEquivalence(t *testing.T) {
	n := sample()
	if got, want := string(MarshalIndentBytes(n)), MarshalIndent(n); got != want {
		t.Errorf("MarshalIndentBytes diverges from MarshalIndent:\n%q\nvs\n%q", got, want)
	}
}
