package xmlenc

import (
	"bytes"
	"fmt"

	"repro/internal/htmlparse"
)

// Encoder is a stateful, splice-based variant of MarshalIndentBytes
// for callers that re-encode successive versions of a slowly-changing
// document — the delivery plane encodes one snapshot per published
// tick, and under the incremental transform most of the tree is the
// same frozen *Node pointers as the previous tick. The encoder caches
// the encoded byte range of each frozen subtree (keyed by node pointer
// and indentation depth, since the bytes embed the indent prefix) and
// splices the cached range into the output buffer instead of walking
// the subtree again, so encode cost tracks the dirty region.
//
// Cached bytes include the subtree's leading newline and indentation,
// which is deterministic for any node at depth >= 1 (the buffer is
// never empty there — the root's open tag precedes it); depth-0 nodes
// are never cached. Entries not touched by an encode are evicted when
// it finishes, so the cache tracks the current document's frozen set
// and removed subtrees do not pin memory.
//
// An Encoder is not safe for concurrent use; the delivery plane owns
// one per pipeline and runs it under the publish mutex. Output is
// byte-identical to MarshalIndentBytes — frozen subtrees are immutable
// by contract, so a cached range can never go stale.
type Encoder struct {
	cache   map[*Node]*encEntry
	gen     uint64
	spliced uint64
	encoded uint64
}

// encEntry is one cached subtree encoding.
type encEntry struct {
	depth int
	gen   uint64
	bytes []byte
}

// minCacheBytes is the smallest subtree encoding worth caching: below
// it the map entry plus copy costs more than re-walking the node.
const minCacheBytes = 32

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder {
	return &Encoder{cache: make(map[*Node]*encEntry)}
}

// MarshalIndentBytes encodes n exactly as the package-level
// MarshalIndentBytes does, reusing cached byte ranges for frozen
// subtrees seen in earlier encodes.
func (e *Encoder) MarshalIndentBytes(n *Node) []byte {
	e.gen++
	var b bytes.Buffer
	e.write(&b, n, 0)
	b.WriteByte('\n')
	for k, ent := range e.cache {
		if ent.gen != e.gen {
			delete(e.cache, k)
		}
	}
	e.encoded += uint64(b.Len())
	return b.Bytes()
}

// SplicedBytes returns the cumulative number of output bytes that were
// spliced from the cache rather than re-encoded. Surfaced as
// encode_spliced_bytes in the server's extraction stats.
func (e *Encoder) SplicedBytes() uint64 { return e.spliced }

// EncodedBytes returns the cumulative number of output bytes produced.
func (e *Encoder) EncodedBytes() uint64 { return e.encoded }

// CachedSubtrees returns the number of subtree encodings currently
// cached.
func (e *Encoder) CachedSubtrees() int { return len(e.cache) }

// write mirrors the package-level write for *bytes.Buffer, detouring
// through the cache at frozen nodes. Cache-miss frozen subtrees are
// encoded into place and the produced range is copied into the cache,
// recursing through e.write so nested frozen nodes (a reused child
// under a freshly rebuilt parent) still splice and are cached at their
// own depth for future ticks.
func (e *Encoder) write(b *bytes.Buffer, n *Node, depth int) {
	if n.frozen && depth >= 1 {
		if ent, ok := e.cache[n]; ok && ent.depth == depth {
			ent.gen = e.gen
			b.Write(ent.bytes)
			e.spliced += uint64(len(ent.bytes))
			return
		}
		start := b.Len()
		e.writeNode(b, n, depth)
		if seg := b.Bytes()[start:]; len(seg) >= minCacheBytes {
			e.cache[n] = &encEntry{depth: depth, gen: e.gen, bytes: append([]byte(nil), seg...)}
		}
		return
	}
	e.writeNode(b, n, depth)
}

// writeNode is the body of the package-level write, with child
// recursion routed back through e.write. TestEncoderMatchesMarshal and
// FuzzIncrementalTransform pin it byte-identical to the plain path.
func (e *Encoder) writeNode(b *bytes.Buffer, n *Node, depth int) {
	indent := func(d int) {
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		for i := 0; i < d; i++ {
			b.WriteString("  ")
		}
	}
	if n.Name == "" {
		indent(depth)
		b.WriteString(htmlparse.EscapeText(n.Text))
		return
	}
	indent(depth)
	b.WriteByte('<')
	b.WriteString(n.Name)
	for _, a := range n.Attrs {
		fmt.Fprintf(b, ` %s="%s"`, a.Name, htmlparse.EscapeAttr(a.Value))
	}
	if len(n.Children) == 0 && n.Text == "" {
		b.WriteString("/>")
		return
	}
	b.WriteByte('>')
	b.WriteString(htmlparse.EscapeText(n.Text))
	for _, c := range n.Children {
		e.write(b, c, depth+1)
	}
	if len(n.Children) > 0 {
		indent(depth)
	}
	b.WriteString("</")
	b.WriteString(n.Name)
	b.WriteByte('>')
}
