package xmlenc

import (
	"fmt"
	"math/rand"
	"testing"
)

// catalogDoc builds an indented-output-sized document: a root with n
// row subtrees, each carrying a couple of text children so its
// encoding clears minCacheBytes.
func catalogDoc(n int, stamp string) *Node {
	root := NewElement("catalog")
	for i := 0; i < n; i++ {
		row := root.AppendElement("row")
		row.AppendTextElement("title", fmt.Sprintf("Item %d %s", i, stamp))
		row.AppendTextElement("price", fmt.Sprintf("$%d.99", i))
	}
	return root
}

func TestEncoderMatchesMarshal(t *testing.T) {
	e := NewEncoder()
	doc := catalogDoc(12, "v1")
	for _, c := range doc.Children {
		c.Freeze()
	}
	for tick := 0; tick < 3; tick++ {
		got := string(e.MarshalIndentBytes(doc))
		want := MarshalIndent(doc)
		if got != want {
			t.Fatalf("tick %d: encoder diverges from MarshalIndent:\n%q\nvs\n%q", tick, got, want)
		}
	}
	if e.SplicedBytes() == 0 {
		t.Error("repeated encode of a frozen document spliced nothing")
	}
	if e.CachedSubtrees() == 0 {
		t.Error("no subtrees cached")
	}
}

// Successive versions sharing most frozen rows must encode
// byte-identically to a cold marshal, with the unchanged rows spliced.
func TestEncoderSplicesAcrossVersions(t *testing.T) {
	e := NewEncoder()
	prev := catalogDoc(20, "v1")
	for _, c := range prev.Children {
		c.Freeze()
	}
	e.MarshalIndentBytes(prev)

	next := NewElement("catalog")
	for i, row := range prev.Children {
		if i == 3 || i == 11 {
			fresh := NewElement("row")
			fresh.AppendTextElement("title", fmt.Sprintf("Item %d v2", i))
			fresh.AppendTextElement("price", "$0.99")
			next.Append(fresh.Freeze())
			continue
		}
		next.Append(row) // reused frozen subtree
	}
	before := e.SplicedBytes()
	got := string(e.MarshalIndentBytes(next))
	if want := MarshalIndent(next); got != want {
		t.Fatalf("spliced encode diverges:\n%q\nvs\n%q", got, want)
	}
	if e.SplicedBytes() == before {
		t.Error("no bytes spliced despite 18 reused rows")
	}
}

// Eviction: subtrees dropped from the document leave the cache after
// the next encode, so removed rows do not pin memory.
func TestEncoderEvictsRemovedSubtrees(t *testing.T) {
	e := NewEncoder()
	doc := catalogDoc(10, "v1")
	for _, c := range doc.Children {
		c.Freeze()
	}
	e.MarshalIndentBytes(doc)
	full := e.CachedSubtrees()
	small := NewElement("catalog")
	small.Append(doc.Children[0])
	e.MarshalIndentBytes(small)
	if e.CachedSubtrees() >= full {
		t.Errorf("cache not evicted: %d entries before, %d after shrink", full, e.CachedSubtrees())
	}
}

// A reused frozen child nested under a freshly rebuilt (frozen) parent
// must still splice, and the whole output stays byte-identical.
func TestEncoderNestedReuse(t *testing.T) {
	e := NewEncoder()
	inner := NewElement("row")
	inner.AppendTextElement("title", "stable title that is long enough to cache")
	inner.Freeze()
	v1 := NewElement("catalog")
	g1 := NewElement("group")
	g1.SetAttr("gen", "1")
	g1.Append(inner)
	v1.Append(g1.Freeze())
	e.MarshalIndentBytes(v1)

	v2 := NewElement("catalog")
	g2 := NewElement("group")
	g2.SetAttr("gen", "2")
	g2.Append(inner)
	v2.Append(g2.Freeze())
	before := e.SplicedBytes()
	if got, want := string(e.MarshalIndentBytes(v2)), MarshalIndent(v2); got != want {
		t.Fatalf("nested reuse diverges:\n%q\nvs\n%q", got, want)
	}
	if e.SplicedBytes() == before {
		t.Error("nested frozen child did not splice under a rebuilt parent")
	}
}

// Randomized churn: mutate a random subset of rows per tick and check
// the encoder against the plain marshaler every time.
func TestEncoderRandomChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := NewEncoder()
	rows := make([]*Node, 30)
	for i := range rows {
		r := NewElement("row")
		r.AppendTextElement("title", fmt.Sprintf("Item %d tick 0 padding padding", i))
		rows[i] = r.Freeze()
	}
	for tick := 1; tick <= 20; tick++ {
		for i := range rows {
			if rng.Intn(10) == 0 {
				r := NewElement("row")
				r.AppendTextElement("title", fmt.Sprintf("Item %d tick %d padding padding", i, tick))
				rows[i] = r.Freeze()
			}
		}
		doc := NewElement("catalog")
		for _, r := range rows {
			doc.Append(r)
		}
		if got, want := string(e.MarshalIndentBytes(doc)), MarshalIndent(doc); got != want {
			t.Fatalf("tick %d: encoder diverges from MarshalIndent", tick)
		}
	}
}

func TestFreezeAndMutable(t *testing.T) {
	n := NewElement("a")
	c := n.AppendElement("b")
	n.Freeze()
	if !n.Frozen() || !c.Frozen() {
		t.Fatal("Freeze not recursive")
	}
	if n.Mutable() == n {
		t.Error("Mutable returned the frozen node itself")
	}
	cp := n.Mutable()
	if cp.Frozen() {
		t.Error("Mutable copy is frozen")
	}
	cp.SetAttr("k", "v") // must not touch the frozen original
	if _, ok := n.Attr("k"); ok {
		t.Error("mutating the copy leaked into the frozen original")
	}
	if len(cp.Children) != 1 || cp.Children[0] != c {
		t.Error("Mutable copy lost its (shared, frozen) children")
	}
	m := NewElement("plain")
	if m.Mutable() != m {
		t.Error("Mutable of an unfrozen node should be the node itself")
	}
}
