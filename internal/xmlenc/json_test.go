package xmlenc

import (
	"encoding/json"
	"testing"
)

func TestMarshalJSON(t *testing.T) {
	doc := NewElement("alerts")
	doc.SetAttr("source", "wrap-flights")
	a := doc.AppendElement("alert")
	a.AppendTextElement("flight", "OS105")
	a.AppendTextElement("status", "delayed <30min>")

	data, err := MarshalJSON(doc)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Name     string            `json:"name"`
		Attrs    map[string]string `json:"attrs"`
		Children []struct {
			Name     string `json:"name"`
			Children []struct {
				Name string `json:"name"`
				Text string `json:"text"`
			} `json:"children"`
		} `json:"children"`
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("invalid JSON %s: %v", data, err)
	}
	if got.Name != "alerts" || got.Attrs["source"] != "wrap-flights" {
		t.Fatalf("root: %s", data)
	}
	if len(got.Children) != 1 || len(got.Children[0].Children) != 2 {
		t.Fatalf("children: %s", data)
	}
	if got.Children[0].Children[1].Text != "delayed <30min>" {
		t.Fatalf("text round-trip: %s", data)
	}
}

func TestMarshalJSONOmitsEmpty(t *testing.T) {
	data, err := MarshalJSON(NewElement("empty"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"name":"empty"}` {
		t.Fatalf("empty element = %s", data)
	}
}

func TestMarshalJSONList(t *testing.T) {
	docs := []*Node{NewElement("a"), NewElement("b")}
	data, err := MarshalJSONList(docs)
	if err != nil {
		t.Fatal(err)
	}
	var got []struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "b" {
		t.Fatalf("list = %s", data)
	}
}
