//go:build lixtodebug

package xmlenc

import "fmt"

// assertMutable panics when a method mutator is applied to a frozen
// node. Compiled in under the lixtodebug build tag only, which the
// -race CI job enables: a frozen node is shared between published
// documents and the transformer's output cache, so mutating one is a
// delivery-plane corruption bug, never a legitimate edit.
func assertMutable(n *Node) {
	if n.frozen {
		panic(fmt.Sprintf("xmlenc: mutation of frozen node <%s> (published documents share frozen subtrees; use Mutable for copy-on-write)", n.Name))
	}
}
