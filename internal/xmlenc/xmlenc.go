// Package xmlenc provides the XML document model used on the output side
// of the Lixto stack: the XML Transformer (Section 3.1) serializes
// pattern instance bases into XML, and the Transformation Server
// (Section 5) hands XML documents between pipeline components.
//
// It is intentionally small: element nodes with attributes, text
// children, a serializer with escaping and optional indentation, and a
// parser for the documents the stack itself produces.
package xmlenc

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"repro/internal/htmlparse"
)

// Node is an XML element.
type Node struct {
	Name     string
	Attrs    []Attr
	Children []*Node
	// Text is character data; a node with non-empty Text and no
	// children is a text-content element, a node with Name == "" is a
	// bare text node.
	Text string
	// frozen marks the subtree immutable: it is shared between a
	// published document and the incremental transformer's output
	// cache. See freeze.go.
	frozen bool
}

// Attr is an attribute.
type Attr struct{ Name, Value string }

// NewElement returns an element node.
func NewElement(name string) *Node { return &Node{Name: name} }

// NewText returns a bare text node.
func NewText(text string) *Node { return &Node{Text: text} }

// SetAttr sets an attribute, replacing an existing one of the same name.
func (n *Node) SetAttr(name, value string) *Node {
	assertMutable(n)
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Value = value
			return n
		}
	}
	n.Attrs = append(n.Attrs, Attr{name, value})
	return n
}

// Attr returns the attribute value and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Append adds children and returns n.
func (n *Node) Append(children ...*Node) *Node {
	assertMutable(n)
	n.Children = append(n.Children, children...)
	return n
}

// AppendElement adds and returns a new child element.
func (n *Node) AppendElement(name string) *Node {
	assertMutable(n)
	c := NewElement(name)
	n.Children = append(n.Children, c)
	return c
}

// AppendTextElement adds <name>text</name> and returns n.
func (n *Node) AppendTextElement(name, text string) *Node {
	assertMutable(n)
	n.Children = append(n.Children, &Node{Name: name, Text: text})
	return n
}

// SetText sets the node's character data and returns n.
func (n *Node) SetText(text string) *Node {
	assertMutable(n)
	n.Text = text
	return n
}

// FirstChild returns the first child element with the given name, or nil.
func (n *Node) FirstChild(name string) *Node {
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ChildrenNamed returns all child elements with the given name.
func (n *Node) ChildrenNamed(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// Find returns all descendants (including n) with the given name, in
// document order.
func (n *Node) Find(name string) []*Node {
	var out []*Node
	var rec func(m *Node)
	rec = func(m *Node) {
		if m.Name == name {
			out = append(out, m)
		}
		for _, c := range m.Children {
			rec(c)
		}
	}
	rec(n)
	return out
}

// TextContent returns the concatenated character data of the subtree.
func (n *Node) TextContent() string {
	var b strings.Builder
	var rec func(m *Node)
	rec = func(m *Node) {
		b.WriteString(m.Text)
		for _, c := range m.Children {
			rec(c)
		}
	}
	rec(n)
	return b.String()
}

// Marshal serializes the document without extra whitespace.
func Marshal(n *Node) string {
	var b strings.Builder
	write(&b, n, -1)
	return b.String()
}

// MarshalIndent serializes the document with two-space indentation.
func MarshalIndent(n *Node) string {
	var b strings.Builder
	write(&b, n, 0)
	b.WriteByte('\n')
	return b.String()
}

// MarshalIndentBytes is MarshalIndent returning the encoded bytes
// directly, without the string→[]byte copy. The server's delivery
// plane encodes every published snapshot exactly once and serves the
// bytes to every reader, so the copy would be pure overhead.
func MarshalIndentBytes(n *Node) []byte {
	var b bytes.Buffer
	write(&b, n, 0)
	b.WriteByte('\n')
	return b.Bytes()
}

// encBuf is the common surface of strings.Builder and bytes.Buffer the
// serializer writes through.
type encBuf interface {
	io.Writer
	WriteByte(byte) error
	WriteString(string) (int, error)
	Len() int
}

func write(b encBuf, n *Node, depth int) {
	indent := func(d int) {
		if d >= 0 {
			if b.Len() > 0 {
				b.WriteByte('\n')
			}
			for i := 0; i < d; i++ {
				b.WriteString("  ")
			}
		}
	}
	if n.Name == "" {
		indent(depth)
		b.WriteString(htmlparse.EscapeText(n.Text))
		return
	}
	indent(depth)
	b.WriteByte('<')
	b.WriteString(n.Name)
	for _, a := range n.Attrs {
		fmt.Fprintf(b, ` %s="%s"`, a.Name, htmlparse.EscapeAttr(a.Value))
	}
	if len(n.Children) == 0 && n.Text == "" {
		b.WriteString("/>")
		return
	}
	b.WriteByte('>')
	b.WriteString(htmlparse.EscapeText(n.Text))
	child := depth
	if depth >= 0 {
		child = depth + 1
	}
	for _, c := range n.Children {
		write(b, c, child)
	}
	if depth >= 0 && len(n.Children) > 0 {
		indent(depth)
	}
	b.WriteString("</")
	b.WriteString(n.Name)
	b.WriteByte('>')
}

// Unmarshal parses an XML document produced by this package (or any
// simple well-formed XML without CDATA). It uses a real XML decoder,
// not the HTML tokenizer: output-side element names are not limited to
// the HTML name alphabet (NITF uses dotted names like <date.issue>),
// and a restore round trip must preserve them exactly.
func Unmarshal(src string) (*Node, error) {
	dec := xml.NewDecoder(strings.NewReader(src))
	root := &Node{} // synthetic container
	stack := []*Node{root}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlenc: %v", err)
		}
		top := stack[len(stack)-1]
		switch t := tok.(type) {
		case xml.CharData:
			if s := string(t); strings.TrimSpace(s) != "" {
				top.Children = append(top.Children, NewText(s))
			}
		case xml.StartElement:
			el := NewElement(rawName(t.Name))
			for _, a := range t.Attr {
				el.SetAttr(rawName(a.Name), a.Value)
			}
			top.Children = append(top.Children, el)
			stack = append(stack, el)
		case xml.EndElement:
			// The strict decoder guarantees matched pairs.
			stack = stack[:len(stack)-1]
		case xml.Comment, xml.ProcInst, xml.Directive:
			// Skipped.
		}
	}
	if len(stack) != 1 {
		return nil, fmt.Errorf("xmlenc: unclosed <%s>", stack[len(stack)-1].Name)
	}
	// Collapse single-text-child form into .Text.
	var norm func(n *Node)
	norm = func(n *Node) {
		if len(n.Children) == 1 && n.Children[0].Name == "" {
			n.Text = n.Children[0].Text
			n.Children = nil
			return
		}
		for _, c := range n.Children {
			norm(c)
		}
	}
	var doc *Node
	for _, c := range root.Children {
		if c.Name != "" {
			if doc != nil {
				return nil, fmt.Errorf("xmlenc: multiple document elements")
			}
			doc = c
		}
	}
	if doc == nil {
		return nil, fmt.Errorf("xmlenc: no document element")
	}
	norm(doc)
	return doc, nil
}

// rawName restores the source spelling of a decoded name: the decoder
// splits prefixed names on ':' without resolving namespaces, so the
// prefix is carried verbatim in Space.
func rawName(n xml.Name) string {
	if n.Space != "" {
		return n.Space + ":" + n.Local
	}
	return n.Local
}
