//go:build lixtodebug

package xmlenc

import "testing"

// Under the lixtodebug build tag every method mutator panics on a
// frozen node; the -race CI job runs with the tag on so an accidental
// in-place mutation of a published subtree fails loudly instead of
// corrupting cached bytes.
func TestGuardPanicsOnFrozenMutation(t *testing.T) {
	mutations := map[string]func(n *Node){
		"SetAttr":           func(n *Node) { n.SetAttr("k", "v") },
		"SetText":           func(n *Node) { n.SetText("t") },
		"Append":            func(n *Node) { n.Append(NewElement("c")) },
		"AppendElement":     func(n *Node) { n.AppendElement("c") },
		"AppendTextElement": func(n *Node) { n.AppendTextElement("c", "t") },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			n := NewElement("x")
			n.Freeze()
			defer func() {
				if recover() == nil {
					t.Errorf("%s on a frozen node did not panic", name)
				}
			}()
			mutate(n)
		})
	}
}

// Mutable hands back a writable copy even in debug builds.
func TestGuardAllowsMutableCopy(t *testing.T) {
	n := NewElement("x")
	n.Freeze()
	cp := n.Mutable()
	cp.SetAttr("k", "v") // must not panic
	if _, ok := n.Attr("k"); ok {
		t.Error("copy-on-write leaked into the frozen original")
	}
}
