package xmlenc

import "encoding/json"

// jsonNode is the JSON projection of a Node: element name, attributes
// as an object, character data, and child elements. Empty fields are
// omitted so leaf text elements render compactly.
type jsonNode struct {
	Name     string            `json:"name,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Text     string            `json:"text,omitempty"`
	Children []*jsonNode       `json:"children,omitempty"`
}

func toJSONNode(n *Node) *jsonNode {
	j := &jsonNode{Name: n.Name, Text: n.Text}
	if len(n.Attrs) > 0 {
		j.Attrs = make(map[string]string, len(n.Attrs))
		for _, a := range n.Attrs {
			j.Attrs[a.Name] = a.Value
		}
	}
	for _, c := range n.Children {
		j.Children = append(j.Children, toJSONNode(c))
	}
	return j
}

// MarshalJSON renders the document as compact JSON. The shape is
// {"name": ..., "attrs": {...}, "text": ..., "children": [...]} with
// empty fields omitted.
func MarshalJSON(n *Node) ([]byte, error) {
	return json.Marshal(toJSONNode(n))
}

// MarshalJSONIndent renders the document as two-space-indented JSON.
func MarshalJSONIndent(n *Node) ([]byte, error) {
	return json.MarshalIndent(toJSONNode(n), "", "  ")
}

// MarshalJSONList renders several documents as a JSON array (used by
// the server's history endpoint).
func MarshalJSONList(docs []*Node) ([]byte, error) {
	list := make([]*jsonNode, len(docs))
	for i, d := range docs {
		list[i] = toJSONNode(d)
	}
	return json.MarshalIndent(list, "", "  ")
}
