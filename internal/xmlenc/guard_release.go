//go:build !lixtodebug

package xmlenc

// assertMutable is a no-op in release builds; the lixtodebug build tag
// (used by the -race CI job) swaps in a panicking check so a mutation
// of a published document fails loudly instead of corrupting bytes a
// reader may be serving.
func assertMutable(n *Node) {}
