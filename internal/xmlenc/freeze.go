package xmlenc

// Frozen subtrees are the aliasing contract of the incremental output
// path: once a document is published, the delivery plane (history
// ring, pre-encoded snapshots, SSE frames) and the transformer's
// output cache both hold pointers into it. The transformer freezes
// every emitted instance subtree so the next tick can splice the same
// *Node into a new document without ever mutating bytes a reader may
// still be serving. Mutation of a frozen node goes through Mutable
// (copy-on-write); the method mutators assert mutability in debug
// builds (see guard_debug.go, build tag lixtodebug).

// Freeze marks n and every descendant immutable and returns n. It
// stops at already-frozen children, so freezing a fresh subtree that
// splices in reused (frozen) subtrees is proportional to the fresh
// part only.
func (n *Node) Freeze() *Node {
	if n.frozen {
		return n
	}
	n.frozen = true
	for _, c := range n.Children {
		c.Freeze()
	}
	return n
}

// Frozen reports whether n has been frozen.
func (n *Node) Frozen() bool { return n.frozen }

// Mutable returns n if it is not frozen, or an unfrozen shallow copy
// (own Attrs and Children slices, children still shared and frozen)
// when it is: the copy-on-write escape hatch for code that needs to
// amend a node after publication.
func (n *Node) Mutable() *Node {
	if !n.frozen {
		return n
	}
	cp := &Node{Name: n.Name, Text: n.Text}
	if len(n.Attrs) > 0 {
		cp.Attrs = append(make([]Attr, 0, len(n.Attrs)), n.Attrs...)
	}
	if len(n.Children) > 0 {
		cp.Children = append(make([]*Node, 0, len(n.Children)), n.Children...)
	}
	return cp
}
