package dom

import (
	"fmt"
	"math/rand"
)

// RandomTree generates a pseudo-random unranked tree with exactly n
// nodes, labels drawn uniformly from alphabet, and shapes controlled by
// maxFanout. It is used by the property-based tests and by the workload
// generators of the complexity experiments (E2, E9, E11).
//
// The generator grows the tree at random frontier nodes, so NodeIDs do
// not generally coincide with preorder numbers (unlike the HTML
// parser's strictly top-down left-to-right construction) — which makes
// these trees a useful differential workload for the document-order
// fast paths. Parents and left siblings still always have smaller ids
// than their children/right siblings, as for every appended tree.
func RandomTree(rng *rand.Rand, n int, alphabet []string, maxFanout int) *Tree {
	if n <= 0 {
		n = 1
	}
	if maxFanout < 1 {
		maxFanout = 1
	}
	if len(alphabet) == 0 {
		alphabet = []string{"a"}
	}
	t := New(n)
	root := t.AddRoot(alphabet[rng.Intn(len(alphabet))])
	// Frontier of nodes that may still receive children.
	frontier := []NodeID{root}
	for t.Size() < n {
		// Pick a random frontier node, biased towards recent nodes to get
		// a mix of deep and bushy shapes.
		var idx int
		if rng.Intn(2) == 0 {
			idx = len(frontier) - 1
		} else {
			idx = rng.Intn(len(frontier))
		}
		p := frontier[idx]
		c := t.AppendChild(p, alphabet[rng.Intn(len(alphabet))])
		frontier = append(frontier, c)
		if t.ChildCount(p) >= maxFanout {
			frontier[idx] = frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
		}
	}
	return t
}

// Mutate applies n pseudo-random in-place mutations to the tree: text
// rewrites, attribute edits, and (rarely) structural growth by
// appending a child. It drives the churn harnesses and the incremental
// differential tests — deterministic given the rng state, so two runs
// over clones of the same tree see identical mutation sequences. Note
// that growth in the middle of the tree breaks the DocOrdered property
// of parser-built trees, deliberately exercising the non-incremental
// fallback alongside the incremental fast path.
func Mutate(t *Tree, rng *rand.Rand, n int) {
	mutate(t, rng, n, true)
}

// MutateContent is Mutate restricted to content edits (text rewrites
// and attribute edits): it never appends nodes, so a tree built in
// document order stays document-ordered. It models the common churn of
// a live page — prices, counters, timestamps — where the incremental
// evaluator's subtree reuse is expected to engage.
func MutateContent(t *Tree, rng *rand.Rand, n int) {
	mutate(t, rng, n, false)
}

func mutate(t *Tree, rng *rand.Rand, n int, grow bool) {
	for i := 0; i < n && t.Size() > 0; i++ {
		node := NodeID(rng.Intn(t.Size()))
		r := rng.Intn(8)
		switch {
		case grow && r == 0 && t.Kind(node) == Element:
			if rng.Intn(2) == 0 {
				t.AppendText(node, fmt.Sprintf("grown %d", rng.Intn(1<<20)))
			} else {
				t.AppendChild(node, "span")
			}
		case t.Kind(node) == Element:
			t.SetAttr(node, "data-mut", fmt.Sprintf("%d", rng.Intn(1<<20)))
		default:
			t.SetText(node, fmt.Sprintf("mut%d %s", rng.Intn(1<<20), t.Text(node)))
		}
	}
}

// Chain returns a degenerate tree of n nodes where every node has exactly
// one child, all labeled label. Deep chains are the worst case for
// recursive algorithms and appear in the complexity benchmarks.
func Chain(n int, label string) *Tree {
	if n <= 0 {
		n = 1
	}
	t := New(n)
	cur := t.AddRoot(label)
	for i := 1; i < n; i++ {
		cur = t.AppendChild(cur, label)
	}
	return t
}

// Star returns a tree with a root and n-1 children, all labeled label:
// the maximally bushy shape.
func Star(n int, label string) *Tree {
	if n <= 0 {
		n = 1
	}
	t := New(n)
	root := t.AddRoot(label)
	for i := 1; i < n; i++ {
		t.AppendChild(root, label)
	}
	return t
}

// FullBinary returns a complete binary tree of the given depth (depth 0
// is a single node), all nodes labeled label.
func FullBinary(depth int, label string) *Tree {
	t := New(1 << (depth + 1))
	root := t.AddRoot(label)
	var fill func(n NodeID, d int)
	fill = func(n NodeID, d int) {
		if d == 0 {
			return
		}
		l := t.AppendChild(n, label)
		fill(l, d-1)
		r := t.AppendChild(n, label)
		fill(r, d-1)
	}
	fill(root, depth)
	return t
}
