package dom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// figure1Tree builds the six-node unranked tree of Figure 1(a):
//
//	   n1
//	 / | \
//	n2 n3 n6
//	  / \
//	 n4  n5
func figure1Tree(t *testing.T) (*Tree, map[string]NodeID) {
	t.Helper()
	tr := New(6)
	n1 := tr.AddRoot("n1")
	n2 := tr.AppendChild(n1, "n2")
	n3 := tr.AppendChild(n1, "n3")
	n4 := tr.AppendChild(n3, "n4")
	n5 := tr.AppendChild(n3, "n5")
	n6 := tr.AppendChild(n1, "n6")
	return tr, map[string]NodeID{"n1": n1, "n2": n2, "n3": n3, "n4": n4, "n5": n5, "n6": n6}
}

func TestFigure1BinaryRepresentation(t *testing.T) {
	tr, m := figure1Tree(t)
	// Figure 1(b): firstchild edges n1→n2, n3→n4; nextsibling edges
	// n2→n3, n3→n6, n4→n5.
	wantFC := map[NodeID]NodeID{m["n1"]: m["n2"], m["n3"]: m["n4"]}
	wantNS := map[NodeID]NodeID{m["n2"]: m["n3"], m["n3"]: m["n6"], m["n4"]: m["n5"]}
	gotFC := map[NodeID]NodeID{}
	gotNS := map[NodeID]NodeID{}
	for _, e := range tr.BinaryEncoding() {
		if e.FirstChild {
			gotFC[e.From] = e.To
		} else {
			gotNS[e.From] = e.To
		}
	}
	if len(gotFC) != len(wantFC) || len(gotNS) != len(wantNS) {
		t.Fatalf("edge counts: got %d fc / %d ns, want %d / %d", len(gotFC), len(gotNS), len(wantFC), len(wantNS))
	}
	for k, v := range wantFC {
		if gotFC[k] != v {
			t.Errorf("firstchild(%d) = %d, want %d", k, gotFC[k], v)
		}
	}
	for k, v := range wantNS {
		if gotNS[k] != v {
			t.Errorf("nextsibling(%d) = %d, want %d", k, gotNS[k], v)
		}
	}
}

func TestFigure1UnaryRelations(t *testing.T) {
	tr, m := figure1Tree(t)
	if !tr.IsRoot(m["n1"]) || tr.IsRoot(m["n2"]) {
		t.Error("root relation wrong")
	}
	for _, leaf := range []string{"n2", "n4", "n5", "n6"} {
		if !tr.IsLeaf(m[leaf]) {
			t.Errorf("%s should be a leaf", leaf)
		}
	}
	if tr.IsLeaf(m["n1"]) || tr.IsLeaf(m["n3"]) {
		t.Error("interior nodes reported as leaves")
	}
	// lastsibling: n6 and n5 are rightmost children; the root is not a
	// last sibling (it has no parent) — exactly as the paper specifies.
	if !tr.IsLastSibling(m["n6"]) || !tr.IsLastSibling(m["n5"]) {
		t.Error("lastsibling missing")
	}
	if tr.IsLastSibling(m["n1"]) {
		t.Error("root must not be a last sibling")
	}
	if !tr.IsFirstSibling(m["n2"]) || tr.IsFirstSibling(m["n3"]) {
		t.Error("firstsibling relation wrong")
	}
}

func TestDocumentOrder(t *testing.T) {
	tr, m := figure1Tree(t)
	order := []string{"n1", "n2", "n3", "n4", "n5", "n6"}
	ids := tr.InDocumentOrder()
	if len(ids) != len(order) {
		t.Fatalf("got %d nodes", len(ids))
	}
	for i, name := range order {
		if ids[i] != m[name] {
			t.Errorf("doc order position %d: got %d want %s", i, ids[i], name)
		}
	}
	if !tr.DocBefore(m["n2"], m["n4"]) || tr.DocBefore(m["n5"], m["n3"]) {
		t.Error("DocBefore wrong")
	}
}

func TestAxes(t *testing.T) {
	tr, m := figure1Tree(t)
	if !tr.IsAncestor(m["n1"], m["n5"]) || tr.IsAncestor(m["n5"], m["n1"]) {
		t.Error("ancestor wrong")
	}
	if tr.IsAncestor(m["n2"], m["n4"]) {
		t.Error("siblings are not ancestors")
	}
	if !tr.IsChild(m["n3"], m["n4"]) || tr.IsChild(m["n3"], m["n6"]) {
		t.Error("child wrong")
	}
	// Following: n4 is followed by n5 and n6 but not by its ancestor n3.
	if !tr.Following(m["n4"], m["n5"]) || !tr.Following(m["n4"], m["n6"]) {
		t.Error("following missing")
	}
	if tr.Following(m["n4"], m["n3"]) || tr.Following(m["n4"], m["n4"]) {
		t.Error("following too large")
	}
	// Following must exclude descendants: n3's descendants n4, n5.
	if tr.Following(m["n3"], m["n4"]) {
		t.Error("descendant wrongly in following")
	}
	if !tr.FollowingSibling(m["n2"], m["n6"]) || tr.FollowingSibling(m["n4"], m["n6"]) {
		t.Error("followingsibling wrong")
	}
}

func TestChildIndexAndCount(t *testing.T) {
	tr, m := figure1Tree(t)
	if got := tr.ChildCount(m["n1"]); got != 3 {
		t.Errorf("ChildCount(root) = %d", got)
	}
	if got := tr.ChildIndex(m["n3"]); got != 2 {
		t.Errorf("ChildIndex(n3) = %d", got)
	}
	if got := tr.ChildIndex(m["n1"]); got != 0 {
		t.Errorf("ChildIndex(root) = %d", got)
	}
}

func TestParseTermRoundTrip(t *testing.T) {
	for _, s := range []string{
		"a",
		"a(b,c)",
		"html(body(table(tr(td,td),tr(td)),hr))",
		`p("hello world")`,
		`a(b("x"),c(d("y"),e))`,
	} {
		tr, err := ParseTerm(s)
		if err != nil {
			t.Fatalf("ParseTerm(%q): %v", s, err)
		}
		if got := tr.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestParseTermAttrs(t *testing.T) {
	tr, err := ParseTerm("a[href=x.html,class=nav](b)")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := tr.Attr(tr.Root(), "href"); !ok || v != "x.html" {
		t.Errorf("href = %q, %v", v, ok)
	}
	if v, ok := tr.Attr(tr.Root(), "class"); !ok || v != "nav" {
		t.Errorf("class = %q, %v", v, ok)
	}
}

func TestParseTermErrors(t *testing.T) {
	for _, s := range []string{"", "a(b", "a)b", `"text"`, "a(b,)x", "a[k=v"} {
		if _, err := ParseTerm(s); err == nil {
			t.Errorf("ParseTerm(%q) succeeded, want error", s)
		}
	}
}

func TestElementText(t *testing.T) {
	tr := MustParseTerm(`div(p("Hello, "),span(b("wor"),"ld"))`)
	if got := tr.ElementText(tr.Root()); got != "Hello, world" {
		t.Errorf("ElementText = %q", got)
	}
}

func TestPathLabels(t *testing.T) {
	tr := MustParseTerm("html(body(table(tr(td))))")
	body := tr.FirstChild(tr.Root())
	var td NodeID
	tr.Walk(func(n NodeID) {
		if tr.Label(n) == "td" {
			td = n
		}
	})
	labels, ok := tr.PathLabels(body, td)
	if !ok {
		t.Fatal("PathLabels failed")
	}
	want := []string{"table", "tr", "td"}
	if len(labels) != len(want) {
		t.Fatalf("got %v", labels)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("got %v want %v", labels, want)
		}
	}
	if _, ok := tr.PathLabels(td, body); ok {
		t.Error("PathLabels should fail upward")
	}
}

func TestBinaryEncodingRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64, size uint8) bool {
		n := int(size%60) + 1
		tr := RandomTree(rand.New(rand.NewSource(seed)), n, []string{"a", "b", "c"}, 4)
		tr.SetAttr(tr.Root(), "id", "root")
		nodes, edges := tr.EncodeBinary()
		back := DecodeBinary(nodes, edges)
		return Equal(tr, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestPrePostConsistencyProperty(t *testing.T) {
	// For every pair (x,y) exactly one of: x==y, ancestor(x,y),
	// ancestor(y,x), following(x,y), following(y,x).
	f := func(seed int64) bool {
		tr := RandomTree(rand.New(rand.NewSource(seed)), 40, []string{"a", "b"}, 3)
		for x := 0; x < tr.Size(); x++ {
			for y := 0; y < tr.Size(); y++ {
				nx, ny := NodeID(x), NodeID(y)
				cnt := 0
				if nx == ny {
					cnt++
				}
				if tr.IsAncestor(nx, ny) {
					cnt++
				}
				if tr.IsAncestor(ny, nx) {
					cnt++
				}
				if tr.Following(nx, ny) {
					cnt++
				}
				if tr.Following(ny, nx) {
					cnt++
				}
				if cnt != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCloneAndEqual(t *testing.T) {
	tr := MustParseTerm(`a[x=1](b("t"),c(d))`)
	cp := tr.Clone()
	if !Equal(tr, cp) {
		t.Fatal("clone not equal")
	}
	cp.SetAttr(cp.Root(), "x", "2")
	if Equal(tr, cp) {
		t.Fatal("attr change not detected")
	}
	cp2 := tr.Clone()
	cp2.AppendChild(cp2.Root(), "z")
	if Equal(tr, cp2) {
		t.Fatal("size change not detected")
	}
}

func TestShapes(t *testing.T) {
	c := Chain(100, "a")
	if c.Size() != 100 || c.Height() != 99 {
		t.Errorf("chain: size=%d height=%d", c.Size(), c.Height())
	}
	s := Star(100, "a")
	if s.Size() != 100 || s.Height() != 1 {
		t.Errorf("star: size=%d height=%d", s.Size(), s.Height())
	}
	b := FullBinary(4, "a")
	if b.Size() != 31 || b.Height() != 4 {
		t.Errorf("binary: size=%d height=%d", b.Size(), b.Height())
	}
}

func TestSortDocOrderDedup(t *testing.T) {
	tr, m := figure1Tree(t)
	in := []NodeID{m["n6"], m["n2"], m["n6"], m["n1"], m["n4"]}
	out := tr.SortDocOrder(in)
	want := []NodeID{m["n1"], m["n2"], m["n4"], m["n6"]}
	if len(out) != len(want) {
		t.Fatalf("got %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("got %v want %v", out, want)
		}
	}
}

func TestDeepChainNoStackOverflow(t *testing.T) {
	c := Chain(200000, "a")
	c.Reindex()
	if c.Pre(NodeID(c.Size()-1)) != c.Size()-1 {
		t.Error("pre numbering wrong on deep chain")
	}
	if got := c.ElementText(c.Root()); got != "" {
		t.Errorf("unexpected text %q", got)
	}
}

func BenchmarkE1_TreeEncoding(b *testing.B) {
	tr := RandomTree(rand.New(rand.NewSource(1)), 10000, []string{"a", "b", "c"}, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes, edges := tr.EncodeBinary()
		if len(nodes) == 0 || len(edges) == 0 {
			b.Fatal("empty encoding")
		}
	}
}

func BenchmarkReindex(b *testing.B) {
	tr := RandomTree(rand.New(rand.NewSource(1)), 100000, []string{"a"}, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.indexed = false
		tr.Reindex()
	}
}

func TestSubtreeSize(t *testing.T) {
	tr := MustParseTerm("a(b(c,d),e)")
	// Sizes: a=5, b=3, c=1, d=1, e=1.
	want := map[string]int{"a": 5, "b": 3, "c": 1, "d": 1, "e": 1}
	tr.Walk(func(n NodeID) {
		if got := tr.SubtreeSize(n); got != want[tr.Label(n)] {
			t.Errorf("SubtreeSize(%s) = %d, want %d", tr.Label(n), got, want[tr.Label(n)])
		}
	})
}

func TestSubtreeSizeProperty(t *testing.T) {
	f := func(seed int64) bool {
		tr := RandomTree(rand.New(rand.NewSource(seed)), 50, []string{"a"}, 4)
		for n := 0; n < tr.Size(); n++ {
			want := 1 + len(tr.Descendants(NodeID(n)))
			if tr.SubtreeSize(NodeID(n)) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLabelInterning(t *testing.T) {
	tr := MustParseTerm("a(b,a(b),\"txt\")")
	if tr.NumLabels() != 3 { // a, b, #text
		t.Fatalf("NumLabels = %d, want 3", tr.NumLabels())
	}
	if tr.LabelID(0) != tr.LabelID(2) {
		t.Error("equal labels intern to different ids")
	}
	if tr.LabelIDFor("a") != tr.LabelID(0) {
		t.Error("LabelIDFor(a) disagrees with node symbol")
	}
	if tr.LabelIDFor("zz") != NoLabel {
		t.Error("unknown label should map to NoLabel")
	}
	if tr.LabelName(tr.LabelID(0)) != "a" || tr.Label(0) != "a" {
		t.Error("label round trip broken")
	}
	if !tr.HasLabel(0, "a") || tr.HasLabel(0, "b") || tr.HasLabel(0, "zz") {
		t.Error("HasLabel wrong")
	}
}

func TestLabelAndKindBits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := RandomTree(rng, 300, []string{"a", "b", "c"}, 6)
	for _, lbl := range []string{"a", "b", "c"} {
		id := tr.LabelIDFor(lbl)
		if id == NoLabel {
			continue
		}
		bits := tr.LabelBits(id)
		for i := 0; i < tr.Size(); i++ {
			got := bits[i>>6]&(1<<(uint(i)&63)) != 0
			if got != (tr.Label(NodeID(i)) == lbl) {
				t.Fatalf("LabelBits(%s) wrong at node %d", lbl, i)
			}
		}
	}
	eb := tr.KindBits(Element)
	for i := 0; i < tr.Size(); i++ {
		got := eb[i>>6]&(1<<(uint(i)&63)) != 0
		if got != (tr.Kind(NodeID(i)) == Element) {
			t.Fatalf("KindBits(Element) wrong at node %d", i)
		}
	}
	// Mutation invalidates the cache.
	tr.AppendChild(tr.Root(), "zz")
	id := tr.LabelIDFor("zz")
	if id == NoLabel {
		t.Fatal("new label not interned")
	}
	nb := tr.LabelBits(id)
	last := tr.Size() - 1
	if nb[last>>6]&(1<<(uint(last)&63)) == 0 {
		t.Fatal("label bits stale after mutation")
	}
}

func TestFingerprint(t *testing.T) {
	build := func() *Tree {
		tr := New(0)
		r := tr.AddRoot("a")
		c := tr.AppendChild(r, "b")
		tr.SetAttr(c, "k", "v")
		tr.AppendText(c, "hello")
		return tr
	}
	t1, t2 := build(), build()
	if t1.Fingerprint() != t2.Fingerprint() {
		t.Fatal("identical trees fingerprint differently")
	}
	if t1.Fingerprint() != t1.Clone().Fingerprint() {
		t.Fatal("clone fingerprints differently")
	}
	fp := t1.Fingerprint()
	if t1.Fingerprint() != fp {
		t.Fatal("fingerprint not stable")
	}
	t1.SetText(2, "world")
	if t1.Fingerprint() == fp {
		t.Fatal("SetText did not change the fingerprint")
	}
	t2.SetAttr(1, "k", "w")
	if t2.Fingerprint() == fp {
		t.Fatal("SetAttr did not change the fingerprint")
	}
	t3 := build()
	t3.AppendChild(t3.Root(), "c")
	if t3.Fingerprint() == fp {
		t.Fatal("AppendChild did not change the fingerprint")
	}
}

func TestDocOrdered(t *testing.T) {
	if !Chain(50, "a").DocOrdered() {
		t.Error("chain should be doc ordered")
	}
	if !FullBinary(4, "a").DocOrdered() {
		t.Error("depth-first built tree should be doc ordered")
	}
	// Interleaved construction: ids diverge from document order.
	tr2 := New(4)
	r := tr2.AddRoot("r")
	a := tr2.AppendChild(r, "a")
	tr2.AppendChild(r, "b")
	tr2.AppendChild(a, "g")
	if tr2.DocOrdered() {
		t.Error("interleaved tree must not be doc ordered")
	}
}
