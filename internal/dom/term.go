package dom

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseTerm builds a tree from a nested-term notation such as
//
//	html(body(table(tr(td("x"),td("y"))),hr))
//
// Identifiers become element labels; double-quoted strings (Go syntax)
// become text nodes; attributes may be attached in square brackets after
// a label: a[href=x.html](...). The notation exists for tests and
// examples; real documents come from the HTML parser.
func ParseTerm(s string) (*Tree, error) {
	p := &termParser{src: s}
	t := New(16)
	p.skipWS()
	if err := p.parseNode(t, Nil); err != nil {
		return nil, err
	}
	p.skipWS()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("dom: trailing input at offset %d in %q", p.pos, s)
	}
	if t.Size() == 0 {
		return nil, fmt.Errorf("dom: empty term")
	}
	return t, nil
}

// MustParseTerm is ParseTerm that panics on error, for tests and examples.
func MustParseTerm(s string) *Tree {
	t, err := ParseTerm(s)
	if err != nil {
		panic(err)
	}
	return t
}

type termParser struct {
	src string
	pos int
}

func (p *termParser) skipWS() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *termParser) parseNode(t *Tree, parent NodeID) error {
	p.skipWS()
	if p.pos >= len(p.src) {
		return fmt.Errorf("dom: unexpected end of term")
	}
	if p.src[p.pos] == '"' {
		// Text node.
		rest := p.src[p.pos:]
		val, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return fmt.Errorf("dom: bad string at offset %d: %v", p.pos, err)
		}
		unq, err := strconv.Unquote(val)
		if err != nil {
			return fmt.Errorf("dom: bad string at offset %d: %v", p.pos, err)
		}
		p.pos += len(val)
		if parent == Nil {
			return fmt.Errorf("dom: text node cannot be the root")
		}
		t.AppendText(parent, unq)
		return nil
	}
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '(' || c == ')' || c == ',' || c == '[' || unicode.IsSpace(rune(c)) {
			break
		}
		p.pos++
	}
	if p.pos == start {
		return fmt.Errorf("dom: expected label at offset %d", p.pos)
	}
	label := p.src[start:p.pos]
	var n NodeID
	if parent == Nil {
		n = t.AddRoot(label)
	} else {
		n = t.AppendChild(parent, label)
	}
	p.skipWS()
	// Optional attribute block [k=v,k2=v2].
	if p.pos < len(p.src) && p.src[p.pos] == '[' {
		p.pos++
		for {
			p.skipWS()
			if p.pos < len(p.src) && p.src[p.pos] == ']' {
				p.pos++
				break
			}
			ks := p.pos
			for p.pos < len(p.src) && p.src[p.pos] != '=' {
				p.pos++
			}
			if p.pos >= len(p.src) {
				return fmt.Errorf("dom: unterminated attribute block")
			}
			key := strings.TrimSpace(p.src[ks:p.pos])
			p.pos++ // '='
			vs := p.pos
			for p.pos < len(p.src) && p.src[p.pos] != ',' && p.src[p.pos] != ']' {
				p.pos++
			}
			if p.pos >= len(p.src) {
				return fmt.Errorf("dom: unterminated attribute block")
			}
			val := strings.TrimSpace(p.src[vs:p.pos])
			t.SetAttr(n, key, val)
			if p.src[p.pos] == ',' {
				p.pos++
			}
		}
		p.skipWS()
	}
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		p.pos++
		for {
			if err := p.parseNode(t, n); err != nil {
				return err
			}
			p.skipWS()
			if p.pos >= len(p.src) {
				return fmt.Errorf("dom: unterminated child list of %q", label)
			}
			switch p.src[p.pos] {
			case ',':
				p.pos++
			case ')':
				p.pos++
				return nil
			default:
				return fmt.Errorf("dom: expected ',' or ')' at offset %d", p.pos)
			}
		}
	}
	return nil
}
