package dom

// This file implements the binary firstchild/nextsibling view of an
// unranked tree shown in Figure 1 of the paper: every unranked ordered
// tree is equivalently described by the two partial functions
// firstchild and nextsibling, each node having at most one of each and
// being the image of at most one node under each (the bidirectional
// functional dependencies on which Theorem 2.4 rests).
//
// The encoding is also the carrier for the bottom-up tree automata of
// internal/automata (MSO on unranked trees = MSO on their binary
// encodings).

// Edge is a single firstchild or nextsibling fact of the binary view.
type Edge struct {
	From, To NodeID
	// FirstChild is true for a firstchild edge and false for a
	// nextsibling edge.
	FirstChild bool
}

// BinaryEncoding returns all firstchild and nextsibling edges of the
// tree, in document order of their source node. Together with the unary
// relations (root, leaf, lastsibling, label_a) these determine the tree
// up to isomorphism; DecodeBinary inverts the operation.
func (t *Tree) BinaryEncoding() []Edge {
	var edges []Edge
	for n := 0; n < t.Size(); n++ {
		id := NodeID(n)
		if c := t.firstChild[id]; c != Nil {
			edges = append(edges, Edge{From: id, To: c, FirstChild: true})
		}
		if s := t.nextSibling[id]; s != Nil {
			edges = append(edges, Edge{From: id, To: s, FirstChild: false})
		}
	}
	return edges
}

// NodeInfo is the unary part of the binary encoding of one node.
type NodeInfo struct {
	ID    NodeID
	Kind  Kind
	Label string
	Text  string
	Attrs []Attr
}

// EncodeBinary returns the complete binary-encoded form of the tree:
// its node table and edge list. This realizes Figure 1(b).
func (t *Tree) EncodeBinary() ([]NodeInfo, []Edge) {
	nodes := make([]NodeInfo, t.Size())
	for n := 0; n < t.Size(); n++ {
		id := NodeID(n)
		nodes[n] = NodeInfo{ID: id, Kind: t.kind[id], Label: t.Label(id), Text: t.text[id], Attrs: t.attrs[id]}
	}
	return nodes, t.BinaryEncoding()
}

// DecodeBinary reconstructs an unranked tree from its binary encoding.
// The node at index 0 must be the root. It panics on malformed input
// (dangling edges); callers produce encodings with EncodeBinary.
func DecodeBinary(nodes []NodeInfo, edges []Edge) *Tree {
	if len(nodes) == 0 {
		return New(0)
	}
	fc := make(map[NodeID]NodeID)
	ns := make(map[NodeID]NodeID)
	for _, e := range edges {
		if e.FirstChild {
			fc[e.From] = e.To
		} else {
			ns[e.From] = e.To
		}
	}
	info := make(map[NodeID]NodeInfo, len(nodes))
	for _, n := range nodes {
		info[n.ID] = n
	}
	t := New(len(nodes))
	var build func(old NodeID, parent NodeID)
	build = func(old NodeID, parent NodeID) {
		in, ok := info[old]
		if !ok {
			panic("dom: DecodeBinary: dangling edge")
		}
		var id NodeID
		switch {
		case parent == Nil:
			id = t.AddRoot(in.Label)
		case in.Kind == Text:
			id = t.AppendText(parent, in.Text)
		case in.Kind == Comment:
			id = t.AppendComment(parent, in.Text)
		default:
			id = t.AppendChild(parent, in.Label)
		}
		for _, a := range in.Attrs {
			t.SetAttr(id, a.Name, a.Value)
		}
		if c, ok := fc[old]; ok {
			// Walk the child chain via nextsibling.
			for cur := c; ; {
				build(cur, id)
				nxt, ok := ns[cur]
				if !ok {
					break
				}
				cur = nxt
			}
		}
	}
	build(nodes[0].ID, Nil)
	return t
}
