package dom_test

import (
	"math/rand"
	"testing"

	"repro/internal/dom"
	"repro/internal/htmlparse"
)

// naiveSubtreeHash is the reference implementation of SubtreeHash: a
// direct recursive FNV-1a over the subtree, sharing no code with the
// packed single-pass version in dom.
func naiveSubtreeHash(t *dom.Tree, n dom.NodeID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	byte1 := func(b byte) {
		h = (h ^ uint64(b)) * prime64
	}
	str := func(s string) {
		for i := 0; i < len(s); i++ {
			byte1(s[i])
		}
		byte1(0)
	}
	byte1(byte(t.Kind(n)))
	str(t.Label(n))
	str(t.Text(n))
	byte1(byte(len(t.Attrs(n))))
	for _, a := range t.Attrs(n) {
		str(a.Name)
		str(a.Value)
	}
	for c := t.FirstChild(n); c != dom.Nil; c = t.NextSibling(c) {
		ch := naiveSubtreeHash(t, c)
		for s := 0; s < 64; s += 8 {
			byte1(byte(ch >> s))
		}
	}
	return h
}

// findByAttr returns the first node (in id order) carrying attr=value.
func findByAttr(t *dom.Tree, attr, value string) dom.NodeID {
	for n := 0; n < t.Size(); n++ {
		if v, ok := t.Attr(dom.NodeID(n), attr); ok && v == value {
			return dom.NodeID(n)
		}
	}
	return dom.Nil
}

func TestSubtreeHashStableAcrossDocuments(t *testing.T) {
	// The same fragment embedded at different positions of two
	// independently parsed documents (different surrounding labels,
	// different interning order) must hash identically.
	const frag = `<div id="frag" class="c"><span>alpha</span><i>beta</i><!--note--></div>`
	a := htmlparse.Parse(`<html><body><p>before</p>` + frag + `</body></html>`)
	b := htmlparse.Parse(`<html><body><table><tr><td>` + frag + `</td></tr></table><p>x</p></body></html>`)
	na, nb := findByAttr(a, "id", "frag"), findByAttr(b, "id", "frag")
	if na == dom.Nil || nb == dom.Nil {
		t.Fatal("fragment not found")
	}
	if a.SubtreeHash(na) != b.SubtreeHash(nb) {
		t.Errorf("equal fragments hash differently: %x vs %x", a.SubtreeHash(na), b.SubtreeHash(nb))
	}
	// A sibling subtree with different content must not collide.
	if pa := findByAttr(a, "id", "frag"); a.SubtreeHash(a.Parent(pa)) == a.SubtreeHash(pa) {
		t.Error("parent and child subtree hashes collide")
	}
}

func TestSubtreeHashMutationChangesAncestors(t *testing.T) {
	tr := htmlparse.Parse(`<html><body><div><p><span>deep</span></p><p>sib</p></div><div>other</div></body></html>`)
	before := make([]uint64, tr.Size())
	for n := range before {
		before[n] = tr.SubtreeHash(dom.NodeID(n))
	}
	// Mutate the deepest text node.
	var target dom.NodeID = dom.Nil
	for n := 0; n < tr.Size(); n++ {
		if tr.Kind(dom.NodeID(n)) == dom.Text && tr.Text(dom.NodeID(n)) == "deep" {
			target = dom.NodeID(n)
		}
	}
	if target == dom.Nil {
		t.Fatal("text node not found")
	}
	tr.SetText(target, "DEEPER")
	onPath := map[dom.NodeID]bool{}
	for n := target; n != dom.Nil; n = tr.Parent(n) {
		onPath[n] = true
	}
	for n := 0; n < tr.Size(); n++ {
		changed := tr.SubtreeHash(dom.NodeID(n)) != before[n]
		if onPath[dom.NodeID(n)] && !changed {
			t.Errorf("node %d on the mutation path did not change hash", n)
		}
		if !onPath[dom.NodeID(n)] && changed {
			t.Errorf("node %d off the mutation path changed hash", n)
		}
	}
}

func TestSubtreeHashMatchesNaiveOnRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20; i++ {
		tr := dom.RandomTree(rng, 200, []string{"a", "b", "c"}, 5)
		dom.Mutate(tr, rng, 30)
		for n := 0; n < tr.Size(); n++ {
			if got, want := tr.SubtreeHash(dom.NodeID(n)), naiveSubtreeHash(tr, dom.NodeID(n)); got != want {
				t.Fatalf("tree %d node %d: SubtreeHash %x != naive %x", i, n, got, want)
			}
		}
	}
}

func FuzzSubtreeHash(f *testing.F) {
	f.Add("<html><body><p>hi</p></body></html>", int64(1))
	f.Add(`<div a="1"><span>x</span><!--c--><i>y</i></div>`, int64(2))
	f.Add("<table><tr><td>cell</td></tr></table>", int64(3))
	f.Fuzz(func(t *testing.T, src string, seed int64) {
		tr := htmlparse.Parse(src)
		dom.Mutate(tr, rand.New(rand.NewSource(seed)), 8)
		for n := 0; n < tr.Size(); n++ {
			if got, want := tr.SubtreeHash(dom.NodeID(n)), naiveSubtreeHash(tr, dom.NodeID(n)); got != want {
				t.Fatalf("node %d: SubtreeHash %x != naive %x", n, got, want)
			}
		}
	})
}
