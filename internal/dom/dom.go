// Package dom implements the unranked ordered labeled trees of the Lixto
// paper (Section 2.2): the structure
//
//	t_ur = <dom, root, leaf, (label_a) a∈Σ, firstchild, nextsibling, lastsibling>
//
// together with the document-order relation ≺ and the auxiliary relations
// (parent, child, descendant, following) needed by the query engines built
// on top of it.
//
// A Tree stores its nodes in flat parallel slices indexed by NodeID.  When
// a tree is built top-down, left-to-right (as the HTML parser and all
// generators in this repository do), NodeIDs coincide with document order;
// for trees assembled in any other order, Reindex computes pre/post
// numbers so that all axis checks remain O(1).
//
// Trees carry two node kinds: element nodes (with a label from the
// alphabet Σ and optional attributes) and text nodes (leaves holding
// character data).  The paper models strings and attributes as encoded
// subtrees over a character alphabet; we keep them as node payloads, which
// is equivalent for every algorithm in this repository and is what the
// actual Lixto system did.
package dom

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// NodeID identifies a node within a single Tree. The zero Tree has no
// nodes; valid ids are 0..Tree.Size()-1.
type NodeID int32

// Nil is the sentinel "no node" value returned by navigation functions
// when the requested node does not exist (e.g. FirstChild of a leaf).
const Nil NodeID = -1

// Kind distinguishes element nodes from text nodes.
type Kind uint8

const (
	// Element is an interior (or leaf) node labeled with a tag symbol.
	Element Kind = iota
	// Text is a leaf node holding character data. Its Label is "#text".
	Text
	// Comment is a leaf node holding an HTML/XML comment. Its Label is
	// "#comment". Comments participate in the tree but are skipped by
	// ElementText and by default node tests.
	Comment
)

// TextLabel is the pseudo-label of text nodes.
const TextLabel = "#text"

// CommentLabel is the pseudo-label of comment nodes.
const CommentLabel = "#comment"

// Attr is a single name/value attribute of an element node.
type Attr struct {
	Name  string
	Value string
}

// LabelID is a dense interned symbol for a node label. Every distinct
// label string of a tree (including the #text/#comment pseudo-labels)
// receives one id in 0..NumLabels()-1, assigned in first-occurrence
// order. Comparing LabelIDs replaces string comparison on the hot paths
// of every evaluator; Label still returns the string for display and
// encoding.
type LabelID int32

// NoLabel is returned by LabelIDFor for labels that do not occur in the
// tree.
const NoLabel LabelID = -1

// Tree is an unranked ordered labeled tree. The zero value is an empty
// tree to which a root must be added with AddRoot before use.
type Tree struct {
	kind        []Kind
	labelID     []LabelID
	text        []string // text/comment payload; "" for elements
	attrs       [][]Attr
	parent      []NodeID
	firstChild  []NodeID
	lastChild   []NodeID
	nextSibling []NodeID
	prevSibling []NodeID

	// Label interning: labelNames[id] is the string of symbol id;
	// labelIndex is the inverse map.
	labelNames []string
	labelIndex map[string]LabelID

	// pre/post order numbers and subtree sizes; valid while indexed.
	pre        []int32
	post       []int32
	size       []int32
	indexed    bool
	docOrdered bool // NodeIDs coincide with document order; valid while indexed

	// Lazily-built characteristic bitsets: labelBits[id] has bit n set
	// iff label_id(n); kindBits likewise per node kind. Valid while
	// bitsValid.
	labelBits [][]uint64
	kindBits  [3][]uint64
	bitsValid bool

	// attrArena is the chunked backing store SetAttrs copies into: each
	// node's attribute list is a sub-slice of the current chunk, so a
	// document with hundreds of attributed nodes costs a handful of
	// chunk allocations instead of one slice per node. Retired chunks
	// stay alive through the per-node sub-slices that reference them.
	attrArena []Attr

	// fp caches Fingerprint; valid while fpValid.
	fp      uint64
	fpValid bool

	// subHash holds the per-node subtree fingerprints (SubtreeHash) in
	// one packed allocation, like the pre/post/size index; valid while
	// subHashValid.
	subHash      []uint64
	subHashValid bool

	// warmMu serializes Warm, so concurrent warmers (crawl-frontier
	// workers handed the same tree under different URLs) do not race on
	// the lazy caches above.
	warmMu sync.Mutex
}

// New returns an empty tree with capacity hint n.
func New(n int) *Tree {
	t := &Tree{}
	t.grow(n)
	return t
}

// grow pre-allocates every parallel slice for n nodes, so a builder
// that sized its hint correctly performs zero growth reallocations
// while appending — the arena property the streaming HTML parser
// relies on. Growth past the hint falls back to append's amortized
// doubling.
func (t *Tree) grow(n int) {
	if n <= 0 || cap(t.kind) >= n {
		return
	}
	k := make([]Kind, len(t.kind), n)
	copy(k, t.kind)
	t.kind = k
	l := make([]LabelID, len(t.labelID), n)
	copy(l, t.labelID)
	t.labelID = l
	tx := make([]string, len(t.text), n)
	copy(tx, t.text)
	t.text = tx
	at := make([][]Attr, len(t.attrs), n)
	copy(at, t.attrs)
	t.attrs = at
	// The five structural id slices share one backing allocation,
	// partitioned with full slice expressions so growth past the hint
	// reallocates the overflowing slice privately instead of clobbering
	// its neighbour.
	ids := make([]NodeID, 5*n)
	growIDs := func(s []NodeID, i int) []NodeID {
		out := ids[i*n : i*n+len(s) : (i+1)*n]
		copy(out, s)
		return out
	}
	t.parent = growIDs(t.parent, 0)
	t.firstChild = growIDs(t.firstChild, 1)
	t.lastChild = growIDs(t.lastChild, 2)
	t.nextSibling = growIDs(t.nextSibling, 3)
	t.prevSibling = growIDs(t.prevSibling, 4)
}

// Size returns the number of nodes in the tree, |dom|.
func (t *Tree) Size() int { return len(t.kind) }

// Root returns the root node, or Nil if the tree is empty. The paper's
// unary relation root(x) holds exactly for this node.
func (t *Tree) Root() NodeID {
	if len(t.kind) == 0 {
		return Nil
	}
	return 0
}

// AddRoot creates the root element node. It must be the first node added.
func (t *Tree) AddRoot(label string) NodeID {
	if len(t.kind) != 0 {
		panic("dom: AddRoot on non-empty tree")
	}
	return t.addNode(Element, label, "", Nil)
}

// AppendChild adds a new element node labeled label as the rightmost
// child of parent and returns its id.
func (t *Tree) AppendChild(parent NodeID, label string) NodeID {
	return t.addNode(Element, label, "", parent)
}

// AppendText adds a new text node holding data as the rightmost child of
// parent and returns its id.
func (t *Tree) AppendText(parent NodeID, data string) NodeID {
	return t.addNode(Text, TextLabel, data, parent)
}

// AppendComment adds a new comment node as the rightmost child of parent.
func (t *Tree) AppendComment(parent NodeID, data string) NodeID {
	return t.addNode(Comment, CommentLabel, data, parent)
}

func (t *Tree) addNode(k Kind, label, text string, parent NodeID) NodeID {
	id := NodeID(len(t.kind))
	t.kind = append(t.kind, k)
	t.labelID = append(t.labelID, t.intern(label))
	t.text = append(t.text, text)
	t.attrs = append(t.attrs, nil)
	t.parent = append(t.parent, parent)
	t.firstChild = append(t.firstChild, Nil)
	t.lastChild = append(t.lastChild, Nil)
	t.nextSibling = append(t.nextSibling, Nil)
	t.prevSibling = append(t.prevSibling, Nil)
	t.indexed = false
	t.bitsValid = false
	t.fpValid = false
	t.subHashValid = false
	if parent != Nil {
		last := t.lastChild[parent]
		if last == Nil {
			t.firstChild[parent] = id
		} else {
			t.nextSibling[last] = id
			t.prevSibling[id] = last
		}
		t.lastChild[parent] = id
	}
	return id
}

// intern maps a label string to its dense symbol, allocating a fresh id
// on first occurrence.
func (t *Tree) intern(label string) LabelID {
	if id, ok := t.labelIndex[label]; ok {
		return id
	}
	if t.labelIndex == nil {
		t.labelIndex = make(map[string]LabelID, 16)
	}
	if t.labelNames == nil {
		t.labelNames = make([]string, 0, 16)
	}
	id := LabelID(len(t.labelNames))
	t.labelIndex[label] = id
	t.labelNames = append(t.labelNames, label)
	return id
}

// NumLabels returns the number of distinct labels interned so far.
func (t *Tree) NumLabels() int { return len(t.labelNames) }

// LabelID returns the interned symbol of node n's label.
func (t *Tree) LabelID(n NodeID) LabelID { return t.labelID[n] }

// LabelIDFor returns the symbol of a label string, or NoLabel if no node
// of the tree carries that label.
func (t *Tree) LabelIDFor(label string) LabelID {
	if id, ok := t.labelIndex[label]; ok {
		return id
	}
	return NoLabel
}

// LabelName returns the label string of symbol id.
func (t *Tree) LabelName(id LabelID) string { return t.labelNames[id] }

// wordsFor returns the number of 64-bit words covering the tree's nodes.
func (t *Tree) wordsFor() int { return (len(t.kind) + 63) / 64 }

func (t *Tree) ensureBits() {
	if t.bitsValid {
		return
	}
	w := t.wordsFor()
	// One backing array for every characteristic bitset (labels first,
	// then the three kinds), capped sub-slices so accidental appends
	// cannot cross into a neighbour.
	L := len(t.labelNames)
	backing := make([]uint64, (L+len(t.kindBits))*w)
	t.labelBits = make([][]uint64, L)
	for i := range t.labelBits {
		t.labelBits[i] = backing[i*w : (i+1)*w : (i+1)*w]
	}
	for k := range t.kindBits {
		o := (L + k) * w
		t.kindBits[k] = backing[o : o+w : o+w]
	}
	for n, id := range t.labelID {
		t.labelBits[id][n>>6] |= 1 << (uint(n) & 63)
		t.kindBits[t.kind[n]][n>>6] |= 1 << (uint(n) & 63)
	}
	t.bitsValid = true
}

// LabelBits returns the characteristic bitset of label_id (bit n set iff
// node n carries the label), built lazily and cached until the tree is
// mutated. The slice is shared: callers must not modify it.
func (t *Tree) LabelBits(id LabelID) []uint64 {
	t.ensureBits()
	return t.labelBits[id]
}

// KindBits returns the characteristic bitset of a node kind (shared
// slice; do not mutate).
func (t *Tree) KindBits(k Kind) []uint64 {
	t.ensureBits()
	return t.kindBits[k]
}

// Fingerprint returns a cheap content hash of the tree covering
// structure, kinds, labels, text, and attributes (FNV-1a over a
// canonical byte walk). It is cached and invalidated on mutation, so
// unchanged trees fingerprint in O(1); evaluation caches key on it.
// Equal trees always agree; distinct trees collide with probability
// ~2^-64.
func (t *Tree) Fingerprint() uint64 {
	if t.fpValid {
		return t.fp
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	byte1 := func(b byte) {
		h = (h ^ uint64(b)) * prime64
	}
	str := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * prime64
		}
		byte1(0)
	}
	num := func(v int32) {
		h = (h ^ uint64(uint32(v))) * prime64
	}
	num(int32(len(t.kind)))
	for n := range t.kind {
		byte1(byte(t.kind[n]))
		num(int32(t.parent[n]))
		str(t.labelNames[t.labelID[n]])
		str(t.text[n])
		num(int32(len(t.attrs[n])))
		for _, a := range t.attrs[n] {
			str(a.Name)
			str(a.Value)
		}
	}
	t.fp = h
	t.fpValid = true
	return h
}

// ensureSubHash fills subHash with the merkle-style subtree
// fingerprints in a single bottom-up pass. Nodes are only ever created
// by addNode, which requires the parent to exist first, so every
// parent id is smaller than its children's ids and one reverse-id
// sweep visits children before parents.
func (t *Tree) ensureSubHash() {
	if t.subHashValid {
		return
	}
	n := len(t.kind)
	if cap(t.subHash) < n {
		t.subHash = make([]uint64, n)
	} else {
		t.subHash = t.subHash[:n]
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	for i := n - 1; i >= 0; i-- {
		h := uint64(offset64)
		byte1 := func(b byte) {
			h = (h ^ uint64(b)) * prime64
		}
		str := func(s string) {
			for j := 0; j < len(s); j++ {
				h = (h ^ uint64(s[j])) * prime64
			}
			byte1(0)
		}
		num := func(v uint64) {
			for s := 0; s < 64; s += 8 {
				byte1(byte(v >> s))
			}
		}
		byte1(byte(t.kind[i]))
		str(t.labelNames[t.labelID[i]])
		str(t.text[i])
		byte1(byte(len(t.attrs[i])))
		for _, a := range t.attrs[i] {
			str(a.Name)
			str(a.Value)
		}
		for c := t.firstChild[i]; c != Nil; c = t.nextSibling[c] {
			num(t.subHash[c])
		}
		t.subHash[i] = h
	}
	t.subHashValid = true
}

// SubtreeHash returns the content fingerprint of the subtree rooted at
// n: an FNV-1a hash over n's kind, label, text and attributes mixed
// with the subtree hashes of its children in sibling order. It depends
// only on subtree content — never on n's position — so equal subtrees
// hash equal across independently parsed documents, and any mutation
// inside the subtree changes the hash of n and of every ancestor
// (modulo ~2^-64 collisions). The whole table is built in one O(|dom|)
// pass on first use and cached until mutation; Warm precomputes it, so
// on warmed trees concurrent readers stay lock-free.
func (t *Tree) SubtreeHash(n NodeID) uint64 {
	t.ensureSubHash()
	return t.subHash[n]
}

// Warm eagerly builds every lazily-cached structure of the tree — the
// pre/post index, the label and kind bitsets, the content fingerprint,
// and the per-node subtree fingerprints. A warmed tree is effectively read-only as long as it is
// not mutated, so multiple goroutines may evaluate queries over it
// concurrently; the parallel crawl frontier warms every fetched
// document on its worker before publishing it. Warm itself is safe to
// call from multiple goroutines (callers serialize on an internal
// lock), which covers fetchers that hand the same tree out under
// several URLs; the read accessors stay lock-free and must not run
// concurrently with the first Warm of a tree.
func (t *Tree) Warm() {
	t.warmMu.Lock()
	defer t.warmMu.Unlock()
	t.ensureIndex()
	t.ensureBits()
	t.Fingerprint()
	t.ensureSubHash()
}

// WarmIndex builds only the pre/post index, under the same lock as
// Warm — the part interpreted evaluation reads. Use it when the label
// bitsets and fingerprint would be dead weight.
func (t *Tree) WarmIndex() {
	t.warmMu.Lock()
	defer t.warmMu.Unlock()
	t.ensureIndex()
}

// SetAttr sets attribute name to value on element node n, replacing any
// existing attribute of the same name.
func (t *Tree) SetAttr(n NodeID, name, value string) {
	for i := range t.attrs[n] {
		if t.attrs[n][i].Name == name {
			t.attrs[n][i].Value = value
			t.fpValid = false
			t.subHashValid = false
			return
		}
	}
	t.attrs[n] = append(t.attrs[n], Attr{Name: name, Value: value})
	t.fpValid = false
	t.subHashValid = false
}

// attrChunk is the allocation unit of the attribute arena.
const attrChunk = 64

// SetAttrs replaces node n's whole attribute list in one call, copying
// the values into the tree's attribute arena. Duplicate names follow
// SetAttr semantics: the first occurrence keeps its position, later
// occurrences overwrite its value. The input slice is not retained, so
// builders may reuse a scratch buffer across calls.
func (t *Tree) SetAttrs(n NodeID, attrs []Attr) {
	if len(attrs) == 0 {
		t.attrs[n] = nil
		t.fpValid = false
		t.subHashValid = false
		return
	}
	if cap(t.attrArena)-len(t.attrArena) < len(attrs) {
		size := attrChunk
		if len(attrs) > size {
			size = len(attrs)
		}
		t.attrArena = make([]Attr, 0, size)
	}
	start := len(t.attrArena)
	for _, a := range attrs {
		dup := false
		for i := start; i < len(t.attrArena); i++ {
			if t.attrArena[i].Name == a.Name {
				t.attrArena[i].Value = a.Value
				dup = true
				break
			}
		}
		if !dup {
			t.attrArena = append(t.attrArena, a)
		}
	}
	end := len(t.attrArena)
	t.attrs[n] = t.attrArena[start:end:end]
	t.fpValid = false
	t.subHashValid = false
}

// Attr returns the value of attribute name on node n and whether it is set.
func (t *Tree) Attr(n NodeID, name string) (string, bool) {
	for _, a := range t.attrs[n] {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Attrs returns the attribute list of node n (shared slice; do not mutate).
func (t *Tree) Attrs(n NodeID) []Attr { return t.attrs[n] }

// Kind returns the node kind of n.
func (t *Tree) Kind(n NodeID) Kind { return t.kind[n] }

// Label returns the label of node n: the tag symbol for elements,
// "#text" for text nodes and "#comment" for comments. This realizes the
// paper's unary relations label_a(x).
func (t *Tree) Label(n NodeID) string { return t.labelNames[t.labelID[n]] }

// HasLabel reports label_a(n), i.e. whether node n carries label a.
func (t *Tree) HasLabel(n NodeID, a string) bool {
	id, ok := t.labelIndex[a]
	return ok && t.labelID[n] == id
}

// Text returns the character data of a text or comment node ("" for
// element nodes).
func (t *Tree) Text(n NodeID) string { return t.text[n] }

// SetText replaces the character data of a text or comment node.
func (t *Tree) SetText(n NodeID, data string) {
	t.text[n] = data
	t.fpValid = false
	t.subHashValid = false
}

// Parent returns the parent of n, or Nil for the root.
func (t *Tree) Parent(n NodeID) NodeID { return t.parent[n] }

// FirstChild returns the leftmost child of n, or Nil. This is the binary
// relation firstchild(n, ·) of τ_ur: each node has at most one first
// child and is the first child of at most one node (the bidirectional
// functional dependency Theorem 2.4 relies on).
func (t *Tree) FirstChild(n NodeID) NodeID { return t.firstChild[n] }

// LastChild returns the rightmost child of n, or Nil.
func (t *Tree) LastChild(n NodeID) NodeID { return t.lastChild[n] }

// NextSibling returns the sibling immediately to the right of n, or Nil.
// This is the binary relation nextsibling(n, ·) of τ_ur.
func (t *Tree) NextSibling(n NodeID) NodeID { return t.nextSibling[n] }

// PrevSibling returns the sibling immediately to the left of n, or Nil
// (the inverse relation nextsibling(·, n)).
func (t *Tree) PrevSibling(n NodeID) NodeID { return t.prevSibling[n] }

// IsLeaf reports the unary relation leaf(n): n has no children.
func (t *Tree) IsLeaf(n NodeID) bool { return t.firstChild[n] == Nil }

// IsLastSibling reports the unary relation lastsibling(n): n is the
// rightmost child of its parent. As in the paper, the root is not a last
// sibling (it has no parent).
func (t *Tree) IsLastSibling(n NodeID) bool {
	return t.parent[n] != Nil && t.nextSibling[n] == Nil
}

// IsFirstSibling reports that n is the leftmost child of its parent
// (the unary predicate Firstsibling of Section 4, used to express
// Firstchild(x,y) ⇔ Child(x,y) ∧ Firstsibling(y)).
func (t *Tree) IsFirstSibling(n NodeID) bool {
	return t.parent[n] != Nil && t.prevSibling[n] == Nil
}

// IsRoot reports the unary relation root(n).
func (t *Tree) IsRoot(n NodeID) bool { return t.parent[n] == Nil }

// Children returns the child ids of n in sibling (document) order.
func (t *Tree) Children(n NodeID) []NodeID {
	var out []NodeID
	for c := t.firstChild[n]; c != Nil; c = t.nextSibling[c] {
		out = append(out, c)
	}
	return out
}

// ChildCount returns the number of children of n.
func (t *Tree) ChildCount(n NodeID) int {
	k := 0
	for c := t.firstChild[n]; c != Nil; c = t.nextSibling[c] {
		k++
	}
	return k
}

// ChildIndex returns the position of n among its siblings, counting from
// 1 (XPath convention), or 0 for the root.
func (t *Tree) ChildIndex(n NodeID) int {
	if t.parent[n] == Nil {
		return 0
	}
	i := 1
	for s := t.prevSibling[n]; s != Nil; s = t.prevSibling[s] {
		i++
	}
	return i
}

// Reindex recomputes pre- and post-order numbers. It is called lazily by
// the order-dependent predicates; explicit calls are only useful for
// benchmarking.
func (t *Tree) Reindex() {
	n := len(t.kind)
	if cap(t.pre) < n {
		idx := make([]int32, 3*n)
		t.pre = idx[0:n:n]
		t.post = idx[n : 2*n : 2*n]
		t.size = idx[2*n : 3*n : 3*n]
	} else {
		t.pre = t.pre[:n]
		t.post = t.post[:n]
		t.size = t.size[:n]
	}
	if n == 0 {
		t.indexed = true
		t.docOrdered = true
		return
	}
	var pre, post int32
	// Iterative DFS to avoid recursion depth limits on deep trees.
	type frame struct {
		node  NodeID
		child NodeID // next child to visit, or Nil when done
	}
	stack := make([]frame, 0, 64)
	t.pre[0] = 0
	pre = 1
	stack = append(stack, frame{0, t.firstChild[0]})
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.child == Nil {
			t.post[f.node] = post
			post++
			// At pop time the preorder counter has advanced past exactly
			// the nodes of this subtree.
			t.size[f.node] = pre - t.pre[f.node]
			stack = stack[:len(stack)-1]
			continue
		}
		c := f.child
		f.child = t.nextSibling[c]
		t.pre[c] = pre
		pre++
		stack = append(stack, frame{c, t.firstChild[c]})
	}
	t.indexed = true
	t.docOrdered = true
	for i, p := range t.pre {
		if p != int32(i) {
			t.docOrdered = false
			break
		}
	}
}

// DocOrdered reports whether NodeIDs coincide with document order
// (pre[n] == n for every node) — true for every tree built strictly
// top-down left-to-right, as the HTML parser and the generators do.
// Consumers iterating ids in ascending order may then skip
// document-order sorting entirely.
func (t *Tree) DocOrdered() bool {
	t.ensureIndex()
	return t.docOrdered
}

func (t *Tree) ensureIndex() {
	if !t.indexed {
		t.Reindex()
	}
}

// Pre returns the preorder (document-order) number of n.
func (t *Tree) Pre(n NodeID) int {
	t.ensureIndex()
	return int(t.pre[n])
}

// Post returns the postorder number of n.
func (t *Tree) Post(n NodeID) int {
	t.ensureIndex()
	return int(t.post[n])
}

// SubtreeSize returns the number of nodes in the subtree rooted at n
// (including n itself).
func (t *Tree) SubtreeSize(n NodeID) int {
	t.ensureIndex()
	return int(t.size[n])
}

// DocBefore reports x ≺ y: the opening tag of x is reached strictly
// before that of y when reading the document left to right (Section 2.2).
func (t *Tree) DocBefore(x, y NodeID) bool {
	t.ensureIndex()
	return t.pre[x] < t.pre[y]
}

// IsAncestor reports Child+(x, y): x is a proper ancestor of y.
func (t *Tree) IsAncestor(x, y NodeID) bool {
	t.ensureIndex()
	return t.pre[x] < t.pre[y] && t.post[y] < t.post[x]
}

// IsAncestorOrSelf reports Child*(x, y).
func (t *Tree) IsAncestorOrSelf(x, y NodeID) bool {
	return x == y || t.IsAncestor(x, y)
}

// IsChild reports Child(x, y): y is a child of x. (Note the direction:
// the paper writes Child(x,y) for "y is a child of x".)
func (t *Tree) IsChild(x, y NodeID) bool { return t.parent[y] == x }

// Following reports the Following axis of Section 4:
//
//	Following(x, y) := ∃z1,z2 Child*(z1,x) ∧ Nextsibling+(z1,z2) ∧ Child*(z2,y)
//
// i.e. y starts after the subtree of x ends.
func (t *Tree) Following(x, y NodeID) bool {
	t.ensureIndex()
	return t.pre[y] > t.pre[x] && t.post[y] > t.post[x]
}

// FollowingSibling reports Nextsibling+(x, y).
func (t *Tree) FollowingSibling(x, y NodeID) bool {
	if t.parent[x] == Nil || t.parent[x] != t.parent[y] {
		return false
	}
	t.ensureIndex()
	return t.pre[y] > t.pre[x]
}

// InDocumentOrder returns all node ids sorted by document order.
func (t *Tree) InDocumentOrder() []NodeID {
	t.ensureIndex()
	out := make([]NodeID, t.Size())
	for i := range out {
		out[i] = NodeID(i)
	}
	sort.Slice(out, func(i, j int) bool { return t.pre[out[i]] < t.pre[out[j]] })
	return out
}

// SortDocOrder sorts nodes in place by document order and removes
// duplicates, returning the (possibly shortened) slice. Query engines use
// it to return result node sets in the order mandated by the XML
// standards the paper cites.
func (t *Tree) SortDocOrder(nodes []NodeID) []NodeID {
	t.ensureIndex()
	sort.Slice(nodes, func(i, j int) bool { return t.pre[nodes[i]] < t.pre[nodes[j]] })
	out := nodes[:0]
	for i, n := range nodes {
		if i == 0 || nodes[i-1] != n {
			out = append(out, n)
		}
	}
	return out
}

// Descendants returns all proper descendants of n in document order.
func (t *Tree) Descendants(n NodeID) []NodeID {
	var out []NodeID
	t.WalkSubtree(n, func(m NodeID) {
		if m != n {
			out = append(out, m)
		}
	})
	return out
}

// WalkSubtree visits n and every descendant of n in document order. It
// walks the firstChild/nextSibling links directly with no auxiliary
// storage, so a walk allocates nothing — ElementText and the pattern
// matchers call this on every candidate node of the hot evaluation
// loops.
func (t *Tree) WalkSubtree(n NodeID, visit func(NodeID)) {
	m := n
	for {
		visit(m)
		if c := t.firstChild[m]; c != Nil {
			m = c
			continue
		}
		for m != n && t.nextSibling[m] == Nil {
			m = t.parent[m]
		}
		if m == n {
			return
		}
		m = t.nextSibling[m]
	}
}

// Walk visits every node of the tree in document order.
func (t *Tree) Walk(visit func(NodeID)) {
	if t.Size() == 0 {
		return
	}
	t.WalkSubtree(t.Root(), visit)
}

// ElementText returns the concatenation of all text-node data in the
// subtree rooted at n, in document order. This is the "elementtext"
// notion used by Elog attribute conditions (Figure 5).
func (t *Tree) ElementText(n NodeID) string {
	var b strings.Builder
	t.WalkSubtree(n, func(m NodeID) {
		if t.kind[m] == Text {
			b.WriteString(t.text[m])
		}
	})
	return b.String()
}

// Depth returns the number of edges from the root to n.
func (t *Tree) Depth(n NodeID) int {
	d := 0
	for p := t.parent[n]; p != Nil; p = t.parent[p] {
		d++
	}
	return d
}

// Height returns the height of the tree (a single node has height 0).
func (t *Tree) Height() int {
	max := 0
	for n := 0; n < t.Size(); n++ {
		if d := t.Depth(NodeID(n)); d > max {
			max = d
		}
	}
	return max
}

// PathLabels returns the labels on the path from x (exclusive) down to y
// (inclusive), or nil and false if y is not a proper descendant of x.
// This is the word a1…an such that subelem_{a1…an}(x, y) holds
// (Section 3.2).
func (t *Tree) PathLabels(x, y NodeID) ([]string, bool) {
	if !t.IsAncestor(x, y) {
		return nil, false
	}
	var rev []string
	for n := y; n != x; n = t.parent[n] {
		rev = append(rev, t.Label(n))
	}
	out := make([]string, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out, true
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	c := &Tree{
		kind:        append([]Kind(nil), t.kind...),
		labelID:     append([]LabelID(nil), t.labelID...),
		labelNames:  append([]string(nil), t.labelNames...),
		text:        append([]string(nil), t.text...),
		parent:      append([]NodeID(nil), t.parent...),
		firstChild:  append([]NodeID(nil), t.firstChild...),
		lastChild:   append([]NodeID(nil), t.lastChild...),
		nextSibling: append([]NodeID(nil), t.nextSibling...),
		prevSibling: append([]NodeID(nil), t.prevSibling...),
	}
	c.labelIndex = make(map[string]LabelID, len(t.labelIndex))
	for s, id := range t.labelIndex {
		c.labelIndex[s] = id
	}
	c.attrs = make([][]Attr, len(t.attrs))
	for i, as := range t.attrs {
		if as != nil {
			c.attrs[i] = append([]Attr(nil), as...)
		}
	}
	return c
}

// Equal reports whether two trees are isomorphic including labels, text,
// attributes, and sibling order.
func Equal(a, b *Tree) bool {
	if a.Size() != b.Size() {
		return false
	}
	if a.Size() == 0 {
		return true
	}
	var eq func(x, y NodeID) bool
	eq = func(x, y NodeID) bool {
		if a.kind[x] != b.kind[y] || a.Label(x) != b.Label(y) || a.text[x] != b.text[y] {
			return false
		}
		if len(a.attrs[x]) != len(b.attrs[y]) {
			return false
		}
		for _, at := range a.attrs[x] {
			v, ok := b.Attr(y, at.Name)
			if !ok || v != at.Value {
				return false
			}
		}
		cx, cy := a.firstChild[x], b.firstChild[y]
		for cx != Nil && cy != Nil {
			if !eq(cx, cy) {
				return false
			}
			cx, cy = a.nextSibling[cx], b.nextSibling[cy]
		}
		return cx == Nil && cy == Nil
	}
	return eq(a.Root(), b.Root())
}

// String renders the tree in the nested-term notation accepted by
// ParseTerm, e.g. "a(b,c(d))". Text nodes render as quoted strings.
func (t *Tree) String() string {
	if t.Size() == 0 {
		return "<empty>"
	}
	var b strings.Builder
	var rec func(n NodeID)
	rec = func(n NodeID) {
		switch t.kind[n] {
		case Text:
			fmt.Fprintf(&b, "%q", t.text[n])
			return
		case Comment:
			fmt.Fprintf(&b, "comment(%q)", t.text[n])
			return
		}
		b.WriteString(t.Label(n))
		if t.firstChild[n] == Nil {
			return
		}
		b.WriteByte('(')
		for c := t.firstChild[n]; c != Nil; c = t.nextSibling[c] {
			if c != t.firstChild[n] {
				b.WriteByte(',')
			}
			rec(c)
		}
		b.WriteByte(')')
	}
	rec(t.Root())
	return b.String()
}
