package apps

import (
	"repro/internal/transform"
)

// The Section 6 applications double as schedulable pipelines for the
// Transformation Server (internal/server): each exposes a stable name,
// a synchronous Tick that advances the simulated sources and runs one
// activation round, and the delivery collector whose output the server
// publishes. Tick reports the most recent error newly logged by the
// engine during the round, if any, so the scheduler's status page can
// surface per-pipeline failures without killing the service.

func tickEngine(e *transform.Engine, step func()) error {
	before := e.ErrorCount()
	step()
	if e.ErrorCount() > before {
		return e.LastError()
	}
	return nil
}

// Each application also surfaces its engine's wrapper memoization
// counters (implementing server.ExtractionStatser), so /statusz
// reports per-pipeline extraction-cache hits.

// ExtractionStats sums the engine's wrapper-source cache counters.
func (a *NowPlaying) ExtractionStats() transform.ExtractionStats { return a.Engine.ExtractionStats() }

// ExtractionStats sums the engine's wrapper-source cache counters.
func (a *FlightInfo) ExtractionStats() transform.ExtractionStats { return a.Engine.ExtractionStats() }

// ExtractionStats sums the engine's wrapper-source cache counters.
func (a *PressClipping) ExtractionStats() transform.ExtractionStats {
	return a.Engine.ExtractionStats()
}

// ExtractionStats sums the engine's wrapper-source cache counters.
func (a *PowerTrading) ExtractionStats() transform.ExtractionStats { return a.Engine.ExtractionStats() }

// PipeName returns the server route name for the Now Playing portal.
func (a *NowPlaying) PipeName() string { return "nowplaying" }

// Tick advances the simulation one round and reports any new engine
// error.
func (a *NowPlaying) Tick() error { return tickEngine(a.Engine, a.Step) }

// Output returns the portal feed collector.
func (a *NowPlaying) Output() *transform.Collector { return a.Portal }

// PipeName returns the server route name for the flight alerts.
func (a *FlightInfo) PipeName() string { return "flights" }

// Tick advances the airport and polls once.
func (a *FlightInfo) Tick() error {
	return tickEngine(a.Engine, func() { a.Step(true) })
}

// Output returns the SMS delivery collector.
func (a *FlightInfo) Output() *transform.Collector { return a.SMS }

// PipeName returns the server route name for the NITF news feed.
func (a *PressClipping) PipeName() string { return "press" }

// Tick advances quotes (no new article) and republishes.
func (a *PressClipping) Tick() error {
	return tickEngine(a.Engine, func() { a.Step(false, 0) })
}

// Output returns the publication collector.
func (a *PressClipping) Output() *transform.Collector { return a.Out }

// PipeName returns the server route name for the power-trading report.
func (a *PowerTrading) PipeName() string { return "power" }

// Tick advances the market and ticks.
func (a *PowerTrading) Tick() error { return tickEngine(a.Engine, a.Step) }

// Output returns the risk-report collector.
func (a *PowerTrading) Output() *transform.Collector { return a.Out }
