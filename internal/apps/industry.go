package apps

import (
	"fmt"
	"strings"

	"repro/internal/concepts"
	"repro/internal/elog"
	"repro/internal/pib"
	"repro/internal/transform"
	"repro/internal/web"
	"repro/internal/xmlenc"
)

// PowerTrading is the application of Section 6.7: spot market prices for
// electric power integrated with weather and water-level information and
// delivered to the trader's risk-management systems.
type PowerTrading struct {
	Web    *web.Web
	Site   *web.PowerSite
	Engine *transform.Engine
	Out    *transform.Collector
}

// NewPowerTrading builds the service.
func NewPowerTrading(seed int64) (*PowerTrading, error) {
	sim := web.New()
	site := web.NewPowerSite(seed)
	site.Register(sim, "exchange.example.com")
	app := &PowerTrading{Web: sim, Site: site, Engine: transform.NewEngine()}

	spot := &transform.WrapperSource{
		CompName: "wrap-spot",
		Fetcher:  sim,
		Program: elog.MustParse(`
page(S, X) <- document("exchange.example.com/spot.html", S), subelem(S, .body, X)
hour(S, X) <- page(_, S), subelem(S, (?.tr, [(class, hour, exact)]), X)
h(S, X) <- hour(_, S), subelem(S, (?.td, [(class, h, exact)]), X)
eur(S, X) <- hour(_, S), subelem(S, (?.td, [(class, eur, exact)]), X)
`),
		Design: &pib.Design{Auxiliary: map[string]bool{"document": true, "page": true}, RootName: "spot"},
	}
	weather := &transform.WrapperSource{
		CompName: "wrap-weather",
		Fetcher:  sim,
		Program: elog.MustParse(`
page(S, X) <- document("exchange.example.com/weather.html", S), subelem(S, .body, X)
cond(S, X) <- page(_, S), subelem(S, (?.span, [(class, cond, exact)]), X)
temp(S, X) <- page(_, S), subelem(S, (?.span, [(class, temp, exact)]), X)
level(S, X) <- page(_, S), subelem(S, (?.span, [(class, level, exact)]), X)
`),
		Design: &pib.Design{Auxiliary: map[string]bool{"document": true, "page": true}, RootName: "weather"},
	}
	integ := &transform.Integrator{CompName: "merge", Expect: []string{"wrap-spot", "wrap-weather"}}
	report := &transform.Transformer{CompName: "report", Fn: powerReport}
	app.Out = &transform.Collector{CompName: "risk"}
	for _, c := range []transform.Component{spot, weather, integ, report, app.Out} {
		if err := app.Engine.Add(c); err != nil {
			return nil, err
		}
	}
	for _, e := range [][2]string{
		{"wrap-spot", "merge"}, {"wrap-weather", "merge"},
		{"merge", "report"}, {"report", "risk"},
	} {
		if err := app.Engine.Connect(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return app, nil
}

// powerReport aggregates the 24 hourly prices and attaches the weather
// signals used by the trading models.
func powerReport(merged *xmlenc.Node) (*xmlenc.Node, error) {
	var min, max, sum float64
	n := 0
	min = 1e18
	for _, h := range merged.Find("hour") {
		v, ok := concepts.ParseNumber(strings.TrimSuffix(strings.TrimSpace(textOf(h.FirstChild("eur"))), " EUR"))
		if !ok {
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += v
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("no spot prices")
	}
	out := xmlenc.NewElement("powerreport")
	out.AppendTextElement("min", fmt.Sprintf("%.2f", min))
	out.AppendTextElement("max", fmt.Sprintf("%.2f", max))
	out.AppendTextElement("avg", fmt.Sprintf("%.2f", sum/float64(n)))
	for _, w := range merged.Find("weather") {
		out.AppendTextElement("condition", strings.TrimSpace(textOf(w.FirstChild("cond"))))
		out.AppendTextElement("waterlevel", strings.TrimSpace(textOf(w.FirstChild("level"))))
	}
	return out, nil
}

// Step advances the market and ticks.
func (a *PowerTrading) Step() {
	a.Site.Advance()
	a.Engine.Tick()
}

// Viticulture is the B2C portal of Section 6.4: regional pest-control
// advice and vine news, personalized by region.
type Viticulture struct {
	Web    *web.Web
	Engine *transform.Engine
	Out    *transform.Collector
}

// NewViticulture builds the portal for the given regions.
func NewViticulture(regions []string) (*Viticulture, error) {
	sim := web.New()
	(&web.VitiSite{Regions: regions}).Register(sim, "wine.example.com")
	app := &Viticulture{Web: sim, Engine: transform.NewEngine()}
	var expect []string
	for _, region := range regions {
		name := "wrap-" + strings.ToLower(region)
		src := &transform.WrapperSource{
			CompName: name,
			Fetcher:  sim,
			Program: elog.MustParse(fmt.Sprintf(`
page(S, X) <- document("wine.example.com/%s.html", S), subelem(S, .body, X)
region(S, X) <- page(_, S), subelem(S, ?.h1, X)
pest(S, X) <- page(_, S), subelem(S, (?.li, [(class, pest, exact)]), X)
news(S, X) <- page(_, S), subelem(S, (?.p, [(class, item, exact)]), X)
`, strings.ToLower(region))),
			Design: &pib.Design{Auxiliary: map[string]bool{"document": true, "page": true}, RootName: "regionreport"},
		}
		if err := app.Engine.Add(src); err != nil {
			return nil, err
		}
		expect = append(expect, name)
	}
	integ := &transform.Integrator{CompName: "merge", Expect: expect, RootName: "portal"}
	app.Out = &transform.Collector{CompName: "site"}
	if err := app.Engine.Add(integ); err != nil {
		return nil, err
	}
	if err := app.Engine.Add(app.Out); err != nil {
		return nil, err
	}
	for _, e := range expect {
		if err := app.Engine.Connect(e, "merge"); err != nil {
			return nil, err
		}
	}
	if err := app.Engine.Connect("merge", "site"); err != nil {
		return nil, err
	}
	return app, nil
}

// AutomotiveMonitor is the B2B application of Section 6.5/6.6: RFQs on a
// customer portal and competitor prices are gathered automatically;
// deliveries happen only on change, replacing manual browsing.
type AutomotiveMonitor struct {
	Web      *web.Web
	Portal   *web.PortalSite
	Auction  *web.AuctionSite
	Engine   *transform.Engine
	RFQOut   *transform.Collector
	PriceOut *transform.Collector
}

// NewAutomotiveMonitor builds the monitoring service.
func NewAutomotiveMonitor(seed int64) (*AutomotiveMonitor, error) {
	sim := web.New()
	portal := web.NewPortalSite(seed, 5)
	portal.Register(sim, "oem.example.com")
	auction := web.NewAuctionSite(seed, 20)
	auction.Register(sim, "competitor.example.com")
	app := &AutomotiveMonitor{Web: sim, Portal: portal, Auction: auction, Engine: transform.NewEngine()}

	rfqSrc := &transform.WrapperSource{
		CompName: "wrap-rfq",
		Fetcher:  sim,
		Program: elog.MustParse(`
page(S, X) <- document("oem.example.com/rfq.html", S), subelem(S, .body, X)
rfq(S, X) <- page(_, S), subelem(S, (?.li, [(class, rfq, exact)]), X)
`),
		Design: &pib.Design{Auxiliary: map[string]bool{"document": true, "page": true}, RootName: "rfqs"},
	}
	priceSrc := &transform.WrapperSource{
		CompName: "wrap-prices",
		Fetcher:  sim,
		Program: elog.MustParse(`
page(S, X) <- document("competitor.example.com/", S), subelem(S, .body, X)
item(S, X) <- page(_, S), subelem(S, (?.table, [(class, item, exact)]), X)
des(S, X) <- item(_, S), subelem(S, ?.a, X)
price(S, X) <- item(_, S), subelem(S, (?.td, [(elementtext, \var[Y].*, regvar)]), X), isCurrency(Y)
`),
		Design: &pib.Design{Auxiliary: map[string]bool{"document": true, "page": true}, RootName: "competitor"},
	}
	rfqChange := &transform.ChangeFilter{CompName: "rfq-change"}
	priceChange := &transform.ChangeFilter{CompName: "price-change"}
	app.RFQOut = &transform.Collector{CompName: "erp"}
	app.PriceOut = &transform.Collector{CompName: "bi"}
	for _, c := range []transform.Component{rfqSrc, priceSrc, rfqChange, priceChange, app.RFQOut, app.PriceOut} {
		if err := app.Engine.Add(c); err != nil {
			return nil, err
		}
	}
	for _, e := range [][2]string{
		{"wrap-rfq", "rfq-change"}, {"rfq-change", "erp"},
		{"wrap-prices", "price-change"}, {"price-change", "bi"},
	} {
		if err := app.Engine.Connect(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return app, nil
}
