package apps

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/xmlenc"
)

func TestE14NowPlaying(t *testing.T) {
	app, err := NewNowPlaying(17)
	if err != nil {
		t.Fatal(err)
	}
	if got := app.SourceCount(); got != 14 {
		t.Fatalf("source count = %d, want 14 (as in the paper)", got)
	}
	// The integrator waits for all 14 sources; charts/lyrics poll every
	// 5 ticks, so the first delivery happens on tick 1 (all sources poll
	// on their first tick).
	app.Step()
	if app.Portal.Len() == 0 {
		t.Fatalf("no portal delivery after first step (errors: %v)", app.Engine.Errors)
	}
	portal := app.Portal.Docs()[0]
	stations := portal.Find("station")
	if len(stations) != 8 {
		t.Fatalf("stations = %d:\n%s", len(stations), xmlenc.MarshalIndent(portal))
	}
	for _, st := range stations {
		if st.FirstChild("song") == nil || st.FirstChild("song").Text == "" {
			t.Errorf("station without current song: %s", xmlenc.Marshal(st))
		}
	}
	// Each station's current song must match the simulated station state.
	byName := map[string]*xmlenc.Node{}
	for _, st := range stations {
		n, _ := st.Attr("name")
		byName[n] = st
	}
	for _, rs := range app.Stations {
		st := byName[rs.Name]
		if st == nil {
			t.Errorf("station %s missing from portal", rs.Name)
			continue
		}
		if got := st.FirstChild("song").Text; got != rs.Current().Title {
			t.Errorf("station %s: portal says %q, station plays %q", rs.Name, got, rs.Current().Title)
		}
	}
	// Rankings must be consistent with the chart sites.
	ranked := 0
	for _, st := range stations {
		ranked += len(st.ChildrenNamed("ranking"))
	}
	// With 40 songs and 5 charts of 10 entries, some current songs are
	// expected to be charted across 8 stations; at minimum the portal
	// structure must carry lyrics for every station (the lyrics site
	// covers the whole pool).
	for _, st := range stations {
		if st.FirstChild("lyrics") == nil {
			t.Errorf("station %s lacks lyrics", mustAttr(st, "name"))
		}
	}
	_ = ranked

	// Radio rotation: after a step the portal must reflect new songs.
	prev := app.Portal.Len()
	app.Step()
	if app.Portal.Len() <= prev {
		t.Fatal("no delivery after rotation")
	}
	last := app.Portal.Latest()
	changed := false
	for i, st := range last.Find("station") {
		if st.FirstChild("song").Text != stations[i].FirstChild("song").Text {
			changed = true
		}
	}
	if !changed {
		t.Error("rotation did not change any station's song")
	}
}

func mustAttr(n *xmlenc.Node, name string) string {
	v, _ := n.Attr(name)
	return v
}

func TestE15FlightStatusOnChangeOnly(t *testing.T) {
	app, err := NewFlightInfo(11, []Subscription{{Number: "OS105"}})
	if err != nil {
		t.Fatal(err)
	}
	app.Step(false)
	if len(app.Engine.Errors) > 0 {
		t.Fatalf("errors: %v", app.Engine.Errors)
	}
	if app.SMS.Len() != 1 {
		t.Fatalf("initial SMS count = %d", app.SMS.Len())
	}
	if !strings.Contains(app.LastMessage(), "OS105") {
		t.Fatalf("message %q", app.LastMessage())
	}
	// Polling without any site change: no new SMS.
	app.Step(false)
	if app.SMS.Len() != 1 {
		t.Fatalf("SMS sent without change (count %d)", app.SMS.Len())
	}
	// Advance until the subscribed flight's status changes; each step
	// must deliver at most once per actual change.
	before := app.Site.Status("OS105")
	changedAt := -1
	for i := 0; i < 50; i++ {
		app.Step(true)
		if app.Site.Status("OS105") != before {
			changedAt = i
			break
		}
	}
	if changedAt < 0 {
		t.Skip("status never changed in 50 steps (seed-dependent)")
	}
	if app.SMS.Len() < 2 {
		t.Fatalf("status changed but no SMS (count %d)", app.SMS.Len())
	}
	if got := app.LastMessage(); !strings.Contains(got, app.Site.Status("OS105")) {
		t.Errorf("SMS %q does not carry new status %q", got, app.Site.Status("OS105"))
	}
}

func TestE15RouteSubscription(t *testing.T) {
	app, err := NewFlightInfo(11, []Subscription{{From: "Vienna", To: "Paris"}})
	if err != nil {
		t.Fatal(err)
	}
	app.Step(false)
	// Whether a Vienna->Paris flight exists depends on the seed; the
	// service must at least run cleanly.
	if len(app.Engine.Errors) > 0 {
		t.Fatalf("errors: %v", app.Engine.Errors)
	}
}

func TestE16PressClippingNITF(t *testing.T) {
	app, err := NewPressClipping(5)
	if err != nil {
		t.Fatal(err)
	}
	app.Engine.Tick()
	if app.Out.Len() != 1 {
		t.Fatalf("publications = %d (errors %v)", app.Out.Len(), app.Engine.Errors)
	}
	feed := app.Out.Docs()[0]
	nitfs := feed.Find("nitf")
	if len(nitfs) != 6 {
		t.Fatalf("nitf documents = %d:\n%s", len(nitfs), xmlenc.MarshalIndent(feed))
	}
	for _, n := range nitfs {
		// NITF structure: head/title, body/body.head/hedline/hl1,
		// body/body.content.
		if n.FirstChild("head") == nil || n.FirstChild("head").FirstChild("title") == nil {
			t.Fatalf("nitf head missing: %s", xmlenc.Marshal(n))
		}
		body := n.FirstChild("body")
		if body == nil || body.FirstChild("body.head") == nil || body.FirstChild("body.head").FirstChild("hedline") == nil {
			t.Fatalf("nitf hedline missing: %s", xmlenc.Marshal(n))
		}
	}
	// Every article mentioning a quoted company must carry its quote.
	quoted := 0
	for _, n := range nitfs {
		if len(n.Find("quote")) > 0 {
			quoted++
		}
	}
	if quoted != len(nitfs) {
		t.Errorf("only %d of %d articles carry quotes", quoted, len(nitfs))
	}
	// New article published: next tick includes it.
	app.Step(true, 77)
	feed2 := app.Out.Latest()
	if got := len(feed2.Find("nitf")); got != 7 {
		t.Errorf("after publish: %d articles", got)
	}
}

func TestE17PowerTrading(t *testing.T) {
	app, err := NewPowerTrading(9)
	if err != nil {
		t.Fatal(err)
	}
	app.Engine.Tick()
	if app.Out.Len() != 1 {
		t.Fatalf("reports = %d (errors %v)", app.Out.Len(), app.Engine.Errors)
	}
	rep := app.Out.Docs()[0]
	for _, f := range []string{"min", "max", "avg", "condition", "waterlevel"} {
		if rep.FirstChild(f) == nil || rep.FirstChild(f).Text == "" {
			t.Errorf("report lacks %s:\n%s", f, xmlenc.MarshalIndent(rep))
		}
	}
	// min <= avg <= max.
	var mn, av, mx float64
	parse := func(f string) float64 {
		var v float64
		if _, err := sscan(rep.FirstChild(f).Text, &v); err != nil {
			t.Fatalf("bad %s: %v", f, err)
		}
		return v
	}
	mn, av, mx = parse("min"), parse("avg"), parse("max")
	if !(mn <= av && av <= mx) {
		t.Errorf("min/avg/max inconsistent: %v %v %v", mn, av, mx)
	}
	// Prices move between trading intervals.
	app.Step()
	rep2 := app.Out.Latest()
	if xmlenc.Marshal(rep) == xmlenc.Marshal(rep2) {
		t.Error("spot report identical after market moved")
	}
}

func TestE17Viticulture(t *testing.T) {
	app, err := NewViticulture([]string{"Wachau", "Burgenland", "Steiermark"})
	if err != nil {
		t.Fatal(err)
	}
	app.Engine.Tick()
	if app.Out.Len() != 1 {
		t.Fatalf("deliveries = %d (errors %v)", app.Out.Len(), app.Engine.Errors)
	}
	portal := app.Out.Docs()[0]
	if got := len(portal.Find("regionreport")); got != 3 {
		t.Fatalf("region reports = %d", got)
	}
	if got := len(portal.Find("pest")); got != 6 { // two advisories per region
		t.Errorf("pest advisories = %d", got)
	}
}

func TestE17AutomotiveMonitoring(t *testing.T) {
	app, err := NewAutomotiveMonitor(13)
	if err != nil {
		t.Fatal(err)
	}
	app.Engine.Tick()
	if app.RFQOut.Len() != 1 || app.PriceOut.Len() != 1 {
		t.Fatalf("initial deliveries: rfq=%d price=%d (errors %v)",
			app.RFQOut.Len(), app.PriceOut.Len(), app.Engine.Errors)
	}
	if got := len(app.RFQOut.Docs()[0].Find("rfq")); got != 5 {
		t.Errorf("rfqs = %d", got)
	}
	if got := len(app.PriceOut.Docs()[0].Find("item")); got != 20 {
		t.Errorf("competitor items = %d", got)
	}
	// Nothing changed: no duplicate deliveries.
	app.Engine.Tick()
	if app.RFQOut.Len() != 1 || app.PriceOut.Len() != 1 {
		t.Fatal("unchanged portals re-delivered")
	}
	// A new RFQ appears: exactly the RFQ feed fires.
	app.Portal.Post("RFQ-2000: mirror assembly, qty 500")
	app.Engine.Tick()
	if app.RFQOut.Len() != 2 {
		t.Fatalf("new RFQ not delivered (count %d)", app.RFQOut.Len())
	}
	if app.PriceOut.Len() != 1 {
		t.Fatal("price feed fired without a price change")
	}
	last := app.RFQOut.Docs()[1]
	if got := len(last.Find("rfq")); got != 6 {
		t.Errorf("rfqs after post = %d", got)
	}
}

// sscan is a tiny wrapper so the test reads naturally.
func sscan(s string, v *float64) (int, error) {
	return fmtSscan(s, v)
}

func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
