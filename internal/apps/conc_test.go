package apps

import (
	"runtime"
	"testing"

	"repro/internal/elog"
	"repro/internal/pib"
	"repro/internal/transform"
)

// TestAppWrappersConcurrencyDeterminism runs every wrapper source of the
// Section 6 applications at concurrency 1 and GOMAXPROCS, interpreted
// and compiled, and requires byte-identical serialized instance bases.
// With -race this also stresses the wave-parallel candidate generation
// on realistic production programs (simulated sites, crawling, pattern
// references), not just the hand-built fixtures in package elog.
func TestAppWrappersConcurrencyDeterminism(t *testing.T) {
	engines := map[string]*transform.Engine{}
	if app, err := NewNowPlaying(17); err == nil {
		engines["nowplaying"] = app.Engine
	} else {
		t.Fatal(err)
	}
	if app, err := NewFlightInfo(11, []Subscription{{Number: "OS105"}}); err == nil {
		engines["flightinfo"] = app.Engine
	} else {
		t.Fatal(err)
	}
	if app, err := NewPressClipping(5); err == nil {
		engines["pressclipping"] = app.Engine
	} else {
		t.Fatal(err)
	}
	if app, err := NewPowerTrading(9); err == nil {
		engines["powertrading"] = app.Engine
	} else {
		t.Fatal(err)
	}

	for appName, eng := range engines {
		for _, comp := range eng.Components() {
			src, ok := comp.(*transform.WrapperSource)
			if !ok {
				continue
			}
			for _, compiled := range []bool{false, true} {
				run := func(conc int) string {
					ev := elog.NewEvaluator(src.Fetcher)
					ev.MaxConcurrency = conc
					var base *pib.Base
					var err error
					if compiled {
						base, err = ev.RunCompiled(elog.MustCompile(src.Program))
					} else {
						base, err = ev.Run(src.Program)
					}
					if err != nil {
						t.Fatalf("%s/%s compiled=%v conc=%d: %v", appName, src.CompName, compiled, conc, err)
					}
					return base.Dump()
				}
				want := run(1)
				if got := run(runtime.GOMAXPROCS(0)); got != want {
					t.Errorf("%s/%s compiled=%v: parallel base diverges from serial:\n--- serial ---\n%s--- parallel ---\n%s",
						appName, src.CompName, compiled, want, got)
				}
			}
		}
	}
}
