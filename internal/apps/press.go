package apps

import (
	"strings"

	"repro/internal/elog"
	"repro/internal/pib"
	"repro/internal/transform"
	"repro/internal/web"
	"repro/internal/xmlenc"
)

// PressClipping is the financial-news application of Section 6.3: news
// is extracted from press sites, converted into NITF (News Industry Text
// Format, part of NewsML), aggregated with the latest stock quotes, and
// republished.
type PressClipping struct {
	Web    *web.Web
	News   *web.NewsSite
	Quotes *web.QuoteSite
	Engine *transform.Engine
	Out    *transform.Collector
}

// NewPressClipping builds the clipping service.
func NewPressClipping(seed int64) (*PressClipping, error) {
	sim := web.New()
	news := web.NewNewsSite("Financial Daily", seed, 6)
	news.Register(sim, "press.example.com")
	quotes := web.NewQuoteSite(seed, "ACME", "Globex", "Initech", "Umbrella", "Hooli", "Stark")
	quotes.Register(sim, "quotes.example.com")
	app := &PressClipping{Web: sim, News: news, Quotes: quotes, Engine: transform.NewEngine()}

	newsSrc := &transform.WrapperSource{
		CompName: "wrap-news",
		Fetcher:  sim,
		Program: elog.MustParse(`
page(S, X) <- document("press.example.com/news.html", S), subelem(S, .body, X)
article(S, X) <- page(_, S), subelem(S, (?.div, [(class, article, exact)]), X)
headline(S, X) <- article(_, S), subelem(S, (?.h2, [(class, headline, exact)]), X)
date(S, X) <- article(_, S), subelem(S, (?.span, [(class, date, exact)]), X)
ticker(S, X) <- article(_, S), subelem(S, (?.span, [(class, ticker, exact)]), X)
body(S, X) <- article(_, S), subelem(S, (?.p, [(class, body, exact)]), X)
`),
		Design: &pib.Design{Auxiliary: map[string]bool{"document": true, "page": true}, RootName: "news"},
	}
	quoteSrc := &transform.WrapperSource{
		CompName: "wrap-quotes",
		Fetcher:  sim,
		Program: elog.MustParse(`
page(S, X) <- document("quotes.example.com/quotes.html", S), subelem(S, .body, X)
quote(S, X) <- page(_, S), subelem(S, (?.tr, [(class, quote, exact)]), X)
ticker(S, X) <- quote(_, S), subelem(S, (?.td, [(class, ticker, exact)]), X)
value(S, X) <- quote(_, S), subelem(S, (?.td, [(class, value, exact)]), X)
`),
		Design: &pib.Design{Auxiliary: map[string]bool{"document": true, "page": true}, RootName: "quotes"},
	}
	integrator := &transform.Integrator{CompName: "merge", Expect: []string{"wrap-news", "wrap-quotes"}}
	nitf := &transform.Transformer{CompName: "nitf", Fn: toNITF}
	app.Out = &transform.Collector{CompName: "publish"}
	for _, c := range []transform.Component{newsSrc, quoteSrc, integrator, nitf, app.Out} {
		if err := app.Engine.Add(c); err != nil {
			return nil, err
		}
	}
	for _, e := range [][2]string{
		{"wrap-news", "merge"}, {"wrap-quotes", "merge"},
		{"merge", "nitf"}, {"nitf", "publish"},
	} {
		if err := app.Engine.Connect(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return app, nil
}

// toNITF renders the merged news+quotes document as a NITF feed: one
// <nitf> document per article, each annotated with the latest quote for
// the company it mentions.
func toNITF(merged *xmlenc.Node) (*xmlenc.Node, error) {
	quotes := map[string]string{}
	for _, q := range merged.Find("quote") {
		t := strings.TrimSpace(textOf(q.FirstChild("ticker")))
		v := strings.TrimSpace(textOf(q.FirstChild("value")))
		if t != "" {
			quotes[t] = v
		}
	}
	feed := xmlenc.NewElement("nitf-feed")
	for _, a := range merged.Find("article") {
		nitf := feed.AppendElement("nitf")
		head := nitf.AppendElement("head")
		head.AppendTextElement("title", strings.TrimSpace(textOf(a.FirstChild("headline"))))
		docdata := head.AppendElement("docdata")
		dateEl := docdata.AppendElement("date.issue")
		dateEl.SetAttr("norm", strings.TrimSpace(textOf(a.FirstChild("date"))))
		body := nitf.AppendElement("body")
		bodyHead := body.AppendElement("body.head")
		hed := bodyHead.AppendElement("hedline")
		hed.AppendTextElement("hl1", strings.TrimSpace(textOf(a.FirstChild("headline"))))
		content := body.AppendElement("body.content")
		content.AppendTextElement("p", strings.TrimSpace(textOf(a.FirstChild("body"))))
		ticker := strings.TrimSpace(textOf(a.FirstChild("ticker")))
		if v, ok := quotes[ticker]; ok {
			q := content.AppendElement("quote")
			q.SetAttr("ticker", ticker)
			q.Text = v
		}
	}
	return feed, nil
}

// Step advances quotes, optionally publishes a new article, and ticks.
func (a *PressClipping) Step(publish bool, seed int64) {
	a.Quotes.Advance()
	if publish {
		a.News.Publish(seed)
	}
	a.Engine.Tick()
}
