// Package apps implements the industrial application case studies of
// Section 6 as runnable services over the simulated web: Now Playing
// (6.1), flight schedule information (6.2), press clipping with NITF
// output (6.3), the viticulture portal (6.4), automotive portal
// monitoring (6.5), business intelligence / competitor monitoring (6.6),
// and power trading (6.7). Each application wires Lixto wrappers into a
// Transformation Server pipeline and delivers XML to a collector that
// stands in for the PDA / SMS / enterprise endpoint.
package apps

import (
	"fmt"
	"strings"

	"repro/internal/elog"
	"repro/internal/pib"
	"repro/internal/transform"
	"repro/internal/web"
	"repro/internal/xmlenc"
)

// NowPlaying is the mobile-entertainment application of Section 6.1:
// playlists of radio stations, current songs, chart rankings and lyrics,
// integrated into one portal feed. Data comes from 14 sites in three
// groups — radio channels (fast refresh), charts and lyrics (slow
// refresh) — exactly the source split the paper describes.
type NowPlaying struct {
	Web      *web.Web
	Engine   *transform.Engine
	Portal   *transform.Collector
	Stations []*web.RadioSite
	Charts   []*web.ChartSite
}

// NewNowPlaying builds the whole service: 8 radio stations, 5 charts,
// 1 lyrics site (14 sources), one wrapper per site, an integrator and
// the portal transformer.
func NewNowPlaying(seed int64) (*NowPlaying, error) {
	sim := web.New()
	pool := web.SongPool(seed, 40)

	app := &NowPlaying{Web: sim, Engine: transform.NewEngine()}
	stationNames := []string{
		"radio-wien", "oe3", "fm4", "radio-noe", // national (Austrian)
		"radio-paris", "radio-london", "radio-rome", "radio-berlin", // international
	}
	var expect []string
	for i, name := range stationNames {
		st := web.NewRadioSite(name, pool, i*3)
		st.Register(sim, name+".example.com")
		app.Stations = append(app.Stations, st)
		src := &transform.WrapperSource{
			CompName: "wrap-" + name,
			Fetcher:  sim,
			Program:  radioWrapper(name + ".example.com"),
			Design:   &pib.Design{Auxiliary: map[string]bool{"document": true, "page": true}, RootName: "station"},
			Every:    1, // radio channels refresh every tick ("a few seconds")
		}
		if err := app.Engine.Add(src); err != nil {
			return nil, err
		}
		expect = append(expect, src.CompName)
	}
	chartNames := []string{"top40", "billboard", "airplay", "dance", "indie"}
	for i, name := range chartNames {
		ch := web.NewChartSite(name, pool, seed+int64(i+1), 10)
		ch.Register(sim, name+".example.com")
		app.Charts = append(app.Charts, ch)
		src := &transform.WrapperSource{
			CompName: "wrap-" + name,
			Fetcher:  sim,
			Program:  chartWrapper(name + ".example.com"),
			Design:   &pib.Design{Auxiliary: map[string]bool{"document": true, "page": true}, RootName: "chart"},
			Every:    5, // charts refresh on a slower schedule ("hours or days")
		}
		if err := app.Engine.Add(src); err != nil {
			return nil, err
		}
		expect = append(expect, src.CompName)
	}
	lyr := &web.LyricsSite{Pool: pool}
	lyr.Register(sim, "lyrics.example.com")
	lyrSrc := &transform.WrapperSource{
		CompName: "wrap-lyrics",
		Fetcher:  sim,
		Program:  lyricsWrapper("lyrics.example.com", len(pool)),
		Design:   &pib.Design{Auxiliary: map[string]bool{"document": true}, RootName: "lyricsdb"},
		Every:    5,
	}
	if err := app.Engine.Add(lyrSrc); err != nil {
		return nil, err
	}
	expect = append(expect, "wrap-lyrics")

	integrator := &transform.Integrator{CompName: "merge", Expect: expect, RootName: "sources"}
	if err := app.Engine.Add(integrator); err != nil {
		return nil, err
	}
	for _, e := range expect {
		if err := app.Engine.Connect(e, "merge"); err != nil {
			return nil, err
		}
	}
	portalT := &transform.Transformer{CompName: "portal", Fn: buildPortal}
	if err := app.Engine.Add(portalT); err != nil {
		return nil, err
	}
	if err := app.Engine.Connect("merge", "portal"); err != nil {
		return nil, err
	}
	app.Portal = &transform.Collector{CompName: "pda"}
	if err := app.Engine.Add(app.Portal); err != nil {
		return nil, err
	}
	if err := app.Engine.Connect("portal", "pda"); err != nil {
		return nil, err
	}
	return app, nil
}

// SourceCount reports the number of wrapped web sites (the paper: "data
// is extracted from 14 different web sites").
func (a *NowPlaying) SourceCount() int { return len(a.Stations) + len(a.Charts) + 1 }

// Step advances simulated time (songs rotate) and ticks the pipeline.
func (a *NowPlaying) Step() {
	for _, st := range a.Stations {
		st.Advance()
	}
	a.Engine.Tick()
}

func radioWrapper(host string) *elog.Program {
	return elog.MustParse(fmt.Sprintf(`
page(S, X) <- document("%s/playlist.html", S), subelem(S, .body, X)
now(S, X) <- page(_, S), subelem(S, (?.div, [(class, nowplaying, exact)]), X)
title(S, X) <- now(_, S), subelem(S, (?.span, [(class, title, exact)]), X)
artist(S, X) <- now(_, S), subelem(S, (?.span, [(class, artist, exact)]), X)
`, host))
}

func chartWrapper(host string) *elog.Program {
	return elog.MustParse(fmt.Sprintf(`
page(S, X) <- document("%s/top.html", S), subelem(S, .body, X)
entry(S, X) <- page(_, S), subelem(S, ?.tr, X), contains(X, (?.td, [(class, rank, exact)]), _)
rank(S, X) <- entry(_, S), subelem(S, (?.td, [(class, rank, exact)]), X)
song(S, X) <- entry(_, S), subelem(S, (?.td, [(class, song, exact)]), X)
artist(S, X) <- entry(_, S), subelem(S, (?.td, [(class, artist, exact)]), X)
`, host))
}

func lyricsWrapper(host string, n int) *elog.Program {
	// The lyrics group wraps the index and follows each link — the
	// crawling feature.
	return elog.MustParse(fmt.Sprintf(`
index(S, X) <- document("%s/index.html", S), subelem(S, .body, X)
link(S, X) <- index(_, S), subelem(S, ?.a, X)
url(S, X) <- link(_, S), subatt(S, href, X)
songpage(S, X) <- url(_, S), getDocument(S, X)
song(S, X) <- songpage(_, S), subelem(S, (?.h1, [(class, song, exact)]), X)
lyrics(S, X) <- songpage(_, S), subelem(S, (?.pre, [(class, lyrics, exact)]), X)
`, host))
}

// buildPortal joins the merged sources into the PDA portal document:
// one <station> entry per radio channel with its current song, that
// song's rank in every chart that lists it, and a lyrics snippet.
func buildPortal(merged *xmlenc.Node) (*xmlenc.Node, error) {
	// Chart lookup: song title -> (chart name, rank).
	type ranking struct{ chart, rank string }
	rankings := map[string][]ranking{}
	for _, chart := range merged.Find("chart") {
		src, _ := chart.Attr("source")
		for _, e := range chart.Find("entry") {
			song := e.FirstChild("song")
			rank := e.FirstChild("rank")
			if song == nil || rank == nil {
				continue
			}
			title := strings.TrimSpace(song.Text)
			rankings[title] = append(rankings[title], ranking{chart: src, rank: strings.TrimSpace(rank.Text)})
		}
	}
	// Lyrics lookup.
	lyrics := map[string]string{}
	for _, db := range merged.Find("lyricsdb") {
		for _, sp := range db.Find("songpage") {
			song := sp.FirstChild("song")
			ly := sp.FirstChild("lyrics")
			if song != nil && ly != nil {
				lyrics[strings.TrimSpace(song.Text)] = strings.TrimSpace(ly.Text)
			}
		}
	}
	portal := xmlenc.NewElement("nowplaying")
	for _, st := range merged.Find("station") {
		src, _ := st.Attr("source")
		now := st.FirstChild("now")
		if now == nil {
			continue
		}
		title := strings.TrimSpace(textOf(now.FirstChild("title")))
		artist := strings.TrimSpace(textOf(now.FirstChild("artist")))
		entry := portal.AppendElement("station")
		entry.SetAttr("name", strings.TrimPrefix(src, "wrap-"))
		entry.AppendTextElement("song", title)
		entry.AppendTextElement("artist", artist)
		for _, r := range rankings[title] {
			re := entry.AppendElement("ranking")
			re.SetAttr("chart", strings.TrimPrefix(r.chart, "wrap-"))
			re.Text = r.rank
		}
		if ly, ok := lyrics[title]; ok {
			entry.AppendTextElement("lyrics", ly)
		}
	}
	return portal, nil
}

func textOf(n *xmlenc.Node) string {
	if n == nil {
		return ""
	}
	return n.TextContent()
}
