package apps

import (
	"bytes"
	"testing"

	"repro/internal/transform"
	"repro/internal/web"
	"repro/internal/xmlenc"
)

// TestAppWrappersOutputDifferential extends the incremental
// differential to the output layer: for every Section 6 application
// wrapper, a long-lived source with incremental matching, incremental
// output, and the splice-based encoder must serve bytes identical to a
// cold source that rebuilds and re-encodes everything, at every step of
// a lockstep churn sequence.
func TestAppWrappersOutputDifferential(t *testing.T) {
	engines := map[string]*transform.Engine{}
	if app, err := NewNowPlaying(17); err == nil {
		engines["nowplaying"] = app.Engine
	} else {
		t.Fatal(err)
	}
	if app, err := NewFlightInfo(11, []Subscription{{Number: "OS105"}}); err == nil {
		engines["flightinfo"] = app.Engine
	} else {
		t.Fatal(err)
	}
	if app, err := NewPressClipping(5); err == nil {
		engines["pressclipping"] = app.Engine
	} else {
		t.Fatal(err)
	}
	if app, err := NewPowerTrading(9); err == nil {
		engines["powertrading"] = app.Engine
	} else {
		t.Fatal(err)
	}
	if app, err := NewViticulture([]string{"wachau", "kamptal"}); err == nil {
		engines["viticulture"] = app.Engine
	} else {
		t.Fatal(err)
	}
	if app, err := NewAutomotiveMonitor(23); err == nil {
		engines["automotive"] = app.Engine
	} else {
		t.Fatal(err)
	}

	var totalReused, totalSpliced uint64
	for appName, eng := range engines {
		for _, comp := range eng.Components() {
			src, ok := comp.(*transform.WrapperSource)
			if !ok {
				continue
			}
			for _, grow := range []bool{false, true} {
				churnInc := &web.ChurnFetcher{Inner: src.Fetcher, Seed: 31, PerStep: 3, Grow: grow}
				churnCold := &web.ChurnFetcher{Inner: src.Fetcher, Seed: 31, PerStep: 3, Grow: grow}
				inc := &transform.WrapperSource{
					CompName: src.CompName, Fetcher: churnInc,
					Program: src.Program, Design: src.Design,
				}
				enc := xmlenc.NewEncoder()
				for step := 0; step < 4; step++ {
					got, err := inc.Poll()
					if err != nil {
						t.Fatalf("%s/%s grow=%v step %d incremental: %v", appName, src.CompName, grow, step, err)
					}
					cold := &transform.WrapperSource{
						CompName: src.CompName, Fetcher: churnCold,
						Program: src.Program, Design: src.Design,
						NoIncremental: true, NoIncrementalOutput: true, NoCache: true,
					}
					want, err := cold.Poll()
					if err != nil {
						t.Fatalf("%s/%s grow=%v step %d cold: %v", appName, src.CompName, grow, step, err)
					}
					coldBytes := xmlenc.MarshalIndentBytes(want[0])
					incBytes := enc.MarshalIndentBytes(got[0])
					if !bytes.Equal(incBytes, coldBytes) {
						t.Errorf("%s/%s grow=%v step %d: incremental+spliced bytes diverge from cold rebuild:\n--- cold ---\n%s--- incremental ---\n%s",
							appName, src.CompName, grow, step, coldBytes, incBytes)
					}
					churnInc.Advance()
					churnCold.Advance()
				}
				if !grow {
					st := inc.ExtractionStats()
					totalReused += st.OutputReusedNodes
					totalSpliced += enc.SplicedBytes()
				}
			}
		}
	}
	if totalReused == 0 {
		t.Error("no output nodes reused across any application wrapper under content-only churn")
	}
	if totalSpliced == 0 {
		t.Error("no encoded bytes spliced across any application wrapper under content-only churn")
	}
}
