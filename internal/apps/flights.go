package apps

import (
	"fmt"
	"strings"

	"repro/internal/elog"
	"repro/internal/pib"
	"repro/internal/transform"
	"repro/internal/web"
	"repro/internal/xmlenc"
)

// FlightInfo is the travel-information service of Section 6.2: the user
// subscribes to flights (by number, or by departure and destination
// location); the system sends the actual flight status "but only if the
// status changed between consecutive requests" — realized by a
// ChangeFilter in front of the SMS deliverer.
type FlightInfo struct {
	Web    *web.Web
	Site   *web.FlightSite
	Engine *transform.Engine
	// SMS collects the delivered status messages.
	SMS *transform.Collector
}

// Subscription selects flights by number or by route.
type Subscription struct {
	Number   string
	From, To string
}

// NewFlightInfo builds the service for a set of subscriptions.
func NewFlightInfo(seed int64, subs []Subscription) (*FlightInfo, error) {
	sim := web.New()
	site := web.NewFlightSite(seed, 30)
	site.Register(sim, "airport.example.com")
	app := &FlightInfo{Web: sim, Site: site, Engine: transform.NewEngine()}

	src := &transform.WrapperSource{
		CompName: "wrap-flights",
		Fetcher:  sim,
		Program: elog.MustParse(`
page(S, X) <- document("airport.example.com/departures.html", S), subelem(S, .body, X)
flight(S, X) <- page(_, S), subelem(S, (?.tr, [(class, flight, exact)]), X)
number(S, X) <- flight(_, S), subelem(S, (?.td, [(class, no, exact)]), X)
from(S, X) <- flight(_, S), subelem(S, (?.td, [(class, from, exact)]), X)
to(S, X) <- flight(_, S), subelem(S, (?.td, [(class, to, exact)]), X)
time(S, X) <- flight(_, S), subelem(S, (?.td, [(class, time, exact)]), X)
status(S, X) <- flight(_, S), subelem(S, (?.td, [(class, status, exact)]), X)
`),
		Design: &pib.Design{Auxiliary: map[string]bool{"document": true, "page": true}, RootName: "departures"},
	}
	if err := app.Engine.Add(src); err != nil {
		return nil, err
	}
	filter := &transform.Transformer{CompName: "subscribed", Fn: func(doc *xmlenc.Node) (*xmlenc.Node, error) {
		out := xmlenc.NewElement("alerts")
		for _, f := range doc.Find("flight") {
			num := strings.TrimSpace(textOf(f.FirstChild("number")))
			from := strings.TrimSpace(textOf(f.FirstChild("from")))
			to := strings.TrimSpace(textOf(f.FirstChild("to")))
			for _, sub := range subs {
				if (sub.Number != "" && sub.Number == num) ||
					(sub.Number == "" && sub.From == from && sub.To == to) {
					a := out.AppendElement("alert")
					a.AppendTextElement("flight", num)
					a.AppendTextElement("status", strings.TrimSpace(textOf(f.FirstChild("status"))))
					break
				}
			}
		}
		if len(out.Children) == 0 {
			return nil, nil
		}
		return out, nil
	}}
	change := &transform.ChangeFilter{CompName: "onchange"}
	app.SMS = &transform.Collector{CompName: "sms"}
	for _, c := range []transform.Component{filter, change, app.SMS} {
		if err := app.Engine.Add(c); err != nil {
			return nil, err
		}
	}
	for _, e := range [][2]string{{"wrap-flights", "subscribed"}, {"subscribed", "onchange"}, {"onchange", "sms"}} {
		if err := app.Engine.Connect(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return app, nil
}

// Step advances the airport's state and polls once.
func (a *FlightInfo) Step(advance bool) {
	if advance {
		a.Site.Advance()
	}
	a.Engine.Tick()
}

// LastMessage formats the most recent SMS, or "".
func (a *FlightInfo) LastMessage() string {
	last := a.SMS.Latest()
	if last == nil {
		return ""
	}
	var parts []string
	for _, alert := range last.Find("alert") {
		parts = append(parts, fmt.Sprintf("%s: %s",
			textOf(alert.FirstChild("flight")), textOf(alert.FirstChild("status"))))
	}
	return strings.Join(parts, "; ")
}
