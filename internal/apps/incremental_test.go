package apps

import (
	"runtime"
	"testing"

	"repro/internal/elog"
	"repro/internal/transform"
	"repro/internal/web"
)

// TestAppWrappersIncrementalDifferential runs every wrapper source of
// the Section 6 applications over a randomized mutation sequence of its
// own pages and requires the incremental evaluator (one compiled
// program + shared match cache held across versions) to produce an
// instance base byte-identical to a cold evaluation of each version —
// under content-only churn, where subtree reuse must engage, and under
// structural churn, where mutated trees fall out of document order and
// the evaluator must fall back to full matching.
func TestAppWrappersIncrementalDifferential(t *testing.T) {
	engines := map[string]*transform.Engine{}
	if app, err := NewNowPlaying(17); err == nil {
		engines["nowplaying"] = app.Engine
	} else {
		t.Fatal(err)
	}
	if app, err := NewFlightInfo(11, []Subscription{{Number: "OS105"}}); err == nil {
		engines["flightinfo"] = app.Engine
	} else {
		t.Fatal(err)
	}
	if app, err := NewPressClipping(5); err == nil {
		engines["pressclipping"] = app.Engine
	} else {
		t.Fatal(err)
	}
	if app, err := NewPowerTrading(9); err == nil {
		engines["powertrading"] = app.Engine
	} else {
		t.Fatal(err)
	}
	if app, err := NewViticulture([]string{"wachau", "kamptal"}); err == nil {
		engines["viticulture"] = app.Engine
	} else {
		t.Fatal(err)
	}
	if app, err := NewAutomotiveMonitor(23); err == nil {
		engines["automotive"] = app.Engine
	} else {
		t.Fatal(err)
	}

	var totalHits uint64
	for appName, eng := range engines {
		for _, comp := range eng.Components() {
			src, ok := comp.(*transform.WrapperSource)
			if !ok {
				continue
			}
			for _, grow := range []bool{false, true} {
				churn := &web.ChurnFetcher{Inner: src.Fetcher, Seed: 31, PerStep: 3, Grow: grow}
				cp := elog.MustCompile(src.Program)
				shared := elog.NewMatchCache()
				for step := 0; step < 4; step++ {
					cold := elog.NewEvaluator(churn)
					coldBase, err := cold.RunCompiled(elog.MustCompile(src.Program))
					if err != nil {
						t.Fatalf("%s/%s grow=%v step %d cold: %v", appName, src.CompName, grow, step, err)
					}
					inc := elog.NewEvaluator(churn)
					inc.MaxConcurrency = runtime.GOMAXPROCS(0)
					inc.Incremental = true
					inc.Shared = shared
					incBase, err := inc.RunCompiled(cp)
					if err != nil {
						t.Fatalf("%s/%s grow=%v step %d incremental: %v", appName, src.CompName, grow, step, err)
					}
					if want, got := coldBase.Dump(), incBase.Dump(); got != want {
						t.Errorf("%s/%s grow=%v step %d: incremental base diverges from cold evaluation:\n--- cold ---\n%s--- incremental ---\n%s",
							appName, src.CompName, grow, step, want, got)
					}
					churn.Advance()
				}
				if !grow {
					totalHits += cp.Incremental().SubtreeHits
				}
			}
		}
	}
	if totalHits == 0 {
		t.Error("no subtree hits across any application wrapper under content-only churn")
	}
}
