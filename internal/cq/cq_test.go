package cq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dom"
)

func nodesEqual(a, b []dom.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// oracle evaluates a query by complete enumeration over all variable
// assignments — the definition, O(n^k).
func oracle(q *Query, t *dom.Tree) []dom.NodeID {
	n := t.Size()
	assign := make([]dom.NodeID, q.NumVars)
	var witnesses []dom.NodeID
	seen := map[dom.NodeID]bool{}
	satisfied := false
	var rec func(v int)
	rec = func(v int) {
		if v == q.NumVars {
			for _, l := range q.Labels {
				if t.Label(assign[l.X]) != l.Label {
					return
				}
			}
			for _, e := range q.Edges {
				if !e.Axis.Holds(t, assign[e.X], assign[e.Y]) {
					return
				}
			}
			satisfied = true
			if q.Free >= 0 && !seen[assign[q.Free]] {
				seen[assign[q.Free]] = true
				witnesses = append(witnesses, assign[q.Free])
			}
			return
		}
		for i := 0; i < n; i++ {
			assign[v] = dom.NodeID(i)
			rec(v + 1)
		}
	}
	rec(0)
	if q.Free < 0 {
		if satisfied {
			return []dom.NodeID{0}
		}
		return nil
	}
	t.SortDocOrder(witnesses)
	return witnesses
}

func TestAxisHoldsAgainstImages(t *testing.T) {
	tr := dom.MustParseTerm("a(b(c,d),e(f(g)),h)")
	tr.Reindex()
	for a := Child; a <= Following; a++ {
		for x := 0; x < tr.Size(); x++ {
			img := map[dom.NodeID]bool{}
			for _, y := range axisImage(tr, a, dom.NodeID(x)) {
				img[y] = true
			}
			for y := 0; y < tr.Size(); y++ {
				if got := a.Holds(tr, dom.NodeID(x), dom.NodeID(y)); got != img[dom.NodeID(y)] {
					t.Fatalf("%s(%d,%d): Holds=%v image=%v", a, x, y, got, img[dom.NodeID(y)])
				}
			}
			pre := map[dom.NodeID]bool{}
			for _, y := range axisPreimage(tr, a, dom.NodeID(x)) {
				pre[y] = true
			}
			for y := 0; y < tr.Size(); y++ {
				if got := a.Holds(tr, dom.NodeID(y), dom.NodeID(x)); got != pre[dom.NodeID(y)] {
					t.Fatalf("%s preimage(%d): node %d: Holds=%v preimage=%v", a, x, y, got, pre[dom.NodeID(y)])
				}
			}
		}
	}
}

// randomQuery generates a random acyclic query (tree over vars).
func randomAcyclicQuery(rng *rand.Rand, maxVars int, axes []Axis, labels []string) *Query {
	nv := 1 + rng.Intn(maxVars)
	q := &Query{NumVars: nv, Free: Var(rng.Intn(nv))}
	if rng.Intn(5) == 0 {
		q.Free = -1
	}
	for v := 1; v < nv; v++ {
		other := Var(rng.Intn(v))
		ax := axes[rng.Intn(len(axes))]
		if rng.Intn(2) == 0 {
			q.Edges = append(q.Edges, EdgeAtom{Axis: ax, X: other, Y: Var(v)})
		} else {
			q.Edges = append(q.Edges, EdgeAtom{Axis: ax, X: Var(v), Y: other})
		}
	}
	for i := 0; i < rng.Intn(3); i++ {
		q.Labels = append(q.Labels, LabelAtom{X: Var(rng.Intn(nv)), Label: labels[rng.Intn(len(labels))]})
	}
	return q
}

var allAxes = []Axis{Child, ChildPlus, ChildStar, NextSibling, NextSiblingPlus, NextSiblingStar, Following}

// TestGenericMatchesOracle validates the backtracking evaluator against
// brute-force enumeration on small instances.
func TestGenericMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := dom.RandomTree(rng, 1+rng.Intn(9), []string{"a", "b"}, 3)
		q := randomAcyclicQuery(rng, 3, allAxes, []string{"a", "b"})
		got, err := EvalGeneric(q, tr)
		if err != nil {
			return false
		}
		want := oracle(q, tr)
		if !nodesEqual(got, want) {
			t.Logf("query %s tree %s: got %v want %v", q, tr, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestAcyclicMatchesGeneric is the central differential property:
// the linear-time semijoin evaluator agrees with backtracking on random
// acyclic queries and trees.
func TestAcyclicMatchesGeneric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := dom.RandomTree(rng, 1+rng.Intn(50), []string{"a", "b", "c"}, 4)
		q := randomAcyclicQuery(rng, 5, allAxes, []string{"a", "b", "c"})
		fast, err := EvalAcyclic(q, tr)
		if err != nil {
			t.Logf("acyclic refused %s: %v", q, err)
			return false
		}
		slow, err := EvalGeneric(q, tr)
		if err != nil {
			return false
		}
		if !nodesEqual(fast, slow) {
			t.Logf("query %s tree %s: acyclic %v generic %v", q, tr, fast, slow)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAcyclicRejectsCycles(t *testing.T) {
	q := &Query{NumVars: 2, Free: 0, Edges: []EdgeAtom{
		{Axis: Child, X: 0, Y: 1},
		{Axis: ChildPlus, X: 0, Y: 1},
	}}
	if _, err := EvalAcyclic(q, dom.MustParseTerm("a(b)")); err == nil {
		t.Fatal("cyclic query accepted")
	}
}

func TestDichotomyClassifier(t *testing.T) {
	mk := func(axes ...Axis) *Query {
		q := &Query{NumVars: len(axes) + 1, Free: 0}
		for i, a := range axes {
			q.Edges = append(q.Edges, EdgeAtom{Axis: a, X: Var(i), Y: Var(i + 1)})
		}
		return q
	}
	tractable := []*Query{
		mk(ChildPlus, ChildStar),
		mk(Child, NextSibling, NextSiblingPlus, NextSiblingStar),
		mk(Following, Following),
		mk(ChildStar),
		mk(),
	}
	hard := []*Query{
		mk(Child, ChildPlus), // the canonical NP-hard pair [28]
		mk(Child, ChildStar),
		mk(ChildPlus, NextSibling),
		mk(Following, Child),
		mk(Following, NextSiblingStar),
	}
	for _, q := range tractable {
		if !q.IsTractableAxisSet() {
			t.Errorf("%s should be tractable", q)
		}
	}
	for _, q := range hard {
		if q.IsTractableAxisSet() {
			t.Errorf("%s should be NP-hard", q)
		}
	}
}

func TestBooleanQueries(t *testing.T) {
	tr := dom.MustParseTerm("a(b(c),d)")
	// ∃x,y: label_b(x) ∧ Child(x,y) ∧ label_c(y) — true.
	q := &Query{NumVars: 2, Free: -1,
		Edges:  []EdgeAtom{{Axis: Child, X: 0, Y: 1}},
		Labels: []LabelAtom{{X: 0, Label: "b"}, {X: 1, Label: "c"}}}
	for name, eval := range map[string]func(*Query, *dom.Tree) ([]dom.NodeID, error){
		"generic": EvalGeneric, "acyclic": EvalAcyclic,
	} {
		got, err := eval(q, tr)
		if err != nil || len(got) != 1 {
			t.Errorf("%s: got %v, %v", name, got, err)
		}
	}
	q.Labels[1].Label = "d" // b has no d child
	for name, eval := range map[string]func(*Query, *dom.Tree) ([]dom.NodeID, error){
		"generic": EvalGeneric, "acyclic": EvalAcyclic,
	} {
		got, err := eval(q, tr)
		if err != nil || len(got) != 0 {
			t.Errorf("%s negative: got %v, %v", name, got, err)
		}
	}
}

func TestContradictoryLabels(t *testing.T) {
	q := &Query{NumVars: 1, Free: 0, Labels: []LabelAtom{{X: 0, Label: "a"}, {X: 0, Label: "b"}}}
	got, err := EvalGeneric(q, dom.MustParseTerm("a(b)"))
	if err != nil || got != nil {
		t.Errorf("got %v, %v", got, err)
	}
}

func TestValidateRejectsBadVars(t *testing.T) {
	q := &Query{NumVars: 1, Free: 0, Edges: []EdgeAtom{{Axis: Child, X: 0, Y: 5}}}
	if _, err := EvalGeneric(q, dom.MustParseTerm("a")); err == nil {
		t.Fatal("out-of-range variable accepted")
	}
}

// hardQuery builds the NP-hard-side query family used in experiment E11:
// a chain alternating Child and ChildPlus with same-label constraints;
// on a suitably ambiguous tree the backtracker must explore many partial
// matches.
func hardQuery(k int) *Query {
	q := &Query{NumVars: k + 1, Free: -1}
	for i := 0; i < k; i++ {
		ax := Child
		if i%2 == 1 {
			ax = ChildPlus
		}
		q.Edges = append(q.Edges, EdgeAtom{Axis: ax, X: Var(i), Y: Var(i + 1)})
		q.Labels = append(q.Labels, LabelAtom{X: Var(i), Label: "a"})
	}
	q.Labels = append(q.Labels, LabelAtom{X: Var(k), Label: "b"})
	return q
}

// tractableQuery builds a same-length query within a single tractable
// axis class ({child, nextsibling*}), acyclic, evaluated by EvalAcyclic.
func tractableQuery(k int) *Query {
	q := &Query{NumVars: k + 1, Free: 0}
	for i := 0; i < k; i++ {
		ax := Child
		if i%2 == 1 {
			ax = NextSiblingStar
		}
		q.Edges = append(q.Edges, EdgeAtom{Axis: ax, X: Var(i), Y: Var(i + 1)})
		q.Labels = append(q.Labels, LabelAtom{X: Var(i), Label: "a"})
	}
	return q
}

func BenchmarkE11_CQDichotomy(b *testing.B) {
	// The tree: a deep "all-a" comb so that Child/ChildPlus chains have
	// exponentially many embeddings.
	tr := dom.RandomTree(rand.New(rand.NewSource(2)), 300, []string{"a"}, 2)
	// Relabel some leaves to b so hard queries are (barely) satisfiable.
	for _, q := range []int{0} {
		_ = q
	}
	for _, k := range []int{2, 4, 6, 8} {
		hq := hardQuery(k)
		b.Run("nphard-side-k"+itoa(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := EvalGeneric(hq, tr); err != nil {
					b.Fatal(err)
				}
			}
		})
		tq := tractableQuery(k)
		b.Run("poly-side-k"+itoa(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := EvalAcyclic(tq, tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestDisconnectedBooleanQuery(t *testing.T) {
	// Q() <- label_a(x0), label_b(x1): two independent components; true
	// iff both labels occur somewhere.
	q := &Query{NumVars: 2, Free: -1, Labels: []LabelAtom{{X: 0, Label: "a"}, {X: 1, Label: "b"}}}
	both := dom.MustParseTerm("r(a,b)")
	onlyA := dom.MustParseTerm("r(a,a)")
	for name, eval := range map[string]func(*Query, *dom.Tree) ([]dom.NodeID, error){
		"generic": EvalGeneric, "acyclic": EvalAcyclic,
	} {
		got, err := eval(q, both)
		if err != nil || len(got) != 1 {
			t.Errorf("%s on both: %v %v", name, got, err)
		}
		got, err = eval(q, onlyA)
		if err != nil || len(got) != 0 {
			t.Errorf("%s on onlyA: %v %v", name, got, err)
		}
	}
}

func TestDisconnectedUnaryQuery(t *testing.T) {
	// Q(x0) <- label_a(x0), label_b(x1): witnesses for x0 exist only if
	// some b exists elsewhere.
	q := &Query{NumVars: 2, Free: 0, Labels: []LabelAtom{{X: 0, Label: "a"}, {X: 1, Label: "b"}}}
	tr := dom.MustParseTerm("r(a,b,a)")
	for name, eval := range map[string]func(*Query, *dom.Tree) ([]dom.NodeID, error){
		"generic": EvalGeneric, "acyclic": EvalAcyclic,
	} {
		got, err := eval(q, tr)
		if err != nil || len(got) != 2 {
			t.Errorf("%s: %v %v", name, got, err)
		}
	}
	tr2 := dom.MustParseTerm("r(a,a)")
	for name, eval := range map[string]func(*Query, *dom.Tree) ([]dom.NodeID, error){
		"generic": EvalGeneric, "acyclic": EvalAcyclic,
	} {
		got, err := eval(q, tr2)
		if err != nil || len(got) != 0 {
			t.Errorf("%s without b: %v %v", name, got, err)
		}
	}
}
