// Package cq implements conjunctive queries over trees with the XPath
// axis relations of Section 4 of the paper:
//
//	Child, Child+, Child*, Nextsibling, Nextsibling+, Nextsibling*,
//	Following
//
// It provides
//
//   - a generic backtracking evaluator for arbitrary (possibly cyclic)
//     conjunctive queries — exponential in query size in the worst case,
//     as it must be on the NP-hard side of the dichotomy of [18],
//   - a Yannakakis-style semijoin evaluator for acyclic queries running
//     in time O(|Q| · |dom|) (the acyclic case that [14] shows to be in
//     linear time; by Corollary 4.5 every CQ over trees is equivalent to
//     an acyclic positive query, though not polynomially so),
//   - the tractability classifier of the [18] dichotomy: a class of CQs
//     over an axis set F is polynomial iff F is contained in one of
//     {Child+, Child*}, {Child, Nextsibling, Nextsibling+,
//     Nextsibling*}, or {Following}.
//
// Experiment E11 uses the two evaluators to exhibit the dichotomy
// empirically.
package cq

import (
	"fmt"
	"strings"

	"repro/internal/dom"
)

// Axis enumerates the binary tree relations ("axes") of Section 4.
type Axis int

const (
	// Child is Child(x, y): y is a child of x.
	Child Axis = iota
	// ChildPlus is Child+(x, y): y is a proper descendant of x.
	ChildPlus
	// ChildStar is Child*(x, y): y is x or a descendant of x.
	ChildStar
	// NextSibling is Nextsibling(x, y): y immediately follows x among
	// the children of their common parent.
	NextSibling
	// NextSiblingPlus is Nextsibling+(x, y).
	NextSiblingPlus
	// NextSiblingStar is Nextsibling*(x, y).
	NextSiblingStar
	// Following is the XPath following axis (see dom.Following).
	Following
)

var axisNames = map[Axis]string{
	Child: "Child", ChildPlus: "Child+", ChildStar: "Child*",
	NextSibling: "Nextsibling", NextSiblingPlus: "Nextsibling+",
	NextSiblingStar: "Nextsibling*", Following: "Following",
}

func (a Axis) String() string { return axisNames[a] }

// Holds evaluates the axis relation on a pair of nodes in O(1) (after
// the tree's first Reindex).
func (a Axis) Holds(t *dom.Tree, x, y dom.NodeID) bool {
	switch a {
	case Child:
		return t.IsChild(x, y)
	case ChildPlus:
		return t.IsAncestor(x, y)
	case ChildStar:
		return t.IsAncestorOrSelf(x, y)
	case NextSibling:
		return t.NextSibling(x) == y
	case NextSiblingPlus:
		return t.FollowingSibling(x, y)
	case NextSiblingStar:
		return x == y || t.FollowingSibling(x, y)
	case Following:
		return t.Following(x, y)
	}
	return false
}

// Var identifies a query variable (0-based).
type Var int

// EdgeAtom is a binary atom Axis(X, Y).
type EdgeAtom struct {
	Axis Axis
	X, Y Var
}

// LabelAtom is a unary atom label_Label(X).
type LabelAtom struct {
	X     Var
	Label string
}

// Query is a conjunctive query over tree axes and unary label relations.
// Free is the free variable for unary queries, or -1 for boolean
// queries.
type Query struct {
	NumVars int
	Edges   []EdgeAtom
	Labels  []LabelAtom
	Free    Var
}

// Size returns the number of atoms, the |Q| of combined complexity.
func (q *Query) Size() int { return len(q.Edges) + len(q.Labels) }

func (q *Query) String() string {
	var parts []string
	for _, l := range q.Labels {
		parts = append(parts, fmt.Sprintf("label_%s(x%d)", l.Label, l.X))
	}
	for _, e := range q.Edges {
		parts = append(parts, fmt.Sprintf("%s(x%d,x%d)", e.Axis, e.X, e.Y))
	}
	head := "Q()"
	if q.Free >= 0 {
		head = fmt.Sprintf("Q(x%d)", q.Free)
	}
	return head + " <- " + strings.Join(parts, ", ")
}

// Axes returns the set of axes used by the query.
func (q *Query) Axes() map[Axis]bool {
	s := map[Axis]bool{}
	for _, e := range q.Edges {
		s[e.Axis] = true
	}
	return s
}

// maximalPolySets are the subset-maximal polynomial axis sets of the
// [18] dichotomy, as listed in Section 4.
var maximalPolySets = [][]Axis{
	{ChildPlus, ChildStar},
	{Child, NextSibling, NextSiblingPlus, NextSiblingStar},
	{Following},
}

// IsTractableAxisSet reports whether the query's axis set falls within
// one of the three maximal polynomial classes. Queries outside all three
// (e.g. using both Child and Child+) belong to the NP-complete side of
// the dichotomy.
func (q *Query) IsTractableAxisSet() bool {
	used := q.Axes()
	for _, set := range maximalPolySets {
		ok := true
		for a := range used {
			member := false
			for _, b := range set {
				if a == b {
					member = true
					break
				}
			}
			if !member {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// IsAcyclic reports whether the query's atom multigraph over variables
// is acyclic and connected components are trees (multi-edges count as
// cycles). Acyclic queries evaluate in linear time via EvalAcyclic.
func (q *Query) IsAcyclic() bool {
	parent := make([]int, q.NumVars)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range q.Edges {
		a, b := find(int(e.X)), find(int(e.Y))
		if a == b {
			return false
		}
		parent[a] = b
	}
	return true
}

// Validate checks variable ranges.
func (q *Query) Validate() error {
	check := func(v Var) error {
		if v < 0 || int(v) >= q.NumVars {
			return fmt.Errorf("cq: variable x%d out of range (NumVars=%d)", v, q.NumVars)
		}
		return nil
	}
	for _, e := range q.Edges {
		if err := check(e.X); err != nil {
			return err
		}
		if err := check(e.Y); err != nil {
			return err
		}
	}
	for _, l := range q.Labels {
		if err := check(l.X); err != nil {
			return err
		}
	}
	if q.Free >= 0 {
		return check(q.Free)
	}
	return nil
}
