package cq

import (
	"fmt"

	"repro/internal/dom"
)

// EvalAcyclic evaluates an acyclic conjunctive query in time
// O(|Q| · |dom|) by Yannakakis-style semijoin reduction over a join tree
// rooted at the free variable: each axis semijoin is computed by a
// single linear sweep over the tree (the acyclic-queries-in-linear-time
// result recalled in Section 4 from [14]).
//
// Returns an error if the query is cyclic (use EvalGeneric there).
// Boolean queries return [0] when satisfiable, like EvalGeneric.
func EvalAcyclic(q *Query, t *dom.Tree) ([]dom.NodeID, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if !q.IsAcyclic() {
		return nil, fmt.Errorf("cq: query is cyclic: %s", q)
	}
	if t.Size() == 0 {
		return nil, nil
	}
	t.Reindex()
	n := t.Size()

	// Initial candidate sets from label atoms.
	cand := make([][]bool, q.NumVars)
	for v := range cand {
		cand[v] = make([]bool, n)
		for i := range cand[v] {
			cand[v][i] = true
		}
	}
	for _, l := range q.Labels {
		for i := 0; i < n; i++ {
			if t.Label(dom.NodeID(i)) != l.Label {
				cand[l.X][i] = false
			}
		}
	}

	adj := make([][]int, q.NumVars)
	for i, e := range q.Edges {
		adj[e.X] = append(adj[e.X], i)
		adj[e.Y] = append(adj[e.Y], i)
	}

	// Process each connected component, rooting the component containing
	// the free variable at it.
	visited := make([]bool, q.NumVars)
	edgeDone := make([]bool, len(q.Edges))

	// semijoinUp reduces the candidate set of v by its subtree below in
	// the join tree (post-order).
	var semijoinUp func(v Var)
	semijoinUp = func(v Var) {
		visited[v] = true
		for _, ei := range adj[v] {
			if edgeDone[ei] {
				continue
			}
			edgeDone[ei] = true
			e := q.Edges[ei]
			w := e.Y
			if w == v {
				w = e.X
			}
			if visited[w] {
				// Can only happen in cyclic queries, excluded above.
				continue
			}
			semijoinUp(w)
			var reduced []bool
			if e.X == v {
				// Axis(v, w): keep v-candidates with some axis-image in
				// cand[w].
				reduced = preimageSet(t, e.Axis, cand[w])
			} else {
				reduced = imageSet(t, e.Axis, cand[w])
			}
			for i := 0; i < n; i++ {
				cand[v][i] = cand[v][i] && reduced[i]
			}
		}
	}

	root := q.Free
	if root < 0 {
		root = 0
	}
	semijoinUp(root)
	rootEmpty := true
	for i := 0; i < n; i++ {
		if cand[root][i] {
			rootEmpty = false
			break
		}
	}
	// Remaining components must each be independently satisfiable.
	othersOK := true
	for v := 0; v < q.NumVars; v++ {
		if visited[v] {
			continue
		}
		semijoinUp(Var(v))
		any := false
		for i := 0; i < n; i++ {
			if cand[v][i] {
				any = true
				break
			}
		}
		if !any {
			othersOK = false
		}
	}
	if q.Free < 0 {
		if !rootEmpty && othersOK {
			return []dom.NodeID{0}, nil
		}
		return nil, nil
	}
	if rootEmpty || !othersOK {
		return nil, nil
	}
	var out []dom.NodeID
	for i := 0; i < n; i++ {
		if cand[root][i] {
			out = append(out, dom.NodeID(i))
		}
	}
	return t.SortDocOrder(out), nil
}

// imageSet returns the characteristic vector of {y : ∃x∈S Axis(x, y)},
// computed in O(|dom|).
func imageSet(t *dom.Tree, a Axis, s []bool) []bool {
	n := t.Size()
	out := make([]bool, n)
	switch a {
	case Child:
		for i := 0; i < n; i++ {
			if p := t.Parent(dom.NodeID(i)); p != dom.Nil && s[p] {
				out[i] = true
			}
		}
	case ChildPlus, ChildStar:
		// out[y] = some proper ancestor in S; doc order guarantees
		// parents precede children only when ids are in doc order, so
		// use InDocumentOrder for safety.
		for _, y := range t.InDocumentOrder() {
			p := t.Parent(y)
			if p != dom.Nil && (s[p] || out[p]) {
				out[y] = true
			}
		}
		if a == ChildStar {
			orInto(out, s)
		}
	case NextSibling:
		for i := 0; i < n; i++ {
			if p := t.PrevSibling(dom.NodeID(i)); p != dom.Nil && s[p] {
				out[i] = true
			}
		}
	case NextSiblingPlus, NextSiblingStar:
		for _, y := range t.InDocumentOrder() {
			p := t.PrevSibling(y)
			if p != dom.Nil && (s[p] || out[p]) {
				out[y] = true
			}
		}
		if a == NextSiblingStar {
			orInto(out, s)
		}
	case Following:
		// out[y] ⇔ ∃x∈S: pre[x] < pre[y] ∧ post[x] < post[y]. Sweep in
		// document order keeping the minimum post among S-nodes seen.
		minPost := int(^uint(0) >> 1)
		for _, y := range t.InDocumentOrder() {
			if minPost < t.Post(y) {
				out[y] = true
			}
			if s[y] && t.Post(y) < minPost {
				minPost = t.Post(y)
			}
		}
	}
	return out
}

// preimageSet returns the characteristic vector of {x : ∃y∈S Axis(x, y)}
// in O(|dom|).
func preimageSet(t *dom.Tree, a Axis, s []bool) []bool {
	n := t.Size()
	out := make([]bool, n)
	order := t.InDocumentOrder()
	switch a {
	case Child:
		for i := 0; i < n; i++ {
			if s[i] {
				if p := t.Parent(dom.NodeID(i)); p != dom.Nil {
					out[p] = true
				}
			}
		}
	case ChildPlus, ChildStar:
		// out[x] = some proper descendant in S: reverse doc order.
		for i := len(order) - 1; i >= 0; i-- {
			y := order[i]
			if p := t.Parent(y); p != dom.Nil && (s[y] || out[y]) {
				out[p] = true
			}
		}
		if a == ChildStar {
			orInto(out, s)
		}
	case NextSibling:
		for i := 0; i < n; i++ {
			if s[i] {
				if p := t.PrevSibling(dom.NodeID(i)); p != dom.Nil {
					out[p] = true
				}
			}
		}
	case NextSiblingPlus, NextSiblingStar:
		for i := len(order) - 1; i >= 0; i-- {
			y := order[i]
			if p := t.PrevSibling(y); p != dom.Nil && (s[y] || out[y]) {
				out[p] = true
			}
		}
		if a == NextSiblingStar {
			orInto(out, s)
		}
	case Following:
		// out[x] ⇔ ∃y∈S: pre[y] > pre[x] ∧ post[y] > post[x]. Sweep in
		// reverse document order keeping the maximum post among S-nodes.
		maxPost := -1
		for i := len(order) - 1; i >= 0; i-- {
			x := order[i]
			if maxPost > t.Post(x) {
				out[x] = true
			}
			if s[x] && t.Post(x) > maxPost {
				maxPost = t.Post(x)
			}
		}
	}
	return out
}

func orInto(dst, src []bool) {
	for i := range dst {
		dst[i] = dst[i] || src[i]
	}
}
