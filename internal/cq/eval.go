package cq

import (
	"repro/internal/dom"
)

// EvalGeneric evaluates an arbitrary conjunctive query by backtracking
// search with adjacency-driven candidate generation. For unary queries it
// returns the set of witnesses for the free variable; for boolean
// queries it returns a single pseudo-result [0] if the query is
// satisfiable on t and nil otherwise.
//
// Worst-case time is O(|dom|^k) for k variables — necessarily so for the
// NP-hard query classes of the dichotomy (experiment E11 measures this
// growth); on tree-shaped queries the candidate propagation typically
// prunes well.
func EvalGeneric(q *Query, t *dom.Tree) ([]dom.NodeID, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if t.Size() == 0 {
		return nil, nil
	}
	t.Reindex()
	// Per-variable static candidate filters from label atoms.
	labelOf := make([]string, q.NumVars)
	labelSet := make([]bool, q.NumVars)
	for _, l := range q.Labels {
		if labelSet[l.X] && labelOf[l.X] != l.Label {
			// Two different labels on one variable: unsatisfiable.
			return nil, nil
		}
		labelOf[l.X] = l.Label
		labelSet[l.X] = true
	}
	// adjacency: edges incident to each variable.
	adj := make([][]int, q.NumVars)
	for i, e := range q.Edges {
		adj[e.X] = append(adj[e.X], i)
		adj[e.Y] = append(adj[e.Y], i)
	}
	// Variable order: free variable last is good for collecting
	// witnesses cheaply — but starting from it lets us prune per witness;
	// we order by: free first, then BFS over the constraint graph,
	// isolated variables last.
	order := make([]Var, 0, q.NumVars)
	seen := make([]bool, q.NumVars)
	var queue []Var
	push := func(v Var) {
		if !seen[v] {
			seen[v] = true
			queue = append(queue, v)
		}
	}
	if q.Free >= 0 {
		push(q.Free)
	}
	for v := 0; v < q.NumVars; v++ {
		push(Var(v))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			order = append(order, u)
			for _, ei := range adj[u] {
				push(q.Edges[ei].X)
				push(q.Edges[ei].Y)
			}
		}
	}

	assign := make([]dom.NodeID, q.NumVars)
	for i := range assign {
		assign[i] = dom.Nil
	}
	var witnesses []dom.NodeID
	witnessSet := map[dom.NodeID]bool{}

	matches := func(v Var, n dom.NodeID) bool {
		if labelSet[v] && t.Label(n) != labelOf[v] {
			return false
		}
		for _, ei := range adj[v] {
			e := q.Edges[ei]
			if e.X == v && e.Y == v {
				if !e.Axis.Holds(t, n, n) {
					return false
				}
				continue
			}
			if e.X == v && assign[e.Y] != dom.Nil {
				if !e.Axis.Holds(t, n, assign[e.Y]) {
					return false
				}
			}
			if e.Y == v && assign[e.X] != dom.Nil {
				if !e.Axis.Holds(t, assign[e.X], n) {
					return false
				}
			}
		}
		return true
	}

	// rec returns true when the caller should stop the whole search:
	// for boolean queries, as soon as one full assignment is found; for
	// unary queries, never (all witnesses are wanted), but subtrees of
	// the search below a recorded witness are cut by witnessed().
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(order) {
			if q.Free < 0 {
				return true
			}
			w := assign[q.Free]
			if !witnessSet[w] {
				witnessSet[w] = true
				witnesses = append(witnesses, w)
			}
			return false
		}
		v := order[k]
		for _, n := range candidates(q, t, adj, assign, v) {
			// Skip free-variable values that are already witnesses: the
			// free variable is first in the order, so the whole subtree
			// below would only re-derive the same witness.
			if v == q.Free && witnessSet[n] {
				continue
			}
			if !matches(v, n) {
				continue
			}
			assign[v] = n
			stop := rec(k + 1)
			assign[v] = dom.Nil
			if stop {
				return true
			}
		}
		return false
	}
	sat := rec(0)
	if q.Free < 0 {
		if sat {
			return []dom.NodeID{0}, nil
		}
		return nil, nil
	}
	t.SortDocOrder(witnesses)
	return witnesses, nil
}

// candidates produces the nodes to try for variable v given the current
// partial assignment: the axis image/preimage of the first bound
// neighbor, or all nodes.
func candidates(q *Query, t *dom.Tree, adj [][]int, assign []dom.NodeID, v Var) []dom.NodeID {
	for _, ei := range adj[v] {
		e := q.Edges[ei]
		if e.X == v && e.Y != v && assign[e.Y] != dom.Nil {
			return axisPreimage(t, e.Axis, assign[e.Y])
		}
		if e.Y == v && e.X != v && assign[e.X] != dom.Nil {
			return axisImage(t, e.Axis, assign[e.X])
		}
	}
	all := make([]dom.NodeID, t.Size())
	for i := range all {
		all[i] = dom.NodeID(i)
	}
	return all
}

// axisImage returns {y : Axis(x, y)}.
func axisImage(t *dom.Tree, a Axis, x dom.NodeID) []dom.NodeID {
	switch a {
	case Child:
		return t.Children(x)
	case ChildPlus:
		return t.Descendants(x)
	case ChildStar:
		return append([]dom.NodeID{x}, t.Descendants(x)...)
	case NextSibling:
		if s := t.NextSibling(x); s != dom.Nil {
			return []dom.NodeID{s}
		}
		return nil
	case NextSiblingPlus:
		var out []dom.NodeID
		for s := t.NextSibling(x); s != dom.Nil; s = t.NextSibling(s) {
			out = append(out, s)
		}
		return out
	case NextSiblingStar:
		out := []dom.NodeID{x}
		for s := t.NextSibling(x); s != dom.Nil; s = t.NextSibling(s) {
			out = append(out, s)
		}
		return out
	case Following:
		var out []dom.NodeID
		for i := 0; i < t.Size(); i++ {
			if t.Following(x, dom.NodeID(i)) {
				out = append(out, dom.NodeID(i))
			}
		}
		return out
	}
	return nil
}

// axisPreimage returns {x : Axis(x, y)}.
func axisPreimage(t *dom.Tree, a Axis, y dom.NodeID) []dom.NodeID {
	switch a {
	case Child:
		if p := t.Parent(y); p != dom.Nil {
			return []dom.NodeID{p}
		}
		return nil
	case ChildPlus:
		var out []dom.NodeID
		for p := t.Parent(y); p != dom.Nil; p = t.Parent(p) {
			out = append(out, p)
		}
		return out
	case ChildStar:
		out := []dom.NodeID{y}
		for p := t.Parent(y); p != dom.Nil; p = t.Parent(p) {
			out = append(out, p)
		}
		return out
	case NextSibling:
		if s := t.PrevSibling(y); s != dom.Nil {
			return []dom.NodeID{s}
		}
		return nil
	case NextSiblingPlus:
		var out []dom.NodeID
		for s := t.PrevSibling(y); s != dom.Nil; s = t.PrevSibling(s) {
			out = append(out, s)
		}
		return out
	case NextSiblingStar:
		out := []dom.NodeID{y}
		for s := t.PrevSibling(y); s != dom.Nil; s = t.PrevSibling(s) {
			out = append(out, s)
		}
		return out
	case Following:
		var out []dom.NodeID
		for i := 0; i < t.Size(); i++ {
			if t.Following(dom.NodeID(i), y) {
				out = append(out, dom.NodeID(i))
			}
		}
		return out
	}
	return nil
}
