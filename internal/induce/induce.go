// Package induce is a prototype for the first open problem of Section 7
// ("Tree wrapper learning"): inducing a wrapper from very few positive
// examples, as a complement to fully manual visual specification. The
// paper's goal — "visual specification could allow to guide a supervised
// learning process to require very few examples only" — is realized
// here as most-specific-generalization over element path definitions:
//
//   - every example node contributes its label path from the parent
//     context and its attribute set,
//   - the induced EPD keeps the longest common path suffix, anchored
//     with the '?' descent wildcard,
//   - attribute conditions shared by all examples (same name and value)
//     are kept as exact conditions,
//
// which is exactly the generalize-then-restrict loop of the visual
// builder, automated. Gold's theorem (reference [13]) implies such
// positive-only learning cannot capture all regular patterns; the
// prototype therefore targets the record-list wrappers that dominate
// practice and reports when examples are inconsistent.
package induce

import (
	"fmt"
	"strings"

	"repro/internal/dom"
	"repro/internal/elog"
)

// Example is one user-marked positive example node. Context, when set,
// is the parent-pattern instance node the example was selected within
// (paths are computed relative to it); it defaults to the root.
type Example struct {
	Doc     *dom.Tree
	Node    dom.NodeID
	Context dom.NodeID
}

func (ex Example) context() dom.NodeID {
	if ex.Context > 0 {
		return ex.Context
	}
	return ex.Doc.Root()
}

// Induce learns an element path definition from positive examples, all
// taken relative to the document root context. It returns the induced
// EPD (as Elog source text) and the rule ready to insert into a program
// with the given head and parent pattern names.
func Induce(examples []Example, head, parent string) (*elog.Rule, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("induce: no examples")
	}
	// Collect label paths root -> node (exclusive of the root).
	var paths [][]string
	for _, ex := range examples {
		if ex.Doc.Kind(ex.Node) != dom.Element {
			return nil, fmt.Errorf("induce: example %d is not an element node", ex.Node)
		}
		labels, ok := ex.Doc.PathLabels(ex.context(), ex.Node)
		if !ok {
			return nil, fmt.Errorf("induce: example node %d is not below its context", ex.Node)
		}
		paths = append(paths, labels)
	}
	// Longest common suffix of the paths.
	suffix := commonSuffix(paths)
	if len(suffix) == 0 {
		return nil, fmt.Errorf("induce: examples share no common path suffix (labels %v)", lastLabels(paths))
	}
	// Attribute conditions shared by every example.
	conds := commonAttrs(examples)

	var b strings.Builder
	b.WriteString("?")
	for _, tag := range suffix {
		b.WriteString("." + tag)
	}
	epdSrc := b.String()
	if len(conds) > 0 {
		var cb strings.Builder
		cb.WriteString("(" + epdSrc + ", [")
		for i, c := range conds {
			if i > 0 {
				cb.WriteString(", ")
			}
			fmt.Fprintf(&cb, "(%s, %s, exact)", c[0], c[1])
		}
		cb.WriteString("])")
		epdSrc = cb.String()
	}
	epd, err := elog.ParseEPD(epdSrc)
	if err != nil {
		return nil, fmt.Errorf("induce: internal: %w", err)
	}
	return &elog.Rule{
		Head:    head,
		Parent:  parent,
		Extract: &elog.Extract{Kind: elog.Subelem, EPD: epd},
	}, nil
}

// commonSuffix returns the longest common suffix across all paths.
func commonSuffix(paths [][]string) []string {
	if len(paths) == 0 {
		return nil
	}
	min := len(paths[0])
	for _, p := range paths {
		if len(p) < min {
			min = len(p)
		}
	}
	k := 0
	for k < min {
		tag := paths[0][len(paths[0])-1-k]
		same := true
		for _, p := range paths[1:] {
			if p[len(p)-1-k] != tag {
				same = false
				break
			}
		}
		if !same {
			break
		}
		k++
	}
	out := make([]string, k)
	copy(out, paths[0][len(paths[0])-k:])
	return out
}

func lastLabels(paths [][]string) []string {
	var out []string
	for _, p := range paths {
		out = append(out, p[len(p)-1])
	}
	return out
}

// commonAttrs returns (name, value) pairs present with identical values
// on every example node. Values containing syntax characters are
// dropped (they would not round-trip through the EPD syntax).
func commonAttrs(examples []Example) [][2]string {
	first := examples[0]
	var out [][2]string
	for _, a := range first.Doc.Attrs(first.Node) {
		if strings.ContainsAny(a.Value, "(),[]") || a.Value == "" {
			continue
		}
		shared := true
		for _, ex := range examples[1:] {
			v, ok := ex.Doc.Attr(ex.Node, a.Name)
			if !ok || v != a.Value {
				shared = false
				break
			}
		}
		if shared {
			out = append(out, [2]string{a.Name, a.Value})
		}
	}
	return out
}

// InduceProgram builds a complete one-pattern wrapper: an entry rule for
// the document plus the induced extraction rule, runnable as-is.
func InduceProgram(examples []Example, url, pattern string) (*elog.Program, error) {
	// The entry pattern is the body; examples are interpreted relative
	// to it.
	anchored := make([]Example, len(examples))
	for i, ex := range examples {
		anchored[i] = ex
		if anchored[i].Context == 0 {
			for c := ex.Doc.FirstChild(ex.Doc.Root()); c != dom.Nil; c = ex.Doc.NextSibling(c) {
				if ex.Doc.Label(c) == "body" {
					anchored[i].Context = c
				}
			}
		}
	}
	rule, err := Induce(anchored, pattern, "page")
	if err != nil {
		return nil, err
	}
	entry := &elog.Rule{
		Head: "page", Parent: "document", DocURL: url,
		Extract: &elog.Extract{Kind: elog.Subelem, EPD: elog.MustParseEPD(".body")},
	}
	return &elog.Program{Rules: []*elog.Rule{entry, rule}}, nil
}
