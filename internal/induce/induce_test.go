package induce

import (
	"strings"
	"testing"

	"repro/internal/dom"
	"repro/internal/elog"
	"repro/internal/web"
)

// markTitleCells returns the nodes of the first k title cells on a
// bestseller page.
func markTitleCells(t *testing.T, doc *dom.Tree, k int) []Example {
	t.Helper()
	var out []Example
	doc.Walk(func(n dom.NodeID) {
		if len(out) < k && doc.Label(n) == "td" {
			if v, ok := doc.Attr(n, "class"); ok && v == "title" {
				out = append(out, Example{Doc: doc, Node: n})
			}
		}
	})
	if len(out) != k {
		t.Fatalf("marked %d cells, want %d", len(out), k)
	}
	return out
}

func TestInduceFromTwoExamples(t *testing.T) {
	sim := web.New()
	site := web.NewBookSite(31, 15)
	site.Register(sim, "books.example.com")
	doc, err := sim.Fetch("books.example.com/bestsellers.html")
	if err != nil {
		t.Fatal(err)
	}
	examples := markTitleCells(t, doc, 2)
	prog, err := InduceProgram(examples, "books.example.com/bestsellers.html", "title")
	if err != nil {
		t.Fatal(err)
	}
	base, err := elog.NewEvaluator(sim).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	titles := base.Instances("title")
	if len(titles) != 15 {
		t.Fatalf("induced wrapper found %d of 15 titles\nprogram:\n%s", len(titles), prog)
	}
	for i, in := range titles {
		if got := strings.TrimSpace(in.TextContent()); got != site.Books[i].Title {
			t.Errorf("title[%d] = %q want %q", i, got, site.Books[i].Title)
		}
	}
	// Precision: no author or price cells leaked in.
	for _, in := range titles {
		if v, _ := in.Doc.Attr(in.Nodes[0], "class"); v != "title" {
			t.Errorf("non-title cell extracted (class %q)", v)
		}
	}
}

func TestInduceGeneralizesToHeldOutPage(t *testing.T) {
	sim := web.New()
	web.NewBookSite(31, 5).Register(sim, "books.example.com")
	doc, _ := sim.Fetch("books.example.com/bestsellers.html")
	prog, err := InduceProgram(markTitleCells(t, doc, 2), "books.example.com/bestsellers.html", "title")
	if err != nil {
		t.Fatal(err)
	}
	held := web.New()
	site2 := web.NewBookSite(77, 40)
	site2.Register(held, "books.example.com")
	base, err := elog.NewEvaluator(held).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(base.Instances("title")); got != 40 {
		t.Fatalf("held-out extraction found %d of 40", got)
	}
}

func TestInduceErrors(t *testing.T) {
	if _, err := Induce(nil, "p", "page"); err == nil {
		t.Error("no examples accepted")
	}
	doc := dom.MustParseTerm(`a(b,"text")`)
	if _, err := Induce([]Example{{Doc: doc, Node: doc.Root()}}, "p", "page"); err == nil {
		t.Error("root example accepted")
	}
	// Text-node example rejected.
	var txt dom.NodeID
	doc.Walk(func(n dom.NodeID) {
		if doc.Kind(n) == dom.Text {
			txt = n
		}
	})
	if _, err := Induce([]Example{{Doc: doc, Node: txt}}, "p", "page"); err == nil {
		t.Error("text example accepted")
	}
}

func TestInduceInconsistentExamples(t *testing.T) {
	doc := dom.MustParseTerm("r(a(x),b(y))")
	var x, y dom.NodeID
	doc.Walk(func(n dom.NodeID) {
		switch doc.Label(n) {
		case "x":
			x = n
		case "y":
			y = n
		}
	})
	if _, err := Induce([]Example{{Doc: doc, Node: x}, {Doc: doc, Node: y}}, "p", "page"); err == nil {
		t.Error("examples with disjoint labels accepted")
	}
}

func TestCommonSuffix(t *testing.T) {
	got := commonSuffix([][]string{
		{"body", "table", "tr", "td"},
		{"body", "div", "table", "tr", "td"},
		{"table", "tr", "td"},
	})
	if strings.Join(got, ".") != "table.tr.td" {
		t.Errorf("suffix = %v", got)
	}
}
