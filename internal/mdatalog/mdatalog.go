// Package mdatalog implements monadic datalog over unranked ordered
// trees — the theoretical core of the Lixto paper (Sections 2.3–2.5).
//
// It provides:
//
//   - the τ_ur signature over dom.Tree (root, leaf, lastsibling,
//     firstsibling, label_a unary; firstchild, nextsibling, child binary),
//   - validation of monadic programs over that signature,
//   - the Tree-Marking Normal Form (TMNF) rewriting of Theorem 2.7,
//     including elimination of the child relation,
//   - the O(|P|·|dom|) evaluation of Theorem 2.4: TMNF rules are grounded
//     in constant time per (rule, node) pair — exploiting that every
//     binary relation of τ_ur is a partial function in both directions —
//     and the resulting ground Horn program is solved by linear-time unit
//     resolution (Minoux's LTUR, reference [29] of the paper),
//   - an export of trees as extensional databases for the generic
//     datalog engine, used for differential testing and experiment E3.
//
// Programs are written in the syntax of internal/datalog, e.g. the
// Italic program of Example 2.1:
//
//	italic(X) :- label_i(X).
//	italic(X) :- italic(X0), firstchild(X0, X).
//	italic(X) :- italic(X0), nextsibling(X0, X).
package mdatalog

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/datalog"
	"repro/internal/dom"
)

// Unary extensional predicates of τ_ur (plus firstsibling, which the
// paper introduces in Section 4 as a convenience and which is definable).
const (
	PredRoot         = "root"
	PredLeaf         = "leaf"
	PredLastSibling  = "lastsibling"
	PredFirstSibling = "firstsibling"
	PredTextNode     = "textnode"
	PredNode         = "node"
	// LabelPrefix: label_a(x) holds iff x carries label a.
	LabelPrefix = "label_"
)

// Complement predicates. Footnote 5 of the paper observes that the tree
// signature is redundant, making monadic datalog as expressive as its
// semipositive generalization (complements of extensional relations in
// rule bodies); we expose the complements used by the Core XPath → TMNF
// translation of Theorem 4.6 directly as extensional predicates.
const (
	PredElement        = "element"
	PredNonElement     = "nonelement"
	PredNonTextNode    = "nontextnode"
	PredCommentNode    = "commentnode"
	PredNonCommentNode = "noncommentnode"
	// NLabelPrefix: nlabel_a(x) holds iff x does not carry label a.
	NLabelPrefix = "nlabel_"
)

// Binary extensional predicates. Child is not part of τ_ur proper; it is
// eliminated by the TMNF rewriting (Theorem 2.7 allows τ_ur ∪ {child}).
const (
	PredFirstChild  = "firstchild"
	PredNextSibling = "nextsibling"
	PredChild       = "child"
)

// IsExtensionalUnary reports whether pred names a unary relation of the
// (extended) tree signature.
func IsExtensionalUnary(pred string) bool {
	switch pred {
	case PredRoot, PredLeaf, PredLastSibling, PredFirstSibling, PredTextNode,
		PredNode, PredElement, PredNonElement, PredNonTextNode,
		PredCommentNode, PredNonCommentNode:
		return true
	}
	return strings.HasPrefix(pred, LabelPrefix) || strings.HasPrefix(pred, NLabelPrefix)
}

// IsExtensionalBinary reports whether pred names a binary relation of the
// extended tree signature.
func IsExtensionalBinary(pred string) bool {
	switch pred {
	case PredFirstChild, PredNextSibling, PredChild:
		return true
	}
	return false
}

// HoldsUnary evaluates a unary extensional predicate on node n of t.
func HoldsUnary(t *dom.Tree, pred string, n dom.NodeID) bool {
	switch pred {
	case PredRoot:
		return t.IsRoot(n)
	case PredLeaf:
		return t.IsLeaf(n)
	case PredLastSibling:
		return t.IsLastSibling(n)
	case PredFirstSibling:
		return t.IsFirstSibling(n)
	case PredTextNode:
		return t.Kind(n) == dom.Text
	case PredNode:
		return true
	case PredElement:
		return t.Kind(n) == dom.Element
	case PredNonElement:
		return t.Kind(n) != dom.Element
	case PredNonTextNode:
		return t.Kind(n) != dom.Text
	case PredCommentNode:
		return t.Kind(n) == dom.Comment
	case PredNonCommentNode:
		return t.Kind(n) != dom.Comment
	}
	if a, ok := strings.CutPrefix(pred, NLabelPrefix); ok {
		return t.Label(n) != a
	}
	if a, ok := strings.CutPrefix(pred, LabelPrefix); ok {
		return t.Label(n) == a
	}
	return false
}

// CheckMonadic verifies that p is a monadic datalog program over the
// extended tree signature: all intensional predicates unary, extensional
// atoms drawn from the signature with correct arities, and no negation
// (monadic datalog in the paper is positive; complements of the
// extensional relations are definable, making it as expressive as its
// semipositive generalization — footnote 5).
func CheckMonadic(p *datalog.Program) error {
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	for _, r := range p.Rules {
		if len(r.Head.Args) != 1 {
			return fmt.Errorf("mdatalog: rule %s: head must be unary", r)
		}
		for _, a := range r.Body {
			if a.Negated {
				return fmt.Errorf("mdatalog: rule %s: negation is not part of monadic datalog", r)
			}
			switch {
			case idb[a.Pred]:
				if len(a.Args) != 1 {
					return fmt.Errorf("mdatalog: rule %s: intensional atom %s must be unary", r, a)
				}
			case IsExtensionalUnary(a.Pred):
				if len(a.Args) != 1 {
					return fmt.Errorf("mdatalog: rule %s: %s is unary", r, a.Pred)
				}
			case IsExtensionalBinary(a.Pred):
				if len(a.Args) != 2 {
					return fmt.Errorf("mdatalog: rule %s: %s is binary", r, a.Pred)
				}
			default:
				return fmt.Errorf("mdatalog: rule %s: unknown predicate %s", r, a.Pred)
			}
			for _, t := range a.Args {
				if !t.IsVar {
					return fmt.Errorf("mdatalog: rule %s: constants are not node terms", r)
				}
			}
		}
		for _, t := range r.Head.Args {
			if !t.IsVar {
				return fmt.Errorf("mdatalog: rule %s: head constant", r)
			}
		}
	}
	return nil
}

// LabelPred returns the unary predicate name label_a for a tag symbol,
// e.g. LabelPred("td") == "label_td". Labels that would not survive the
// datalog lexer (e.g. "#text") have dedicated predicates (textnode).
func LabelPred(a string) string { return LabelPrefix + a }

// TreeDB exports t as an extensional database for the generic datalog
// engine: node ids are rendered as decimal strings; all unary and binary
// relations of the extended signature are materialized. This realizes
// "trees as finite structures" (Section 2.2) and is the bridge used by
// the differential tests and experiment E3.
func TreeDB(t *dom.Tree) *datalog.DB {
	db := datalog.NewDB()
	labels := map[string]bool{}
	t.Walk(func(n dom.NodeID) { labels[t.Label(n)] = true })
	for i := 0; i < t.Size(); i++ {
		n := dom.NodeID(i)
		id := nodeName(n)
		db.Add(PredNode, id)
		if t.IsRoot(n) {
			db.Add(PredRoot, id)
		}
		if t.IsLeaf(n) {
			db.Add(PredLeaf, id)
		}
		if t.IsLastSibling(n) {
			db.Add(PredLastSibling, id)
		}
		if t.IsFirstSibling(n) {
			db.Add(PredFirstSibling, id)
		}
		switch t.Kind(n) {
		case dom.Text:
			db.Add(PredTextNode, id)
			db.Add(PredNonElement, id)
			db.Add(PredNonCommentNode, id)
		case dom.Comment:
			db.Add(PredCommentNode, id)
			db.Add(PredNonElement, id)
			db.Add(PredNonTextNode, id)
		default:
			db.Add(PredElement, id)
			db.Add(PredNonTextNode, id)
			db.Add(PredNonCommentNode, id)
		}
		db.Add(LabelPred(t.Label(n)), id)
		// Complements are materialized for labels occurring in the tree;
		// programs referring to labels absent from the tree should use
		// the tree engine (whose complements are computed on the fly).
		for l := range labels {
			if l != t.Label(n) {
				db.Add(NLabelPrefix+l, id)
			}
		}
		if c := t.FirstChild(n); c != dom.Nil {
			db.Add(PredFirstChild, id, nodeName(c))
		}
		if s := t.NextSibling(n); s != dom.Nil {
			db.Add(PredNextSibling, id, nodeName(s))
		}
		for c := t.FirstChild(n); c != dom.Nil; c = t.NextSibling(c) {
			db.Add(PredChild, id, nodeName(c))
		}
	}
	return db
}

func nodeName(n dom.NodeID) string { return fmt.Sprintf("%d", n) }

// EvalGeneric runs p on t using the generic semi-naive datalog engine
// over the materialized TreeDB — the baseline of experiment E3. The
// result maps each intensional predicate to the selected nodes in
// document order.
func EvalGeneric(p *datalog.Program, t *dom.Tree) (map[string][]dom.NodeID, error) {
	if err := CheckMonadic(p); err != nil {
		return nil, err
	}
	db, err := datalog.Eval(p, TreeDB(t))
	if err != nil {
		return nil, err
	}
	out := map[string][]dom.NodeID{}
	for _, pred := range p.IDBPredicates() {
		var nodes []dom.NodeID
		for _, s := range db.Unary(pred) {
			var v int
			fmt.Sscanf(s, "%d", &v)
			nodes = append(nodes, dom.NodeID(v))
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		out[pred] = nodes
	}
	return out, nil
}
