package mdatalog

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/datalog"
	"repro/internal/dom"
	"repro/internal/nodeset"
)

// Result maps each exported predicate to the set of selected nodes, in
// ascending NodeID order. Each predicate is one information extraction
// function in the sense of Section 2.1.
type Result map[string][]dom.NodeID

// Eval evaluates a monadic datalog program over the tree in time
// O(|P| · |dom|) (Theorem 2.4): the program is first brought into TMNF
// (Theorem 2.7, linear time), then solved directly over packed bitsets —
// one word vector per predicate — by rule-driven unit propagation.
// Extensional bodies are resolved to characteristic bitsets up front, so
// purely extensional rules apply as word operations (64 nodes per
// instruction); rules with intensional bodies fire from a worklist in
// constant time per derived (predicate, node) atom, which keeps the
// total linear. No ground clause set is ever materialized.
func Eval(p *datalog.Program, t *dom.Tree) (Result, error) {
	tp, err := ToTMNF(p)
	if err != nil {
		return nil, err
	}
	return EvalTMNF(tp, t), nil
}

// MustEval is Eval that panics on error, for tests and examples.
func MustEval(p *datalog.Program, t *dom.Tree) Result {
	r, err := Eval(p, t)
	if err != nil {
		panic(err)
	}
	return r
}

// EvalTMNF evaluates a TMNF program directly.
func EvalTMNF(p *TMNFProgram, t *dom.Tree) Result {
	e := newEvaluator(p, t)
	e.run(p)
	out := Result{}
	for _, pred := range p.Exported {
		pi, ok := e.predIndex[pred]
		if !ok {
			out[pred] = nil
			continue
		}
		out[pred] = e.nodesOf(pi)
	}
	return out
}

// occEntry is one body occurrence of an intensional predicate: when an
// atom of that predicate is derived at node x, the entry fires in O(1).
type occEntry struct {
	kind  RuleKind
	head  int
	rel   BinaryRel // Step: head holds at rel(x)
	mask  []uint64  // And with an extensional co-body: fire iff mask has x
	other int       // And with an intensional co-body: fire iff truth[other] has x (-1 = use mask)
}

// evaluator holds the bitset truth store of one EvalTMNF run: one word
// vector of |dom| bits per intensional predicate, plus the worklist of
// derived atoms.
type evaluator struct {
	t         *dom.Tree
	n         int
	stride    int // words per predicate
	predIndex map[string]int
	truth     []uint64 // predIndex-major, stride words each
	occ       [][]occEntry
	ext       map[string][]uint64
	queue     []atom
}

type atom struct {
	pred int32
	node dom.NodeID
}

func newEvaluator(p *TMNFProgram, t *dom.Tree) *evaluator {
	e := &evaluator{
		t:         t,
		n:         t.Size(),
		stride:    (t.Size() + 63) / 64,
		predIndex: make(map[string]int, len(p.Rules)),
		ext:       map[string][]uint64{},
	}
	// Pre-register heads for deterministic layout.
	for _, r := range p.Rules {
		if _, ok := e.predIndex[r.Head]; !ok {
			e.predIndex[r.Head] = len(e.predIndex)
		}
	}
	e.truth = make([]uint64, len(e.predIndex)*e.stride)
	e.occ = make([][]occEntry, len(e.predIndex))
	return e
}

func (e *evaluator) words(pred int) []uint64 {
	return e.truth[pred*e.stride : (pred+1)*e.stride]
}

// nodesOf returns the members of a predicate in ascending NodeID order.
func (e *evaluator) nodesOf(pred int) []dom.NodeID {
	return nodeset.MembersOf(e.words(pred))
}

// derive records atom (pred, x) and schedules its consequences.
func (e *evaluator) derive(pred int, x dom.NodeID) {
	w := &e.truth[pred*e.stride+int(uint32(x)>>6)]
	bit := uint64(1) << (uint32(x) & 63)
	if *w&bit == 0 {
		*w |= bit
		e.queue = append(e.queue, atom{int32(pred), x})
	}
}

// orInto unions src into a predicate word-parallel, enqueuing only the
// newly set atoms.
func (e *evaluator) orInto(pred int, src []uint64) {
	base := pred * e.stride
	for wi, s := range src {
		diff := s &^ e.truth[base+wi]
		if diff == 0 {
			continue
		}
		e.truth[base+wi] |= diff
		for diff != 0 {
			e.queue = append(e.queue, atom{int32(pred), dom.NodeID(wi<<6 + bits.TrailingZeros64(diff))})
			diff &= diff - 1
		}
	}
}

// run seeds the extensional-only rules word-parallel, wires occurrence
// lists for the intensional bodies, and solves by unit propagation.
func (e *evaluator) run(p *TMNFProgram) {
	e.wire(p.Rules)
	e.propagate()
}

// wire seeds the extensional-only rules and registers occurrence-list
// entries for the intensional bodies of the given rules.
func (e *evaluator) wire(rules []TMNFRule) {
	if e.n == 0 {
		return
	}
	intens := func(pred string) (int, bool) {
		i, ok := e.predIndex[pred]
		return i, ok
	}
	for _, r := range rules {
		hp := e.predIndex[r.Head]
		switch r.Kind {
		case Copy:
			if q, ok := intens(r.P0); ok {
				e.occ[q] = append(e.occ[q], occEntry{kind: Copy, head: hp})
			} else {
				e.orInto(hp, e.extBits(r.P0))
			}
		case Step:
			if q, ok := intens(r.P0); ok {
				e.occ[q] = append(e.occ[q], occEntry{kind: Step, head: hp, rel: r.Rel})
			} else {
				nodeset.ForEachWord(e.extBits(r.P0), func(x dom.NodeID) {
					if y := applyRel(e.t, r.Rel, x); y != dom.Nil {
						e.derive(hp, y)
					}
				})
			}
		case And:
			q0, i0 := intens(r.P0)
			q1, i1 := intens(r.P1)
			switch {
			case !i0 && !i1:
				b0, b1 := e.extBits(r.P0), e.extBits(r.P1)
				tmp := make([]uint64, e.stride)
				for wi := range tmp {
					tmp[wi] = b0[wi] & b1[wi]
				}
				e.orInto(hp, tmp)
			case i0 && !i1:
				e.occ[q0] = append(e.occ[q0], occEntry{kind: And, head: hp, mask: e.extBits(r.P1), other: -1})
			case !i0 && i1:
				e.occ[q1] = append(e.occ[q1], occEntry{kind: And, head: hp, mask: e.extBits(r.P0), other: -1})
			default:
				// Both intensional: either side completing the pair
				// fires the rule (the co-body bit is already set when
				// the later atom is processed). A duplicated body
				// p(x) ← q(x), q(x) needs only one trigger.
				e.occ[q0] = append(e.occ[q0], occEntry{kind: And, head: hp, other: q1})
				if q0 != q1 {
					e.occ[q1] = append(e.occ[q1], occEntry{kind: And, head: hp, other: q0})
				}
			}
		}
	}
}

// propagate drains the worklist: constant time per derived
// (predicate, node) atom.
func (e *evaluator) propagate() {
	for len(e.queue) > 0 {
		a := e.queue[len(e.queue)-1]
		e.queue = e.queue[:len(e.queue)-1]
		for _, oc := range e.occ[a.pred] {
			switch oc.kind {
			case Copy:
				e.derive(oc.head, a.node)
			case Step:
				if y := applyRel(e.t, oc.rel, a.node); y != dom.Nil {
					e.derive(oc.head, y)
				}
			case And:
				x := a.node
				if oc.other >= 0 {
					if e.truth[oc.other*e.stride+int(uint32(x)>>6)]&(1<<(uint32(x)&63)) != 0 {
						e.derive(oc.head, x)
					}
				} else if oc.mask[uint32(x)>>6]&(1<<(uint32(x)&63)) != 0 {
					e.derive(oc.head, x)
				}
			}
		}
	}
}

// extBits resolves a unary extensional predicate to its characteristic
// bitset over the tree, cached per evaluation. Label predicates reuse
// the dom-cached label bitsets (shared, read-only); the structural
// predicates are one O(|dom|) sweep each, computed only when the
// program mentions them. Unknown predicates are empty, matching
// HoldsUnary.
func (e *evaluator) extBits(pred string) []uint64 {
	if w, ok := e.ext[pred]; ok {
		return w
	}
	var w []uint64
	fresh := func() []uint64 { return make([]uint64, e.stride) }
	complemented := func(src []uint64) []uint64 {
		out := fresh()
		for i := range out {
			out[i] = ^src[i]
		}
		nodeset.TrimWords(out, e.n)
		return out
	}
	t := e.t
	switch pred {
	case PredRoot:
		w = fresh()
		if r := t.Root(); r != dom.Nil {
			w[uint32(r)>>6] |= 1 << (uint32(r) & 63)
		}
	case PredLeaf:
		w = fresh()
		for i := 0; i < e.n; i++ {
			if t.IsLeaf(dom.NodeID(i)) {
				w[i>>6] |= 1 << (uint(i) & 63)
			}
		}
	case PredLastSibling:
		w = fresh()
		for i := 0; i < e.n; i++ {
			if t.IsLastSibling(dom.NodeID(i)) {
				w[i>>6] |= 1 << (uint(i) & 63)
			}
		}
	case PredFirstSibling:
		w = fresh()
		for i := 0; i < e.n; i++ {
			if t.IsFirstSibling(dom.NodeID(i)) {
				w[i>>6] |= 1 << (uint(i) & 63)
			}
		}
	case PredTextNode:
		w = t.KindBits(dom.Text)
	case PredNode:
		w = fresh()
		for i := range w {
			w[i] = ^uint64(0)
		}
		nodeset.TrimWords(w, e.n)
	case PredElement:
		w = t.KindBits(dom.Element)
	case PredNonElement:
		w = complemented(t.KindBits(dom.Element))
	case PredNonTextNode:
		w = complemented(t.KindBits(dom.Text))
	case PredCommentNode:
		w = t.KindBits(dom.Comment)
	case PredNonCommentNode:
		w = complemented(t.KindBits(dom.Comment))
	default:
		if a, ok := strings.CutPrefix(pred, NLabelPrefix); ok {
			if id := t.LabelIDFor(a); id != dom.NoLabel {
				w = complemented(t.LabelBits(id))
			} else {
				w = fresh()
				for i := range w {
					w[i] = ^uint64(0)
				}
				nodeset.TrimWords(w, e.n)
			}
		} else if a, ok := strings.CutPrefix(pred, LabelPrefix); ok {
			if id := t.LabelIDFor(a); id != dom.NoLabel {
				w = t.LabelBits(id)
			} else {
				w = fresh()
			}
		} else {
			w = fresh()
		}
	}
	e.ext[pred] = w
	return w
}

// applyRel computes the unique x with Rel(x0, x), or Nil. That this is a
// partial function (in all four directions) is exactly the bidirectional
// functional dependency of τ_ur that Theorem 2.4 exploits.
func applyRel(t *dom.Tree, rel BinaryRel, x0 dom.NodeID) dom.NodeID {
	switch rel {
	case FirstChild:
		return t.FirstChild(x0)
	case NextSibling:
		return t.NextSibling(x0)
	case FirstChildInv:
		if t.IsFirstSibling(x0) {
			return t.Parent(x0)
		}
		return dom.Nil
	case NextSiblingInv:
		return t.PrevSibling(x0)
	}
	return dom.Nil
}

// Pred returns the head predicate name of a TMNF rule; it exists so that
// grounding code can treat rules uniformly.
func (r TMNFRule) Pred() string { return r.Head }

// Query evaluates the program and returns the node set of a single
// designated query predicate — the "unary query" of Section 2.3.
func Query(p *datalog.Program, t *dom.Tree, pred string) ([]dom.NodeID, error) {
	res, err := Eval(p, t)
	if err != nil {
		return nil, err
	}
	nodes, ok := res[pred]
	if !ok {
		return nil, fmt.Errorf("mdatalog: %s is not an intensional predicate of the program", pred)
	}
	return nodes, nil
}

// SortNodes sorts a node slice ascending; helper shared by tests.
func SortNodes(ns []dom.NodeID) {
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
}
