package mdatalog

import (
	"fmt"
	"sort"

	"repro/internal/datalog"
	"repro/internal/dom"
)

// Result maps each exported predicate to the set of selected nodes, in
// ascending NodeID order. Each predicate is one information extraction
// function in the sense of Section 2.1.
type Result map[string][]dom.NodeID

// Eval evaluates a monadic datalog program over the tree in time
// O(|P| · |dom|) (Theorem 2.4): the program is first brought into TMNF
// (Theorem 2.7, linear time), then grounded — constant work per
// (rule, node) pair, since firstchild and nextsibling are partial
// functions in both directions — and the ground Horn program is solved
// by linear-time unit resolution.
func Eval(p *datalog.Program, t *dom.Tree) (Result, error) {
	tp, err := ToTMNF(p)
	if err != nil {
		return nil, err
	}
	return EvalTMNF(tp, t), nil
}

// MustEval is Eval that panics on error, for tests and examples.
func MustEval(p *datalog.Program, t *dom.Tree) Result {
	r, err := Eval(p, t)
	if err != nil {
		panic(err)
	}
	return r
}

// EvalTMNF evaluates a TMNF program directly.
func EvalTMNF(p *TMNFProgram, t *dom.Tree) Result {
	g := ground(p, t)
	g.solve()
	out := Result{}
	n := t.Size()
	for _, pred := range p.Exported {
		pi, ok := g.predIndex[pred]
		if !ok {
			out[pred] = nil
			continue
		}
		var nodes []dom.NodeID
		base := pi * n
		for i := 0; i < n; i++ {
			if g.truth[base+i] {
				nodes = append(nodes, dom.NodeID(i))
			}
		}
		out[pred] = nodes
	}
	return out
}

// grounder holds the ground Horn program: atoms are (predicate, node)
// pairs encoded as pred*|dom|+node.
type grounder struct {
	n         int
	predIndex map[string]int
	truth     []bool
	// clauses: body atom ids and head atom id; unit facts go straight to
	// the queue.
	clauseHead []int32
	clauseBody [][2]int32 // at most 2 body atoms in TMNF
	clauseLen  []int8
	// occ[a] lists clause indices having atom a in their body.
	occ   [][]int32
	queue []int32
}

func ground(p *TMNFProgram, t *dom.Tree) *grounder {
	g := &grounder{n: t.Size(), predIndex: map[string]int{}}
	intens := map[string]bool{}
	for _, r := range p.Rules {
		intens[r.Head] = true
	}
	idx := func(pred string) int {
		i, ok := g.predIndex[pred]
		if !ok {
			i = len(g.predIndex)
			g.predIndex[pred] = i
		}
		return i
	}
	// Pre-register heads for deterministic layout.
	for _, r := range p.Rules {
		idx(r.Head)
	}
	g.truth = make([]bool, len(g.predIndex)*g.n)
	g.occ = make([][]int32, len(g.truth))
	atom := func(pred int, node dom.NodeID) int32 { return int32(pred*g.n + int(node)) }

	addFact := func(a int32) {
		if !g.truth[a] {
			g.truth[a] = true
			g.queue = append(g.queue, a)
		}
	}
	addClause := func(head int32, body ...int32) {
		if len(body) == 0 {
			addFact(head)
			return
		}
		ci := int32(len(g.clauseHead))
		g.clauseHead = append(g.clauseHead, head)
		var b [2]int32
		copy(b[:], body)
		g.clauseBody = append(g.clauseBody, b)
		g.clauseLen = append(g.clauseLen, int8(len(body)))
		for _, a := range body {
			g.occ[a] = append(g.occ[a], ci)
		}
	}

	// resolveBody turns a body predicate applied at node m into either a
	// known truth value (extensional) or an atom id (intensional).
	resolveBody := func(pred string, m dom.NodeID) (int32, bool, bool) {
		if intens[pred] {
			return atom(g.predIndex[pred], m), false, false
		}
		return 0, true, HoldsUnary(t, pred, m)
	}

	for _, r := range p.Rules {
		hp := g.predIndex[r.Head]
		switch r.Kind {
		case Copy:
			for i := 0; i < g.n; i++ {
				m := dom.NodeID(i)
				a, ext, val := resolveBody(r.P0, m)
				h := atom(hp, m)
				if ext {
					if val {
						addFact(h)
					}
					continue
				}
				addClause(h, a)
			}
		case Step:
			for i := 0; i < g.n; i++ {
				x0 := dom.NodeID(i)
				x := applyRel(t, r.Rel, x0)
				if x == dom.Nil {
					continue
				}
				a, ext, val := resolveBody(r.P0, x0)
				h := atom(hp, x)
				if ext {
					if val {
						addFact(h)
					}
					continue
				}
				addClause(h, a)
			}
		case And:
			for i := 0; i < g.n; i++ {
				m := dom.NodeID(i)
				h := atom(hp, m)
				a0, ext0, v0 := resolveBody(r.P0, m)
				a1, ext1, v1 := resolveBody(r.P1, m)
				switch {
				case ext0 && ext1:
					if v0 && v1 {
						addFact(h)
					}
				case ext0:
					if v0 {
						addClause(h, a1)
					}
				case ext1:
					if v1 {
						addClause(h, a0)
					}
				default:
					addClause(h, a0, a1)
				}
			}
		}
	}
	return g
}

// applyRel computes the unique x with Rel(x0, x), or Nil. That this is a
// partial function (in all four directions) is exactly the bidirectional
// functional dependency of τ_ur that Theorem 2.4 exploits.
func applyRel(t *dom.Tree, rel BinaryRel, x0 dom.NodeID) dom.NodeID {
	switch rel {
	case FirstChild:
		return t.FirstChild(x0)
	case NextSibling:
		return t.NextSibling(x0)
	case FirstChildInv:
		if t.IsFirstSibling(x0) {
			return t.Parent(x0)
		}
		return dom.Nil
	case NextSiblingInv:
		return t.PrevSibling(x0)
	}
	return dom.Nil
}

// solve runs LTUR (linear-time unit resolution, [29]): a counter per
// clause of unsatisfied body atoms; when it reaches zero the head is
// derived. Total work is linear in the size of the ground program.
func (g *grounder) solve() {
	remaining := make([]int8, len(g.clauseHead))
	copy(remaining, g.clauseLen)
	// Account for duplicate atoms in a 2-atom body (p(x) ← q(x), q(x)).
	for i, b := range g.clauseBody {
		if g.clauseLen[i] == 2 && b[0] == b[1] {
			remaining[i] = 1
			// Remove the duplicate occurrence to avoid double decrement.
			occ := g.occ[b[0]]
			for j := len(occ) - 1; j >= 0; j-- {
				if occ[j] == int32(i) {
					g.occ[b[0]] = append(occ[:j], occ[j+1:]...)
					break
				}
			}
		}
	}
	for len(g.queue) > 0 {
		a := g.queue[len(g.queue)-1]
		g.queue = g.queue[:len(g.queue)-1]
		for _, ci := range g.occ[a] {
			remaining[ci]--
			if remaining[ci] == 0 {
				h := g.clauseHead[ci]
				if !g.truth[h] {
					g.truth[h] = true
					g.queue = append(g.queue, h)
				}
			}
		}
	}
}

// Pred returns the head predicate name of a TMNF rule; it exists so that
// grounding code can treat rules uniformly.
func (r TMNFRule) Pred() string { return r.Head }

// Query evaluates the program and returns the node set of a single
// designated query predicate — the "unary query" of Section 2.3.
func Query(p *datalog.Program, t *dom.Tree, pred string) ([]dom.NodeID, error) {
	res, err := Eval(p, t)
	if err != nil {
		return nil, err
	}
	nodes, ok := res[pred]
	if !ok {
		return nil, fmt.Errorf("mdatalog: %s is not an intensional predicate of the program", pred)
	}
	return nodes, nil
}

// SortNodes sorts a node slice ascending; helper shared by tests.
func SortNodes(ns []dom.NodeID) {
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
}
