package mdatalog

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dom"
)

// multiComponentProgram builds k independent TMNF rule chains — each
// anchored at a different label, each a self-contained fixpoint — plus
// shared extensional dependencies, so the component partitioner has
// real work to do and the parallel evaluator real concurrency.
func multiComponentProgram(k int) *TMNFProgram {
	labels := []string{"a", "i", "b", "div", "span", "p", "td", "li"}
	p := &TMNFProgram{}
	for c := 0; c < k; c++ {
		lab := labels[c%len(labels)]
		seed := fmt.Sprintf("seed%d", c)
		walk := fmt.Sprintf("walk%d", c)
		out := fmt.Sprintf("out%d", c)
		p.Rules = append(p.Rules,
			TMNFRule{Kind: Copy, Head: seed, P0: LabelPrefix + lab},
			TMNFRule{Kind: Step, Head: walk, P0: seed, Rel: FirstChild},
			TMNFRule{Kind: Step, Head: walk, P0: walk, Rel: NextSibling},
			TMNFRule{Kind: And, Head: out, P0: walk, P1: PredElement},
			TMNFRule{Kind: Step, Head: out, P0: out, Rel: FirstChildInv},
		)
		p.Exported = append(p.Exported, out)
	}
	return p
}

func testTree(size int) *dom.Tree {
	return dom.RandomTree(rand.New(rand.NewSource(7)), size,
		[]string{"a", "i", "b", "div", "span", "p", "td", "li"}, 6)
}

// TestEvalTMNFParallelMatchesSequential is the differential for the
// component-parallel TMNF evaluator: identical Result at every
// concurrency level, on the italic program and a many-component one.
func TestEvalTMNFParallelMatchesSequential(t *testing.T) {
	tr := testTree(4000)
	progs := map[string]*TMNFProgram{
		"components": multiComponentProgram(12),
	}
	if tp, err := ToTMNF(ItalicProgram()); err == nil {
		progs["italic"] = tp
	} else {
		t.Fatal(err)
	}
	for name, tp := range progs {
		want := EvalTMNF(tp, tr)
		for _, conc := range []int{1, 2, 4, 0} {
			got := EvalTMNFParallel(tp, tr, conc)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s conc=%d: parallel result diverges from sequential", name, conc)
			}
		}
	}
}

// TestComponentsWriteDisjointRegions is the torn-merge detector: each
// component, run solo against a fresh truth array in the shared global
// layout, must light bits only inside the word regions of its own head
// predicates; and the union of all solo runs must reproduce the
// sequential evaluator's truth array bit for bit. Together these prove
// the concurrent runs cannot tear each other's merges: no word is ever
// written by two components.
func TestComponentsWriteDisjointRegions(t *testing.T) {
	tp := multiComponentProgram(12)
	tr := testTree(2000)
	tr.Warm()

	seq := newEvaluator(tp, tr)
	seq.run(tp)

	layout := newEvaluator(tp, tr) // fixes the shared predicate layout
	comps := tmnfComponents(tp)
	if len(comps) < 2 {
		t.Fatalf("components = %d, want several", len(comps))
	}
	merged := make([]uint64, len(layout.truth))
	for ci, comp := range comps {
		owns := map[int]bool{}
		rules := make([]TMNFRule, len(comp))
		for i, ri := range comp {
			rules[i] = tp.Rules[ri]
			owns[layout.predIndex[rules[i].Head]] = true
		}
		fresh := newEvaluator(tp, tr)
		ce := componentEvaluator(fresh)
		ce.wire(rules)
		ce.propagate()
		for pred := 0; pred < len(layout.predIndex); pred++ {
			if owns[pred] {
				continue
			}
			for wi, w := range fresh.truth[pred*fresh.stride : (pred+1)*fresh.stride] {
				if w != 0 {
					t.Fatalf("component %d wrote word %d of predicate %d it does not own", ci, wi, pred)
				}
			}
		}
		for i, w := range fresh.truth {
			merged[i] |= w
		}
	}
	for i := range merged {
		if merged[i] != seq.truth[i] {
			t.Fatalf("merged truth diverges from sequential at word %d: %#x != %#x", i, merged[i], seq.truth[i])
		}
	}
}
