package mdatalog

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datalog"
	"repro/internal/dom"
	"repro/internal/htmlparse"
)

func nodesEqual(a, b []dom.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestExample21Italic runs the verbatim program of Example 2.1 on an
// HTML parse tree where the <i> element is a last sibling, in which case
// the program selects exactly the italic subtree (the i node and its
// descendants).
func TestExample21Italic(t *testing.T) {
	tr := htmlparse.Parse(`<html><body><p>plain <b>bold</b> <i>it <b>both</b></i></p></body></html>`)
	got, err := Query(ItalicProgram(), tr, "italic")
	if err != nil {
		t.Fatal(err)
	}
	// Expected: the i element and all four nodes below it (text "it ",
	// b, text "both").
	var want []dom.NodeID
	tr.Walk(func(n dom.NodeID) {
		if tr.Label(n) == "i" {
			want = append(want, n)
			want = append(want, tr.Descendants(n)...)
		}
	})
	SortNodes(want)
	if !nodesEqual(got, want) {
		t.Errorf("italic = %v, want %v (tree %s)", got, want, tr)
	}
}

// TestExample21Overshoot documents a fidelity observation: the verbatim
// three-rule program propagates Italic from the <i> node itself to its
// following siblings (rule 3 with x0 = the i node), so when an <i>
// element has following siblings, their subtrees are selected too. This
// is the program exactly as printed in the paper; the tightened version
// below avoids the overshoot.
func TestExample21Overshoot(t *testing.T) {
	tr := htmlparse.Parse(`<html><body><p><i>it</i><b>after</b></p></body></html>`)
	got, _ := Query(ItalicProgram(), tr, "italic")
	var b dom.NodeID = dom.Nil
	tr.Walk(func(n dom.NodeID) {
		if tr.Label(n) == "b" {
			b = n
		}
	})
	found := false
	for _, n := range got {
		if n == b {
			found = true
		}
	}
	if !found {
		t.Fatal("expected the verbatim program to overshoot onto the following sibling — if this fails, the evaluator diverges from datalog semantics")
	}
	// The tightened program: descend only after entering the subtree.
	tight := datalog.MustParse(`
italic(X) :- label_i(X).
italic(X) :- inself(X).
inself(X) :- italic(X0), firstchild(X0, X).
inself(X) :- inself(X0), firstchild(X0, X).
inself(X) :- inself(X0), nextsibling(X0, X).
`)
	got2, err := Query(tight, tr, "italic")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range got2 {
		if n == b {
			t.Error("tightened program still overshoots")
		}
	}
	if len(got2) != 2 { // the i element and its text child
		t.Errorf("tightened italic = %v", got2)
	}
}

func TestCheckMonadicErrors(t *testing.T) {
	for _, src := range []string{
		`p(X, Y) :- firstchild(X, Y).`,       // binary IDB
		`p(X) :- q(X).`,                      // unknown predicate q
		`p(X) :- firstchild(X).`,             // wrong arity
		`p(X) :- root(X, X).`,                // wrong arity
		`p(X) :- label_a(X), mystery(X, X).`, // unknown binary
	} {
		prog, err := datalog.Parse(src)
		if err != nil {
			continue // parse-level rejection is fine too
		}
		if err := CheckMonadic(prog); err == nil {
			t.Errorf("CheckMonadic(%q) accepted", src)
		}
	}
}

func TestToTMNFShapes(t *testing.T) {
	p := datalog.MustParse(`
q(X) :- label_a(X).
q(X) :- q(X0), child(X0, X), label_b(X).
`)
	tp, err := ToTMNF(p)
	if err != nil {
		t.Fatal(err)
	}
	// Every rule must be one of the three TMNF forms (trivially true by
	// construction, but verify predicates referenced are defined or
	// extensional).
	defined := map[string]bool{}
	for _, r := range tp.Rules {
		defined[r.Head] = true
	}
	for _, r := range tp.Rules {
		for _, pred := range []string{r.P0, r.P1} {
			if pred == "" {
				continue
			}
			if !defined[pred] && !IsExtensionalUnary(pred) {
				t.Errorf("rule %s references undefined %s", r, pred)
			}
		}
	}
	if tp.Size() == 0 {
		t.Fatal("empty TMNF program")
	}
}

func TestToTMNFRejectsCyclicRule(t *testing.T) {
	p := datalog.MustParse(`p(X) :- firstchild(X, Y), nextsibling(X, Y).`)
	if _, err := ToTMNF(p); err == nil {
		t.Fatal("cyclic rule accepted")
	}
}

func TestToTMNFRejectsDisconnectedRule(t *testing.T) {
	// Y,Z component disconnected from head variable X.
	p := &datalog.Program{Rules: []datalog.Rule{{
		Head: datalog.Atom{Pred: "p", Args: []datalog.Term{datalog.Var("X")}},
		Body: []datalog.Atom{
			{Pred: "label_a", Args: []datalog.Term{datalog.Var("X")}},
			{Pred: "firstchild", Args: []datalog.Term{datalog.Var("Y"), datalog.Var("Z")}},
			{Pred: "label_b", Args: []datalog.Term{datalog.Var("Y")}},
		},
	}}}
	if _, err := ToTMNF(p); err == nil {
		t.Fatal("disconnected rule accepted")
	}
}

func TestChildElimination(t *testing.T) {
	// q selects all td nodes that are children of a tr node — uses
	// child in both directions.
	p := datalog.MustParse(`
tr_(X) :- label_tr(X).
q(X) :- tr_(X0), child(X0, X), label_td(X).
hasq(X) :- q(X0), child(X, X0).
`)
	tr := htmlparse.Parse(`<table><tr><td>a</td><td>b</td></tr><tr><th>h</th></tr></table>`)
	res, err := Eval(p, tr)
	if err != nil {
		t.Fatal(err)
	}
	var tds, trWithTD []dom.NodeID
	tr.Walk(func(n dom.NodeID) {
		if tr.Label(n) == "td" {
			tds = append(tds, n)
		}
	})
	tr.Walk(func(n dom.NodeID) {
		if tr.Label(n) == "tr" && len(tr.Children(n)) > 0 && tr.Label(tr.FirstChild(n)) == "td" {
			trWithTD = append(trWithTD, n)
		}
	})
	if !nodesEqual(res["q"], tds) {
		t.Errorf("q = %v, want %v", res["q"], tds)
	}
	if !nodesEqual(res["hasq"], trWithTD) {
		t.Errorf("hasq = %v, want %v", res["hasq"], trWithTD)
	}
}

// TestDifferentialRandomPrograms is the central correctness property of
// this package: on random trees and random tree-shaped monadic programs,
// the O(|P|·|dom|) TMNF engine must select exactly the same nodes as the
// generic semi-naive datalog engine evaluating the same program over the
// materialized structure.
func TestDifferentialRandomPrograms(t *testing.T) {
	f := func(progSeed, treeSeed int64) bool {
		rngP := rand.New(rand.NewSource(progSeed))
		rngT := rand.New(rand.NewSource(treeSeed))
		alphabet := []string{"a", "b", "c"}
		p := RandomProgram(rngP, 2+rngP.Intn(3), 3+rngP.Intn(5), alphabet)
		tr := dom.RandomTree(rngT, 1+rngT.Intn(40), alphabet, 4)
		fast, err := Eval(p, tr)
		if err != nil {
			t.Logf("ToTMNF error: %v\nprogram:\n%s", err, p)
			return false
		}
		slow, err := EvalGeneric(p, tr)
		if err != nil {
			t.Logf("generic error: %v", err)
			return false
		}
		for pred := range fast {
			if !nodesEqual(fast[pred], slow[pred]) {
				t.Logf("disagreement on %s: fast=%v slow=%v\nprogram:\n%s\ntree: %s", pred, fast[pred], slow[pred], p, tr)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestTMNFEquivalenceProperty: ToTMNF preserves semantics — evaluate the
// TMNF program with the generic engine (textual round trip) and compare
// with direct TMNF evaluation.
func TestTMNFPreservesSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alphabet := []string{"a", "b"}
		p := RandomProgram(rng, 2, 4, alphabet)
		tr := dom.RandomTree(rng, 25, alphabet, 3)
		direct, err := EvalGeneric(p, tr)
		if err != nil {
			return false
		}
		tp, err := ToTMNF(p)
		if err != nil {
			return false
		}
		viaTMNF := EvalTMNF(tp, tr)
		for _, pred := range p.IDBPredicates() {
			if !nodesEqual(direct[pred], viaTMNF[pred]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestTMNFSizeLinear verifies the O(|P|) size bound of Theorem 2.7.
func TestTMNFSizeLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, nRules := range []int{5, 10, 20, 40, 80} {
		p := RandomProgram(rng, 4, nRules, []string{"a", "b", "c"})
		tp, err := ToTMNF(p)
		if err != nil {
			t.Fatal(err)
		}
		// Each source atom expands to at most a small constant number of
		// TMNF rules; 12 is a generous bound (the worst case is a child
		// atom: 3 rules of 3 atoms each, plus conjunction chaining).
		if tp.Size() > 12*p.Size() {
			t.Errorf("TMNF size %d exceeds 12x program size %d", tp.Size(), p.Size())
		}
	}
}

func TestQueryUnknownPredicate(t *testing.T) {
	tr := dom.MustParseTerm("a(b)")
	if _, err := Query(ItalicProgram(), tr, "nope"); err == nil {
		t.Fatal("expected error for unknown query predicate")
	}
}

func TestMarkRootAndLeaves(t *testing.T) {
	p := datalog.MustParse(`
mark(X) :- root(X).
mark(X) :- leaf(X), label_b(X).
`)
	tr := dom.MustParseTerm("a(b,c(b),b)")
	got, err := Query(p, tr, "mark")
	if err != nil {
		t.Fatal(err)
	}
	// root(0), leaf b's: nodes 1, 3(b under c), 4.
	want := []dom.NodeID{0, 1, 3, 4}
	if !nodesEqual(got, want) {
		t.Errorf("got %v want %v (tree %s)", got, want, tr)
	}
}

func TestDescendantViaRecursion(t *testing.T) {
	// The standard MSO-style descendant marking: all descendants of
	// table nodes.
	p := datalog.MustParse(`
undertable(X) :- label_table(X0), child(X0, X).
undertable(X) :- undertable(X0), child(X0, X).
`)
	tr := htmlparse.Parse(`<body><table><tr><td><p>deep</p></td></tr></table><p>out</p></body>`)
	got, err := Query(p, tr, "undertable")
	if err != nil {
		t.Fatal(err)
	}
	var want []dom.NodeID
	tr.Walk(func(n dom.NodeID) {
		if tr.Label(n) == "table" {
			want = append(want, tr.Descendants(n)...)
		}
	})
	SortNodes(want)
	if !nodesEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestTreeDBFacts(t *testing.T) {
	tr := dom.MustParseTerm("a(b,c)")
	db := TreeDB(tr)
	if !db.Has("root", "0") || !db.Has("label_a", "0") {
		t.Error("root facts missing")
	}
	if !db.Has("firstchild", "0", "1") || !db.Has("nextsibling", "1", "2") {
		t.Error("binary facts missing")
	}
	if !db.Has("child", "0", "2") || !db.Has("lastsibling", "2") || !db.Has("firstsibling", "1") {
		t.Error("derived facts missing")
	}
}

func BenchmarkE2_MonadicDatalogTreeSize(b *testing.B) {
	// Theorem 2.4: runtime linear in |dom| at fixed |P|.
	p := ItalicProgram()
	for _, size := range []int{1000, 2000, 4000, 8000, 16000} {
		tr := dom.RandomTree(rand.New(rand.NewSource(9)), size, []string{"a", "b", "i"}, 6)
		b.Run(benchName("dom", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Eval(p, tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE2_MonadicDatalogProgSize(b *testing.B) {
	// Theorem 2.4: runtime linear in |P| at fixed |dom|.
	tr := dom.RandomTree(rand.New(rand.NewSource(9)), 4000, []string{"a", "b", "c"}, 6)
	for _, nRules := range []int{4, 8, 16, 32, 64} {
		p := RandomProgram(rand.New(rand.NewSource(1)), 4, nRules, []string{"a", "b", "c"})
		b.Run(benchName("rules", nRules), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Eval(p, tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE3_GenericVsTreeEngine(b *testing.B) {
	// Proposition 2.3 vs Theorem 2.4: the generic engine is polynomial
	// but super-linear; the tree engine is linear.
	p := ItalicProgram()
	for _, size := range []int{500, 1000, 2000, 4000} {
		tr := dom.RandomTree(rand.New(rand.NewSource(3)), size, []string{"a", "i"}, 5)
		b.Run(benchName("tree-engine", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Eval(p, tr); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(benchName("generic-engine", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := EvalGeneric(p, tr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE4_TMNFTranslation(b *testing.B) {
	// Theorem 2.7: translation time linear in |P|.
	for _, nRules := range []int{10, 20, 40, 80, 160} {
		p := RandomProgram(rand.New(rand.NewSource(5)), 6, nRules, []string{"a", "b", "c"})
		b.Run(benchName("rules", nRules), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ToTMNF(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(prefix string, n int) string {
	return prefix + "-" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestFirstLastSiblingPredicates(t *testing.T) {
	p := datalog.MustParse(`
firsts(X) :- firstsibling(X), label_td(X).
lasts(X) :- lastsibling(X), label_td(X).
`)
	tr := dom.MustParseTerm("tr(td,td,td)")
	res, err := Eval(p, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res["firsts"]) != 1 || res["firsts"][0] != 1 {
		t.Errorf("firsts = %v", res["firsts"])
	}
	if len(res["lasts"]) != 1 || res["lasts"][0] != 3 {
		t.Errorf("lasts = %v", res["lasts"])
	}
}

func TestDeepChainEvaluation(t *testing.T) {
	// Recursion down a 100k chain must be iterative end to end.
	p := datalog.MustParse(`
down(X) :- root(X).
down(X) :- down(X0), firstchild(X0, X).
`)
	tr := dom.Chain(100000, "a")
	got, err := Query(p, tr, "down")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100000 {
		t.Fatalf("marked %d of 100000", len(got))
	}
}

func TestComplementPredicates(t *testing.T) {
	p := datalog.MustParse(`
notA(X) :- nlabel_a(X).
elems(X) :- element(X).
`)
	tr := dom.MustParseTerm(`r(a,b,"t")`)
	res, err := Eval(p, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res["notA"]) != 3 { // r, b, text
		t.Errorf("notA = %v", res["notA"])
	}
	if len(res["elems"]) != 3 { // r, a, b
		t.Errorf("elems = %v", res["elems"])
	}
	// Differential check with the generic engine over TreeDB.
	slow, err := EvalGeneric(p, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !nodesEqual(res["notA"], slow["notA"]) || !nodesEqual(res["elems"], slow["elems"]) {
		t.Errorf("engines disagree: %v vs %v", res, slow)
	}
}
