package mdatalog

import (
	"fmt"

	"repro/internal/datalog"
)

// BinaryRel enumerates the binary relations B allowed in TMNF rules:
// R or R⁻¹ for R ∈ {firstchild, nextsibling} (Definition 2.6).
type BinaryRel int

const (
	// FirstChild is firstchild(x0, x): x is the first child of x0.
	FirstChild BinaryRel = iota
	// NextSibling is nextsibling(x0, x): x immediately follows x0.
	NextSibling
	// FirstChildInv is firstchild⁻¹(x0, x): x0 is the first child of x.
	FirstChildInv
	// NextSiblingInv is nextsibling⁻¹(x0, x): x0 immediately follows x.
	NextSiblingInv
)

func (b BinaryRel) String() string {
	switch b {
	case FirstChild:
		return "firstchild"
	case NextSibling:
		return "nextsibling"
	case FirstChildInv:
		return "firstchild^-1"
	case NextSiblingInv:
		return "nextsibling^-1"
	}
	return "?"
}

// Inverse returns the converse relation.
func (b BinaryRel) Inverse() BinaryRel {
	switch b {
	case FirstChild:
		return FirstChildInv
	case NextSibling:
		return NextSiblingInv
	case FirstChildInv:
		return FirstChild
	case NextSiblingInv:
		return NextSibling
	}
	panic("unreachable")
}

// RuleKind enumerates the three rule shapes of TMNF (Definition 2.6).
type RuleKind int

const (
	// Copy is form (1): p(x) ← p0(x).
	Copy RuleKind = iota
	// Step is form (2): p(x) ← p0(x0), B(x0, x).
	Step
	// And is form (3): p(x) ← p0(x), p1(x).
	And
)

// TMNFRule is one rule in Tree-Marking Normal Form. P0 and P1 may name
// intensional predicates or unary predicates of τ_ur.
type TMNFRule struct {
	Kind RuleKind
	Head string
	P0   string
	P1   string    // only for Kind == And
	Rel  BinaryRel // only for Kind == Step
}

func (r TMNFRule) String() string {
	switch r.Kind {
	case Copy:
		return fmt.Sprintf("%s(x) <- %s(x).", r.Head, r.P0)
	case Step:
		return fmt.Sprintf("%s(x) <- %s(x0), %s(x0,x).", r.Head, r.P0, r.Rel)
	case And:
		return fmt.Sprintf("%s(x) <- %s(x), %s(x).", r.Head, r.P0, r.P1)
	}
	return "?"
}

// TMNFProgram is a monadic datalog program in TMNF together with the set
// of predicates that constitute its information extraction functions
// (the non-auxiliary predicates, Section 2.1).
type TMNFProgram struct {
	Rules []TMNFRule
	// Exported lists the predicates that were intensional in the source
	// program; helper predicates introduced by the rewriting are not
	// listed.
	Exported []string
}

// Size returns |P| measured in atoms, as in the complexity statements.
func (p *TMNFProgram) Size() int {
	n := 0
	for _, r := range p.Rules {
		switch r.Kind {
		case Copy:
			n += 2
		default:
			n += 3
		}
	}
	return n
}

func (p *TMNFProgram) String() string {
	var b []byte
	for _, r := range p.Rules {
		b = append(b, r.String()...)
		b = append(b, '\n')
	}
	return string(b)
}

// nodePred is the intensional predicate holding for every node; the
// rewriting synthesizes its three defining rules on demand (it is
// definable over τ_ur, so TMNF-ness is preserved — see footnote 5 and
// the proof sketch of Theorem 2.7).
const nodePred = "__node"

// converter carries the fresh-name counter of one ToTMNF run.
type converter struct {
	prog      *TMNFProgram
	fresh     int
	nodeAdded bool
}

func (c *converter) newPred() string {
	c.fresh++
	return fmt.Sprintf("__h%d", c.fresh)
}

func (c *converter) emit(r TMNFRule) { c.prog.Rules = append(c.prog.Rules, r) }

func (c *converter) ensureNode() string {
	if !c.nodeAdded {
		c.nodeAdded = true
		c.emit(TMNFRule{Kind: Copy, Head: nodePred, P0: PredRoot})
		c.emit(TMNFRule{Kind: Step, Head: nodePred, P0: nodePred, Rel: FirstChild})
		c.emit(TMNFRule{Kind: Step, Head: nodePred, P0: nodePred, Rel: NextSibling})
	}
	return nodePred
}

// ToTMNF rewrites a monadic datalog program over τ_ur ∪ {child} into an
// equivalent TMNF program over τ_ur (Theorem 2.7). The rewriting runs in
// time O(|P|) and produces a program of size O(|P|).
//
// The construction requires each rule body's binary atoms to form an
// acyclic connected graph over the rule's variables (a "tree-shaped"
// rule). Every program produced by this repository's front ends (the
// visual builder, the Elog core compiler, the XPath translator, the
// automaton compiler) is tree-shaped; genuinely cyclic rules fall under
// the conjunctive-query dichotomy of Section 4 and are handled by
// internal/cq instead.
func ToTMNF(p *datalog.Program) (*TMNFProgram, error) {
	if err := CheckMonadic(p); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &converter{prog: &TMNFProgram{Exported: p.IDBPredicates()}}
	for _, r := range p.Rules {
		if err := c.convertRule(r); err != nil {
			return nil, err
		}
	}
	return c.prog, nil
}

type varEdge struct {
	pred string // firstchild | nextsibling | child
	from string // atom's first argument
	to   string // atom's second argument
}

func (c *converter) convertRule(r datalog.Rule) error {
	headVar := r.Head.Args[0].Name
	unary := map[string][]string{} // var -> unary predicate names
	var edges []varEdge
	vars := map[string]bool{headVar: true}
	for _, a := range r.Body {
		for _, t := range a.Args {
			vars[t.Name] = true
		}
		switch len(a.Args) {
		case 1:
			unary[a.Args[0].Name] = append(unary[a.Args[0].Name], a.Pred)
		case 2:
			edges = append(edges, varEdge{pred: a.Pred, from: a.Args[0].Name, to: a.Args[1].Name})
		}
	}
	// Connectivity and acyclicity check: |edges| == |vars|-1 and all
	// vars reachable from headVar.
	if len(edges) != len(vars)-1 {
		return fmt.Errorf("mdatalog: rule %s: body binary atoms must form a tree over the variables (got %d edges, %d variables)", r, len(edges), len(vars))
	}
	adj := map[string][]int{}
	for i, e := range edges {
		adj[e.from] = append(adj[e.from], i)
		adj[e.to] = append(adj[e.to], i)
	}
	seen := map[string]bool{headVar: true}
	usedEdge := make([]bool, len(edges))
	// children[v] lists (edge index, child var) pairs in the var tree
	// rooted at headVar.
	children := map[string][][2]interface{}{}
	stack := []string{headVar}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ei := range adj[v] {
			if usedEdge[ei] {
				continue
			}
			e := edges[ei]
			w := e.to
			if w == v {
				w = e.from
			}
			if seen[w] {
				return fmt.Errorf("mdatalog: rule %s: cyclic binary atoms are not tree-shaped", r)
			}
			usedEdge[ei] = true
			seen[w] = true
			children[v] = append(children[v], [2]interface{}{ei, w})
			stack = append(stack, w)
		}
	}
	if len(seen) != len(vars) {
		return fmt.Errorf("mdatalog: rule %s: body is disconnected from the head variable", r)
	}

	// Post-order construction of Q_v for each variable.
	var build func(v string) (string, error)
	build = func(v string) (string, error) {
		var conjuncts []string
		conjuncts = append(conjuncts, unary[v]...)
		for _, pair := range children[v] {
			ei := pair[0].(int)
			w := pair[1].(string)
			qw, err := build(w)
			if err != nil {
				return "", err
			}
			s, err := c.transfer(edges[ei], v, w, qw)
			if err != nil {
				return "", err
			}
			conjuncts = append(conjuncts, s)
		}
		if len(conjuncts) == 0 {
			return c.ensureNode(), nil
		}
		if len(conjuncts) == 1 {
			return conjuncts[0], nil
		}
		// Chain of type-(3) conjunctions.
		acc := conjuncts[0]
		for i := 1; i < len(conjuncts); i++ {
			h := c.newPred()
			c.emit(TMNFRule{Kind: And, Head: h, P0: acc, P1: conjuncts[i]})
			acc = h
		}
		return acc, nil
	}
	q, err := build(headVar)
	if err != nil {
		return err
	}
	c.emit(TMNFRule{Kind: Copy, Head: r.Head.Pred, P0: q})
	return nil
}

// transfer emits TMNF rules computing the predicate S with
//
//	S(v) ⇔ ∃w  B±(v, w) ∧ Q_w(w)
//
// where the body atom is edge.pred(edge.from, edge.to), v is the parent
// variable in the var tree and w its child. It returns the name of S.
func (c *converter) transfer(e varEdge, v, w, qw string) (string, error) {
	s := c.newPred()
	switch {
	case e.pred == PredFirstChild && e.from == v:
		// firstchild(v, w): v is determined from w by the inverse.
		c.emit(TMNFRule{Kind: Step, Head: s, P0: qw, Rel: FirstChildInv})
	case e.pred == PredFirstChild && e.from == w:
		// firstchild(w, v): v is the first child of w.
		c.emit(TMNFRule{Kind: Step, Head: s, P0: qw, Rel: FirstChild})
	case e.pred == PredNextSibling && e.from == v:
		c.emit(TMNFRule{Kind: Step, Head: s, P0: qw, Rel: NextSiblingInv})
	case e.pred == PredNextSibling && e.from == w:
		c.emit(TMNFRule{Kind: Step, Head: s, P0: qw, Rel: NextSibling})
	case e.pred == PredChild && e.from == v:
		// child(v, w): S(v) ⇔ some child of v satisfies Q_w. Mark every
		// node that has a satisfying sibling at or to its right, then
		// step from the first child to the parent.
		m := c.newPred()
		c.emit(TMNFRule{Kind: Copy, Head: m, P0: qw})
		c.emit(TMNFRule{Kind: Step, Head: m, P0: m, Rel: NextSiblingInv})
		c.emit(TMNFRule{Kind: Step, Head: s, P0: m, Rel: FirstChildInv})
	case e.pred == PredChild && e.from == w:
		// child(w, v): S(v) ⇔ the parent of v satisfies Q_w. Mark the
		// first child of each satisfying node, then sweep right.
		c.emit(TMNFRule{Kind: Step, Head: s, P0: qw, Rel: FirstChild})
		c.emit(TMNFRule{Kind: Step, Head: s, P0: s, Rel: NextSibling})
	default:
		return "", fmt.Errorf("mdatalog: unsupported binary predicate %s", e.pred)
	}
	return s, nil
}

// ParseTMNF converts a textual monadic datalog program directly to TMNF;
// convenience for tests and tools.
func ParseTMNF(src string) (*TMNFProgram, error) {
	p, err := datalog.Parse(src)
	if err != nil {
		return nil, err
	}
	return ToTMNF(p)
}
