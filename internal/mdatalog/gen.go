package mdatalog

import (
	"fmt"
	"math/rand"

	"repro/internal/datalog"
)

// RandomProgram generates a pseudo-random monadic datalog program over
// τ_ur ∪ {child} with nPreds intensional predicates and nRules
// tree-shaped rules, over the given label alphabet. It is used by the
// differential property tests (mdatalog vs the generic engine must agree)
// and by the scaling benchmarks of experiments E2 and E3.
//
// Every intensional predicate is guaranteed to have at least one rule, so
// generated programs always pass CheckMonadic.
func RandomProgram(rng *rand.Rand, nPreds, nRules int, alphabet []string) *datalog.Program {
	if nPreds < 1 {
		nPreds = 1
	}
	if nRules < nPreds {
		nRules = nPreds
	}
	preds := make([]string, nPreds)
	for i := range preds {
		preds[i] = fmt.Sprintf("p%d", i)
	}
	unaryExt := []string{PredRoot, PredLeaf, PredLastSibling, PredFirstSibling}
	for _, a := range alphabet {
		unaryExt = append(unaryExt, LabelPred(a))
	}
	binExt := []string{PredFirstChild, PredNextSibling, PredChild}

	prog := &datalog.Program{}
	for i := 0; i < nRules; i++ {
		// Rule i < nPreds defines pred i from extensional atoms only, so
		// every predicate is defined and the base case is extensional.
		head := preds[rng.Intn(nPreds)]
		baseOnly := false
		if i < nPreds {
			head = preds[i]
			baseOnly = true
		}
		nVars := 1 + rng.Intn(3)
		vars := make([]string, nVars)
		for v := range vars {
			vars[v] = fmt.Sprintf("X%d", v)
		}
		var body []datalog.Atom
		// Connect variables into a random tree via binary atoms.
		for v := 1; v < nVars; v++ {
			other := vars[rng.Intn(v)]
			pred := binExt[rng.Intn(len(binExt))]
			if rng.Intn(2) == 0 {
				body = append(body, datalog.Atom{Pred: pred, Args: []datalog.Term{datalog.Var(other), datalog.Var(vars[v])}})
			} else {
				body = append(body, datalog.Atom{Pred: pred, Args: []datalog.Term{datalog.Var(vars[v]), datalog.Var(other)}})
			}
		}
		// Sprinkle unary atoms; guarantee at least one so that rules are
		// not unconditionally true for all nodes (keeps results sparse).
		nUnary := 1 + rng.Intn(3)
		for u := 0; u < nUnary; u++ {
			v := vars[rng.Intn(nVars)]
			var pred string
			if baseOnly || rng.Intn(3) > 0 {
				pred = unaryExt[rng.Intn(len(unaryExt))]
			} else {
				pred = preds[rng.Intn(nPreds)]
			}
			body = append(body, datalog.Atom{Pred: pred, Args: []datalog.Term{datalog.Var(v)}})
		}
		prog.Rules = append(prog.Rules, datalog.Rule{
			Head: datalog.Atom{Pred: head, Args: []datalog.Term{datalog.Var(vars[rng.Intn(nVars)])}},
			Body: body,
		})
	}
	return prog
}

// ItalicProgram returns the program of Example 2.1, which selects all
// nodes rendered in italics (those with an ancestor-or-self labeled "i").
func ItalicProgram() *datalog.Program {
	return datalog.MustParse(`
italic(X) :- label_i(X).
italic(X) :- italic(X0), firstchild(X0, X).
italic(X) :- italic(X0), nextsibling(X0, X).
`)
}
