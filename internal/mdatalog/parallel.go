package mdatalog

import (
	"runtime"
	"sync"

	"repro/internal/datalog"
	"repro/internal/dom"
	"repro/internal/strata"
)

// EvalParallel is Eval with concurrent evaluation of independent rule
// components (see EvalTMNFParallel). conc <= 0 means GOMAXPROCS.
func EvalParallel(p *datalog.Program, t *dom.Tree, conc int) (Result, error) {
	tp, err := ToTMNF(p)
	if err != nil {
		return nil, err
	}
	return EvalTMNFParallel(tp, t, conc), nil
}

// EvalTMNFParallel evaluates a TMNF program with the weakly connected
// components of its rule graph solved concurrently. Two rules are
// dependent only if they share an intensional predicate (head-to-head
// or head-to-body); components linked merely by extensional predicates
// (labels, structural facts) never exchange derived atoms, so each can
// run its own unit-propagation worklist.
//
// The truth store keeps the exact layout of the sequential evaluator —
// one stride-aligned word region per predicate, predicates indexed in
// first-head order — and every component writes only the regions of its
// own predicates, which are disjoint word ranges. Combined with the
// confluence of monotone datalog (a unique least model regardless of
// derivation order), the resulting bits — and hence the Result — are
// identical to EvalTMNF's at any concurrency level.
func EvalTMNFParallel(p *TMNFProgram, t *dom.Tree, conc int) Result {
	if conc <= 0 {
		conc = runtime.GOMAXPROCS(0)
	}
	comps := tmnfComponents(p)
	if conc == 1 || len(comps) < 2 || t.Size() == 0 {
		return EvalTMNF(p, t)
	}
	// Shared global layout: predicate indexes and the one truth array.
	g := newEvaluator(p, t)
	// Build the tree's lazily cached structures (label/kind bitsets,
	// pre/post index) before any worker reads them: the read accessors
	// are lock-free and must not race with the first build.
	t.Warm()
	var wg sync.WaitGroup
	sem := make(chan struct{}, conc)
	for _, comp := range comps {
		rules := make([]TMNFRule, len(comp))
		for i, ri := range comp {
			rules[i] = p.Rules[ri]
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(rules []TMNFRule) {
			defer wg.Done()
			defer func() { <-sem }()
			ce := componentEvaluator(g)
			ce.wire(rules)
			ce.propagate()
		}(rules)
	}
	wg.Wait()
	out := Result{}
	for _, pred := range p.Exported {
		pi, ok := g.predIndex[pred]
		if !ok {
			out[pred] = nil
			continue
		}
		out[pred] = g.nodesOf(pi)
	}
	return out
}

// componentEvaluator returns an evaluator for one component: it shares
// the global predicate layout and truth array (writing only its own
// predicates' word regions) but owns its occurrence lists, worklist,
// and extensional-bitset cache.
func componentEvaluator(g *evaluator) *evaluator {
	return &evaluator{
		t:         g.t,
		n:         g.n,
		stride:    g.stride,
		predIndex: g.predIndex,
		truth:     g.truth,
		occ:       make([][]occEntry, len(g.predIndex)),
		ext:       map[string][]uint64{},
	}
}

// tmnfComponents partitions the program's rules into weakly connected
// components over shared intensional predicates.
func tmnfComponents(p *TMNFProgram) [][]int {
	sr := make([]strata.Rule, len(p.Rules))
	for i, r := range p.Rules {
		sr[i] = strata.Rule{Head: r.Head, Deps: []strata.Dep{{Pred: r.P0}}}
		if r.Kind == And {
			sr[i].Deps = append(sr[i].Deps, strata.Dep{Pred: r.P1})
		}
	}
	return strata.Partition(sr)
}
