package server

import (
	"sync"
	"time"
)

// pipeState is one scheduled pipeline plus its run-time counters. Ticks
// are executed by the sharded scheduler's worker pool (see sched.go),
// which guarantees a pipeline never ticks concurrently with itself;
// HTTP handlers read the counters under the mutex.
type pipeState struct {
	p    Pipeline
	name string

	// dynamic pipelines were registered through the /v1 API at runtime
	// and may be deregistered again; onDemand ones never tick on a
	// schedule (extraction is driven by POST .../extract only).
	dynamic bool
	// skipFirst suppresses the immediate first tick when the pipeline
	// is scheduled (the registration path already ticked synchronously).
	skipFirst bool
	// registering is true while RegisterDynamic's synchronous first
	// tick is in flight; SetInterval must not schedule the pipeline
	// until it completes (a scheduled tick would run concurrently with
	// the registration tick). Guarded by the server mutex.
	registering bool
	// entry is the pipeline's slot in the scheduler's deadline heap
	// (nil before Run and for on-demand pipelines); guarded by the
	// server mutex.
	entry *schedEntry

	mu          sync.Mutex
	interval    time.Duration
	onDemand    bool
	ticks       uint64
	errs        uint64
	lastErr     string
	lastTick    time.Time
	lastLatency time.Duration

	// deliver is the pipeline's delivery plane (delivery.go): the
	// published encode-once snapshot, the conditional-GET counters, and
	// the SSE watch hub. Read handlers reach it through the lock-free
	// registry (Server.readPipe), never through s.mu.
	deliver delivery

	// hooks is the pipeline's outbound webhook registry (webhook.go);
	// wired to the delivery plane by Server.initPipe so publishes nudge
	// the dispatchers.
	hooks hookSet
}

func (ps *pipeState) tickOnce() {
	start := time.Now()
	err := ps.p.Tick()
	elapsed := time.Since(start)
	ps.mu.Lock()
	ps.ticks++
	ps.lastTick = time.Now()
	ps.lastLatency = elapsed
	if err != nil {
		ps.errs++
		ps.lastErr = err.Error()
	}
	ps.mu.Unlock()
	// Tick-commit publish: encode the new result once and fan it out to
	// watchers now, rather than lazily on the first read.
	ps.deliver.snapshot(ps.p.Output())
}

// flags returns the mutable registration flags consistently.
func (ps *pipeState) flags() (dynamic, onDemand bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.dynamic, ps.onDemand
}

func (ps *pipeState) status(name string) PipelineStatus {
	out := ps.p.Output()
	ps.mu.Lock()
	defer ps.mu.Unlock()
	st := PipelineStatus{
		Name:          name,
		IntervalMS:    ps.interval.Milliseconds(),
		Ticks:         ps.ticks,
		Errors:        ps.errs,
		LastError:     ps.lastErr,
		LastLatencyMS: float64(ps.lastLatency.Microseconds()) / 1000,
		Delivered:     out.Len(),
		Retained:      out.Retained(),
	}
	if !ps.lastTick.IsZero() {
		st.LastTick = ps.lastTick.UTC().Format(time.RFC3339Nano)
	}
	if es, ok := ps.p.(ExtractionStatser); ok {
		stats := es.ExtractionStats()
		// The splice encoder lives with the delivery plane, not the
		// wrapper source; merge its counter into the extraction block so
		// /statusz and GET /v1/wrappers show the whole incremental tick.
		stats.EncodeSplicedBytes = ps.deliver.splicedBytes()
		st.Extraction = &stats
	}
	return st
}
