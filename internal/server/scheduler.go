package server

import (
	"context"
	"sync"
	"time"

	"repro/internal/xmlenc"
)

// pipeState is one scheduled pipeline plus its run-time counters. The
// scheduler goroutine is the only writer; HTTP handlers read the
// counters under the mutex.
type pipeState struct {
	p        Pipeline
	interval time.Duration

	// dynamic pipelines were registered through the /v1 API at runtime
	// and may be deregistered again; onDemand ones never tick on a
	// schedule (extraction is driven by POST .../extract only).
	dynamic  bool
	onDemand bool
	// skipFirst suppresses the immediate first tick of the scheduler
	// goroutine (the registration path already ticked synchronously).
	skipFirst bool
	// running/cancel/done manage the scheduler goroutine lifecycle;
	// guarded by the server mutex (running) and written once (cancel,
	// done) before the goroutine starts.
	running bool
	cancel  context.CancelFunc
	done    chan struct{}

	mu          sync.Mutex
	ticks       uint64
	errs        uint64
	lastErr     string
	lastTick    time.Time
	lastLatency time.Duration

	// Rendered-response cache for GET /{name}: the latest document is
	// the same *xmlenc.Node until the next delivery, so repeated
	// requests on an unchanged pipeline reuse the encoded bytes.
	renderMu   sync.Mutex
	renderDoc  *xmlenc.Node
	renderXML  []byte
	renderJSON []byte
}

// render returns the encoded form of doc, reusing the cached bytes
// while the pipeline's latest document is unchanged.
func (ps *pipeState) render(doc *xmlenc.Node, asJSON bool) ([]byte, error) {
	ps.renderMu.Lock()
	defer ps.renderMu.Unlock()
	if ps.renderDoc != doc {
		ps.renderDoc, ps.renderXML, ps.renderJSON = doc, nil, nil
	}
	if asJSON {
		if ps.renderJSON == nil {
			data, err := xmlenc.MarshalJSONIndent(doc)
			if err != nil {
				return nil, err
			}
			ps.renderJSON = data
		}
		return ps.renderJSON, nil
	}
	if ps.renderXML == nil {
		ps.renderXML = []byte(xmlenc.MarshalIndent(doc))
	}
	return ps.renderXML, nil
}

// run ticks the pipeline until ctx is cancelled. The first tick fires
// immediately so the endpoints have data as soon as possible (unless
// the registration path already ran it synchronously); after that a
// time.Ticker drives the cadence, which (unlike a sleep loop) does not
// drift by the tick's own duration. A tick that is in flight when ctx
// is cancelled always completes and is counted — cancellation is only
// observed between ticks.
func (ps *pipeState) run(ctx context.Context) {
	if !ps.skipFirst {
		ps.tickOnce()
	}
	t := time.NewTicker(ps.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			ps.tickOnce()
		}
	}
}

func (ps *pipeState) tickOnce() {
	start := time.Now()
	err := ps.p.Tick()
	elapsed := time.Since(start)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.ticks++
	ps.lastTick = time.Now()
	ps.lastLatency = elapsed
	if err != nil {
		ps.errs++
		ps.lastErr = err.Error()
	}
}

func (ps *pipeState) status(name string) PipelineStatus {
	out := ps.p.Output()
	ps.mu.Lock()
	defer ps.mu.Unlock()
	st := PipelineStatus{
		Name:          name,
		IntervalMS:    ps.interval.Milliseconds(),
		Ticks:         ps.ticks,
		Errors:        ps.errs,
		LastError:     ps.lastErr,
		LastLatencyMS: float64(ps.lastLatency.Microseconds()) / 1000,
		Delivered:     out.Len(),
		Retained:      out.Retained(),
	}
	if !ps.lastTick.IsZero() {
		st.LastTick = ps.lastTick.UTC().Format(time.RFC3339Nano)
	}
	if es, ok := ps.p.(ExtractionStatser); ok {
		stats := es.ExtractionStats()
		st.Extraction = &stats
	}
	return st
}
