package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fetchcache"
	"repro/internal/transform"
	"repro/internal/web"
	"repro/pkg/lixto"
)

// runServer starts s.Run on a loopback port and returns a stop
// function that cancels it and waits for a clean return.
func runServer(t *testing.T, s *Server) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	select {
	case <-s.Ready():
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	return func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("Run returned %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("Run did not return after cancel")
		}
	}
}

// TestSchedulerGoroutineCountIsFlat pins the tentpole invariant: the
// scheduler runs O(shards + workers) goroutines regardless of how many
// pipelines are registered. A 1000-pipeline server may use no more
// goroutines than a 10-pipeline one (plus a small slack for runtime
// noise) — under the old one-ticker-goroutine-per-pipeline design the
// difference was ~990.
func TestSchedulerGoroutineCountIsFlat(t *testing.T) {
	measure := func(n int) int {
		s := New(Config{Addr: "127.0.0.1:0"})
		for i := 0; i < n; i++ {
			if err := s.Register(newFakePipe(fmt.Sprintf("p%d", i), 0), time.Hour); err != nil {
				t.Fatal(err)
			}
		}
		stop := runServer(t, s)
		defer stop()
		time.Sleep(50 * time.Millisecond) // let first ticks drain
		return runtime.NumGoroutine()
	}
	small := measure(10)
	big := measure(1000)
	if slack := 15; big > small+slack {
		t.Fatalf("goroutines grew with pipeline count: %d @10 pipes vs %d @1000 pipes", small, big)
	}
}

// overlapPipe fails the test if two of its ticks ever run
// concurrently.
type overlapPipe struct {
	*fakePipe
	inFlight atomic.Int32
	overlaps atomic.Int32
}

func (p *overlapPipe) Tick() error {
	if p.inFlight.Add(1) > 1 {
		p.overlaps.Add(1)
	}
	defer p.inFlight.Add(-1)
	return p.fakePipe.Tick()
}

// TestSchedulerOverlapProtection runs a pipeline whose tick takes much
// longer than its interval: deadlines that fire mid-tick must be
// counted late and skipped, never dispatched concurrently.
func TestSchedulerOverlapProtection(t *testing.T) {
	p := &overlapPipe{fakePipe: newFakePipe("slow", 30*time.Millisecond)}
	s := New(Config{Addr: "127.0.0.1:0"})
	if err := s.Register(p, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	stop := runServer(t, s)
	time.Sleep(200 * time.Millisecond)
	stop()
	if n := p.overlaps.Load(); n != 0 {
		t.Fatalf("%d overlapping ticks", n)
	}
	if p.ticks.Load() == 0 {
		t.Fatal("pipeline never ticked")
	}
	st := s.SchedulerStatus()
	if st.LateTicks == 0 {
		t.Errorf("expected late ticks with a 30ms tick on a 5ms interval: %+v", st)
	}
	if st.Dispatched == 0 {
		t.Errorf("no dispatches counted: %+v", st)
	}
}

// TestSetIntervalReschedulesLiveHeap covers the PATCH semantics at the
// Server level: speeding up a slow wrapper takes effect in the live
// deadline heap, and interval 0 converts it to on-demand.
func TestSetIntervalReschedulesLiveHeap(t *testing.T) {
	p := newFakePipe("dyn", 0)
	s := New(Config{Addr: "127.0.0.1:0"})
	stop := runServer(t, s)
	defer stop()
	if err := s.RegisterDynamic(p, time.Hour, false); err != nil {
		t.Fatal(err)
	}
	// Only the synchronous registration tick for the next hour.
	if got := p.ticks.Load(); got != 1 {
		t.Fatalf("ticks after registration = %d, want 1", got)
	}
	if err := s.SetInterval("dyn", 3*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.ticks.Load() < 5 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := p.ticks.Load(); got < 5 {
		t.Fatalf("rescheduled wrapper barely ticked: %d", got)
	}
	// Back to on-demand: ticking stops.
	if err := s.SetInterval("dyn", 0); err != nil {
		t.Fatal(err)
	}
	base := p.ticks.Load()
	time.Sleep(50 * time.Millisecond)
	if got := p.ticks.Load(); got != base {
		t.Fatalf("on-demand wrapper kept ticking (%d -> %d)", base, got)
	}
	if err := s.SetInterval("nosuch", time.Second); err != errUnknownPipeline {
		t.Errorf("SetInterval(nosuch) = %v", err)
	}
	if err := s.Register(newFakePipe("static", 0), time.Hour); err == nil {
		t.Fatal("static registration after Run must fail")
	}
}

// gatedPipe blocks its first tick on a channel, so a test can hold the
// synchronous registration tick in flight while racing other calls.
type gatedPipe struct {
	*overlapPipe
	gate  chan struct{}
	gated atomic.Bool
}

func (p *gatedPipe) Tick() error {
	if p.inFlight.Add(1) > 1 {
		p.overlaps.Add(1)
	}
	defer p.inFlight.Add(-1)
	if p.gated.CompareAndSwap(false, true) {
		<-p.gate
	}
	return p.fakePipe.Tick()
}

// TestSetIntervalDuringRegistration races PATCH against the
// synchronous registration tick: the reschedule must not start the
// schedule while the first tick is still in flight (no overlapping
// ticks), but must take effect once registration completes.
func TestSetIntervalDuringRegistration(t *testing.T) {
	p := &gatedPipe{
		overlapPipe: &overlapPipe{fakePipe: newFakePipe("racer", 0)},
		gate:        make(chan struct{}),
	}
	s := New(Config{Addr: "127.0.0.1:0"})
	stop := runServer(t, s)
	defer stop()

	regDone := make(chan error, 1)
	go func() { regDone <- s.RegisterDynamic(p, time.Hour, false) }()
	// Wait for the registration tick to block at the gate, then PATCH.
	deadline := time.Now().Add(5 * time.Second)
	for !p.gated.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !p.gated.Load() {
		t.Fatal("registration tick never started")
	}
	if err := s.SetInterval("racer", 3*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// The reschedule is deferred; nothing may tick concurrently with
	// the registration tick still held at the gate.
	time.Sleep(30 * time.Millisecond)
	if got := p.ticks.Load(); got != 0 {
		t.Fatalf("%d ticks ran while the registration tick was in flight", got)
	}
	close(p.gate)
	if err := <-regDone; err != nil {
		t.Fatal(err)
	}
	// The deferred reschedule kicks in after registration.
	deadline = time.Now().Add(5 * time.Second)
	for p.ticks.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := p.ticks.Load(); got < 3 {
		t.Fatalf("deferred reschedule never took effect: %d ticks", got)
	}
	if n := p.overlaps.Load(); n != 0 {
		t.Fatalf("%d ticks overlapped the registration tick", n)
	}
}

// TestStatuszSchedulerAndCacheShape pins the JSON shape of the new
// /statusz blocks: the scheduler counters are always present, the
// shared-cache block appears when a cache is configured.
func TestStatuszSchedulerAndCacheShape(t *testing.T) {
	cache := fetchcache.New(64, time.Second)
	s := New(Config{SharedCache: cache, SchedulerShards: 3, SchedulerWorkers: 5, SchedulerQueue: 17})
	if err := s.Register(newFakePipe("x", 0), time.Hour); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body, _ := get(t, ts.URL+"/statusz")
	if code != 200 {
		t.Fatalf("statusz: %d", code)
	}
	var report struct {
		Pipelines []PipelineStatus  `json:"pipelines"`
		Scheduler *SchedulerStatus  `json:"scheduler"`
		Cache     *fetchcache.Stats `json:"shared_cache"`
		Delivery  *DeliveryStatus   `json:"delivery"`
	}
	if err := json.Unmarshal([]byte(body), &report); err != nil {
		t.Fatalf("statusz JSON: %v\n%s", err, body)
	}
	if report.Scheduler == nil || report.Cache == nil || report.Delivery == nil || len(report.Pipelines) != 1 {
		t.Fatalf("statusz missing blocks:\n%s", body)
	}
	if report.Scheduler.Shards != 3 || report.Scheduler.Workers != 5 || report.Scheduler.QueueCapacity != 17 {
		t.Errorf("scheduler shape not surfaced: %+v", report.Scheduler)
	}
	if report.Cache.MaxEntries != 64 || report.Cache.MaxAgeMS != 1000 {
		t.Errorf("cache shape not surfaced: %+v", report.Cache)
	}
	// Pin the exact field names clients depend on.
	for _, key := range []string{
		`"scheduler"`, `"shards"`, `"workers"`, `"scheduled"`, `"queue_depth"`,
		`"queue_capacity"`, `"busy_workers"`, `"worker_utilization"`,
		`"dispatched"`, `"late_ticks"`, `"dropped_ticks"`,
		`"shared_cache"`, `"entries"`, `"max_entries"`, `"max_age_ms"`,
		`"hits"`, `"misses"`, `"shared"`, `"expired"`, `"evictions"`,
		`"delivery"`, `"snapshots"`, `"suppressed_noop_ticks"`, `"broadcasts"`,
		`"subscribers"`, `"subscribers_total"`, `"dropped_slow"`,
		`"etag_hits"`, `"etag_misses"`,
	} {
		if !strings.Contains(body, key) {
			t.Errorf("statusz lacks %s:\n%s", key, body)
		}
	}

	// Without a cache the block is absent.
	plain := New(Config{})
	tsPlain := httptest.NewServer(plain.Handler())
	defer tsPlain.Close()
	_, body, _ = get(t, tsPlain.URL+"/statusz")
	if strings.Contains(body, "shared_cache") {
		t.Errorf("shared_cache block present without a cache:\n%s", body)
	}
	if !strings.Contains(body, `"scheduler"`) {
		t.Errorf("scheduler block missing without a cache:\n%s", body)
	}
}

// guardPipe drives a single-wrapper transform engine (the dynamic
// /v1 pipeline shape) while detecting concurrent ticks of itself.
type guardPipe struct {
	name     string
	eng      *transform.Engine
	out      *transform.Collector
	inFlight atomic.Int32
	overlaps atomic.Int32
	ticks    atomic.Uint64
}

func (p *guardPipe) PipeName() string { return p.name }

func (p *guardPipe) Tick() error {
	if p.inFlight.Add(1) > 1 {
		p.overlaps.Add(1)
	}
	defer p.inFlight.Add(-1)
	p.ticks.Add(1)
	before := p.eng.ErrorCount()
	p.eng.Tick()
	if p.eng.ErrorCount() > before {
		return p.eng.LastError()
	}
	return nil
}

func (p *guardPipe) Output() *transform.Collector { return p.out }

// TestSchedulerStress is the 1000-wrapper soak: real Elog wrappers
// over 10 shared simulated pages behind one shared fetch cache,
// registered and deleted concurrently while the scheduler ticks them,
// under -race. Asserts: the shared pages are fetched once each (the
// cache deduplicates 1000 wrappers' fetches), no wrapper ever ticks
// concurrently with itself, every tick of a surviving wrapper
// delivered its document (no lost results), and shutdown drains
// cleanly.
func TestSchedulerStress(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-wrapper stress test")
	}
	const nPages, nWrappers = 10, 1000

	sim := web.New()
	for i := 0; i < nPages; i++ {
		sim.SetStatic(fmt.Sprintf("stress.example.com/p%d", i),
			fmt.Sprintf("<html><body><table><tr class=it><td>item %d</td></tr></table></body></html>", i))
	}
	cache := fetchcache.New(nPages*2, time.Hour)
	fetcher := cache.Wrap(sim)

	// One compiled wrapper per page, shared by 100 registrations each
	// (the compiled program and its match caches are concurrency-safe).
	wrappers := make([]*lixto.Wrapper, nPages)
	for i := range wrappers {
		wrappers[i] = lixto.MustCompile(fmt.Sprintf(
			`it(S, X) <- document("stress.example.com/p%d", S), subelem(S, (?.tr, [(class, it, exact)]), X)`, i))
	}

	s := New(Config{Addr: "127.0.0.1:0", SchedulerJitter: 0.2})
	stop := runServer(t, s)

	guards := make([]*guardPipe, nWrappers)
	var wg sync.WaitGroup
	var registerFailures atomic.Int32
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < nWrappers; i += 8 {
				name := fmt.Sprintf("w%d", i)
				eng, out, err := transform.NewWrapperEngineCached(name, wrappers[i%nPages], fetcher, cache)
				if err != nil {
					t.Error(err)
					return
				}
				p := &guardPipe{name: name, eng: eng, out: out}
				if err := s.RegisterDynamic(p, time.Duration(2+i%8)*time.Millisecond, false); err != nil {
					registerFailures.Add(1)
					continue
				}
				guards[i] = p
			}
		}(g)
	}
	wg.Wait()

	// Let the fleet tick, deleting a slice of it concurrently.
	var delWg sync.WaitGroup
	delWg.Add(1)
	go func() {
		defer delWg.Done()
		for i := 0; i < nWrappers; i += 5 {
			if err := s.Deregister(fmt.Sprintf("w%d", i)); err == nil {
				guards[i] = nil // retired; its collector stops growing
			}
		}
	}()
	time.Sleep(300 * time.Millisecond)
	delWg.Wait()
	stop()

	if n := registerFailures.Load(); n > 0 {
		t.Fatalf("%d registrations failed", n)
	}
	// Shared fetch layer: 1000 wrappers, but each page fetched exactly
	// once (the 1h freshness window covers the whole test).
	for i := 0; i < nPages; i++ {
		url := fmt.Sprintf("stress.example.com/p%d", i)
		if got := sim.FetchCount(url); got != 1 {
			t.Errorf("page %s fetched %d times, want 1", url, got)
		}
	}
	if st := cache.Stats(); st.Misses != nPages {
		t.Errorf("cache misses = %d, want %d", st.Misses, nPages)
	}
	snapshotTicks := func() uint64 {
		total := uint64(0)
		for _, g := range guards {
			if g != nil {
				total += g.ticks.Load()
			}
		}
		return total
	}
	totalTicks := uint64(0)
	for i, g := range guards {
		if g == nil {
			continue
		}
		if n := g.overlaps.Load(); n != 0 {
			t.Fatalf("wrapper %d: %d overlapping ticks", i, n)
		}
		ticks := g.ticks.Load()
		totalTicks += ticks
		// Every tick (including the synchronous registration tick)
		// delivered exactly one document into the collector: no lost
		// results.
		if delivered := uint64(g.out.Len()); delivered != ticks {
			t.Fatalf("wrapper %d: %d ticks but %d deliveries", i, ticks, delivered)
		}
	}
	if totalTicks < nWrappers {
		t.Errorf("fleet barely ticked: %d total ticks", totalTicks)
	}
	// Clean drain: nothing ticks after Run returned.
	before := snapshotTicks()
	time.Sleep(50 * time.Millisecond)
	if after := snapshotTicks(); after != before {
		t.Fatalf("ticks after shutdown: %d -> %d", before, after)
	}
}
