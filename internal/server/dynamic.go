package server

import (
	"repro/internal/elog"
	"repro/internal/transform"
	"repro/pkg/lixto"
)

// dynPipeline is a wrapper compiled and registered at runtime through
// POST /v1/wrappers: a single-wrapper transform engine (source →
// collector) driving the scheduled path, plus the SDK wrapper itself
// for synchronous one-shot extractions. Both paths share the compiled
// program and its match caches.
type dynPipeline struct {
	name string
	w    *lixto.Wrapper
	eng  *transform.Engine
	out  *transform.Collector
}

// newDynPipeline compiles nothing: it wires an already-compiled SDK
// wrapper into a schedulable pipeline, optionally attached to the
// server's fleet-shared match cache (nil batch disables batching).
// Scheduling (interval vs on-demand) lives in the server's pipeState
// and may change over the pipeline's lifetime via PATCH. noIncOutput
// pins the wrapper source to full per-tick XML rebuilds
// (Config.NoIncrementalOutput).
func newDynPipeline(name string, w *lixto.Wrapper, f elog.Fetcher, batch *elog.MatchCache, noIncOutput bool) (*dynPipeline, error) {
	eng, out, err := transform.NewWrapperEngineBatched(name, w, f, nil, batch)
	if err != nil {
		return nil, err
	}
	if noIncOutput {
		for _, c := range eng.Components() {
			if src, ok := c.(*transform.WrapperSource); ok {
				src.NoIncrementalOutput = true
			}
		}
	}
	return &dynPipeline{name: name, w: w, eng: eng, out: out}, nil
}

// PipeName implements Pipeline.
func (d *dynPipeline) PipeName() string { return d.name }

// Tick implements Pipeline: one engine activation round, reporting any
// error newly logged during the round.
func (d *dynPipeline) Tick() error {
	before := d.eng.ErrorCount()
	d.eng.Tick()
	if d.eng.ErrorCount() > before {
		return d.eng.LastError()
	}
	return nil
}

// Output implements Pipeline.
func (d *dynPipeline) Output() *transform.Collector { return d.out }

// Close detaches the pipeline's wrapper source from the fleet-shared
// match cache, so batch_size stops counting retired wrappers.
func (d *dynPipeline) Close() { d.eng.Close() }

// ExtractionStats implements ExtractionStatser, folding in the SDK
// wrapper's output-cache counters: one-shot extractions (POST
// .../extract) reuse output subtrees through the wrapper itself, not
// the scheduled wrapper source, and their reuse must surface in
// /statusz and the /v1 listing all the same.
func (d *dynPipeline) ExtractionStats() transform.ExtractionStats {
	st := d.eng.ExtractionStats()
	o := d.w.OutputStats()
	st.OutputReusedNodes += o.ReusedNodes
	st.OutputBuiltNodes += o.BuiltNodes
	st.InstancesAdded += o.InstancesAdded
	st.InstancesRemoved += o.InstancesRemoved
	st.InstancesUnchanged += o.InstancesUnchanged
	return st
}
