package server

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resultlog"
	"repro/internal/transform"
	"repro/internal/xmlenc"
)

// The persistence attachment: when Config.ResultStore is set, every
// pipeline's collector journals its deliveries into a queue that the
// delivery plane drains — under the publish mutex, reusing the
// just-encoded snapshot bytes — into the wrapper's append-only result
// log. On restart, Restore replays each log to rebuild the collector
// ring, the published snapshot (ETag and all), the delivery version,
// and any dynamic wrapper registrations and webhook cursors, so reads
// and subscriptions continue byte-identically across a kill -9.

// specFile and hooksFile are the JSON sidecars written next to a
// wrapper's WAL segments.
const (
	specFile  = "spec.json"
	hooksFile = "webhooks.json"
)

// journalEntry is one delivery awaiting its WAL append.
type journalEntry struct {
	version uint64
	doc     *xmlenc.Node
}

// pipePersist wires one pipeline to its result log. The collector's
// Journal callback enqueues deliveries (off the collector lock, never
// blocking on the disk); delivery.publish drains the queue in version
// order under pubMu, so appends are serialized without a lock of their
// own.
type pipePersist struct {
	log *resultlog.Log

	mu      sync.Mutex
	pending []journalEntry
	queued  atomic.Int64 // len(pending) mirror for the lock-free idle check

	// Drain-side state, touched only under the delivery's pubMu:
	// nextVer is the next contiguous version to append; lastDoc and
	// lastXML identify the previous logged content so unchanged
	// re-deliveries become version-only no-op records.
	nextVer uint64
	lastDoc *xmlenc.Node
	lastXML []byte
}

// enqueue is the Collector.Journal callback.
func (pp *pipePersist) enqueue(version uint64, doc *xmlenc.Node) {
	pp.mu.Lock()
	pp.pending = append(pp.pending, journalEntry{version: version, doc: doc})
	pp.queued.Store(int64(len(pp.pending)))
	pp.mu.Unlock()
}

// idle reports whether no deliveries await their append.
func (pp *pipePersist) idle() bool { return pp.queued.Load() == 0 }

// drain appends the queued deliveries to the log in version order.
// Called under the delivery's publish mutex; sn is the current
// snapshot, whose encoded bytes are reused when it matches a queued
// document (the common case: one entry per tick, already encoded).
// Only a contiguous run from nextVer is appended — an entry whose
// predecessor has not been enqueued yet (a racing delivery between its
// version bump and its journal callback) waits for the next drain, so
// the log never has gaps.
func (pp *pipePersist) drain(sn *snapshot) {
	pp.mu.Lock()
	entries := pp.pending
	pp.pending = nil
	pp.mu.Unlock()
	if len(entries) > 1 {
		sort.Slice(entries, func(i, j int) bool { return entries[i].version < entries[j].version })
	}
	appended := 0
	for _, e := range entries {
		if e.version != pp.nextVer {
			break
		}
		rec := resultlog.Record{Version: e.version}
		if e.doc == pp.lastDoc {
			rec.Kind = resultlog.KindNoop
		} else {
			var xml []byte
			if sn != nil && e.doc == sn.doc {
				xml = sn.xml
			} else {
				xml = xmlenc.MarshalIndentBytes(e.doc)
			}
			if bytes.Equal(xml, pp.lastXML) {
				rec.Kind = resultlog.KindNoop
			} else {
				h := fnv.New64a()
				h.Write(xml)
				rec.Kind = resultlog.KindSnapshot
				rec.Fingerprint = h.Sum64()
				rec.XML = xml
				pp.lastXML = xml
			}
			pp.lastDoc = e.doc
		}
		if err := pp.log.Append(rec); err != nil {
			// Counted in the store stats; delivery keeps going — a full
			// disk degrades durability, not reads.
			break
		}
		pp.nextVer++
		appended++
	}
	if appended > 0 && pp.lastXML != nil && pp.log.NeedsCompaction() {
		// Checkpoint compaction: restate the latest snapshot into a fresh
		// segment and drop the older ones, so restore cost tracks the live
		// state rather than the wrapper's lifetime. Still under pubMu, so
		// no append races the rewrite.
		h := fnv.New64a()
		h.Write(pp.lastXML)
		pp.log.Compact(resultlog.Record{
			Version:     pp.nextVer - 1,
			Fingerprint: h.Sum64(),
			XML:         pp.lastXML,
		})
	}
	if appended < len(entries) {
		pp.mu.Lock()
		pp.pending = append(entries[appended:], pp.pending...)
		pp.queued.Store(int64(len(pp.pending)))
		pp.mu.Unlock()
	} else {
		pp.queued.Store(0)
	}
}

// attachPersist opens the pipeline's result log and wires the journal
// path. Called for every registered pipeline when a store is
// configured, before the pipeline ticks.
func (s *Server) attachPersist(ps *pipeState) error {
	store := s.cfg.ResultStore
	if store == nil {
		return nil
	}
	l, err := store.Log(ps.name)
	if err != nil {
		return err
	}
	pp := &pipePersist{log: l, nextVer: l.LastVersion() + 1}
	ps.deliver.persist = pp
	ps.p.Output().Journal = pp.enqueue
	return nil
}

// rehydrate replays the pipeline's result log: the collector ring is
// preloaded with the recovered documents (no-op records re-append the
// previous document, mirroring the live suppressed-tick semantics),
// the delivery plane is primed with a snapshot built from the stored
// bytes verbatim — so the ETag, the conditional-GET behavior, and the
// SSE cursor are identical to the pre-crash process — and the journal
// state is positioned so the next live delivery continues the log.
func (ps *pipeState) rehydrate(retain int) error {
	pp := ps.deliver.persist
	if pp == nil {
		return nil
	}
	if retain <= 0 {
		retain = transform.DefaultRetain
	}
	var (
		docs        []*xmlenc.Node
		lastDoc     *xmlenc.Node
		lastXML     []byte
		lastVer     uint64
		lastSnapVer uint64
	)
	err := pp.log.Replay(func(rec resultlog.Record) error {
		switch rec.Kind {
		case resultlog.KindSnapshot, resultlog.KindCheckpoint:
			doc, err := xmlenc.Unmarshal(string(rec.XML))
			if err != nil {
				return fmt.Errorf("server: result log for %q: version %d: %w", ps.name, rec.Version, err)
			}
			lastDoc, lastXML, lastSnapVer = doc, rec.XML, rec.Version
		case resultlog.KindNoop:
			// Unchanged content: the ring holds the previous document
			// again, exactly as the live no-op tick would have left it.
		default:
			return nil // unknown kind from a future version: skip
		}
		if lastDoc == nil {
			return nil // noop before any snapshot (pre-truncation cursor)
		}
		docs = append(docs, lastDoc)
		if len(docs) > retain {
			docs = docs[1:]
		}
		lastVer = rec.Version
		return nil
	})
	if err != nil {
		return err
	}
	if lastVer == 0 {
		return nil // empty log
	}
	ps.p.Output().Preload(docs, lastVer)
	pp.nextVer = lastVer + 1
	pp.lastDoc = lastDoc
	pp.lastXML = lastXML

	sn := &snapshot{doc: lastDoc, seq: 1, ver: lastSnapVer}
	sn.version.Store(lastVer)
	sn.xml = lastXML
	sn.xmlTag = etagFor(lastXML, 'x')
	ps.deliver.seq.Store(1)
	ps.deliver.cur.Store(sn)
	return nil
}

// Restore rehydrates the server from Config.ResultStore: every
// registered pipeline with logged history gets its ring, snapshot and
// delivery version back; wrappers that were registered dynamically are
// recompiled from their persisted specs and re-registered (without the
// synchronous validation tick — their last good result is already
// restored); webhook registrations resume from their durable cursors.
// Call after registering static pipelines and before Run. It returns
// the number of wrappers restored from disk.
func (s *Server) Restore() (int, error) {
	store := s.cfg.ResultStore
	if store == nil {
		return 0, nil
	}
	names, err := store.Names()
	if err != nil {
		return 0, err
	}
	restored := 0
	for _, name := range names {
		ps := s.pipe(name)
		if ps == nil {
			var spec wrapperSpec
			if err := store.LoadMeta(name, specFile, &spec); err != nil {
				if os.IsNotExist(err) {
					continue // state for a static pipeline not registered this run
				}
				return restored, err
			}
			if err := s.restoreDynamic(spec); err != nil {
				s.cfg.Logf("server: restore: wrapper %q: %v", name, err)
				continue
			}
			ps = s.pipe(name)
			if ps == nil {
				continue
			}
		}
		if ps.deliver.persist == nil {
			if err := s.attachPersist(ps); err != nil {
				return restored, err
			}
		}
		if err := ps.rehydrate(ps.p.Output().Retain); err != nil {
			s.cfg.Logf("server: restore: wrapper %q: %v", name, err)
			continue
		}
		if err := ps.hooks.restore(); err != nil {
			s.cfg.Logf("server: restore: wrapper %q webhooks: %v", name, err)
		}
		restored++
	}
	return restored, nil
}

// restoreDynamic recompiles and re-registers one dynamic wrapper from
// its persisted spec, skipping the synchronous validation tick (the
// wrapper proved itself before the restart; its results are about to
// be rehydrated). Restore runs before Run, so the pipeline starts
// ticking when the scheduler does.
func (s *Server) restoreDynamic(spec wrapperSpec) error {
	if !validName(spec.Name) {
		return fmt.Errorf("invalid persisted wrapper name %q", spec.Name)
	}
	lw, fetcher, err := s.compileSpec(spec.Program, spec.Root, spec.Auxiliary, spec.HTML)
	if err != nil {
		return err
	}
	d, err := newDynPipeline(spec.Name, lw, fetcher, s.cfg.MatchCache, s.cfg.NoIncrementalOutput)
	if err != nil {
		return err
	}
	interval := time.Duration(spec.IntervalMS) * time.Millisecond
	onDemand := spec.IntervalMS <= 0
	if interval <= 0 {
		interval = s.cfg.DefaultInterval
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return fmt.Errorf("server: %w", errShuttingDown)
	}
	if _, dup := s.pipes[spec.Name]; dup {
		return fmt.Errorf("server: %w %q", errDuplicatePipeline, spec.Name)
	}
	ps := &pipeState{p: d, name: spec.Name, interval: interval, dynamic: true, onDemand: onDemand}
	s.initPipe(ps)
	s.pipes[spec.Name] = ps
	s.order = append(s.order, spec.Name)
	s.readPipes.Store(spec.Name, ps)
	if s.started {
		s.startLocked(ps)
	}
	s.cfg.Logf("server: restored dynamic pipeline %q (interval %s, on-demand %v)", spec.Name, interval, onDemand)
	return nil
}

// PersistenceStatus returns the result store's counters, or a zero
// value when persistence is not configured. Appears as the
// "persistence" block on /statusz and GET /v1/wrappers.
func (s *Server) PersistenceStatus() resultlog.Stats {
	if s.cfg.ResultStore == nil {
		return resultlog.Stats{}
	}
	return s.cfg.ResultStore.Stats()
}
