package server

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/resultlog"
	"repro/internal/xmlenc"
)

// Outbound webhooks: push delivery for subscribers that cannot hold an
// SSE connection. Each registered endpoint gets its own dispatcher
// goroutine walking the wrapper's result sequence behind a durable
// cursor (the last delivered version): new snapshots are POSTed in
// order, failures retry with exponential backoff and jitter, and a
// run of failures past the attempt cap opens a circuit breaker that
// cools down before probing again. The cursor only ever advances past
// a version once that snapshot has been accepted (2xx), so delivery is
// at-least-once — a crash re-sends at most the redelivery window
// between cursor persists, never skips.
//
//	POST   /v1/wrappers/{name}/webhooks        register {"url": ...}
//	GET    /v1/wrappers/{name}/webhooks        list endpoints + cursors
//	GET    /v1/wrappers/{name}/webhooks/{id}   one endpoint's status
//	DELETE /v1/wrappers/{name}/webhooks/{id}   retire an endpoint

// hookBatch bounds how many records one dispatcher pass pulls from the
// log or the ring.
const hookBatch = 16

// hookSaveDebounce coalesces cursor persists: an endpoint delivering a
// burst writes its sidecar once per window, not once per delivery.
// This is the redelivery window after a crash.
const hookSaveDebounce = 200 * time.Millisecond

// errStopFetch aborts a log replay once the batch is full.
var errStopFetch = errors.New("server: webhook batch full")

// hookMeta is the persisted form of one endpoint (webhooks.json).
type hookMeta struct {
	ID     string `json:"id"`
	URL    string `json:"url"`
	Cursor uint64 `json:"cursor"`
	Secret string `json:"secret,omitempty"`
}

// hookEndpoint is one registered webhook and its dispatcher state.
type hookEndpoint struct {
	id     string
	url    string
	secret string // HMAC key for Lixto-Signature; empty = unsigned
	hs     *hookSet
	notify chan struct{} // buffered(1): new results may be available
	done   chan struct{} // closed to stop the dispatcher

	mu           sync.Mutex
	cursor       uint64 // last delivered (or skipped-noop) version
	state        string // "idle" | "delivering" | "retrying" | "open"
	attempts     int    // consecutive failures on the current record
	deliveries   uint64
	failures     uint64
	retries      uint64
	opens        uint64
	lastErr      string
	lastDelivery time.Time
}

// hookInfo is an endpoint's JSON rendering in the /v1 responses.
type hookInfo struct {
	ID     string `json:"id"`
	URL    string `json:"url"`
	Cursor uint64 `json:"cursor"`
	// Signed reports that deliveries carry a Lixto-Signature HMAC header
	// (the secret itself is never echoed back).
	Signed       bool   `json:"signed,omitempty"`
	State        string `json:"state"`
	Deliveries   uint64 `json:"deliveries"`
	Failures     uint64 `json:"failures"`
	Retries      uint64 `json:"retries"`
	BreakerOpens uint64 `json:"breaker_opens"`
	LastError    string `json:"last_error,omitempty"`
	LastDelivery string `json:"last_delivery,omitempty"`
}

func (e *hookEndpoint) info() hookInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	info := hookInfo{
		ID: e.id, URL: e.url, Cursor: e.cursor, Signed: e.secret != "", State: e.state,
		Deliveries: e.deliveries, Failures: e.failures, Retries: e.retries,
		BreakerOpens: e.opens, LastError: e.lastErr,
	}
	if !e.lastDelivery.IsZero() {
		info.LastDelivery = e.lastDelivery.UTC().Format(time.RFC3339Nano)
	}
	return info
}

// hookSet is a pipeline's webhook registry. Zero value is inert until
// init wires it to its server and pipeline.
type hookSet struct {
	s  *Server
	ps *pipeState

	mu        sync.Mutex
	endpoints map[string]*hookEndpoint
	nextID    int
	closed    bool
	saveTimer *time.Timer // debounced cursor persist
}

func (hs *hookSet) init(s *Server, ps *pipeState) {
	hs.s = s
	hs.ps = ps
}

// notify nudges every dispatcher; called from the publish path, so it
// must never block (channels are buffered and the send is dropped when
// a nudge is already pending).
func (hs *hookSet) notify() {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	for _, e := range hs.endpoints {
		select {
		case e.notify <- struct{}{}:
		default:
		}
	}
}

// add registers an endpoint and starts its dispatcher. cursor is the
// version to resume after (deliveries start at cursor+1); a non-empty
// secret makes every delivery carry a Lixto-Signature HMAC header.
func (hs *hookSet) add(id, rawurl string, cursor uint64, secret string) (*hookEndpoint, error) {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	if hs.closed {
		return nil, errShuttingDown
	}
	maxHooks := hs.s.cfg.MaxWebhooksPerWrapper
	if len(hs.endpoints) >= maxHooks {
		return nil, fmt.Errorf("webhook limit of %d per wrapper reached", maxHooks)
	}
	if id == "" {
		hs.nextID++
		id = "h" + strconv.Itoa(hs.nextID)
	} else if n, err := strconv.Atoi(strings.TrimPrefix(id, "h")); err == nil && n > hs.nextID {
		hs.nextID = n // restored ids keep the counter ahead
	}
	if _, dup := hs.endpoints[id]; dup {
		return nil, fmt.Errorf("duplicate webhook id %q", id)
	}
	e := &hookEndpoint{
		id: id, url: rawurl, secret: secret, hs: hs,
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
		cursor: cursor,
		state:  "idle",
	}
	if hs.endpoints == nil {
		hs.endpoints = map[string]*hookEndpoint{}
	}
	hs.endpoints[id] = e
	go e.run()
	return e, nil
}

// remove retires one endpoint: its dispatcher stops and the sidecar is
// rewritten without it.
func (hs *hookSet) remove(id string) bool {
	hs.mu.Lock()
	e := hs.endpoints[id]
	if e != nil {
		delete(hs.endpoints, id)
	}
	hs.mu.Unlock()
	if e == nil {
		return false
	}
	close(e.done)
	hs.save()
	return true
}

// close stops every dispatcher and persists final cursors. Signal-only
// (it does not join the goroutines): it is called with server locks
// held on deregistration and drain.
func (hs *hookSet) close() {
	hs.mu.Lock()
	if hs.closed {
		hs.mu.Unlock()
		return
	}
	hs.closed = true
	if hs.saveTimer != nil {
		hs.saveTimer.Stop()
		hs.saveTimer = nil
	}
	endpoints := make([]*hookEndpoint, 0, len(hs.endpoints))
	for _, e := range hs.endpoints {
		endpoints = append(endpoints, e)
	}
	hs.mu.Unlock()
	for _, e := range endpoints {
		close(e.done)
	}
	hs.persistNow(false)
}

// list returns the endpoints sorted by id.
func (hs *hookSet) list() []*hookEndpoint {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	out := make([]*hookEndpoint, 0, len(hs.endpoints))
	for _, e := range hs.endpoints {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

func (hs *hookSet) get(id string) *hookEndpoint {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	return hs.endpoints[id]
}

// scheduleSave debounces a cursor persist.
func (hs *hookSet) scheduleSave() {
	if hs.s.cfg.ResultStore == nil {
		return
	}
	hs.mu.Lock()
	defer hs.mu.Unlock()
	if hs.closed || hs.saveTimer != nil {
		return
	}
	hs.saveTimer = time.AfterFunc(hookSaveDebounce, func() {
		hs.mu.Lock()
		hs.saveTimer = nil
		hs.mu.Unlock()
		hs.persistNow(true)
	})
}

// save persists the registration set immediately (registration
// changes, shutdown).
func (hs *hookSet) save() { hs.persistNow(true) }

// persistNow writes webhooks.json. checkClosed skips the write once
// the set closed (a deregistered wrapper's store dir is being
// removed; recreating it would leak).
func (hs *hookSet) persistNow(checkClosed bool) {
	store := hs.s.cfg.ResultStore
	if store == nil {
		return
	}
	hs.mu.Lock()
	if checkClosed && hs.closed {
		hs.mu.Unlock()
		return
	}
	metas := make([]hookMeta, 0, len(hs.endpoints))
	for _, e := range hs.endpoints {
		e.mu.Lock()
		metas = append(metas, hookMeta{ID: e.id, URL: e.url, Cursor: e.cursor, Secret: e.secret})
		e.mu.Unlock()
	}
	hs.mu.Unlock()
	sort.Slice(metas, func(i, j int) bool { return metas[i].ID < metas[j].ID })
	if err := store.SaveMeta(hs.ps.name, hooksFile, metas); err != nil {
		hs.s.cfg.Logf("server: webhook persist for %q: %v", hs.ps.name, err)
	}
}

// restore reloads the persisted endpoints and restarts their
// dispatchers from the durable cursors.
func (hs *hookSet) restore() error {
	store := hs.s.cfg.ResultStore
	if store == nil {
		return nil
	}
	var metas []hookMeta
	if err := store.LoadMeta(hs.ps.name, hooksFile, &metas); err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, m := range metas {
		if _, err := hs.add(m.ID, m.URL, m.Cursor, m.Secret); err != nil {
			return err
		}
	}
	return nil
}

// fetchSince returns up to limit records with versions after cursor:
// from the result log when persistence is attached (long retention,
// pre-encoded bytes), else from the in-memory ring (re-encoded on
// demand; repeated documents — the ring's no-op duplicates — become
// version-only records so cursors advance without re-sending).
func (hs *hookSet) fetchSince(cursor uint64, limit int) []resultlog.Record {
	if pp := hs.ps.deliver.persist; pp != nil {
		out := make([]resultlog.Record, 0, limit)
		pp.log.Since(cursor, func(rec resultlog.Record) error {
			out = append(out, rec)
			if len(out) >= limit {
				return errStopFetch
			}
			return nil
		})
		return out
	}
	docs, vers := hs.ps.p.Output().HistorySince(cursor, limit)
	out := make([]resultlog.Record, 0, len(docs))
	for i, doc := range docs {
		rec := resultlog.Record{Version: vers[i]}
		if i > 0 && doc == docs[i-1] {
			rec.Kind = resultlog.KindNoop
		} else {
			rec.Kind = resultlog.KindSnapshot
			rec.XML = xmlenc.MarshalIndentBytes(doc)
		}
		out = append(out, rec)
	}
	return out
}

// run is the per-endpoint dispatcher goroutine.
func (e *hookEndpoint) run() {
	cfg := &e.hs.s.cfg
	client := &http.Client{Timeout: cfg.WebhookTimeout}
	for {
		e.mu.Lock()
		cursor := e.cursor
		e.mu.Unlock()
		recs := e.hs.fetchSince(cursor, hookBatch)
		if len(recs) == 0 {
			e.setState("idle")
			select {
			case <-e.notify:
				continue
			case <-e.done:
				return
			}
		}
		for _, rec := range recs {
			snap := rec.Kind == resultlog.KindSnapshot || rec.Kind == resultlog.KindCheckpoint
			if !snap || len(rec.XML) == 0 {
				e.advance(rec.Version)
				continue
			}
			if !e.deliverOne(client, rec) {
				return // stopped
			}
		}
	}
}

// deliverOne POSTs one snapshot until it is accepted, backing off on
// failure and opening the breaker past the attempt cap. It never
// skips: at-least-once means a dead endpoint blocks its own cursor,
// not that versions vanish. Returns false when the dispatcher should
// stop.
func (e *hookEndpoint) deliverOne(client *http.Client, rec resultlog.Record) bool {
	cfg := &e.hs.s.cfg
	for {
		err := e.post(client, rec)
		if err == nil {
			e.mu.Lock()
			e.deliveries++
			e.attempts = 0
			e.state = "delivering"
			e.lastErr = ""
			e.lastDelivery = time.Now()
			e.mu.Unlock()
			e.advance(rec.Version)
			return true
		}
		e.mu.Lock()
		e.failures++
		e.attempts++
		attempts := e.attempts
		e.lastErr = err.Error()
		e.mu.Unlock()
		var wait time.Duration
		if attempts >= cfg.WebhookMaxAttempts {
			// Breaker opens: cool down, then the loop's next pass is the
			// half-open probe. The cursor stays put.
			e.mu.Lock()
			e.state = "open"
			e.opens++
			e.attempts = cfg.WebhookMaxAttempts - 1
			e.mu.Unlock()
			wait = cfg.WebhookCooldown
		} else {
			e.setState("retrying")
			e.mu.Lock()
			e.retries++
			e.mu.Unlock()
			wait = backoffDelay(cfg.WebhookBackoffMin, cfg.WebhookBackoffMax, attempts)
		}
		select {
		case <-time.After(wait):
		case <-e.done:
			return false
		}
	}
}

// backoffDelay is exponential backoff with full jitter: min·2^(n-1)
// capped at max, scaled by a random factor in [0.5, 1.0] so a fleet of
// endpoints retrying against one dead sink decorrelates.
func backoffDelay(min, max time.Duration, attempt int) time.Duration {
	d := min << (attempt - 1)
	if d > max || d <= 0 {
		d = max
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// post delivers one record. Any 2xx is acceptance; anything else (or a
// transport error, or the timeout) is a retryable failure.
func (e *hookEndpoint) post(client *http.Client, rec resultlog.Record) error {
	req, err := http.NewRequest(http.MethodPost, e.url, bytes.NewReader(rec.XML))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/xml; charset=utf-8")
	req.Header.Set("Lixto-Wrapper", e.hs.ps.name)
	req.Header.Set("Lixto-Version", strconv.FormatUint(rec.Version, 10))
	req.Header.Set("Lixto-Webhook", e.id)
	if e.secret != "" {
		req.Header.Set("Lixto-Signature", SignPayload(e.secret, rec.XML))
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("endpoint returned %s", resp.Status)
	}
	return nil
}

// SignPayload computes the Lixto-Signature header value for a webhook
// delivery body: "sha256=" + hex(HMAC-SHA256(secret, body)). Receivers
// recompute it over the raw request body and compare with
// VerifySignature.
func SignPayload(secret string, body []byte) string {
	mac := hmac.New(sha256.New, []byte(secret))
	mac.Write(body)
	return "sha256=" + hex.EncodeToString(mac.Sum(nil))
}

// VerifySignature checks a received Lixto-Signature header against the
// raw request body in constant time.
func VerifySignature(secret string, body []byte, header string) bool {
	return hmac.Equal([]byte(SignPayload(secret, body)), []byte(header))
}

// advance moves the cursor monotonically and schedules its persist.
func (e *hookEndpoint) advance(version uint64) {
	e.mu.Lock()
	if version > e.cursor {
		e.cursor = version
	}
	e.mu.Unlock()
	e.hs.scheduleSave()
}

func (e *hookEndpoint) setState(state string) {
	e.mu.Lock()
	e.state = state
	e.mu.Unlock()
}

// ---------------------------------------------------------------------
// Stats.

// WebhookStatus aggregates the webhook counters across all pipelines;
// the "webhooks" block on /statusz and GET /v1/wrappers.
type WebhookStatus struct {
	// Endpoints is the number of registered webhook endpoints;
	// BreakerOpen of them are currently cooling down after exhausting
	// their attempts.
	Endpoints   int `json:"endpoints"`
	BreakerOpen int `json:"breaker_open"`
	// Deliveries counts accepted POSTs; Failures counts rejected or
	// timed-out attempts; Retries counts backoff waits; BreakerOpens
	// counts circuit-breaker trips.
	Deliveries   uint64 `json:"deliveries"`
	Failures     uint64 `json:"failures"`
	Retries      uint64 `json:"retries"`
	BreakerOpens uint64 `json:"breaker_opens"`
}

// WebhookStatus returns the webhook counters summed over the currently
// registered pipelines.
func (s *Server) WebhookStatus() WebhookStatus {
	var ws WebhookStatus
	s.readPipes.Range(func(_, v any) bool {
		ps := v.(*pipeState)
		for _, e := range ps.hooks.list() {
			e.mu.Lock()
			ws.Endpoints++
			if e.state == "open" {
				ws.BreakerOpen++
			}
			ws.Deliveries += e.deliveries
			ws.Failures += e.failures
			ws.Retries += e.retries
			ws.BreakerOpens += e.opens
			e.mu.Unlock()
		}
		return true
	})
	return ws
}

// hookCount returns the number of registered endpoints (wrapperInfo).
func (hs *hookSet) count() int {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	return len(hs.endpoints)
}

// ---------------------------------------------------------------------
// HTTP handlers.

// webhookSpec is the POST .../webhooks body.
type webhookSpec struct {
	// URL receives each new snapshot as an XML POST.
	URL string `json:"url"`
	// Since, when set, starts delivery after this version (0 replays
	// everything still retained). Absent means "from now": only results
	// newer than the current version are delivered.
	Since *uint64 `json:"since,omitempty"`
	// Secret, when set, signs every delivery: the endpoint receives a
	// Lixto-Signature header of "sha256=" + hex(HMAC-SHA256(secret,
	// body)). The secret persists with the registration but is never
	// echoed in listings.
	Secret string `json:"secret,omitempty"`
}

func (s *Server) v1Webhooks(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ps := s.readPipe(name)
	if ps == nil {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no wrapper %q", name), nil)
		return
	}
	switch r.Method {
	case http.MethodGet:
		infos := make([]hookInfo, 0)
		for _, e := range ps.hooks.list() {
			infos = append(infos, e.info())
		}
		writeJSON(w, http.StatusOK, map[string]any{"name": name, "webhooks": infos})
	case http.MethodPost:
		var spec webhookSpec
		if !s.decodeJSON(w, r, &spec) {
			return
		}
		u, err := url.Parse(spec.URL)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("url must be absolute http(s), got %q", spec.URL), nil)
			return
		}
		cursor := ps.p.Output().Version()
		if spec.Since != nil {
			cursor = *spec.Since
		}
		e, err := ps.hooks.add("", spec.URL, cursor, spec.Secret)
		if err != nil {
			if errors.Is(err, errShuttingDown) {
				writeError(w, http.StatusServiceUnavailable, "unavailable", err.Error(), nil)
			} else {
				writeError(w, http.StatusUnprocessableEntity, "bad_request", err.Error(), nil)
			}
			return
		}
		ps.hooks.save()
		writeJSON(w, http.StatusCreated, e.info())
	default:
		methodNotAllowed(w, "GET, POST")
	}
}

func (s *Server) v1Webhook(w http.ResponseWriter, r *http.Request) {
	name, id := r.PathValue("name"), r.PathValue("id")
	ps := s.readPipe(name)
	if ps == nil {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no wrapper %q", name), nil)
		return
	}
	switch r.Method {
	case http.MethodGet:
		e := ps.hooks.get(id)
		if e == nil {
			writeError(w, http.StatusNotFound, "not_found",
				fmt.Sprintf("no webhook %q on wrapper %q", id, name), nil)
			return
		}
		writeJSON(w, http.StatusOK, e.info())
	case http.MethodDelete:
		if !ps.hooks.remove(id) {
			writeError(w, http.StatusNotFound, "not_found",
				fmt.Sprintf("no webhook %q on wrapper %q", id, name), nil)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		methodNotAllowed(w, "GET, DELETE")
	}
}
