package server

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/web"
	"repro/pkg/lixto"
)

const spliceProg = `
page(S, X) <- document("churn.test/cat", S), subelem(S, .body, X)
row(S, X)  <- page(_, S), subelem(S, ?.tr, X)
name(S, X) <- row(_, S), subelem(S, (?.td, [(class, name, exact)]), X)
`

// newSplicePipe builds a scheduled dynamic pipeline over a churning
// catalogue page: each bump rewrites exactly one row, leaving the rest
// byte-identical — the shape where incremental output reuses frozen
// row subtrees and the delivery encoder can splice their bytes.
func newSplicePipe(t *testing.T, name string, noIncOutput bool) (d *dynPipeline, bump func()) {
	t.Helper()
	const rows = 16
	version := 0
	sim := web.New()
	sim.SetPage("churn.test/cat", func() string {
		var sb strings.Builder
		sb.WriteString("<html><body><table>")
		for r := 0; r < rows; r++ {
			v := 0
			if r == version%rows {
				v = version
			}
			fmt.Fprintf(&sb, `<tr><td class="name">catalogue item %d revision %d</td></tr>`, r, v)
		}
		sb.WriteString("</table></body></html>")
		return sb.String()
	})
	w, err := lixto.Compile(spliceProg, lixto.WithAuxiliary("page"), lixto.WithFetcher(sim),
		lixto.WithIncrementalOutput(!noIncOutput))
	if err != nil {
		t.Fatal(err)
	}
	d, err = newDynPipeline(name, w, sim, nil, noIncOutput)
	if err != nil {
		t.Fatal(err)
	}
	return d, func() { version++ }
}

// TestDeliverySpliceEncoding pins the splice path end to end through
// the real scheduled route: a churning wrapper on a default server
// (incremental output on) serves bodies and ETags byte-identical to
// the same wrapper on a NoIncrementalOutput server, while only the
// former's delivery encoder splices reused byte ranges — and the
// counter is visible in the GET /v1/wrappers listing.
func TestDeliverySpliceEncoding(t *testing.T) {
	sInc := New(Config{})
	sFull := New(Config{NoIncrementalOutput: true})
	pInc, bumpInc := newSplicePipe(t, "cat", false)
	pFull, bumpFull := newSplicePipe(t, "cat", true)
	if err := sInc.RegisterDynamic(pInc, 0, true); err != nil {
		t.Fatal(err)
	}
	if err := sFull.RegisterDynamic(pFull, 0, true); err != nil {
		t.Fatal(err)
	}
	tsInc := httptest.NewServer(sInc.Handler())
	defer tsInc.Close()
	tsFull := httptest.NewServer(sFull.Handler())
	defer tsFull.Close()

	tick := func(s *Server, d *dynPipeline) {
		t.Helper()
		if err := d.Tick(); err != nil {
			t.Fatal(err)
		}
		if ps := s.readPipe(d.name); ps != nil {
			ps.deliver.snapshot(d.out)
		}
	}
	for i := 0; i < 6; i++ {
		tick(sInc, pInc)
		tick(sFull, pFull)
		_, bodyInc, hdrInc := do(t, "GET", tsInc.URL+"/cat", nil)
		_, bodyFull, hdrFull := do(t, "GET", tsFull.URL+"/cat", nil)
		if !strings.Contains(bodyInc, "<row>") || !strings.Contains(bodyInc, "catalogue item") {
			t.Fatalf("round %d: extraction produced no rows (vacuous differential):\n%s", i, bodyInc)
		}
		if bodyInc != bodyFull {
			t.Fatalf("round %d: spliced body diverges from full re-encode:\n--- spliced ---\n%s--- full ---\n%s",
				i, bodyInc, bodyFull)
		}
		if hdrInc.Get("ETag") != hdrFull.Get("ETag") {
			t.Fatalf("round %d: ETag %q vs %q", i, hdrInc.Get("ETag"), hdrFull.Get("ETag"))
		}
		bumpInc()
		bumpFull()
	}

	if got := sInc.readPipe("cat").deliver.splicedBytes(); got == 0 {
		t.Error("incremental server spliced no bytes over 6 one-row-churn rounds")
	}
	if got := sFull.readPipe("cat").deliver.splicedBytes(); got != 0 {
		t.Errorf("NoIncrementalOutput server spliced %d bytes; want 0", got)
	}

	// The counter surfaces through the public listing.
	var listing struct {
		Wrappers []struct {
			Name       string `json:"name"`
			Extraction struct {
				SplicedBytes   uint64 `json:"encode_spliced_bytes"`
				OutputReused   uint64 `json:"output_reused_nodes"`
				InstancesSame  uint64 `json:"instances_unchanged"`
				InstancesAdded uint64 `json:"instances_added"`
			} `json:"extraction"`
		} `json:"wrappers"`
	}
	_, body, _ := do(t, "GET", tsInc.URL+"/v1/wrappers", nil)
	if err := jsonUnmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, w := range listing.Wrappers {
		if w.Name != "cat" {
			continue
		}
		found = true
		if w.Extraction.SplicedBytes == 0 {
			t.Errorf("listing encode_spliced_bytes = 0: %s", body)
		}
		if w.Extraction.OutputReused == 0 || w.Extraction.InstancesSame == 0 {
			t.Errorf("listing output reuse counters empty: %s", body)
		}
	}
	if !found {
		t.Fatalf("wrapper cat missing from listing: %s", body)
	}

	// One-shot extractions reuse through the SDK wrapper itself (not
	// the scheduled source): the delivery encoder keeps splicing and
	// the wrapper's own output-cache counters surface in the stats.
	spliceBefore := sInc.readPipe("cat").deliver.splicedBytes()
	reusedBefore := pInc.ExtractionStats().OutputReusedNodes
	for i := 0; i < 3; i++ {
		bumpInc()
		if code, body, _ := do(t, "POST", tsInc.URL+"/v1/wrappers/cat/extract",
			map[string]any{}); code != 200 {
			t.Fatalf("one-shot extract %d: %d %s", i, code, body)
		}
	}
	if got := sInc.readPipe("cat").deliver.splicedBytes(); got <= spliceBefore {
		t.Errorf("one-shot extractions spliced nothing: %d -> %d bytes", spliceBefore, got)
	}
	if got := pInc.ExtractionStats().OutputReusedNodes; got <= reusedBefore {
		t.Errorf("one-shot output reuse not in stats: %d -> %d reused nodes", reusedBefore, got)
	}
}
