package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/fetchcache"
	"repro/internal/web"
)

// TestV1PatchReschedulesWrapper covers the PATCH /v1/wrappers/{name}
// satellite end to end: an on-demand wrapper is switched onto a fast
// schedule in the live heap (no restart), slowed back to on-demand,
// and the error paths return the uniform envelope.
func TestV1PatchReschedulesWrapper(t *testing.T) {
	sim := web.New()
	web.NewBookSite(7, 5).Register(sim, "books.example.com")
	cache := fetchcache.New(64, time.Second)
	s := New(Config{
		Addr: "127.0.0.1:0", AllowDynamic: true, DynamicFetcher: sim,
		SharedCache: cache, MaxCompilesPerMinute: -1,
	})
	static := newFakePipe("static", 0)
	if err := s.Register(static, time.Hour); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.Run(ctx) }()
	<-s.Ready()
	base := "http://" + s.Addr()

	prog := `page(S, X)  <- document("books.example.com/bestsellers.html", S), subelem(S, .body, X)
title(S, X) <- page(_, S), subelem(S, (?.td, [(class, title, exact)]), X)`
	code, body, _ := do(t, "POST", base+"/v1/wrappers",
		map[string]any{"name": "patchme", "program": prog}) // interval_ms absent: on-demand
	if code != 201 {
		t.Fatalf("create: %d %s", code, body)
	}

	// PATCH onto a fast schedule; the response is the updated info.
	code, body, _ = do(t, "PATCH", base+"/v1/wrappers/patchme", map[string]any{"interval_ms": 5})
	if code != 200 {
		t.Fatalf("patch: %d %s", code, body)
	}
	var info struct {
		IntervalMS int64  `json:"interval_ms"`
		OnDemand   bool   `json:"on_demand"`
		Ticks      uint64 `json:"ticks"`
	}
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatal(err)
	}
	if info.IntervalMS != 5 || info.OnDemand {
		t.Fatalf("patched info: %s", body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body, _ = do(t, "GET", base+"/v1/wrappers/patchme", nil)
		if err := json.Unmarshal([]byte(body), &info); err != nil {
			t.Fatal(err)
		}
		if info.Ticks >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("patched wrapper never started ticking: %s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Back to on-demand: ticking stops.
	if code, body, _ = do(t, "PATCH", base+"/v1/wrappers/patchme", map[string]any{"interval_ms": 0}); code != 200 {
		t.Fatalf("patch to on-demand: %d %s", code, body)
	}
	_, body, _ = do(t, "GET", base+"/v1/wrappers/patchme", nil)
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatal(err)
	}
	if !info.OnDemand {
		t.Fatalf("wrapper still scheduled after PATCH 0: %s", body)
	}
	ticksAfter := info.Ticks
	time.Sleep(50 * time.Millisecond)
	_, body, _ = do(t, "GET", base+"/v1/wrappers/patchme", nil)
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatal(err)
	}
	if info.Ticks != ticksAfter {
		t.Fatalf("on-demand wrapper kept ticking (%d -> %d)", ticksAfter, info.Ticks)
	}

	// Error paths, all in the uniform envelope.
	for _, tc := range []struct {
		name string
		url  string
		body map[string]any
		code int
		kind string
	}{
		{"missing field", "/v1/wrappers/patchme", map[string]any{}, 400, "bad_request"},
		{"negative", "/v1/wrappers/patchme", map[string]any{"interval_ms": -1}, 400, "bad_request"},
		{"overflow", "/v1/wrappers/patchme", map[string]any{"interval_ms": int64(1) << 40}, 400, "bad_request"},
		{"unknown", "/v1/wrappers/nosuch", map[string]any{"interval_ms": 5}, 404, "not_found"},
		{"static", "/v1/wrappers/static", map[string]any{"interval_ms": 5}, 403, "forbidden"},
	} {
		code, body, _ := do(t, "PATCH", base+tc.url, tc.body)
		if code != tc.code || envelope(t, body).Kind != tc.kind {
			t.Errorf("%s: %d %s", tc.name, code, body)
		}
	}
	// 405 advertises PATCH.
	code, body, hdr := do(t, "PUT", base+"/v1/wrappers/patchme", map[string]any{})
	if code != 405 || !strings.Contains(hdr.Get("Allow"), "PATCH") {
		t.Fatalf("PUT: %d Allow=%q %s", code, hdr.Get("Allow"), body)
	}

	// GET /v1/wrappers carries the scheduler and shared-cache blocks.
	code, body, _ = do(t, "GET", base+"/v1/wrappers", nil)
	if code != 200 {
		t.Fatalf("list: %d %s", code, body)
	}
	var list struct {
		Wrappers  []wrapperInfo     `json:"wrappers"`
		Scheduler *SchedulerStatus  `json:"scheduler"`
		Cache     *fetchcache.Stats `json:"shared_cache"`
	}
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if list.Scheduler == nil || list.Cache == nil || len(list.Wrappers) != 2 {
		t.Fatalf("list missing stats blocks:\n%s", body)
	}
	if list.Scheduler.Scheduled == 0 {
		t.Errorf("scheduler reports nothing scheduled (the static pipe is): %s", body)
	}
	// The dynamic wrapper fetched through the shared cache.
	if list.Cache.Misses == 0 {
		t.Errorf("shared cache never consulted: %+v", *list.Cache)
	}

	http.DefaultClient.CloseIdleConnections()
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run: %v", err)
	}
}
