package server

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestSignAndVerifyPayload(t *testing.T) {
	body := []byte("<doc n=\"1\"/>\n")
	sig := SignPayload("s3cret", body)
	if len(sig) != len("sha256=")+64 {
		t.Fatalf("signature shape: %q", sig)
	}
	if !VerifySignature("s3cret", body, sig) {
		t.Error("valid signature rejected")
	}
	if VerifySignature("other", body, sig) {
		t.Error("wrong secret accepted")
	}
	if VerifySignature("s3cret", []byte("<tampered/>"), sig) {
		t.Error("tampered body accepted")
	}
	if VerifySignature("s3cret", body, "") {
		t.Error("missing header accepted")
	}
}

// TestWebhookSignature pins the signed-delivery contract: an endpoint
// registered with a secret receives a verifiable Lixto-Signature on
// every POST, the listing advertises signing without leaking the
// secret, and an endpoint registered without one gets no header.
func TestWebhookSignature(t *testing.T) {
	signed := newHookSink(t)
	unsigned := newHookSink(t)
	s := New(Config{})
	p := newFakePipe("x", 0)
	if err := s.Register(p, time.Hour); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		deliver(t, s, p)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const secret = "0f1e2d3c4b5a"
	code, body, _ := do(t, "POST", ts.URL+"/v1/wrappers/x/webhooks",
		map[string]any{"url": signed.ts.URL, "since": 0, "secret": secret})
	if code != 201 {
		t.Fatalf("create signed webhook: %d %s", code, body)
	}
	var created hookInfo
	if err := jsonUnmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if !created.Signed {
		t.Errorf("created info not marked signed: %s", body)
	}
	if code, body, _ := do(t, "POST", ts.URL+"/v1/wrappers/x/webhooks",
		map[string]any{"url": unsigned.ts.URL, "since": 0}); code != 201 {
		t.Fatalf("create unsigned webhook: %d %s", code, body)
	}

	got := signed.waitFor(t, "3 signed deliveries", func(rs []hookReceipt) bool { return len(rs) >= 3 })
	for i, r := range got[:3] {
		if r.sig == "" {
			t.Fatalf("receipt %d: no Lixto-Signature header", i)
		}
		if !VerifySignature(secret, []byte(r.body), r.sig) {
			t.Errorf("receipt %d: signature %q does not verify over body", i, r.sig)
		}
		if VerifySignature("wrong", []byte(r.body), r.sig) {
			t.Errorf("receipt %d: signature verifies under the wrong secret", i)
		}
	}
	plain := unsigned.waitFor(t, "3 unsigned deliveries", func(rs []hookReceipt) bool { return len(rs) >= 3 })
	for i, r := range plain[:3] {
		if r.sig != "" {
			t.Errorf("unsigned receipt %d carries a signature %q", i, r.sig)
		}
	}

	// The secret never appears in any listing.
	for _, path := range []string{"/v1/wrappers/x/webhooks", "/v1/wrappers/x/webhooks/h1"} {
		if _, body, _ := do(t, "GET", ts.URL+path, nil); strings.Contains(body, secret) {
			t.Errorf("GET %s leaks the secret: %s", path, body)
		}
	}
}
