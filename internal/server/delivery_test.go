package server

import (
	"compress/gzip"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/xmlenc"
)

// bigPipe delivers a document large enough to clear the gzip
// threshold; every Tick appends a new row so consecutive documents
// differ.
type bigPipe struct {
	*fakePipe
	rows int
}

func newBigPipe(name string, rows int) *bigPipe {
	return &bigPipe{fakePipe: newFakePipe(name, 0), rows: rows}
}

func (b *bigPipe) Tick() error {
	n := b.ticks.Add(1)
	doc := xmlenc.NewElement("doc")
	doc.SetAttr("n", strconv.FormatUint(n, 10))
	for i := 0; i < b.rows; i++ {
		doc.AppendTextElement("row", fmt.Sprintf("row %d of tick %d with enough text to compress", i, n))
	}
	_, err := b.out.Process("", doc)
	return err
}

// TestReadsDoNotTakeServerMutex pins the lock-free read path: with the
// server-wide mutex held, every GET read route still completes.
func TestReadsDoNotTakeServerMutex(t *testing.T) {
	s := New(Config{})
	p := newFakePipe("hot", 0)
	if err := s.Register(p, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := p.Tick(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.mu.Lock()
	defer s.mu.Unlock()
	done := make(chan string, 1)
	go func() {
		for _, path := range []string{"/hot", "/hot/history?n=2", "/v1/wrappers/hot/results", "/v1/wrappers/hot/results?n=2"} {
			code, _, _ := get(t, ts.URL+path)
			if code != 200 {
				done <- fmt.Sprintf("%s = %d with s.mu held", path, code)
				return
			}
		}
		done <- ""
	}()
	select {
	case msg := <-done:
		if msg != "" {
			t.Fatal(msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reads blocked on the server mutex")
	}
}

func TestConditionalGet(t *testing.T) {
	s := New(Config{})
	p := newFakePipe("etag", 0)
	if err := s.Register(p, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := p.Tick(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/etag")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if !strings.HasPrefix(etag, `"`) || !strings.HasSuffix(etag, `"`) {
		t.Fatalf("missing or weak ETag: %q", etag)
	}
	if got := resp.Header.Values("Vary"); len(got) != 2 || got[0] != "Accept" || got[1] != "Accept-Encoding" {
		t.Fatalf("Vary = %v", got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/xml; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// A matching validator — including list, weak, and * forms — turns
	// into 304 with no body.
	for _, inm := range []string{etag, `"bogus", ` + etag, "W/" + etag, "*"} {
		code, body, _ := get(t, ts.URL+"/etag", "If-None-Match", inm)
		if code != http.StatusNotModified || body != "" {
			t.Fatalf("If-None-Match %q: %d %q", inm, code, body)
		}
	}
	// JSON is a different representation with its own ETag.
	code, _, _ := get(t, ts.URL+"/etag", "Accept", "application/json", "If-None-Match", etag)
	if code != 200 {
		t.Fatalf("XML ETag matched the JSON representation: %d", code)
	}
	// A stale validator gets the new body.
	if err := p.Tick(); err != nil {
		t.Fatal(err)
	}
	code, body, _ := get(t, ts.URL+"/etag", "If-None-Match", etag)
	if code != 200 || !strings.Contains(body, `n="2"`) {
		t.Fatalf("stale validator: %d %q", code, body)
	}
	ds := s.DeliveryStatus()
	if ds.EtagHits != 4 || ds.EtagMisses < 2 {
		t.Fatalf("etag counters: hits=%d misses=%d", ds.EtagHits, ds.EtagMisses)
	}
	// The /v1 results route shares the snapshot and so the ETag.
	resp2, err := http.Get(ts.URL + "/v1/wrappers/etag/results")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	code, _, _ = get(t, ts.URL+"/v1/wrappers/etag/results", "If-None-Match", resp2.Header.Get("ETag"))
	if code != http.StatusNotModified {
		t.Fatalf("v1 results conditional GET: %d", code)
	}
}

func TestGzipPrecompressed(t *testing.T) {
	s := New(Config{})
	p := newBigPipe("big", 50)
	if err := s.Register(p, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := p.Tick(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Plain body first, for comparison. DisableCompression keeps the
	// transport from transparently gunzipping.
	client := &http.Client{Transport: &http.Transport{DisableCompression: true}}
	resp, err := client.Get(ts.URL + "/big")
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("Content-Encoding") != "" {
		t.Fatalf("unsolicited Content-Encoding %q", resp.Header.Get("Content-Encoding"))
	}

	req, _ := http.NewRequest("GET", ts.URL+"/big", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	compressed, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("Content-Encoding = %q", resp.Header.Get("Content-Encoding"))
	}
	if len(compressed) >= len(plain) {
		t.Fatalf("gzip variant not smaller: %d vs %d", len(compressed), len(plain))
	}
	zr, err := gzip.NewReader(strings.NewReader(string(compressed)))
	if err != nil {
		t.Fatal(err)
	}
	round, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if string(round) != string(plain) {
		t.Fatal("gzip variant does not round-trip to the identity body")
	}

	// Tiny documents are not worth compressing and stay identity.
	p2 := newFakePipe("tiny", 0)
	s2 := New(Config{})
	if err := s2.Register(p2, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := p2.Tick(); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	req, _ = http.NewRequest("GET", ts2.URL+"/tiny", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("Content-Encoding") == "gzip" {
		t.Fatal("tiny body was gzipped")
	}
}

// TestEncodeOnceSnapshots pins the encode-once property: any number of
// reads of an unchanged pipeline reuse one published snapshot, and
// no-op re-deliveries (same document pointer, or a fresh document with
// identical bytes) are suppressed without re-encoding or re-publishing.
func TestEncodeOnceSnapshots(t *testing.T) {
	s := New(Config{})
	p := newFakePipe("once", 0)
	if err := s.Register(p, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := p.Tick(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 25; i++ {
		if code, _, _ := get(t, ts.URL+"/once"); code != 200 {
			t.Fatalf("read %d failed", i)
		}
		if code, _, _ := get(t, ts.URL+"/v1/wrappers/once/results"); code != 200 {
			t.Fatalf("v1 read %d failed", i)
		}
	}
	if ds := s.DeliveryStatus(); ds.Snapshots != 1 {
		t.Fatalf("snapshots = %d after 50 reads of one delivery", ds.Snapshots)
	}

	// Re-delivering the same document pointer (what the poll-level
	// fingerprint cache does on unchanged pages) is a suppressed no-op.
	ps := s.readPipe("once")
	doc := p.out.Latest()
	if _, err := p.out.Process("", doc); err != nil {
		t.Fatal(err)
	}
	ps.deliver.snapshot(p.out)
	// So is a fresh document object with byte-identical content.
	clone := xmlenc.NewElement("doc")
	clone.SetAttr("n", "1")
	if _, err := p.out.Process("", clone); err != nil {
		t.Fatal(err)
	}
	ps.deliver.snapshot(p.out)
	ds := s.DeliveryStatus()
	if ds.Snapshots != 1 || ds.SuppressedNoopTicks != 2 {
		t.Fatalf("snapshots=%d suppressed=%d, want 1/2", ds.Snapshots, ds.SuppressedNoopTicks)
	}

	// Changed content publishes a second snapshot.
	if err := p.Tick(); err != nil {
		t.Fatal(err)
	}
	if _, body, _ := get(t, ts.URL+"/once"); !strings.Contains(body, `n="2"`) {
		t.Fatalf("stale body after new delivery: %q", body)
	}
	if ds := s.DeliveryStatus(); ds.Snapshots != 2 {
		t.Fatalf("snapshots = %d after second delivery", ds.Snapshots)
	}
}

// TestHistoryCache pins the satellite: the encoded history list is
// built once per (n, format) until the next delivery invalidates it.
func TestHistoryCache(t *testing.T) {
	p := newFakePipe("hist", 0)
	p.out.Retain = 8
	s := New(Config{})
	if err := s.Register(p, time.Hour); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := p.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, b1, ct := get(t, ts.URL+"/hist/history?n=3")
	if ct != "application/xml; charset=utf-8" {
		t.Fatalf("history Content-Type = %q", ct)
	}
	ps := s.readPipe("hist")
	ps.deliver.histMu.Lock()
	cached := len(ps.deliver.hist)
	ps.deliver.histMu.Unlock()
	if cached != 1 {
		t.Fatalf("history cache entries = %d", cached)
	}
	_, b2, _ := get(t, ts.URL+"/hist/history?n=3")
	if b1 != b2 {
		t.Fatal("cached history differs between requests")
	}
	// The v1 list has a different root element and must not collide
	// with the legacy route's cache entry.
	_, v1b, _ := get(t, ts.URL+"/v1/wrappers/hist/results?n=3")
	if !strings.Contains(v1b, "<results") || strings.Contains(v1b, "<history") {
		t.Fatalf("v1 list root: %q", v1b)
	}
	if !strings.Contains(b1, "<history") {
		t.Fatalf("legacy list root: %q", b1)
	}
	// A new delivery invalidates every cached encoding.
	if err := p.Tick(); err != nil {
		t.Fatal(err)
	}
	_, b3, _ := get(t, ts.URL+"/hist/history?n=3")
	if b3 == b1 || !strings.Contains(b3, `n="5"`) {
		t.Fatalf("history cache served stale list: %q", b3)
	}
}
